/**
 * @file
 * Cross-module integration tests: SSD lifecycle under churn (write /
 * trim / rewrite with garbage collection and wear leveling), and the
 * full DeepStore engine running multi-database, cached query
 * workloads end-to-end.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"
#include "nn/semantic.h"
#include "workloads/apps.h"
#include "workloads/query_universe.h"

namespace deepstore {
namespace {

ssd::FlashParams
tinyParams()
{
    ssd::FlashParams p;
    p.channels = 4;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 8;
    p.pagesPerBlock = 8;
    return p;
}

TEST(EndToEnd, SsdSurvivesWriteTrimChurn)
{
    sim::EventQueue events;
    ssd::Ssd dev(events, tinyParams());
    std::uint64_t super_pages = dev.ftl().superblockPages(); // 128

    for (int round = 0; round < 10; ++round) {
        bool wrote = false, trimmed = false;
        dev.hostWrite(0, super_pages, [&](Tick) { wrote = true; });
        events.run();
        ASSERT_TRUE(wrote) << round;
        dev.hostTrim(0, super_pages, [&](Tick) { trimmed = true; });
        events.run();
        ASSERT_TRUE(trimmed) << round;
    }
    // All superblocks recycled, erases spread evenly by the
    // wear-leveling allocator.
    EXPECT_EQ(dev.ftl().freeSuperblocks(),
              dev.ftl().superblockCount());
    EXPECT_EQ(dev.ftl().totalErases(), 10u);
    EXPECT_LE(dev.ftl().eraseSpread(), 2u);
    EXPECT_GT(dev.stats().find("flash.blockErases")->value(), 0.0);
}

TEST(EndToEnd, TrimWithoutFullInvalidationCompletesFast)
{
    sim::EventQueue events;
    ssd::Ssd dev(events, tinyParams());
    dev.hostWrite(0, 64, nullptr);
    events.run();
    Tick start = events.now();
    Tick done = 0;
    dev.hostTrim(0, 8, [&](Tick t) { done = t; }); // partial only
    events.run();
    // No erase needed: just the command overhead.
    EXPECT_LT(ticksToSeconds(done - start), 10e-6);
}

TEST(EndToEnd, MultipleDatabasesAndModelsCoexist)
{
    core::DeepStore store(core::DeepStoreConfig{});

    // Database A: 64-d features; database B: 128-d features.
    workloads::FeatureGenerator gen_a(64, 8, 1), gen_b(128, 8, 2);
    std::uint64_t db_a = store.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen_a, 300));
    std::uint64_t db_b = store.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen_b, 200));

    auto make_dot = [](std::int64_t dim) {
        nn::Model m("dot" + std::to_string(dim), dim, false);
        m.addLayer(nn::Layer::elementWise("dot",
                                          nn::EwOp::DotProduct, dim));
        return nn::ModelBundle{m, nn::ModelWeights::random(m, 1)};
    };
    std::uint64_t model_a = store.loadModel(make_dot(64));
    std::uint64_t model_b = store.loadModel(make_dot(128));

    // Databases are striped back-to-back; both remain addressable.
    const auto &md_a = store.databaseInfo(db_a);
    const auto &md_b = store.databaseInfo(db_b);
    EXPECT_NE(md_a.startPpn, md_b.startPpn);

    auto ra = store.getResults(
        store.querySync(gen_a.featureAt(10), 3, model_a, db_a, 0, 0));
    auto rb = store.getResults(
        store.querySync(gen_b.featureAt(10), 3, model_b, db_b, 0, 0));
    EXPECT_EQ(ra.featuresScanned, 300u);
    EXPECT_EQ(rb.featuresScanned, 200u);
    // Model/database dimension mismatch across pairs is rejected.
    EXPECT_THROW(
        store.query(gen_a.featureAt(0), 3, model_a, db_b, 0, 0),
        FatalError);
}

TEST(EndToEnd, CachedQueryStreamBehavesLikeAlgorithm1)
{
    core::DeepStore store(core::DeepStoreConfig{});
    auto app = workloads::makeApp(workloads::AppId::TextQA);
    workloads::FeatureGenerator gen(app.scn.featureDim(), 12, 5,
                                    /*noise=*/0.15);
    std::uint64_t db = store.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen, 400));
    std::uint64_t scn = store.loadModel(
        nn::ModelBundle{app.scn, nn::semanticWeights(app.scn)});
    std::uint64_t qcn = store.loadModel(
        nn::ModelBundle{app.qcn, nn::semanticWeights(app.qcn)});
    store.setQC(qcn, 0.15, 0.97, 8);

    // A Zipf-ish stream over 6 recurring intents.
    const std::uint64_t intents[] = {0, 1, 0, 2, 0, 1, 3, 0,
                                     1, 2, 0, 4, 0, 1, 5, 0};
    double miss_latency = 0.0;
    int misses = 0, hits = 0;
    double hit_latency = 0.0;
    for (std::size_t i = 0; i < std::size(intents); ++i) {
        auto qfv = gen.featureForTopic(intents[i],
                                       1000 + i); // fresh phrasing
        auto res = store.getResults(
            store.querySync(qfv, 4, scn, db, 0, 0));
        if (res.cacheHit) {
            ++hits;
            hit_latency += res.latencySeconds;
            EXPECT_EQ(res.featuresScanned, 4u);
        } else {
            ++misses;
            miss_latency += res.latencySeconds;
            EXPECT_EQ(res.featuresScanned, 400u);
        }
    }
    EXPECT_GT(hits, 4);   // recurring intents hit semantically
    EXPECT_GT(misses, 3); // new intents miss
    // With only a 400-feature database the QCN lookup is a sizable
    // share of a hit, so the gap is modest here (the Fig. 13 bench
    // shows the production-scale gap).
    EXPECT_LT(hit_latency / hits, 0.5 * miss_latency / misses);
    EXPECT_EQ(store.queryCache()->hits(),
              static_cast<std::uint64_t>(hits));
    // Simulated time advanced by every operation.
    EXPECT_GT(store.simulatedSeconds(), 0.0);
}

TEST(EndToEnd, RetryInjectionSurfacesInHostReads)
{
    ssd::FlashParams faulty = tinyParams();
    faulty.readRetryProbability = 0.5;
    faulty.readRetryPenalty = 9.0;

    sim::EventQueue ev_clean, ev_faulty;
    ssd::Ssd clean(ev_clean, tinyParams()), injected(ev_faulty, faulty);
    for (auto *dev : {&clean, &injected}) {
        dev->hostWrite(0, 32, nullptr);
        (dev == &clean ? ev_clean : ev_faulty).run();
    }
    Tick t0 = ev_clean.now(), t1 = ev_faulty.now();
    Tick d0 = 0, d1 = 0;
    clean.hostRead(0, 32, [&](Tick t) { d0 = t; });
    injected.hostRead(0, 32, [&](Tick t) { d1 = t; });
    ev_clean.run();
    ev_faulty.run();
    EXPECT_GT(ticksToSeconds(d1 - t1), ticksToSeconds(d0 - t0));
    EXPECT_GT(injected.stats().find("flash.readRetries")->value(),
              0.0);
}

} // namespace
} // namespace deepstore
