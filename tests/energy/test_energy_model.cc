/** @file Unit tests for the linear energy/area model. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "energy/energy_model.h"

namespace deepstore::energy {
namespace {

systolic::ArrayConfig
channelLevelConfig()
{
    systolic::ArrayConfig cfg;
    cfg.name = "channel";
    cfg.rows = 16;
    cfg.cols = 64;
    cfg.frequencyHz = 800e6;
    cfg.scratchpadBytes = 512 * KiB;
    cfg.sharedL2Bytes = 8 * MiB;
    return cfg;
}

TEST(SramEnergy, GrowsWithCapacity)
{
    EnergyParams p;
    double e8k = sramAccessEnergy(p, 8 * KiB, SramModel::ItrsHp);
    double e512k = sramAccessEnergy(p, 512 * KiB, SramModel::ItrsHp);
    double e8m = sramAccessEnergy(p, 8 * MiB, SramModel::ItrsHp);
    EXPECT_LT(e8k, e512k);
    EXPECT_LT(e512k, e8m);
    EXPECT_DOUBLE_EQ(e8k, p.sramBaseEnergy);
}

TEST(SramEnergy, LowPowerCornerIsCheaper)
{
    EnergyParams p;
    double hp = sramAccessEnergy(p, 512 * KiB, SramModel::ItrsHp);
    double low = sramAccessEnergy(p, 512 * KiB, SramModel::ItrsLow);
    EXPECT_LT(low, hp);
    EXPECT_NEAR(low / hp, p.sramLowPowerFactor, 1e-12);
}

TEST(SramEnergy, ZeroCapacityIsFatal)
{
    EnergyParams p;
    EXPECT_THROW(sramAccessEnergy(p, 0, SramModel::ItrsHp), FatalError);
}

TEST(Area, ReproducesTable3)
{
    // Table 3: SSD 2048 PEs + 8 MB -> 31.7 mm^2;
    //          channel 1024 PEs + 512 KB -> 7.4 mm^2;
    //          chip 128 PEs + 512 KB -> 2.5 mm^2.
    EnergyParams p;
    EXPECT_NEAR(acceleratorAreaMm2(p, 2048, 8 * MiB), 31.7, 0.1);
    EXPECT_NEAR(acceleratorAreaMm2(p, 1024, 512 * KiB), 7.4, 0.1);
    EXPECT_NEAR(acceleratorAreaMm2(p, 128, 512 * KiB), 2.5, 0.1);
}

TEST(EnergyBreakdown, AddsComponentwise)
{
    EnergyBreakdown a{1.0, 2.0, 3.0};
    EnergyBreakdown b{0.5, 0.25, 0.125};
    a.add(b);
    EXPECT_DOUBLE_EQ(a.computeJ, 1.5);
    EXPECT_DOUBLE_EQ(a.memoryJ, 2.25);
    EXPECT_DOUBLE_EQ(a.flashJ, 3.125);
    EXPECT_DOUBLE_EQ(a.total(), 1.5 + 2.25 + 3.125);
}

TEST(AcceleratorEnergy, ComputeScalesWithMacs)
{
    EnergyParams p;
    AcceleratorEnergyModel m(p, channelLevelConfig(), SramModel::ItrsHp);
    systolic::LayerRun run;
    run.macs = 1'000'000;
    auto e = m.energyOf(run, 0);
    EXPECT_NEAR(e.computeJ, 1e6 * p.macEnergy, 1e-18);
    EXPECT_DOUBLE_EQ(e.flashJ, 0.0);
}

TEST(AcceleratorEnergy, MemoryIncludesAllLevels)
{
    EnergyParams p;
    AcceleratorEnergyModel m(p, channelLevelConfig(), SramModel::ItrsHp);
    systolic::LayerRun run;
    run.spadReads = 100;
    run.l2Reads = 100;
    run.dramReadBytes = 1000;
    auto e = m.energyOf(run, 0);
    double spad_only =
        100 * sramAccessEnergy(p, 512 * KiB, SramModel::ItrsHp);
    EXPECT_GT(e.memoryJ, spad_only); // L2 + NoC + DRAM add on top
    // DRAM component alone: 1000 B * 160 pJ/B.
    EXPECT_GT(e.memoryJ, 1000 * p.dramEnergyPerByte);
}

TEST(AcceleratorEnergy, FlashEnergyPerPage)
{
    EnergyParams p;
    AcceleratorEnergyModel m(p, channelLevelConfig(), SramModel::ItrsHp);
    systolic::LayerRun run;
    auto e = m.energyOf(run, 10);
    EXPECT_NEAR(e.flashJ, 10 * p.flashPageReadEnergy, 1e-15);
}

TEST(AcceleratorEnergy, EnergyIsAdditiveAcrossRuns)
{
    // Property: energy(run1 + run2) == energy(run1) + energy(run2);
    // the model is linear by construction and must stay that way.
    EnergyParams p;
    AcceleratorEnergyModel m(p, channelLevelConfig(), SramModel::ItrsHp);
    systolic::LayerRun a, b;
    a.macs = 123;
    a.spadReads = 7;
    a.dramReadBytes = 99;
    b.macs = 456;
    b.l2Reads = 11;
    b.dramWriteBytes = 3;
    systolic::LayerRun sum = a;
    sum.add(b);
    auto ea = m.energyOf(a, 2);
    auto eb = m.energyOf(b, 5);
    auto es = m.energyOf(sum, 7);
    EXPECT_NEAR(es.total(), ea.total() + eb.total(), 1e-15);
}

TEST(AcceleratorEnergy, StaticPowerFollowsCorner)
{
    EnergyParams p;
    auto cfg = channelLevelConfig();
    AcceleratorEnergyModel hp(p, cfg, SramModel::ItrsHp);
    AcceleratorEnergyModel low(p, cfg, SramModel::ItrsLow);
    EXPECT_GT(hp.staticPower(), low.staticPower());
    EXPECT_GT(low.staticPower(), 0.0);
}

TEST(AcceleratorEnergy, ChannelAcceleratorMeetsPowerBudget)
{
    // Sanity against §4.5: a channel-level accelerator running flat
    // out must fit its ~1.71 W share of the 55 W budget.
    EnergyParams p;
    auto cfg = channelLevelConfig();
    AcceleratorEnergyModel m(p, cfg, SramModel::ItrsHp);
    // One second of peak MAC issue with realistic SCN utilization
    // (~60%) plus proportional scratchpad traffic.
    double util = 0.6;
    systolic::LayerRun run;
    run.macs = static_cast<std::uint64_t>(
        static_cast<double>(cfg.peCount()) * cfg.frequencyHz * util);
    run.spadReads = run.macs / 40; // systolic reuse keeps this low
    run.spadWrites = run.macs / 400;
    double power = m.averagePower(run, 0, 1.0);
    EXPECT_LT(power, 1.75);
}

TEST(AcceleratorEnergy, AveragePowerNeedsPositiveTime)
{
    EnergyParams p;
    AcceleratorEnergyModel m(p, channelLevelConfig(), SramModel::ItrsHp);
    systolic::LayerRun run;
    EXPECT_THROW(m.averagePower(run, 0, 0.0), FatalError);
}

} // namespace
} // namespace deepstore::energy
