/** @file Tests for the GPU+SSD and wimpy-core baseline models. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "host/baseline.h"

namespace deepstore::host {
namespace {

using workloads::AppId;
using workloads::AppInfo;
using workloads::makeApp;

TEST(GpuSsd, VoltaComputeIs33PercentFasterThanPascal)
{
    // §3: "the compute-intensive layers of the SCN perform faster by
    // 33%" on Volta.
    AppInfo app = makeApp(AppId::ReId);
    GpuSsdSystem pascal(pascalSpec()), volta(voltaSpec());
    auto p = pascal.batchTime(app, 2000);
    auto v = volta.batchTime(app, 2000);
    // Remove the fixed overhead before comparing the FLOP part.
    double pc = p.computeSeconds - kBatchOverheadSeconds;
    double vc = v.computeSeconds - kBatchOverheadSeconds;
    EXPECT_NEAR(pc / vc, 1.33, 0.01);
}

TEST(GpuSsd, OverallTimeBarelyImprovesWithNewerGpu)
{
    // §3 Observation 1: faster GPUs do not help because storage I/O
    // dominates.
    for (const auto &app : workloads::allApps()) {
        GpuSsdSystem pascal(pascalSpec()), volta(voltaSpec());
        double p = pascal.perFeatureSeconds(app);
        double v = volta.perFeatureSeconds(app);
        EXPECT_LT(p / v, 1.20) << app.name;
    }
}

TEST(GpuSsd, StorageIoDominatesAllApps)
{
    // Fig. 2: 56%-90% of execution time is SSD read, for every app
    // and both GPUs.
    for (const auto &app : workloads::allApps()) {
        for (auto spec : {pascalSpec(), voltaSpec()}) {
            GpuSsdSystem sys(spec);
            auto b = sys.batchTime(app, app.evalBatchSize);
            EXPECT_GE(b.ioFraction(), 0.50)
                << app.name << " on " << spec.name;
            EXPECT_LE(b.ioFraction(), 0.95)
                << app.name << " on " << spec.name;
        }
    }
}

TEST(GpuSsd, IoFractionGrowsWithBatchSizeStability)
{
    // Per-feature component times are batch-independent except for
    // the amortized fixed overhead, so the I/O fraction stabilizes.
    AppInfo app = makeApp(AppId::MIR);
    GpuSsdSystem sys(voltaSpec());
    auto small = sys.batchTime(app, 5000);
    auto large = sys.batchTime(app, 50000);
    EXPECT_NEAR(small.ioFraction(), large.ioFraction(), 0.05);
}

TEST(GpuSsd, PipelinedTotalIsMaxOfStages)
{
    BatchBreakdown b{10.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(b.pipelinedTotal(), 10.0);
    BatchBreakdown c{4.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(c.pipelinedTotal(), 5.0);
    EXPECT_DOUBLE_EQ(b.total(), 15.0);
}

TEST(GpuSsd, MultipleSsdsScaleIoButNotCompute)
{
    // Fig. 10b: adding SSDs improves I/O but compute stays constant,
    // so the system does not scale at the SSD count rate.
    AppInfo app = makeApp(AppId::MIR);
    GpuSsdSystem one(voltaSpec(), 1), eight(voltaSpec(), 8);
    double s1 = one.perFeatureSeconds(app);
    double s8 = eight.perFeatureSeconds(app);
    double speedup = s1 / s8;
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 8.0); // sub-linear
}

TEST(GpuSsd, RejectsBadConfig)
{
    GpuSpec bad{"bad", 0.0, 100.0};
    EXPECT_THROW(GpuSsdSystem{bad}, FatalError);
    EXPECT_THROW(GpuSsdSystem(voltaSpec(), 0), FatalError);
}

TEST(GpuSsd, ScanScalesLinearly)
{
    AppInfo app = makeApp(AppId::TIR);
    GpuSsdSystem sys(voltaSpec());
    EXPECT_NEAR(sys.scanSeconds(app, 2000) / sys.scanSeconds(app, 1000),
                2.0, 1e-9);
}

TEST(Wimpy, MuchSlowerThanGpu)
{
    // §6.2: wimpy cores are 4.5x-22.8x slower than the GPU+SSD
    // baseline.
    for (const auto &app : workloads::allApps()) {
        GpuSsdSystem gpu(voltaSpec());
        WimpySystem wimpy;
        double slowdown = WimpySystem().perFeatureSeconds(app) /
                          gpu.perFeatureSeconds(app);
        EXPECT_GT(slowdown, 3.0) << app.name;
        EXPECT_LT(slowdown, 70.0) << app.name;
    }
}

TEST(Wimpy, ComputeBoundNotFlashBound)
{
    // Observation 2: the wimpy cores, not flash, are the bottleneck.
    AppInfo app = makeApp(AppId::ReId);
    WimpySystem wimpy;
    double per_feature = wimpy.perFeatureSeconds(app);
    double compute = static_cast<double>(app.scn.totalFlops()) /
                     wimpySpec().effectiveFlops;
    EXPECT_DOUBLE_EQ(per_feature, compute);
}

} // namespace
} // namespace deepstore::host
