/** @file Tests for the synthetic feature generator. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "workloads/feature_gen.h"

namespace deepstore::workloads {
namespace {

TEST(FeatureGen, DeterministicPerIndex)
{
    FeatureGenerator gen(64, 10, 7);
    auto a = gen.featureAt(42);
    auto b = gen.featureAt(42);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 64u);
}

TEST(FeatureGen, DifferentIndicesDiffer)
{
    FeatureGenerator gen(64, 10, 7);
    EXPECT_NE(gen.featureAt(1), gen.featureAt(2));
}

TEST(FeatureGen, DifferentSeedsGiveDifferentDatasets)
{
    FeatureGenerator a(64, 10, 1), b(64, 10, 2);
    EXPECT_NE(a.featureAt(0), b.featureAt(0));
}

TEST(FeatureGen, TopicsCoverRange)
{
    FeatureGenerator gen(16, 5, 9);
    std::vector<int> hits(5, 0);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        std::uint64_t t = gen.topicOf(i);
        ASSERT_LT(t, 5u);
        ++hits[t];
    }
    for (int h : hits)
        EXPECT_GT(h, 100); // roughly balanced
}

TEST(FeatureGen, SameTopicFeaturesAreCloserThanCrossTopic)
{
    // The semantic property the Query Cache relies on.
    FeatureGenerator gen(128, 4, 11, /*noise=*/0.2);
    auto dist = [](const std::vector<float> &x,
                   const std::vector<float> &y) {
        double d = 0;
        for (std::size_t i = 0; i < x.size(); ++i)
            d += (x[i] - y[i]) * (x[i] - y[i]);
        return d;
    };
    double same = 0, cross = 0;
    int n = 50;
    for (int i = 0; i < n; ++i) {
        auto a = gen.featureForTopic(0, static_cast<std::uint64_t>(i));
        auto b = gen.featureForTopic(
            0, static_cast<std::uint64_t>(i) + 1000);
        auto c = gen.featureForTopic(1, static_cast<std::uint64_t>(i));
        same += dist(a, b);
        cross += dist(a, c);
    }
    EXPECT_LT(same, cross * 0.5);
}

TEST(FeatureGen, RejectsBadConfig)
{
    EXPECT_THROW(FeatureGenerator(0, 5, 1), FatalError);
    EXPECT_THROW(FeatureGenerator(16, 0, 1), FatalError);
}

} // namespace
} // namespace deepstore::workloads
