/** @file Tests locking the five applications to Table 1 of the paper. */

#include <cmath>

#include <gtest/gtest.h>

#include "workloads/apps.h"

namespace deepstore::workloads {
namespace {

/** Table 1 rows: feature KB, #conv, #fc, #ew, MFLOPs, weight MB. */
struct Table1Row
{
    AppId id;
    double featureKb;
    std::size_t convLayers;
    std::size_t fcLayers;
    std::size_t ewLayers;
    double megaFlops;
    double weightMb;
};

const Table1Row kTable1[] = {
    {AppId::ReId, 44.0, 2, 2, 1, 9.8, 10.7},
    {AppId::MIR, 2.0, 0, 3, 0, 1.05, 2.0},
    {AppId::ESTP, 16.0, 0, 3, 0, 4.72, 9.0},
    {AppId::TIR, 2.0, 0, 3, 1, 0.79, 1.5},
    {AppId::TextQA, 0.8, 0, 1, 1, 0.08, 0.16},
};

class Table1Test : public ::testing::TestWithParam<Table1Row>
{
};

TEST_P(Table1Test, LayerCountsMatchExactly)
{
    const Table1Row &row = GetParam();
    AppInfo app = makeApp(row.id);
    EXPECT_EQ(app.scn.countLayers(nn::LayerKind::Conv2D),
              row.convLayers);
    EXPECT_EQ(app.scn.countLayers(nn::LayerKind::FullyConnected),
              row.fcLayers);
    EXPECT_EQ(app.scn.countLayers(nn::LayerKind::ElementWise),
              row.ewLayers);
}

TEST_P(Table1Test, FeatureSizeMatchesWithin2Percent)
{
    const Table1Row &row = GetParam();
    AppInfo app = makeApp(row.id);
    double kb = static_cast<double>(app.featureBytes()) / 1024.0;
    // 3% absorbs the paper's mixed binary/decimal KB usage (TextQA's
    // "0.8 KB" is 800 bytes = 0.78 KiB).
    EXPECT_NEAR(kb / row.featureKb, 1.0, 0.03)
        << app.name << ": " << kb << " KB";
}

TEST_P(Table1Test, FlopsMatchWithin10Percent)
{
    const Table1Row &row = GetParam();
    AppInfo app = makeApp(row.id);
    double mflops =
        static_cast<double>(app.scn.totalFlops()) / 1e6;
    EXPECT_NEAR(mflops / row.megaFlops, 1.0, 0.10)
        << app.name << ": " << mflops << " MFLOPs";
}

TEST_P(Table1Test, WeightBytesMatchWithin10Percent)
{
    const Table1Row &row = GetParam();
    AppInfo app = makeApp(row.id);
    double mb =
        static_cast<double>(app.scn.totalWeightBytes()) / 1e6;
    EXPECT_NEAR(mb / row.weightMb, 1.0, 0.10)
        << app.name << ": " << mb << " MB";
}

TEST_P(Table1Test, ModelsValidate)
{
    const Table1Row &row = GetParam();
    AppInfo app = makeApp(row.id);
    EXPECT_NO_THROW(app.scn.validate());
    EXPECT_NO_THROW(app.qcn.validate());
    EXPECT_EQ(app.qcn.featureDim(), app.scn.featureDim());
}

TEST_P(Table1Test, BatchSizesArePopulated)
{
    const Table1Row &row = GetParam();
    AppInfo app = makeApp(row.id);
    EXPECT_EQ(app.fig2BatchSizes.size(), 4u);
    EXPECT_GT(app.evalBatchSize, 0);
    // §6.2 batch size is the largest Fig. 2 batch size.
    EXPECT_EQ(app.evalBatchSize, app.fig2BatchSizes.back());
}

INSTANTIATE_TEST_SUITE_P(Table1, Table1Test,
                         ::testing::ValuesIn(kTable1),
                         [](const auto &info) {
                             return std::string(
                                 toString(info.param.id));
                         });

TEST(Apps, AllAppsReturnsFiveInTableOrder)
{
    auto apps = allApps();
    ASSERT_EQ(apps.size(), 5u);
    EXPECT_EQ(apps[0].name, "ReId");
    EXPECT_EQ(apps[1].name, "MIR");
    EXPECT_EQ(apps[2].name, "ESTP");
    EXPECT_EQ(apps[3].name, "TIR");
    EXPECT_EQ(apps[4].name, "TextQA");
}

TEST(Apps, TirMatchesPublishedLayerDims)
{
    // §3 spells out TIR: FCs of 512x512, 512x256, 256x2 plus a vector
    // product.
    AppInfo app = makeApp(AppId::TIR);
    const auto &layers = app.scn.layers();
    ASSERT_EQ(layers.size(), 4u);
    EXPECT_EQ(layers[1].fcIn, 512);
    EXPECT_EQ(layers[1].fcOut, 512);
    EXPECT_EQ(layers[2].fcIn, 512);
    EXPECT_EQ(layers[2].fcOut, 256);
    EXPECT_EQ(layers[3].fcIn, 256);
    EXPECT_EQ(layers[3].fcOut, 2);
}

TEST(Apps, ReIdFeatureSpansThreeFlashPages)
{
    // §6.4: "each of its feature vector uses three flash pages".
    AppInfo app = makeApp(AppId::ReId);
    EXPECT_EQ((app.featureBytes() + 16384 - 1) / 16384, 3u);
}

} // namespace
} // namespace deepstore::workloads
