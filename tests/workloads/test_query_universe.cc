/** @file Tests for the query universe and trace generation. */

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/executor.h"
#include "workloads/apps.h"
#include "workloads/query_universe.h"

namespace deepstore::workloads {
namespace {

QueryUniverseConfig
smallConfig()
{
    QueryUniverseConfig cfg;
    cfg.numQueries = 1000;
    cfg.numTopics = 50;
    cfg.seed = 13;
    return cfg;
}

TEST(QueryUniverse, ScoreIsSymmetricAndDeterministic)
{
    QueryUniverse u(smallConfig());
    for (std::uint64_t a = 0; a < 20; ++a) {
        for (std::uint64_t b = 0; b < 20; ++b) {
            EXPECT_DOUBLE_EQ(u.qcnScore(a, b), u.qcnScore(b, a));
            EXPECT_DOUBLE_EQ(u.qcnScore(a, b), u.qcnScore(a, b));
        }
    }
}

TEST(QueryUniverse, ScoreOrderingMatchesSemantics)
{
    QueryUniverse u(smallConfig());
    double same_q = 0, same_t = 0, diff_t = 0;
    int n_same_t = 0, n_diff_t = 0;
    const int n = 200;
    for (std::uint64_t i = 0; i < n; ++i) {
        same_q += u.qcnScore(i, i);
        for (std::uint64_t j = i + 1; j < i + 20; ++j) {
            double s = u.qcnScore(i, j);
            if (u.topicOf(i) == u.topicOf(j)) {
                same_t += s;
                ++n_same_t;
            } else {
                diff_t += s;
                ++n_diff_t;
            }
        }
    }
    same_q /= n;
    ASSERT_GT(n_same_t, 0);
    ASSERT_GT(n_diff_t, 0);
    same_t /= n_same_t;
    diff_t /= n_diff_t;
    EXPECT_GT(same_q, same_t);
    EXPECT_GT(same_t, diff_t);
    EXPECT_GT(same_q, 0.97);
    EXPECT_LT(diff_t, 0.6);
}

TEST(QueryUniverse, ScoresStayInUnitInterval)
{
    QueryUniverse u(smallConfig());
    for (std::uint64_t a = 0; a < 50; ++a) {
        for (std::uint64_t b = 0; b < 50; ++b) {
            double s = u.qcnScore(a, b);
            EXPECT_GE(s, 0.0);
            EXPECT_LE(s, 1.0);
        }
    }
}

TEST(QueryUniverse, UniformTraceCoversUniverse)
{
    QueryUniverse u(smallConfig());
    auto trace = u.trace(5000, Popularity::Uniform, 0.0, 1);
    ASSERT_EQ(trace.size(), 5000u);
    std::map<std::uint64_t, int> hist;
    for (auto q : trace) {
        ASSERT_LT(q, 1000u);
        ++hist[q];
    }
    // Uniform: most of the universe should be touched.
    EXPECT_GT(hist.size(), 900u);
}

TEST(QueryUniverse, ZipfTraceConcentrates)
{
    QueryUniverse u(smallConfig());
    auto zipf = u.trace(5000, Popularity::Zipf, 0.9, 1);
    std::map<std::uint64_t, int> hist;
    for (auto q : zipf)
        ++hist[q];
    int max_count = 0;
    for (auto &[q, c] : hist)
        max_count = std::max(max_count, c);
    // The hottest query appears far above the uniform expectation (5).
    EXPECT_GT(max_count, 50);
    // And fewer distinct queries are touched than under uniform.
    EXPECT_LT(hist.size(), 800u);
}

TEST(QueryUniverse, TraceIsDeterministicPerSeed)
{
    QueryUniverse u(smallConfig());
    EXPECT_EQ(u.trace(100, Popularity::Zipf, 0.7, 5),
              u.trace(100, Popularity::Zipf, 0.7, 5));
    EXPECT_NE(u.trace(100, Popularity::Zipf, 0.7, 5),
              u.trace(100, Popularity::Zipf, 0.7, 6));
}

TEST(QueryUniverse, RejectsEmptyUniverse)
{
    QueryUniverseConfig cfg = smallConfig();
    cfg.numQueries = 0;
    EXPECT_THROW(QueryUniverse{cfg}, FatalError);
}

/**
 * Cross-validation (DESIGN.md substitution): a real functional QCN
 * over the synthetic query features must reproduce the ordering of
 * the closed-form scores — same-topic pairs score above cross-topic
 * pairs — which justifies using the closed form in the large cache
 * sweeps.
 */
TEST(QueryUniverse, FunctionalQcnAgreesWithClosedForm)
{
    QueryUniverseConfig cfg = smallConfig();
    cfg.numTopics = 4;
    QueryUniverse u(cfg);

    AppInfo tir = makeApp(AppId::TIR);
    auto weights = nn::ModelWeights::random(tir.qcn, 31);
    nn::Executor qcn(tir.qcn, weights);

    double same = 0, diff = 0;
    int n_same = 0, n_diff = 0;
    for (std::uint64_t a = 0; a < 40; ++a) {
        for (std::uint64_t b = a + 1; b < 40; ++b) {
            auto fa = u.featureOf(a, tir.qcn.featureDim());
            auto fb = u.featureOf(b, tir.qcn.featureDim());
            float s = qcn.score(fa, fb);
            if (u.topicOf(a) == u.topicOf(b)) {
                same += s;
                ++n_same;
            } else {
                diff += s;
                ++n_diff;
            }
        }
    }
    ASSERT_GT(n_same, 0);
    ASSERT_GT(n_diff, 0);
    EXPECT_GT(same / n_same, diff / n_diff);
}

} // namespace
} // namespace deepstore::workloads
