/** @file Tests for timestamped query traces. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "workloads/trace.h"

namespace deepstore::workloads {
namespace {

QueryUniverse
smallUniverse()
{
    QueryUniverseConfig cfg;
    cfg.numQueries = 500;
    cfg.numTopics = 20;
    return QueryUniverse(cfg);
}

TEST(QueryTrace, GeneratesRequestedCountInOrder)
{
    auto u = smallUniverse();
    auto trace = QueryTrace::generate(u, 1000, 50.0,
                                      Popularity::Uniform, 0.0, 3);
    ASSERT_EQ(trace.size(), 1000u);
    double prev = 0.0;
    for (const auto &r : trace.records()) {
        EXPECT_GE(r.arrivalSeconds, prev);
        EXPECT_LT(r.queryId, 500u);
        prev = r.arrivalSeconds;
    }
}

TEST(QueryTrace, MeanInterArrivalMatchesRate)
{
    auto u = smallUniverse();
    auto trace = QueryTrace::generate(u, 20000, 100.0,
                                      Popularity::Uniform, 0.0, 5);
    double mean = trace.durationSeconds() / 20000.0;
    EXPECT_NEAR(mean, 1.0 / 100.0, 0.001);
}

TEST(QueryTrace, RejectsNonPositiveRate)
{
    auto u = smallUniverse();
    EXPECT_THROW(QueryTrace::generate(u, 10, 0.0,
                                      Popularity::Uniform, 0.0, 1),
                 FatalError);
}

TEST(QueryTrace, RejectsUnorderedRecords)
{
    std::vector<TraceRecord> bad{{1.0, 0}, {0.5, 1}};
    EXPECT_THROW(QueryTrace{bad}, FatalError);
}

TEST(QueryTrace, SaveLoadRoundTrips)
{
    auto u = smallUniverse();
    auto trace = QueryTrace::generate(u, 200, 10.0, Popularity::Zipf,
                                      0.7, 9);
    std::stringstream ss;
    trace.save(ss);
    auto loaded = QueryTrace::load(ss);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded.records()[i].queryId,
                  trace.records()[i].queryId);
}

TEST(QueryTrace, LoadRejectsGarbage)
{
    std::stringstream ss("0.5 not-a-number\n");
    EXPECT_THROW(QueryTrace::load(ss), FatalError);
}

TEST(QueryTrace, LoadSkipsCommentsAndBlanks)
{
    std::stringstream ss("# header\n\n0.5 42\n");
    auto trace = QueryTrace::load(ss);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.records()[0].queryId, 42u);
}

} // namespace
} // namespace deepstore::workloads
