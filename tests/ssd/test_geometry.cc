/** @file Unit and property tests for flash geometry and addressing. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "ssd/geometry.h"

namespace deepstore::ssd {
namespace {

FlashParams
smallParams()
{
    FlashParams p;
    p.channels = 4;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 8;
    p.pagesPerBlock = 4;
    return p;
}

TEST(FlashParams, DerivedQuantities)
{
    FlashParams p = smallParams();
    EXPECT_EQ(p.pagesPerPlane(), 32u);
    EXPECT_EQ(p.pagesPerChip(), 64u);
    EXPECT_EQ(p.pagesPerChannel(), 128u);
    EXPECT_EQ(p.totalPages(), 512u);
    EXPECT_EQ(p.totalBytes(), 512u * 16 * 1024);
    EXPECT_EQ(p.totalChips(), 8u);
}

TEST(FlashParams, DefaultMatchesPaperSetup)
{
    FlashParams p;
    // §6.1: 32 channels, 4 chips/channel, 8 planes, 512 blocks/plane,
    // 128 pages/block, 16 KB pages -> 1 TB class device.
    EXPECT_EQ(p.totalBytes(), 1ull * 1024 * 1024 * 1024 * 1024);
    EXPECT_NEAR(p.readLatency, 53e-6, 1e-12);
    EXPECT_NEAR(p.channelBandwidth, 800e6, 1);
    EXPECT_NEAR(p.internalBandwidth(), 25.6e9, 1e3);
}

TEST(FlashParams, ValidateRejectsZeroDims)
{
    FlashParams p = smallParams();
    p.channels = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p = smallParams();
    p.readLatency = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Geometry, ConsecutivePpnsStripeAcrossChannels)
{
    Geometry g(smallParams());
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(g.decode(i).channel, i);
    // After all channels, advance chip.
    EXPECT_EQ(g.decode(4).channel, 0u);
    EXPECT_EQ(g.decode(4).chip, 1u);
}

TEST(Geometry, EncodeDecodeRoundTripsAllPages)
{
    FlashParams p = smallParams();
    Geometry g(p);
    for (std::uint64_t ppn = 0; ppn < p.totalPages(); ++ppn) {
        PageAddress a = g.decode(ppn);
        EXPECT_EQ(g.encode(a), ppn);
        EXPECT_LT(a.channel, p.channels);
        EXPECT_LT(a.chip, p.chipsPerChannel);
        EXPECT_LT(a.plane, p.planesPerChip);
        EXPECT_LT(a.block, p.blocksPerPlane);
        EXPECT_LT(a.page, p.pagesPerBlock);
    }
}

TEST(Geometry, OutOfRangePpnPanics)
{
    FlashParams p = smallParams();
    Geometry g(p);
    EXPECT_THROW(g.decode(p.totalPages()), PanicError);
}

TEST(Geometry, SuperblockPagesAreContiguousPpns)
{
    // The FTL relies on each superblock (same block index everywhere)
    // being one contiguous PPN run.
    FlashParams p = smallParams();
    Geometry g(p);
    std::uint64_t super_pages =
        static_cast<std::uint64_t>(p.channels) * p.chipsPerChannel *
        p.planesPerChip * p.pagesPerBlock;
    for (std::uint64_t ppn = 0; ppn < p.totalPages(); ++ppn) {
        PageAddress a = g.decode(ppn);
        EXPECT_EQ(a.block, ppn / super_pages);
    }
}

} // namespace
} // namespace deepstore::ssd
