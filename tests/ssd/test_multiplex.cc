/**
 * @file
 * Tests for the read-path multiplexing of §4.5 ("Accelerator
 * Placement"): regular host I/O receives a busy signal while the
 * in-storage accelerators own the flash read path.
 */

#include <gtest/gtest.h>

#include "ssd/ssd.h"

namespace deepstore::ssd {
namespace {

FlashParams
smallParams()
{
    FlashParams p;
    p.channels = 2;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 8;
    p.pagesPerBlock = 8;
    return p;
}

TEST(Multiplex, HostReadDeferredUntilWindowEnds)
{
    sim::EventQueue events;
    Ssd dev(events, smallParams());
    dev.hostWrite(0, 4, nullptr);
    events.run();

    Tick window_end = events.now() + secondsToTicks(5e-3);
    dev.setAcceleratorWindow(window_end);
    Tick done = 0;
    dev.hostRead(0, 1, [&](Tick t) { done = t; });
    events.run();
    EXPECT_GT(done, window_end);
    // ... but it completes promptly after the window.
    EXPECT_LT(ticksToSeconds(done - window_end), 200e-6);
}

TEST(Multiplex, HostWriteAndTrimAlsoDeferred)
{
    sim::EventQueue events;
    Ssd dev(events, smallParams());
    Tick window_end = events.now() + secondsToTicks(2e-3);
    dev.setAcceleratorWindow(window_end);
    Tick wrote = 0;
    dev.hostWrite(0, 1, [&](Tick t) { wrote = t; });
    events.run();
    EXPECT_GT(wrote, window_end);

    dev.setAcceleratorWindow(events.now() + secondsToTicks(1e-3));
    Tick trimmed = 0;
    dev.hostTrim(0, 1, [&](Tick t) { trimmed = t; });
    events.run();
    EXPECT_GT(trimmed, dev.acceleratorWindowEnd() - 1);
}

TEST(Multiplex, NoWindowMeansNoDeferral)
{
    sim::EventQueue events;
    Ssd dev(events, smallParams());
    dev.hostWrite(0, 1, nullptr);
    events.run();
    Tick start = events.now();
    Tick done = 0;
    dev.hostRead(0, 1, [&](Tick t) { done = t; });
    events.run();
    // Command overhead + read + transfer only.
    EXPECT_LT(ticksToSeconds(done - start), 200e-6);
}

TEST(Multiplex, WindowOnlyExtendsForward)
{
    sim::EventQueue events;
    Ssd dev(events, smallParams());
    Tick far = events.now() + secondsToTicks(1e-3);
    dev.setAcceleratorWindow(far);
    dev.setAcceleratorWindow(far - 1000); // shrinking is ignored
    EXPECT_EQ(dev.acceleratorWindowEnd(), far);
}

} // namespace
} // namespace deepstore::ssd
