/** @file Unit tests for the per-channel flash controller timing. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/event_queue.h"
#include "ssd/flash_controller.h"

namespace deepstore::ssd {
namespace {

FlashParams
params()
{
    FlashParams p;
    p.channels = 2;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 8;
    p.pagesPerBlock = 4;
    p.readLatency = 50e-6;
    p.programLatency = 500e-6;
    p.eraseLatency = 3e-3;
    p.channelBandwidth = 800e6;
    return p;
}

struct Fixture
{
    sim::EventQueue events;
    StatGroup stats{"test"};
};

TEST(FlashController, SingleReadLatency)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 16 * 1024;
    cmd.onComplete = [&](Tick t) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    // 50us array read + 16KB / 800MB/s = 20.48us transfer.
    double seconds = ticksToSeconds(done);
    EXPECT_NEAR(seconds, 50e-6 + 20.48e-6, 1e-9);
}

TEST(FlashController, PartialTransferIsFaster)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 1024; // small feature, column read
    cmd.onComplete = [&](Tick t) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_NEAR(ticksToSeconds(done), 50e-6 + 1024.0 / 800e6, 1e-9);
}

TEST(FlashController, SamePlaneReadsSerialize)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i) {
        FlashCommand cmd;
        cmd.op = FlashOp::Read;
        cmd.addr = {0, 0, 0, 0, static_cast<std::uint32_t>(i)};
        cmd.transferBytes = 16 * 1024;
        cmd.onComplete = [&](Tick t) { done.push_back(t); };
        ctrl.issue(std::move(cmd));
    }
    f.events.run();
    ASSERT_EQ(done.size(), 2u);
    // The second array read starts only after the first array read
    // finishes (the plane is busy), but overlaps with the first
    // transfer (cache-read behaviour): 2 reads + 1 exposed transfer.
    EXPECT_NEAR(ticksToSeconds(done[1]),
                2 * 50e-6 + 20.48e-6, 1e-8);
}

TEST(FlashController, DifferentPlanesOverlapReads)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    std::vector<Tick> done;
    for (std::uint32_t plane = 0; plane < 2; ++plane) {
        FlashCommand cmd;
        cmd.op = FlashOp::Read;
        cmd.addr = {0, 0, plane, 0, 0};
        cmd.transferBytes = 16 * 1024;
        cmd.onComplete = [&](Tick t) { done.push_back(t); };
        ctrl.issue(std::move(cmd));
    }
    f.events.run();
    ASSERT_EQ(done.size(), 2u);
    // Array reads overlap; only the bus serializes the transfers.
    EXPECT_NEAR(ticksToSeconds(done[1]), 50e-6 + 2 * 20.48e-6, 1e-8);
}

TEST(FlashController, BusBoundStreamingHitsChannelBandwidth)
{
    // Stream many full pages across all planes: steady state must be
    // bus-limited at ~800 MB/s.
    Fixture f;
    FlashParams p = params();
    FlashController ctrl(f.events, p, 0, f.stats);
    const int n = 200;
    Tick last = 0;
    for (int i = 0; i < n; ++i) {
        FlashCommand cmd;
        cmd.op = FlashOp::Read;
        auto idx = static_cast<std::uint32_t>(i);
        cmd.addr = {0, idx % 2, (idx / 2) % 2, (idx / 4) % 8,
                    (idx / 32) % 4};
        cmd.transferBytes = p.pageBytes;
        cmd.onComplete = [&](Tick t) { last = std::max(last, t); };
        ctrl.issue(std::move(cmd));
    }
    f.events.run();
    double seconds = ticksToSeconds(last);
    double bytes = static_cast<double>(n) * 16 * 1024;
    double bw = bytes / seconds;
    EXPECT_GT(bw, 0.90 * 800e6);
    EXPECT_LE(bw, 800e6 * 1.001);
}

TEST(FlashController, ProgramTakesProgramLatency)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Program;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 16 * 1024;
    cmd.onComplete = [&](Tick t) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_NEAR(ticksToSeconds(done), 20.48e-6 + 500e-6, 1e-8);
}

TEST(FlashController, EraseOccupiesPlane)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick erase_done = 0, read_done = 0;
    FlashCommand er;
    er.op = FlashOp::Erase;
    er.addr = {0, 0, 0, 0, 0};
    er.onComplete = [&](Tick t) { erase_done = t; };
    ctrl.issue(std::move(er));
    FlashCommand rd;
    rd.op = FlashOp::Read;
    rd.addr = {0, 0, 0, 1, 0}; // same plane, different block
    rd.transferBytes = 1024;
    rd.onComplete = [&](Tick t) { read_done = t; };
    ctrl.issue(std::move(rd));
    f.events.run();
    EXPECT_NEAR(ticksToSeconds(erase_done), 3e-3, 1e-8);
    EXPECT_GT(read_done, erase_done); // read waited for the erase
}

TEST(FlashController, RejectsWrongChannel)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    FlashCommand cmd;
    cmd.addr = {1, 0, 0, 0, 0};
    EXPECT_THROW(ctrl.issue(std::move(cmd)), PanicError);
}

TEST(FlashController, RejectsOversizedTransfer)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    FlashCommand cmd;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 1ull << 40;
    EXPECT_THROW(ctrl.issue(std::move(cmd)), FatalError);
}

TEST(FlashController, EstimateMatchesActualForIdleChannel)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    PageAddress a{0, 1, 1, 2, 3};
    Tick est = ctrl.estimateReadCompletion(a, 4096);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = a;
    cmd.transferBytes = 4096;
    cmd.onComplete = [&](Tick t) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_EQ(est, done);
}

TEST(FlashController, CountsStats)
{
    Fixture f;
    StatGroup stats("s");
    FlashController ctrl(f.events, params(), 0, stats);
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 2048;
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_DOUBLE_EQ(stats.find("flash.pageReads")->value(), 1.0);
    EXPECT_DOUBLE_EQ(stats.find("flash.readBytes")->value(), 2048.0);
}

} // namespace
} // namespace deepstore::ssd
