/** @file Unit tests for the per-channel flash controller timing. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/event_queue.h"
#include "ssd/flash_controller.h"

namespace deepstore::ssd {
namespace {

FlashParams
params()
{
    FlashParams p;
    p.channels = 2;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 8;
    p.pagesPerBlock = 4;
    p.readLatency = 50e-6;
    p.programLatency = 500e-6;
    p.eraseLatency = 3e-3;
    p.channelBandwidth = 800e6;
    return p;
}

struct Fixture
{
    sim::EventQueue events;
    StatGroup stats{"test"};
};

TEST(FlashController, SingleReadLatency)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 16 * 1024;
    cmd.onComplete = [&](Tick t, FlashStatus) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    // 50us array read + 16KB / 800MB/s = 20.48us transfer.
    double seconds = ticksToSeconds(done);
    EXPECT_NEAR(seconds, 50e-6 + 20.48e-6, 1e-9);
}

TEST(FlashController, PartialTransferIsFaster)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 1024; // small feature, column read
    cmd.onComplete = [&](Tick t, FlashStatus) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_NEAR(ticksToSeconds(done), 50e-6 + 1024.0 / 800e6, 1e-9);
}

TEST(FlashController, SamePlaneReadsSerialize)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    std::vector<Tick> done;
    for (int i = 0; i < 2; ++i) {
        FlashCommand cmd;
        cmd.op = FlashOp::Read;
        cmd.addr = {0, 0, 0, 0, static_cast<std::uint32_t>(i)};
        cmd.transferBytes = 16 * 1024;
        cmd.onComplete = [&](Tick t, FlashStatus) { done.push_back(t); };
        ctrl.issue(std::move(cmd));
    }
    f.events.run();
    ASSERT_EQ(done.size(), 2u);
    // The second array read starts only after the first array read
    // finishes (the plane is busy), but overlaps with the first
    // transfer (cache-read behaviour): 2 reads + 1 exposed transfer.
    EXPECT_NEAR(ticksToSeconds(done[1]),
                2 * 50e-6 + 20.48e-6, 1e-8);
}

TEST(FlashController, DifferentPlanesOverlapReads)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    std::vector<Tick> done;
    for (std::uint32_t plane = 0; plane < 2; ++plane) {
        FlashCommand cmd;
        cmd.op = FlashOp::Read;
        cmd.addr = {0, 0, plane, 0, 0};
        cmd.transferBytes = 16 * 1024;
        cmd.onComplete = [&](Tick t, FlashStatus) { done.push_back(t); };
        ctrl.issue(std::move(cmd));
    }
    f.events.run();
    ASSERT_EQ(done.size(), 2u);
    // Array reads overlap; only the bus serializes the transfers.
    EXPECT_NEAR(ticksToSeconds(done[1]), 50e-6 + 2 * 20.48e-6, 1e-8);
}

TEST(FlashController, BusBoundStreamingHitsChannelBandwidth)
{
    // Stream many full pages across all planes: steady state must be
    // bus-limited at ~800 MB/s.
    Fixture f;
    FlashParams p = params();
    FlashController ctrl(f.events, p, 0, f.stats);
    const int n = 200;
    Tick last = 0;
    for (int i = 0; i < n; ++i) {
        FlashCommand cmd;
        cmd.op = FlashOp::Read;
        auto idx = static_cast<std::uint32_t>(i);
        cmd.addr = {0, idx % 2, (idx / 2) % 2, (idx / 4) % 8,
                    (idx / 32) % 4};
        cmd.transferBytes = p.pageBytes;
        cmd.onComplete = [&](Tick t, FlashStatus) { last = std::max(last, t); };
        ctrl.issue(std::move(cmd));
    }
    f.events.run();
    double seconds = ticksToSeconds(last);
    double bytes = static_cast<double>(n) * 16 * 1024;
    double bw = bytes / seconds;
    EXPECT_GT(bw, 0.90 * 800e6);
    EXPECT_LE(bw, 800e6 * 1.001);
}

TEST(FlashController, ProgramTakesProgramLatency)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Program;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 16 * 1024;
    cmd.onComplete = [&](Tick t, FlashStatus) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_NEAR(ticksToSeconds(done), 20.48e-6 + 500e-6, 1e-8);
}

TEST(FlashController, EraseOccupiesPlane)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    Tick erase_done = 0, read_done = 0;
    FlashCommand er;
    er.op = FlashOp::Erase;
    er.addr = {0, 0, 0, 0, 0};
    er.onComplete = [&](Tick t, FlashStatus) { erase_done = t; };
    ctrl.issue(std::move(er));
    FlashCommand rd;
    rd.op = FlashOp::Read;
    rd.addr = {0, 0, 0, 1, 0}; // same plane, different block
    rd.transferBytes = 1024;
    rd.onComplete = [&](Tick t, FlashStatus) { read_done = t; };
    ctrl.issue(std::move(rd));
    f.events.run();
    EXPECT_NEAR(ticksToSeconds(erase_done), 3e-3, 1e-8);
    EXPECT_GT(read_done, erase_done); // read waited for the erase
}

TEST(FlashController, RejectsWrongChannel)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    FlashCommand cmd;
    cmd.addr = {1, 0, 0, 0, 0};
    EXPECT_THROW(ctrl.issue(std::move(cmd)), PanicError);
}

TEST(FlashController, RejectsOversizedTransfer)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    FlashCommand cmd;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 1ull << 40;
    EXPECT_THROW(ctrl.issue(std::move(cmd)), FatalError);
}

TEST(FlashController, EstimateMatchesActualForIdleChannel)
{
    Fixture f;
    FlashController ctrl(f.events, params(), 0, f.stats);
    PageAddress a{0, 1, 1, 2, 3};
    Tick est = ctrl.estimateReadCompletion(a, 4096);
    Tick done = 0;
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = a;
    cmd.transferBytes = 4096;
    cmd.onComplete = [&](Tick t, FlashStatus) { done = t; };
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_EQ(est, done);
}

TEST(FlashController, CountsStats)
{
    Fixture f;
    StatGroup stats("s");
    FlashController ctrl(f.events, params(), 0, stats);
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = {0, 0, 0, 0, 0};
    cmd.transferBytes = 2048;
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_DOUBLE_EQ(stats.find("flash.pageReads")->value(), 1.0);
    EXPECT_DOUBLE_EQ(stats.find("flash.readBytes")->value(), 2048.0);
}

TEST(FlashController, EstimateMatchesActualForRetryLadderPages)
{
    // Regression: estimateReadCompletion used to ignore the
    // readRetryPenalty stretch that issue() charges for needsRetry()
    // pages, so busy-horizon estimates drifted from reality on every
    // retried read. Pin estimate == actual across a page population
    // that contains both clean and retried reads.
    FlashParams p = params();
    p.readRetryProbability = 0.5; // deterministic hash per address
    Fixture f;
    FlashController ctrl(f.events, p, 0, f.stats);
    int retried = 0;
    for (std::uint32_t page = 0; page < 4; ++page) {
        for (std::uint32_t block = 0; block < 8; ++block) {
            PageAddress a{0, block % 2, (block / 2) % 2, block, page};
            Tick est = ctrl.estimateReadCompletion(a, 4096);
            Tick done = 0;
            FlashCommand cmd;
            cmd.op = FlashOp::Read;
            cmd.addr = a;
            cmd.transferBytes = 4096;
            cmd.onComplete = [&](Tick t, FlashStatus st) {
                done = t;
                if (st == FlashStatus::RetriedOk)
                    ++retried;
            };
            ctrl.issue(std::move(cmd));
            f.events.run();
            EXPECT_EQ(est, done)
                << "block " << block << " page " << page;
        }
    }
    // The population must actually exercise the retry ladder.
    EXPECT_GT(retried, 0);
}

TEST(FlashController, EstimateMatchesActualUnderInjection)
{
    // With stalls and uncorrectable pages injected, the estimate
    // must still equal the actual completion tick for every page:
    // both sides share readTiming() by construction.
    FlashParams p = params();
    p.readRetryProbability = 0.3;
    p.faults.seed = 99;
    p.faults.uncorrectableReadProbability = 0.25;
    p.faults.planeStallProbability = 0.5;
    p.faults.planeStallSeconds = 7e-6;
    p.faults.channelStallProbability = 0.5;
    p.faults.channelStallSeconds = 3e-6;
    Fixture f;
    FlashController ctrl(f.events, p, 0, f.stats);
    int uncorrectable = 0;
    for (std::uint32_t page = 0; page < 4; ++page) {
        for (std::uint32_t block = 0; block < 8; ++block) {
            for (std::uint32_t attempt = 0; attempt < 2; ++attempt) {
                PageAddress a{0, block % 2, (block / 2) % 2, block,
                              page};
                Tick est =
                    ctrl.estimateReadCompletion(a, 4096, attempt);
                Tick done = 0;
                FlashCommand cmd;
                cmd.op = FlashOp::Read;
                cmd.addr = a;
                cmd.transferBytes = 4096;
                cmd.attempt = attempt;
                cmd.onComplete = [&](Tick t, FlashStatus st) {
                    done = t;
                    if (st == FlashStatus::Uncorrectable)
                        ++uncorrectable;
                };
                ctrl.issue(std::move(cmd));
                f.events.run();
                EXPECT_EQ(est, done)
                    << "block " << block << " page " << page
                    << " attempt " << attempt;
            }
        }
    }
    EXPECT_GT(uncorrectable, 0);
    EXPECT_GT(f.stats.find("flash.uncorrectableReads")->value(), 0.0);
}

TEST(FlashController, UncorrectableReadSkipsTheBusTransfer)
{
    // A blacklisted page costs the full retry ladder on the array
    // but never occupies the channel bus; completion lands at
    // read_done with status Uncorrectable.
    FlashParams p = params();
    PageAddress bad{0, 0, 0, 2, 1};
    p.faults.pageBlacklist = {faultKey(bad)};
    Fixture f;
    FlashController ctrl(f.events, p, 0, f.stats);
    Tick done = 0;
    FlashStatus status = FlashStatus::Ok;
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = bad;
    cmd.transferBytes = 16 * 1024;
    cmd.onComplete = [&](Tick t, FlashStatus st) {
        done = t;
        status = st;
    };
    ctrl.issue(std::move(cmd));
    f.events.run();
    EXPECT_EQ(status, FlashStatus::Uncorrectable);
    // Full ladder: readLatency * (1 + penalty), no transfer term.
    EXPECT_EQ(done, secondsToTicks(p.readLatency *
                                   (1.0 + p.readRetryPenalty)));
    EXPECT_DOUBLE_EQ(
        f.stats.find("flash.uncorrectableReads")->value(), 1.0);
    EXPECT_EQ(f.stats.find("flash.readBytes"), nullptr);
}

} // namespace
} // namespace deepstore::ssd
