/**
 * @file
 * Tests for the deterministic fault-injection subsystem: pure-hash
 * decisions (no draw-order dependence), schedule replay across
 * injector copies, blacklist/unit-failure schedules, and the
 * "disabled schedule injects nothing" contract the tick-identity
 * regression relies on.
 */

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "ssd/flash_controller.h"

namespace deepstore {
namespace {

using Domain = FaultInjector::Domain;

TEST(FaultInjector, HashUniformIsAPureFunction)
{
    // Same inputs -> same output, independent of call order or any
    // other draws in between.
    double a = FaultInjector::hashUniform(
        42, Domain::FlashUncorrectable, 7, 0);
    FaultInjector::hashUniform(42, Domain::PlaneStall, 123, 5);
    FaultInjector::hashUniform(99, Domain::FlashUncorrectable, 7, 0);
    double b = FaultInjector::hashUniform(
        42, Domain::FlashUncorrectable, 7, 0);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 1.0);

    // Seed, domain, key, and attempt all perturb the draw.
    EXPECT_NE(a, FaultInjector::hashUniform(
                     43, Domain::FlashUncorrectable, 7, 0));
    EXPECT_NE(a, FaultInjector::hashUniform(42, Domain::PlaneStall,
                                            7, 0));
    EXPECT_NE(a, FaultInjector::hashUniform(
                     42, Domain::FlashUncorrectable, 8, 0));
    EXPECT_NE(a, FaultInjector::hashUniform(
                     42, Domain::FlashUncorrectable, 7, 1));
}

TEST(FaultInjector, CopiesReplayTheSameSchedule)
{
    FaultConfig cfg;
    cfg.seed = 1234;
    cfg.uncorrectableReadProbability = 0.3;
    cfg.planeStallProbability = 0.2;
    cfg.planeStallSeconds = 5e-6;
    cfg.channelStallProbability = 0.1;
    cfg.channelStallSeconds = 2e-6;

    FaultInjector a(cfg);
    FaultInjector b(cfg); // independent instance, same schedule
    int failures = 0;
    for (std::uint64_t key = 0; key < 2000; ++key) {
        for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
            EXPECT_EQ(a.pageUncorrectable(key, attempt),
                      b.pageUncorrectable(key, attempt));
            EXPECT_EQ(a.planeStallTicks(key, attempt),
                      b.planeStallTicks(key, attempt));
            EXPECT_EQ(a.channelStallTicks(key, attempt),
                      b.channelStallTicks(key, attempt));
            if (a.pageUncorrectable(key, attempt))
                ++failures;
        }
    }
    // The probability actually injects (sanity on the hash range).
    EXPECT_GT(failures, 0);
    EXPECT_LT(failures, 2000 * 3);
}

TEST(FaultInjector, DifferentSeedsDisagree)
{
    FaultConfig c1;
    c1.seed = 1;
    c1.uncorrectableReadProbability = 0.5;
    FaultConfig c2 = c1;
    c2.seed = 2;
    FaultInjector a(c1), b(c2);
    int diff = 0;
    for (std::uint64_t key = 0; key < 512; ++key)
        if (a.pageUncorrectable(key, 0) !=
            b.pageUncorrectable(key, 0))
            ++diff;
    EXPECT_GT(diff, 0);
}

TEST(FaultInjector, RetriesRerollPerAttempt)
{
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.uncorrectableReadProbability = 0.5;
    FaultInjector inj(cfg);
    // Some page that fails on attempt 0 must succeed on a later
    // attempt (independent re-roll), and vice versa.
    bool saw_recovery = false;
    for (std::uint64_t key = 0; key < 256 && !saw_recovery; ++key) {
        if (inj.pageUncorrectable(key, 0) &&
            !inj.pageUncorrectable(key, 1))
            saw_recovery = true;
    }
    EXPECT_TRUE(saw_recovery);
}

TEST(FaultInjector, BlacklistedPagesFailEveryAttempt)
{
    const std::uint64_t key =
        ssd::faultKey(ssd::PageAddress{1, 0, 1, 3, 2});
    FaultConfig cfg;
    cfg.pageBlacklist = {key};
    FaultInjector inj(cfg);
    EXPECT_TRUE(inj.flashFaultsEnabled());
    EXPECT_TRUE(inj.pageBlacklisted(key));
    for (std::uint32_t attempt = 0; attempt < 8; ++attempt)
        EXPECT_TRUE(inj.pageUncorrectable(key, attempt));
    // Non-blacklisted neighbours are untouched (probability 0).
    EXPECT_FALSE(inj.pageUncorrectable(key + 1, 0));
}

TEST(FaultInjector, UnitFailureSchedule)
{
    FaultConfig cfg;
    cfg.unitFailures = {UnitFailure{1, 3, 12345},
                        UnitFailure{2, 0, 999}};
    FaultInjector inj(cfg);
    EXPECT_TRUE(inj.enabled());
    EXPECT_FALSE(inj.flashFaultsEnabled());
    ASSERT_TRUE(inj.unitFailureTick(1, 3).has_value());
    EXPECT_EQ(*inj.unitFailureTick(1, 3), 12345u);
    ASSERT_TRUE(inj.unitFailureTick(2, 0).has_value());
    EXPECT_EQ(*inj.unitFailureTick(2, 0), 999u);
    EXPECT_FALSE(inj.unitFailureTick(1, 2).has_value());
    EXPECT_FALSE(inj.unitFailureTick(0, 0).has_value());
}

TEST(FaultInjector, StallDurationsComeFromTheSchedule)
{
    FaultConfig cfg;
    cfg.planeStallProbability = 1.0;
    cfg.planeStallSeconds = 5e-6;
    cfg.channelStallProbability = 1.0;
    cfg.channelStallSeconds = 2e-6;
    FaultInjector inj(cfg);
    EXPECT_EQ(inj.planeStallTicks(11, 0), secondsToTicks(5e-6));
    EXPECT_EQ(inj.channelStallTicks(11, 0), secondsToTicks(2e-6));
}

TEST(FaultInjector, DefaultScheduleInjectsNothing)
{
    FaultInjector inj{FaultConfig{}};
    EXPECT_FALSE(inj.enabled());
    EXPECT_FALSE(inj.flashFaultsEnabled());
    for (std::uint64_t key = 0; key < 64; ++key) {
        EXPECT_FALSE(inj.pageUncorrectable(key, 0));
        EXPECT_EQ(inj.planeStallTicks(key, 0), 0u);
        EXPECT_EQ(inj.channelStallTicks(key, 0), 0u);
    }
    // A default-constructed injector behaves identically.
    FaultInjector none;
    EXPECT_FALSE(none.enabled());
}

TEST(FaultInjector, RejectsInvalidProbabilities)
{
    FaultConfig cfg;
    cfg.uncorrectableReadProbability = 1.5;
    EXPECT_THROW(FaultInjector{cfg}, FatalError);
    cfg.uncorrectableReadProbability = -0.1;
    EXPECT_THROW(FaultInjector{cfg}, FatalError);
    cfg.uncorrectableReadProbability = 0.0;
    cfg.planeStallProbability = 2.0;
    EXPECT_THROW(FaultInjector{cfg}, FatalError);
}

TEST(FaultInjector, PartialPageCorruptionIsAPersistentCellProperty)
{
    FaultConfig cfg;
    cfg.seed = 77;
    cfg.partialPageCorruptionProbability = 0.1;
    cfg.sectorsPerPage = 8;
    FaultInjector inj(cfg);
    FaultInjector twin(cfg); // independent copy, same draws

    int corrupt_pages = 0;
    for (std::uint64_t key = 0; key < 512; ++key) {
        bool any = false;
        for (std::uint32_t s = 0; s < cfg.sectorsPerPage; ++s) {
            // Pure hash: copies agree, and repeated probes of the
            // same cells return the same verdict (the damage lives
            // in the flash, not in an RNG stream).
            EXPECT_EQ(inj.sectorCorrupted(key, s),
                      twin.sectorCorrupted(key, s));
            EXPECT_EQ(inj.sectorCorrupted(key, s),
                      inj.sectorCorrupted(key, s));
            any = any || inj.sectorCorrupted(key, s);
        }
        // The page-level verdict is exactly "any sector bad".
        EXPECT_EQ(inj.pageHasCorruptedSector(key), any);
        if (any)
            ++corrupt_pages;
    }
    // ~57% of pages carry at least one bad sector at these rates:
    // the schedule genuinely injects, but not everywhere.
    EXPECT_GT(corrupt_pages, 0);
    EXPECT_LT(corrupt_pages, 512);
}

TEST(FaultInjector, PartialPageCorruptionRerollsOnRewrite)
{
    // Rewriting a logical page lands it on a fresh ppn — a new fault
    // key — so the scrubber's repair path must see an independent
    // draw. Distinct keys must disagree somewhere at p = 0.1.
    FaultConfig cfg;
    cfg.seed = 5;
    cfg.partialPageCorruptionProbability = 0.1;
    cfg.sectorsPerPage = 4;
    FaultInjector inj(cfg);
    int moved_clean = 0;
    for (std::uint64_t key = 0; key < 256; ++key)
        if (inj.pageHasCorruptedSector(key) &&
            !inj.pageHasCorruptedSector(key + 10000))
            ++moved_clean;
    EXPECT_GT(moved_clean, 0);
}

TEST(FaultInjector, PartialPageCorruptionDisabledAndValidated)
{
    // Probability 0 short-circuits without hashing.
    FaultConfig off;
    off.partialPageCorruptionProbability = 0.0;
    FaultInjector none(off);
    EXPECT_FALSE(none.flashFaultsEnabled());
    for (std::uint64_t key = 0; key < 64; ++key)
        EXPECT_FALSE(none.pageHasCorruptedSector(key));

    FaultConfig bad;
    bad.partialPageCorruptionProbability = 1.5;
    EXPECT_THROW(FaultInjector{bad}, FatalError);
    bad.partialPageCorruptionProbability = 0.2;
    bad.sectorsPerPage = 0;
    EXPECT_THROW(FaultInjector{bad}, FatalError);
}

TEST(FaultInjector, FaultKeysAreDisjointAcrossPages)
{
    // Distinct addresses map to distinct keys (disjoint bit fields).
    auto k = [](std::uint32_t ch, std::uint32_t chip,
                std::uint32_t plane, std::uint32_t block,
                std::uint32_t page) {
        return ssd::faultKey(
            ssd::PageAddress{ch, chip, plane, block, page});
    };
    EXPECT_NE(k(0, 0, 0, 0, 1), k(0, 0, 0, 1, 0));
    EXPECT_NE(k(0, 0, 1, 0, 0), k(0, 1, 0, 0, 0));
    EXPECT_NE(k(1, 0, 0, 0, 0), k(0, 0, 0, 0, 1));
    EXPECT_EQ(k(2, 1, 1, 3, 7), k(2, 1, 1, 3, 7));
}

} // namespace
} // namespace deepstore
