/** @file Unit and property tests for the block-level FTL. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "ssd/ftl.h"

namespace deepstore::ssd {
namespace {

FlashParams
smallParams()
{
    FlashParams p;
    p.channels = 2;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 4;
    p.pagesPerBlock = 4;
    return p;
}

struct FtlFixture : ::testing::Test
{
    FlashParams p = smallParams();
    StatGroup stats{"ftl"};
    Ftl ftl{p, stats};
};

TEST_F(FtlFixture, Shape)
{
    // superblock = 2ch * 2chips * 2planes * 4pages = 32 pages.
    EXPECT_EQ(ftl.superblockPages(), 32u);
    EXPECT_EQ(ftl.superblockCount(), 4u);
    EXPECT_EQ(ftl.freeSuperblocks(), 4u);
}

TEST_F(FtlFixture, ReadOfUnmappedPageIsFatal)
{
    EXPECT_THROW(ftl.translate(0), FatalError);
    EXPECT_FALSE(ftl.isMapped(0));
}

TEST_F(FtlFixture, SequentialWritesArePpnContiguous)
{
    for (std::uint64_t lpn = 0; lpn < 64; ++lpn)
        ftl.write(lpn);
    // Sequentially written LPNs stay offset-addressable: the PPN gap
    // within a superblock equals the LPN gap (§4.4's requirement).
    std::uint64_t base = ftl.translate(0);
    for (std::uint64_t lpn = 1; lpn < 32; ++lpn)
        EXPECT_EQ(ftl.translate(lpn), base + lpn);
}

TEST_F(FtlFixture, AllocatesNewSuperblockPerLogicalBlock)
{
    ftl.write(0);
    ftl.write(32); // second logical superblock
    EXPECT_EQ(ftl.freeSuperblocks(), 2u);
}

TEST_F(FtlFixture, OverwriteTriggersMigration)
{
    for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
        ftl.write(lpn);
    WriteResult wr = ftl.write(3); // in-place overwrite
    EXPECT_EQ(wr.migratedPages, 7u);
    EXPECT_EQ(wr.erasedBlocks, 1u);
    // Still translates, to a different physical superblock.
    EXPECT_NO_THROW(ftl.translate(3));
    EXPECT_EQ(ftl.totalErases(), 1u);
}

TEST_F(FtlFixture, TrimFreesFullyInvalidSuperblocks)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn);
    EXPECT_EQ(ftl.freeSuperblocks(), 3u);
    auto erased = ftl.trim(0, 32);
    EXPECT_EQ(erased.size(), 1u);
    EXPECT_EQ(ftl.freeSuperblocks(), 4u);
    EXPECT_FALSE(ftl.isMapped(0));
}

TEST_F(FtlFixture, PartialTrimKeepsSuperblockMapped)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn);
    EXPECT_TRUE(ftl.trim(0, 16).empty());
    EXPECT_FALSE(ftl.isMapped(0));
    EXPECT_TRUE(ftl.isMapped(16));
}

TEST_F(FtlFixture, DeviceFullIsFatal)
{
    // 4 superblocks x 32 pages = 128 pages capacity.
    for (std::uint64_t lpn = 0; lpn < 128; ++lpn)
        ftl.write(lpn);
    EXPECT_EQ(ftl.freeSuperblocks(), 0u);
    // Overwrite needs a spare superblock for migration -> device full.
    EXPECT_THROW(ftl.write(0), FatalError);
}

TEST_F(FtlFixture, WriteBeyondCapacityIsFatal)
{
    EXPECT_THROW(ftl.write(1ull << 40), FatalError);
    EXPECT_THROW(ftl.translate(1ull << 40), FatalError);
}

TEST_F(FtlFixture, WearLevelingPrefersLeastErased)
{
    // Cycle write/trim to age superblocks, then check the spread
    // stays tight (the allocator always picks the least-worn block).
    for (int round = 0; round < 12; ++round) {
        for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
            ftl.write(lpn);
        ftl.trim(0, 32);
    }
    EXPECT_LE(ftl.eraseSpread(), 1u);
    EXPECT_EQ(ftl.totalErases(), 12u);
}

// Property: across random write/trim sequences the FTL never double
// books a physical superblock.
TEST_F(FtlFixture, MappingStaysInjective)
{
    ftl.write(0);
    ftl.write(32);
    ftl.write(64);
    std::uint64_t p0 = ftl.translate(0) / ftl.superblockPages();
    std::uint64_t p1 = ftl.translate(32) / ftl.superblockPages();
    std::uint64_t p2 = ftl.translate(64) / ftl.superblockPages();
    EXPECT_NE(p0, p1);
    EXPECT_NE(p1, p2);
    EXPECT_NE(p0, p2);
}

} // namespace
} // namespace deepstore::ssd
