/** @file Unit and property tests for the block-level FTL. */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "ssd/ftl.h"

namespace deepstore::ssd {
namespace {

FlashParams
smallParams()
{
    FlashParams p;
    p.channels = 2;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 4;
    p.pagesPerBlock = 4;
    return p;
}

struct FtlFixture : ::testing::Test
{
    FlashParams p = smallParams();
    StatGroup stats{"ftl"};
    Ftl ftl{p, stats};
};

TEST_F(FtlFixture, Shape)
{
    // superblock = 2ch * 2chips * 2planes * 4pages = 32 pages.
    EXPECT_EQ(ftl.superblockPages(), 32u);
    EXPECT_EQ(ftl.superblockCount(), 4u);
    EXPECT_EQ(ftl.freeSuperblocks(), 4u);
}

TEST_F(FtlFixture, ReadOfUnmappedPageIsFatal)
{
    EXPECT_THROW(ftl.translate(0), FatalError);
    EXPECT_FALSE(ftl.isMapped(0));
}

TEST_F(FtlFixture, SequentialWritesArePpnContiguous)
{
    for (std::uint64_t lpn = 0; lpn < 64; ++lpn)
        ftl.write(lpn);
    // Sequentially written LPNs stay offset-addressable: the PPN gap
    // within a superblock equals the LPN gap (§4.4's requirement).
    std::uint64_t base = ftl.translate(0);
    for (std::uint64_t lpn = 1; lpn < 32; ++lpn)
        EXPECT_EQ(ftl.translate(lpn), base + lpn);
}

TEST_F(FtlFixture, AllocatesNewSuperblockPerLogicalBlock)
{
    ftl.write(0);
    ftl.write(32); // second logical superblock
    EXPECT_EQ(ftl.freeSuperblocks(), 2u);
}

TEST_F(FtlFixture, OverwriteTriggersMigration)
{
    for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
        ftl.write(lpn);
    WriteResult wr = ftl.write(3); // in-place overwrite
    EXPECT_EQ(wr.migratedPages, 7u);
    EXPECT_EQ(wr.erasedBlocks, 1u);
    // Still translates, to a different physical superblock.
    EXPECT_NO_THROW(ftl.translate(3));
    EXPECT_EQ(ftl.totalErases(), 1u);
}

TEST_F(FtlFixture, TrimFreesFullyInvalidSuperblocks)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn);
    EXPECT_EQ(ftl.freeSuperblocks(), 3u);
    auto erased = ftl.trim(0, 32);
    EXPECT_EQ(erased.size(), 1u);
    EXPECT_EQ(ftl.freeSuperblocks(), 4u);
    EXPECT_FALSE(ftl.isMapped(0));
}

TEST_F(FtlFixture, PartialTrimKeepsSuperblockMapped)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn);
    EXPECT_TRUE(ftl.trim(0, 16).empty());
    EXPECT_FALSE(ftl.isMapped(0));
    EXPECT_TRUE(ftl.isMapped(16));
}

TEST_F(FtlFixture, DeviceFullIsFatal)
{
    // 4 superblocks x 32 pages = 128 pages capacity.
    for (std::uint64_t lpn = 0; lpn < 128; ++lpn)
        ftl.write(lpn);
    EXPECT_EQ(ftl.freeSuperblocks(), 0u);
    // Overwrite needs a spare superblock for migration -> device full.
    EXPECT_THROW(ftl.write(0), FatalError);
}

TEST_F(FtlFixture, WriteBeyondCapacityIsFatal)
{
    EXPECT_THROW(ftl.write(1ull << 40), FatalError);
    EXPECT_THROW(ftl.translate(1ull << 40), FatalError);
}

TEST_F(FtlFixture, WearLevelingPrefersLeastErased)
{
    // Cycle write/trim to age superblocks, then check the spread
    // stays tight (the allocator always picks the least-worn block).
    for (int round = 0; round < 12; ++round) {
        for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
            ftl.write(lpn);
        ftl.trim(0, 32);
    }
    EXPECT_LE(ftl.eraseSpread(), 1u);
    EXPECT_EQ(ftl.totalErases(), 12u);
}

// Property: across random write/trim sequences the FTL never double
// books a physical superblock.
TEST_F(FtlFixture, MappingStaysInjective)
{
    ftl.write(0);
    ftl.write(32);
    ftl.write(64);
    std::uint64_t p0 = ftl.translate(0) / ftl.superblockPages();
    std::uint64_t p1 = ftl.translate(32) / ftl.superblockPages();
    std::uint64_t p2 = ftl.translate(64) / ftl.superblockPages();
    EXPECT_NE(p0, p1);
    EXPECT_NE(p1, p2);
    EXPECT_NE(p0, p2);
}

// ---- lifecycle model (FlashParams::wear) -------------------------

FlashParams
wearParams()
{
    FlashParams p = smallParams();
    p.blocksPerPlane = 8; // 8 superblocks of 32 pages each
    p.wear.enabled = true;
    p.wear.baseRber = 1e-4;
    p.wear.rberPerErase = 2e-3;
    p.wear.rberPerRead = 1e-4;
    p.wear.rberPerUncorrectable = 3e-2;
    p.wear.relocateRberThreshold = 0.05;
    p.wear.retireRberThreshold = 0.2;
    p.wear.maxEraseCount = 40;
    return p;
}

struct WearFixture : ::testing::Test
{
    FlashParams p = wearParams();
    StatGroup stats{"ftl"};
    Ftl ftl{p, stats};
};

TEST_F(WearFixture, RberGrowsWithReadsAndErases)
{
    ftl.write(0, 0);
    std::uint64_t ppn = ftl.translate(0);
    double base = ftl.uncorrectableProbability(ppn, 0);
    EXPECT_NEAR(base, 1e-4, 1e-12);
    for (int i = 0; i < 10; ++i)
        ftl.noteRead(ppn);
    EXPECT_NEAR(ftl.uncorrectableProbability(ppn, 0),
                1e-4 + 10 * 1e-4, 1e-12);
    // Age every superblock uniformly with write/trim cycles, then the
    // least-worn allocation still carries the accumulated erase term.
    ftl.trim(0, 32);
    for (int round = 0; round < 5; ++round) {
        for (std::uint64_t lpn = 0; lpn < 256; ++lpn)
            ftl.write(lpn, 0);
        ftl.trim(0, 256);
    }
    ftl.write(0, 0);
    std::uint64_t aged_phys =
        ftl.translate(0) / ftl.superblockPages();
    double aged = ftl.uncorrectableProbability(ftl.translate(0), 0);
    EXPECT_NEAR(aged,
                1e-4 +
                    static_cast<double>(ftl.eraseCount(
                        static_cast<std::uint32_t>(aged_phys))) *
                        2e-3,
                1e-12);
    EXPECT_GT(aged, base);
}

TEST_F(WearFixture, RetentionTermUsesProgramAge)
{
    FlashParams rp = wearParams();
    rp.wear.rberPerSecond = 1e-3;
    StatGroup s{"ftl"};
    Ftl f{rp, s};
    f.write(0, secondsToTicks(1.0));
    std::uint64_t ppn = f.translate(0);
    double young = f.uncorrectableProbability(ppn, secondsToTicks(1.0));
    double old_ = f.uncorrectableProbability(ppn, secondsToTicks(11.0));
    EXPECT_NEAR(old_ - young, 10.0 * 1e-3, 1e-9);
    // A clock reading before the program tick must not go negative.
    EXPECT_NEAR(f.uncorrectableProbability(ppn, 0), young, 1e-12);
}

TEST_F(WearFixture, RetentionIsThermallyAccelerated)
{
    // The Arrhenius factor scales only the rberPerSecond term:
    // exactly 1.0 at the 25 C default (bit-identical replay), and
    // strictly increasing with temperature.
    auto retention_rate = [](double celsius) {
        FlashParams rp = wearParams();
        rp.wear.rberPerSecond = 1e-4;
        rp.wear.tempCelsius = celsius;
        StatGroup s{"ftl"};
        Ftl f{rp, s};
        f.write(0, 0);
        std::uint64_t ppn = f.translate(0);
        double at0 = f.uncorrectableProbability(ppn, 0);
        double at10 =
            f.uncorrectableProbability(ppn, secondsToTicks(10.0));
        return (at10 - at0) / 10.0; // effective RBER/s of retention
    };

    double base = retention_rate(25.0);
    EXPECT_DOUBLE_EQ(base, 1e-4); // factor is *exactly* 1 at 25 C

    double warm = retention_rate(55.0);
    double hot = retention_rate(85.0);
    EXPECT_GT(warm, base);
    EXPECT_GT(hot, warm);
    // 1.1 eV over 30 C spans roughly a 40-70x acceleration per step
    // (JEDEC-style); pin the order of magnitude, not the constant.
    EXPECT_GT(warm / base, 10.0);
    EXPECT_LT(warm / base, 200.0);

    // Cooling below the reference slows retention loss instead.
    EXPECT_LT(retention_rate(5.0), base);

    // Physically impossible temperatures are rejected.
    FlashParams rp = wearParams();
    rp.wear.rberPerSecond = 1e-4;
    rp.wear.tempCelsius = -300.0;
    StatGroup s{"ftl"};
    Ftl f{rp, s};
    f.write(0, 0);
    EXPECT_THROW(
        f.uncorrectableProbability(f.translate(0),
                                   secondsToTicks(1.0)),
        FatalError);
}

TEST_F(WearFixture, ThresholdsDriveRelocationThenRetirement)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn, 0);
    auto phys = static_cast<std::uint32_t>(ftl.translate(0) /
                                           ftl.superblockPages());
    EXPECT_EQ(ftl.lifecycleAction(phys, 0), LifecycleAction::None);
    // Each observed uncorrectable adds 3e-2 of RBER.
    ftl.noteUncorrectable(ftl.translate(0));
    ftl.noteUncorrectable(ftl.translate(0));
    EXPECT_EQ(ftl.lifecycleAction(phys, 0), LifecycleAction::Relocate);
    for (int i = 0; i < 5; ++i)
        ftl.noteUncorrectable(ftl.translate(0));
    EXPECT_EQ(ftl.lifecycleAction(phys, 0), LifecycleAction::Retire);
    // Retired and relocating blocks are never re-flagged.
    auto job = ftl.beginRelocation(phys);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(ftl.lifecycleAction(phys, 0), LifecycleAction::None);
    EXPECT_TRUE(ftl.finishRelocation(*job, /*retire_old=*/true, 0));
    EXPECT_TRUE(ftl.retired(phys));
    EXPECT_EQ(ftl.lifecycleAction(phys, 0), LifecycleAction::None);
}

TEST_F(WearFixture, RelocationCommitRemapsAndErasesSource)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn, 0);
    ftl.trim(4, 2); // punch a hole: only 30 offsets stay valid
    auto old_phys = static_cast<std::uint32_t>(
        ftl.translate(0) / ftl.superblockPages());
    std::uint64_t epoch = ftl.mappingEpoch();
    std::uint32_t free_before = ftl.freeSuperblocks();
    auto job = ftl.beginRelocation(old_phys);
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->oldPhys, old_phys);
    EXPECT_EQ(job->validOffsets.size(), 30u);
    // Destination is reserved while the copy is in flight.
    EXPECT_EQ(ftl.freeSuperblocks(), free_before - 1);
    // Reads keep hitting the source until the commit.
    EXPECT_EQ(ftl.translate(0) / ftl.superblockPages(), old_phys);
    EXPECT_TRUE(ftl.finishRelocation(*job, /*retire_old=*/false, 0));
    EXPECT_EQ(ftl.translate(0) / ftl.superblockPages(), job->newPhys);
    EXPECT_EQ(ftl.eraseCount(old_phys), 1u);
    EXPECT_EQ(ftl.freeSuperblocks(), free_before - 1 + 1);
    EXPECT_GT(ftl.mappingEpoch(), epoch);
}

TEST_F(WearFixture, RelocationAbandonedWhenMappingMoves)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn, 0);
    auto old_phys = static_cast<std::uint32_t>(
        ftl.translate(0) / ftl.superblockPages());
    auto job = ftl.beginRelocation(old_phys);
    ASSERT_TRUE(job.has_value());
    // A concurrent overwrite migrates the superblock out from under
    // the relocation; the commit must notice and abandon the copy.
    ftl.write(0, 0);
    std::uint32_t free_before = ftl.freeSuperblocks();
    EXPECT_FALSE(ftl.finishRelocation(*job, false, 0));
    EXPECT_EQ(ftl.freeSuperblocks(), free_before + 1);
    EXPECT_NE(ftl.translate(0) / ftl.superblockPages(), job->newPhys);
}

TEST_F(WearFixture, AbortReleasesDestinationWithoutErase)
{
    for (std::uint64_t lpn = 0; lpn < 32; ++lpn)
        ftl.write(lpn, 0);
    auto phys = static_cast<std::uint32_t>(ftl.translate(0) /
                                           ftl.superblockPages());
    auto job = ftl.beginRelocation(phys);
    ASSERT_TRUE(job.has_value());
    std::uint64_t erases = ftl.totalErases();
    ftl.abortRelocation(*job);
    EXPECT_EQ(ftl.totalErases(), erases); // power loss: no charge
    EXPECT_EQ(ftl.translate(0) / ftl.superblockPages(), phys);
    // The block is eligible for relocation again afterwards.
    EXPECT_TRUE(ftl.beginRelocation(phys).has_value());
}

TEST_F(WearFixture, AutoRetireAtMaxEraseCount)
{
    FlashParams rp = wearParams();
    rp.wear.maxEraseCount = 3;
    StatGroup s{"ftl"};
    Ftl f{rp, s};
    // Each cycle erases every superblock once; at 3 they all retire.
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t lpn = 0; lpn < 256; ++lpn)
            f.write(lpn, 0);
        f.trim(0, 256);
    }
    EXPECT_EQ(f.retiredSuperblocks(), 8u);
    EXPECT_EQ(f.freeSuperblocks(), 0u);
    // A device with all blocks worn out refuses fresh writes.
    EXPECT_THROW(f.write(0, 0), FatalError);
}

// ---- seeded invariant fuzz ---------------------------------------
//
// Random write/trim/relocate/retire/erase sequences (deterministic
// per seed via deepstore::Rng) must preserve:
//   1. logical -> physical bijectivity (no double-booked superblock);
//   2. the partition: every physical superblock is exactly one of
//      {mapped, free, retired, reserved-as-relocation-destination};
//   3. per-superblock erase counters are monotone;
//   4. eraseSpread() over in-service blocks stays bounded (greedy
//      least-worn allocation) even as blocks retire;
//   5. a retired superblock is never mapped again.

void
checkInvariants(const Ftl &ftl,
                const std::vector<RelocationJob> &pending,
                std::vector<std::uint64_t> &last_erase,
                std::uint64_t max_erase_count)
{
    std::vector<bool> seen(ftl.superblockCount(), false);
    std::uint32_t mapped = 0;
    for (std::uint32_t l = 0; l < ftl.superblockCount(); ++l) {
        std::uint32_t phys = ftl.mappedPhysical(l);
        if (phys == Ftl::kUnmapped)
            continue;
        ASSERT_LT(phys, ftl.superblockCount());
        ASSERT_FALSE(seen[phys]) << "double-mapped phys " << phys;
        seen[phys] = true;
        ASSERT_FALSE(ftl.retired(phys))
            << "retired superblock " << phys << " is mapped";
        ++mapped;
    }
    std::uint32_t dests = 0;
    for (const auto &job : pending) {
        ASSERT_FALSE(seen[job.newPhys])
            << "relocation destination " << job.newPhys << " mapped";
        ASSERT_FALSE(ftl.retired(job.newPhys));
        ++dests;
    }
    EXPECT_EQ(mapped + ftl.freeSuperblocks() +
                  ftl.retiredSuperblocks() + dests,
              ftl.superblockCount());
    for (std::uint32_t phys = 0; phys < ftl.superblockCount();
         ++phys) {
        ASSERT_GE(ftl.eraseCount(phys), last_erase[phys])
            << "erase counter moved backwards on phys " << phys;
        last_erase[phys] = ftl.eraseCount(phys);
        // Retirement caps in-service wear: a block at the endurance
        // limit leaves service, so live erase counts stay below it.
        if (!ftl.retired(phys)) {
            ASSERT_LT(ftl.eraseCount(phys), max_erase_count)
                << "in-service phys " << phys
                << " exceeded the endurance cap";
        }
    }
    // ... and therefore the in-service spread is bounded by the
    // endurance cap even under adversarial random trims. (The tight
    // constant-band property of the greedy allocator is pinned by
    // WearLevelingPrefersLeastErased on a cycling workload.)
    EXPECT_LT(ftl.eraseSpread(), max_erase_count);
}

TEST(FtlFuzz, LifecycleInvariantsHoldUnderRandomOps)
{
    bool saw_retirement = false;
    bool saw_abandon = false;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        FlashParams p = wearParams();
        p.wear.maxEraseCount = 60;
        StatGroup stats{"ftl"};
        Ftl ftl{p, stats};
        Rng rng{seed * 0x9E3779B97F4A7C15ULL};
        const std::uint64_t capacity =
            ftl.superblockPages() * ftl.superblockCount();
        std::vector<RelocationJob> pending;
        std::vector<std::uint64_t> last_erase(ftl.superblockCount(),
                                              0);
        for (int op = 0; op < 2000; ++op) {
            Tick now = static_cast<Tick>(op) * 1'000'000ULL;
            std::uint64_t r = rng.uniformInt(100);
            if (r < 55) {
                if (ftl.freeSuperblocks() > 0)
                    ftl.write(rng.uniformInt(capacity), now);
            } else if (r < 72) {
                std::uint64_t start = rng.uniformInt(capacity);
                std::uint64_t count =
                    1 + rng.uniformInt(capacity - start);
                ftl.trim(start, count);
            } else if (r < 82) {
                std::uint64_t lpn = rng.uniformInt(capacity);
                if (ftl.isMapped(lpn)) {
                    std::uint64_t ppn = ftl.translate(lpn);
                    ftl.noteRead(ppn);
                    if (rng.bernoulli(0.1))
                        ftl.noteUncorrectable(ppn);
                    else if (rng.bernoulli(0.2))
                        ftl.noteRetried(ppn);
                }
            } else if (r < 92 && pending.size() < 2) {
                auto phys = static_cast<std::uint32_t>(
                    rng.uniformInt(ftl.superblockCount()));
                if (auto job = ftl.beginRelocation(phys))
                    pending.push_back(*job);
            } else if (!pending.empty()) {
                std::uint64_t pick =
                    rng.uniformInt(pending.size());
                RelocationJob job = pending[pick];
                pending.erase(pending.begin() +
                              static_cast<long>(pick));
                if (rng.bernoulli(0.2)) {
                    ftl.abortRelocation(job);
                } else {
                    bool retire = rng.bernoulli(0.3);
                    if (!ftl.finishRelocation(job, retire, now))
                        saw_abandon = true;
                }
            }
            checkInvariants(ftl, pending, last_erase, p.wear.maxEraseCount);
            if (::testing::Test::HasFatalFailure())
                return;
        }
        // Drain in-flight jobs and re-check the terminal state.
        for (const auto &job : pending)
            ftl.abortRelocation(job);
        pending.clear();
        checkInvariants(ftl, pending, last_erase, p.wear.maxEraseCount);
        EXPECT_GT(ftl.totalErases(), 0u) << "seed " << seed;
        saw_retirement |= ftl.retiredSuperblocks() > 0;
    }
    // The sweep must actually exercise the interesting transitions.
    EXPECT_TRUE(saw_retirement);
    EXPECT_TRUE(saw_abandon);
}

} // namespace
} // namespace deepstore::ssd
