/** @file Integration tests for the top-level SSD model. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "ssd/ssd.h"
#include "ssd/throughput.h"

namespace deepstore::ssd {
namespace {

FlashParams
smallParams()
{
    FlashParams p;
    p.channels = 4;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 16;
    p.pagesPerBlock = 8;
    return p;
}

TEST(Ssd, WriteThenReadCompletes)
{
    sim::EventQueue events;
    Ssd ssd(events, smallParams());
    bool wrote = false, read = false;
    ssd.hostWrite(0, 8, [&](Tick) { wrote = true; });
    events.run();
    ASSERT_TRUE(wrote);
    ssd.hostRead(0, 8, [&](Tick) { read = true; });
    events.run();
    EXPECT_TRUE(read);
}

TEST(Ssd, ReadBeforeWriteIsFatal)
{
    sim::EventQueue events;
    Ssd ssd(events, smallParams());
    ssd.hostRead(0, 1, nullptr);
    EXPECT_THROW(events.run(), FatalError);
}

TEST(Ssd, HostReadBoundByExternalBandwidth)
{
    sim::EventQueue events;
    FlashParams p = smallParams();
    p.externalBandwidth = 100e6; // artificially slow host link
    Ssd ssd(events, p);
    const std::uint64_t n = 64;
    ssd.hostWrite(0, n, nullptr);
    events.run();
    Tick start = events.now();
    Tick done = 0;
    ssd.hostRead(0, n, [&](Tick t) { done = t; });
    events.run();
    double secs = ticksToSeconds(done - start);
    double bytes = static_cast<double>(n * p.pageBytes);
    double bw = bytes / secs;
    // Must be limited by (and close to) the external link.
    EXPECT_LE(bw, 100e6 * 1.001);
    EXPECT_GT(bw, 0.8 * 100e6);
}

TEST(Ssd, InternalReadsBypassExternalInterface)
{
    sim::EventQueue events;
    FlashParams p = smallParams();
    p.externalBandwidth = 1e3; // would take ~hours over the host link
    Ssd ssd(events, p);
    ssd.hostWrite(0, 4, nullptr);
    events.run();
    Tick start = events.now();
    std::uint64_t ppn = ssd.ftl().translate(0);
    Tick done = 0;
    ssd.internalRead(ppn, 4096, [&](Tick t) { done = t; });
    events.run();
    // Internal read: array latency + bus only.
    EXPECT_LT(ticksToSeconds(done - start), 100e-6);
}

TEST(Ssd, StripedWriteSpreadsAcrossChannels)
{
    sim::EventQueue events;
    Ssd ssd(events, smallParams());
    ssd.hostWrite(0, 8, nullptr);
    events.run();
    std::vector<int> per_channel(4, 0);
    for (std::uint64_t lpn = 0; lpn < 8; ++lpn)
        ++per_channel[ssd.physicalAddress(lpn).channel];
    for (int c : per_channel)
        EXPECT_EQ(c, 2);
}

TEST(Ssd, PayloadRoundTrip)
{
    sim::EventQueue events;
    Ssd ssd(events, smallParams());
    std::vector<std::uint8_t> data{1, 2, 3, 4};
    ssd.storePayload(7, data);
    const auto *got = ssd.payload(7);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, data);
    EXPECT_EQ(ssd.payload(8), nullptr);
}

TEST(Ssd, OversizedPayloadIsFatal)
{
    sim::EventQueue events;
    Ssd ssd(events, smallParams());
    std::vector<std::uint8_t> data(64 * 1024, 0);
    EXPECT_THROW(ssd.storePayload(0, data), FatalError);
}

TEST(Ssd, ControllerOutOfRangePanics)
{
    sim::EventQueue events;
    Ssd ssd(events, smallParams());
    EXPECT_THROW(ssd.controller(99), PanicError);
}

// Cross-validation: the closed-form channel feature rate matches the
// event-driven controller within a few percent for steady streaming.
class ThroughputXVal : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ThroughputXVal, ClosedFormMatchesEventModel)
{
    std::uint64_t feature_bytes = GetParam();
    FlashParams p; // full-size default geometry
    p.channels = 1;

    sim::EventQueue events;
    StatGroup stats("x");
    FlashController ctrl(events, p, 0, stats);

    FeatureLayout layout{feature_bytes, p.pageBytes};
    const std::uint64_t features = 2000;
    std::uint64_t pages = layout.pagesForFeatures(features);
    std::uint64_t xfer = layout.transferBytesPerPage();

    Geometry g(p);
    Tick last = 0;
    for (std::uint64_t i = 0; i < pages; ++i) {
        FlashCommand cmd;
        cmd.op = FlashOp::Read;
        cmd.addr = g.decode(i);
        cmd.transferBytes = xfer;
        cmd.onComplete = [&](Tick t, FlashStatus) { last = std::max(last, t); };
        ctrl.issue(std::move(cmd));
    }
    events.run();

    double measured =
        static_cast<double>(features) / ticksToSeconds(last);
    double predicted = channelFeatureRate(p, feature_bytes);
    EXPECT_NEAR(measured / predicted, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(FeatureSizes, ThroughputXVal,
                         ::testing::Values(800,    // TextQA
                                           2048,   // MIR / TIR
                                           16384,  // ESTP
                                           45056)); // ReId (3 pages)

TEST(Throughput, LayoutArithmetic)
{
    FeatureLayout small{800, 16384};
    EXPECT_EQ(small.featuresPerPage(), 20u);
    EXPECT_EQ(small.pagesPerFeature(), 1u);
    EXPECT_EQ(small.pagesForFeatures(41), 3u);

    FeatureLayout reid{45056, 16384}; // 44 KB
    EXPECT_EQ(reid.pagesPerFeature(), 3u);
    EXPECT_EQ(reid.pagesForFeatures(10), 30u);
}

TEST(Throughput, SmallFeaturesArePlaneLimited)
{
    FlashParams p;
    // 20 TextQA features per page, partial transfer 16000 bytes:
    // bus rate = 800e6/16000 = 50K pages/s;
    // plane rate = 32 planes / 53us = 603K pages/s -> bus-limited.
    double rate = channelFeatureRate(p, 800);
    EXPECT_NEAR(rate, 50e3 * 20, 1e3);
}

TEST(Throughput, WholeSsdScalesWithChannels)
{
    FlashParams p;
    double one = channelFeatureRate(p, 2048);
    EXPECT_NEAR(ssdInternalFeatureRate(p, 2048), 32 * one, 1.0);
}

} // namespace
} // namespace deepstore::ssd
