/**
 * @file
 * Dataflow-specific properties of the systolic timing model: WS
 * batching, IS symmetry, and the explicit weight-source override.
 */

#include <gtest/gtest.h>

#include "systolic/systolic_sim.h"

namespace deepstore::systolic {
namespace {

ArrayConfig
cfg(Dataflow df, std::int64_t r = 8, std::int64_t c = 32)
{
    ArrayConfig a;
    a.rows = r;
    a.cols = c;
    a.dataflow = df;
    a.dramBandwidth = 1e15;
    a.scratchpadBytes = 64 * MiB;
    return a;
}

TEST(Dataflows, WsAmortizationApproachesIdealThroughput)
{
    // Per-feature WS cycles converge to folds * 1 as the pinned
    // group grows (preload/drain amortize away).
    SystolicSim sim(cfg(Dataflow::WeightStationary, 4, 32));
    nn::Layer fc = nn::Layer::fc("fc", 128, 64);
    // folds = ceil(128/4) * ceil(64/32) = 64.
    auto g1 = sim.runLayer(fc, WeightSource::Scratchpad, 1);
    auto g64 = sim.runLayer(fc, WeightSource::Scratchpad, 64);
    double per1 = static_cast<double>(g1.computeCycles);
    double per64 = static_cast<double>(g64.computeCycles) / 64.0;
    EXPECT_LT(per64, per1 / 5.0);
    EXPECT_GE(per64, 64.0); // cannot beat one stream cycle per fold
}

TEST(Dataflows, IsBehavesLikeWsWithRolesSwapped)
{
    // IS mirrors WS with inputs pinned: for a batch of GEMVs, IS
    // streams the (large) N dimension per fold while WS streams the
    // (small) batch, so IS needs fewer folds here. The mappings stay
    // within a small constant factor of each other.
    SystolicSim ws(cfg(Dataflow::WeightStationary, 16, 16));
    SystolicSim is(cfg(Dataflow::InputStationary, 16, 16));
    nn::Layer fc = nn::Layer::fc("fc", 256, 256);
    auto a = ws.runLayer(fc, WeightSource::Scratchpad, 16);
    auto b = is.runLayer(fc, WeightSource::Scratchpad, 16);
    double ratio = static_cast<double>(a.computeCycles) /
                   static_cast<double>(b.computeCycles);
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 4.0);
    // And IS is the faster of the two in this batched-GEMV regime.
    EXPECT_LT(b.computeCycles, a.computeCycles);
}

TEST(Dataflows, ForcedSourceOverridesCapacityHeuristic)
{
    // runModelWithSource must route weight traffic exactly where the
    // caller says, regardless of what fits.
    nn::Model m("m", 64, true);
    m.addLayer(nn::Layer::fc("fc", 128, 32));
    SystolicSim sim(cfg(Dataflow::OutputStationary));
    auto spad = sim.runModelWithSource(m, WeightSource::Scratchpad);
    auto l2 = sim.runModelWithSource(m, WeightSource::SharedL2);
    auto dram = sim.runModelWithSource(m, WeightSource::Dram);
    EXPECT_EQ(spad.total.dramReadBytes, 0u);
    EXPECT_EQ(spad.total.l2Reads, 0u);
    EXPECT_GT(l2.total.l2Reads, 0u);
    EXPECT_EQ(l2.total.dramReadBytes, 0u);
    EXPECT_GT(dram.total.dramReadBytes, 0u);
    // Compute cycles identical: the source only moves traffic.
    EXPECT_EQ(spad.total.computeCycles, l2.total.computeCycles);
    EXPECT_EQ(spad.total.computeCycles, dram.total.computeCycles);
}

TEST(Dataflows, RunModelPicksSourceByCapacity)
{
    nn::Model big("big", 512, true);
    big.addLayer(nn::Layer::fc("fc", 1024, 4096)); // 16 MB weights
    ArrayConfig a = cfg(Dataflow::OutputStationary);
    a.scratchpadBytes = 512 * KiB;
    a.sharedL2Bytes = 8 * MiB; // still too small
    SystolicSim sim(a);
    auto run = sim.runModel(big, /*weights_fit_on_chip=*/false);
    EXPECT_GT(run.total.dramReadBytes, 0u); // fell through to DRAM

    a.sharedL2Bytes = 64 * MiB;
    SystolicSim sim2(a);
    auto run2 = sim2.runModel(big, false);
    EXPECT_EQ(run2.total.dramReadBytes, 0u); // L2 holds it
    EXPECT_GT(run2.total.l2Reads, 0u);
}

TEST(Dataflows, MacsInvariantAcrossDataflows)
{
    // Property: the mapping never changes the arithmetic volume.
    nn::Layer fc = nn::Layer::fc("fc", 300, 77);
    for (auto df : {Dataflow::OutputStationary,
                    Dataflow::WeightStationary,
                    Dataflow::InputStationary}) {
        SystolicSim sim(cfg(df));
        auto run = sim.runLayer(fc, WeightSource::Scratchpad, 3);
        EXPECT_EQ(run.macs,
                  static_cast<std::uint64_t>(fc.macs()) * 3);
    }
}

} // namespace
} // namespace deepstore::systolic
