/** @file Tests for the design-space exploration driver (Fig. 6). */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "systolic/dse.h"

namespace deepstore::systolic {
namespace {

TEST(Dse, AspectRatiosEnumeratePowerOfTwoSplits)
{
    auto ratios = aspectRatios(8);
    ASSERT_EQ(ratios.size(), 4u); // 1x8, 2x4, 4x2, 8x1
    for (auto [r, c] : ratios)
        EXPECT_EQ(r * c, 8);
}

TEST(Dse, AspectRatiosRejectNonPowerOfTwo)
{
    EXPECT_THROW(aspectRatios(12), FatalError);
    EXPECT_THROW(aspectRatios(0), FatalError);
}

TEST(Dse, BestShapePicksFastest)
{
    nn::Layer fc = nn::Layer::fc("fc", 512, 512);
    DsePoint p = bestShapeFor(fc, 512, Dataflow::OutputStationary);
    EXPECT_EQ(p.rows * p.cols, 512);
    // For a batch-1 GEMV the wide (few-row) shapes win; verify the
    // chosen shape is at least as fast as the square one.
    ArrayConfig square;
    square.rows = 16;
    square.cols = 32;
    square.dramBandwidth = 1e18;
    square.scratchpadBytes = 1 * GiB;
    SystolicSim sq(square);
    EXPECT_LE(p.cycles, sq.idealComputeCycles(fc));
}

TEST(Dse, FcSaturatesAroundLayerWidth)
{
    // Paper Fig. 6: no gain beyond 512 PEs for the largest FC layer,
    // because a feature vector needs < 1024 MACs/cycle.
    nn::Layer fc = nn::Layer::fc("fc", 4096, 512);
    auto sweep = sweepPeCounts(
        fc, {128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768},
        Dataflow::OutputStationary);
    ASSERT_EQ(sweep.size(), 9u);
    double at512 = sweep[2].speedup;
    double at32k = sweep.back().speedup;
    EXPECT_LT(at32k / at512, 1.25); // plateau after 512
    // And it did speed up from 128 to 512.
    EXPECT_GT(at512, sweep[0].speedup);
}

TEST(Dse, SpeedupIsRelativeToFirstBudget)
{
    nn::Layer fc = nn::Layer::fc("fc", 1024, 1024);
    auto sweep =
        sweepPeCounts(fc, {128, 1024}, Dataflow::OutputStationary);
    EXPECT_DOUBLE_EQ(sweep[0].speedup, 1.0);
    EXPECT_GE(sweep[1].speedup, 1.0);
}

TEST(Dse, SpeedupsAreMonotonicNonDecreasing)
{
    // Property: the best shape at a larger budget can always emulate a
    // smaller one, so cycles never increase along the sweep.
    for (auto kind : {0, 1}) {
        nn::Layer l =
            kind == 0
                ? nn::Layer::fc("fc", 2048, 512)
                : nn::Layer::conv2d("cv", 32, 12, 20, 3, 3, 25);
        auto sweep = sweepPeCounts(
            l, {128, 256, 512, 1024, 2048, 4096},
            Dataflow::OutputStationary);
        for (std::size_t i = 1; i < sweep.size(); ++i)
            EXPECT_LE(sweep[i].cycles, sweep[i - 1].cycles);
    }
}

TEST(Dse, ConvKeepsScalingLongerThanFc)
{
    // Paper Fig. 6: Conv saturates at ~1024 PEs vs ~512 for FC.
    nn::Layer conv = nn::Layer::conv2d("cv", 34, 12, 20, 3, 3, 25);
    nn::Layer fc = nn::Layer::fc("fc", 4096, 512);
    auto conv_sweep = sweepPeCounts(conv, {512, 1024},
                                    Dataflow::OutputStationary);
    auto fc_sweep =
        sweepPeCounts(fc, {512, 1024}, Dataflow::OutputStationary);
    double conv_gain = conv_sweep[1].speedup;
    double fc_gain = fc_sweep[1].speedup;
    EXPECT_GT(conv_gain, fc_gain);
}

} // namespace
} // namespace deepstore::systolic
