/** @file Tests for the per-layer report. */

#include <sstream>

#include <gtest/gtest.h>

#include "systolic/report.h"
#include "workloads/apps.h"

namespace deepstore::systolic {
namespace {

TEST(LayerReport, RowsMatchModelLayers)
{
    auto app = workloads::makeApp(workloads::AppId::TIR);
    ArrayConfig cfg;
    cfg.rows = 16;
    cfg.cols = 64;
    SystolicSim sim(cfg);
    auto rows = layerReport(sim, app.scn, WeightSource::Scratchpad);
    ASSERT_EQ(rows.size(), app.scn.numLayers());
    EXPECT_EQ(rows[0].kind, "ElementWise");
    EXPECT_EQ(rows[1].name, "fc1");
    for (const auto &r : rows)
        EXPECT_GT(r.run.totalCycles, 0u);
}

TEST(LayerReport, RowCyclesSumToModelRun)
{
    auto app = workloads::makeApp(workloads::AppId::ESTP);
    ArrayConfig cfg;
    cfg.rows = 16;
    cfg.cols = 64;
    SystolicSim sim(cfg);
    auto rows = layerReport(sim, app.scn, WeightSource::Scratchpad);
    auto run = sim.runModelWithSource(app.scn,
                                      WeightSource::Scratchpad);
    Cycles sum = 0;
    for (const auto &r : rows)
        sum += r.run.totalCycles;
    EXPECT_EQ(sum, run.totalCycles());
}

TEST(LayerReport, PrintsTableWithTotals)
{
    auto app = workloads::makeApp(workloads::AppId::TextQA);
    ArrayConfig cfg;
    cfg.rows = 16;
    cfg.cols = 64;
    SystolicSim sim(cfg);
    auto rows = layerReport(sim, app.scn, WeightSource::Scratchpad);
    std::ostringstream os;
    printLayerReport(os, rows, cfg);
    std::string s = os.str();
    EXPECT_NE(s.find("fuse"), std::string::npos);
    EXPECT_NE(s.find("fc1"), std::string::npos);
    EXPECT_NE(s.find("TOTAL"), std::string::npos);
    EXPECT_NE(s.find("16x64"), std::string::npos);
}

} // namespace
} // namespace deepstore::systolic
