/** @file Unit and property tests for the systolic-array timing model. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "systolic/systolic_sim.h"

namespace deepstore::systolic {
namespace {

ArrayConfig
makeConfig(std::int64_t r, std::int64_t c, Dataflow df)
{
    ArrayConfig cfg;
    cfg.name = "test";
    cfg.rows = r;
    cfg.cols = c;
    cfg.dataflow = df;
    cfg.frequencyHz = 800e6;
    cfg.scratchpadBytes = 512 * KiB;
    cfg.dramBandwidth = 20e9;
    return cfg;
}

TEST(ArrayConfig, ValidatesDimensions)
{
    ArrayConfig cfg = makeConfig(0, 64, Dataflow::OutputStationary);
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg = makeConfig(16, 64, Dataflow::OutputStationary);
    cfg.frequencyHz = -1;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(SystolicSim, OsFcSingleFoldFormula)
{
    // FC 64 -> 32 on a 32x64 OS array: M=1, N=32, K=64; one fold with
    // Sr=1, Sc=32: 2*1 + 32 + 64 - 2 = 96 cycles.
    SystolicSim sim(makeConfig(32, 64, Dataflow::OutputStationary));
    auto run = sim.runLayer(nn::Layer::fc("fc", 64, 32),
                            WeightSource::Scratchpad);
    EXPECT_EQ(run.computeCycles, 96u);
}

TEST(SystolicSim, OsFcFoldsAlongColumns)
{
    // FC 512 -> 512 on 32x64: M=1 so one row fold; 8 column folds of
    // Sc=64: 8 * (2 + 64 + 512 - 2) = 8 * 576 = 4608.
    SystolicSim sim(makeConfig(32, 64, Dataflow::OutputStationary));
    auto run = sim.runLayer(nn::Layer::fc("fc", 512, 512),
                            WeightSource::Scratchpad);
    EXPECT_EQ(run.computeCycles, 8u * 576u);
}

TEST(SystolicSim, WsPinsWeightsAcrossBatch)
{
    // WS 4x32 array, FC 128->32: folds = ceil(128/4)*ceil(32/32) = 32.
    // Batch 1: 32 * (4 + 1 + 31) = 1152.
    // Batch 100: 32 * (4 + 100 + 31) = 4320 -> 43.2 cycles/feature,
    // far below batch-1 cost, which is the chip-level design point.
    SystolicSim sim(makeConfig(4, 32, Dataflow::WeightStationary));
    nn::Layer fc = nn::Layer::fc("fc", 128, 32);
    auto one = sim.runLayer(fc, WeightSource::Scratchpad, 1);
    auto hundred = sim.runLayer(fc, WeightSource::Scratchpad, 100);
    EXPECT_EQ(one.computeCycles, 1152u);
    EXPECT_EQ(hundred.computeCycles, 4320u);
    EXPECT_LT(hundred.computeCycles, 100 * one.computeCycles);
}

TEST(SystolicSim, ElementWiseUsesRowLanes)
{
    // 512-element multiply on 16 rows: ceil(512/16) + 1 = 33 cycles.
    SystolicSim sim(makeConfig(16, 64, Dataflow::OutputStationary));
    auto run = sim.runLayer(
        nn::Layer::elementWise("ew", nn::EwOp::Multiply, 512),
        WeightSource::Scratchpad);
    EXPECT_EQ(run.computeCycles, 33u);
}

TEST(SystolicSim, ElementWiseSpeedupScalesWithRows)
{
    // Paper §4.3: the modified array speeds up element-wise ops by the
    // number of rows. Compare 1 row vs 32 rows.
    nn::Layer ew = nn::Layer::elementWise("ew", nn::EwOp::Add, 4096);
    SystolicSim narrow(makeConfig(1, 64, Dataflow::OutputStationary));
    SystolicSim wide(makeConfig(32, 64, Dataflow::OutputStationary));
    auto n = narrow.runLayer(ew, WeightSource::Scratchpad);
    auto w = wide.runLayer(ew, WeightSource::Scratchpad);
    double speedup = static_cast<double>(n.computeCycles) /
                     static_cast<double>(w.computeCycles);
    EXPECT_GT(speedup, 30.0);
    EXPECT_LE(speedup, 32.5);
}

TEST(SystolicSim, DotProductAddsReduction)
{
    SystolicSim sim(makeConfig(16, 64, Dataflow::OutputStationary));
    auto mul = sim.runLayer(
        nn::Layer::elementWise("m", nn::EwOp::Multiply, 256),
        WeightSource::Scratchpad);
    auto dot = sim.runLayer(
        nn::Layer::elementWise("d", nn::EwOp::DotProduct, 256),
        WeightSource::Scratchpad);
    EXPECT_GT(dot.computeCycles, mul.computeCycles);
}

TEST(SystolicSim, DramWeightSourceGeneratesTraffic)
{
    SystolicSim sim(makeConfig(32, 64, Dataflow::OutputStationary));
    nn::Layer fc = nn::Layer::fc("fc", 512, 512);
    auto spad = sim.runLayer(fc, WeightSource::Scratchpad);
    auto dram = sim.runLayer(fc, WeightSource::Dram);
    auto l2 = sim.runLayer(fc, WeightSource::SharedL2);
    EXPECT_EQ(spad.dramReadBytes, 0u);
    EXPECT_GT(dram.dramReadBytes, 0u);
    EXPECT_EQ(l2.dramReadBytes, 0u);
    EXPECT_GT(l2.l2Reads, 0u);
    // Weight bytes streamed >= one full pass over the weights.
    EXPECT_GE(dram.dramReadBytes,
              static_cast<std::uint64_t>(fc.weightCount()) * 4);
}

TEST(SystolicSim, BandwidthLimitCreatesStalls)
{
    auto cfg = makeConfig(32, 64, Dataflow::OutputStationary);
    cfg.dramBandwidth = 1e6; // pathological 1 MB/s
    SystolicSim slow(cfg);
    auto run = slow.runLayer(nn::Layer::fc("fc", 512, 512),
                             WeightSource::Dram);
    EXPECT_GT(run.memoryStallCycles, 0u);
    EXPECT_EQ(run.totalCycles,
              run.computeCycles + run.memoryStallCycles);
}

TEST(SystolicSim, UtilizationBounded)
{
    SystolicSim sim(makeConfig(32, 64, Dataflow::OutputStationary));
    for (std::int64_t in : {16, 256, 2048}) {
        for (std::int64_t out : {8, 64, 1024}) {
            auto run = sim.runLayer(nn::Layer::fc("fc", in, out),
                                    WeightSource::Scratchpad);
            EXPECT_GE(run.utilization, 0.0);
            EXPECT_LE(run.utilization, 1.0);
        }
    }
}

TEST(SystolicSim, ConvLowersToIm2colGemm)
{
    // Conv 8x8x4, 3x3 kernel, 16 out channels on 8x8 OS array:
    // M = 36 pixels, N = 16, K = 36.
    // folds: ceil(36/8)=5 x ceil(16/8)=2.
    SystolicSim sim(makeConfig(8, 8, Dataflow::OutputStationary));
    auto run = sim.runLayer(nn::Layer::conv2d("c", 8, 8, 4, 3, 3, 16),
                            WeightSource::Scratchpad);
    EXPECT_GT(run.computeCycles, 0u);
    EXPECT_EQ(run.macs, static_cast<std::uint64_t>(
                            nn::Layer::conv2d("c", 8, 8, 4, 3, 3, 16)
                                .macs()));
}

TEST(SystolicSim, MoreColumnsHelpWideFcLayers)
{
    // Paper: "the accelerator's width has a direct impact on the
    // performance for [FC] layers" — wider arrays finish a GEMV in
    // fewer column folds.
    nn::Layer fc = nn::Layer::fc("fc", 512, 4096);
    auto narrow = SystolicSim(makeConfig(64, 16,
                                         Dataflow::OutputStationary))
                      .runLayer(fc, WeightSource::Scratchpad);
    auto wide = SystolicSim(makeConfig(16, 64,
                                       Dataflow::OutputStationary))
                    .runLayer(fc, WeightSource::Scratchpad);
    EXPECT_LT(wide.computeCycles, narrow.computeCycles);
}

TEST(SystolicSim, ModelRunAggregatesLayers)
{
    nn::Model m("tir", 512, false);
    m.addLayer(nn::Layer::elementWise("fuse", nn::EwOp::Multiply, 512));
    m.addLayer(nn::Layer::fc("fc1", 512, 512));
    m.addLayer(nn::Layer::fc("fc2", 512, 256));
    m.addLayer(nn::Layer::fc("fc3", 256, 2, nn::Activation::None));
    SystolicSim sim(makeConfig(16, 64, Dataflow::OutputStationary));
    auto run = sim.runModel(m, true);
    ASSERT_EQ(run.layers.size(), 4u);
    Cycles sum = 0;
    for (const auto &lr : run.layers)
        sum += lr.totalCycles;
    EXPECT_EQ(run.totalCycles(), sum);
    EXPECT_EQ(run.total.macs, static_cast<std::uint64_t>(m.totalMacs()));
}

TEST(SystolicSim, WeightsFitChecksScratchpad)
{
    nn::Model m("big", 2048, true);
    m.addLayer(nn::Layer::fc("fc", 4096, 4096)); // 64 MB of weights
    auto cfg = makeConfig(16, 64, Dataflow::OutputStationary);
    cfg.scratchpadBytes = 512 * KiB;
    EXPECT_FALSE(SystolicSim(cfg).weightsFit(m));
    cfg.scratchpadBytes = 128 * MiB;
    EXPECT_TRUE(SystolicSim(cfg).weightsFit(m));
}

// Property sweep: compute cycles are monotonically non-increasing as
// the array grows in either dimension (more hardware never hurts in
// the analytical model), across several layer shapes.
class GrowthTest : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(GrowthTest, BiggerArraysAreNotSlower)
{
    auto [in, out] = GetParam();
    nn::Layer fc = nn::Layer::fc("fc", in, out);
    Cycles prev = 0;
    for (std::int64_t scale = 1; scale <= 16; scale *= 2) {
        SystolicSim sim(makeConfig(4 * scale, 8 * scale,
                                   Dataflow::OutputStationary));
        Cycles c = sim.idealComputeCycles(fc);
        if (prev != 0) {
            EXPECT_LE(c, prev);
        }
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GrowthTest,
    ::testing::Combine(::testing::Values(64, 512, 4096),
                       ::testing::Values(2, 256, 1024)));

} // namespace
} // namespace deepstore::systolic
