/** @file Unit tests for the dense tensor. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/tensor.h"

namespace deepstore::nn {
namespace {

TEST(Tensor, ZeroFilledConstruction)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.volume(), 6u);
    for (std::size_t i = 0; i < t.volume(); ++i)
        EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, DataConstructorChecksVolume)
{
    EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), PanicError);
}

TEST(Tensor, Vector1d)
{
    Tensor t = Tensor::vector1d({1.0f, 2.0f, 3.0f});
    ASSERT_EQ(t.shape().size(), 1u);
    EXPECT_EQ(t.shape()[0], 3);
    EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, At3IndexesRowMajorHWC)
{
    Tensor t({2, 3, 4});
    t.at3(1, 2, 3) = 42.0f;
    // flat index = (1*3 + 2)*4 + 3 = 23
    EXPECT_FLOAT_EQ(t[23], 42.0f);
    EXPECT_FLOAT_EQ(t.at3(1, 2, 3), 42.0f);
}

TEST(Tensor, FillRandomIsDeterministicAndBounded)
{
    Tensor a({100}), b({100});
    a.fillRandom(42, 0.5f);
    b.fillRandom(42, 0.5f);
    for (std::size_t i = 0; i < 100; ++i) {
        EXPECT_FLOAT_EQ(a[i], b[i]);
        EXPECT_LE(std::abs(a[i]), 0.5f);
    }
}

TEST(Tensor, NormOfUnitVectors)
{
    Tensor t = Tensor::vector1d({3.0f, 4.0f});
    EXPECT_NEAR(t.norm(), 5.0, 1e-9);
}

TEST(Tensor, ReshapePreservesVolume)
{
    Tensor t({4, 3});
    t.reshape({2, 6});
    EXPECT_EQ(t.shape()[0], 2);
    EXPECT_THROW(t.reshape({5, 5}), PanicError);
}

} // namespace
} // namespace deepstore::nn
