/** @file Unit tests for model graphs and chain validation. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/model.h"

namespace deepstore::nn {
namespace {

Model
tirLikeModel()
{
    // TIR per §3: element-wise fuse + FC 512x512, 512x256, 256x2.
    Model m("tir", 512, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Multiply, 512));
    m.addLayer(Layer::fc("fc1", 512, 512));
    m.addLayer(Layer::fc("fc2", 512, 256));
    m.addLayer(Layer::fc("fc3", 256, 2, Activation::None));
    return m;
}

TEST(Model, ValidChainPasses)
{
    Model m = tirLikeModel();
    EXPECT_NO_THROW(m.validate());
    EXPECT_EQ(m.numLayers(), 4u);
    EXPECT_EQ(m.outputDim(), 2);
}

TEST(Model, LayerInputDims)
{
    Model m = tirLikeModel();
    EXPECT_EQ(m.layerInputDim(0), 512); // per-branch for EW combiner
    EXPECT_EQ(m.layerInputDim(1), 512);
    EXPECT_EQ(m.layerInputDim(2), 512);
    EXPECT_EQ(m.layerInputDim(3), 256);
}

TEST(Model, ConcatDoublesFirstLayerInput)
{
    Model m("concat", 256, true);
    m.addLayer(Layer::fc("fc1", 512, 64));
    EXPECT_EQ(m.layerInputDim(0), 512);
    EXPECT_NO_THROW(m.validate());
}

TEST(Model, MismatchedChainIsFatal)
{
    Model m("bad", 512, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Multiply, 512));
    m.addLayer(Layer::fc("fc1", 100, 10)); // expects 512 inputs
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Model, ElementWiseMidChainIsFatal)
{
    Model m("bad", 64, true);
    m.addLayer(Layer::fc("fc1", 128, 64));
    m.addLayer(Layer::elementWise("ew", EwOp::Add, 64));
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Model, EmptyModelIsFatal)
{
    Model m("empty", 16, true);
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Model, WrongCombinerSizeIsFatal)
{
    Model m("bad", 512, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Multiply, 100));
    EXPECT_THROW(m.validate(), FatalError);
}

TEST(Model, TotalsAggregateLayers)
{
    Model m = tirLikeModel();
    std::int64_t macs = 512 * 512 + 512 * 256 + 256 * 2;
    EXPECT_EQ(m.totalMacs(), macs);
    // FLOPs: 2*MACs for FCs + 512 for the element-wise multiply.
    EXPECT_EQ(m.totalFlops(), 2 * macs + 512);
    std::int64_t weights =
        (512 * 512 + 512) + (512 * 256 + 256) + (256 * 2 + 2);
    EXPECT_EQ(m.totalWeightCount(), weights);
    EXPECT_EQ(m.totalWeightBytes(), static_cast<std::uint64_t>(weights) * 4);
}

TEST(Model, CountLayersByKind)
{
    Model m = tirLikeModel();
    EXPECT_EQ(m.countLayers(LayerKind::FullyConnected), 3u);
    EXPECT_EQ(m.countLayers(LayerKind::ElementWise), 1u);
    EXPECT_EQ(m.countLayers(LayerKind::Conv2D), 0u);
}

TEST(Model, FeatureBytes)
{
    Model m = tirLikeModel();
    EXPECT_EQ(m.featureBytes(), 2048u); // 512 floats = 2 KB (Table 1)
}

TEST(Model, ConvToFcFlattens)
{
    Model m("vision", 100, true);
    // concat -> 200 scalars reshaped as 10x5x4 input to conv
    m.addLayer(Layer::conv2d("c1", 10, 5, 4, 3, 3, 8));
    m.addLayer(Layer::fc("fc", 8 * 3 * 8, 10));
    EXPECT_NO_THROW(m.validate());
}

TEST(Model, RejectsNonPositiveFeatureDim)
{
    EXPECT_THROW(Model("bad", 0, true), FatalError);
}

} // namespace
} // namespace deepstore::nn
