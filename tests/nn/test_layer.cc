/** @file Unit tests for layer shape/FLOP accounting. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/layer.h"

namespace deepstore::nn {
namespace {

TEST(Layer, FcCounts)
{
    Layer l = Layer::fc("fc1", 512, 256);
    EXPECT_EQ(l.inputCount(), 512);
    EXPECT_EQ(l.outputCount(), 256);
    EXPECT_EQ(l.macs(), 512 * 256);
    EXPECT_EQ(l.flops(), 2 * 512 * 256);
    EXPECT_EQ(l.weightCount(), 512 * 256 + 256);
}

TEST(Layer, FcWithoutBias)
{
    Layer l = Layer::fc("fc", 10, 4, Activation::None, false);
    EXPECT_EQ(l.weightCount(), 40);
}

TEST(Layer, FcRejectsBadDims)
{
    EXPECT_THROW(Layer::fc("bad", 0, 5), FatalError);
    EXPECT_THROW(Layer::fc("bad", 5, -1), FatalError);
}

TEST(Layer, ConvOutputGeometry)
{
    // 32x32x8 input, 3x3 kernel, 16 out channels, stride 1, no pad.
    Layer l = Layer::conv2d("c", 32, 32, 8, 3, 3, 16);
    EXPECT_EQ(l.outH(), 30);
    EXPECT_EQ(l.outW(), 30);
    EXPECT_EQ(l.outputCount(), 30 * 30 * 16);
    EXPECT_EQ(l.macs(), 30 * 30 * 16 * 3 * 3 * 8);
    EXPECT_EQ(l.weightCount(), 3 * 3 * 8 * 16 + 16);
}

TEST(Layer, ConvWithStrideAndPad)
{
    Layer l = Layer::conv2d("c", 28, 28, 4, 5, 5, 8, /*stride=*/2,
                            /*pad=*/2);
    EXPECT_EQ(l.outH(), (28 + 4 - 5) / 2 + 1);
    EXPECT_EQ(l.outW(), 14);
}

TEST(Layer, ConvRejectsKernelLargerThanInput)
{
    EXPECT_THROW(Layer::conv2d("c", 2, 2, 1, 5, 5, 1), FatalError);
}

TEST(Layer, ElementWiseBinaryCounts)
{
    Layer l = Layer::elementWise("ew", EwOp::Multiply, 512);
    EXPECT_EQ(l.inputCount(), 1024); // two operand vectors
    EXPECT_EQ(l.outputCount(), 512);
    EXPECT_EQ(l.macs(), 0);
    EXPECT_EQ(l.flops(), 512);
    EXPECT_EQ(l.weightCount(), 0);
}

TEST(Layer, DotProductReducesToScalar)
{
    Layer l = Layer::elementWise("dot", EwOp::DotProduct, 512);
    EXPECT_EQ(l.outputCount(), 1);
    EXPECT_EQ(l.macs(), 512);
    EXPECT_EQ(l.flops(), 1024);
}

TEST(Layer, ToStringCoversEnums)
{
    EXPECT_STREQ(toString(LayerKind::FullyConnected), "FC");
    EXPECT_STREQ(toString(LayerKind::Conv2D), "Conv2D");
    EXPECT_STREQ(toString(LayerKind::ElementWise), "ElementWise");
    EXPECT_STREQ(toString(EwOp::DotProduct), "dot");
    EXPECT_STREQ(toString(Activation::ReLU), "relu");
}

// Property sweep: conv geometry identities hold across a parameter grid.
class ConvGeom
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(ConvGeom, MacsEqualOutputsTimesKernelVolume)
{
    auto [hw, c, k, oc] = GetParam();
    Layer l = Layer::conv2d("c", hw, hw, c, k, k, oc);
    EXPECT_EQ(l.macs(), l.outputCount() * k * k * c);
    EXPECT_EQ(l.flops(), 2 * l.macs());
    EXPECT_GT(l.outputCount(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvGeom,
    ::testing::Combine(::testing::Values(8, 16, 33),
                       ::testing::Values(1, 3, 16),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(1, 8, 25)));

} // namespace
} // namespace deepstore::nn
