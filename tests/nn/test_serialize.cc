/** @file Unit tests for ONNX-lite model serialization. */

#include <cstdio>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/executor.h"
#include "nn/serialize.h"

namespace deepstore::nn {
namespace {

Model
sampleModel()
{
    Model m("sample", 64, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Subtract, 64));
    m.addLayer(Layer::fc("fc1", 64, 32));
    m.addLayer(Layer::fc("fc2", 32, 1, Activation::None));
    return m;
}

TEST(Serialize, RoundTripPreservesStructure)
{
    Model m = sampleModel();
    auto w = ModelWeights::random(m, 5);
    auto blob = serializeModel(m, w);
    auto bundle = deserializeModel(blob);

    EXPECT_EQ(bundle.model.name(), "sample");
    EXPECT_EQ(bundle.model.featureDim(), 64);
    EXPECT_EQ(bundle.model.numLayers(), 3u);
    EXPECT_EQ(bundle.model.totalWeightCount(), m.totalWeightCount());
    EXPECT_EQ(bundle.weights.parameterCount(), w.parameterCount());
}

TEST(Serialize, RoundTripPreservesInference)
{
    Model m = sampleModel();
    auto w = ModelWeights::random(m, 5);
    auto bundle = deserializeModel(serializeModel(m, w));

    std::vector<float> q(64, 0.25f), d(64, -0.5f);
    Executor orig(m, w), copy(bundle.model, bundle.weights);
    EXPECT_FLOAT_EQ(orig.score(q, d), copy.score(q, d));
}

TEST(Serialize, BadMagicIsFatal)
{
    auto blob = serializeModel(sampleModel(),
                               ModelWeights::random(sampleModel(), 1));
    blob[0] ^= 0xFF;
    EXPECT_THROW(deserializeModel(blob), FatalError);
}

TEST(Serialize, TruncationIsFatal)
{
    Model m = sampleModel();
    auto blob = serializeModel(m, ModelWeights::random(m, 1));
    blob.resize(blob.size() / 2);
    EXPECT_THROW(deserializeModel(blob), FatalError);
}

TEST(Serialize, TrailingBytesAreFatal)
{
    Model m = sampleModel();
    auto blob = serializeModel(m, ModelWeights::random(m, 1));
    blob.push_back(0);
    EXPECT_THROW(deserializeModel(blob), FatalError);
}

TEST(Serialize, FileRoundTrip)
{
    Model m = sampleModel();
    auto w = ModelWeights::random(m, 9);
    std::string path = ::testing::TempDir() + "/ds_model_test.dsnn";
    saveModelFile(path, m, w);
    auto bundle = loadModelFile(path);
    EXPECT_EQ(bundle.model.name(), m.name());
    EXPECT_EQ(bundle.weights.parameterCount(), w.parameterCount());
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileIsFatal)
{
    EXPECT_THROW(loadModelFile("/nonexistent/nope.dsnn"), FatalError);
}

} // namespace
} // namespace deepstore::nn
