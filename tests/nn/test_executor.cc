/** @file Unit tests for the reference executor. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/executor.h"

namespace deepstore::nn {
namespace {

/** Hand-built 2->1 FC so the expected output is computable by hand. */
TEST(Executor, FcMatMulByHand)
{
    Model m("toy", 1, true); // concat of two 1-d features -> 2 inputs
    m.addLayer(Layer::fc("fc", 2, 1, Activation::None));
    ModelWeights w;
    w.append(Tensor({1, 2}, {2.0f, 3.0f}), Tensor({1}, {0.5f}));
    Executor ex(m, w);
    auto out = ex.run({10.0f}, {100.0f});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0], 2.0f * 10.0f + 3.0f * 100.0f + 0.5f);
}

TEST(Executor, ReluClampsNegative)
{
    Model m("toy", 1, true);
    m.addLayer(Layer::fc("fc", 2, 1, Activation::ReLU));
    ModelWeights w;
    w.append(Tensor({1, 2}, {-1.0f, -1.0f}), Tensor({1}, {0.0f}));
    Executor ex(m, w);
    EXPECT_FLOAT_EQ(ex.run({1.0f}, {1.0f})[0], 0.0f);
}

TEST(Executor, ElementWiseCombiners)
{
    for (EwOp op : {EwOp::Add, EwOp::Subtract, EwOp::Multiply}) {
        Model m("toy", 2, false);
        m.addLayer(Layer::elementWise("fuse", op, 2));
        m.addLayer(Layer::fc("fc", 2, 1, Activation::None, false));
        ModelWeights w;
        w.append(Tensor(), Tensor());
        w.append(Tensor({1, 2}, {1.0f, 1.0f}), Tensor());
        Executor ex(m, w);
        float out = ex.run({3.0f, 4.0f}, {2.0f, 5.0f})[0];
        switch (op) {
          case EwOp::Add: EXPECT_FLOAT_EQ(out, 5.0f + 9.0f); break;
          case EwOp::Subtract: EXPECT_FLOAT_EQ(out, 1.0f - 1.0f); break;
          case EwOp::Multiply: EXPECT_FLOAT_EQ(out, 6.0f + 20.0f); break;
          default: FAIL();
        }
    }
}

TEST(Executor, DotProductCombiner)
{
    Model m("dot", 3, false);
    m.addLayer(Layer::elementWise("dot", EwOp::DotProduct, 3));
    ModelWeights w;
    w.append(Tensor(), Tensor());
    Executor ex(m, w);
    auto out = ex.run({1.0f, 2.0f, 3.0f}, {4.0f, 5.0f, 6.0f});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0], 4.0f + 10.0f + 18.0f);
}

TEST(Executor, ConvIdentityKernel)
{
    // 1x1 kernel with weight 1: convolution is identity.
    Model m("conv", 2, true); // concat -> 4 scalars = 2x2x1 image
    m.addLayer(Layer::conv2d("c", 2, 2, 1, 1, 1, 1, 1, 0,
                             Activation::None));
    ModelWeights w;
    w.append(Tensor({1, 1, 1, 1}, {1.0f}), Tensor({1}, {0.0f}));
    Executor ex(m, w);
    auto out = ex.run({1.0f, 2.0f}, {3.0f, 4.0f});
    ASSERT_EQ(out.size(), 4u);
    EXPECT_FLOAT_EQ(out[0], 1.0f);
    EXPECT_FLOAT_EQ(out[3], 4.0f);
}

TEST(Executor, ConvSumKernelWithPadding)
{
    // 3x3 all-ones kernel, pad 1: each output = sum of 3x3 neighborhood.
    Model m("conv", 2, true);
    m.addLayer(Layer::conv2d("c", 2, 2, 1, 3, 3, 1, 1, 1,
                             Activation::None));
    ModelWeights w;
    w.append(Tensor({3, 3, 1, 1},
                    std::vector<float>(9, 1.0f)),
             Tensor({1}, {0.0f}));
    Executor ex(m, w);
    auto out = ex.run({1.0f, 2.0f}, {3.0f, 4.0f});
    ASSERT_EQ(out.size(), 4u);
    // Input image [[1,2],[3,4]]; with zero padding every output is the
    // sum of the in-bounds neighbors.
    EXPECT_FLOAT_EQ(out[0], 1 + 2 + 3 + 4);
    EXPECT_FLOAT_EQ(out[1], 1 + 2 + 3 + 4);
}

TEST(Executor, ScoreSigmoidFor1d)
{
    std::vector<float> out{0.0f};
    EXPECT_FLOAT_EQ(Executor::scoreFromOutput(out), 0.5f);
    out[0] = 100.0f;
    EXPECT_NEAR(Executor::scoreFromOutput(out), 1.0f, 1e-6);
}

TEST(Executor, ScoreSoftmaxFor2d)
{
    EXPECT_FLOAT_EQ(Executor::scoreFromOutput({1.0f, 1.0f}), 0.5f);
    EXPECT_GT(Executor::scoreFromOutput({0.0f, 5.0f}), 0.99f);
    EXPECT_LT(Executor::scoreFromOutput({5.0f, 0.0f}), 0.01f);
}

TEST(Executor, ScoreIsBounded)
{
    // Property: any output vector maps into [0, 1].
    for (float v : {-100.0f, -1.0f, 0.0f, 3.5f, 80.0f}) {
        float s = Executor::scoreFromOutput({v, v / 2, -v});
        EXPECT_GE(s, 0.0f);
        EXPECT_LE(s, 1.0f);
    }
}

TEST(Executor, RejectsWrongFeatureSize)
{
    Model m("toy", 4, true);
    m.addLayer(Layer::fc("fc", 8, 1));
    auto w = ModelWeights::random(m, 1);
    Executor ex(m, w);
    EXPECT_THROW(ex.run({1.0f}, {1.0f, 2.0f, 3.0f, 4.0f}), FatalError);
}

TEST(Executor, RejectsMismatchedWeights)
{
    Model m("toy", 4, true);
    m.addLayer(Layer::fc("fc", 8, 1));
    ModelWeights w; // empty
    EXPECT_THROW(Executor(m, w), FatalError);
}

TEST(Executor, DeterministicAcrossRuns)
{
    Model m("tir", 512, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Multiply, 512));
    m.addLayer(Layer::fc("fc1", 512, 64));
    m.addLayer(Layer::fc("fc2", 64, 2, Activation::None));
    auto w = ModelWeights::random(m, 99);
    Executor ex(m, w);
    std::vector<float> q(512), d(512);
    for (int i = 0; i < 512; ++i) {
        q[static_cast<size_t>(i)] = 0.01f * static_cast<float>(i % 17);
        d[static_cast<size_t>(i)] = 0.02f * static_cast<float>(i % 13);
    }
    EXPECT_FLOAT_EQ(ex.score(q, d), ex.score(q, d));
}

} // namespace
} // namespace deepstore::nn
