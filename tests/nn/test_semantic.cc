/**
 * @file
 * Tests for the hand-crafted semantic weights: every Table 1 SCN
 * topology must score same-topic feature pairs above cross-topic
 * pairs, and top-K retrieval must recover same-topic items.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "nn/executor.h"
#include "nn/semantic.h"
#include "workloads/apps.h"
#include "workloads/feature_gen.h"

namespace deepstore::nn {
namespace {

class SemanticAppTest
    : public ::testing::TestWithParam<workloads::AppId>
{
};

TEST_P(SemanticAppTest, SameTopicScoresHigher)
{
    auto app = workloads::makeApp(GetParam());
    auto weights = semanticWeights(app.scn);
    Executor ex(app.scn, weights);
    workloads::FeatureGenerator gen(app.scn.featureDim(), 6, 17,
                                    /*noise=*/0.2);
    double same = 0, diff = 0;
    int n = 12;
    for (int i = 0; i < n; ++i) {
        auto q = gen.featureForTopic(0, static_cast<std::uint64_t>(i));
        auto d_same = gen.featureForTopic(
            0, static_cast<std::uint64_t>(i) + 500);
        auto d_diff = gen.featureForTopic(
            3, static_cast<std::uint64_t>(i) + 900);
        same += ex.score(q, d_same);
        diff += ex.score(q, d_diff);
    }
    EXPECT_GT(same / n, diff / n) << app.name;
}

TEST_P(SemanticAppTest, TopKRetrievesSameTopic)
{
    auto app = workloads::makeApp(GetParam());
    auto weights = semanticWeights(app.scn);
    Executor ex(app.scn, weights);
    workloads::FeatureGenerator gen(app.scn.featureDim(), 8, 23,
                                    /*noise=*/0.2);
    // 40-item database, 5 per topic.
    const int db_size = 40;
    auto q = gen.featureForTopic(2, 7777);
    std::vector<std::pair<float, std::uint64_t>> scored;
    for (int i = 0; i < db_size; ++i) {
        auto topic = static_cast<std::uint64_t>(i % 8);
        auto d = gen.featureForTopic(topic,
                                     static_cast<std::uint64_t>(i));
        scored.emplace_back(-ex.score(q, d),
                            topic);
    }
    std::stable_sort(scored.begin(), scored.end());
    // At least 3 of the top 5 results share the query's topic.
    int hits = 0;
    for (int i = 0; i < 5; ++i)
        hits += scored[static_cast<std::size_t>(i)].second == 2;
    EXPECT_GE(hits, 3) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SemanticAppTest,
    ::testing::Values(workloads::AppId::ReId, workloads::AppId::MIR,
                      workloads::AppId::ESTP, workloads::AppId::TIR,
                      workloads::AppId::TextQA),
    [](const auto &info) {
        return std::string(workloads::toString(info.param));
    });

TEST(Semantic, ScoresAreBounded)
{
    auto app = workloads::makeApp(workloads::AppId::TIR);
    auto weights = semanticWeights(app.scn);
    Executor ex(app.scn, weights);
    workloads::FeatureGenerator gen(512, 4, 3);
    for (int i = 0; i < 10; ++i) {
        float s = ex.score(gen.featureAt(static_cast<std::uint64_t>(i)),
                           gen.featureAt(
                               static_cast<std::uint64_t>(i) + 50));
        EXPECT_GE(s, 0.0f);
        EXPECT_LE(s, 1.0f);
    }
}

TEST(Semantic, IdenticalFeaturesScoreNearMax)
{
    // For a subtract-fused model, a zero difference is the best
    // possible input.
    auto app = workloads::makeApp(workloads::AppId::ReId);
    auto weights = semanticWeights(app.scn);
    Executor ex(app.scn, weights);
    workloads::FeatureGenerator gen(11264, 4, 29);
    auto f = gen.featureAt(5);
    float self = ex.score(f, f);
    float other = ex.score(f, gen.featureAt(6));
    EXPECT_GT(self, other);
}

TEST(Semantic, RejectsUnsupportedTopology)
{
    // Neither element-wise fused nor concatenated.
    Model m("plain", 16, false);
    m.addLayer(Layer::fc("fc", 16, 4));
    EXPECT_THROW(semanticWeights(m), FatalError);
}

TEST(Semantic, WeightCountsMatchModel)
{
    for (const auto &app : workloads::allApps()) {
        auto w = semanticWeights(app.scn);
        EXPECT_EQ(w.parameterCount(), app.scn.totalWeightCount())
            << app.name;
    }
}

} // namespace
} // namespace deepstore::nn
