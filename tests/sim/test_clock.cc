/** @file Unit tests for clock-domain conversions. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/clock.h"

namespace deepstore::sim {
namespace {

TEST(Clock, RejectsNonPositiveFrequency)
{
    EXPECT_THROW(Clock(0.0), deepstore::FatalError);
    EXPECT_THROW(Clock(-1.0), deepstore::FatalError);
}

TEST(Clock, PeriodMatchesFrequency)
{
    Clock c(800e6); // the paper's accelerator clock
    EXPECT_NEAR(c.periodTicks(), 1250.0, 1e-9); // 1.25 ns in ps
}

TEST(Clock, CyclesToSecondsRoundTrips)
{
    Clock c(400e6);
    double s = c.cyclesToSeconds(400'000'000);
    EXPECT_NEAR(s, 1.0, 1e-12);
    EXPECT_EQ(c.secondsToCycles(1.0), 400'000'000u);
}

TEST(Clock, CyclesToTicksRoundsUp)
{
    Clock c(3e9); // period 333.33.. ps
    EXPECT_EQ(c.cyclesToTicks(1), 334u);
    EXPECT_EQ(c.cyclesToTicks(3), 1000u);
}

TEST(Clock, SecondsToCyclesRoundsUp)
{
    Clock c(1e6);
    EXPECT_EQ(c.secondsToCycles(1.5e-6), 2u);
}

} // namespace
} // namespace deepstore::sim
