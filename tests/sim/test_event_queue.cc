/** @file Unit tests for the discrete-event kernel. */

#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "sim/event_queue.h"

namespace deepstore::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SimultaneousEventsFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleAfter(4, [&] {
            ++fired;
            q.scheduleAfter(5, [&] { ++fired; });
        });
    });
    Tick end = q.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(end, 10u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.run();
    EXPECT_THROW(q.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run();
    EXPECT_FALSE(ran);
    // A cancelled or consumed event cannot be cancelled again.
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterExecutionReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, PendingAndEmptyTrackLiveEvents)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(10, [&] { fired.push_back(10); });
    q.schedule(20, [&] { fired.push_back(20); });
    q.schedule(30, [&] { fired.push_back(30); });
    q.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(q.now(), 20u);
    q.run();
    EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, ScheduleChainRunsStagesBackToBack)
{
    EventQueue q;
    std::vector<Tick> at;
    q.scheduleChain({
        {10, [&] { at.push_back(q.now()); }},
        {5, [&] { at.push_back(q.now()); }},
        {0, [&] { at.push_back(q.now()); }},
    });
    q.run();
    EXPECT_EQ(at, (std::vector<Tick>{10, 15, 15}));
}

TEST(EventQueue, ScheduleChainCancelStopsRemainingStages)
{
    EventQueue q;
    int fired = 0;
    EventId first = q.scheduleChain({
        {10, [&] { ++fired; }},
        {10, [&] { ++fired; }},
    });
    EXPECT_TRUE(q.cancel(first));
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ScheduleChainRejectsEmpty)
{
    EventQueue q;
    EXPECT_THROW(q.scheduleChain({}), PanicError);
}

TEST(EventQueue, SchedulePeriodicRepeatsUntilFalse)
{
    EventQueue q;
    std::vector<Tick> at;
    q.schedulePeriodic(5, 10, [&] {
        at.push_back(q.now());
        return at.size() < 3;
    });
    q.run();
    EXPECT_EQ(at, (std::vector<Tick>{5, 15, 25}));
    EXPECT_EQ(q.now(), 25u);
}

TEST(EventQueue, SchedulePeriodicRejectsZeroPeriod)
{
    EventQueue q;
    EXPECT_THROW(q.schedulePeriodic(1, 0, [] { return false; }),
                 PanicError);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    for (int i = 0; i < 5000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 1000);
        q.schedule(when, [&, when] {
            monotonic = monotonic && (when >= last);
            last = when;
        });
    }
    q.run();
    EXPECT_TRUE(monotonic);
}

} // namespace
} // namespace deepstore::sim
