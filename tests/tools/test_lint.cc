/**
 * @file
 * Fixture tests for deepstore_lint: each determinism rule D1-D7 is
 * pinned positive (the bad fixture fires, with the expected rule and
 * line) and negative (the good fixture stays clean), and the
 * suppression machinery is pinned to honour annotated findings, count
 * them, and reject reasonless annotations.
 *
 * The fixtures are checked-in `.snippet` files (an extension the tree
 * walk ignores, so the linter never lints its own test corpus) under
 * tests/tools/fixtures/. D5 is structural/tree-level, so its cases
 * build a miniature repo tree in the test temp dir.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint.h"

namespace fs = std::filesystem;
using namespace deepstore::lint;

namespace {

std::string
readFixture(const std::string &name)
{
    fs::path p = fs::path(DEEPSTORE_LINT_FIXTURE_DIR) / name;
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

Report
lintFixture(const std::string &name,
            const std::string &path_override = "",
            const Options &opts = {})
{
    Report report;
    std::string path =
        path_override.empty() ? "src/fixture/" + name : path_override;
    lintSource(path, readFixture(name), opts, {}, report);
    return report;
}

std::vector<std::string>
rulesOf(const Report &r)
{
    std::vector<std::string> rules;
    for (const auto &f : r.findings)
        rules.push_back(f.rule);
    return rules;
}

// ---- D1: wall-clock APIs ----------------------------------------

TEST(LintD1, BadFixtureFiresOnBothWallClockUses)
{
    Report r = lintFixture("d1_bad.snippet");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D1");
    EXPECT_EQ(r.findings[0].line, 5); // steady_clock
    EXPECT_EQ(r.findings[1].rule, "D1");
    EXPECT_EQ(r.findings[1].line, 6); // time(nullptr)
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintD1, GoodFixtureIsClean)
{
    // Declarations (`sim::Clock clock(...)`), comments and string
    // literals must not fire.
    Report r = lintFixture("d1_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

TEST(LintD1, BenchDirectoryIsExempt)
{
    Report r = lintFixture("d1_bad.snippet", "bench/bench_wall.cc");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

// ---- D2: unseeded randomness ------------------------------------

TEST(LintD2, BadFixtureFiresOnEveryRngEscape)
{
    Report r = lintFixture("d2_bad.snippet");
    ASSERT_EQ(r.findings.size(), 3u) << formatReport(r, true);
    EXPECT_EQ(rulesOf(r),
              (std::vector<std::string>{"D2", "D2", "D2"}));
    EXPECT_EQ(r.findings[0].line, 5); // std::mt19937
    EXPECT_EQ(r.findings[1].line, 6); // rand()
    EXPECT_EQ(r.findings[2].line, 7); // std::random_device
}

TEST(LintD2, GoodFixtureIsClean)
{
    // Rng usage plus a *declared function* named `random` (the
    // declaration heuristic must not treat it as a call).
    Report r = lintFixture("d2_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

TEST(LintD2, CommonRngItselfIsExempt)
{
    Report r = lintFixture("d2_bad.snippet", "src/common/rng.h");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

// ---- D3: direct sim-time accumulation ---------------------------

TEST(LintD3, BadFixtureFiresOnSecondsAndTickMembers)
{
    Report r = lintFixture("d3_bad.snippet");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D3");
    EXPECT_EQ(r.findings[0].line, 5); // simSeconds_ +=
    EXPECT_EQ(r.findings[1].rule, "D3");
    EXPECT_EQ(r.findings[1].line, 6); // now_ +=
}

TEST(LintD3, SuppressionsAreHonouredAndCounted)
{
    // Same-line and line-above annotations both suppress, both
    // record their reasons, and nothing leaks through as a finding.
    Report r = lintFixture("d3_suppressed.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 2u);
    EXPECT_EQ(r.suppressions[0].rule, "D3");
    EXPECT_EQ(r.suppressions[0].reason,
              "result struct, not the clock");
    EXPECT_EQ(r.suppressions[1].rule, "D3");
    EXPECT_EQ(r.suppressions[1].reason,
              "analytic decomposition term");
}

TEST(LintD3, TimeLedgerAndSimKernelAreExempt)
{
    EXPECT_TRUE(lintFixture("d3_bad.snippet",
                            "src/core/time_ledger.cc")
                    .clean());
    EXPECT_TRUE(
        lintFixture("d3_bad.snippet", "src/sim/event_queue.cc")
            .clean());
}

// ---- D4: unordered iteration ------------------------------------

TEST(LintD4, BadFixtureFiresOnUnorderedRangeFor)
{
    Report r = lintFixture("d4_bad.snippet");
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D4");
    EXPECT_EQ(r.findings[0].line, 6);
}

TEST(LintD4, OrderedOkAnnotationAndStdMapAreClean)
{
    Report r = lintFixture("d4_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D4");
    EXPECT_EQ(r.suppressions[0].reason, "summing is commutative");
}

TEST(LintD4, CrossFileUnorderedNamesAreRespected)
{
    // A header declares the member; the .cc only sees the name. The
    // tree pass feeds collected names in via unordered_names.
    const std::string cc =
        "void dump() {\n"
        "    for (const auto &kv : members_)\n"
        "        use(kv);\n"
        "}\n";
    Report with;
    lintSource("src/x.cc", cc, {}, {"members_"}, with);
    ASSERT_EQ(with.findings.size(), 1u);
    EXPECT_EQ(with.findings[0].rule, "D4");
    EXPECT_EQ(with.findings[0].line, 2);

    Report without;
    lintSource("src/x.cc", cc, {}, {}, without);
    EXPECT_TRUE(without.clean());
}

TEST(LintD4, CollectUnorderedNamesFindsDeclarations)
{
    auto names = collectUnorderedNames(
        "std::unordered_map<std::uint64_t, Entry> map_;\n"
        "std::unordered_set<int> seen;\n"
        "std::map<int, int> sorted_;\n");
    EXPECT_EQ(names,
              (std::vector<std::string>{"map_", "seen"}));
}

// ---- D6: closed-form ledger advances in the scan path -----------

TEST(LintD6, BadFixtureFiresOnMemberAndPointerAdvances)
{
    Report r =
        lintFixture("d6_bad.snippet", "src/core/engine.cc");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D6");
    EXPECT_EQ(r.findings[0].line, 6); // ledger_.advance
    EXPECT_EQ(r.findings[1].rule, "D6");
    EXPECT_EQ(r.findings[1].line, 7); // hostLedger->advance
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintD6, GoodFixtureAllowlistAndNonLedgerAreClean)
{
    // A reasoned lint:allow(D6: ...) allowlists the host fast path;
    // advance() on a non-ledger receiver and event scheduling never
    // fire.
    Report r =
        lintFixture("d6_good.snippet", "src/core/engine.cc");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D6");
    EXPECT_EQ(r.suppressions[0].reason,
              "host bulk-ingest fast path, not the scan datapath");
}

TEST(LintD6, OnlyTheLiveScanPathIsInScope)
{
    // The rule polices src/core/ only: the analytic model helpers
    // elsewhere, the tests, and TimeLedger's own implementation may
    // call advance() freely.
    EXPECT_TRUE(lintFixture("d6_bad.snippet").clean());
    EXPECT_TRUE(
        lintFixture("d6_bad.snippet", "tests/core/test_x.cc")
            .clean());
    EXPECT_TRUE(lintFixture("d6_bad.snippet",
                            "src/core/time_ledger.cc")
                    .clean());
}

// ---- D7: Ssd/Ftl reach-ins outside the node/array layer ---------

TEST(LintD7, BadFixtureFiresOnPointerCallAndObjectAccess)
{
    Report r =
        lintFixture("d7_bad.snippet", "src/core/engine.cc");
    ASSERT_EQ(r.findings.size(), 3u) << formatReport(r, true);
    EXPECT_EQ(rulesOf(r),
              (std::vector<std::string>{"D7", "D7", "D7"}));
    EXPECT_EQ(r.findings[0].line, 6); // ssd_->hostRead
    EXPECT_EQ(r.findings[1].line, 7); // ssd().dramLink()
    EXPECT_EQ(r.findings[2].line, 8); // ftl_.translate
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintD7, GoodFixtureQualificationAndAllowlistAreClean)
{
    // `ssd::` scope qualification, enum naming, an accessor
    // *declaration* named ssd(), and a reasoned lint:allow(D7: ...)
    // must all stay quiet.
    Report r =
        lintFixture("d7_good.snippet", "src/core/engine.cc");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D7");
    EXPECT_EQ(r.suppressions[0].reason,
              "metadata region owned by the engine, not scan state");
}

TEST(LintD7, NodeAndArrayLayerAreExempt)
{
    // core/ssd_node and core/array_coordinator *are* the
    // encapsulation layer; everything outside src/core/ (ssd/,
    // tests/) owns its devices by definition.
    EXPECT_TRUE(lintFixture("d7_bad.snippet",
                            "src/core/ssd_node.cc")
                    .clean());
    EXPECT_TRUE(lintFixture("d7_bad.snippet",
                            "src/core/array_coordinator.cc")
                    .clean());
    EXPECT_TRUE(
        lintFixture("d7_bad.snippet", "src/ssd/ssd.cc").clean());
    EXPECT_TRUE(
        lintFixture("d7_bad.snippet", "tests/core/test_x.cc")
            .clean());
}

// ---- Suppression hygiene ----------------------------------------

TEST(LintSuppression, ReasonlessAnnotationIsItselfAFinding)
{
    Report r = lintFixture("noreason.snippet");
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D1");
    EXPECT_EQ(r.findings[0].line, 5);
    EXPECT_NE(r.findings[0].message.find("missing a reason"),
              std::string::npos);
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintSuppression, WrongRuleAnnotationDoesNotSuppress)
{
    Report r;
    lintSource("src/x.cc",
               "// lint:allow(D2: not the right rule)\n"
               "auto t = std::chrono::steady_clock::now();\n",
               {}, {}, r);
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "D1");
}

// ---- Rule selection ---------------------------------------------

TEST(LintOptions, RuleFilterDisablesOtherRules)
{
    Options only_d2;
    only_d2.rules = {"D2"};
    EXPECT_TRUE(
        lintFixture("d1_bad.snippet", "", only_d2).clean());
    EXPECT_FALSE(
        lintFixture("d2_bad.snippet", "", only_d2).clean());
}

// ---- stripSource ------------------------------------------------

TEST(LintStrip, LiteralsAndCommentsAreBlanked)
{
    StrippedSource s = stripSource(
        "int a = 1; // rand() in a comment\n"
        "const char *s = \"std::mt19937 inside a string\";\n"
        "auto r = R\"(raw rand() string)\";\n");
    EXPECT_EQ(s.code.find("rand"), std::string::npos);
    EXPECT_EQ(s.code.find("mt19937"), std::string::npos);
    // A trailing newline yields a final empty line entry.
    ASSERT_GE(s.comments.size(), 3u);
    EXPECT_NE(s.comments[0].find("rand() in a comment"),
              std::string::npos);
}

// ---- D5: structural tree checks ---------------------------------

class LintD5 : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::path(::testing::TempDir()) /
                ("lint_d5_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()));
        fs::remove_all(root_);
        fs::create_directories(root_ / "tests" / "core");
        fs::create_directories(root_ / "bench");
        fs::create_directories(root_ / "src");
    }

    void
    TearDown() override
    {
        fs::remove_all(root_);
    }

    void
    write(const fs::path &rel, const std::string &text)
    {
        std::ofstream out(root_ / rel, std::ios::binary);
        out << text;
    }

    Report
    lint()
    {
        return lintTree(root_.string(), {});
    }

    fs::path root_;
};

TEST_F(LintD5, UnregisteredTestFileIsAFinding)
{
    write("tests/CMakeLists.txt",
          "ds_add_test(test_core core/test_known.cc)\n");
    write("tests/core/test_known.cc", "int main() {}\n");
    write("tests/core/test_orphan.cc", "int main() {}\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D5");
    EXPECT_NE(r.findings[0].message.find("test_orphan.cc"),
              std::string::npos);
}

TEST_F(LintD5, RegisteredTestsAreClean)
{
    write("tests/CMakeLists.txt",
          "ds_add_test(test_core core/test_known.cc)\n");
    write("tests/core/test_known.cc", "int main() {}\n");
    EXPECT_TRUE(lint().clean());
}

TEST_F(LintD5, BenchWithoutJsonReportIsAFinding)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_silent.cc",
          "int main() { /* prints text only */ }\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D5");
    EXPECT_EQ(r.findings[0].file, "bench/bench_silent.cc");
}

TEST_F(LintD5, BenchWithJsonReportIsClean)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_json.cc",
          "int main() { bench::JsonReport r(\"x\"); r.write(); }\n");
    EXPECT_TRUE(lint().clean());
}

TEST_F(LintD5, FileLevelSuppressionIsHonoured)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_extern.cc",
          "// lint:allow(D5: external harness emits JSON itself)\n"
          "int main() {}\n");
    Report r = lint();
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D5");
    EXPECT_EQ(r.suppressions[0].reason,
              "external harness emits JSON itself");
}

TEST_F(LintD5, ReasonlessFileLevelSuppressionIsAFinding)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_bad.cc",
          "// lint:allow(D5:)\n"
          "int main() {}\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D5");
    EXPECT_NE(r.findings[0].message.find("missing a reason"),
              std::string::npos);
}

// ---- The real tree stays clean ----------------------------------

TEST(LintTree, RepositoryHasNoUnsuppressedFindings)
{
    // The same invariant the lint_tree ctest pins, but from inside
    // the test suite: zero findings, every suppression reasoned.
    Report r = lintTree(DEEPSTORE_LINT_REPO_ROOT, {});
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    for (const auto &s : r.suppressions)
        EXPECT_FALSE(s.reason.empty())
            << s.file << ":" << s.line;
}

} // namespace
