/**
 * @file
 * Fixture tests for deepstore_lint: each determinism rule D1-D12 is
 * pinned positive (the bad fixture fires, with the expected rule and
 * line) and negative (the good fixture stays clean), and the
 * suppression machinery is pinned to honour annotated findings, count
 * them, and reject reasonless annotations.
 *
 * The fixtures are checked-in `.snippet` files (an extension the tree
 * walk ignores, so the linter never lints its own test corpus) under
 * tests/tools/fixtures/. D5 and D11 are structural/tree-level, so
 * their cases build a miniature repo tree in the test temp dir. The
 * D8 sim-state inventory is round-tripped against the checked-in
 * tools/lint/sim_state_inventory.json.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "lint.h"

namespace fs = std::filesystem;
using namespace deepstore::lint;

namespace {

std::string
readFixture(const std::string &name)
{
    fs::path p = fs::path(DEEPSTORE_LINT_FIXTURE_DIR) / name;
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

Report
lintFixture(const std::string &name,
            const std::string &path_override = "",
            const Options &opts = {})
{
    Report report;
    std::string path =
        path_override.empty() ? "src/fixture/" + name : path_override;
    lintSource(path, readFixture(name), opts, FileContext{}, report);
    return report;
}

std::vector<std::string>
rulesOf(const Report &r)
{
    std::vector<std::string> rules;
    for (const auto &f : r.findings)
        rules.push_back(f.rule);
    return rules;
}

// ---- D1: wall-clock APIs ----------------------------------------

TEST(LintD1, BadFixtureFiresOnBothWallClockUses)
{
    Report r = lintFixture("d1_bad.snippet");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D1");
    EXPECT_EQ(r.findings[0].line, 5); // steady_clock
    EXPECT_EQ(r.findings[1].rule, "D1");
    EXPECT_EQ(r.findings[1].line, 6); // time(nullptr)
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintD1, GoodFixtureIsClean)
{
    // Declarations (`sim::Clock clock(...)`), comments and string
    // literals must not fire.
    Report r = lintFixture("d1_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

TEST(LintD1, BenchDirectoryIsExempt)
{
    Report r = lintFixture("d1_bad.snippet", "bench/bench_wall.cc");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

// ---- D2: unseeded randomness ------------------------------------

TEST(LintD2, BadFixtureFiresOnEveryRngEscape)
{
    Report r = lintFixture("d2_bad.snippet");
    ASSERT_EQ(r.findings.size(), 3u) << formatReport(r, true);
    EXPECT_EQ(rulesOf(r),
              (std::vector<std::string>{"D2", "D2", "D2"}));
    EXPECT_EQ(r.findings[0].line, 5); // std::mt19937
    EXPECT_EQ(r.findings[1].line, 6); // rand()
    EXPECT_EQ(r.findings[2].line, 7); // std::random_device
}

TEST(LintD2, GoodFixtureIsClean)
{
    // Rng usage plus a *declared function* named `random` (the
    // declaration heuristic must not treat it as a call).
    Report r = lintFixture("d2_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

TEST(LintD2, CommonRngItselfIsExempt)
{
    Report r = lintFixture("d2_bad.snippet", "src/common/rng.h");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

// ---- D3: direct sim-time accumulation ---------------------------

TEST(LintD3, BadFixtureFiresOnSecondsAndTickMembers)
{
    Report r = lintFixture("d3_bad.snippet");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D3");
    EXPECT_EQ(r.findings[0].line, 5); // simSeconds_ +=
    EXPECT_EQ(r.findings[1].rule, "D3");
    EXPECT_EQ(r.findings[1].line, 6); // now_ +=
}

TEST(LintD3, SuppressionsAreHonouredAndCounted)
{
    // Same-line and line-above annotations both suppress, both
    // record their reasons, and nothing leaks through as a finding.
    Report r = lintFixture("d3_suppressed.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 2u);
    EXPECT_EQ(r.suppressions[0].rule, "D3");
    EXPECT_EQ(r.suppressions[0].reason,
              "result struct, not the clock");
    EXPECT_EQ(r.suppressions[1].rule, "D3");
    EXPECT_EQ(r.suppressions[1].reason,
              "analytic decomposition term");
}

TEST(LintD3, TimeLedgerAndSimKernelAreExempt)
{
    EXPECT_TRUE(lintFixture("d3_bad.snippet",
                            "src/core/time_ledger.cc")
                    .clean());
    EXPECT_TRUE(
        lintFixture("d3_bad.snippet", "src/sim/event_queue.cc")
            .clean());
}

// ---- D4: unordered iteration ------------------------------------

TEST(LintD4, BadFixtureFiresOnUnorderedRangeFor)
{
    Report r = lintFixture("d4_bad.snippet");
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D4");
    EXPECT_EQ(r.findings[0].line, 6);
}

TEST(LintD4, OrderedOkAnnotationAndStdMapAreClean)
{
    Report r = lintFixture("d4_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D4");
    EXPECT_EQ(r.suppressions[0].reason, "summing is commutative");
}

TEST(LintD4, CrossFileUnorderedNamesAreRespected)
{
    // A header declares the member; the .cc only sees the name. The
    // tree pass feeds collected names in via unordered_names.
    const std::string cc =
        "void dump() {\n"
        "    for (const auto &kv : members_)\n"
        "        use(kv);\n"
        "}\n";
    Report with;
    lintSource("src/x.cc", cc, {}, {"members_"}, with);
    ASSERT_EQ(with.findings.size(), 1u);
    EXPECT_EQ(with.findings[0].rule, "D4");
    EXPECT_EQ(with.findings[0].line, 2);

    Report without;
    lintSource("src/x.cc", cc, {}, FileContext{}, without);
    EXPECT_TRUE(without.clean());
}

TEST(LintD4, CollectUnorderedNamesFindsDeclarations)
{
    auto names = collectUnorderedNames(
        "std::unordered_map<std::uint64_t, Entry> map_;\n"
        "std::unordered_set<int> seen;\n"
        "std::map<int, int> sorted_;\n");
    EXPECT_EQ(names,
              (std::vector<std::string>{"map_", "seen"}));
}

// ---- D6: closed-form ledger advances in the scan path -----------

TEST(LintD6, BadFixtureFiresOnMemberAndPointerAdvances)
{
    Report r =
        lintFixture("d6_bad.snippet", "src/core/engine.cc");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D6");
    EXPECT_EQ(r.findings[0].line, 6); // ledger_.advance
    EXPECT_EQ(r.findings[1].rule, "D6");
    EXPECT_EQ(r.findings[1].line, 7); // hostLedger->advance
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintD6, GoodFixtureAllowlistAndNonLedgerAreClean)
{
    // A reasoned lint:allow(D6: ...) allowlists the host fast path;
    // advance() on a non-ledger receiver and event scheduling never
    // fire.
    Report r =
        lintFixture("d6_good.snippet", "src/core/engine.cc");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D6");
    EXPECT_EQ(r.suppressions[0].reason,
              "host bulk-ingest fast path, not the scan datapath");
}

TEST(LintD6, OnlyTheLiveScanPathIsInScope)
{
    // The rule polices src/core/ only: the analytic model helpers
    // elsewhere, the tests, and TimeLedger's own implementation may
    // call advance() freely.
    EXPECT_TRUE(lintFixture("d6_bad.snippet").clean());
    EXPECT_TRUE(
        lintFixture("d6_bad.snippet", "tests/core/test_x.cc")
            .clean());
    EXPECT_TRUE(lintFixture("d6_bad.snippet",
                            "src/core/time_ledger.cc")
                    .clean());
}

// ---- D7: Ssd/Ftl reach-ins outside the node/array layer ---------

TEST(LintD7, BadFixtureFiresOnPointerCallAndObjectAccess)
{
    Report r =
        lintFixture("d7_bad.snippet", "src/core/engine.cc");
    ASSERT_EQ(r.findings.size(), 3u) << formatReport(r, true);
    EXPECT_EQ(rulesOf(r),
              (std::vector<std::string>{"D7", "D7", "D7"}));
    EXPECT_EQ(r.findings[0].line, 6); // ssd_->hostRead
    EXPECT_EQ(r.findings[1].line, 7); // ssd().dramLink()
    EXPECT_EQ(r.findings[2].line, 8); // ftl_.translate
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintD7, GoodFixtureQualificationAndAllowlistAreClean)
{
    // `ssd::` scope qualification, enum naming, an accessor
    // *declaration* named ssd(), and a reasoned lint:allow(D7: ...)
    // must all stay quiet.
    Report r =
        lintFixture("d7_good.snippet", "src/core/engine.cc");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D7");
    EXPECT_EQ(r.suppressions[0].reason,
              "metadata region owned by the engine, not scan state");
}

TEST(LintD7, NodeAndArrayLayerAreExempt)
{
    // core/ssd_node and core/array_coordinator *are* the
    // encapsulation layer; everything outside src/core/ (ssd/,
    // tests/) owns its devices by definition.
    EXPECT_TRUE(lintFixture("d7_bad.snippet",
                            "src/core/ssd_node.cc")
                    .clean());
    EXPECT_TRUE(lintFixture("d7_bad.snippet",
                            "src/core/array_coordinator.cc")
                    .clean());
    EXPECT_TRUE(
        lintFixture("d7_bad.snippet", "src/ssd/ssd.cc").clean());
    EXPECT_TRUE(
        lintFixture("d7_bad.snippet", "tests/core/test_x.cc")
            .clean());
}

// ---- Suppression hygiene ----------------------------------------

TEST(LintSuppression, ReasonlessAnnotationIsItselfAFinding)
{
    Report r = lintFixture("noreason.snippet");
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D1");
    EXPECT_EQ(r.findings[0].line, 5);
    EXPECT_NE(r.findings[0].message.find("missing a reason"),
              std::string::npos);
    EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintSuppression, WrongRuleAnnotationDoesNotSuppress)
{
    // The D2 annotation suppresses nothing here: the wall-clock
    // read is D1, and the namespace-scope `auto t = ...` is itself
    // an unannotated mutable global (D8).
    Report r;
    lintSource("src/x.cc",
               "// lint:allow(D2: not the right rule)\n"
               "auto t = std::chrono::steady_clock::now();\n",
               {}, FileContext{}, r);
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D1");
    EXPECT_EQ(r.findings[1].rule, "D8");
    EXPECT_TRUE(r.suppressions.empty());
}

// ---- Rule selection ---------------------------------------------

TEST(LintOptions, RuleFilterDisablesOtherRules)
{
    Options only_d2;
    only_d2.rules = {"D2"};
    EXPECT_TRUE(
        lintFixture("d1_bad.snippet", "", only_d2).clean());
    EXPECT_FALSE(
        lintFixture("d2_bad.snippet", "", only_d2).clean());
}

// ---- stripSource ------------------------------------------------

TEST(LintStrip, LiteralsAndCommentsAreBlanked)
{
    StrippedSource s = stripSource(
        "int a = 1; // rand() in a comment\n"
        "const char *s = \"std::mt19937 inside a string\";\n"
        "auto r = R\"(raw rand() string)\";\n");
    EXPECT_EQ(s.code.find("rand"), std::string::npos);
    EXPECT_EQ(s.code.find("mt19937"), std::string::npos);
    // A trailing newline yields a final empty line entry.
    ASSERT_GE(s.comments.size(), 3u);
    EXPECT_NE(s.comments[0].find("rand() in a comment"),
              std::string::npos);
}

// ---- D5: structural tree checks ---------------------------------

class LintD5 : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::path(::testing::TempDir()) /
                ("lint_d5_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()));
        fs::remove_all(root_);
        fs::create_directories(root_ / "tests" / "core");
        fs::create_directories(root_ / "bench");
        fs::create_directories(root_ / "src");
    }

    void
    TearDown() override
    {
        fs::remove_all(root_);
    }

    void
    write(const fs::path &rel, const std::string &text)
    {
        std::ofstream out(root_ / rel, std::ios::binary);
        out << text;
    }

    Report
    lint()
    {
        return lintTree(root_.string(), {});
    }

    fs::path root_;
};

TEST_F(LintD5, UnregisteredTestFileIsAFinding)
{
    write("tests/CMakeLists.txt",
          "ds_add_test(test_core core/test_known.cc)\n");
    write("tests/core/test_known.cc", "int main() {}\n");
    write("tests/core/test_orphan.cc", "int main() {}\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D5");
    EXPECT_NE(r.findings[0].message.find("test_orphan.cc"),
              std::string::npos);
}

TEST_F(LintD5, RegisteredTestsAreClean)
{
    write("tests/CMakeLists.txt",
          "ds_add_test(test_core core/test_known.cc)\n");
    write("tests/core/test_known.cc", "int main() {}\n");
    EXPECT_TRUE(lint().clean());
}

TEST_F(LintD5, BenchWithoutJsonReportIsAFinding)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_silent.cc",
          "int main() { /* prints text only */ }\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D5");
    EXPECT_EQ(r.findings[0].file, "bench/bench_silent.cc");
}

TEST_F(LintD5, BenchWithJsonReportIsClean)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_json.cc",
          "int main() { bench::JsonReport r(\"x\"); r.write(); }\n");
    EXPECT_TRUE(lint().clean());
}

TEST_F(LintD5, FileLevelSuppressionIsHonoured)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_extern.cc",
          "// lint:allow(D5: external harness emits JSON itself)\n"
          "int main() {}\n");
    Report r = lint();
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D5");
    EXPECT_EQ(r.suppressions[0].reason,
              "external harness emits JSON itself");
}

TEST_F(LintD5, ReasonlessFileLevelSuppressionIsAFinding)
{
    write("tests/CMakeLists.txt", "\n");
    write("bench/bench_bad.cc",
          "// lint:allow(D5:)\n"
          "int main() {}\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D5");
    EXPECT_NE(r.findings[0].message.find("missing a reason"),
              std::string::npos);
}

// ---- D8: shared simulator state must name an owner domain -------

TEST(LintD8, BadFixtureFiresOnAllThreeStaticKinds)
{
    Report r = lintFixture("d8_bad.snippet");
    ASSERT_EQ(r.findings.size(), 3u) << formatReport(r, true);
    EXPECT_EQ(rulesOf(r),
              (std::vector<std::string>{"D8", "D8", "D8"}));
    EXPECT_EQ(r.findings[0].line, 5); // gRetryBudget (global)
    EXPECT_NE(r.findings[0].message.find("global `gRetryBudget`"),
              std::string::npos);
    EXPECT_EQ(r.findings[1].line, 8); // Cache::hits_
    EXPECT_NE(r.findings[1].message.find("class-static `hits_`"),
              std::string::npos);
    EXPECT_EQ(r.findings[2].line, 12); // thread_local calls
    EXPECT_NE(r.findings[2].message.find("local-static `calls`"),
              std::string::npos);
    EXPECT_TRUE(r.simState.empty());
}

TEST(LintD8, GoodFixtureFeedsInventoryAndHonoursAllow)
{
    Report r = lintFixture("d8_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    // The annotated global lands in the inventory with its domain
    // and reason; const / constexpr / *const and plain locals do
    // not count as state at all.
    ASSERT_EQ(r.simState.size(), 1u);
    EXPECT_EQ(r.simState[0].file, "src/fixture/d8_good.snippet");
    EXPECT_EQ(r.simState[0].line, 6);
    EXPECT_EQ(r.simState[0].symbol, "gTraceDepth");
    EXPECT_EQ(r.simState[0].domain, "kernel");
    EXPECT_EQ(r.simState[0].reason, "frozen before workers start");
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D8");
    EXPECT_EQ(r.suppressions[0].reason,
              "scratch counter owned by the test harness, never "
              "read by the simulator");
}

TEST(LintD8, MalformedAnnotationsAreFindingsNotSuppressions)
{
    Report r = lintFixture("d8_malformed.snippet");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D8");
    EXPECT_EQ(r.findings[0].line, 5); // lint:sim-state(kernel)
    EXPECT_NE(r.findings[0].message.find("missing a reason"),
              std::string::npos);
    EXPECT_EQ(r.findings[1].rule, "D8");
    EXPECT_EQ(r.findings[1].line, 7); // per-thread domain
    EXPECT_NE(r.findings[1].message.find("unknown owner domain"),
              std::string::npos);
    EXPECT_TRUE(r.simState.empty());
}

TEST(LintD8, OnlySrcIsInScope)
{
    EXPECT_TRUE(
        lintFixture("d8_bad.snippet", "tests/core/test_x.cc")
            .clean());
    EXPECT_TRUE(
        lintFixture("d8_bad.snippet", "bench/bench_x.cc").clean());
}

TEST(LintD8, CollectMutableStaticsClassifiesKinds)
{
    auto statics = collectMutableStatics(
        "int gCounter = 0;\n"
        "const int kLimit = 8;\n"
        "constexpr int kWays = 2;\n"
        "struct S {\n"
        "    static int calls_;\n"
        "};\n"
        "void f() {\n"
        "    static double acc = 0;\n"
        "    int local = 0;\n"
        "    (void)local;\n"
        "}\n");
    ASSERT_EQ(statics.size(), 3u);
    EXPECT_EQ(statics[0].symbol, "gCounter");
    EXPECT_EQ(statics[0].kind, "global");
    EXPECT_EQ(statics[1].symbol, "calls_");
    EXPECT_EQ(statics[1].kind, "class-static");
    EXPECT_EQ(statics[2].symbol, "acc");
    EXPECT_EQ(statics[2].kind, "local-static");
}

// ---- D9: address-order nondeterminism ---------------------------

TEST(LintD9, BadFixtureFiresOnKeysComparatorsAndRawCompares)
{
    Report r = lintFixture("d9_bad.snippet");
    ASSERT_EQ(r.findings.size(), 4u) << formatReport(r, true);
    EXPECT_EQ(rulesOf(r),
              (std::vector<std::string>{"D9", "D9", "D9", "D9"}));
    EXPECT_EQ(r.findings[0].line, 6);  // map<const Node *, ...>
    EXPECT_EQ(r.findings[1].line, 7);  // set<shared_ptr<Node>>
    EXPECT_EQ(r.findings[2].line, 11); // comparator a < b
    EXPECT_EQ(r.findings[3].line, 14); // p < q
}

TEST(LintD9, GoodFixtureStableKeysAndAnnotationAreClean)
{
    Report r = lintFixture("d9_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D9");
    EXPECT_EQ(r.suppressions[0].reason,
              "membership test only; never iterated, so address "
              "order is unobservable");
}

TEST(LintD9, CollectPointerNamesRejectsMultiplication)
{
    auto names = collectPointerNames(
        "struct Q;\n"
        "Node *head;\n"
        "const Node *tail = nullptr;\n"
        "void f(Edge *e) { int x = a * b; (void)x; (void)e; }\n");
    EXPECT_EQ(names,
              (std::vector<std::string>{"e", "head", "tail"}));
}

// ---- D10: FP accumulation over unordered iteration --------------

TEST(LintD10, OrderedOkDoesNotCoverFloatAccumulation)
{
    // The key semantic pin: lint:ordered-ok claims iteration order
    // doesn't matter, but an FP sum is exactly where it does — D4
    // goes quiet, D10 still fires.
    Report r = lintFixture("d10_bad.snippet");
    ASSERT_EQ(r.findings.size(), 3u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D4");
    EXPECT_EQ(r.findings[0].line, 8); // unannotated loop
    EXPECT_EQ(r.findings[1].rule, "D10");
    EXPECT_EQ(r.findings[1].line, 9); // total +=
    EXPECT_EQ(r.findings[2].rule, "D10");
    EXPECT_EQ(r.findings[2].line, 13); // sum += under ordered-ok
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D4");
    EXPECT_EQ(r.suppressions[0].reason, "just summing");
}

TEST(LintD10, IntegerSumsOrderedMapsAndAllowAreClean)
{
    Report r = lintFixture("d10_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    // Two ordered-ok'd walks (integer sum, epsilon-compared sum)
    // plus one explicit lint:allow(D10: ...).
    ASSERT_EQ(r.suppressions.size(), 3u);
    EXPECT_EQ(r.suppressions[0].rule, "D4");
    EXPECT_EQ(r.suppressions[1].rule, "D4");
    EXPECT_EQ(r.suppressions[2].rule, "D10");
    EXPECT_EQ(r.suppressions[2].reason,
              "result only checked against a 1e-6 tolerance, never "
              "replay-pinned");
}

TEST(LintD10, CollectFloatNamesHandlesMultiDeclarators)
{
    auto names = collectFloatNames(
        "double total = 0, mean = 0;\n"
        "float x;\n"
        "std::unordered_map<int, double> m;\n"
        "int n = 0;\n");
    EXPECT_EQ(names, (std::vector<std::string>{"mean", "total",
                                               "x"}));
}

// ---- D12: by-reference captures in scheduled lambdas ------------

TEST(LintD12, BadFixtureFiresOnBlanketAndExplicitRefCaptures)
{
    Report r = lintFixture("d12_bad.snippet");
    ASSERT_EQ(r.findings.size(), 2u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D12");
    EXPECT_EQ(r.findings[0].line, 6); // [&]
    EXPECT_EQ(r.findings[1].rule, "D12");
    EXPECT_EQ(r.findings[1].line, 9); // [&count], nested in wrap()
}

TEST(LintD12, ValueCapturesSubscriptsAndAllowAreClean)
{
    Report r = lintFixture("d12_good.snippet");
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D12");
    EXPECT_EQ(r.suppressions[0].reason,
              "the runUntilIdle call below drains the queue "
              "before drained goes out of scope");
}

TEST(LintD12, OnlySrcIsInScope)
{
    EXPECT_TRUE(
        lintFixture("d12_bad.snippet", "tests/sim/test_x.cc")
            .clean());
}

// ---- D11: stats schema completeness (tree-level) ----------------

class LintD11 : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::path(::testing::TempDir()) /
                ("lint_d11_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name()));
        fs::remove_all(root_);
        fs::create_directories(root_ / "tests");
        fs::create_directories(root_ / "src" / "common");
        fs::create_directories(root_ / "src" / "core");
        write("tests/CMakeLists.txt", "\n");
    }

    void
    TearDown() override
    {
        fs::remove_all(root_);
    }

    void
    write(const fs::path &rel, const std::string &text)
    {
        std::ofstream out(root_ / rel, std::ios::binary);
        out << text;
    }

    Report
    lint()
    {
        return lintTree(root_.string(), {});
    }

    fs::path root_;
};

TEST_F(LintD11, UnregisteredGetIsAFinding)
{
    write("src/common/stats_schema.h",
          "DS_STAT(\"engine.queries\", \"queries issued\")\n");
    write("src/core/engine.cc",
          "void dump(StatGroup &stats) {\n"
          "    stats.get(\"engine.queries\") += 1;\n"
          "    stats.get(\"engine.misses\") += 1;\n"
          "}\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D11");
    EXPECT_EQ(r.findings[0].file, "src/core/engine.cc");
    EXPECT_EQ(r.findings[0].line, 3);
    EXPECT_NE(r.findings[0].message.find("engine.misses"),
              std::string::npos);
    EXPECT_NE(r.findings[0].message.find("not registered"),
              std::string::npos);
}

TEST_F(LintD11, ManualRowAgainstDsStatRegistrationIsAFinding)
{
    // The guarded-row idiom is first-class: a row printed by hand
    // must be registered as DS_STAT_ROW, not DS_STAT.
    write("src/common/stats_schema.h",
          "DS_STAT(\"array.nodes\", \"node count\")\n");
    write("src/core/coord.cc",
          "void dump(std::ostream &os, int n) {\n"
          "    os << \"array.nodes = \" << n << \"\\n\";\n"
          "}\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D11");
    EXPECT_EQ(r.findings[0].line, 2);
    EXPECT_NE(r.findings[0].message.find("printed as a manual row"),
              std::string::npos);
}

TEST_F(LintD11, StaleSchemaEntryIsAFindingAtItsDeclaration)
{
    write("src/common/stats_schema.h",
          "DS_STAT(\"engine.queries\", \"queries issued\")\n"
          "DS_STAT(\"engine.orphan\", \"never referenced\")\n");
    write("src/core/engine.cc",
          "void bump(StatGroup &stats) {\n"
          "    stats.get(\"engine.queries\") += 1;\n"
          "}\n");
    Report r = lint();
    ASSERT_EQ(r.findings.size(), 1u) << formatReport(r, true);
    EXPECT_EQ(r.findings[0].rule, "D11");
    EXPECT_EQ(r.findings[0].file, "src/common/stats_schema.h");
    EXPECT_EQ(r.findings[0].line, 2);
    EXPECT_NE(r.findings[0].message.find("stale schema entry"),
              std::string::npos);
}

TEST_F(LintD11, RegisteredGetAndGuardedRowAreClean)
{
    // A dynamically-composed name (ternary between two literals)
    // still counts as a reference: the stale scan is a substring
    // match over literal-preserving strips.
    write("src/common/stats_schema.h",
          "DS_STAT(\"sched.kills\", \"events cancelled\")\n"
          "DS_STAT(\"sched.drops\", \"events dropped\")\n"
          "DS_STAT_ROW(\"array.scrub.pages\", \"when scrubbing\")\n");
    write("src/core/engine.cc",
          "void dump(StatGroup &stats, std::ostream &os, bool k,\n"
          "          long pages) {\n"
          "    stats.get(k ? \"sched.kills\" : \"sched.drops\")++;\n"
          "    if (pages)\n"
          "        os << \"array.scrub.pages = \" << pages;\n"
          "}\n");
    Report r = lint();
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
}

TEST_F(LintD11, StaleEntryCanBeSuppressedWithAReason)
{
    write("src/common/stats_schema.h",
          "DS_STAT(\"engine.queries\", \"queries issued\")\n"
          "// lint:allow(D11: reserved for the recovery PR)\n"
          "DS_STAT(\"repair.future\", \"not wired up yet\")\n");
    write("src/core/engine.cc",
          "void bump(StatGroup &stats) {\n"
          "    stats.get(\"engine.queries\") += 1;\n"
          "}\n");
    Report r = lint();
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    ASSERT_EQ(r.suppressions.size(), 1u);
    EXPECT_EQ(r.suppressions[0].rule, "D11");
    EXPECT_EQ(r.suppressions[0].reason,
              "reserved for the recovery PR");
}

// ---- Sim-state inventory round-trip -----------------------------

TEST_F(LintD11, InventoryJsonIsDeterministic)
{
    write("src/core/g.cc",
          "// lint:sim-state(per-node: cache survives across "
          "queries on purpose)\n"
          "int gCache = 1;\n");
    write("src/common/stats_schema.h", "\n");
    Report r = lint();
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    EXPECT_EQ(formatInventory(r),
              "{\n"
              "  \"version\": 1,\n"
              "  \"domains\": [\"per-channel\", \"per-node\", "
              "\"coordinator\", \"kernel\"],\n"
              "  \"entries\": [\n"
              "    {\n"
              "      \"file\": \"src/core/g.cc\",\n"
              "      \"line\": 2,\n"
              "      \"symbol\": \"gCache\",\n"
              "      \"domain\": \"per-node\",\n"
              "      \"reason\": \"cache survives across queries "
              "on purpose\"\n"
              "    }\n"
              "  ]\n"
              "}\n");
}

TEST(LintInventory, CheckedInInventoryMatchesTheTree)
{
    // The drift check CI enforces, from inside the test suite: the
    // committed sim_state_inventory.json must be byte-identical to
    // what the tree produces today, and must not be empty.
    Report r = lintTree(DEEPSTORE_LINT_REPO_ROOT, {});
    EXPECT_FALSE(r.simState.empty());
    fs::path p = fs::path(DEEPSTORE_LINT_REPO_ROOT) / "tools" /
                 "lint" / "sim_state_inventory.json";
    std::ifstream in(p, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << p;
    std::ostringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), formatInventory(r))
        << "inventory drift: regenerate with deepstore_lint "
           "--emit-inventory";
}

// ---- JSON report ------------------------------------------------

TEST(LintJson, ReportCarriesCountsFindingsAndInventory)
{
    Report r = lintFixture("d8_good.snippet");
    std::string json = formatJson(r);
    EXPECT_NE(json.find("\"findings\": 0"), std::string::npos);
    EXPECT_NE(json.find(
                  "\"D8\": {\"findings\": 0, \"suppressions\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("\"simState\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"simStateInventory\""),
              std::string::npos);
    EXPECT_NE(json.find("\"gTraceDepth\""), std::string::npos);
}

// ---- The real tree stays clean ----------------------------------

TEST(LintTree, RepositoryHasNoUnsuppressedFindings)
{
    // The same invariant the lint_tree ctest pins, but from inside
    // the test suite: zero findings, every suppression reasoned.
    Report r = lintTree(DEEPSTORE_LINT_REPO_ROOT, {});
    EXPECT_TRUE(r.clean()) << formatReport(r, true);
    for (const auto &s : r.suppressions)
        EXPECT_FALSE(s.reason.empty())
            << s.file << ":" << s.line;
}

} // namespace
