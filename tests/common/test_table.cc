/** @file Unit tests for the benchmark table printer. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/table.h"

namespace deepstore {
namespace {

TEST(TextTable, RejectsWrongArity)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TextTable, FormatsNumbers)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(17.7, 1), "17.7");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"App", "Speedup"});
    t.addRow({"TextQA", "17.74"});
    t.addRow({"ReId", "3.92"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    // Header, rule, two data rows.
    EXPECT_NE(s.find("App     Speedup"), std::string::npos);
    EXPECT_NE(s.find("TextQA  17.74"), std::string::npos);
    EXPECT_NE(s.find("ReId    3.92"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, TracksShape)
{
    TextTable t({"x", "y", "z"});
    EXPECT_EQ(t.columns(), 3u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

} // namespace
} // namespace deepstore
