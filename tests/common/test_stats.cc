/** @file Unit tests for the statistics package. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace deepstore {
namespace {

TEST(Stats, AccumulatesAndCounts)
{
    Stat s;
    s += 2.0;
    s += 3.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    EXPECT_EQ(s.samples(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.75);
}

TEST(Stats, MeanOfEmptyStatIsZero)
{
    Stat s;
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Stats, SetOverridesValue)
{
    Stat s;
    s += 10.0;
    s.set(3.0);
    EXPECT_DOUBLE_EQ(s.value(), 3.0);
    EXPECT_EQ(s.samples(), 1u);
}

TEST(Stats, ResetClears)
{
    Stat s;
    s += 7.0;
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(s.samples(), 0u);
}

TEST(StatGroup, GetCreatesOnDemand)
{
    StatGroup g("ssd");
    EXPECT_EQ(g.size(), 0u);
    g.get("pageReads") += 1.0;
    EXPECT_EQ(g.size(), 1u);
    EXPECT_NE(g.find("pageReads"), nullptr);
    EXPECT_EQ(g.find("missing"), nullptr);
}

TEST(StatGroup, ResetAllClearsEveryStat)
{
    StatGroup g;
    g.get("a") += 1.0;
    g.get("b") += 2.0;
    g.resetAll();
    EXPECT_DOUBLE_EQ(g.find("a")->value(), 0.0);
    EXPECT_DOUBLE_EQ(g.find("b")->value(), 0.0);
}

TEST(StatGroup, DumpIsSortedAndPrefixed)
{
    StatGroup g("flash");
    g.get("writes") += 2.0;
    g.get("reads") += 1.0;
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "flash.reads = 1\nflash.writes = 2\n");
}

} // namespace
} // namespace deepstore
