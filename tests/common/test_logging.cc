/** @file Unit tests for the logging/error-reporting substrate. */

#include <gtest/gtest.h>

#include "common/logging.h"

namespace deepstore {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("user misconfigured %d", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant broke"), PanicError);
}

TEST(Logging, FatalMessageIsFormatted)
{
    try {
        fatal("bad value %d for '%s'", 7, "channels");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value 7 for 'channels'");
    }
}

TEST(Logging, PanicIsNotAFatalError)
{
    // The two classes must stay distinguishable so tests can assert on
    // user-error vs simulator-bug separately.
    try {
        panic("bug");
        FAIL() << "panic did not throw";
    } catch (const FatalError &) {
        FAIL() << "panic threw FatalError";
    } catch (const PanicError &) {
        SUCCEED();
    }
}

TEST(Logging, AssertMacroPassesAndFails)
{
    EXPECT_NO_THROW(DS_ASSERT(1 + 1 == 2));
    EXPECT_THROW(DS_ASSERT(1 + 1 == 3), PanicError);
}

TEST(Logging, LogLevelRoundTrips)
{
    LogLevel old = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    EXPECT_NO_THROW(warn("suppressed %d", 1));
    EXPECT_NO_THROW(inform("suppressed %d", 2));
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
    setLogLevel(old);
}

} // namespace
} // namespace deepstore
