/** @file Unit tests for time/size unit conversions. */

#include <gtest/gtest.h>

#include "common/units.h"

namespace deepstore {
namespace {

TEST(Units, SecondsTicksRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSecond);
    EXPECT_EQ(secondsToTicks(53e-6), 53'000'000ull);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSecond), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(secondsToTicks(0.25)), 0.25);
}

TEST(Units, BinaryAndDecimalSizes)
{
    EXPECT_EQ(KiB, 1024u);
    EXPECT_EQ(MiB, 1024u * 1024u);
    EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
    EXPECT_DOUBLE_EQ(GB, 1e9);
    EXPECT_DOUBLE_EQ(MHz, 1e6);
}

TEST(Units, SubSecondResolution)
{
    // One picosecond tick resolves an 800 MHz cycle exactly.
    EXPECT_EQ(secondsToTicks(1.25e-9), 1250u);
}

TEST(Units, FloatWidth)
{
    EXPECT_EQ(kBytesPerFloat, 4u);
}

} // namespace
} // namespace deepstore
