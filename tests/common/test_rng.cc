/** @file Unit and property tests for the RNG and Zipf sampler. */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"

namespace deepstore {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(13);
    std::vector<int> hits(10, 0);
    for (int i = 0; i < 10000; ++i)
        ++hits[rng.uniformInt(10)];
    for (int h : hits)
        EXPECT_GT(h, 700); // each bucket ~1000 expected
}

TEST(Rng, UniformIntRejectsZero)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniformInt(0), PanicError);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    const int n = 200000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(19);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Zipf, AlphaZeroIsUniform)
{
    Rng rng(23);
    ZipfSampler z(100, 0.0);
    std::vector<int> hits(100, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++hits[z.sample(rng)];
    for (int h : hits)
        EXPECT_NEAR(h, n / 100, 300);
}

TEST(Zipf, HigherAlphaConcentratesOnHead)
{
    Rng rng(29);
    ZipfSampler z07(1000, 0.7), z12(1000, 1.2);
    const int n = 50000;
    int head07 = 0, head12 = 0;
    for (int i = 0; i < n; ++i) {
        head07 += z07.sample(rng) < 10;
        head12 += z12.sample(rng) < 10;
    }
    EXPECT_GT(head12, head07);
    EXPECT_GT(head07, n / 100); // far above the uniform 1%
}

TEST(Zipf, RanksAreOrderedByPopularity)
{
    Rng rng(31);
    ZipfSampler z(50, 0.9);
    std::vector<int> hits(50, 0);
    for (int i = 0; i < 200000; ++i)
        ++hits[z.sample(rng)];
    // Head rank strictly more popular than mid and tail ranks.
    EXPECT_GT(hits[0], hits[10]);
    EXPECT_GT(hits[10], hits[49]);
}

TEST(Zipf, RejectsEmptyDomain)
{
    EXPECT_THROW(ZipfSampler(0, 0.7), PanicError);
}

// Property sweep: samples always land in [0, n) for many (n, alpha).
class ZipfDomainTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{
};

TEST_P(ZipfDomainTest, SamplesStayInDomain)
{
    auto [n, alpha] = GetParam();
    Rng rng(n * 31 + static_cast<std::uint64_t>(alpha * 10));
    ZipfSampler z(n, alpha);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(z.sample(rng), n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfDomainTest,
    ::testing::Combine(::testing::Values(1, 2, 10, 1000, 100000),
                       ::testing::Values(0.0, 0.7, 0.8, 1.0, 1.5)));

} // namespace
} // namespace deepstore
