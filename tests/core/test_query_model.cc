/**
 * @file
 * Tests for the analytic query model — including the headline
 * reproduction checks against the paper's Table 4 (speedups and
 * energy-efficiency improvements vs the GPU+SSD baseline).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/query_model.h"
#include "host/baseline.h"

namespace deepstore::core {
namespace {

using workloads::AppId;

struct Table4Row
{
    AppId id;
    double ssdSpeedup;
    double channelSpeedup;
    double chipSpeedup; ///< <= 0 means unsupported
    double channelEff;  ///< energy-efficiency improvement
};

// Paper Table 4 / Fig. 8 values.
const Table4Row kTable4[] = {
    {AppId::ReId, 0.1, 3.9, -1.0, 17.1},
    {AppId::MIR, 0.3, 8.3, 1.0, 28.0},
    {AppId::ESTP, 0.6, 13.2, 1.9, 38.6},
    {AppId::TIR, 0.4, 10.7, 1.5, 35.6},
    {AppId::TextQA, 0.4, 17.7, 4.6, 78.6},
};

class Table4Test : public ::testing::TestWithParam<Table4Row>
{
  protected:
    ssd::FlashParams flash;
    DeepStoreModel ds{ssd::FlashParams{}};
    host::GpuSsdSystem gpu{host::voltaSpec()};

    double
    speedup(Level level, const workloads::AppInfo &app)
    {
        return gpu.perFeatureSeconds(app) /
               ds.evaluate(level, app).aggregateSeconds;
    }
};

TEST_P(Table4Test, ChannelSpeedupWithin25Percent)
{
    const Table4Row &row = GetParam();
    auto app = workloads::makeApp(row.id);
    // 30% absorbs the one outlier (TextQA: our channel-level compute
    // leg is ~25% above the paper's flash-bound figure; see
    // EXPERIMENTS.md). The other four apps land within a few percent.
    double s = speedup(Level::ChannelLevel, app);
    EXPECT_NEAR(s / row.channelSpeedup, 1.0, 0.30)
        << app.name << ": " << s << "x vs paper "
        << row.channelSpeedup << "x";
}

TEST_P(Table4Test, SsdLevelSpeedupWithin0p2Absolute)
{
    const Table4Row &row = GetParam();
    auto app = workloads::makeApp(row.id);
    double s = speedup(Level::SsdLevel, app);
    EXPECT_NEAR(s, row.ssdSpeedup, 0.2) << app.name;
    // The SSD-level accelerator is always slower than the GPU+SSD
    // baseline (§6.2).
    EXPECT_LT(s, 1.0) << app.name;
}

TEST_P(Table4Test, ChipLevelSpeedupWithinFactor2)
{
    const Table4Row &row = GetParam();
    auto app = workloads::makeApp(row.id);
    auto perf = ds.evaluate(Level::ChipLevel, app);
    if (row.chipSpeedup < 0) {
        EXPECT_FALSE(perf.supported) << app.name;
        return;
    }
    ASSERT_TRUE(perf.supported) << app.name;
    double s = speedup(Level::ChipLevel, app);
    EXPECT_GT(s / row.chipSpeedup, 0.5) << app.name;
    EXPECT_LT(s / row.chipSpeedup, 2.0) << app.name;
}

TEST_P(Table4Test, ChannelIsTheFastestLevel)
{
    // §6.2's headline conclusion: the channel level provides the best
    // trade-off and the best performance.
    const Table4Row &row = GetParam();
    auto app = workloads::makeApp(row.id);
    double ch = speedup(Level::ChannelLevel, app);
    EXPECT_GT(ch, speedup(Level::SsdLevel, app)) << app.name;
    if (row.chipSpeedup > 0) {
        EXPECT_GT(ch, speedup(Level::ChipLevel, app)) << app.name;
    }
    EXPECT_GT(ch, 1.0) << app.name; // and it beats the GPU
}

TEST_P(Table4Test, ChannelEnergyEfficiencyWithinFactor2Point5)
{
    const Table4Row &row = GetParam();
    auto app = workloads::makeApp(row.id);
    auto perf = ds.evaluate(Level::ChannelLevel, app);
    double eff = speedup(Level::ChannelLevel, app) * gpu.powerW() /
                 perf.activePowerW;
    EXPECT_GT(eff / row.channelEff, 1.0 / 2.5) << app.name;
    EXPECT_LT(eff / row.channelEff, 2.5) << app.name;
    // Energy-efficiency gains are larger than raw speedups (Fig 11).
    EXPECT_GT(eff, speedup(Level::ChannelLevel, app)) << app.name;
}

INSTANTIATE_TEST_SUITE_P(Table4, Table4Test,
                         ::testing::ValuesIn(kTable4),
                         [](const auto &info) {
                             return std::string(
                                 workloads::toString(info.param.id));
                         });

TEST(QueryModel, ChipCannotRunConvModels)
{
    DeepStoreModel ds{ssd::FlashParams{}};
    auto reid = workloads::makeApp(AppId::ReId);
    auto perf = ds.evaluate(Level::ChipLevel, reid);
    EXPECT_FALSE(perf.supported);
    EXPECT_THROW(ds.scanSeconds(Level::ChipLevel, reid, 100),
                 FatalError);
}

TEST(QueryModel, ScanTimeLinearInFeatures)
{
    DeepStoreModel ds{ssd::FlashParams{}};
    auto app = workloads::makeApp(AppId::TIR);
    double t1 = ds.scanSeconds(Level::ChannelLevel, app, 1'000'000);
    double t2 = ds.scanSeconds(Level::ChannelLevel, app, 2'000'000);
    EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(QueryModel, PerAccelIsMaxOfLegs)
{
    DeepStoreModel ds{ssd::FlashParams{}};
    for (const auto &app : workloads::allApps()) {
        for (Level level :
             {Level::SsdLevel, Level::ChannelLevel, Level::ChipLevel}) {
            auto p = ds.evaluate(level, app);
            if (!p.supported)
                continue;
            double legs_max =
                std::max({p.computeSeconds, p.flashSeconds,
                          p.weightStreamSeconds});
            // perAccel = max(legs) + the FLASH_DFV refill exposure,
            // which is bounded by one array-read latency per page.
            EXPECT_GE(p.perAccelSeconds, legs_max);
            EXPECT_LE(p.perAccelSeconds,
                      legs_max +
                          ssd::FlashParams{}.readLatency * 3);
            EXPECT_NEAR(p.aggregateSeconds * p.placement.numAccelerators,
                        p.perAccelSeconds, 1e-12);
        }
    }
}

TEST(QueryModel, EnergyBreakdownShapesMatchFig12)
{
    DeepStoreModel ds{ssd::FlashParams{}};
    // Channel level: dominated by memory accesses (§6.4).
    for (AppId id : {AppId::MIR, AppId::ESTP, AppId::TIR}) {
        auto app = workloads::makeApp(id);
        auto p = ds.evaluate(Level::ChannelLevel, app);
        EXPECT_GT(p.energyPerFeature.memoryJ,
                  p.energyPerFeature.computeJ)
            << app.name;
        EXPECT_GT(p.energyPerFeature.memoryJ,
                  p.energyPerFeature.flashJ)
            << app.name;
        // Chip level: flash is the heaviest cost (§6.4). ESTP is the
        // exception in our model — its 16 KB features already read a
        // full page per feature, but its 9.5 MB weight stream through
        // the scratchpad outweighs that single page (EXPERIMENTS.md).
        auto c = ds.evaluate(Level::ChipLevel, app);
        EXPECT_GT(c.energyPerFeature.flashJ,
                  c.energyPerFeature.computeJ)
            << app.name;
        if (id != AppId::ESTP) {
            EXPECT_GT(c.energyPerFeature.flashJ,
                      c.energyPerFeature.memoryJ +
                          c.energyPerFeature.computeJ)
                << app.name;
        }
    }
}

TEST(QueryModel, ChannelScalingWithChannelCount)
{
    // Fig. 10a: channel-level performance scales linearly with the
    // number of channels; SSD-level does not change.
    auto app = workloads::makeApp(AppId::MIR);
    ssd::FlashParams f8 = ssd::FlashParams{};
    f8.channels = 8;
    ssd::FlashParams f64 = ssd::FlashParams{};
    f64.channels = 64;
    DeepStoreModel m8(f8), m64(f64);
    double ch8 = m8.evaluate(Level::ChannelLevel, app).aggregateSeconds;
    double ch64 =
        m64.evaluate(Level::ChannelLevel, app).aggregateSeconds;
    EXPECT_NEAR(ch8 / ch64, 8.0, 0.01);
    double ssd8 = m8.evaluate(Level::SsdLevel, app).aggregateSeconds;
    double ssd64 = m64.evaluate(Level::SsdLevel, app).aggregateSeconds;
    EXPECT_NEAR(ssd8 / ssd64, 1.0, 0.05);
}

TEST(QueryModel, FlashLatencyInsensitivity)
{
    // Fig. 9: quadrupling the flash read latency costs the channel
    // level at most ~10% (it is compute/bus bound, not
    // latency bound).
    auto app = workloads::makeApp(AppId::MIR);
    ssd::FlashParams slow = ssd::FlashParams{};
    slow.readLatency = 212e-6;
    DeepStoreModel base{ssd::FlashParams{}}, slowed{slow};
    double t0 =
        base.evaluate(Level::ChannelLevel, app).aggregateSeconds;
    double t1 =
        slowed.evaluate(Level::ChannelLevel, app).aggregateSeconds;
    EXPECT_LT(t1 / t0, 1.12);
}

TEST(QueryModel, QcnLookupIsCheaperThanScan)
{
    // §6.5: scanning a 1K-entry query cache costs far less than
    // scanning the feature database with the SCN.
    auto app = workloads::makeApp(AppId::TIR);
    DeepStoreModel ds{ssd::FlashParams{}};
    auto qcn = ds.evaluateModel(Level::ChannelLevel, app.qcn,
                                app.qcn.featureBytes());
    double lookup =
        qcn.computeSeconds * 1000.0 /
        static_cast<double>(qcn.placement.numAccelerators);
    double scan = ds.scanSeconds(Level::ChannelLevel, app, 1'000'000);
    EXPECT_LT(lookup, scan / 50.0);
}

} // namespace
} // namespace deepstore::core
