/**
 * @file
 * Analytic parity for the sharded array (ctest labels `array` +
 * `parity`): a lone steady-state query scattered across a
 * homogeneous 4-node array must match `arrayQuerySeconds` — the
 * closed-form mirror of the coordinator's scatter/scan/merge event
 * path — within the same 2% band the single-SSD parity suite pins.
 *
 * The per-node scan term reuses the per-geometry DeepStoreModel
 * (each node runs its stripe as an independent steady-state scan);
 * the array term adds the FCFS scatter staggering on the host fabric
 * and the serialized merge legs. Nothing array-specific is fitted:
 * if the live path's fabric accounting drifted from the analytic
 * staggering, this test moves.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"
#include "core/query_model.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

TEST(ArrayAnalyticParity, FourNodeScatterScanMergeWithinTwoPercent)
{
    // 8-channel nodes, full-page features, 2048 pages per node ->
    // 256 pages per channel unit: comfortably steady-state for the
    // closed-form per-node scan term.
    const std::int64_t dim = 4096; // 16 KiB: one feature per page
    const std::uint64_t features = 8192;
    const std::size_t k = 5;

    ssd::FlashParams node_flash;
    node_flash.channels = 8;
    DeepStoreConfig cfg;
    cfg.array.nodes = {node_flash, node_flash, node_flash,
                       node_flash};
    DeepStore ds(cfg);
    auto src = randomDb(dim, features, 3);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));

    DeepStoreModel node_model(node_flash);
    LevelPerf perf = node_model.evaluateModel(
        Level::ChannelLevel, dotModel(dim).model,
        ds.databaseInfo(db).featureBytes);
    ASSERT_TRUE(perf.supported);

    // 8192 full-page features stripe as exactly 2048 per node.
    const double node_scan =
        perf.aggregateSeconds * static_cast<double>(features / 4);
    const std::uint64_t scatter_bytes =
        ds.databaseInfo(db).featureBytes + 64;
    const std::uint64_t merge_bytes = k * sizeof(ScoredResult);
    const double expected = arrayQuerySeconds(
        {node_scan, node_scan, node_scan, node_scan}, scatter_bytes,
        merge_bytes, cfg.array.hostFabricBandwidth);

    std::uint64_t qid = ds.querySync(src->featureAt(1), k, model, db,
                                     0, 0, Level::ChannelLevel);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_EQ(res.outcome, QueryOutcome::Success);
    EXPECT_EQ(res.nodesParticipating, 4u);
    EXPECT_GT(res.interNodeBytes, 0u);
    EXPECT_NEAR(res.latencySeconds, expected, expected * 0.02);
}

TEST(ArrayAnalyticParity, OneNodeArrayCollapsesToPlainScanTerm)
{
    // With a single node the array term must vanish: no scatter
    // staggering, no merge legs — arrayQuerySeconds([s]) == s, and
    // the live path agrees within the usual band.
    const std::int64_t dim = 4096;
    const std::uint64_t features = 2048;

    ssd::FlashParams node_flash;
    node_flash.channels = 8;
    DeepStoreConfig cfg;
    cfg.flash = node_flash;
    cfg.array.nodes = {node_flash};
    DeepStore ds(cfg);
    auto src = randomDb(dim, features, 5);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));

    DeepStoreModel node_model(node_flash);
    LevelPerf perf = node_model.evaluateModel(
        Level::ChannelLevel, dotModel(dim).model,
        ds.databaseInfo(db).featureBytes);
    ASSERT_TRUE(perf.supported);
    const double scan =
        perf.aggregateSeconds * static_cast<double>(features);
    EXPECT_DOUBLE_EQ(
        arrayQuerySeconds({scan}, 16448, 80,
                          cfg.array.hostFabricBandwidth),
        scan);

    std::uint64_t qid = ds.querySync(src->featureAt(1), 5, model, db,
                                     0, 0, Level::ChannelLevel);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_NEAR(res.latencySeconds, scan, scan * 0.02);
    EXPECT_DOUBLE_EQ(res.mergeSeconds, 0.0);
    EXPECT_EQ(res.interNodeBytes, 0u);
}

} // namespace
} // namespace deepstore::core
