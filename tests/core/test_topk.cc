/** @file Unit and property tests for the hardware-style top-K queue. */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/topk.h"

namespace deepstore::core {
namespace {

TEST(TopK, RejectsZeroCapacity)
{
    EXPECT_THROW(TopK{0}, FatalError);
}

TEST(TopK, KeepsBestKSorted)
{
    TopK t(3);
    for (float s : {0.1f, 0.9f, 0.5f, 0.7f, 0.2f})
        t.insert({static_cast<std::uint64_t>(s * 10), 0, s});
    auto r = t.results();
    ASSERT_EQ(r.size(), 3u);
    EXPECT_FLOAT_EQ(r[0].score, 0.9f);
    EXPECT_FLOAT_EQ(r[1].score, 0.7f);
    EXPECT_FLOAT_EQ(r[2].score, 0.5f);
    EXPECT_FLOAT_EQ(t.kthScore(), 0.5f);
}

TEST(TopK, PartialFill)
{
    TopK t(10);
    t.insert({1, 0, 0.5f});
    t.insert({2, 0, 0.8f});
    EXPECT_EQ(t.size(), 2u);
    auto r = t.results();
    EXPECT_EQ(r[0].featureId, 2u);
    EXPECT_EQ(r[1].featureId, 1u);
}

TEST(TopK, EmptyKthScoreIsSentinel)
{
    TopK t(4);
    EXPECT_FLOAT_EQ(t.kthScore(), -1.0f);
}

TEST(TopK, RejectsBelowThresholdWithoutShifts)
{
    TopK t(2);
    t.insert({1, 0, 0.9f});
    t.insert({2, 0, 0.8f});
    std::uint64_t shifts = t.shiftCount();
    t.insert({3, 0, 0.1f}); // cannot enter
    EXPECT_EQ(t.shiftCount(), shifts);
    EXPECT_EQ(t.results()[1].featureId, 2u);
}

TEST(TopK, StableOnTies)
{
    TopK t(3);
    t.insert({1, 0, 0.5f});
    t.insert({2, 0, 0.5f});
    t.insert({3, 0, 0.5f});
    auto r = t.results();
    EXPECT_EQ(r[0].featureId, 1u);
    EXPECT_EQ(r[1].featureId, 2u);
    EXPECT_EQ(r[2].featureId, 3u);
}

TEST(TopK, MergeEqualsCombinedStream)
{
    TopK a(5), b(5), combined(5);
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        ScoredResult r{static_cast<std::uint64_t>(i), 0,
                       static_cast<float>(rng.uniform())};
        (i % 2 ? a : b).insert(r);
        combined.insert(r);
    }
    a.merge(b);
    EXPECT_EQ(a.results(), combined.results());
}

TEST(TopK, ClearResets)
{
    TopK t(2);
    t.insert({1, 0, 0.5f});
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.shiftCount(), 0u);
    t.insert({2, 0, 0.25f});
    EXPECT_EQ(t.results()[0].featureId, 2u);
}

TEST(TopK, ObjectIdTravelsWithEntry)
{
    TopK t(2);
    t.insert({1, 4242, 0.5f});
    EXPECT_EQ(t.results()[0].objectId, 4242u);
}

/** Property: matches a sort-based oracle for random streams. */
class TopKOracle
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(TopKOracle, MatchesSortOracle)
{
    auto [k, n, seed] = GetParam();
    TopK t(static_cast<std::size_t>(k));
    std::vector<ScoredResult> all;
    Rng rng(static_cast<std::uint64_t>(seed));
    for (int i = 0; i < n; ++i) {
        ScoredResult r{static_cast<std::uint64_t>(i),
                       static_cast<std::uint64_t>(i) * 3,
                       static_cast<float>(rng.uniform())};
        t.insert(r);
        all.push_back(r);
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const ScoredResult &a, const ScoredResult &b) {
                         return a.score > b.score;
                     });
    all.resize(std::min<std::size_t>(all.size(),
                                     static_cast<std::size_t>(k)));
    EXPECT_EQ(t.results(), all);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKOracle,
    ::testing::Combine(::testing::Values(1, 5, 10, 100),
                       ::testing::Values(0, 1, 50, 2000),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace deepstore::core
