/** @file Tests for the similarity-based Query Cache (Algorithm 1). */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/query_cache.h"
#include "workloads/query_universe.h"

namespace deepstore::core {
namespace {

/** Exact-match score function: 1 for identical ids, 0 otherwise. */
double
exactScore(std::uint64_t a, std::uint64_t b)
{
    return a == b ? 1.0 : 0.0;
}

QueryCacheConfig
config(std::size_t cap, double thr, double acc = 1.0)
{
    QueryCacheConfig c;
    c.capacity = cap;
    c.threshold = thr;
    c.qcnAccuracy = acc;
    return c;
}

TEST(QueryCache, RejectsBadConfig)
{
    EXPECT_THROW(QueryCache(config(0, 0.1), exactScore), FatalError);
    EXPECT_THROW(QueryCache(config(4, 1.5), exactScore), FatalError);
    EXPECT_THROW(QueryCache(config(4, -0.1), exactScore), FatalError);
    EXPECT_THROW(QueryCache(config(4, 0.1, 0.0), exactScore),
                 FatalError);
    EXPECT_THROW(QueryCache(config(4, 0.1), nullptr), FatalError);
}

TEST(QueryCache, MissOnEmptyThenHitAfterInsert)
{
    QueryCache qc(config(4, 0.0), exactScore);
    auto miss = qc.lookup(7);
    EXPECT_FALSE(miss.hit);
    qc.insert(7, {{1, 10, 0.9f}});
    auto hit = qc.lookup(7);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.matchedQuery, 7u);
    ASSERT_EQ(hit.cachedResults.size(), 1u);
    EXPECT_EQ(hit.cachedResults[0].featureId, 1u);
    EXPECT_EQ(qc.hits(), 1u);
    EXPECT_EQ(qc.misses(), 1u);
    EXPECT_DOUBLE_EQ(qc.missRate(), 0.5);
}

TEST(QueryCache, ScansEveryEntry)
{
    QueryCache qc(config(8, 0.0), exactScore);
    for (std::uint64_t q = 0; q < 5; ++q)
        qc.insert(q, {});
    auto out = qc.lookup(2);
    EXPECT_EQ(out.entriesScanned, 5u);
}

TEST(QueryCache, AccuracyGatesHits)
{
    // With QCN accuracy 0.9, even an exact match scores 0.9; a 5%
    // threshold rejects it while a 15% threshold accepts it.
    QueryCache strict(config(4, 0.05, 0.9), exactScore);
    strict.insert(1, {});
    EXPECT_FALSE(strict.lookup(1).hit);

    QueryCache loose(config(4, 0.15, 0.9), exactScore);
    loose.insert(1, {});
    EXPECT_TRUE(loose.lookup(1).hit);
}

TEST(QueryCache, SemanticSimilarityHits)
{
    // Same-topic queries hit under a relaxed threshold even though
    // the ids differ (the paper's "brown dog" example).
    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 500;
    ucfg.numTopics = 10;
    workloads::QueryUniverse u(ucfg);
    QueryCache qc(config(64, 0.15, 0.97),
                  [&u](std::uint64_t a, std::uint64_t b) {
                      return u.qcnScore(a, b);
                  });
    // Find two distinct same-topic queries.
    std::uint64_t a = 0, b = 1;
    bool found = false;
    for (a = 0; a < 100 && !found; ++a) {
        for (b = a + 1; b < 200; ++b) {
            if (u.topicOf(a) == u.topicOf(b)) {
                found = true;
                break;
            }
        }
        if (found)
            break;
    }
    ASSERT_TRUE(found);
    qc.insert(a, {{42, 0, 0.8f}});
    auto out = qc.lookup(b);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(out.matchedQuery, a);
}

TEST(QueryCache, LruEvictsOldest)
{
    QueryCache qc(config(2, 0.0), exactScore);
    qc.insert(1, {});
    qc.insert(2, {});
    qc.insert(3, {}); // evicts 1
    EXPECT_EQ(qc.size(), 2u);
    EXPECT_FALSE(qc.lookup(1).hit);
    EXPECT_TRUE(qc.lookup(2).hit);
    EXPECT_TRUE(qc.lookup(3).hit);
}

TEST(QueryCache, HitPromotesEntry)
{
    QueryCache qc(config(2, 0.0), exactScore);
    qc.insert(1, {});
    qc.insert(2, {});
    EXPECT_TRUE(qc.lookup(1).hit); // promote 1 to MRU
    qc.insert(3, {});              // evicts 2, not 1
    EXPECT_TRUE(qc.lookup(1).hit);
    EXPECT_FALSE(qc.lookup(2).hit);
}

TEST(QueryCache, ReinsertRefreshesWithoutGrowth)
{
    QueryCache qc(config(2, 0.0), exactScore);
    qc.insert(1, {{5, 0, 0.1f}});
    qc.insert(1, {{6, 0, 0.2f}});
    EXPECT_EQ(qc.size(), 1u);
    auto out = qc.lookup(1);
    ASSERT_TRUE(out.hit);
    EXPECT_EQ(out.cachedResults[0].featureId, 6u);
}

TEST(QueryCache, InvalidateAllEmptiesCache)
{
    QueryCache qc(config(4, 0.0), exactScore);
    qc.insert(1, {});
    qc.invalidateAll();
    EXPECT_EQ(qc.size(), 0u);
    EXPECT_FALSE(qc.lookup(1).hit);
}

TEST(QueryCache, ThresholdCanBeRetuned)
{
    QueryCache qc(config(4, 0.0, 0.9), exactScore);
    qc.insert(1, {});
    EXPECT_FALSE(qc.lookup(1).hit);
    qc.setThreshold(0.2); // deployment-time tuning (§4.6)
    EXPECT_TRUE(qc.lookup(1).hit);
    EXPECT_THROW(qc.setThreshold(1.0), FatalError);
}

TEST(QueryCache, BestOfMultipleCandidatesWins)
{
    // Algorithm 1 keeps the max-scoring entry.
    auto scores = [](std::uint64_t a, std::uint64_t b) {
        if (a == 100 && b == 2)
            return 0.99;
        if (a == 100 && b == 1)
            return 0.95;
        return 0.1;
    };
    QueryCache qc(config(4, 0.1, 1.0), scores);
    qc.insert(1, {{11, 0, 0.0f}});
    qc.insert(2, {{22, 0, 0.0f}});
    auto out = qc.lookup(100);
    ASSERT_TRUE(out.hit);
    EXPECT_EQ(out.matchedQuery, 2u);
    EXPECT_NEAR(out.bestScore, 0.99, 1e-12);
}

TEST(QueryCache, ZipfTraceHasLowerMissRateThanUniform)
{
    // The Fig. 13 mechanism in miniature.
    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 2000;
    ucfg.numTopics = 400;
    workloads::QueryUniverse u(ucfg);
    auto score = [&u](std::uint64_t a, std::uint64_t b) {
        return u.qcnScore(a, b);
    };
    auto run = [&](workloads::Popularity pop) {
        QueryCache qc(config(100, 0.10, 0.97), score);
        auto trace = u.trace(3000, pop, 0.9, 77);
        for (auto q : trace) {
            auto out = qc.lookup(q);
            if (!out.hit)
                qc.insert(q, {});
        }
        return qc.missRate();
    };
    double uniform = run(workloads::Popularity::Uniform);
    double zipf = run(workloads::Popularity::Zipf);
    EXPECT_LT(zipf, uniform);
}

} // namespace
} // namespace deepstore::core
