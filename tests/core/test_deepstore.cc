/** @file Integration tests for the DeepStore runtime and Table 2 API. */

#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"
#include "workloads/apps.h"

namespace deepstore::core {
namespace {

/** A pure dot-product SCN: top-K by score == top-K by inner product,
 *  so results can be verified against brute force. */
nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

DeepStoreConfig
smallConfig()
{
    DeepStoreConfig cfg;
    cfg.flash = ssd::FlashParams{};
    return cfg;
}

TEST(DeepStoreApi, WriteDbAssignsMetadata)
{
    DeepStore ds(smallConfig());
    std::uint64_t db = ds.writeDB(randomDb(64, 100, 1));
    const DbMetadata &md = ds.databaseInfo(db);
    EXPECT_EQ(md.numFeatures, 100u);
    EXPECT_EQ(md.featureBytes, 256u);
    EXPECT_GT(ds.simulatedSeconds(), 0.0);
}

TEST(DeepStoreApi, WriteDbRejectsEmpty)
{
    DeepStore ds(smallConfig());
    EXPECT_THROW(ds.writeDB(nullptr), FatalError);
    EXPECT_THROW(
        ds.writeDB(std::make_shared<VectorFeatureSource>(
            std::vector<std::vector<float>>{}, 4)),
        FatalError);
}

TEST(DeepStoreApi, ReadDbRoundTrips)
{
    DeepStore ds(smallConfig());
    std::vector<std::vector<float>> feats{
        {1.0f, 2.0f}, {3.0f, 4.0f}, {5.0f, 6.0f}};
    std::uint64_t db = ds.writeDB(
        std::make_shared<VectorFeatureSource>(feats, 2));
    auto got = ds.readDB(db, 1, 2);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], feats[1]);
    EXPECT_EQ(got[1], feats[2]);
    EXPECT_THROW(ds.readDB(db, 2, 5), FatalError);
}

TEST(DeepStoreApi, QueryFindsTrueTopK)
{
    DeepStore ds(smallConfig());
    const std::int64_t dim = 32;
    auto db_src = randomDb(dim, 200, 3);
    std::uint64_t db = ds.writeDB(db_src);
    std::uint64_t model = ds.loadModel(dotModel(dim));

    std::vector<float> qfv = db_src->featureAt(17);
    std::uint64_t qid = ds.querySync(qfv, 5, model, db, 0, 0);
    const QueryResult &res = ds.getResults(qid);
    ASSERT_EQ(res.topK.size(), 5u);
    EXPECT_EQ(res.featuresScanned, 200u);
    EXPECT_GT(res.latencySeconds, 0.0);

    // Brute-force oracle on inner products.
    std::vector<std::pair<double, std::uint64_t>> oracle;
    for (std::uint64_t i = 0; i < 200; ++i) {
        auto f = db_src->featureAt(i);
        double dot = 0;
        for (std::int64_t j = 0; j < dim; ++j)
            dot += qfv[static_cast<std::size_t>(j)] *
                   f[static_cast<std::size_t>(j)];
        oracle.emplace_back(-dot, i);
    }
    std::sort(oracle.begin(), oracle.end());
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(res.topK[i].featureId, oracle[i].second) << i;
}

TEST(DeepStoreApi, QueryValidatesArguments)
{
    DeepStore ds(smallConfig());
    std::uint64_t db = ds.writeDB(randomDb(16, 10, 5));
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::vector<float> qfv(16, 0.5f);
    EXPECT_THROW(ds.query(qfv, 3, 999, db, 0, 0), FatalError);
    EXPECT_THROW(ds.query(qfv, 3, model, 999, 0, 0), FatalError);
    EXPECT_THROW(ds.query(qfv, 3, model, db, 5, 3), FatalError);
    EXPECT_THROW(ds.query(qfv, 3, model, db, 0, 11), FatalError);
    std::vector<float> wrong(8, 0.5f);
    EXPECT_THROW(ds.query(wrong, 3, model, db, 0, 0), FatalError);
    EXPECT_THROW(ds.getResults(12345), FatalError);
}

TEST(DeepStoreApi, SubRangeQueriesScanLess)
{
    DeepStore ds(smallConfig());
    auto src = randomDb(16, 100, 7);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::vector<float> qfv = src->featureAt(0);
    std::uint64_t full = ds.querySync(qfv, 3, model, db, 0, 0);
    std::uint64_t half = ds.querySync(qfv, 3, model, db, 0, 50);
    EXPECT_EQ(ds.getResults(full).featuresScanned, 100u);
    EXPECT_EQ(ds.getResults(half).featuresScanned, 50u);
    EXPECT_GT(ds.getResults(full).latencySeconds,
              ds.getResults(half).latencySeconds);
    // Sub-range results only contain ids below 50.
    for (const auto &r : ds.getResults(half).topK)
        EXPECT_LT(r.featureId, 50u);
}

TEST(DeepStoreApi, LevelsDifferInLatencyNotResults)
{
    DeepStore ds(smallConfig());
    auto src = randomDb(16, 80, 11);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::vector<float> qfv = src->featureAt(3);
    auto ch = ds.getResults(
        ds.querySync(qfv, 4, model, db, 0, 0, Level::ChannelLevel));
    auto ssd = ds.getResults(
        ds.querySync(qfv, 4, model, db, 0, 0, Level::SsdLevel));
    EXPECT_EQ(ch.topK, ssd.topK);
    EXPECT_LT(ch.latencySeconds, ssd.latencySeconds);
}

TEST(DeepStoreApi, AppendDbGrowsAndInvalidatesQc)
{
    DeepStore ds(smallConfig());
    std::vector<std::vector<float>> first{{1.0f, 0.0f}, {0.0f, 1.0f}};
    std::uint64_t db = ds.writeDB(
        std::make_shared<VectorFeatureSource>(first, 2));
    std::vector<std::vector<float>> more{{2.0f, 2.0f}};
    ds.appendDB(db, std::make_shared<VectorFeatureSource>(more, 2));
    EXPECT_EQ(ds.databaseInfo(db).numFeatures, 3u);
    auto got = ds.readDB(db, 2, 1);
    EXPECT_EQ(got[0], more[0]);
    // Dim mismatch rejected.
    std::vector<std::vector<float>> bad{{1.0f}};
    EXPECT_THROW(
        ds.appendDB(db, std::make_shared<VectorFeatureSource>(bad, 1)),
        FatalError);
}

TEST(DeepStoreApi, QueryCacheHitReturnsCachedTopK)
{
    DeepStore ds(smallConfig());
    const std::int64_t dim = 32;
    auto src = randomDb(dim, 150, 13);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t scn = ds.loadModel(dotModel(dim));
    std::uint64_t qcn = ds.loadModel(dotModel(dim));
    ds.setQC(qcn, /*threshold=*/0.25, /*accuracy=*/0.99,
             /*capacity=*/16);

    std::vector<float> qfv = src->featureAt(42);
    std::uint64_t first = ds.querySync(qfv, 5, scn, db, 0, 0);
    const auto &cold = ds.getResults(first);
    EXPECT_FALSE(cold.cacheHit);

    // The identical query again: must hit and return the same top-K
    // while scanning only the cached entries.
    std::uint64_t second = ds.querySync(qfv, 5, scn, db, 0, 0);
    const auto &warm = ds.getResults(second);
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.featuresScanned, 5u);
    ASSERT_EQ(warm.topK.size(), cold.topK.size());
    for (std::size_t i = 0; i < warm.topK.size(); ++i)
        EXPECT_EQ(warm.topK[i].featureId, cold.topK[i].featureId);
    EXPECT_LT(warm.latencySeconds, cold.latencySeconds);
    EXPECT_EQ(ds.queryCache()->hits(), 1u);
}

TEST(DeepStoreApi, ObjectIdsAreValidPpns)
{
    DeepStore ds(smallConfig());
    auto src = randomDb(16, 50, 17);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    auto res =
        ds.getResults(ds.querySync(src->featureAt(0), 3, model, db, 0, 0));
    const DbMetadata &md = ds.databaseInfo(db);
    for (const auto &r : res.topK) {
        EXPECT_EQ(r.objectId,
                  md.featurePpn(r.featureId,
                                ds.model().flash().pageBytes));
    }
}

TEST(DeepStoreApi, LoadModelChargesUploadTime)
{
    DeepStore ds(smallConfig());
    double before = ds.simulatedSeconds();
    ds.loadModel(dotModel(64));
    // A dot model has no weights, so upload time is ~0; a TIR SCN
    // uploads ~1.6 MB.
    auto tir = workloads::makeApp(workloads::AppId::TIR);
    auto w = nn::ModelWeights::random(tir.scn, 3);
    ds.loadModel(nn::ModelBundle{tir.scn, w});
    EXPECT_GT(ds.simulatedSeconds(), before);
}

TEST(DeepStoreApi, DumpStatsReportsEngineAndSsdCounters)
{
    DeepStore ds(smallConfig());
    auto src = randomDb(16, 30, 21);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t scn = ds.loadModel(dotModel(16));
    std::uint64_t qcn = ds.loadModel(dotModel(16));
    ds.setQC(qcn, 0.2, 0.99, 4);
    ds.getResults(ds.querySync(src->featureAt(1), 2, scn, db, 0, 0));
    std::ostringstream os;
    ds.dumpStats(os);
    std::string s = os.str();
    EXPECT_NE(s.find("engine.databases = 1"), std::string::npos);
    EXPECT_NE(s.find("engine.models = 2"), std::string::npos);
    EXPECT_NE(s.find("engine.queries = 1"), std::string::npos);
    EXPECT_NE(s.find("engine.qc.misses = 1"), std::string::npos);
    EXPECT_NE(s.find("ssd.flash.pagePrograms"), std::string::npos);
}

TEST(DeepStoreApi, SerializedModelRoundTripsThroughApi)
{
    DeepStore ds(smallConfig());
    auto bundle = dotModel(16);
    auto blob = nn::serializeModel(bundle.model, bundle.weights);
    std::uint64_t model = ds.loadModel(blob);
    auto src = randomDb(16, 20, 19);
    std::uint64_t db = ds.writeDB(src);
    EXPECT_NO_THROW(
        ds.getResults(ds.querySync(src->featureAt(1), 2, model, db, 0, 0)));
}

} // namespace
} // namespace deepstore::core
