/**
 * @file
 * Tests for the asynchronous query scheduler: multi-query in-flight
 * execution, latency parity with the analytic model, event-clock time
 * accounting, and cross-run determinism.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

TEST(AsyncQuery, SubmitReturnsImmediatelyAndDrainCompletes)
{
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(32, 120, 1);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));

    double t0 = ds.simulatedSeconds();
    std::uint64_t qid =
        ds.query(src->featureAt(7), 4, model, db, 0, 0);
    // No simulated time passed during submission.
    EXPECT_EQ(ds.simulatedSeconds(), t0);
    EXPECT_EQ(ds.inFlight(), 1u);
    auto st = ds.poll(qid);
    ASSERT_TRUE(st.has_value());
    EXPECT_NE(*st, QueryState::Complete);

    ds.drain();
    EXPECT_EQ(ds.inFlight(), 0u);
    EXPECT_EQ(ds.poll(qid), QueryState::Complete);
    EXPECT_EQ(ds.getResults(qid).topK.size(), 4u);
    EXPECT_GT(ds.simulatedSeconds(), t0);
}

TEST(AsyncQuery, GetResultsWhileInFlightIsFatal)
{
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(16, 60, 2);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::uint64_t qid =
        ds.query(src->featureAt(0), 3, model, db, 0, 0);
    EXPECT_THROW(ds.getResults(qid), FatalError);
    ds.waitFor(qid);
    EXPECT_NO_THROW(ds.getResults(qid));
    // Unknown ids still fatal after the refactor.
    EXPECT_THROW(ds.getResults(777), FatalError);
    EXPECT_FALSE(ds.poll(777).has_value());
}

TEST(AsyncQuery, OnCompleteFiresOnceInOrder)
{
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(16, 40, 4);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::uint64_t qid =
        ds.query(src->featureAt(2), 3, model, db, 0, 0);

    std::vector<int> calls;
    ds.onComplete(qid, [&](const QueryResult &r) {
        EXPECT_EQ(r.queryId, qid);
        calls.push_back(1);
    });
    ds.onComplete(qid, [&](const QueryResult &) {
        calls.push_back(2);
    });
    ds.drain();
    EXPECT_EQ(calls, (std::vector<int>{1, 2}));
    // Registering after completion fires immediately.
    ds.onComplete(qid, [&](const QueryResult &) {
        calls.push_back(3);
    });
    EXPECT_EQ(calls, (std::vector<int>{1, 2, 3}));
}

TEST(AsyncQuery, WaitForAdvancesOnlyToThatQuery)
{
    // Large enough that channel striping parallelizes the scan: 64
    // pages -> 2 per channel, so the SSD-level unit computes 32x the
    // features of any channel unit.
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(32, 8192, 5);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));

    // Slow SSD-level scan first, fast channel-level scan second.
    std::uint64_t slow = ds.query(src->featureAt(0), 3, model, db, 0,
                                  0, Level::SsdLevel);
    std::uint64_t fast = ds.query(src->featureAt(1), 3, model, db, 0,
                                  0, Level::ChannelLevel);
    ds.waitFor(fast);
    EXPECT_EQ(ds.poll(fast), QueryState::Complete);
    EXPECT_NE(ds.poll(slow), QueryState::Complete);
    EXPECT_EQ(ds.inFlight(), 1u);
    ds.drain();
    EXPECT_GT(ds.getResults(slow).latencySeconds,
              ds.getResults(fast).latencySeconds);
}

TEST(AsyncQuery, ConcurrentSameDbQueriesInterleave)
{
    // N concurrent channel-level scans of one database share the
    // flash stream, so the makespan is far below N x single-query
    // latency (this is where multi-query throughput comes from).
    const std::int64_t dim = 32;
    const std::uint64_t features = 300;
    const int n = 8;

    DeepStore base{DeepStoreConfig{}};
    auto src = randomDb(dim, features, 6);
    std::uint64_t db = base.writeDB(src);
    std::uint64_t model = base.loadModel(dotModel(dim));
    double single =
        base.getResults(
                base.querySync(src->featureAt(0), 3, model, db, 0, 0))
            .latencySeconds;

    DeepStore ds{DeepStoreConfig{}};
    std::uint64_t db2 = ds.writeDB(randomDb(dim, features, 6));
    std::uint64_t model2 = ds.loadModel(dotModel(dim));
    double t0 = ds.simulatedSeconds();
    std::vector<std::uint64_t> qids;
    for (int i = 0; i < n; ++i)
        qids.push_back(ds.query(src->featureAt(
                                    static_cast<std::uint64_t>(i)),
                                3, model2, db2, 0, 0));
    EXPECT_EQ(ds.inFlight(), static_cast<std::size_t>(n));
    // Shards stripe onto the units once their probe events fire.
    while (ds.scheduler().residentShards() == 0 && ds.step()) {
    }
    EXPECT_GT(ds.scheduler().residentShards(), 0u);
    ds.drain();
    double makespan = ds.simulatedSeconds() - t0;
    double speedup = static_cast<double>(n) * single / makespan;
    EXPECT_GE(speedup, 2.0)
        << "makespan " << makespan << " single " << single;
    // Every query still returns the correct result set size.
    for (std::uint64_t qid : qids)
        EXPECT_EQ(ds.getResults(qid).topK.size(), 3u);
    // No query finished faster than a lone scan could.
    for (std::uint64_t qid : qids)
        EXPECT_GE(ds.getResults(qid).latencySeconds, single * 0.99);
}

TEST(AsyncQuery, SimulatedTimeEqualsEventClockOnMixedWorkload)
{
    // Regression guard for the cache-hit double-accounting hazard:
    // whatever mix of hits and misses runs, the engine's reported
    // simulated time must equal the event-queue clock exactly, and
    // the ledger must label every attributed second.
    DeepStore ds{DeepStoreConfig{}};
    const std::int64_t dim = 32;
    auto src = randomDb(dim, 150, 7);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t scn = ds.loadModel(dotModel(dim));
    std::uint64_t qcn = ds.loadModel(dotModel(dim));
    ds.setQC(qcn, 0.25, 0.99, 16);

    // Misses, repeats (hits), async overlap, sync waits.
    std::uint64_t a = ds.querySync(src->featureAt(3), 5, scn, db, 0, 0);
    std::uint64_t b = ds.query(src->featureAt(3), 5, scn, db, 0, 0);
    std::uint64_t c = ds.query(src->featureAt(9), 5, scn, db, 0, 0);
    ds.drain();
    std::uint64_t d = ds.querySync(src->featureAt(9), 5, scn, db, 0, 0);

    EXPECT_FALSE(ds.getResults(a).cacheHit);
    EXPECT_TRUE(ds.getResults(b).cacheHit);
    EXPECT_FALSE(ds.getResults(c).cacheHit);
    EXPECT_TRUE(ds.getResults(d).cacheHit);
    EXPECT_LT(ds.getResults(d).latencySeconds,
              ds.getResults(c).latencySeconds);

    // Simulated time is the event clock, by definition and in fact.
    EXPECT_DOUBLE_EQ(ds.simulatedSeconds(),
                     ticksToSeconds(ds.events().now()));
    EXPECT_EQ(ds.ledger().nowTick(), ds.events().now());

    // The hit path attributed QcLookup + CacheHit (not Scan) time.
    EXPECT_GT(ds.ledger().componentSeconds(TimeComponent::QcLookup),
              0.0);
    EXPECT_GT(ds.ledger().componentSeconds(TimeComponent::CacheHit),
              0.0);
    EXPECT_GT(ds.ledger().componentSeconds(TimeComponent::Scan), 0.0);
    // Attribution is complete: per-component seconds sum to at least
    // the wall clock minus nothing unlabeled going negative.
    EXPECT_GT(ds.ledger().attributedSeconds(), 0.0);
}

TEST(AsyncQuery, DeterministicAcrossIdenticalRuns)
{
    // Two identical async runs must agree byte-for-byte: same stats
    // dump, same top-K, same completion ticks.
    auto run = [](std::string &stats,
                  std::vector<ScoredResult> &topk) {
        DeepStore ds{DeepStoreConfig{}};
        const std::int64_t dim = 32;
        auto src = randomDb(dim, 100, 8);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t scn = ds.loadModel(dotModel(dim));
        std::uint64_t qcn = ds.loadModel(dotModel(dim));
        ds.setQC(qcn, 0.25, 0.99, 8);
        std::vector<std::uint64_t> qids;
        for (int i = 0; i < 6; ++i)
            qids.push_back(ds.query(
                src->featureAt(static_cast<std::uint64_t>(i % 3)), 4,
                scn, db, 0, 0,
                i % 2 == 0 ? Level::ChannelLevel : Level::ChipLevel));
        ds.drain();
        std::ostringstream os;
        ds.dumpStats(os);
        stats = os.str();
        topk = ds.getResults(qids.back()).topK;
    };
    std::string s1, s2;
    std::vector<ScoredResult> k1, k2;
    run(s1, k1);
    run(s2, k2);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(k1, k2);
}

TEST(AsyncQuery, SchedulerQueuesBeyondResidencyLimit)
{
    // More concurrent scans than maxResidentScansPerAccelerator:
    // the excess waits FIFO instead of being dropped or serialized
    // incorrectly.
    DeepStoreConfig cfg;
    cfg.maxResidentScansPerAccelerator = 2;
    DeepStore ds(cfg);
    auto src = randomDb(16, 100, 9);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::vector<std::uint64_t> qids;
    for (int i = 0; i < 5; ++i)
        qids.push_back(ds.query(
            src->featureAt(static_cast<std::uint64_t>(i)), 2, model,
            db, 0, 0));
    // Step a few events so submissions stripe onto the units.
    while (ds.scheduler().waitingShards() == 0 && ds.step()) {
    }
    EXPECT_GT(ds.scheduler().waitingShards(), 0u);
    ds.drain();
    for (std::uint64_t qid : qids)
        EXPECT_EQ(ds.poll(qid), QueryState::Complete);
}

} // namespace
} // namespace deepstore::core
