/** @file Tests for the FLASH_DFV prefetch-queue pipeline model. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/prefetch_queue.h"

namespace deepstore::core {
namespace {

TEST(PrefetchQueue, ZeroDepthIsFatal)
{
    EXPECT_THROW(simulatePrefetchPipeline(
                     1, 0, [](std::uint64_t) { return 1.0; },
                     [](std::uint64_t) { return 1.0; }),
                 FatalError);
}

TEST(PrefetchQueue, EmptyStreamIsFree)
{
    auto r = simulatePrefetchPipeline(
        0, 4, [](std::uint64_t) { return 1.0; },
        [](std::uint64_t) { return 1.0; });
    EXPECT_DOUBLE_EQ(r.totalSeconds, 0.0);
}

TEST(PrefetchQueue, SteadyStateIsMaxOfRates)
{
    // Constant times: total = produce(0) + (N-1)*max(p,c) + c.
    const std::uint64_t n = 1000;
    auto r = simulatePrefetchPipeline(
        n, 8, [](std::uint64_t) { return 2e-6; },
        [](std::uint64_t) { return 5e-6; });
    EXPECT_NEAR(r.totalSeconds, 2e-6 + (n - 1) * 5e-6 + 5e-6, 1e-9);

    auto r2 = simulatePrefetchPipeline(
        n, 8, [](std::uint64_t) { return 5e-6; },
        [](std::uint64_t) { return 2e-6; });
    EXPECT_NEAR(r2.totalSeconds, n * 5e-6 + 2e-6, 1e-9);
}

TEST(PrefetchQueue, OverlapBeatsSerialExecution)
{
    const std::uint64_t n = 100;
    auto pipelined = simulatePrefetchPipeline(
        n, 4, [](std::uint64_t) { return 3e-6; },
        [](std::uint64_t) { return 3e-6; });
    double serial = n * 6e-6;
    EXPECT_LT(pipelined.totalSeconds, 0.55 * serial);
}

TEST(PrefetchQueue, StallsAreAccounted)
{
    auto r = simulatePrefetchPipeline(
        10, 1, [](std::uint64_t) { return 1e-6; },
        [](std::uint64_t) { return 4e-6; });
    // Slow consumer: producer stalls on queue space.
    EXPECT_GT(r.producerStallSeconds, 0.0);
    auto r2 = simulatePrefetchPipeline(
        10, 1, [](std::uint64_t) { return 4e-6; },
        [](std::uint64_t) { return 1e-6; });
    // Slow producer: consumer starves.
    EXPECT_GT(r2.consumerStallSeconds, 0.0);
}

TEST(PrefetchQueue, DeeperQueueSmoothsJitter)
{
    // With jittered flash reads, a deeper FLASH_DFV queue absorbs
    // latency spikes and reduces total time (the §4.4 design point).
    const std::uint64_t n = 5000;
    auto jittered_producer = [](std::uint64_t i) {
        // Deterministic spiky pattern: every 16th read is 8x slower.
        return (i % 16 == 0) ? 8e-6 : 1e-6;
    };
    auto consumer = [](std::uint64_t) { return 1.6e-6; };
    auto shallow =
        simulatePrefetchPipeline(n, 1, jittered_producer, consumer);
    auto deep =
        simulatePrefetchPipeline(n, 16, jittered_producer, consumer);
    EXPECT_LT(deep.totalSeconds, shallow.totalSeconds);
    // Average rates: producer 1.4375us, consumer 1.6us; a deep queue
    // approaches the consumer-bound ideal.
    EXPECT_NEAR(deep.totalSeconds, n * 1.6e-6, n * 0.12e-6);
}

TEST(PrefetchQueue, DepthBeyondBurstGivesNoFurtherGain)
{
    const std::uint64_t n = 2000;
    auto producer = [](std::uint64_t i) {
        return (i % 8 == 0) ? 4e-6 : 1e-6;
    };
    auto consumer = [](std::uint64_t) { return 1.5e-6; };
    auto d16 = simulatePrefetchPipeline(n, 16, producer, consumer);
    auto d256 = simulatePrefetchPipeline(n, 256, producer, consumer);
    EXPECT_NEAR(d16.totalSeconds, d256.totalSeconds,
                0.01 * d16.totalSeconds);
}

TEST(PrefetchQueue, PerItemSeconds)
{
    auto r = simulatePrefetchPipeline(
        100, 4, [](std::uint64_t) { return 1e-6; },
        [](std::uint64_t) { return 2e-6; });
    EXPECT_NEAR(r.perItemSeconds(), r.totalSeconds / 100.0, 1e-15);
}

} // namespace
} // namespace deepstore::core
