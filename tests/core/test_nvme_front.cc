/** @file Tests for the NVMe-style command front end (§4.7.2). */

#include <cstring>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/nvme_front.h"
#include "nn/serialize.h"

namespace deepstore::core {
namespace {

struct Rig
{
    DeepStore store{DeepStoreConfig{}};
    NvmeFrontEnd nvme{store, 16};

    /** Submit, process, pump until a completion posts, pop it. */
    NvmeCompletion
    run(const NvmeCommand &cmd)
    {
        EXPECT_TRUE(nvme.submit(cmd));
        nvme.process();
        nvme.pump();
        auto done = nvme.pollCompletion();
        EXPECT_TRUE(done.has_value());
        return *done;
    }

    std::uint64_t
    loadDotModel(std::int64_t dim)
    {
        nn::Model m("dot", dim, false);
        m.addLayer(nn::Layer::elementWise("dot",
                                          nn::EwOp::DotProduct, dim));
        auto blob =
            nn::serializeModel(m, nn::ModelWeights::random(m, 1));
        std::vector<float> packed((blob.size() + 3) / 4, 0.0f);
        std::memcpy(packed.data(), blob.data(), blob.size());
        NvmeCommand cmd;
        cmd.opcode = NvmeOpcode::LoadModel;
        cmd.prp = nvme.buffers().add(std::move(packed));
        cmd.cdw[0] = blob.size();
        auto done = run(cmd);
        EXPECT_EQ(done.status, NvmeStatus::Success);
        return done.result;
    }

    std::uint64_t
    writeDb(std::int64_t dim, int count)
    {
        std::vector<float> flat;
        for (int i = 0; i < count; ++i)
            for (std::int64_t d = 0; d < dim; ++d)
                flat.push_back(static_cast<float>((i * 31 + d) % 7) -
                               3.0f);
        NvmeCommand cmd;
        cmd.opcode = NvmeOpcode::WriteDB;
        cmd.prp = nvme.buffers().add(std::move(flat));
        cmd.cdw[0] = static_cast<std::uint64_t>(dim);
        auto done = run(cmd);
        EXPECT_EQ(done.status, NvmeStatus::Success);
        return done.result;
    }
};

TEST(NvmeFront, FullCommandFlow)
{
    Rig rig;
    std::uint64_t db = rig.writeDb(8, 50);
    std::uint64_t model = rig.loadDotModel(8);

    // Query via the vendor opcode.
    NvmeCommand q;
    q.opcode = NvmeOpcode::Query;
    q.cid = 7;
    q.prp = rig.nvme.buffers().add(
        std::vector<float>(8, 1.0f));
    q.cdw[0] = 5; // k
    q.cdw[1] = model;
    q.cdw[2] = db;
    auto qdone = rig.run(q);
    ASSERT_EQ(qdone.status, NvmeStatus::Success);
    EXPECT_EQ(qdone.cid, 7);

    // Fetch results into a host buffer.
    NvmeCommand g;
    g.opcode = NvmeOpcode::GetResults;
    g.prp = rig.nvme.buffers().add({});
    g.cdw[0] = qdone.result;
    auto gdone = rig.run(g);
    ASSERT_EQ(gdone.status, NvmeStatus::Success);
    EXPECT_EQ(gdone.result, 5u);
    const auto *out = rig.nvme.buffers().find(g.prp);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->size(), 10u); // (id, score) pairs
}

TEST(NvmeFront, ReadDbReturnsFlattenedFeatures)
{
    Rig rig;
    std::uint64_t db = rig.writeDb(4, 10);
    NvmeCommand r;
    r.opcode = NvmeOpcode::ReadDB;
    r.prp = rig.nvme.buffers().add({});
    r.cdw[0] = db;
    r.cdw[1] = 2;
    r.cdw[2] = 3;
    auto done = rig.run(r);
    ASSERT_EQ(done.status, NvmeStatus::Success);
    EXPECT_EQ(done.result, 3u);
    EXPECT_EQ(rig.nvme.buffers().find(r.prp)->size(), 12u);
}

TEST(NvmeFront, AppendDbGrowsDatabase)
{
    Rig rig;
    std::uint64_t db = rig.writeDb(4, 10);
    NvmeCommand a;
    a.opcode = NvmeOpcode::AppendDB;
    a.prp = rig.nvme.buffers().add(std::vector<float>(8, 0.5f));
    a.cdw[0] = db;
    auto done = rig.run(a);
    ASSERT_EQ(done.status, NvmeStatus::Success);
    EXPECT_EQ(rig.store.databaseInfo(db).numFeatures, 12u);
}

TEST(NvmeFront, HostErrorsSurfaceAsStatusNotExceptions)
{
    Rig rig;
    // Query against a nonexistent model: InvalidField, no throw.
    NvmeCommand q;
    q.opcode = NvmeOpcode::Query;
    q.prp = rig.nvme.buffers().add(std::vector<float>(8, 0.0f));
    q.cdw[1] = 999;
    q.cdw[2] = 999;
    auto done = rig.run(q);
    EXPECT_EQ(done.status, NvmeStatus::InvalidField);

    // Bad PRP handle.
    NvmeCommand r;
    r.opcode = NvmeOpcode::ReadDB;
    r.prp = 0xDEAD;
    EXPECT_EQ(rig.run(r).status, NvmeStatus::InvalidField);
}

TEST(NvmeFront, StandardIoOpcodesWork)
{
    Rig rig;
    NvmeCommand w;
    w.opcode = NvmeOpcode::Write;
    w.cdw[0] = 0;
    w.cdw[1] = 4;
    EXPECT_EQ(rig.run(w).status, NvmeStatus::Success);
    NvmeCommand r;
    r.opcode = NvmeOpcode::Read;
    r.cdw[0] = 0;
    r.cdw[1] = 4;
    EXPECT_EQ(rig.run(r).status, NvmeStatus::Success);
    NvmeCommand t;
    t.opcode = NvmeOpcode::Dsm;
    t.cdw[0] = 0;
    t.cdw[1] = 4;
    EXPECT_EQ(rig.run(t).status, NvmeStatus::Success);
}

TEST(NvmeFront, SubmissionQueueBackpressure)
{
    DeepStore store{DeepStoreConfig{}};
    NvmeFrontEnd nvme(store, 2);
    NvmeCommand nop;
    nop.opcode = NvmeOpcode::GetResults;
    nop.prp = nvme.buffers().add({});
    EXPECT_TRUE(nvme.submit(nop));
    EXPECT_TRUE(nvme.submit(nop));
    EXPECT_FALSE(nvme.submit(nop)); // full
    nvme.process();
    EXPECT_EQ(nvme.pending(), 0u);
    EXPECT_TRUE(nvme.submit(nop)); // drained
}

TEST(NvmeFront, SetQcEnablesTheCache)
{
    Rig rig;
    std::uint64_t db = rig.writeDb(8, 30);
    std::uint64_t scn = rig.loadDotModel(8);
    std::uint64_t qcn = rig.loadDotModel(8);

    NvmeCommand s;
    s.opcode = NvmeOpcode::SetQC;
    s.cdw[0] = qcn;
    s.cdw[1] = 2000; // threshold 0.20
    s.cdw[2] = 9900; // accuracy 0.99
    s.cdw[3] = 8;
    EXPECT_EQ(rig.run(s).status, NvmeStatus::Success);
    ASSERT_NE(rig.store.queryCache(), nullptr);
    EXPECT_EQ(rig.store.queryCache()->capacity(), 8u);

    // Same query twice through the wire: second one hits.
    for (int i = 0; i < 2; ++i) {
        NvmeCommand q;
        q.opcode = NvmeOpcode::Query;
        q.prp = rig.nvme.buffers().add(
            std::vector<float>(8, 2.0f));
        q.cdw[0] = 3;
        q.cdw[1] = scn;
        q.cdw[2] = db;
        EXPECT_EQ(rig.run(q).status, NvmeStatus::Success);
    }
    EXPECT_EQ(rig.store.queryCache()->hits(), 1u);
}

TEST(NvmeFront, RejectsZeroDepthQueue)
{
    DeepStore store{DeepStoreConfig{}};
    EXPECT_THROW(NvmeFrontEnd(store, 0), FatalError);
}

TEST(NvmeFront, QueryCompletionsArriveOutOfOrder)
{
    // Two queries over the same database: a slow SSD-level scan
    // submitted first and a fast channel-level scan second. Their
    // completion entries must post in simulated-latency order (fast
    // first), not submission order. The database must span enough
    // flash pages that channel striping actually parallelizes the
    // scan (a one-page database runs on a single unit at any level).
    Rig rig;
    std::uint64_t db = rig.writeDb(8, 20000);
    std::uint64_t model = rig.loadDotModel(8);

    auto make_query = [&](std::uint16_t cid, Level level) {
        NvmeCommand q;
        q.opcode = NvmeOpcode::Query;
        q.cid = cid;
        q.prp =
            rig.nvme.buffers().add(std::vector<float>(8, 1.0f));
        q.cdw[0] = 3;
        q.cdw[1] = model;
        q.cdw[2] = db;
        q.cdw[5] = static_cast<std::uint64_t>(level) + 1;
        return q;
    };
    NvmeCommand slow = make_query(100, Level::SsdLevel);
    NvmeCommand fast = make_query(101, Level::ChannelLevel);
    ASSERT_TRUE(rig.nvme.submit(slow));
    ASSERT_TRUE(rig.nvme.submit(fast));
    rig.nvme.process();

    // Both accepted: no completions yet, both engine queries known.
    EXPECT_FALSE(rig.nvme.pollCompletion().has_value());
    auto slow_qid = rig.nvme.queryIdForCid(100);
    auto fast_qid = rig.nvme.queryIdForCid(101);
    ASSERT_TRUE(slow_qid.has_value());
    ASSERT_TRUE(fast_qid.has_value());

    // GetResults on an in-flight query: retryable InProgress.
    NvmeCommand g;
    g.opcode = NvmeOpcode::GetResults;
    g.cid = 102;
    g.prp = rig.nvme.buffers().add({});
    g.cdw[0] = *slow_qid;
    ASSERT_TRUE(rig.nvme.submit(g));
    rig.nvme.process();
    auto early = rig.nvme.pollCompletion();
    ASSERT_TRUE(early.has_value());
    EXPECT_EQ(early->status, NvmeStatus::InProgress);
    EXPECT_EQ(early->result, *slow_qid);

    // First interrupt: the channel-level query (submitted second).
    ASSERT_TRUE(rig.nvme.pump());
    auto first = rig.nvme.pollCompletion();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->cid, 101);
    EXPECT_EQ(first->status, NvmeStatus::Success);
    EXPECT_EQ(first->result, *fast_qid);

    // Second interrupt: the SSD-level query.
    ASSERT_TRUE(rig.nvme.pump());
    auto second = rig.nvme.pollCompletion();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->cid, 100);
    EXPECT_EQ(second->result, *slow_qid);

    // GetResults now succeeds for both.
    g.cid = 103;
    auto gdone = rig.run(g);
    EXPECT_EQ(gdone.status, NvmeStatus::Success);
    EXPECT_EQ(gdone.result, 3u);

    // Latencies reflect the levels.
    EXPECT_GT(rig.store.getResults(*slow_qid).latencySeconds,
              rig.store.getResults(*fast_qid).latencySeconds);
}

} // namespace
} // namespace deepstore::core
