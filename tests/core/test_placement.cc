/** @file Tests locking the placement configs to the paper's Table 3. */

#include <gtest/gtest.h>

#include "core/placement.h"
#include "energy/energy_model.h"

namespace deepstore::core {
namespace {

ssd::FlashParams
paperFlash()
{
    return ssd::FlashParams{}; // defaults mirror §6.1
}

TEST(Placement, SsdLevelMatchesTable3)
{
    Placement p = makePlacement(Level::SsdLevel, paperFlash());
    EXPECT_EQ(p.array.rows, 32);
    EXPECT_EQ(p.array.cols, 64);
    EXPECT_EQ(p.array.dataflow, systolic::Dataflow::OutputStationary);
    EXPECT_NEAR(p.array.frequencyHz, 800e6, 1);
    EXPECT_EQ(p.array.scratchpadBytes, 8 * MiB);
    EXPECT_EQ(p.numAccelerators, 1u);
    EXPECT_NEAR(p.powerBudgetW, 55.0, 1e-9);
    EXPECT_EQ(p.sramModel, energy::SramModel::ItrsHp);
}

TEST(Placement, ChannelLevelMatchesTable3)
{
    Placement p = makePlacement(Level::ChannelLevel, paperFlash());
    EXPECT_EQ(p.array.rows, 16);
    EXPECT_EQ(p.array.cols, 64);
    EXPECT_EQ(p.array.dataflow, systolic::Dataflow::OutputStationary);
    EXPECT_EQ(p.array.scratchpadBytes, 512 * KiB);
    EXPECT_EQ(p.array.sharedL2Bytes, 8 * MiB);
    EXPECT_EQ(p.numAccelerators, 32u);
    // §4.5: "each channel-level accelerator has a power budget of
    // 1.71W".
    EXPECT_NEAR(p.powerBudgetW, 1.71, 0.01);
}

TEST(Placement, ChipLevelMatchesTable3)
{
    Placement p = makePlacement(Level::ChipLevel, paperFlash());
    EXPECT_EQ(p.array.rows, 4);
    EXPECT_EQ(p.array.cols, 32);
    EXPECT_EQ(p.array.dataflow, systolic::Dataflow::WeightStationary);
    EXPECT_NEAR(p.array.frequencyHz, 400e6, 1);
    EXPECT_EQ(p.array.scratchpadBytes, 512 * KiB);
    EXPECT_EQ(p.numAccelerators, 128u);
    // §4.5: "each chip-level accelerator has a power budget of
    // 0.43W".
    EXPECT_NEAR(p.powerBudgetW, 0.43, 0.01);
    EXPECT_EQ(p.sramModel, energy::SramModel::ItrsLow);
}

TEST(Placement, AreasMatchTable3)
{
    energy::EnergyParams e;
    Placement ssd = makePlacement(Level::SsdLevel, paperFlash());
    Placement ch = makePlacement(Level::ChannelLevel, paperFlash());
    Placement chip = makePlacement(Level::ChipLevel, paperFlash());
    EXPECT_NEAR(energy::acceleratorAreaMm2(
                    e, ssd.array.peCount(), ssd.array.scratchpadBytes),
                31.7, 0.1);
    EXPECT_NEAR(energy::acceleratorAreaMm2(
                    e, ch.array.peCount(), ch.array.scratchpadBytes),
                7.4, 0.1);
    EXPECT_NEAR(energy::acceleratorAreaMm2(
                    e, chip.array.peCount(),
                    chip.array.scratchpadBytes),
                2.5, 0.1);
}

TEST(Placement, AcceleratorCountsFollowGeometry)
{
    ssd::FlashParams flash = paperFlash();
    flash.channels = 16;
    flash.chipsPerChannel = 8;
    EXPECT_EQ(makePlacement(Level::ChannelLevel, flash)
                  .numAccelerators,
              16u);
    EXPECT_EQ(makePlacement(Level::ChipLevel, flash).numAccelerators,
              128u);
}

TEST(Placement, PeCountsMatchPaperText)
{
    // §4.5: 2048 PEs (SSD), 1024 (channel), 128 (chip).
    EXPECT_EQ(makePlacement(Level::SsdLevel, paperFlash())
                  .array.peCount(),
              2048);
    EXPECT_EQ(makePlacement(Level::ChannelLevel, paperFlash())
                  .array.peCount(),
              1024);
    EXPECT_EQ(makePlacement(Level::ChipLevel, paperFlash())
                  .array.peCount(),
              128);
}

TEST(Placement, ToStringCoversLevels)
{
    EXPECT_STREQ(toString(Level::SsdLevel), "SSD");
    EXPECT_STREQ(toString(Level::ChannelLevel), "Channel");
    EXPECT_STREQ(toString(Level::ChipLevel), "Chip");
}

} // namespace
} // namespace deepstore::core
