/** @file Tests for database metadata and offset addressing (§4.4). */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/metadata.h"

namespace deepstore::core {
namespace {

TEST(Metadata, AddAssignsIncreasingIds)
{
    MetadataStore store;
    DbMetadata md;
    md.featureBytes = 2048;
    md.numFeatures = 100;
    std::uint64_t a = store.add(md);
    std::uint64_t b = store.add(md);
    EXPECT_LT(a, b);
    EXPECT_TRUE(store.contains(a));
    EXPECT_EQ(store.size(), 2u);
}

TEST(Metadata, LookupUnknownIsFatal)
{
    MetadataStore store;
    EXPECT_THROW(store.lookup(42), FatalError);
    DbMetadata md;
    md.dbId = 42;
    EXPECT_THROW(store.update(md), FatalError);
}

TEST(Metadata, UpdateGrowsFeatureCount)
{
    MetadataStore store;
    DbMetadata md;
    md.featureBytes = 800;
    md.numFeatures = 10;
    std::uint64_t id = store.add(md);
    DbMetadata grown = store.lookup(id);
    grown.numFeatures = 25;
    store.update(grown);
    EXPECT_EQ(store.lookup(id).numFeatures, 25u);
}

TEST(Metadata, PersistedRecordIs32Bytes)
{
    // §4.7.2: "DeepStore will generate 32-byte metadata".
    MetadataStore store;
    DbMetadata md;
    md.featureBytes = 2048;
    md.numFeatures = 1;
    store.add(md);
    store.add(md);
    EXPECT_EQ(store.persistedBytes(), 64u);
}

TEST(Metadata, PageCountPackedSmallFeatures)
{
    DbMetadata md;
    md.featureBytes = 800; // 20 per 16 KB page
    md.numFeatures = 100;
    EXPECT_EQ(md.pageCount(16384), 5u);
}

TEST(Metadata, PageCountLargeFeatures)
{
    DbMetadata md;
    md.featureBytes = 45056; // ReId: 3 pages each
    md.numFeatures = 10;
    EXPECT_EQ(md.pageCount(16384), 30u);
}

TEST(Metadata, FeaturePpnOffsetArithmetic)
{
    DbMetadata md;
    md.startPpn = 1000;
    md.featureBytes = 2048; // 8 per page
    md.numFeatures = 100;
    EXPECT_EQ(md.featurePpn(0, 16384), 1000u);
    EXPECT_EQ(md.featurePpn(7, 16384), 1000u);
    EXPECT_EQ(md.featurePpn(8, 16384), 1001u);
    EXPECT_EQ(md.featurePpn(99, 16384), 1000u + 99 / 8);

    DbMetadata big;
    big.startPpn = 500;
    big.featureBytes = 45056;
    big.numFeatures = 5;
    EXPECT_EQ(big.featurePpn(0, 16384), 500u);
    EXPECT_EQ(big.featurePpn(1, 16384), 503u);
    EXPECT_EQ(big.featurePpn(4, 16384), 512u);
}

} // namespace
} // namespace deepstore::core
