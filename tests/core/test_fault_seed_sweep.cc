/**
 * @file
 * Seed-sweep determinism for the fault + FTL-lifecycle subsystem.
 *
 * The whole fault stack — flat uncorrectable draws, correlated
 * die/plane bursts, wear-induced (RBER-driven) errors, background
 * relocation, and block retirement — must be a pure function of
 * (seed, workload):
 *
 *  - the same seed replayed twice produces a bit-identical
 *    fingerprint (every completion tick and the full stats dump,
 *    fault/relocation/retirement counters included);
 *  - distinct seeds produce distinct schedules (no accidental
 *    seed-independence anywhere in the draw plumbing).
 *
 * Registered with the `fault` ctest label so CI can run the fault
 * suite selectively (`ctest -L fault`).
 */

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/deepstore.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

/**
 * One fixed workload under the full fault stack, parameterized only
 * by the injector seed. Returns the run fingerprint: per-query
 * outcome/coverage/completion ticks plus the complete stats dump.
 */
std::string
fingerprint(std::uint64_t seed)
{
    DeepStoreConfig cfg;
    // Small geometry so wear accumulates quickly.
    cfg.flash.channels = 4;
    cfg.flash.chipsPerChannel = 2;
    cfg.flash.planesPerChip = 2;
    cfg.flash.blocksPerPlane = 8;
    cfg.flash.pagesPerBlock = 4;

    cfg.flash.faults.seed = seed;
    // Flat per-page layer (Domain::FlashUncorrectable). Moderate
    // rates: high enough that every run degrades, low enough that
    // the per-seed failure *pattern* stays distinctive.
    cfg.flash.faults.uncorrectableReadProbability = 0.1;
    // Correlated burst on channel 0 (Domain::CorrelatedBurst),
    // active across the whole run.
    BurstDomain burst;
    burst.channel = 0;
    burst.fromTick = 0;
    burst.untilTick = secondsToTicks(10.0);
    burst.uncorrectableProbability = 0.3;
    cfg.flash.faults.bursts.push_back(burst);
    cfg.maxPageRetries = 1; // per-attempt re-rolls add a second draw

    // Wear-induced layer (Domain::WearInduced) with thresholds low
    // enough that observed errors push blocks into relocation.
    cfg.flash.wear.enabled = true;
    cfg.flash.wear.baseRber = 1e-3;
    cfg.flash.wear.rberPerUncorrectable = 2e-2;
    cfg.flash.wear.relocateRberThreshold = 0.05;
    cfg.flash.wear.retireRberThreshold = 0.3;
    cfg.flash.wear.maxEraseCount = 64;

    DeepStore ds(cfg);
    auto src = randomDb(32, 2000, 11); // 16 pages across 4 channels
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t q1 = ds.query(src->featureAt(1), 4, model, db, 0,
                                1000, Level::ChannelLevel);
    std::uint64_t q2 = ds.query(src->featureAt(7), 4, model, db,
                                1000, 2000, Level::ChipLevel);
    ds.drain();
    std::uint64_t q3 = ds.query(src->featureAt(3), 4, model, db, 0,
                                0, Level::SsdLevel);
    ds.drain();

    std::ostringstream os;
    for (std::uint64_t q : {q1, q2, q3}) {
        const QueryResult &r = ds.getResults(q);
        os << q << ":" << toString(r.outcome) << ":"
           << r.featuresScanned << ":"
           << ds.scheduler().completeTick(q) << "\n";
    }
    ds.dumpStats(os);
    return os.str();
}

TEST(FaultSeedSweep, SameSeedReplaysBitIdentically)
{
    for (std::uint64_t seed : {7ull, 2024ull, 0xDEADBEEFull}) {
        std::string a = fingerprint(seed);
        std::string b = fingerprint(seed);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST(FaultSeedSweep, SixteenSeedsProduceSixteenSchedules)
{
    std::set<std::string> prints;
    bool any_failed_pages = false;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        std::string fp = fingerprint(seed);
        EXPECT_TRUE(prints.insert(fp).second)
            << "seed " << seed
            << " collided with an earlier schedule";
        any_failed_pages |=
            fp.find("dfv.pagesFailed") != std::string::npos;
    }
    EXPECT_EQ(prints.size(), 16u);
    // The sweep exercised the fault path, not 16 clean runs.
    EXPECT_TRUE(any_failed_pages);
}

} // namespace
} // namespace deepstore::core
