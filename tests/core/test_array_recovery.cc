/**
 * @file
 * Recovery matrix for the self-healing durable array (DESIGN.md §12,
 * ctest labels `repair;fault`):
 *
 *  - superblock codec: torn or bit-flipped images fail the checksum
 *    non-fatally (recovery treats them as "this replica is gone");
 *  - replicated metadata: a whole-array power loss replays the
 *    metadata table *and* the coordinator's shard map from the
 *    superblock replicas, and queries run at full coverage after;
 *  - torn-flush modeling: power dying mid-flush leaves the slow
 *    node's replica torn (mixed-epoch pages, detected by checksum)
 *    while recovery adopts the intact peer — and a loss before any
 *    page commits falls back to the previous epoch entirely;
 *  - node-0 death: the coordinator rebuilds its striping from the
 *    surviving nodes' replicas (node 0 holds nothing unique);
 *  - repair engine: after a drive death the array re-replicates onto
 *    survivors, so a *second* death still yields Success/1.0 — and a
 *    power loss during active repair restarts it under a fresh
 *    generation and still completes;
 *  - scrub engine: a power loss mid-pass restarts the scanner, the
 *    pass budget still terminates the simulation, and latent
 *    partial-page corruption is found and rewritten from replicas.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/units.h"
#include "core/array_superblock.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

/** n identical default-geometry nodes. */
std::vector<ssd::FlashParams>
homogeneous(std::size_t n, const ssd::FlashParams &flash = {})
{
    return std::vector<ssd::FlashParams>(n, flash);
}

/** Run the event queue dry (background scrub/repair included). */
void
drainAll(DeepStore &ds)
{
    while (ds.step()) {
    }
}

// ---- superblock codec --------------------------------------------

TEST(Superblock, CodecRoundTripsAndRejectsTornImages)
{
    SuperblockImage image;
    image.epoch = 7;
    image.metadataBlob = {1, 2, 3, 4, 5};
    image.shardMapBlob = {9, 8, 7};
    std::vector<std::uint8_t> bytes = encodeSuperblock(image);

    // The header promises the exact encoded length.
    auto promised = superblockImageBytes(bytes);
    ASSERT_TRUE(promised.has_value());
    EXPECT_EQ(*promised, bytes.size());

    auto back = decodeSuperblock(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->epoch, 7u);
    EXPECT_EQ(back->metadataBlob, image.metadataBlob);
    EXPECT_EQ(back->shardMapBlob, image.shardMapBlob);

    // Truncation (a replica whose tail pages never committed).
    auto torn = bytes;
    torn.resize(torn.size() - 2);
    EXPECT_FALSE(decodeSuperblock(torn).has_value());

    // A stale page mixed into a newer image: flip one payload byte.
    auto mixed = bytes;
    mixed.back() ^= 0x5A;
    EXPECT_FALSE(decodeSuperblock(mixed).has_value());

    // A corrupted header byte breaks the magic.
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_FALSE(decodeSuperblock(bad_magic).has_value());
    EXPECT_FALSE(superblockImageBytes(bad_magic).has_value());

    // Header fragments shorter than the header are unreadable.
    std::vector<std::uint8_t> stub(bytes.begin(), bytes.begin() + 8);
    EXPECT_FALSE(superblockImageBytes(stub).has_value());

    // None of the torn shapes may fatal: recovery probes them all.
    EXPECT_FALSE(decodeSuperblock({}).has_value());
}

// ---- replicated metadata across the array ------------------------

TEST(ArrayMetadataDurability, PowerLossRecoversTableAndShardMap)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(3);
    cfg.array.replication = 2;
    DeepStore ds(cfg);

    auto src1 = randomDb(32, 400, 11);
    auto src2 = randomDb(32, 150, 12);
    std::uint64_t db1 = ds.writeDB(src1);
    std::uint64_t db2 = ds.writeDB(src2);
    std::uint64_t model = ds.loadModel(dotModel(32));
    DbMetadata before = ds.databaseInfo(db1);

    ds.persistMetadata();
    EXPECT_EQ(ds.metadataEpoch(), 1u);

    ds.powerLoss();

    // Same epoch back: every replica was intact.
    EXPECT_EQ(ds.metadataEpoch(), 1u);
    EXPECT_EQ(ds.array().tornSuperblocks(), 0u);
    EXPECT_EQ(ds.databaseInfo(db1).numFeatures, before.numFeatures);
    EXPECT_EQ(ds.databaseInfo(db2).numFeatures, 150u);

    // The shard map came back too: striped reads and full-coverage
    // queries run against the restored placements.
    auto rows = ds.readDB(db1, 5, 3);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], src1->featureAt(5));

    std::uint64_t q = ds.querySync(src1->featureAt(2), 4, model, db1,
                                   0, 0);
    EXPECT_EQ(ds.getResults(q).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(q).coverageFraction, 1.0);
}

// ---- torn-flush modeling -----------------------------------------

/** 2-node rig built to tear: tiny pages so the superblock image
 *  spans several flash pages, node 1 with a single plane and a slow
 *  program so its per-page commits land milliseconds apart. */
DeepStoreConfig
tearableConfig()
{
    ssd::FlashParams fast;
    fast.channels = 2;
    fast.chipsPerChannel = 1;
    fast.planesPerChip = 2;
    fast.blocksPerPlane = 16;
    fast.pagesPerBlock = 8;
    fast.pageBytes = 256;

    ssd::FlashParams slow = fast;
    slow.channels = 1;
    slow.planesPerChip = 1;
    slow.blocksPerPlane = 64;
    slow.programLatency = 2e-3; // serialize commits ~2 ms apart

    DeepStoreConfig cfg;
    cfg.flash = fast;
    cfg.array.nodes = {fast, slow};
    cfg.array.replication = 2;
    return cfg;
}

/** Several small databases so the encoded superblock image needs
 *  multiple 256-byte pages per replica. */
std::vector<std::uint64_t>
seedDatabases(DeepStore &ds, std::size_t n)
{
    std::vector<std::uint64_t> dbs;
    for (std::size_t i = 0; i < n; ++i)
        dbs.push_back(ds.writeDB(randomDb(32, 24, 100 + i)));
    return dbs;
}

TEST(ArrayMetadataDurability, LossBeforeAnyCommitFallsBackAnEpoch)
{
    DeepStore ds(tearableConfig());
    auto dbs = seedDatabases(ds, 3);
    ds.persistMetadata();
    ASSERT_EQ(ds.metadataEpoch(), 1u);

    // New state the interrupted epoch-2 flush will try to persist.
    std::uint64_t late_db = ds.writeDB(randomDb(32, 24, 200));

    // Power dies 50 us into the flush — before the first program
    // completes anywhere (fastest commit is ~500 us out), so every
    // replica still holds its intact epoch-1 image.
    ds.events().scheduleAfter(secondsToTicks(50e-6),
                              [&ds] { ds.powerLoss(); });
    ds.persistMetadata();

    EXPECT_EQ(ds.metadataEpoch(), 1u);
    EXPECT_EQ(ds.array().tornSuperblocks(), 0u);
    // Epoch 1 predates late_db: its metadata is honestly gone...
    EXPECT_THROW(ds.databaseInfo(late_db), FatalError);
    // ...while the persisted databases replay exactly.
    for (std::uint64_t db : dbs)
        EXPECT_EQ(ds.databaseInfo(db).numFeatures, 24u);
    auto rows = ds.readDB(dbs[0], 0, 4);
    ASSERT_EQ(rows.size(), 4u);
    drainAll(ds);
}

TEST(ArrayMetadataDurability, TornReplicaIsRecoveredFromPeer)
{
    DeepStore ds(tearableConfig());
    auto dbs = seedDatabases(ds, 3);
    ds.persistMetadata();
    ASSERT_EQ(ds.metadataEpoch(), 1u);

    std::uint64_t late_db = ds.writeDB(randomDb(32, 24, 201));
    auto late_src = randomDb(32, 24, 201);

    // Power dies 3.5 ms into the epoch-2 flush: node 0 committed all
    // of its pages long before (sub-millisecond), node 1's
    // single-plane 2 ms programs have committed only the first page —
    // a mixed-epoch, checksum-failing replica.
    ds.events().scheduleAfter(secondsToTicks(3.5e-3),
                              [&ds] { ds.powerLoss(); });
    ds.persistMetadata();

    // Recovery adopted node 0's intact epoch-2 image and counted the
    // torn peer.
    EXPECT_EQ(ds.metadataEpoch(), 2u);
    EXPECT_GE(ds.array().tornSuperblocks(), 1u);
    EXPECT_EQ(ds.databaseInfo(late_db).numFeatures, 24u);
    auto rows = ds.readDB(late_db, 3, 2);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0], late_src->featureAt(3));

    std::ostringstream os;
    ds.dumpStats(os);
    EXPECT_NE(os.str().find("array.superblock.tornReplicas"),
              std::string::npos);

    // A clean persist re-replicates everywhere; the next loss sees
    // no torn copies beyond the one already counted.
    ds.persistMetadata();
    EXPECT_EQ(ds.metadataEpoch(), 3u);
    ds.powerLoss();
    EXPECT_EQ(ds.metadataEpoch(), 3u);
    EXPECT_EQ(ds.array().tornSuperblocks(), 1u);
    drainAll(ds);
}

// ---- node-0 death ------------------------------------------------

TEST(ArrayRecovery, NodeZeroDeathRebuildsFromSurvivingReplicas)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(3);
    cfg.array.replication = 2;
    DeepStore ds(cfg);

    auto src = randomDb(32, 600, 21);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    ds.persistMetadata();

    // The admin drive dies. Its superblock replica is unreadable,
    // but nodes 1 and 2 each hold an intact copy.
    ASSERT_EQ(ds.killNode(0), KillNodeResult::Killed);
    ds.reloadMetadata();
    EXPECT_EQ(ds.metadataEpoch(), 1u);
    EXPECT_EQ(ds.databaseInfo(db).numFeatures, 600u);

    // R=2 striping: every shard has a replica off node 0, so the
    // restored map still covers the whole database.
    std::uint64_t q = ds.querySync(src->featureAt(9), 4, model, db,
                                   0, 0);
    EXPECT_EQ(ds.getResults(q).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(q).coverageFraction, 1.0);

    // A full power loss with node 0 still dead recovers the same way.
    ds.powerLoss();
    EXPECT_EQ(ds.metadataEpoch(), 1u);
    EXPECT_EQ(ds.databaseInfo(db).numFeatures, 600u);
}

// ---- repair engine -----------------------------------------------

TEST(ArrayRepair, RepairRestoresReplicationForASecondDeath)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(3);
    cfg.array.replication = 2;
    cfg.array.repair.enabled = true;
    DeepStore ds(cfg);

    auto src = randomDb(64, 1200, 31);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(64));

    ASSERT_EQ(ds.killNode(1), KillNodeResult::Killed);
    drainAll(ds); // background repair runs to completion

    const auto &array = ds.array();
    EXPECT_TRUE(array.repairIdle());
    EXPECT_GT(array.repairShardsRepaired(), 0u);
    EXPECT_GT(array.repairPagesCopied(), 0u);
    EXPECT_GT(array.repairBytesOverFabric(), 0u);
    EXPECT_GT(array.lastRepairCompleteTick(), 0u);
    // Copies landed only on the survivors.
    EXPECT_EQ(array.repairPagesCopiedTo(1), 0u);
    EXPECT_EQ(array.repairPagesCopiedTo(0) +
                  array.repairPagesCopiedTo(2),
              array.repairPagesCopied());

    // Replication is restored: losing a *second* drive still leaves
    // one alive copy of every shard.
    ASSERT_EQ(ds.killNode(2), KillNodeResult::Killed);
    std::uint64_t q = ds.querySync(src->featureAt(5), 4, model, db,
                                   0, 0);
    EXPECT_EQ(ds.getResults(q).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(q).coverageFraction, 1.0);

    std::ostringstream os;
    ds.dumpStats(os);
    EXPECT_NE(os.str().find("array.repair.shardsRepaired"),
              std::string::npos);
    EXPECT_NE(os.str().find("array.repair.pagesCopied"),
              std::string::npos);
}

TEST(ArrayRepair, PowerLossDuringActiveRepairRestartsAndCompletes)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(3);
    cfg.array.replication = 2;
    cfg.array.repair.enabled = true;
    // Slow cap (~160 us per 16 KiB page) so the loss lands mid-copy.
    cfg.array.repair.bandwidthBytesPerSecond = 100e6;
    DeepStore ds(cfg);

    auto src = randomDb(64, 2000, 41);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(64));
    ds.persistMetadata();

    ASSERT_EQ(ds.killNode(1), KillNodeResult::Killed);
    // Cut the power 1.5 ms into the re-replication: queued copies and
    // in-flight transfers die, recovery replays the shard map and the
    // repair scan re-queues the remaining under-replicated shards.
    ds.events().scheduleAfter(secondsToTicks(1.5e-3),
                              [&ds] { ds.powerLoss(); });
    drainAll(ds);

    const auto &array = ds.array();
    EXPECT_TRUE(array.repairIdle());
    EXPECT_GT(array.repairShardsRepaired(), 0u);
    EXPECT_GT(array.lastRepairCompleteTick(), 0u);

    ASSERT_EQ(ds.killNode(2), KillNodeResult::Killed);
    std::uint64_t q = ds.querySync(src->featureAt(3), 4, model, db,
                                   0, 0);
    EXPECT_EQ(ds.getResults(q).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(q).coverageFraction, 1.0);
}

// ---- scrub engine ------------------------------------------------

TEST(ArrayScrub, PowerLossMidPassRestartsAndStillTerminates)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(2);
    cfg.array.replication = 2;
    cfg.array.scrub.enabled = true; // defaults: 2000 pages/s, 1 pass
    // Start the single budgeted pass only after ingest settles (a
    // pass over a not-yet-bound map would complete vacuously).
    cfg.array.scrub.startDelaySeconds = 20e-3;
    DeepStore ds(cfg);

    auto src = randomDb(64, 4000, 51);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(64));
    ds.persistMetadata();

    // The pass covers ~126 placement pages (~63 ms at the default
    // rate) starting at 20 ms; power dies 5 ms in, mid-pass.
    ds.events().scheduleAfter(secondsToTicks(25e-3),
                              [&ds] { ds.powerLoss(); });
    drainAll(ds);

    const auto &array = ds.array();
    // The restarted generation finished its single budgeted pass —
    // the simulation terminated, which is the regression being
    // pinned (a stale-generation wakeup would either stall the pass
    // or scrub forever).
    EXPECT_EQ(array.scrubPassesCompleted(), 1u);
    EXPECT_GT(array.scrubPagesScanned(), 0u);
    EXPECT_EQ(array.scrubUncorrectableFound(), 0u);

    std::uint64_t q = ds.querySync(src->featureAt(7), 4, model, db,
                                   0, 0);
    EXPECT_EQ(ds.getResults(q).outcome, QueryOutcome::Success);

    std::ostringstream os;
    ds.dumpStats(os);
    EXPECT_NE(os.str().find("array.scrub.pagesScanned"),
              std::string::npos);
    EXPECT_NE(os.str().find("array.scrub.passes"),
              std::string::npos);
}

TEST(ArrayScrub, FindsAndRepairsLatentPartialPageCorruption)
{
    ssd::FlashParams flawed0;
    flawed0.faults.seed = 11;
    flawed0.faults.partialPageCorruptionProbability = 0.02;
    flawed0.faults.sectorsPerPage = 8;
    ssd::FlashParams flawed1 = flawed0;
    flawed1.faults.seed = 22; // independent damage per drive

    DeepStoreConfig cfg;
    cfg.array.nodes = {flawed0, flawed1};
    cfg.array.replication = 2;
    cfg.array.scrub.enabled = true;
    cfg.array.scrub.startDelaySeconds = 20e-3; // after ingest
    cfg.array.repair.enabled = true;
    DeepStore ds(cfg);

    // ~31 pages per replica at ~15% per-page damage: the pass must
    // surface several latent uncorrectables.
    ds.writeDB(randomDb(64, 2000, 61));
    drainAll(ds); // scrub pass + page rewrites run to completion

    const auto &array = ds.array();
    EXPECT_EQ(array.scrubPassesCompleted(), 1u);
    EXPECT_GT(array.scrubPagesScanned(), 0u);
    EXPECT_GT(array.scrubUncorrectableFound(), 0u);
    // Every found page had an alive replica to rewrite from.
    EXPECT_GT(array.scrubLatentRepaired(), 0u);
    EXPECT_LE(array.scrubLatentRepaired(),
              array.scrubUncorrectableFound());

    std::ostringstream os;
    ds.dumpStats(os);
    EXPECT_NE(os.str().find("array.scrub.uncorrectableFound"),
              std::string::npos);
    EXPECT_NE(os.str().find("array.scrub.latentRepaired"),
              std::string::npos);
}

} // namespace
} // namespace deepstore::core
