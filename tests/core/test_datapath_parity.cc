/**
 * @file
 * Cross-validation of the event-native accelerator datapath (ctest
 * label `parity`): the live engine, the standalone AccelPipeline, and
 * the closed-form DeepStoreModel must agree on the same machine.
 *
 *  - tick-for-tick: a one-channel live scan is the *same machine* as
 *    a standalone AccelPipeline run — equality, not a tolerance band
 *    (the only difference, the scheduler's scheduled top-K reduce
 *    gather, is subtracted exactly);
 *  - contention: scans physically share channels with host I/O, and
 *    only the shared channel pays;
 *  - analytic parity: a lone steady-state query matches the analytic
 *    aggregateSeconds within 2% at all three placement levels, in
 *    flash-bound, compute-bound, and weight-bandwidth-bound
 *    geometries — the burst-refill exposure, the bounded-FIFO
 *    backpressure, and the per-slot weight re-streaming must *emerge*
 *    from the event datapath, not be added as formulas;
 *  - determinism: the backpressure-coupled datapath is a pure
 *    function of its seeds (16-seed sweep, bit-identical ticks and
 *    contention counters on a rebuilt engine).
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/accel_pipeline.h"
#include "core/deepstore.h"
#include "core/query_model.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

/** Pair combiner + `layers` square FC layers: compute-heavy, fully
 *  resident at dim 512 (3 MiB of weights). */
nn::ModelBundle
mlpModel(std::int64_t dim, int layers)
{
    nn::Model m("mlp-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("fuse", nn::EwOp::Multiply,
                                      dim));
    for (int i = 0; i < layers; ++i)
        m.addLayer(nn::Layer::fc("fc" + std::to_string(i), dim, dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

/** One fat FC (dim x out): ~9.8 MiB of weights at 4096x600 —
 *  overflows the channel level's resident window, so the excess
 *  re-streams over the shared DRAM link every lockstep slot. */
nn::ModelBundle
fatModel(std::int64_t dim, std::int64_t out)
{
    nn::Model m("fat-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("fuse", nn::EwOp::Multiply,
                                      dim));
    m.addLayer(nn::Layer::fc("fc", dim, out));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

// ---- live engine vs standalone pipeline --------------------------

TEST(UnifiedDatapath, LiveScanMatchesStandalonePipelineTickForTick)
{
    // On a one-channel SSD a single-resident channel-level scan and
    // the standalone AccelPipeline run are the same machine: same
    // page addresses (Geometry::decode degenerates to the pipeline's
    // round-robin layout), same DFV burst stream, same compute
    // arbiter. Latency must agree tick for tick — not approximately.
    // The live path's one extra scheduled event, the top-K reduce
    // gather over the DRAM link, is subtracted exactly.
    ssd::FlashParams flash;
    flash.channels = 1;
    DeepStoreConfig cfg;
    cfg.flash = flash;
    DeepStore ds(cfg);

    const std::int64_t dim = 4096; // 16 KiB: one feature per page
    const std::uint64_t features = 96; // 3 full bursts of 32 pages
    auto src = randomDb(dim, features, 11);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));

    LevelPerf perf = ds.model().evaluateModel(
        Level::ChannelLevel, dotModel(dim).model,
        ds.databaseInfo(db).featureBytes);
    ASSERT_TRUE(perf.supported);

    std::uint64_t qid = ds.querySync(src->featureAt(2), 4, model, db,
                                     0, 0, Level::ChannelLevel);
    const QueryRunStats rs = ds.scheduler().runStats(qid);
    EXPECT_GT(rs.reduceTicks, 0u);
    const Tick live_ticks = ds.scheduler().completeTick(qid) -
                            ds.scheduler().submitTick(qid) -
                            rs.reduceTicks;

    // The same scan on a standalone controller and private queue.
    sim::EventQueue events;
    StatGroup stats{"xval"};
    ssd::FlashController channel(events, flash, 0, stats);
    PipelineRunConfig pcfg;
    pcfg.features = features;
    pcfg.featureBytes = ds.databaseInfo(db).featureBytes;
    for (const auto &b : perf.slots.bursts)
        pcfg.layerCycles.push_back(b.computeCycles);
    pcfg.frequencyHz = perf.placement.array.frequencyHz;
    pcfg.queueDepthPages = perf.placement.dfvQueueDepthPages;
    PipelineRunStats st =
        runAcceleratorPipeline(events, channel, flash, pcfg);

    EXPECT_EQ(st.featuresProcessed, features);
    EXPECT_EQ(st.pageReads, features); // full-page features
    EXPECT_DOUBLE_EQ(ticksToSeconds(live_ticks), st.totalSeconds);
    EXPECT_DOUBLE_EQ(ds.getResults(qid).latencySeconds -
                         ticksToSeconds(rs.reduceTicks),
                     st.totalSeconds);
}

// ---- physical contention -----------------------------------------

/** Contention rig: a two-channel SSD with a two-page database (LPN 0
 *  on channel 0, LPN 1 on channel 1 under channel-major striping).
 *  Runs a channel-level scan of page 0 submitted at a fixed tick,
 *  optionally behind a host-read storm of `storm_reads` back-to-back
 *  reads of `storm_lpn` issued at tick 0. Returns the query latency
 *  in seconds. */
double
scanLatencyUnderStorm(std::optional<std::uint64_t> storm_lpn,
                      int storm_reads)
{
    ssd::FlashParams flash;
    flash.channels = 2;
    DeepStoreConfig cfg;
    cfg.flash = flash;
    DeepStore ds(cfg);

    const std::int64_t dim = 32; // 128 B: 128 features per page
    const std::uint64_t fpp = flash.pageBytes / (dim * 4);
    auto src = randomDb(dim, 2 * fpp, 12);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));

    if (storm_lpn) {
        for (int i = 0; i < storm_reads; ++i)
            ds.ssd().hostRead(*storm_lpn, 1, [](Tick) {});
    }
    // Submit the query a little into the storm so its first flash
    // read queues behind in-flight host reads (if any share its
    // channel) instead of racing them at tick zero.
    std::uint64_t qid = 0;
    ds.events().scheduleAfter(secondsToTicks(10e-6), [&] {
        qid = ds.query(src->featureAt(0), 4, model, db, 0, fpp,
                       Level::ChannelLevel);
    });
    while (ds.step()) {
    }
    EXPECT_NE(qid, 0u);
    EXPECT_EQ(ds.poll(qid), QueryState::Complete);
    return ds.getResults(qid).latencySeconds;
}

TEST(UnifiedDatapath, ScanContendsWithHostReadsOnSharedChannelOnly)
{
    // The scan's pages live on channel 0. A host-read storm on the
    // same channel must strictly delay it (shared planes and channel
    // bus); an equally sized storm on channel 1 must leave its
    // latency tick-identical to an idle SSD.
    const double idle = scanLatencyUnderStorm(std::nullopt, 0);
    const double shared = scanLatencyUnderStorm(0, 12);
    const double disjoint = scanLatencyUnderStorm(1, 12);

    EXPECT_GT(shared, idle);
    EXPECT_DOUBLE_EQ(disjoint, idle);
}

// ---- analytic parity ---------------------------------------------

TEST(AnalyticParity, FlashBoundQueryMatchesModelAtAllLevels)
{
    // A lone steady-state query must reproduce the analytic model's
    // prediction. The live path's flash term is physical (bursts of
    // real page reads against the FlashControllers), so the analytic
    // burst-refill exposure term must *emerge* from the stream's
    // refill barrier rather than being added as a formula. Full-page
    // features and 8 full bursts per channel put the run in steady
    // state; all three levels must agree within 2%. The chip level's
    // closed form charges ceil(wsGroupSize / featuresPerPage) page
    // reads per lockstep slot — the physical floor of one plane read
    // per page that the live path pays; and the refill exposure term
    // credits the one stagger interval the chip path's page-buffer
    // consumption hides. The closed form is steady-state, so each
    // accelerator unit must see enough burst refills that the one
    // refill exposure the live pipeline hides at the tail (a
    // finite-scan effect, ~readLatency per unit) stays inside the
    // band: 256 pages per channel for SSD/channel, and 512 pages per
    // *chip* unit (128 units) for the chip level.
    const std::int64_t dim = 4096; // 16 KiB: 1 feature/page
    for (Level level :
         {Level::SsdLevel, Level::ChannelLevel, Level::ChipLevel}) {
        const std::uint64_t features =
            level == Level::ChipLevel ? 65536 : 8192;
        DeepStore ds{DeepStoreConfig{}};
        auto src = randomDb(dim, features, 3);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(dim));

        LevelPerf perf = ds.model().evaluateModel(
            level, dotModel(dim).model,
            ds.databaseInfo(db).featureBytes);
        ASSERT_TRUE(perf.supported);
        double expected =
            perf.aggregateSeconds * static_cast<double>(features);

        std::uint64_t qid = ds.querySync(src->featureAt(1), 5, model,
                                         db, 0, 0, level);
        double got = ds.getResults(qid).latencySeconds;
        const double tol = 0.02;
        EXPECT_NEAR(got, expected, expected * tol)
            << "level " << toString(level);
    }
}

TEST(AnalyticParity, ComputeBoundQueryMatchesModelWithBackpressure)
{
    // Three resident 512x512 FC layers make compute ~7x the flash
    // leg at the channel level. The live total must track the
    // analytic compute leg (the burst-refill exposure must NOT
    // surface: the bounded feature FIFO keeps the FLASH_DFV a burst
    // ahead of the array, so refills hide behind compute), and the
    // throttled stream must record real, surfaced backpressure.
    const std::int64_t dim = 512;
    const std::uint64_t features = 16384;
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(dim, features, 5);
    std::uint64_t db = ds.writeDB(src);
    auto bundle = mlpModel(dim, 3);
    std::uint64_t model = ds.loadModel(bundle);

    LevelPerf perf = ds.model().evaluateModel(
        Level::ChannelLevel, bundle.model,
        ds.databaseInfo(db).featureBytes);
    ASSERT_TRUE(perf.supported);
    // The geometry really is compute-bound with resident weights.
    ASSERT_GT(perf.computeSeconds, 3.0 * perf.flashSeconds);
    ASSERT_EQ(perf.excessWeightBytesPerSlot, 0u);
    ASSERT_DOUBLE_EQ(perf.perAccelSeconds, perf.computeSeconds);

    double expected =
        perf.aggregateSeconds * static_cast<double>(features);
    std::uint64_t qid = ds.querySync(src->featureAt(1), 5, model, db,
                                     0, 0, Level::ChannelLevel);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_NEAR(res.latencySeconds, expected, expected * 0.02);
    // Flash waited on compute: the bounded FIFO pushed back.
    EXPECT_GT(res.backpressureSeconds, 0.0);
}

TEST(AnalyticParity, WeightBoundQueryMatchesModelWithWeightStalls)
{
    // A 4096x600 FC (~9.8 MiB) overflows the channel level's
    // resident weight window (shared L2 minus the feature staging
    // reserve), so ~1.8 MiB re-streams over the shared DRAM link
    // every lockstep slot and the weight leg dominates both compute
    // and flash. The live path must reproduce the analytic weight
    // leg through WeightStream reservations on the DRAM
    // BandwidthLink — first requester pays, broadcast co-subscribers
    // ride — and the stalls must surface in the query's contention
    // counters.
    const std::int64_t dim = 4096;
    const std::uint64_t features = 4096;
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(dim, features, 7);
    std::uint64_t db = ds.writeDB(src);
    auto bundle = fatModel(dim, 600);
    std::uint64_t model = ds.loadModel(bundle);

    LevelPerf perf = ds.model().evaluateModel(
        Level::ChannelLevel, bundle.model,
        ds.databaseInfo(db).featureBytes);
    ASSERT_TRUE(perf.supported);
    ASSERT_GT(perf.excessWeightBytesPerSlot, 0u);
    ASSERT_GT(perf.weightStreamSeconds, perf.computeSeconds);
    ASSERT_GT(perf.weightStreamSeconds, perf.flashSeconds);

    double expected =
        perf.aggregateSeconds * static_cast<double>(features);
    std::uint64_t qid = ds.querySync(src->featureAt(1), 5, model, db,
                                     0, 0, Level::ChannelLevel);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_NEAR(res.latencySeconds, expected, expected * 0.02);
    // Compute sat waiting on the slot weight feed.
    EXPECT_GT(res.computeStallSeconds, 0.0);
}

// ---- determinism under backpressure ------------------------------

/** One compute-bound query on a fresh engine; returns the complete
 *  tick and the contention counters. The geometry must actually fill
 *  the bounded station FIFO: at dim 512 a page holds 8 features, so
 *  the 32-page DFV queue stages up to 256 features per accelerator,
 *  and 9216 features (288 per channel unit) push past that while the
 *  3-layer square MLP (3 MiB of weights, resident in L2) keeps the
 *  run compute-bound rather than weight-bound. */
struct SweepRun
{
    Tick completeTick = 0;
    Tick computeStallTicks = 0;
    Tick backpressureTicks = 0;
    Tick reduceTicks = 0;
};

SweepRun
sweepRun(std::uint64_t seed)
{
    const std::int64_t dim = 512;
    const std::uint64_t features = 9216;
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(dim, features, seed);
    std::uint64_t db = ds.writeDB(src);
    auto bundle = mlpModel(dim, 3);
    std::uint64_t model = ds.loadModel(bundle);
    std::uint64_t qid = ds.querySync(src->featureAt(seed % features),
                                     5, model, db, 0, 0,
                                     Level::ChannelLevel);
    QueryRunStats rs = ds.scheduler().runStats(qid);
    return {ds.scheduler().completeTick(qid), rs.computeStallTicks,
            rs.backpressureTicks, rs.reduceTicks};
}

TEST(BackpressureDeterminism, SixteenSeedSweepIsBitIdentical)
{
    // The backpressure-coupled datapath (burst barrier + bounded
    // FIFO + shared DRAM/NoC links) must be a pure function of its
    // seeds: rebuilding the engine and rerunning the same seed gives
    // bit-identical completion ticks and contention counters, for
    // every seed in the sweep.
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        SweepRun a = sweepRun(seed);
        SweepRun b = sweepRun(seed);
        EXPECT_EQ(a.completeTick, b.completeTick) << "seed " << seed;
        EXPECT_EQ(a.computeStallTicks, b.computeStallTicks)
            << "seed " << seed;
        EXPECT_EQ(a.backpressureTicks, b.backpressureTicks)
            << "seed " << seed;
        EXPECT_EQ(a.reduceTicks, b.reduceTicks) << "seed " << seed;
        // The compute-bound geometry exerts real backpressure in
        // every run — the determinism claim covers the interesting
        // (contended) path, not an idle one.
        EXPECT_GT(a.backpressureTicks, 0u) << "seed " << seed;
    }
}

} // namespace
} // namespace deepstore::core
