/**
 * @file
 * Fault injection & graceful degradation across the unified datapath:
 *
 *  - tick-identity regression: with an empty fault schedule the
 *    engine reproduces pre-fault-subsystem golden completion ticks
 *    exactly (the "injection disabled == fault-free build" contract);
 *  - deterministic degradation: a seeded schedule yields the same
 *    coverageFraction and the same stats dump on every run, while the
 *    identical no-fault run returns full coverage;
 *  - the shard recovery machine: unit deaths re-stripe onto siblings
 *    (full coverage via re-reads), watchdogs snatch slow shards,
 *    retry budgets bound the recovery;
 *  - deadlines, cancellation, tryGetResults, and the NVMe vendor
 *    statuses for degraded completions.
 */

#include <algorithm>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"
#include "core/nvme_front.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

/** One full run under `cfg`: writeDB + loadModel + one sync query.
 *  Returns the query id; `ds` is left drained. */
struct RunResult
{
    double coverage = 0.0;
    QueryOutcome outcome = QueryOutcome::Success;
    Tick completeTick = 0;
    std::uint64_t featuresScanned = 0;
    std::size_t topK = 0;
    std::string stats;
};

RunResult
runOne(const DeepStoreConfig &cfg, std::int64_t dim,
       std::uint64_t features, std::uint64_t db_seed)
{
    DeepStore ds(cfg);
    auto src = randomDb(dim, features, db_seed);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));
    std::uint64_t qid =
        ds.querySync(src->featureAt(1), 4, model, db, 0, 0);
    const QueryResult &res = ds.getResults(qid);
    RunResult r;
    r.coverage = res.coverageFraction;
    r.outcome = res.outcome;
    r.completeTick = ds.scheduler().completeTick(qid);
    r.featuresScanned = res.featuresScanned;
    r.topK = res.topK.size();
    std::ostringstream os;
    ds.dumpStats(os);
    r.stats = os.str();
    return r;
}

// ---- tick-identity regression ----------------------------------

TEST(FaultFree, TickIdenticalToGoldenPrePRRun)
{
    // Golden completion ticks re-pinned on the event-native
    // datapath (scheduled QC probe + top-K reduce). An empty fault
    // schedule must reproduce them bit-exactly: the injection hooks
    // cost a branch, never a tick.
    {
        DeepStore ds{DeepStoreConfig{}};
        auto src = randomDb(32, 500, 42);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(32));
        auto q = randomDb(32, 1, 99)->featureAt(0);
        std::uint64_t qid = ds.querySync(q, 4, model, db, 0, 0);
        EXPECT_EQ(ds.scheduler().submitTick(qid), 522480000u);
        EXPECT_EQ(ds.scheduler().completeTick(qid), 598859200u);
        EXPECT_EQ(ds.getResults(qid).outcome, QueryOutcome::Success);
        EXPECT_DOUBLE_EQ(ds.getResults(qid).coverageFraction, 1.0);
    }
    {
        DeepStore ds{DeepStoreConfig{}};
        auto src = randomDb(64, 900, 7);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(64));
        std::uint64_t a =
            ds.query(randomDb(64, 1, 101)->featureAt(0), 4, model,
                     db, 0, 0, Level::ChannelLevel);
        std::uint64_t b =
            ds.query(randomDb(64, 1, 102)->featureAt(0), 4, model,
                     db, 0, 0, Level::ChipLevel);
        std::uint64_t c =
            ds.query(randomDb(64, 1, 103)->featureAt(0), 4, model,
                     db, 0, 0, Level::SsdLevel);
        ds.drain();
        EXPECT_EQ(ds.scheduler().completeTick(a), 597632000u);
        EXPECT_EQ(ds.scheduler().completeTick(b), 631752000u);
        EXPECT_EQ(ds.scheduler().completeTick(c), 740214800u);
        EXPECT_EQ(ds.events().now(), 740214800u);
    }
}

// ---- deterministic degradation (the acceptance criterion) -------

TEST(Degradation, SeededFaultsDegradeCoverageDeterministically)
{
    const std::int64_t dim = 32;
    const std::uint64_t features = 2000; // 16 pages, 16 channels

    DeepStoreConfig fault_cfg;
    fault_cfg.flash.faults.seed = 2024;
    fault_cfg.flash.faults.uncorrectableReadProbability = 0.4;
    fault_cfg.maxPageRetries = 0; // failures are permanent

    RunResult f1 = runOne(fault_cfg, dim, features, 11);
    RunResult f2 = runOne(fault_cfg, dim, features, 11);

    // Degraded, with partial-but-nonzero coverage.
    EXPECT_EQ(f1.outcome, QueryOutcome::Degraded);
    EXPECT_LT(f1.coverage, 1.0);
    EXPECT_GT(f1.coverage, 0.0);
    EXPECT_LT(f1.featuresScanned, features);
    EXPECT_GT(f1.topK, 0u);

    // Bit-identical replay: coverage, ticks, and the whole stats
    // dump (sched.* and dfv.* fault counters included).
    EXPECT_DOUBLE_EQ(f1.coverage, f2.coverage);
    EXPECT_EQ(f1.completeTick, f2.completeTick);
    EXPECT_EQ(f1.stats, f2.stats);
    EXPECT_NE(f1.stats.find("dfv.pagesFailed"), std::string::npos);

    // The identical run without the schedule returns full coverage.
    RunResult clean = runOne(DeepStoreConfig{}, dim, features, 11);
    EXPECT_EQ(clean.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(clean.coverage, 1.0);
    EXPECT_EQ(clean.featuresScanned, features);

    // A different seed yields a different (still deterministic)
    // degradation pattern.
    DeepStoreConfig other = fault_cfg;
    other.flash.faults.seed = 2025;
    RunResult f3 = runOne(other, dim, features, 11);
    EXPECT_NE(f3.coverage, f1.coverage);
}

TEST(Degradation, PageRetriesRecoverTransientFaults)
{
    // Per-attempt re-rolls: with a retry budget most transiently
    // uncorrectable pages recover, so coverage improves (strictly)
    // over the no-retry run and retry work shows up in the stats.
    const std::int64_t dim = 32;
    const std::uint64_t features = 2000;

    DeepStoreConfig no_retry;
    no_retry.flash.faults.seed = 5;
    no_retry.flash.faults.uncorrectableReadProbability = 0.4;
    no_retry.maxPageRetries = 0;

    DeepStoreConfig with_retry = no_retry;
    with_retry.maxPageRetries = 4;

    RunResult a = runOne(no_retry, dim, features, 11);
    RunResult b = runOne(with_retry, dim, features, 11);
    EXPECT_GT(b.coverage, a.coverage);
    EXPECT_NE(b.stats.find("dfv.pageRetries"), std::string::npos);
}

TEST(Degradation, BlacklistedPageCostsExactlyItsFeatures)
{
    // Target one physical page: coverage drops by exactly that
    // page's feature payload. The page address is learned from a
    // probe run (the FTL mapping is deterministic).
    const std::int64_t dim = 32; // 128 features per 16 KiB page
    const std::uint64_t features = 2000;

    std::uint64_t key = 0;
    {
        DeepStore probe{DeepStoreConfig{}};
        std::uint64_t db = probe.writeDB(randomDb(dim, features, 11));
        key = ssd::faultKey(probe.ssd().physicalAddress(
            probe.databaseInfo(db).startLpn));
    }

    DeepStoreConfig cfg;
    cfg.flash.faults.pageBlacklist = {key};
    cfg.maxPageRetries = 2; // blacklisted pages fail every attempt
    RunResult r = runOne(cfg, dim, features, 11);
    EXPECT_EQ(r.outcome, QueryOutcome::Degraded);
    EXPECT_DOUBLE_EQ(r.coverage,
                     static_cast<double>(features - 128) /
                         static_cast<double>(features));
}

// ---- the shard recovery machine ---------------------------------

TEST(Recovery, UnitDeathRestripesOntoSiblingWithFullCoverage)
{
    // Kill channel-accelerator 0 mid-scan: its shard's remaining
    // range re-stripes onto an alive sibling, which re-reads the
    // remnant pages through the real flash path. The query still
    // reaches full coverage — slower, not smaller.
    const std::int64_t dim = 32;
    const std::uint64_t features = 500;

    RunResult clean = runOne(DeepStoreConfig{}, dim, features, 42);
    ASSERT_EQ(clean.outcome, QueryOutcome::Success);

    DeepStoreConfig cfg;
    cfg.flash.faults.unitFailures = {
        UnitFailure{static_cast<std::uint32_t>(Level::ChannelLevel),
                    0, 552480000}}; // 30 us after golden submit
    RunResult r1 = runOne(cfg, dim, features, 42);
    EXPECT_EQ(r1.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(r1.coverage, 1.0);
    EXPECT_GT(r1.completeTick, clean.completeTick);
    EXPECT_NE(r1.stats.find("sched.unitFailures"), std::string::npos);
    EXPECT_NE(r1.stats.find("sched.shardReassignments"),
              std::string::npos);

    // Deterministic replay of the recovery itself.
    RunResult r2 = runOne(cfg, dim, features, 42);
    EXPECT_EQ(r1.completeTick, r2.completeTick);
    EXPECT_EQ(r1.stats, r2.stats);
}

TEST(Recovery, ExhaustedRetryBudgetDegrades)
{
    // Same unit death, but no retry budget: the killed shard's
    // remainder is abandoned and the query terminates Degraded with
    // the surviving shards' coverage.
    DeepStoreConfig cfg;
    cfg.maxShardRetries = 0;
    cfg.flash.faults.unitFailures = {
        UnitFailure{static_cast<std::uint32_t>(Level::ChannelLevel),
                    0, 552480000}};
    RunResult r = runOne(cfg, 32, 500, 42);
    EXPECT_EQ(r.outcome, QueryOutcome::Degraded);
    EXPECT_LT(r.coverage, 1.0);
    EXPECT_NE(r.stats.find("sched.shardsLost"), std::string::npos);
}

TEST(Recovery, WatchdogSnatchesSlowShards)
{
    // A watchdog shorter than the first flash delivery snatches
    // every shard before it can make progress; after the retry
    // budget the query degrades. Every firing is deterministic.
    DeepStoreConfig cfg;
    cfg.shardWatchdogSeconds = 30e-6; // < 53 us array read
    cfg.maxShardRetries = 1;
    RunResult r1 = runOne(cfg, 32, 500, 42);
    EXPECT_EQ(r1.outcome, QueryOutcome::Degraded);
    EXPECT_LT(r1.coverage, 1.0);
    EXPECT_NE(r1.stats.find("sched.watchdogFires"),
              std::string::npos);
    RunResult r2 = runOne(cfg, 32, 500, 42);
    EXPECT_EQ(r1.completeTick, r2.completeTick);
    EXPECT_EQ(r1.stats, r2.stats);
}

// ---- deadlines & cancellation -----------------------------------

TEST(Deadline, FiresBeforeCompletionAndReportsPartialCoverage)
{
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(32, 500, 42);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    // The golden scan takes ~76 us; a 20 us deadline fires first.
    std::uint64_t qid = ds.query(src->featureAt(1), 4, model, db, 0,
                                 0, std::nullopt, 20e-6);
    ds.waitFor(qid);
    EXPECT_EQ(ds.poll(qid), QueryState::Degraded);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_EQ(res.outcome, QueryOutcome::DeadlineExceeded);
    EXPECT_LT(res.coverageFraction, 1.0);
    // Latency == the deadline, by definition of the terminal tick.
    EXPECT_NEAR(res.latencySeconds, 20e-6, 1e-12);

    // A generous deadline never fires.
    std::uint64_t ok = ds.query(src->featureAt(2), 4, model, db, 0,
                                0, std::nullopt, 1.0);
    ds.waitFor(ok);
    EXPECT_EQ(ds.getResults(ok).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(ok).coverageFraction, 1.0);
}

TEST(Cancel, AbortsInFlightAndLeavesPeerTickIdentical)
{
    // Baseline: query A alone.
    Tick baseline = 0;
    {
        DeepStore ds{DeepStoreConfig{}};
        auto src = randomDb(32, 500, 42);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(32));
        std::uint64_t a =
            ds.querySync(src->featureAt(1), 4, model, db, 0, 0);
        baseline = ds.scheduler().completeTick(a);
    }
    // A plus a cancelled B: A's completion tick must not move at
    // all — cancellation detaches B before it touches the shared
    // datapath state A depends on.
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(32, 500, 42);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t a = ds.query(src->featureAt(1), 4, model, db, 0, 0);
    std::uint64_t b = ds.query(src->featureAt(3), 4, model, db, 0, 0);
    EXPECT_TRUE(ds.cancel(b));
    EXPECT_EQ(ds.poll(b), QueryState::Degraded);
    ds.drain();
    EXPECT_EQ(ds.scheduler().completeTick(a), baseline);
    EXPECT_EQ(ds.getResults(a).outcome, QueryOutcome::Success);

    const QueryResult &rb = ds.getResults(b);
    EXPECT_EQ(rb.outcome, QueryOutcome::Aborted);
    EXPECT_DOUBLE_EQ(rb.coverageFraction, 0.0);
    EXPECT_EQ(rb.topK.size(), 0u);

    // Cancel is single-shot and id-checked.
    EXPECT_FALSE(ds.cancel(b));   // already terminal
    EXPECT_FALSE(ds.cancel(a));   // already complete
    EXPECT_FALSE(ds.cancel(777)); // unknown
}

TEST(Cancel, PeerDegradationDoesNotCorruptSurvivor)
{
    // B (chip level) loses its units with no retry budget and
    // degrades; A (channel level) still completes with full
    // coverage and correct results.
    DeepStoreConfig cfg;
    cfg.maxShardRetries = 0;
    for (std::uint32_t chip = 0; chip < 128; ++chip)
        cfg.flash.faults.unitFailures.push_back(UnitFailure{
            static_cast<std::uint32_t>(Level::ChipLevel), chip,
            560000000});
    DeepStore ds(cfg);
    auto src = randomDb(32, 500, 42);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t a = ds.query(src->featureAt(1), 4, model, db, 0, 0,
                               Level::ChannelLevel);
    std::uint64_t b = ds.query(src->featureAt(3), 4, model, db, 0, 0,
                               Level::ChipLevel);
    ds.drain();
    EXPECT_EQ(ds.getResults(a).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(a).coverageFraction, 1.0);
    EXPECT_EQ(ds.getResults(a).topK.size(), 4u);
    EXPECT_EQ(ds.getResults(b).outcome, QueryOutcome::Degraded);
    EXPECT_LT(ds.getResults(b).coverageFraction, 1.0);
}

// ---- tryGetResults & NVMe statuses ------------------------------

TEST(TryGetResults, TypedRetryableOutcome)
{
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(16, 60, 2);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::uint64_t qid =
        ds.query(src->featureAt(0), 3, model, db, 0, 0);

    FetchResult fr = ds.tryGetResults(qid);
    EXPECT_EQ(fr.status, FetchStatus::InFlight);
    EXPECT_EQ(fr.result, nullptr);
    EXPECT_EQ(ds.tryGetResults(777).status, FetchStatus::Unknown);

    ds.waitFor(qid);
    fr = ds.tryGetResults(qid);
    ASSERT_EQ(fr.status, FetchStatus::Ready);
    ASSERT_NE(fr.result, nullptr);
    EXPECT_EQ(fr.result->topK.size(), 3u);

    // getResults stays fatal for in-flight/unknown ids (the
    // non-retryable strict path).
    EXPECT_THROW(ds.getResults(777), FatalError);
}

TEST(NvmeFault, DegradedStatusesSurfaceOnTheWire)
{
    DeepStoreConfig cfg;
    DeepStore store(cfg);
    NvmeFrontEnd nvme(store, 16);
    auto src = randomDb(16, 200, 3);
    std::uint64_t db = store.writeDB(src);
    std::uint64_t model = store.loadModel(dotModel(16));

    // Deadline in cdw5's high 32 bits (microseconds): 20 us fires
    // before the ~76 us scan -> DeadlineExceeded on the wire.
    NvmeCommand q;
    q.opcode = NvmeOpcode::Query;
    q.cid = 1;
    q.prp = nvme.buffers().add(src->featureAt(0));
    q.cdw[0] = 3;
    q.cdw[1] = model;
    q.cdw[2] = db;
    q.cdw[5] = (20ull << 32); // level = engine default, deadline 20us
    ASSERT_TRUE(nvme.submit(q));
    nvme.process();
    ASSERT_TRUE(nvme.pump());
    auto done = nvme.pollCompletion();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->status, NvmeStatus::DeadlineExceeded);

    // GetResults on the degraded query: DegradedSuccess-class
    // status (not an error, not InProgress), partial payload.
    NvmeCommand g;
    g.opcode = NvmeOpcode::GetResults;
    g.cid = 2;
    g.prp = nvme.buffers().add({});
    g.cdw[0] = done->result;
    ASSERT_TRUE(nvme.submit(g));
    nvme.process();
    auto gdone = nvme.pollCompletion();
    ASSERT_TRUE(gdone.has_value());
    EXPECT_EQ(gdone->status, NvmeStatus::DeadlineExceeded);

    // AbortQuery: submit, abort, completion posts Aborted.
    NvmeCommand q2 = q;
    q2.cid = 3;
    q2.cdw[5] = 0; // no deadline
    q2.prp = nvme.buffers().add(src->featureAt(1));
    ASSERT_TRUE(nvme.submit(q2));
    nvme.process();
    auto qid2 = nvme.queryIdForCid(3);
    ASSERT_TRUE(qid2.has_value());

    NvmeCommand abort;
    abort.opcode = NvmeOpcode::AbortQuery;
    abort.cid = 4;
    abort.cdw[0] = *qid2;
    ASSERT_TRUE(nvme.submit(abort));
    nvme.process();
    // Both the abort ack and the query completion are in the queue.
    bool saw_abort_ack = false, saw_aborted_query = false;
    while (auto c = nvme.pollCompletion()) {
        if (c->cid == 4) {
            saw_abort_ack = true;
            EXPECT_EQ(c->status, NvmeStatus::Success);
        }
        if (c->cid == 3) {
            saw_aborted_query = true;
            EXPECT_EQ(c->status, NvmeStatus::Aborted);
        }
    }
    EXPECT_TRUE(saw_abort_ack);
    EXPECT_TRUE(saw_aborted_query);

    // Aborting an unknown query id is an InvalidField error.
    NvmeCommand bad = abort;
    bad.cid = 5;
    bad.cdw[0] = 424242;
    ASSERT_TRUE(nvme.submit(bad));
    nvme.process();
    auto bdone = nvme.pollCompletion();
    ASSERT_TRUE(bdone.has_value());
    EXPECT_EQ(bdone->status, NvmeStatus::InvalidField);
}

// ---- GC-active golden replay ------------------------------------

namespace {

/** Tiny geometry so superblock churn fits in the event simulator:
 *  4ch x 2chip x 2plane x 8blocks x 4pages -> 64-page superblocks,
 *  8 superblocks, 512 pages total. */
ssd::FlashParams
tinyFlash()
{
    ssd::FlashParams p;
    p.channels = 4;
    p.chipsPerChannel = 2;
    p.planesPerChip = 2;
    p.blocksPerPlane = 8;
    p.pagesPerBlock = 4;
    return p;
}

double
counter(const std::string &stats, const std::string &name)
{
    auto pos = stats.find(name);
    if (pos == std::string::npos)
        return -1.0;
    pos = stats.find('=', pos);
    return std::stod(stats.substr(pos + 1));
}

} // namespace

TEST(FaultFree, GcActiveGoldenReplay)
{
    // A mixed ingest+query workload that churns the FTL — overwrite
    // migrations, a trim-erase, an appendDB grow, and two metadata
    // persists — while two queries scan and a third lands mid-churn.
    // With injection disabled and wear thresholds at defaults, the
    // lifecycle machinery must reproduce these ticks bit-exactly
    // (captured on the pre-lifecycle tree).
    DeepStoreConfig cfg;
    cfg.flash = tinyFlash();
    DeepStore ds(cfg);

    auto db1src = randomDb(32, 3000, 42); // 24 pages, LPN 0..23
    std::uint64_t db1 = ds.writeDB(db1src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    ds.persistMetadata(); // reserved LPN 448 (superblock 7)

    std::uint64_t q1 = ds.query(db1src->featureAt(1), 4, model, db1,
                                0, 1500, Level::ChannelLevel);
    std::uint64_t q2 = ds.query(db1src->featureAt(7), 4, model, db1,
                                1500, 3000, Level::ChipLevel);

    // Ingest while both queries are in flight: a second database...
    auto db2src = randomDb(32, 2000, 7); // 16 pages, LPN 24..39
    std::uint64_t db2 = ds.writeDB(db2src);

    // ...then two raw host-write passes over superblock 1. The first
    // fills it; the second overwrites every page, forcing 64
    // read-modify-write migrations (63 pages each) and 64 erases.
    for (int pass = 0; pass < 2; ++pass) {
        bool done = false;
        ds.ssd().hostWrite(64, 64, [&](Tick) { done = true; });
        while (!done)
            ASSERT_TRUE(ds.step());
    }

    // Trim the now-redundant superblock: fully invalid, so the FTL
    // frees it and the SSD issues real block erases on every plane.
    {
        bool done = false;
        ds.ssd().hostTrim(64, 64, [&](Tick) { done = true; });
        while (!done)
            ASSERT_TRUE(ds.step());
    }

    // Grow db2 in place (2000 -> 2500 features, 4 new pages) and
    // query it while the metadata table is being re-persisted.
    ds.appendDB(db2, randomDb(32, 500, 8));
    std::uint64_t q3 = ds.query(db2src->featureAt(3), 4, model, db2,
                                0, 0, Level::SsdLevel);
    ds.persistMetadata(); // trims + rewrites the reserved block
    ds.drain();

    EXPECT_EQ(ds.getResults(q1).outcome, QueryOutcome::Success);
    EXPECT_EQ(ds.getResults(q2).outcome, QueryOutcome::Success);
    EXPECT_EQ(ds.getResults(q3).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(q3).coverageFraction, 1.0);

    std::ostringstream os;
    ds.dumpStats(os);
    std::string stats = os.str();

    // FTL churn actually happened (this is what makes the pin cover
    // the GC paths, not just the scan path).
    EXPECT_EQ(counter(stats, "ftl.migratedPages"), 4032.0);
    EXPECT_EQ(counter(stats, "ftl.superblockErases"), 66.0);
    EXPECT_EQ(counter(stats, "flash.blockErases"), 16.0);

    // Golden ticks (re-pinned on the event-native datapath).
    EXPECT_EQ(ds.scheduler().completeTick(q1), 2382739200u);
    EXPECT_EQ(ds.scheduler().completeTick(q2), 2363238400u);
    EXPECT_EQ(ds.scheduler().completeTick(q3), 11298489800u);
    EXPECT_EQ(ds.events().now(), 11298489800u);
}

// ---- power-loss recovery matrix ---------------------------------

namespace {

constexpr std::int64_t kPlDim = 32;
constexpr std::uint64_t kPlFeatures = 500;

/** The standard power-loss workload: one persisted database, a
 *  query-cache-enabled model, and one submitted query. */
struct PlRig
{
    std::unique_ptr<DeepStore> ds;
    std::shared_ptr<FeatureSource> src;
    std::uint64_t db = 0;
    std::uint64_t model = 0;
    std::uint64_t qid = 0;
};

PlRig
plSetup(const DeepStoreConfig &cfg)
{
    PlRig rig;
    rig.ds = std::make_unique<DeepStore>(cfg);
    rig.src = randomDb(kPlDim, kPlFeatures, 42);
    rig.db = rig.ds->writeDB(rig.src);
    rig.model = rig.ds->loadModel(dotModel(kPlDim));
    // A query cache gives the CacheProbe stage nonzero duration (the
    // cold cache always misses, so the scan still runs).
    rig.ds->setQC(rig.model, 0.5, 0.9, 8);
    rig.ds->persistMetadata();
    rig.qid = rig.ds->query(rig.src->featureAt(1), 4, rig.model,
                            rig.db, 0, 0);
    return rig;
}

/** Post-loss contract, asserted for every matrix cell: the lost
 *  query is terminal with honest coverage, the event queue drains,
 *  metadata matches the persisted table, and a fresh query runs at
 *  full coverage against the recovered mapping. */
void
assertRecovered(PlRig &rig, const char *cell)
{
    DeepStore &ds = *rig.ds;
    SCOPED_TRACE(cell);
    ASSERT_TRUE(ds.poll(rig.qid).has_value());
    EXPECT_TRUE(isTerminal(*ds.poll(rig.qid)));
    ds.drain(); // must terminate: no zombie events may survive
    EXPECT_EQ(ds.scheduler().inFlight(), 0u);

    const QueryResult &res = ds.getResults(rig.qid);
    EXPECT_EQ(res.outcome, QueryOutcome::PowerLoss);
    // Honest accounting: the reported fraction is exactly the
    // scanned/requested ratio at the instant the power died.
    EXPECT_NEAR(res.coverageFraction,
                static_cast<double>(res.featuresScanned) /
                    static_cast<double>(kPlFeatures),
                1e-12);
    EXPECT_LE(res.coverageFraction, 1.0);

    // Metadata was replayed from the reserved flash block.
    EXPECT_EQ(ds.databaseInfo(rig.db).numFeatures, kPlFeatures);

    // The device is alive after recovery.
    std::uint64_t q2 = ds.querySync(rig.src->featureAt(2), 4,
                                    rig.model, rig.db, 0, 0);
    EXPECT_EQ(ds.getResults(q2).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(q2).coverageFraction, 1.0);

    std::ostringstream os;
    ds.dumpStats(os);
    EXPECT_NE(os.str().find("powerLosses"), std::string::npos);
    EXPECT_NE(os.str().find("sched.powerLossKills"),
              std::string::npos);
}

} // namespace

TEST(PowerLoss, MatrixAcrossSchedulerStates)
{
    // Record which lifecycle states are observable at event
    // boundaries on the standard workload (determinism makes the
    // trajectory replayable cell by cell).
    std::vector<QueryState> observable;
    {
        PlRig rig = plSetup(DeepStoreConfig{});
        QueryState last = *rig.ds->poll(rig.qid);
        observable.push_back(last);
        while (!isTerminal(*rig.ds->poll(rig.qid))) {
            ASSERT_TRUE(rig.ds->step());
            QueryState s = *rig.ds->poll(rig.qid);
            if (s != last && !isTerminal(s))
                observable.push_back(s);
            last = s;
        }
    }
    auto seen = [&](QueryState s) {
        return std::find(observable.begin(), observable.end(), s) !=
               observable.end();
    };
    // The durable stages must all be visible. Parsed and Striped are
    // synchronous transients (submit() advances straight into
    // CacheProbe; striping schedules the scan in the same event) —
    // the post-submit cell below and the scheduled-tick sweep cover
    // those instants.
    EXPECT_TRUE(seen(QueryState::CacheProbe));
    EXPECT_TRUE(seen(QueryState::Scanning));
    EXPECT_TRUE(seen(QueryState::Reduce));

    // Cell 0: power dies immediately after submission, before any
    // event has run (the freshly-parsed query instant).
    {
        PlRig rig = plSetup(DeepStoreConfig{});
        rig.ds->powerLoss();
        assertRecovered(rig, "post-submit");
        EXPECT_DOUBLE_EQ(
            rig.ds->getResults(rig.qid).coverageFraction, 0.0);
    }

    // One loss cell per observable state: replay the trajectory to
    // the target state, cut the power there, assert recovery.
    for (QueryState target : observable) {
        PlRig rig = plSetup(DeepStoreConfig{});
        while (*rig.ds->poll(rig.qid) != target) {
            ASSERT_TRUE(rig.ds->step());
            ASSERT_FALSE(isTerminal(*rig.ds->poll(rig.qid)))
                << "state " << toString(target)
                << " vanished from the replayed trajectory";
        }
        rig.ds->powerLoss();
        assertRecovered(rig, toString(target));
    }
}

TEST(PowerLoss, ScheduledTickSweepKillsMidScanDeterministically)
{
    // The FaultConfig::powerLossAtTick domain: the loss fires from
    // inside the event loop (mid-drain), sweeping the whole
    // submit..complete interval so transient states are hit too.
    Tick submit = 0, complete = 0;
    {
        PlRig rig = plSetup(DeepStoreConfig{});
        rig.ds->drain();
        submit = rig.ds->scheduler().submitTick(rig.qid);
        complete = rig.ds->scheduler().completeTick(rig.qid);
        ASSERT_LT(submit, complete);
    }
    const Tick span = complete - submit;
    // Strictly inside (submit, complete): at exactly `submit` the
    // ctor-scheduled loss event would fire inside the setup's
    // persistMetadata stepping (same-tick FIFO ordering), i.e.
    // before the query exists — a different scenario than mid-query
    // loss.
    const Tick cells[] = {submit + 1, submit + span / 4,
                          submit + span / 2, submit + 3 * span / 4,
                          complete - 1};
    double prev_coverage = -1.0;
    bool coverage_moved = false;
    int partial_cells = 0;
    for (Tick loss_tick : cells) {
        DeepStoreConfig cfg;
        cfg.flash.faults.powerLossAtTick = loss_tick;
        PlRig rig = plSetup(cfg);
        rig.ds->drain(); // the scheduled event cuts the power
        assertRecovered(rig, "tick sweep");
        const QueryResult &res = rig.ds->getResults(rig.qid);
        // Power died strictly before completion, so the outcome is
        // PowerLoss — but the *coverage* may legitimately be 1.0
        // when the loss lands in the scheduled reduce/probe tail,
        // after the last feature was scanned. Honest accounting is
        // scanned/requested, not success/failure.
        EXPECT_LE(res.coverageFraction, 1.0);
        if (res.coverageFraction < 1.0)
            ++partial_cells;
        // The loss instant is the terminal tick.
        EXPECT_EQ(rig.ds->scheduler().completeTick(rig.qid),
                  loss_tick);
        if (prev_coverage >= 0.0 &&
            res.coverageFraction != prev_coverage)
            coverage_moved = true;
        EXPECT_GE(res.coverageFraction, prev_coverage)
            << "coverage must grow with later loss instants";
        prev_coverage = res.coverageFraction;
    }
    // Later losses credit more scanned features: the sweep is not
    // degenerate (all-zero coverage would hide a broken remnant
    // accounting), and at least one cell must land mid-scan with
    // genuinely partial coverage.
    EXPECT_TRUE(coverage_moved);
    EXPECT_GE(partial_cells, 1);
}

} // namespace
} // namespace deepstore::core
