/**
 * @file
 * Fault injection & graceful degradation across the unified datapath:
 *
 *  - tick-identity regression: with an empty fault schedule the
 *    engine reproduces pre-fault-subsystem golden completion ticks
 *    exactly (the "injection disabled == fault-free build" contract);
 *  - deterministic degradation: a seeded schedule yields the same
 *    coverageFraction and the same stats dump on every run, while the
 *    identical no-fault run returns full coverage;
 *  - the shard recovery machine: unit deaths re-stripe onto siblings
 *    (full coverage via re-reads), watchdogs snatch slow shards,
 *    retry budgets bound the recovery;
 *  - deadlines, cancellation, tryGetResults, and the NVMe vendor
 *    statuses for degraded completions.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"
#include "core/nvme_front.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

/** One full run under `cfg`: writeDB + loadModel + one sync query.
 *  Returns the query id; `ds` is left drained. */
struct RunResult
{
    double coverage = 0.0;
    QueryOutcome outcome = QueryOutcome::Success;
    Tick completeTick = 0;
    std::uint64_t featuresScanned = 0;
    std::size_t topK = 0;
    std::string stats;
};

RunResult
runOne(const DeepStoreConfig &cfg, std::int64_t dim,
       std::uint64_t features, std::uint64_t db_seed)
{
    DeepStore ds(cfg);
    auto src = randomDb(dim, features, db_seed);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));
    std::uint64_t qid =
        ds.querySync(src->featureAt(1), 4, model, db, 0, 0);
    const QueryResult &res = ds.getResults(qid);
    RunResult r;
    r.coverage = res.coverageFraction;
    r.outcome = res.outcome;
    r.completeTick = ds.scheduler().completeTick(qid);
    r.featuresScanned = res.featuresScanned;
    r.topK = res.topK.size();
    std::ostringstream os;
    ds.dumpStats(os);
    r.stats = os.str();
    return r;
}

// ---- tick-identity regression ----------------------------------

TEST(FaultFree, TickIdenticalToGoldenPrePRRun)
{
    // Golden completion ticks captured on the pre-fault-subsystem
    // tree. An empty fault schedule must reproduce them bit-exactly:
    // the injection hooks cost a branch, never a tick.
    {
        DeepStore ds{DeepStoreConfig{}};
        auto src = randomDb(32, 500, 42);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(32));
        auto q = randomDb(32, 1, 99)->featureAt(0);
        std::uint64_t qid = ds.querySync(q, 4, model, db, 0, 0);
        EXPECT_EQ(ds.scheduler().submitTick(qid), 522480000u);
        EXPECT_EQ(ds.scheduler().completeTick(qid), 598840000u);
        EXPECT_EQ(ds.getResults(qid).outcome, QueryOutcome::Success);
        EXPECT_DOUBLE_EQ(ds.getResults(qid).coverageFraction, 1.0);
    }
    {
        DeepStore ds{DeepStoreConfig{}};
        auto src = randomDb(64, 900, 7);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(64));
        std::uint64_t a =
            ds.query(randomDb(64, 1, 101)->featureAt(0), 4, model,
                     db, 0, 0, Level::ChannelLevel);
        std::uint64_t b =
            ds.query(randomDb(64, 1, 102)->featureAt(0), 4, model,
                     db, 0, 0, Level::ChipLevel);
        std::uint64_t c =
            ds.query(randomDb(64, 1, 103)->featureAt(0), 4, model,
                     db, 0, 0, Level::SsdLevel);
        ds.drain();
        EXPECT_EQ(ds.scheduler().completeTick(a), 597560000u);
        EXPECT_EQ(ds.scheduler().completeTick(b), 631680000u);
        EXPECT_EQ(ds.scheduler().completeTick(c), 740210000u);
        EXPECT_EQ(ds.events().now(), 740210000u);
    }
}

// ---- deterministic degradation (the acceptance criterion) -------

TEST(Degradation, SeededFaultsDegradeCoverageDeterministically)
{
    const std::int64_t dim = 32;
    const std::uint64_t features = 2000; // 16 pages, 16 channels

    DeepStoreConfig fault_cfg;
    fault_cfg.flash.faults.seed = 2024;
    fault_cfg.flash.faults.uncorrectableReadProbability = 0.4;
    fault_cfg.maxPageRetries = 0; // failures are permanent

    RunResult f1 = runOne(fault_cfg, dim, features, 11);
    RunResult f2 = runOne(fault_cfg, dim, features, 11);

    // Degraded, with partial-but-nonzero coverage.
    EXPECT_EQ(f1.outcome, QueryOutcome::Degraded);
    EXPECT_LT(f1.coverage, 1.0);
    EXPECT_GT(f1.coverage, 0.0);
    EXPECT_LT(f1.featuresScanned, features);
    EXPECT_GT(f1.topK, 0u);

    // Bit-identical replay: coverage, ticks, and the whole stats
    // dump (sched.* and dfv.* fault counters included).
    EXPECT_DOUBLE_EQ(f1.coverage, f2.coverage);
    EXPECT_EQ(f1.completeTick, f2.completeTick);
    EXPECT_EQ(f1.stats, f2.stats);
    EXPECT_NE(f1.stats.find("dfv.pagesFailed"), std::string::npos);

    // The identical run without the schedule returns full coverage.
    RunResult clean = runOne(DeepStoreConfig{}, dim, features, 11);
    EXPECT_EQ(clean.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(clean.coverage, 1.0);
    EXPECT_EQ(clean.featuresScanned, features);

    // A different seed yields a different (still deterministic)
    // degradation pattern.
    DeepStoreConfig other = fault_cfg;
    other.flash.faults.seed = 2025;
    RunResult f3 = runOne(other, dim, features, 11);
    EXPECT_NE(f3.coverage, f1.coverage);
}

TEST(Degradation, PageRetriesRecoverTransientFaults)
{
    // Per-attempt re-rolls: with a retry budget most transiently
    // uncorrectable pages recover, so coverage improves (strictly)
    // over the no-retry run and retry work shows up in the stats.
    const std::int64_t dim = 32;
    const std::uint64_t features = 2000;

    DeepStoreConfig no_retry;
    no_retry.flash.faults.seed = 5;
    no_retry.flash.faults.uncorrectableReadProbability = 0.4;
    no_retry.maxPageRetries = 0;

    DeepStoreConfig with_retry = no_retry;
    with_retry.maxPageRetries = 4;

    RunResult a = runOne(no_retry, dim, features, 11);
    RunResult b = runOne(with_retry, dim, features, 11);
    EXPECT_GT(b.coverage, a.coverage);
    EXPECT_NE(b.stats.find("dfv.pageRetries"), std::string::npos);
}

TEST(Degradation, BlacklistedPageCostsExactlyItsFeatures)
{
    // Target one physical page: coverage drops by exactly that
    // page's feature payload. The page address is learned from a
    // probe run (the FTL mapping is deterministic).
    const std::int64_t dim = 32; // 128 features per 16 KiB page
    const std::uint64_t features = 2000;

    std::uint64_t key = 0;
    {
        DeepStore probe{DeepStoreConfig{}};
        std::uint64_t db = probe.writeDB(randomDb(dim, features, 11));
        key = ssd::faultKey(probe.ssd().physicalAddress(
            probe.databaseInfo(db).startLpn));
    }

    DeepStoreConfig cfg;
    cfg.flash.faults.pageBlacklist = {key};
    cfg.maxPageRetries = 2; // blacklisted pages fail every attempt
    RunResult r = runOne(cfg, dim, features, 11);
    EXPECT_EQ(r.outcome, QueryOutcome::Degraded);
    EXPECT_DOUBLE_EQ(r.coverage,
                     static_cast<double>(features - 128) /
                         static_cast<double>(features));
}

// ---- the shard recovery machine ---------------------------------

TEST(Recovery, UnitDeathRestripesOntoSiblingWithFullCoverage)
{
    // Kill channel-accelerator 0 mid-scan: its shard's remaining
    // range re-stripes onto an alive sibling, which re-reads the
    // remnant pages through the real flash path. The query still
    // reaches full coverage — slower, not smaller.
    const std::int64_t dim = 32;
    const std::uint64_t features = 500;

    RunResult clean = runOne(DeepStoreConfig{}, dim, features, 42);
    ASSERT_EQ(clean.outcome, QueryOutcome::Success);

    DeepStoreConfig cfg;
    cfg.flash.faults.unitFailures = {
        UnitFailure{static_cast<std::uint32_t>(Level::ChannelLevel),
                    0, 552480000}}; // 30 us after golden submit
    RunResult r1 = runOne(cfg, dim, features, 42);
    EXPECT_EQ(r1.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(r1.coverage, 1.0);
    EXPECT_GT(r1.completeTick, clean.completeTick);
    EXPECT_NE(r1.stats.find("sched.unitFailures"), std::string::npos);
    EXPECT_NE(r1.stats.find("sched.shardReassignments"),
              std::string::npos);

    // Deterministic replay of the recovery itself.
    RunResult r2 = runOne(cfg, dim, features, 42);
    EXPECT_EQ(r1.completeTick, r2.completeTick);
    EXPECT_EQ(r1.stats, r2.stats);
}

TEST(Recovery, ExhaustedRetryBudgetDegrades)
{
    // Same unit death, but no retry budget: the killed shard's
    // remainder is abandoned and the query terminates Degraded with
    // the surviving shards' coverage.
    DeepStoreConfig cfg;
    cfg.maxShardRetries = 0;
    cfg.flash.faults.unitFailures = {
        UnitFailure{static_cast<std::uint32_t>(Level::ChannelLevel),
                    0, 552480000}};
    RunResult r = runOne(cfg, 32, 500, 42);
    EXPECT_EQ(r.outcome, QueryOutcome::Degraded);
    EXPECT_LT(r.coverage, 1.0);
    EXPECT_NE(r.stats.find("sched.shardsLost"), std::string::npos);
}

TEST(Recovery, WatchdogSnatchesSlowShards)
{
    // A watchdog shorter than the first flash delivery snatches
    // every shard before it can make progress; after the retry
    // budget the query degrades. Every firing is deterministic.
    DeepStoreConfig cfg;
    cfg.shardWatchdogSeconds = 30e-6; // < 53 us array read
    cfg.maxShardRetries = 1;
    RunResult r1 = runOne(cfg, 32, 500, 42);
    EXPECT_EQ(r1.outcome, QueryOutcome::Degraded);
    EXPECT_LT(r1.coverage, 1.0);
    EXPECT_NE(r1.stats.find("sched.watchdogFires"),
              std::string::npos);
    RunResult r2 = runOne(cfg, 32, 500, 42);
    EXPECT_EQ(r1.completeTick, r2.completeTick);
    EXPECT_EQ(r1.stats, r2.stats);
}

// ---- deadlines & cancellation -----------------------------------

TEST(Deadline, FiresBeforeCompletionAndReportsPartialCoverage)
{
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(32, 500, 42);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    // The golden scan takes ~76 us; a 20 us deadline fires first.
    std::uint64_t qid = ds.query(src->featureAt(1), 4, model, db, 0,
                                 0, std::nullopt, 20e-6);
    ds.waitFor(qid);
    EXPECT_EQ(ds.poll(qid), QueryState::Degraded);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_EQ(res.outcome, QueryOutcome::DeadlineExceeded);
    EXPECT_LT(res.coverageFraction, 1.0);
    // Latency == the deadline, by definition of the terminal tick.
    EXPECT_NEAR(res.latencySeconds, 20e-6, 1e-12);

    // A generous deadline never fires.
    std::uint64_t ok = ds.query(src->featureAt(2), 4, model, db, 0,
                                0, std::nullopt, 1.0);
    ds.waitFor(ok);
    EXPECT_EQ(ds.getResults(ok).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(ok).coverageFraction, 1.0);
}

TEST(Cancel, AbortsInFlightAndLeavesPeerTickIdentical)
{
    // Baseline: query A alone.
    Tick baseline = 0;
    {
        DeepStore ds{DeepStoreConfig{}};
        auto src = randomDb(32, 500, 42);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(32));
        std::uint64_t a =
            ds.querySync(src->featureAt(1), 4, model, db, 0, 0);
        baseline = ds.scheduler().completeTick(a);
    }
    // A plus a cancelled B: A's completion tick must not move at
    // all — cancellation detaches B before it touches the shared
    // datapath state A depends on.
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(32, 500, 42);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t a = ds.query(src->featureAt(1), 4, model, db, 0, 0);
    std::uint64_t b = ds.query(src->featureAt(3), 4, model, db, 0, 0);
    EXPECT_TRUE(ds.cancel(b));
    EXPECT_EQ(ds.poll(b), QueryState::Degraded);
    ds.drain();
    EXPECT_EQ(ds.scheduler().completeTick(a), baseline);
    EXPECT_EQ(ds.getResults(a).outcome, QueryOutcome::Success);

    const QueryResult &rb = ds.getResults(b);
    EXPECT_EQ(rb.outcome, QueryOutcome::Aborted);
    EXPECT_DOUBLE_EQ(rb.coverageFraction, 0.0);
    EXPECT_EQ(rb.topK.size(), 0u);

    // Cancel is single-shot and id-checked.
    EXPECT_FALSE(ds.cancel(b));   // already terminal
    EXPECT_FALSE(ds.cancel(a));   // already complete
    EXPECT_FALSE(ds.cancel(777)); // unknown
}

TEST(Cancel, PeerDegradationDoesNotCorruptSurvivor)
{
    // B (chip level) loses its units with no retry budget and
    // degrades; A (channel level) still completes with full
    // coverage and correct results.
    DeepStoreConfig cfg;
    cfg.maxShardRetries = 0;
    for (std::uint32_t chip = 0; chip < 128; ++chip)
        cfg.flash.faults.unitFailures.push_back(UnitFailure{
            static_cast<std::uint32_t>(Level::ChipLevel), chip,
            560000000});
    DeepStore ds(cfg);
    auto src = randomDb(32, 500, 42);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t a = ds.query(src->featureAt(1), 4, model, db, 0, 0,
                               Level::ChannelLevel);
    std::uint64_t b = ds.query(src->featureAt(3), 4, model, db, 0, 0,
                               Level::ChipLevel);
    ds.drain();
    EXPECT_EQ(ds.getResults(a).outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(ds.getResults(a).coverageFraction, 1.0);
    EXPECT_EQ(ds.getResults(a).topK.size(), 4u);
    EXPECT_EQ(ds.getResults(b).outcome, QueryOutcome::Degraded);
    EXPECT_LT(ds.getResults(b).coverageFraction, 1.0);
}

// ---- tryGetResults & NVMe statuses ------------------------------

TEST(TryGetResults, TypedRetryableOutcome)
{
    DeepStore ds{DeepStoreConfig{}};
    auto src = randomDb(16, 60, 2);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(16));
    std::uint64_t qid =
        ds.query(src->featureAt(0), 3, model, db, 0, 0);

    FetchResult fr = ds.tryGetResults(qid);
    EXPECT_EQ(fr.status, FetchStatus::InFlight);
    EXPECT_EQ(fr.result, nullptr);
    EXPECT_EQ(ds.tryGetResults(777).status, FetchStatus::Unknown);

    ds.waitFor(qid);
    fr = ds.tryGetResults(qid);
    ASSERT_EQ(fr.status, FetchStatus::Ready);
    ASSERT_NE(fr.result, nullptr);
    EXPECT_EQ(fr.result->topK.size(), 3u);

    // getResults stays fatal for in-flight/unknown ids (the
    // non-retryable strict path).
    EXPECT_THROW(ds.getResults(777), FatalError);
}

TEST(NvmeFault, DegradedStatusesSurfaceOnTheWire)
{
    DeepStoreConfig cfg;
    DeepStore store(cfg);
    NvmeFrontEnd nvme(store, 16);
    auto src = randomDb(16, 200, 3);
    std::uint64_t db = store.writeDB(src);
    std::uint64_t model = store.loadModel(dotModel(16));

    // Deadline in cdw5's high 32 bits (microseconds): 20 us fires
    // before the ~76 us scan -> DeadlineExceeded on the wire.
    NvmeCommand q;
    q.opcode = NvmeOpcode::Query;
    q.cid = 1;
    q.prp = nvme.buffers().add(src->featureAt(0));
    q.cdw[0] = 3;
    q.cdw[1] = model;
    q.cdw[2] = db;
    q.cdw[5] = (20ull << 32); // level = engine default, deadline 20us
    ASSERT_TRUE(nvme.submit(q));
    nvme.process();
    ASSERT_TRUE(nvme.pump());
    auto done = nvme.pollCompletion();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->status, NvmeStatus::DeadlineExceeded);

    // GetResults on the degraded query: DegradedSuccess-class
    // status (not an error, not InProgress), partial payload.
    NvmeCommand g;
    g.opcode = NvmeOpcode::GetResults;
    g.cid = 2;
    g.prp = nvme.buffers().add({});
    g.cdw[0] = done->result;
    ASSERT_TRUE(nvme.submit(g));
    nvme.process();
    auto gdone = nvme.pollCompletion();
    ASSERT_TRUE(gdone.has_value());
    EXPECT_EQ(gdone->status, NvmeStatus::DeadlineExceeded);

    // AbortQuery: submit, abort, completion posts Aborted.
    NvmeCommand q2 = q;
    q2.cid = 3;
    q2.cdw[5] = 0; // no deadline
    q2.prp = nvme.buffers().add(src->featureAt(1));
    ASSERT_TRUE(nvme.submit(q2));
    nvme.process();
    auto qid2 = nvme.queryIdForCid(3);
    ASSERT_TRUE(qid2.has_value());

    NvmeCommand abort;
    abort.opcode = NvmeOpcode::AbortQuery;
    abort.cid = 4;
    abort.cdw[0] = *qid2;
    ASSERT_TRUE(nvme.submit(abort));
    nvme.process();
    // Both the abort ack and the query completion are in the queue.
    bool saw_abort_ack = false, saw_aborted_query = false;
    while (auto c = nvme.pollCompletion()) {
        if (c->cid == 4) {
            saw_abort_ack = true;
            EXPECT_EQ(c->status, NvmeStatus::Success);
        }
        if (c->cid == 3) {
            saw_aborted_query = true;
            EXPECT_EQ(c->status, NvmeStatus::Aborted);
        }
    }
    EXPECT_TRUE(saw_abort_ack);
    EXPECT_TRUE(saw_aborted_query);

    // Aborting an unknown query id is an InvalidField error.
    NvmeCommand bad = abort;
    bad.cid = 5;
    bad.cdw[0] = 424242;
    ASSERT_TRUE(nvme.submit(bad));
    nvme.process();
    auto bdone = nvme.pollCompletion();
    ASSERT_TRUE(bdone.has_value());
    EXPECT_EQ(bdone->status, NvmeStatus::InvalidField);
}

} // namespace
} // namespace deepstore::core
