/**
 * @file
 * The sharded multi-SSD array behind the single query plane (ctest
 * label `array`):
 *
 *  - single-node passthrough: an explicit 1-node array is the *same
 *    machine* as the classic single-SSD engine — the golden
 *    fault-free, multi-level, and GC-active completion ticks must
 *    reproduce bit-exactly through the coordinator;
 *  - striping: writeDB scatters page chunks round-robin across the
 *    nodes, readDB reassembles them, and a full-coverage query
 *    returns the same top-K regardless of how many nodes the
 *    database is striped over;
 *  - scale-out: the same scan across 4 nodes finishes well under
 *    half the 1-node latency, with real scatter/merge traffic
 *    accounted on the host fabric;
 *  - whole-drive death: a node killed mid-scan re-dispatches its
 *    shards onto replicas (R=2: full coverage, Success) or degrades
 *    honestly and deterministically (R=1);
 *  - determinism: a 16-seed sweep of the death/recovery path is
 *    bit-identical across engine rebuilds (ticks, coverage, and the
 *    full stats dump);
 *  - the ArrayInfo NVMe admin command surfaces topology and health.
 */

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"
#include "core/nvme_front.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

/** n identical default-geometry nodes. */
std::vector<ssd::FlashParams>
homogeneous(std::size_t n, const ssd::FlashParams &flash = {})
{
    return std::vector<ssd::FlashParams>(n, flash);
}

// ---- single-node passthrough: golden tick pins -------------------

TEST(ArrayPassthrough, ExplicitOneNodeArrayReproducesGoldenTicks)
{
    // cfg.array.nodes = {flash} routes everything through the
    // coordinator's scatter/merge plumbing; a 1-node array must cost
    // zero ticks over the classic engine (single sub-query, home
    // node, no fabric legs) — the same pins as the fault-free golden.
    DeepStoreConfig cfg;
    cfg.array.nodes = {cfg.flash};
    DeepStore ds(cfg);
    auto src = randomDb(32, 500, 42);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    auto q = randomDb(32, 1, 99)->featureAt(0);
    std::uint64_t qid = ds.querySync(q, 4, model, db, 0, 0);
    EXPECT_EQ(ds.scheduler().submitTick(qid), 522480000u);
    EXPECT_EQ(ds.scheduler().completeTick(qid), 598859200u);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_EQ(res.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(res.coverageFraction, 1.0);
    EXPECT_EQ(res.nodesParticipating, 1u);
    EXPECT_EQ(res.interNodeBytes, 0u);
    EXPECT_DOUBLE_EQ(res.mergeSeconds, 0.0);
}

TEST(ArrayPassthrough, ExplicitOneNodeArrayMultiLevelGoldenTicks)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = {cfg.flash};
    DeepStore ds(cfg);
    auto src = randomDb(64, 900, 7);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(64));
    std::uint64_t a = ds.query(randomDb(64, 1, 101)->featureAt(0), 4,
                               model, db, 0, 0, Level::ChannelLevel);
    std::uint64_t b = ds.query(randomDb(64, 1, 102)->featureAt(0), 4,
                               model, db, 0, 0, Level::ChipLevel);
    std::uint64_t c = ds.query(randomDb(64, 1, 103)->featureAt(0), 4,
                               model, db, 0, 0, Level::SsdLevel);
    ds.drain();
    EXPECT_EQ(ds.scheduler().completeTick(a), 597632000u);
    EXPECT_EQ(ds.scheduler().completeTick(b), 631752000u);
    EXPECT_EQ(ds.scheduler().completeTick(c), 740214800u);
    EXPECT_EQ(ds.events().now(), 740214800u);
}

TEST(ArrayPassthrough, ExplicitOneNodeArrayGcActiveGoldenTicks)
{
    // The GC-active golden (FTL churn + appendDB + metadata
    // persists) through an explicit 1-node array: the lifecycle
    // machinery lives inside the node, so the pins must not move.
    ssd::FlashParams tiny;
    tiny.channels = 4;
    tiny.chipsPerChannel = 2;
    tiny.planesPerChip = 2;
    tiny.blocksPerPlane = 8;
    tiny.pagesPerBlock = 4;

    DeepStoreConfig cfg;
    cfg.flash = tiny;
    cfg.array.nodes = {tiny};
    DeepStore ds(cfg);

    auto db1src = randomDb(32, 3000, 42);
    std::uint64_t db1 = ds.writeDB(db1src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    ds.persistMetadata();

    std::uint64_t q1 = ds.query(db1src->featureAt(1), 4, model, db1,
                                0, 1500, Level::ChannelLevel);
    std::uint64_t q2 = ds.query(db1src->featureAt(7), 4, model, db1,
                                1500, 3000, Level::ChipLevel);

    auto db2src = randomDb(32, 2000, 7);
    std::uint64_t db2 = ds.writeDB(db2src);

    for (int pass = 0; pass < 2; ++pass) {
        bool done = false;
        ds.hostWrite(64, 64, [&](Tick) { done = true; });
        while (!done)
            ASSERT_TRUE(ds.step());
    }
    {
        bool done = false;
        ds.hostTrim(64, 64, [&](Tick) { done = true; });
        while (!done)
            ASSERT_TRUE(ds.step());
    }

    ds.appendDB(db2, randomDb(32, 500, 8));
    std::uint64_t q3 = ds.query(db2src->featureAt(3), 4, model, db2,
                                0, 0, Level::SsdLevel);
    ds.persistMetadata();
    ds.drain();

    EXPECT_EQ(ds.getResults(q1).outcome, QueryOutcome::Success);
    EXPECT_EQ(ds.getResults(q2).outcome, QueryOutcome::Success);
    EXPECT_EQ(ds.getResults(q3).outcome, QueryOutcome::Success);
    EXPECT_EQ(ds.scheduler().completeTick(q1), 2382739200u);
    EXPECT_EQ(ds.scheduler().completeTick(q2), 2363238400u);
    EXPECT_EQ(ds.scheduler().completeTick(q3), 11298489800u);
    EXPECT_EQ(ds.events().now(), 11298489800u);
}

// ---- striping & reassembly ---------------------------------------

TEST(ArrayStriping, WriteDbStripesAndReadDbReassembles)
{
    const std::int64_t dim = 32;
    const std::uint64_t features = 2000; // 16 pages over 4 nodes
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(4);
    DeepStore ds(cfg);
    EXPECT_EQ(ds.array().nodeCount(), 4u);
    EXPECT_EQ(ds.array().aliveCount(), 4u);

    auto src = randomDb(dim, features, 17);
    std::uint64_t db = ds.writeDB(src);
    EXPECT_EQ(ds.array().shardCount(db), 4u);

    // Round-trip: every feature comes back bit-exact from whichever
    // node its stripe landed on, in global order.
    auto back = ds.readDB(db, 0, features);
    ASSERT_EQ(back.size(), features);
    for (std::uint64_t i = 0; i < features; i += 97)
        EXPECT_EQ(back[i], src->featureAt(i)) << "feature " << i;

    // A mid-range window crossing shard boundaries.
    auto win = ds.readDB(db, 450, 700);
    ASSERT_EQ(win.size(), 700u);
    EXPECT_EQ(win[0], src->featureAt(450));
    EXPECT_EQ(win[699], src->featureAt(1149));
}

TEST(ArrayStriping, TopKMatchesSingleNodeAnswer)
{
    // Same database, same query, 1-node vs 4-node array: identical
    // top-K ids and scores (sharding changes *where* features live,
    // never the answer).
    const std::int64_t dim = 32;
    const std::uint64_t features = 2000;
    auto run = [&](std::size_t nodes) {
        DeepStoreConfig cfg;
        cfg.array.nodes = homogeneous(nodes);
        DeepStore ds(cfg);
        auto src = randomDb(dim, features, 23);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(dim));
        std::uint64_t qid =
            ds.querySync(src->featureAt(3), 8, model, db, 0, 0);
        const QueryResult &res = ds.getResults(qid);
        EXPECT_EQ(res.outcome, QueryOutcome::Success);
        EXPECT_DOUBLE_EQ(res.coverageFraction, 1.0);
        return res.topK;
    };
    auto one = run(1);
    auto four = run(4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].featureId, four[i].featureId) << i;
        EXPECT_EQ(one[i].score, four[i].score) << i;
    }
}

TEST(ArrayStriping, HeterogeneousGeometriesScanToFullCoverage)
{
    // A big node and a small node in one array: striping, per-node
    // model evaluation, and the merge must all handle asymmetric
    // geometry.
    ssd::FlashParams big;   // default 16-channel drive
    ssd::FlashParams small; // quarter-size drive
    small.channels = 4;
    DeepStoreConfig cfg;
    cfg.array.nodes = {big, small};
    DeepStore ds(cfg);
    auto src = randomDb(32, 1500, 31);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t qid =
        ds.querySync(src->featureAt(5), 4, model, db, 0, 0);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_EQ(res.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(res.coverageFraction, 1.0);
    EXPECT_EQ(res.nodesParticipating, 2u);
    EXPECT_GT(res.interNodeBytes, 0u);
}

// ---- scale-out ---------------------------------------------------

TEST(ArrayScaleOut, FourNodesBeatOneNodeByOverTwoX)
{
    // The same 2048-feature full-page scan; 4 nodes hold a quarter
    // of the pages each, so the channel-level scan should finish in
    // well under half the 1-node latency (the fabric legs are
    // microseconds against a multi-ms scan).
    const std::int64_t dim = 4096; // one feature per 16 KiB page
    const std::uint64_t features = 2048;
    auto latency = [&](std::size_t nodes) {
        DeepStoreConfig cfg;
        cfg.array.nodes = homogeneous(nodes);
        DeepStore ds(cfg);
        auto src = randomDb(dim, features, 9);
        std::uint64_t db = ds.writeDB(src);
        std::uint64_t model = ds.loadModel(dotModel(dim));
        std::uint64_t qid = ds.querySync(src->featureAt(1), 4, model,
                                         db, 0, 0,
                                         Level::ChannelLevel);
        const QueryResult &res = ds.getResults(qid);
        EXPECT_EQ(res.outcome, QueryOutcome::Success);
        EXPECT_EQ(res.nodesParticipating, nodes);
        return res.latencySeconds;
    };
    const double one = latency(1);
    const double four = latency(4);
    EXPECT_LT(four, one / 2.0);
}

// ---- whole-drive death & re-striping -----------------------------

/** Probe run: submit/complete ticks of the standard 4-node query so
 *  the death tests can schedule a kill strictly mid-scan. */
struct DeathRig
{
    Tick submit = 0;
    Tick complete = 0;
};

DeathRig
probeTicks(std::uint32_t replication, std::uint64_t db_seed)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(4);
    cfg.array.replication = replication;
    DeepStore ds(cfg);
    auto src = randomDb(32, 2000, db_seed);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t qid =
        ds.query(src->featureAt(1), 4, model, db, 0, 0);
    DeathRig r;
    r.submit = ds.events().now(); // scatter is synchronous
    ds.drain();
    r.complete = ds.events().now();
    // An unfired death schedule must not perturb the timeline, so
    // the probe run IS the baseline run.
    const QueryResult &res = ds.getResults(qid);
    EXPECT_EQ(res.outcome, QueryOutcome::Success);
    EXPECT_LT(r.submit, r.complete);
    return r;
}

struct DeathRun
{
    QueryOutcome outcome = QueryOutcome::Success;
    double coverage = 0.0;
    Tick completeTick = 0;
    std::uint64_t redispatches = 0;
    std::size_t topK = 0;
    std::string stats;
};

DeathRun
runWithDeath(std::uint32_t replication, std::uint32_t victim,
             Tick death_tick, std::uint64_t db_seed)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(4);
    cfg.array.replication = replication;
    cfg.array.nodeDeaths = {{victim, death_tick}};
    DeepStore ds(cfg);
    auto src = randomDb(32, 2000, db_seed);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    std::uint64_t qid =
        ds.querySync(src->featureAt(1), 4, model, db, 0, 0);
    const QueryResult &res = ds.getResults(qid);
    DeathRun r;
    r.outcome = res.outcome;
    r.coverage = res.coverageFraction;
    r.completeTick = ds.events().now();
    r.redispatches = res.redispatches;
    r.topK = res.topK.size();
    std::ostringstream os;
    ds.dumpStats(os);
    r.stats = os.str();
    EXPECT_EQ(ds.array().aliveCount(), 3u);
    return r;
}

TEST(ArrayNodeDeath, ReplicatedShardsRecoverFullCoverage)
{
    // R=2: every shard has a replica on the next node, so killing
    // node 1 mid-scan re-dispatches its shard onto the copy and the
    // query still reaches Success/1.0 — slower, not smaller.
    DeathRig rig = probeTicks(2, 11);
    const Tick mid = rig.submit + (rig.complete - rig.submit) / 2;
    DeathRun r = runWithDeath(2, 1, mid, 11);
    EXPECT_EQ(r.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(r.coverage, 1.0);
    EXPECT_GE(r.redispatches, 1u);
    EXPECT_GT(r.completeTick, rig.complete);
    EXPECT_NE(r.stats.find("array.nodeDeaths"), std::string::npos);
    EXPECT_NE(r.stats.find("array.redispatches"), std::string::npos);

    // The recovery itself replays bit-identically.
    DeathRun r2 = runWithDeath(2, 1, mid, 11);
    EXPECT_EQ(r.completeTick, r2.completeTick);
    EXPECT_EQ(r.stats, r2.stats);
}

TEST(ArrayNodeDeath, UnreplicatedShardsDegradeDeterministically)
{
    // R=1: node 1's shard has no replica, so its un-scanned
    // remainder is honestly lost — Degraded, 0 < coverage < 1, and
    // exactly reproducible.
    DeathRig rig = probeTicks(1, 11);
    const Tick mid = rig.submit + (rig.complete - rig.submit) / 2;
    DeathRun r = runWithDeath(1, 1, mid, 11);
    EXPECT_EQ(r.outcome, QueryOutcome::Degraded);
    EXPECT_LT(r.coverage, 1.0);
    EXPECT_GT(r.coverage, 0.0);
    EXPECT_GT(r.topK, 0u);
    EXPECT_NE(r.stats.find("array.subQueriesLost"),
              std::string::npos);

    DeathRun r2 = runWithDeath(1, 1, mid, 11);
    EXPECT_DOUBLE_EQ(r.coverage, r2.coverage);
    EXPECT_EQ(r.completeTick, r2.completeTick);
    EXPECT_EQ(r.stats, r2.stats);
}

TEST(ArrayNodeDeath, ManualKillOfIdleNodeLeavesCoverageIntact)
{
    // Killing a node *before* the query is scattered: the coordinator
    // routes around the corpse at scatter time via the replicas.
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(4);
    cfg.array.replication = 2;
    DeepStore ds(cfg);
    auto src = randomDb(32, 2000, 13);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(32));
    ds.killNode(2);
    EXPECT_EQ(ds.array().aliveCount(), 3u);
    std::uint64_t qid =
        ds.querySync(src->featureAt(1), 4, model, db, 0, 0);
    const QueryResult &res = ds.getResults(qid);
    EXPECT_EQ(res.outcome, QueryOutcome::Success);
    EXPECT_DOUBLE_EQ(res.coverageFraction, 1.0);
}

TEST(ArrayNodeDeath, SixteenSeedDeathSweepIsBitIdentical)
{
    // The acceptance sweep: for 16 database seeds, kill a rotating
    // victim mid-scan on an R=2 array and rebuild+rerun — completion
    // tick, coverage, and the full stats dump must be bit-identical,
    // and every recovery must reach full coverage.
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        DeathRig rig = probeTicks(2, seed);
        const Tick mid =
            rig.submit + (rig.complete - rig.submit) / 2;
        const auto victim = static_cast<std::uint32_t>(seed % 4);
        DeathRun a = runWithDeath(2, victim, mid, seed);
        DeathRun b = runWithDeath(2, victim, mid, seed);
        EXPECT_EQ(a.outcome, QueryOutcome::Success) << "seed " << seed;
        EXPECT_DOUBLE_EQ(a.coverage, 1.0) << "seed " << seed;
        EXPECT_EQ(a.completeTick, b.completeTick) << "seed " << seed;
        EXPECT_DOUBLE_EQ(a.coverage, b.coverage) << "seed " << seed;
        EXPECT_EQ(a.stats, b.stats) << "seed " << seed;
    }
}

// ---- NVMe admin surface ------------------------------------------

TEST(ArrayNvme, ArrayInfoReportsTopologyAndHealth)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(4);
    cfg.array.replication = 2;
    DeepStore ds(cfg);
    ds.killNode(3);
    NvmeFrontEnd nvme(ds, 16);

    NvmeCommand cmd;
    cmd.opcode = NvmeOpcode::ArrayInfo;
    cmd.cid = 1;
    cmd.prp = nvme.buffers().add({});
    ASSERT_TRUE(nvme.submit(cmd));
    nvme.process();
    auto done = nvme.pollCompletion();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->status, NvmeStatus::Success);
    EXPECT_EQ(done->result & 0xFFFFu, 4u);       // node count
    EXPECT_EQ((done->result >> 16) & 0xFFFFu, 2u); // replication

    const auto *buf = nvme.buffers().find(cmd.prp);
    ASSERT_NE(buf, nullptr);
    ASSERT_EQ(buf->size(), 4u * 7u); // 7 floats per node
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ((*buf)[i * 7 + 0], static_cast<float>(i));
        EXPECT_EQ((*buf)[i * 7 + 1], i == 3 ? 0.0f : 1.0f);
        EXPECT_EQ((*buf)[i * 7 + 2],
                  static_cast<float>(ssd::FlashParams{}.channels));
        // Scrub/repair are disabled here, so the per-node rows
        // report zero activity.
        EXPECT_EQ((*buf)[i * 7 + 5], 0.0f);
        EXPECT_EQ((*buf)[i * 7 + 6], 0.0f);
    }
}

TEST(ArrayNodeDeath, KillNodeIsIdempotentAndRangeChecked)
{
    DeepStoreConfig cfg;
    cfg.array.nodes = homogeneous(3);
    cfg.array.replication = 2;
    DeepStore ds(cfg);
    // Out-of-range indices are a typed error, not UB — and nothing
    // happens to the array.
    EXPECT_EQ(ds.killNode(3), KillNodeResult::InvalidNode);
    EXPECT_EQ(ds.killNode(1000), KillNodeResult::InvalidNode);
    EXPECT_EQ(ds.array().aliveCount(), 3u);
    // First kill lands; repeats are idempotent no-ops.
    EXPECT_EQ(ds.killNode(1), KillNodeResult::Killed);
    EXPECT_EQ(ds.killNode(1), KillNodeResult::AlreadyDead);
    EXPECT_EQ(ds.killNode(1), KillNodeResult::AlreadyDead);
    EXPECT_EQ(ds.array().aliveCount(), 2u);
    EXPECT_STREQ(toString(KillNodeResult::Killed), "Killed");
    EXPECT_STREQ(toString(KillNodeResult::AlreadyDead),
                 "AlreadyDead");
    EXPECT_STREQ(toString(KillNodeResult::InvalidNode),
                 "InvalidNode");
    // The dead-node stat counts the one real death only.
    std::ostringstream os;
    ds.dumpStats(os);
    EXPECT_NE(os.str().find("array.nodeDeaths = 1"),
              std::string::npos);
}

} // namespace
} // namespace deepstore::core
