/**
 * @file
 * Tests for the event-driven accelerator pipeline, including the
 * cross-validation of the closed-form query model against it.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/accel_pipeline.h"
#include "core/query_model.h"
#include "workloads/apps.h"

namespace deepstore::core {
namespace {

struct Rig
{
    sim::EventQueue events;
    StatGroup stats{"rig"};
    ssd::FlashParams params;
    std::unique_ptr<ssd::FlashController> channel;

    explicit Rig(ssd::FlashParams p = {}) : params(p)
    {
        channel = std::make_unique<ssd::FlashController>(
            events, params, 0, stats);
    }
};

TEST(AccelPipeline, RejectsBadConfig)
{
    Rig rig;
    PipelineRunConfig cfg;
    EXPECT_THROW(runAcceleratorPipeline(rig.events, *rig.channel,
                                        rig.params, cfg),
                 FatalError);
    cfg.features = 10;
    cfg.featureBytes = 2048;
    cfg.computeCyclesPerFeature = 100;
    cfg.queueDepthPages = 0;
    EXPECT_THROW(runAcceleratorPipeline(rig.events, *rig.channel,
                                        rig.params, cfg),
                 FatalError);
}

TEST(AccelPipeline, ProcessesEveryFeature)
{
    Rig rig;
    PipelineRunConfig cfg;
    cfg.features = 500;
    cfg.featureBytes = 2048; // 8 per page
    cfg.computeCyclesPerFeature = 2000;
    auto stats = runAcceleratorPipeline(rig.events, *rig.channel,
                                        rig.params, cfg);
    EXPECT_EQ(stats.featuresProcessed, 500u);
    EXPECT_EQ(stats.pageReads, (500u + 7) / 8);
    EXPECT_GT(stats.totalSeconds, 0.0);
}

TEST(AccelPipeline, ComputeBoundRunApproachesComputeTime)
{
    Rig rig;
    PipelineRunConfig cfg;
    cfg.features = 2000;
    cfg.featureBytes = 2048;
    cfg.computeCyclesPerFeature = 20000; // 25 us/feature at 800 MHz
    auto stats = runAcceleratorPipeline(rig.events, *rig.channel,
                                        rig.params, cfg);
    double compute_only = 2000 * 25e-6;
    EXPECT_NEAR(stats.totalSeconds, compute_only,
                0.03 * compute_only);
    // Flash hides almost entirely behind compute.
    EXPECT_LT(stats.starvedSeconds, 0.02 * stats.totalSeconds);
}

TEST(AccelPipeline, FlashBoundRunMatchesChannelRate)
{
    Rig rig;
    PipelineRunConfig cfg;
    cfg.features = 2000;
    cfg.featureBytes = 16384; // one full page each
    cfg.computeCyclesPerFeature = 100; // trivially cheap compute
    auto stats = runAcceleratorPipeline(rig.events, *rig.channel,
                                        rig.params, cfg);
    double flash_rate =
        ssd::channelFeatureRate(rig.params, cfg.featureBytes);
    double flash_only = 2000 / flash_rate;
    EXPECT_NEAR(stats.totalSeconds, flash_only, 0.10 * flash_only);
    EXPECT_GT(stats.starvedSeconds, 0.5 * stats.totalSeconds);
}

TEST(AccelPipeline, DeeperQueueNeverHurts)
{
    for (std::uint32_t depth : {1u, 4u, 16u, 64u}) {
        static double prev = 1e9;
        if (depth == 1)
            prev = 1e9;
        Rig rig;
        PipelineRunConfig cfg;
        cfg.features = 1000;
        cfg.featureBytes = 16384;
        cfg.computeCyclesPerFeature = 15000;
        cfg.queueDepthPages = depth;
        auto stats = runAcceleratorPipeline(rig.events, *rig.channel,
                                            rig.params, cfg);
        EXPECT_LE(stats.totalSeconds, prev * 1.001) << depth;
        prev = stats.totalSeconds;
    }
}

TEST(AccelPipeline, RetryInjectionSlowsTheScan)
{
    ssd::FlashParams faulty;
    faulty.readRetryProbability = 0.05;
    faulty.readRetryPenalty = 4.0;
    Rig clean, injected(faulty);
    PipelineRunConfig cfg;
    cfg.features = 1500;
    cfg.featureBytes = 16384;
    cfg.computeCyclesPerFeature = 500;
    auto base = runAcceleratorPipeline(clean.events, *clean.channel,
                                       clean.params, cfg);
    auto slow = runAcceleratorPipeline(
        injected.events, *injected.channel, injected.params, cfg);
    EXPECT_GT(slow.totalSeconds, base.totalSeconds);
    EXPECT_GT(injected.stats.find("flash.readRetries")->value(), 0.0);
    // A deep queue largely hides sparse retries.
    EXPECT_LT(slow.totalSeconds, 1.30 * base.totalSeconds);
}

/**
 * Cross-validation: the closed-form channel-level model and the
 * event-driven pipeline agree on per-feature time within 15% for all
 * five applications (compute leg fed from the same systolic model,
 * weights assumed resident to isolate the flash/compute pipeline).
 */
class PipelineXVal : public ::testing::TestWithParam<workloads::AppId>
{
};

TEST_P(PipelineXVal, AnalyticModelMatchesEventModel)
{
    auto app = workloads::makeApp(GetParam());
    ssd::FlashParams params;
    DeepStoreModel model(params);
    auto perf = model.evaluate(Level::ChannelLevel, app);

    Rig rig;
    PipelineRunConfig cfg;
    cfg.features = 1000;
    cfg.featureBytes = app.featureBytes();
    cfg.computeCyclesPerFeature = perf.modelRun.totalCycles();
    cfg.frequencyHz = perf.placement.array.frequencyHz;
    cfg.queueDepthPages = perf.placement.dfvQueueDepthPages;
    auto stats = runAcceleratorPipeline(rig.events, *rig.channel,
                                        rig.params, cfg);

    // Compare against the analytic per-accelerator time without the
    // weight-stream leg (the pipeline models flash + compute only).
    double analytic =
        std::max(perf.computeSeconds, perf.flashSeconds) +
        params.readLatency *
            (static_cast<double>(cfg.featureBytes) /
             static_cast<double>(params.pageBytes)) /
            cfg.queueDepthPages;
    EXPECT_NEAR(stats.perFeatureSeconds() / analytic, 1.0, 0.15)
        << app.name << ": event " << stats.perFeatureSeconds() * 1e6
        << " us vs analytic " << analytic * 1e6 << " us";
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, PipelineXVal,
    ::testing::Values(workloads::AppId::ReId, workloads::AppId::MIR,
                      workloads::AppId::ESTP, workloads::AppId::TIR,
                      workloads::AppId::TextQA),
    [](const auto &info) {
        return std::string(workloads::toString(info.param));
    });

} // namespace
} // namespace deepstore::core
