/** @file Tests for the trace-replay queueing model. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/trace_replay.h"

namespace deepstore::core {
namespace {

workloads::QueryUniverse
universe()
{
    workloads::QueryUniverseConfig cfg;
    cfg.numQueries = 400;
    cfg.numTopics = 20;
    return workloads::QueryUniverse(cfg);
}

TEST(TraceReplay, RejectsZeroScanTime)
{
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 10, 5.0, workloads::Popularity::Uniform, 0.0, 1);
    ReplayService s;
    EXPECT_THROW(replayTraceClosedForm(trace, s, nullptr), FatalError);
}

TEST(TraceReplay, EmptyTraceYieldsZeroStats)
{
    ReplayService s;
    s.scanSeconds = 1e-3;
    auto stats =
        replayTraceClosedForm(workloads::QueryTrace{}, s, nullptr);
    EXPECT_EQ(stats.queries, 0u);
}

TEST(TraceReplay, LightLoadResponseEqualsServiceTime)
{
    // Arrivals far apart: no queueing, every response = scan time.
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 100, 1.0, workloads::Popularity::Uniform, 0.0, 2);
    ReplayService s;
    s.scanSeconds = 1e-3; // 1 ms scan vs 1 s inter-arrival
    auto stats = replayTraceClosedForm(trace, s, nullptr);
    EXPECT_NEAR(stats.p50Seconds, 1e-3, 1e-9);
    // Rare arrival coincidences add a little queueing at the tail.
    EXPECT_NEAR(stats.p99Seconds, 1e-3, 1e-4);
    EXPECT_DOUBLE_EQ(stats.missRate, 1.0);
    EXPECT_LT(stats.utilization, 0.01);
}

TEST(TraceReplay, OverloadGrowsQueueingDelay)
{
    // Offered load > capacity: tail latencies blow past the mean
    // service time.
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 500, 100.0, workloads::Popularity::Uniform, 0.0, 3);
    ReplayService s;
    s.scanSeconds = 50e-3; // capacity 20/s << offered 100/s
    auto stats = replayTraceClosedForm(trace, s, nullptr);
    EXPECT_GT(stats.p99Seconds, 20 * s.scanSeconds);
    EXPECT_GT(stats.utilization, 0.95);
    EXPECT_GT(stats.p99Seconds, stats.p50Seconds);
}

TEST(TraceReplay, CacheReducesLatencyUnderLocality)
{
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 2000, 50.0, workloads::Popularity::Zipf, 0.8, 4);
    ReplayService s;
    s.scanSeconds = 10e-3;
    s.lookupSeconds = 50e-6;
    s.hitExtraSeconds = 20e-6;

    auto uncached = replayTraceClosedForm(trace, s, nullptr);

    QueryCacheConfig cfg;
    cfg.capacity = 100;
    cfg.threshold = 0.12;
    cfg.qcnAccuracy = 0.97;
    QueryCache cache(cfg, [&u](std::uint64_t a, std::uint64_t b) {
        return u.qcnScore(a, b);
    });
    auto cached = replayTraceClosedForm(trace, s, &cache);

    EXPECT_LT(cached.missRate, 0.9);
    EXPECT_LT(cached.meanSeconds, uncached.meanSeconds);
    EXPECT_LT(cached.utilization, uncached.utilization);
}

namespace engine_replay {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

struct EngineRig
{
    static constexpr std::int64_t kDim = 16;
    DeepStore ds{DeepStoreConfig{}};
    std::uint64_t db = 0;
    std::uint64_t scn = 0;

    EngineRig()
    {
        workloads::FeatureGenerator gen(kDim, 8, 11);
        db = ds.writeDB(std::make_shared<GeneratedFeatureSource>(
            gen, 100));
        scn = ds.loadModel(dotModel(kDim));
    }

    EngineReplayConfig
    config(const workloads::QueryUniverse &u) const
    {
        EngineReplayConfig cfg;
        cfg.k = 3;
        cfg.modelId = scn;
        cfg.dbId = db;
        cfg.featureDim = kDim;
        cfg.universe = &u;
        return cfg;
    }
};

} // namespace engine_replay

TEST(TraceReplay, EngineReplayCompletesEveryQuery)
{
    using engine_replay::EngineRig;
    auto u = universe();
    EngineRig rig;
    auto trace = workloads::QueryTrace::generate(
        u, 30, 200.0, workloads::Popularity::Uniform, 0.0, 6);
    auto stats =
        replayTrace(rig.ds, trace, rig.config(u));
    EXPECT_EQ(stats.queries, 30u);
    EXPECT_DOUBLE_EQ(stats.missRate, 1.0); // no QC configured
    EXPECT_LE(stats.p50Seconds, stats.p95Seconds);
    EXPECT_LE(stats.p95Seconds, stats.p99Seconds);
    EXPECT_LE(stats.p99Seconds, stats.maxSeconds);
    EXPECT_GT(stats.throughput, 0.0);
    EXPECT_EQ(rig.ds.inFlight(), 0u);
}

TEST(TraceReplay, EngineReplayOverlapBeatsSerialService)
{
    // A burst of same-database queries overlaps on the accelerator
    // complex: throughput clears 2x what serial service of the
    // single-query latency would allow.
    using engine_replay::EngineRig;
    auto u = universe();
    EngineRig rig;

    double single =
        rig.ds
            .getResults(rig.ds.querySync(
                u.featureOf(0, EngineRig::kDim), 3, rig.scn, rig.db,
                0, 0))
            .latencySeconds;

    std::vector<workloads::TraceRecord> recs;
    for (int i = 0; i < 16; ++i)
        recs.push_back(workloads::TraceRecord{
            0.0, static_cast<std::uint64_t>(i + 1)});
    workloads::QueryTrace burst(std::move(recs));
    auto stats =
        replayTrace(rig.ds, burst, rig.config(u));
    EXPECT_EQ(stats.queries, 16u);
    EXPECT_GT(stats.throughput, 2.0 / single);
    // Interleaving is visible as >1 accelerator-time occupancy.
    EXPECT_GT(stats.utilization, 1.0);
}

TEST(TraceReplay, EngineReplayUsesTheEngineQueryCache)
{
    using engine_replay::EngineRig;
    auto u = universe();
    EngineRig rig;
    std::uint64_t qcn = rig.ds.loadModel(
        engine_replay::dotModel(EngineRig::kDim));
    rig.ds.setQC(qcn, 0.25, 0.99, 16);

    // Ten distinct queries, each repeated once: repeats hit.
    std::vector<workloads::TraceRecord> recs;
    for (int i = 0; i < 20; ++i)
        recs.push_back(workloads::TraceRecord{
            1e-3 * static_cast<double>(i),
            static_cast<std::uint64_t>(i % 10)});
    workloads::QueryTrace trace(std::move(recs));
    auto stats =
        replayTrace(rig.ds, trace, rig.config(u));
    EXPECT_EQ(stats.queries, 20u);
    EXPECT_LT(stats.missRate, 1.0);
    EXPECT_GT(rig.ds.queryCache()->hits(), 0u);
}

TEST(TraceReplay, EngineReplayValidatesConfig)
{
    using engine_replay::EngineRig;
    auto u = universe();
    EngineRig rig;
    workloads::QueryTrace trace(std::vector<workloads::TraceRecord>{
        workloads::TraceRecord{0.0, 1}});
    EngineReplayConfig bad = rig.config(u);
    bad.universe = nullptr;
    EXPECT_THROW(replayTrace(rig.ds, trace, bad),
                 FatalError);
    bad = rig.config(u);
    bad.featureDim = 0;
    EXPECT_THROW(replayTrace(rig.ds, trace, bad),
                 FatalError);
}

TEST(TraceReplay, PercentilesAreOrdered)
{
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 1000, 30.0, workloads::Popularity::Zipf, 0.7, 5);
    ReplayService s;
    s.scanSeconds = 20e-3;
    auto stats = replayTraceClosedForm(trace, s, nullptr);
    EXPECT_LE(stats.p50Seconds, stats.p95Seconds);
    EXPECT_LE(stats.p95Seconds, stats.p99Seconds);
    EXPECT_LE(stats.p99Seconds, stats.maxSeconds);
    EXPECT_GT(stats.throughput, 0.0);
}

} // namespace
} // namespace deepstore::core
