/** @file Tests for the trace-replay queueing model. */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/trace_replay.h"

namespace deepstore::core {
namespace {

workloads::QueryUniverse
universe()
{
    workloads::QueryUniverseConfig cfg;
    cfg.numQueries = 400;
    cfg.numTopics = 20;
    return workloads::QueryUniverse(cfg);
}

TEST(TraceReplay, RejectsZeroScanTime)
{
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 10, 5.0, workloads::Popularity::Uniform, 0.0, 1);
    ReplayService s;
    EXPECT_THROW(replayTrace(trace, s, nullptr), FatalError);
}

TEST(TraceReplay, EmptyTraceYieldsZeroStats)
{
    ReplayService s;
    s.scanSeconds = 1e-3;
    auto stats =
        replayTrace(workloads::QueryTrace{}, s, nullptr);
    EXPECT_EQ(stats.queries, 0u);
}

TEST(TraceReplay, LightLoadResponseEqualsServiceTime)
{
    // Arrivals far apart: no queueing, every response = scan time.
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 100, 1.0, workloads::Popularity::Uniform, 0.0, 2);
    ReplayService s;
    s.scanSeconds = 1e-3; // 1 ms scan vs 1 s inter-arrival
    auto stats = replayTrace(trace, s, nullptr);
    EXPECT_NEAR(stats.p50Seconds, 1e-3, 1e-9);
    // Rare arrival coincidences add a little queueing at the tail.
    EXPECT_NEAR(stats.p99Seconds, 1e-3, 1e-4);
    EXPECT_DOUBLE_EQ(stats.missRate, 1.0);
    EXPECT_LT(stats.utilization, 0.01);
}

TEST(TraceReplay, OverloadGrowsQueueingDelay)
{
    // Offered load > capacity: tail latencies blow past the mean
    // service time.
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 500, 100.0, workloads::Popularity::Uniform, 0.0, 3);
    ReplayService s;
    s.scanSeconds = 50e-3; // capacity 20/s << offered 100/s
    auto stats = replayTrace(trace, s, nullptr);
    EXPECT_GT(stats.p99Seconds, 20 * s.scanSeconds);
    EXPECT_GT(stats.utilization, 0.95);
    EXPECT_GT(stats.p99Seconds, stats.p50Seconds);
}

TEST(TraceReplay, CacheReducesLatencyUnderLocality)
{
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 2000, 50.0, workloads::Popularity::Zipf, 0.8, 4);
    ReplayService s;
    s.scanSeconds = 10e-3;
    s.lookupSeconds = 50e-6;
    s.hitExtraSeconds = 20e-6;

    auto uncached = replayTrace(trace, s, nullptr);

    QueryCacheConfig cfg;
    cfg.capacity = 100;
    cfg.threshold = 0.12;
    cfg.qcnAccuracy = 0.97;
    QueryCache cache(cfg, [&u](std::uint64_t a, std::uint64_t b) {
        return u.qcnScore(a, b);
    });
    auto cached = replayTrace(trace, s, &cache);

    EXPECT_LT(cached.missRate, 0.9);
    EXPECT_LT(cached.meanSeconds, uncached.meanSeconds);
    EXPECT_LT(cached.utilization, uncached.utilization);
}

TEST(TraceReplay, PercentilesAreOrdered)
{
    auto u = universe();
    auto trace = workloads::QueryTrace::generate(
        u, 1000, 30.0, workloads::Popularity::Zipf, 0.7, 5);
    ReplayService s;
    s.scanSeconds = 20e-3;
    auto stats = replayTrace(trace, s, nullptr);
    EXPECT_LE(stats.p50Seconds, stats.p95Seconds);
    EXPECT_LE(stats.p95Seconds, stats.p99Seconds);
    EXPECT_LE(stats.p99Seconds, stats.maxSeconds);
    EXPECT_GT(stats.throughput, 0.0);
}

} // namespace
} // namespace deepstore::core
