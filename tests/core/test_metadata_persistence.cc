/**
 * @file
 * Tests for metadata persistence to the reserved flash block (§4.4)
 * and the serialization format.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/deepstore.h"

namespace deepstore::core {
namespace {

TEST(MetadataBlob, RoundTrips)
{
    MetadataStore store;
    DbMetadata a;
    a.startPpn = 100;
    a.featureBytes = 2048;
    a.numFeatures = 500;
    a.startLpn = 100;
    DbMetadata b;
    b.startPpn = 163;
    b.featureBytes = 45056;
    b.numFeatures = 7;
    b.startLpn = 163;
    std::uint64_t id_a = store.add(a);
    std::uint64_t id_b = store.add(b);

    MetadataStore restored;
    restored.deserialize(store.serialize());
    EXPECT_EQ(restored.size(), 2u);
    EXPECT_EQ(restored.lookup(id_a).numFeatures, 500u);
    EXPECT_EQ(restored.lookup(id_b).featureBytes, 45056u);
    EXPECT_EQ(restored.lookup(id_b).startPpn, 163u);
    // The id allocator resumes above the restored ids.
    DbMetadata c = a;
    EXPECT_GT(restored.add(c), id_b);
}

TEST(MetadataBlob, CorruptionIsFatal)
{
    MetadataStore store;
    DbMetadata md;
    md.featureBytes = 800;
    md.numFeatures = 10;
    store.add(md);
    auto blob = store.serialize();

    MetadataStore victim;
    auto bad_magic = blob;
    bad_magic[0] ^= 0xFF;
    EXPECT_THROW(victim.deserialize(bad_magic), FatalError);

    auto truncated = blob;
    truncated.resize(truncated.size() - 8);
    EXPECT_THROW(victim.deserialize(truncated), FatalError);

    auto trailing = blob;
    trailing.push_back(0);
    EXPECT_THROW(victim.deserialize(trailing), FatalError);
}

TEST(MetadataBlob, ClearEmptiesAndResets)
{
    MetadataStore store;
    DbMetadata md;
    md.featureBytes = 4;
    md.numFeatures = 1;
    store.add(md);
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.add(md), 1u); // ids restart
}

TEST(MetadataPersistence, SurvivesDramLoss)
{
    DeepStore ds{DeepStoreConfig{}};
    workloads::FeatureGenerator gen(64, 8, 3);
    std::uint64_t db = ds.writeDB(
        std::make_shared<GeneratedFeatureSource>(gen, 200));
    DbMetadata before = ds.databaseInfo(db);

    EXPECT_EQ(ds.persistMetadata(), 1u); // table fits one page
    ds.reloadMetadata();

    const DbMetadata &after = ds.databaseInfo(db);
    EXPECT_EQ(after.startPpn, before.startPpn);
    EXPECT_EQ(after.numFeatures, before.numFeatures);
    EXPECT_EQ(after.featureBytes, before.featureBytes);

    // Queries keep working against the restored table.
    nn::Model m("dot", 64, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct, 64));
    std::uint64_t model = ds.loadModel(
        nn::ModelBundle{m, nn::ModelWeights::random(m, 1)});
    auto res = ds.getResults(
        ds.querySync(gen.featureAt(5), 3, model, db, 0, 0));
    EXPECT_EQ(res.featuresScanned, 200u);
}

TEST(MetadataPersistence, RepeatedPersistsDoNotLeakBlocks)
{
    DeepStore ds{DeepStoreConfig{}};
    workloads::FeatureGenerator gen(64, 8, 4);
    ds.writeDB(std::make_shared<GeneratedFeatureSource>(gen, 50));
    std::uint32_t free_before = ds.ssd().ftl().freeSuperblocks();
    for (int i = 0; i < 5; ++i)
        ds.persistMetadata();
    // The reserved superblock is recycled in place, costing at most
    // one superblock of capacity.
    EXPECT_GE(ds.ssd().ftl().freeSuperblocks() + 1, free_before);
}

TEST(MetadataPersistence, ReloadWithoutPersistIsFatal)
{
    DeepStore ds{DeepStoreConfig{}};
    EXPECT_THROW(ds.reloadMetadata(), FatalError);
}

} // namespace
} // namespace deepstore::core
