/** @file Tests for the budget-constrained DSE (§4.5). */

#include <gtest/gtest.h>

#include "core/dse_select.h"

namespace deepstore::core {
namespace {

TEST(DseSelect, ChannelLevelRecoversTable3)
{
    // The paper's channel-level pick (16x64, 512 KB) is the frontier
    // best under our model's power/area budgets.
    auto result = exploreLevel(Level::ChannelLevel,
                               ssd::FlashParams{});
    const auto &best = result.best();
    EXPECT_TRUE(best.feasible());
    EXPECT_EQ(best.config.rows, 16);
    EXPECT_EQ(best.config.cols, 64);
    EXPECT_EQ(best.config.scratchpadBytes, 512 * KiB);
}

TEST(DseSelect, Table3ChoicesAreFeasibleAndNearOptimal)
{
    for (auto level : {Level::SsdLevel, Level::ChannelLevel,
                       Level::ChipLevel}) {
        auto result = exploreLevel(level, ssd::FlashParams{});
        EXPECT_TRUE(result.table3.feasible()) << toString(level);
        // Channel and chip picks sit within 10% of the frontier;
        // the published SSD-level shape trades GEMV throughput for
        // element-wise/conv row parallelism (see bench_dse_budget).
        if (level != Level::SsdLevel) {
            EXPECT_LT(result.table3.meanPerFeatureSeconds /
                          result.best().meanPerFeatureSeconds,
                      1.10)
                << toString(level);
        }
    }
}

TEST(DseSelect, CandidatesAreSortedBestFirst)
{
    auto result = exploreLevel(Level::ChipLevel, ssd::FlashParams{});
    ASSERT_GT(result.candidates.size(), 2u);
    for (std::size_t i = 1; i < result.candidates.size(); ++i) {
        const auto &a = result.candidates[i - 1];
        const auto &b = result.candidates[i];
        EXPECT_FALSE(b.betterThan(a)) << i;
    }
}

TEST(DseSelect, BudgetsActuallyEliminateCandidates)
{
    // The chip level's 0.43 W slice must reject most of the space.
    auto result = exploreLevel(Level::ChipLevel, ssd::FlashParams{});
    std::size_t feasible = 0;
    for (const auto &c : result.candidates)
        feasible += c.feasible();
    EXPECT_GT(feasible, 0u);
    EXPECT_LT(feasible, result.candidates.size() / 4);
}

TEST(DseSelect, EvaluateCandidateComputesAreaAndPower)
{
    auto base = makePlacement(Level::ChannelLevel, ssd::FlashParams{});
    auto c = evaluateCandidate(Level::ChannelLevel, ssd::FlashParams{},
                               base.array);
    EXPECT_NEAR(c.areaMm2, 7.4, 0.1);
    EXPECT_GT(c.peakPowerW, 0.0);
    EXPECT_GT(c.meanPerFeatureSeconds, 0.0);
}

TEST(DseSelect, LargerBudgetNeverWorsensTheBest)
{
    // Property: widening the explored PE range cannot produce a
    // slower frontier best.
    auto small = exploreLevel(Level::ChannelLevel, ssd::FlashParams{},
                              /*max_pes=*/1024);
    auto large = exploreLevel(Level::ChannelLevel, ssd::FlashParams{},
                              /*max_pes=*/4096);
    EXPECT_LE(large.best().meanPerFeatureSeconds,
              small.best().meanPerFeatureSeconds * 1.0001);
}

} // namespace
} // namespace deepstore::core
