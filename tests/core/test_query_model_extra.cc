/**
 * @file
 * Additional query-model properties: placement overrides, the shared
 * L2 broadcast rules, the chip-level lockstep group rule, and
 * latency-exposure monotonicity.
 */

#include <gtest/gtest.h>

#include "core/query_model.h"

namespace deepstore::core {
namespace {

using workloads::AppId;
using workloads::makeApp;

TEST(QueryModelExtra, RemovingSharedL2HurtsWeightHeavyAppsOnly)
{
    ssd::FlashParams flash;
    DeepStoreModel ds(flash);
    for (AppId id : {AppId::ReId, AppId::ESTP, AppId::TextQA}) {
        auto app = makeApp(id);
        auto with = ds.evaluate(Level::ChannelLevel, app);
        auto stripped = makePlacement(Level::ChannelLevel, flash);
        stripped.array.sharedL2Bytes = 0;
        stripped.residentWeightBytes =
            stripped.array.scratchpadBytes;
        stripped.array.dramBandwidth =
            flash.dramBandwidth / flash.channels;
        auto without = ds.evaluatePlacement(stripped, app.scn,
                                            app.featureBytes());
        if (id == AppId::TextQA) {
            // 0.16 MB of weights fit the private scratchpad.
            EXPECT_NEAR(without.aggregateSeconds /
                            with.aggregateSeconds,
                        1.0, 0.01);
        } else {
            EXPECT_GT(without.aggregateSeconds,
                      50.0 * with.aggregateSeconds)
                << app.name;
        }
    }
}

TEST(QueryModelExtra, ChipGroupRuleFollowsWeightResidency)
{
    ssd::FlashParams flash;
    DeepStoreModel ds(flash);
    // TextQA's weights fit the 512 KB chip scratchpad -> group 2.
    auto textqa = ds.evaluate(Level::ChipLevel, makeApp(AppId::TextQA));
    EXPECT_EQ(textqa.placement.wsGroupSize, 2);
    // MIR's 2 MB do not -> strict per-feature lockstep (group 1).
    auto mir = ds.evaluate(Level::ChipLevel, makeApp(AppId::MIR));
    EXPECT_EQ(mir.placement.wsGroupSize, 1);
}

TEST(QueryModelExtra, ExposureGrowsWithFlashLatency)
{
    // Per-accelerator time is monotone non-decreasing in the flash
    // read latency at every level (Fig. 9's direction).
    auto app = makeApp(AppId::ESTP);
    for (Level level : {Level::SsdLevel, Level::ChannelLevel,
                        Level::ChipLevel}) {
        double prev = 0.0;
        for (double lat : {7e-6, 53e-6, 106e-6, 212e-6}) {
            ssd::FlashParams flash;
            flash.readLatency = lat;
            DeepStoreModel ds(flash);
            auto p = ds.evaluate(level, app);
            EXPECT_GE(p.perAccelSeconds, prev)
                << toString(level) << " at " << lat;
            prev = p.perAccelSeconds;
        }
    }
}

TEST(QueryModelExtra, ActivePowerIncludesSsdBase)
{
    ssd::FlashParams flash;
    DeepStoreModel ds(flash);
    for (const auto &app : workloads::allApps()) {
        auto p = ds.evaluate(Level::ChannelLevel, app);
        EXPECT_GT(p.activePowerW, kSsdBasePowerW);
    }
}

TEST(QueryModelExtra, EnergyPerFeaturePositiveAndFinite)
{
    ssd::FlashParams flash;
    DeepStoreModel ds(flash);
    for (const auto &app : workloads::allApps()) {
        for (Level level : {Level::SsdLevel, Level::ChannelLevel,
                            Level::ChipLevel}) {
            auto p = ds.evaluate(level, app);
            if (!p.supported)
                continue;
            EXPECT_GT(p.energyPerFeature.total(), 0.0);
            EXPECT_LT(p.energyPerFeature.total(), 0.1); // < 0.1 J
            EXPECT_GE(p.energyPerFeature.computeJ, 0.0);
            EXPECT_GE(p.energyPerFeature.memoryJ, 0.0);
            EXPECT_GE(p.energyPerFeature.flashJ, 0.0);
        }
    }
}

TEST(QueryModelExtra, QcnPerfScalesWithCacheEntriesLinearly)
{
    ssd::FlashParams flash;
    DeepStoreModel ds(flash);
    auto app = makeApp(AppId::TIR);
    auto qcn = ds.evaluateModel(Level::ChannelLevel, app.qcn,
                                app.qcn.featureBytes());
    // A lookup over N entries is N QCN computes spread over the
    // accelerators; the model exposes the per-compare cost.
    EXPECT_GT(qcn.computeSeconds, 0.0);
    EXPECT_LT(qcn.computeSeconds, 20e-6);
}

TEST(QueryModelExtra, WimpyVsChipOrdering)
{
    // Both live in the SSD; the chip accelerators must beat the
    // wimpy cores by a wide margin on every app they support (the
    // paper's Observation 2).
    ssd::FlashParams flash;
    DeepStoreModel ds(flash);
    for (const auto &app : workloads::allApps()) {
        auto p = ds.evaluate(Level::ChipLevel, app);
        if (!p.supported)
            continue;
        double wimpy_seconds =
            static_cast<double>(app.scn.totalFlops()) / 10e9;
        EXPECT_GT(wimpy_seconds / p.aggregateSeconds, 5.0)
            << app.name;
    }
}

} // namespace
} // namespace deepstore::core
