/**
 * @file
 * Tests for the unified flash datapath: the engine's live scan path
 * (DfvStreamService + GroupScan driven by the query scheduler) must
 * be the *same machine* as the standalone accelerator pipeline, and
 * scans must physically contend with host I/O on shared channels —
 * and only on shared channels.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/accel_pipeline.h"
#include "core/deepstore.h"
#include "core/query_model.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {
namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

std::shared_ptr<FeatureSource>
randomDb(std::int64_t dim, std::uint64_t count, std::uint64_t seed)
{
    workloads::FeatureGenerator gen(dim, 16, seed);
    return std::make_shared<GeneratedFeatureSource>(gen, count);
}

TEST(UnifiedDatapath, LiveScanMatchesStandalonePipelineTickForTick)
{
    // On a one-channel SSD a single-resident channel-level scan and
    // the standalone AccelPipeline run are the same machine: same
    // page addresses (Geometry::decode degenerates to the pipeline's
    // round-robin layout), same DFV burst stream, same compute
    // arbiter. Latency must agree tick for tick — not approximately.
    ssd::FlashParams flash;
    flash.channels = 1;
    DeepStoreConfig cfg;
    cfg.flash = flash;
    DeepStore ds(cfg);

    const std::int64_t dim = 4096; // 16 KiB: one feature per page
    const std::uint64_t features = 96; // 3 full bursts of 32 pages
    auto src = randomDb(dim, features, 11);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));

    LevelPerf perf = ds.model().evaluateModel(
        Level::ChannelLevel, dotModel(dim).model,
        ds.databaseInfo(db).featureBytes);
    ASSERT_TRUE(perf.supported);

    std::uint64_t qid = ds.querySync(src->featureAt(2), 4, model, db,
                                     0, 0, Level::ChannelLevel);
    const Tick live_ticks = ds.scheduler().completeTick(qid) -
                            ds.scheduler().submitTick(qid);

    // The same scan on a standalone controller and private queue.
    sim::EventQueue events;
    StatGroup stats{"xval"};
    ssd::FlashController channel(events, flash, 0, stats);
    PipelineRunConfig pcfg;
    pcfg.features = features;
    pcfg.featureBytes = ds.databaseInfo(db).featureBytes;
    pcfg.computeCyclesPerFeature = perf.modelRun.totalCycles();
    pcfg.frequencyHz = perf.placement.array.frequencyHz;
    pcfg.queueDepthPages = perf.placement.dfvQueueDepthPages;
    PipelineRunStats st =
        runAcceleratorPipeline(events, channel, flash, pcfg);

    EXPECT_EQ(st.featuresProcessed, features);
    EXPECT_EQ(st.pageReads, features); // full-page features
    EXPECT_DOUBLE_EQ(ticksToSeconds(live_ticks), st.totalSeconds);
    EXPECT_DOUBLE_EQ(ds.getResults(qid).latencySeconds,
                     st.totalSeconds);
}

/** Contention rig: a two-channel SSD with a two-page database (LPN 0
 *  on channel 0, LPN 1 on channel 1 under channel-major striping).
 *  Runs a channel-level scan of page 0 submitted at a fixed tick,
 *  optionally behind a host-read storm of `storm_reads` back-to-back
 *  reads of `storm_lpn` issued at tick 0. Returns the query latency
 *  in seconds. */
double
scanLatencyUnderStorm(std::optional<std::uint64_t> storm_lpn,
                      int storm_reads)
{
    ssd::FlashParams flash;
    flash.channels = 2;
    DeepStoreConfig cfg;
    cfg.flash = flash;
    DeepStore ds(cfg);

    const std::int64_t dim = 32; // 128 B: 128 features per page
    const std::uint64_t fpp = flash.pageBytes / (dim * 4);
    auto src = randomDb(dim, 2 * fpp, 12);
    std::uint64_t db = ds.writeDB(src);
    std::uint64_t model = ds.loadModel(dotModel(dim));

    if (storm_lpn) {
        for (int i = 0; i < storm_reads; ++i)
            ds.ssd().hostRead(*storm_lpn, 1, [](Tick) {});
    }
    // Submit the query a little into the storm so its first flash
    // read queues behind in-flight host reads (if any share its
    // channel) instead of racing them at tick zero.
    std::uint64_t qid = 0;
    ds.events().scheduleAfter(secondsToTicks(10e-6), [&] {
        qid = ds.query(src->featureAt(0), 4, model, db, 0, fpp,
                       Level::ChannelLevel);
    });
    while (ds.step()) {
    }
    EXPECT_NE(qid, 0u);
    EXPECT_EQ(ds.poll(qid), QueryState::Complete);
    return ds.getResults(qid).latencySeconds;
}

TEST(UnifiedDatapath, ScanContendsWithHostReadsOnSharedChannelOnly)
{
    // The scan's pages live on channel 0. A host-read storm on the
    // same channel must strictly delay it (shared planes and channel
    // bus); an equally sized storm on channel 1 must leave its
    // latency tick-identical to an idle SSD.
    const double idle = scanLatencyUnderStorm(std::nullopt, 0);
    const double shared = scanLatencyUnderStorm(0, 12);
    const double disjoint = scanLatencyUnderStorm(1, 12);

    EXPECT_GT(shared, idle);
    EXPECT_DOUBLE_EQ(disjoint, idle);
}

} // namespace
} // namespace deepstore::core
