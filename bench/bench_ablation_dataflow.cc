/**
 * @file
 * Ablation: dataflow choice per placement level (DESIGN.md §6).
 * The paper assigns output-stationary to the SSD and channel levels
 * and weight-stationary to the chip level (Table 3). This bench swaps
 * the dataflows to show why: OS wins when weights can stay resident
 * near the array, WS wins when every weight fetch is expensive.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/dse_select.h"
#include "core/query_model.h"

using namespace deepstore;

int
main()
{
    bench::banner("Ablation: dataflow per level",
                  "Geometric-mean per-feature time with OS / WS / IS "
                  "mapped onto each level's Table 3 array");

    ssd::FlashParams flash;
    TextTable t({"Level", "OS(us)", "WS(us)", "IS(us)",
                 "Paper's choice"});
    for (auto level : {core::Level::SsdLevel,
                       core::Level::ChannelLevel,
                       core::Level::ChipLevel}) {
        auto base = core::makePlacement(level, flash);
        std::vector<std::string> row{core::toString(level)};
        double best = 1e99;
        systolic::Dataflow best_df = base.array.dataflow;
        for (auto df : {systolic::Dataflow::OutputStationary,
                        systolic::Dataflow::WeightStationary,
                        systolic::Dataflow::InputStationary}) {
            auto cfg = base.array;
            cfg.dataflow = df;
            auto c = core::evaluateCandidate(level, flash, cfg);
            row.push_back(
                TextTable::num(c.meanPerFeatureSeconds * 1e6, 2));
            if (c.meanPerFeatureSeconds < best) {
                best = c.meanPerFeatureSeconds;
                best_df = df;
            }
        }
        row.push_back(std::string(toString(base.array.dataflow)) +
                      (best_df == base.array.dataflow
                           ? " (= model best)"
                           : std::string(" (model best: ") +
                                 toString(best_df) + ")"));
        t.addRow(row);
    }
    t.print(std::cout);

    bench::JsonReport report("ablation_dataflow");
    report.table(t);
    report.write();

    std::printf("\nPaper (Table 3): OS at SSD/channel level, WS at "
                "chip level. WS only pays off when\nthe per-feature "
                "weight traffic dominates — exactly the chip level's "
                "regime.\n");
    return 0;
}
