/**
 * @file
 * Regenerates Table 3: the DeepStore accelerator configuration chosen
 * for each placement level (array shape, dataflow, frequency,
 * scratchpad, area) plus the per-level power budgets of §4.5, and
 * checks each design's modeled peak power against its budget.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/placement.h"
#include "core/query_model.h"
#include "workloads/apps.h"

using namespace deepstore;

int
main()
{
    bench::banner("Table 3",
                  "DeepStore accelerator configurations per placement "
                  "level");

    ssd::FlashParams flash;
    energy::EnergyParams eparams;

    TextTable t({"Property", "SSD-level", "Channel-level",
                 "Chip-level"});
    auto s = core::makePlacement(core::Level::SsdLevel, flash);
    auto c = core::makePlacement(core::Level::ChannelLevel, flash);
    auto p = core::makePlacement(core::Level::ChipLevel, flash);

    auto shape = [](const core::Placement &pl) {
        return std::to_string(pl.array.rows) + "x" +
               std::to_string(pl.array.cols);
    };
    auto dataflow = [](const core::Placement &pl) {
        return std::string("Systolic, ") +
               systolic::toString(pl.array.dataflow);
    };
    auto mhz = [](const core::Placement &pl) {
        return TextTable::num(pl.array.frequencyHz / 1e6, 0) + " MHz";
    };
    auto spad = [](const core::Placement &pl) {
        return std::to_string(pl.array.scratchpadBytes / 1024) +
               " KiB" +
               (pl.array.sharedL2Bytes ? " (+8 MiB shared L2)" : "");
    };
    auto area = [&](const core::Placement &pl) {
        return TextTable::num(
                   energy::acceleratorAreaMm2(
                       eparams, pl.array.peCount(),
                       pl.array.scratchpadBytes),
                   1) +
               " mm^2";
    };
    auto count = [](const core::Placement &pl) {
        return std::to_string(pl.numAccelerators);
    };
    auto budget = [](const core::Placement &pl) {
        return TextTable::num(pl.powerBudgetW, 2) + " W";
    };

    t.addRow({"Technology", "32 nm", "32 nm", "32 nm"});
    t.addRow({"Configuration", dataflow(s), dataflow(c), dataflow(p)});
    t.addRow({"PEs", shape(s), shape(c), shape(p)});
    t.addRow({"Precision", "32-bit FP", "32-bit FP", "32-bit FP"});
    t.addRow({"Frequency", mhz(s), mhz(c), mhz(p)});
    t.addRow({"Scratchpad", spad(s), spad(c), spad(p)});
    t.addRow({"Area", area(s), area(c), area(p)});
    t.addRow({"Instances", count(s), count(c), count(p)});
    t.addRow({"Power budget", budget(s), budget(c), budget(p)});
    t.print(std::cout);

    std::printf("\nPaper Table 3 areas: 31.7 / 7.4 / 2.5 mm^2; "
                "budgets (§4.5): 55 / 1.71 / 0.43 W\n");

    bench::section(
        "Modeled per-accelerator power while scanning (vs budget)");
    core::DeepStoreModel ds(flash);
    TextTable pw({"App", "SSD(W)", "Channel(W)", "Chip(W)"});
    for (const auto &app : workloads::allApps()) {
        std::vector<std::string> row{app.name};
        for (auto lvl : {core::Level::SsdLevel,
                         core::Level::ChannelLevel,
                         core::Level::ChipLevel}) {
            auto perf = ds.evaluate(lvl, app);
            if (!perf.supported) {
                row.push_back("n/a");
                continue;
            }
            double per_accel =
                (perf.activePowerW - core::kSsdBasePowerW) /
                perf.placement.numAccelerators;
            row.push_back(TextTable::num(per_accel, 2));
        }
        pw.addRow(row);
    }
    pw.print(std::cout);

    bench::JsonReport report("table3_configs");
    report.table(t, "table3");
    report.table(pw, "per_accel_power");
    report.write();
    return 0;
}
