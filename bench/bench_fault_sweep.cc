/**
 * @file
 * Fault-injection sweep: query latency (p50/p99) and mean result
 * coverage as a function of the injected uncorrectable-read rate and
 * the number of queries kept in flight. Every cell replays the same
 * closed-loop workload under the same seed, so the sweep is exactly
 * reproducible run to run; the zero-fault column doubles as a
 * regression anchor (coverage must be 1.0 and its latencies must
 * match the fault-free engine bit for bit).
 *
 * The interesting shape: mild fault rates cost latency (retry ladder,
 * page reissue) but not coverage — the recovery machinery absorbs
 * them. Only when the per-page failure probability overwhelms the
 * retry budget does mean coverage drop below 1, and it degrades
 * smoothly rather than collapsing, which is the graceful-degradation
 * property the scheduler is designed for.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

constexpr std::int64_t kDim = 64;
constexpr std::uint64_t kFeatures = 8'000;
constexpr std::uint64_t kQueriesPerCell = 64;
constexpr std::uint64_t kFaultSeed = 20'260'806;

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("bench-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

struct CellResult {
    std::vector<double> latencies; // seconds, one per query
    double coverage_sum = 0.0;
    std::uint64_t degraded = 0;
};

/** Closed-loop run of one (fault rate, depth) cell. */
CellResult
runCell(double fault_rate, int depth)
{
    core::DeepStoreConfig cfg;
    cfg.defaultLevel = core::Level::ChannelLevel;
    cfg.flash.faults.seed = kFaultSeed;
    cfg.flash.faults.uncorrectableReadProbability = fault_rate;
    core::DeepStore ds(cfg);
    workloads::FeatureGenerator gen(kDim, 32, 7);
    std::uint64_t db = ds.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen,
                                                       kFeatures));
    std::uint64_t model = ds.loadModel(dotModel(kDim));

    CellResult out;
    std::uint64_t submitted = 0;
    std::function<void()> submitOne = [&] {
        std::vector<float> qfv =
            gen.featureAt(submitted % kFeatures);
        std::uint64_t qid = ds.query(qfv, 5, model, db, 0, 0);
        ++submitted;
        ds.onComplete(qid, [&](const core::QueryResult &res) {
            out.latencies.push_back(res.latencySeconds);
            out.coverage_sum += res.coverageFraction;
            if (res.outcome != core::QueryOutcome::Success)
                ++out.degraded;
            if (submitted < kQueriesPerCell)
                submitOne();
        });
    };
    for (int i = 0; i < depth &&
                    submitted < kQueriesPerCell;
         ++i)
        submitOne();
    ds.drain();
    return out;
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double idx = p * static_cast<double>(v.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

} // namespace

int
main()
{
    bench::banner(
        "fault-injection sweep",
        "p50/p99 query latency and mean coverage vs injected\n"
        "uncorrectable-read rate and in-flight depth (seed " +
            std::to_string(kFaultSeed) + ", " +
            std::to_string(kQueriesPerCell) + " queries/cell)");

    bench::JsonReport report("fault_sweep");
    report.meta("dim", static_cast<double>(kDim))
        .meta("features", static_cast<double>(kFeatures))
        .meta("queriesPerCell",
              static_cast<double>(kQueriesPerCell))
        .meta("faultSeed", static_cast<double>(kFaultSeed));

    TextTable t({"fault rate", "depth", "p50 lat (ms)",
                 "p99 lat (ms)", "mean coverage", "degraded"});
    for (double rate : {0.0, 1e-4, 1e-3, 1e-2, 5e-2, 0.25}) {
        for (int depth : {1, 4, 16}) {
            CellResult cell = runCell(rate, depth);
            double p50 = percentile(cell.latencies, 0.50);
            double p99 = percentile(cell.latencies, 0.99);
            double cov = cell.coverage_sum /
                         static_cast<double>(cell.latencies.size());
            t.addRow({TextTable::num(rate, 4),
                      std::to_string(depth),
                      TextTable::num(p50 * 1e3, 3),
                      TextTable::num(p99 * 1e3, 3),
                      TextTable::num(cov, 4),
                      std::to_string(cell.degraded)});
            report.beginRow()
                .col("faultRate", rate)
                .col("depth", static_cast<double>(depth))
                .col("p50LatencySeconds", p50)
                .col("p99LatencySeconds", p99)
                .col("meanCoverageFraction", cov)
                .col("degradedQueries",
                     static_cast<double>(cell.degraded));
            if (rate == 0.0 && cov != 1.0)
                fatal("fault-free cell must have full coverage");
        }
    }
    t.print(std::cout);
    report.write();
    return 0;
}
