/**
 * @file
 * Regenerates Table 4: the summary of DeepStore's speedup and
 * energy-efficiency improvement over the traditional GPU+SSD system
 * for every application and placement level, with the paper's
 * published numbers alongside.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "host/baseline.h"

using namespace deepstore;

int
main()
{
    bench::banner("Table 4",
                  "DeepStore speedup and energy-efficiency vs GPU+SSD "
                  "(Titan V)");

    ssd::FlashParams flash;
    core::DeepStoreModel ds(flash);
    host::GpuSsdSystem gpu(host::voltaSpec());

    struct PaperCell
    {
        double speedup, eff;
    };
    struct PaperRow
    {
        PaperCell ssd, channel, chip; ///< chip.speedup < 0 => n/a
    };
    const PaperRow paper[] = {
        {{0.1, 0.7}, {3.9, 17.1}, {-1, -1}},
        {{0.3, 1.6}, {8.3, 28.0}, {1.0, 2.6}},
        {{0.6, 2.8}, {13.2, 38.6}, {1.9, 3.2}},
        {{0.4, 2.1}, {10.7, 35.6}, {1.5, 3.7}},
        {{0.4, 2.2}, {17.7, 78.6}, {4.6, 13.7}},
    };

    TextTable t({"App", "Level", "Speedup", "Paper", "EnergyEff",
                 "Paper"});
    auto apps = workloads::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &app = apps[i];
        double t_gpu = gpu.perFeatureSeconds(app);
        const PaperCell *cells[3] = {&paper[i].ssd, &paper[i].channel,
                                     &paper[i].chip};
        core::Level levels[3] = {core::Level::SsdLevel,
                                 core::Level::ChannelLevel,
                                 core::Level::ChipLevel};
        for (int l = 0; l < 3; ++l) {
            auto p = ds.evaluate(levels[l], app);
            if (!p.supported) {
                t.addRow({app.name, core::toString(levels[l]), "n/a",
                          "n/a", "n/a", "n/a"});
                continue;
            }
            double speedup = t_gpu / p.aggregateSeconds;
            double eff =
                speedup * gpu.powerW() / p.activePowerW;
            t.addRow(
                {app.name, core::toString(levels[l]),
                 TextTable::num(speedup, 1) + "x",
                 cells[l]->speedup < 0
                     ? "n/a"
                     : TextTable::num(cells[l]->speedup, 1) + "x",
                 TextTable::num(eff, 1) + "x",
                 cells[l]->eff < 0
                     ? "n/a"
                     : TextTable::num(cells[l]->eff, 1) + "x"});
        }
    }
    t.print(std::cout);

    bench::JsonReport report("table4_summary");
    report.table(t);
    report.write();

    bench::section("Abstract headline");
    double best_speedup = 0, best_eff = 0;
    for (const auto &app : apps) {
        auto p = ds.evaluate(core::Level::ChannelLevel, app);
        double t_gpu = gpu.perFeatureSeconds(app);
        best_speedup =
            std::max(best_speedup, t_gpu / p.aggregateSeconds);
        best_eff = std::max(best_eff, t_gpu / p.aggregateSeconds *
                                          gpu.powerW() /
                                          p.activePowerW);
    }
    std::printf("Best speedup %.1fx (paper: up to 17.7x), best "
                "energy-efficiency %.1fx (paper: up to 78.6x)\n",
                best_speedup, best_eff);
    return 0;
}
