/**
 * @file
 * Regenerates Fig. 12: per-application energy breakdown (compute /
 * memory / flash) of each DeepStore level. Paper shape: channel-level
 * energy is dominated by memory accesses (the shared-L2 weight
 * traffic); chip-level energy is dominated by flash accesses; ReId
 * spends heavily on flash since each feature spans three pages.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"

using namespace deepstore;

int
main()
{
    bench::banner("Figure 12",
                  "DeepStore energy breakdown per level: compute / "
                  "memory / flash (%)");

    ssd::FlashParams flash;
    core::DeepStoreModel ds(flash);

    TextTable t({"App", "Level", "Compute%", "Memory%", "Flash%",
                 "Energy/feature(uJ)"});
    for (const auto &app : workloads::allApps()) {
        for (auto lvl : {core::Level::SsdLevel,
                         core::Level::ChannelLevel,
                         core::Level::ChipLevel}) {
            auto p = ds.evaluate(lvl, app);
            if (!p.supported) {
                t.addRow({app.name, core::toString(lvl), "n/a", "n/a",
                          "n/a", "n/a"});
                continue;
            }
            double total = p.energyPerFeature.total();
            t.addRow({app.name, core::toString(lvl),
                      TextTable::num(
                          p.energyPerFeature.computeJ / total * 100,
                          1),
                      TextTable::num(
                          p.energyPerFeature.memoryJ / total * 100, 1),
                      TextTable::num(
                          p.energyPerFeature.flashJ / total * 100, 1),
                      TextTable::num(total * 1e6, 2)});
        }
    }
    t.print(std::cout);

    bench::JsonReport report("fig12_power_breakdown");
    report.table(t);
    report.write();

    bench::section("Shape checks (paper §6.4)");
    int channel_mem_dominated = 0, chip_flash_dominated = 0, n = 0;
    for (const auto &app : workloads::allApps()) {
        auto ch = ds.evaluate(core::Level::ChannelLevel, app);
        if (ch.energyPerFeature.memoryJ >
            ch.energyPerFeature.computeJ +
                ch.energyPerFeature.flashJ)
            ++channel_mem_dominated;
        auto chip = ds.evaluate(core::Level::ChipLevel, app);
        if (chip.supported) {
            ++n;
            if (chip.energyPerFeature.flashJ >
                chip.energyPerFeature.computeJ +
                    chip.energyPerFeature.memoryJ)
                ++chip_flash_dominated;
        }
    }
    std::printf("Channel level memory-dominated for %d/5 apps "
                "(paper: all)\n",
                channel_mem_dominated);
    std::printf("Chip level flash-dominated for %d/%d supported apps "
                "(paper: all)\n",
                chip_flash_dominated, n);
    return 0;
}
