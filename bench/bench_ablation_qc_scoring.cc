/**
 * @file
 * Ablation: Query Cache scoring metric (§4.6). Algorithm 1 gates hits
 * on qcn_score x QCN_Acc; the paper notes "other metrics can also be
 * exploited". This bench compares three policies at a fixed 10%
 * threshold:
 *   - score x accuracy (the paper's),
 *   - raw score (ignores model confidence),
 *   - exact-repeat only (a conventional cache).
 * It reports miss rate *and* result quality (fraction of hits whose
 * matched query truly shares the incoming query's topic).
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_cache.h"
#include "workloads/query_universe.h"

using namespace deepstore;

namespace {

struct PolicyOutcome
{
    double missRate = 0.0;
    double falseHitRate = 0.0; ///< hits whose match is cross-topic
};

PolicyOutcome
run(const workloads::QueryUniverse &u, double accuracy_factor,
    bool exact_only)
{
    core::QueryCacheConfig cfg;
    cfg.capacity = 500;
    cfg.threshold = 0.10;
    cfg.qcnAccuracy = accuracy_factor;
    core::QueryCache qc(
        cfg, [&u, exact_only](std::uint64_t a, std::uint64_t b) {
            if (exact_only)
                return a == b ? 1.0 : 0.0;
            return u.qcnScore(a, b);
        });
    auto trace = u.trace(16000, workloads::Popularity::Zipf, 0.7, 55);
    std::uint64_t false_hits = 0, hits = 0;
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        if (i == 4000)
            qc.resetStats();
        auto out = qc.lookup(trace[i]);
        if (out.hit) {
            if (i >= 4000) {
                ++hits;
                false_hits += u.topicOf(out.matchedQuery) !=
                              u.topicOf(trace[i]);
            }
        } else {
            qc.insert(trace[i], {});
        }
    }
    PolicyOutcome o;
    o.missRate = qc.missRate();
    o.falseHitRate =
        hits ? static_cast<double>(false_hits) /
                   static_cast<double>(hits)
             : 0.0;
    return o;
}

} // namespace

int
main()
{
    bench::banner("Ablation: Query Cache scoring metric",
                  "Miss rate vs hit quality for three gate policies "
                  "(Zipf 0.7, 500 entries, 10% threshold)");

    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 50'000;
    ucfg.numTopics = 2'000;
    workloads::QueryUniverse u(ucfg);

    TextTable t({"Policy", "MissRate%", "FalseHit%"});
    auto paper = run(u, 0.97, false);
    t.addRow({"score x accuracy (paper)",
              TextTable::num(paper.missRate * 100, 1),
              TextTable::num(paper.falseHitRate * 100, 2)});
    auto raw = run(u, 1.0, false);
    t.addRow({"raw score", TextTable::num(raw.missRate * 100, 1),
              TextTable::num(raw.falseHitRate * 100, 2)});
    auto exact = run(u, 1.0, true);
    t.addRow({"exact repeat only",
              TextTable::num(exact.missRate * 100, 1),
              TextTable::num(exact.falseHitRate * 100, 2)});
    t.print(std::cout);

    bench::JsonReport report("ablation_qc_scoring");
    report.table(t);
    report.write();

    std::printf("\nThe accuracy product trades a few points of hit "
                "rate for confidence: the raw-score\ngate hits more "
                "but admits more cross-topic (wrong) matches; the "
                "exact gate never errs\nbut forfeits every semantic "
                "hit (the paper's motivating case).\n");
    return 0;
}
