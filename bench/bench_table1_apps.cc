/**
 * @file
 * Regenerates Table 1: the intelligent-query applications and their
 * characteristics (feature size, layer counts, FLOPs, weight size).
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "workloads/apps.h"

using namespace deepstore;

int
main()
{
    bench::banner("Table 1",
                  "Intelligent query applications and their "
                  "characteristics");

    TextTable t({"Application", "Type", "Feature(KB)", "#CONV", "#FC",
                 "#EW", "MFLOPs", "Weights(MB)", "Dataset"});
    for (const auto &app : workloads::allApps()) {
        t.addRow({app.name, app.type,
                  TextTable::num(
                      static_cast<double>(app.featureBytes()) / 1024.0,
                      1),
                  std::to_string(
                      app.scn.countLayers(nn::LayerKind::Conv2D)),
                  std::to_string(app.scn.countLayers(
                      nn::LayerKind::FullyConnected)),
                  std::to_string(
                      app.scn.countLayers(nn::LayerKind::ElementWise)),
                  TextTable::num(
                      static_cast<double>(app.scn.totalFlops()) / 1e6,
                      2),
                  TextTable::num(
                      static_cast<double>(app.scn.totalWeightBytes()) /
                          1e6,
                      2),
                  app.dataset});
    }
    t.print(std::cout);

    bench::JsonReport report("table1_apps");
    report.table(t);
    report.write();

    std::printf("\nPaper Table 1: ReId 44KB/2/2/1/9.8M/10.7MB, "
                "MIR 2KB/0/3/0/1.05M/2MB, ESTP 16KB/0/3/0/4.72M/9MB,\n"
                "TIR 2KB/0/3/1/0.79M/1.5MB, "
                "TextQA 0.8KB/0/1/1/0.08M/0.16MB\n");
    return 0;
}
