/**
 * @file
 * Wear / endurance sweep: what an aging drive does to intelligent
 * queries. One simulated device lives through successive aging
 * phases (host write/trim churn that consumes program/erase cycles)
 * with a batch of fixed queries after each phase. As the per-block
 * RBER climbs — erase wear from the churn, read disturb and observed
 * uncorrectables from the scans themselves — the FTL lifecycle
 * machinery kicks in: background relocations (real flash copies that
 * contend with the scans), then block retirement. The sweep reports,
 * per drive age:
 *
 *   - write amplification (logical writes + migration + relocation
 *     copies, over logical writes),
 *   - cumulative relocations and retired superblocks,
 *   - query p50/p99 latency and mean result coverage.
 *
 * The expected shape: latency and amplification stay flat while the
 * drive is young, then relocations appear (latency ticks up as copy
 * traffic shares the channels), and late in life blocks retire while
 * coverage stays honest. Everything is seeded and event-driven, so
 * the whole life story replays bit-identically.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

constexpr std::int64_t kDim = 32;
constexpr std::uint64_t kFeatures = 2'000; // 16 pages (superblock 0)
constexpr std::uint64_t kQueriesPerPhase = 16;
constexpr int kPhases = 6;
constexpr int kAgingCyclesPerPhase = 7;
/** The last aging phase is closed-loop: churn continues until this
 *  many superblocks have retired (the endurance cascade fires only
 *  near total P/E budget exhaustion because greedy least-worn
 *  allocation keeps the spare pool balanced until then). */
constexpr std::uint64_t kTargetRetired = 2;
/** Safety floor: stop churning before the free pool empties so the
 *  drive never goes device-full mid-benchmark. */
constexpr std::uint64_t kMinFreeSuperblocks = 3;
constexpr int kEndOfLifeCycleCap = 200;
constexpr std::uint64_t kFaultSeed = 20'260'806;

/** Scratch LPN region the aging churn cycles through (superblock 1
 *  of the small geometry; the database lives in superblock 0). */
constexpr std::uint64_t kScratchLpn = 64;
constexpr std::uint64_t kScratchPages = 64;

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("bench-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

core::DeepStoreConfig
agedDriveConfig()
{
    core::DeepStoreConfig cfg;
    cfg.defaultLevel = core::Level::ChannelLevel;
    // Small geometry so wear accumulates within a tractable run:
    // 4ch x 2chip x 2plane x 8blk x 4pg -> 8 superblocks, 64 pages
    // each.
    cfg.flash.channels = 4;
    cfg.flash.chipsPerChannel = 2;
    cfg.flash.planesPerChip = 2;
    cfg.flash.blocksPerPlane = 8;
    cfg.flash.pagesPerBlock = 4;

    cfg.flash.faults.seed = kFaultSeed;
    cfg.flash.wear.enabled = true;
    cfg.flash.wear.baseRber = 1e-4;
    cfg.flash.wear.rberPerErase = 1e-3;  // erase wear
    cfg.flash.wear.rberPerRead = 1.3e-4; // read disturb
    cfg.flash.wear.rberPerUncorrectable = 1e-2;
    // Read disturb on the database block drives *relocations*;
    // *retirement* comes from the endurance cap — the aging churn
    // spends the P/E budget of the spare pool, and blocks that hit
    // maxEraseCount leave service for good.
    cfg.flash.wear.relocateRberThreshold = 0.04;
    cfg.flash.wear.retireRberThreshold = 0.12;
    cfg.flash.wear.maxEraseCount = 8;
    cfg.flash.wear.relocationBatchPages = 16;
    cfg.maxPageRetries = 2;
    return cfg;
}

double
stat(const core::DeepStore &ds, const std::string &name)
{
    const Stat *s =
        const_cast<core::DeepStore &>(ds).ssd().stats().find(name);
    return s ? s->value() : 0.0;
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double idx = p * static_cast<double>(v.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

} // namespace

int
main()
{
    bench::banner(
        "wear / endurance sweep",
        "write amplification, relocations, retired blocks, and query\n"
        "latency/coverage as one drive ages through P/E churn (seed " +
            std::to_string(kFaultSeed) + ")");

    core::DeepStoreConfig cfg = agedDriveConfig();
    core::DeepStore ds(cfg);
    workloads::FeatureGenerator gen(kDim, 32, 7);
    std::uint64_t db = ds.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen,
                                                       kFeatures));
    std::uint64_t model = ds.loadModel(dotModel(kDim));

    bench::JsonReport report("wear_endurance");
    report.meta("dim", static_cast<double>(kDim))
        .meta("features", static_cast<double>(kFeatures))
        .meta("queriesPerPhase",
              static_cast<double>(kQueriesPerPhase))
        .meta("agingCyclesPerPhase",
              static_cast<double>(kAgingCyclesPerPhase))
        .meta("maxEraseCount",
              static_cast<double>(cfg.flash.wear.maxEraseCount))
        .meta("faultSeed", static_cast<double>(kFaultSeed));

    TextTable t({"age (P/E cycles)", "write amp", "relocations",
                 "retired blocks", "p50 lat (ms)", "p99 lat (ms)",
                 "mean coverage", "degraded"});

    // One program/erase cycle of churn on the least-worn free
    // superblock.
    auto churn_cycle = [&]() {
        bool done = false;
        ds.ssd().hostWrite(kScratchLpn, kScratchPages,
                           [&](Tick) { done = true; });
        while (!done && ds.step()) {
        }
        done = false;
        ds.ssd().hostTrim(kScratchLpn, kScratchPages,
                          [&](Tick) { done = true; });
        while (!done && ds.step()) {
        }
    };

    int age_cycles = 0;
    for (int phase = 0; phase < kPhases; ++phase) {
        if (phase > 0 && phase < kPhases - 1) {
            // Mid-life aging: a fixed dose of churn per phase.
            for (int cyc = 0; cyc < kAgingCyclesPerPhase; ++cyc) {
                churn_cycle();
                ++age_cycles;
            }
        } else if (phase == kPhases - 1) {
            // End of life is closed-loop: greedy least-worn
            // allocation keeps the spare pool balanced, so blocks
            // only start hitting maxEraseCount when the whole P/E
            // budget is nearly spent — and then they retire in a
            // cascade. Churn until the cascade has visibly started,
            // with a floor on the free pool so the drive never goes
            // device-full.
            int cyc = 0;
            while (ds.ssd().ftl().retiredSuperblocks() <
                       kTargetRetired &&
                   ds.ssd().ftl().freeSuperblocks() >
                       kMinFreeSuperblocks &&
                   cyc < kEndOfLifeCycleCap) {
                churn_cycle();
                ++age_cycles;
                ++cyc;
            }
        }

        // Fixed query batch against the (possibly relocated)
        // database.
        std::vector<double> lat;
        double cov_sum = 0.0;
        std::uint64_t degraded = 0;
        for (std::uint64_t q = 0; q < kQueriesPerPhase; ++q) {
            std::uint64_t qid = ds.querySync(
                gen.featureAt(q % kFeatures), 5, model, db, 0, 0);
            const core::QueryResult &res = ds.getResults(qid);
            lat.push_back(res.latencySeconds);
            cov_sum += res.coverageFraction;
            if (res.outcome != core::QueryOutcome::Success)
                ++degraded;
        }
        ds.drain(); // let background relocations finish

        double writes = stat(ds, "ftl.pageWrites");
        double amp =
            (writes + stat(ds, "ftl.migratedPages") +
             stat(ds, "ftl.relocatedPages")) /
            std::max(writes, 1.0);
        double relocations = stat(ds, "ftl.relocations");
        double retired = stat(ds, "ftl.retiredSuperblocks");
        double p50 = percentile(lat, 0.50);
        double p99 = percentile(lat, 0.99);
        double cov =
            cov_sum / static_cast<double>(kQueriesPerPhase);

        t.addRow({std::to_string(age_cycles),
                  TextTable::num(amp, 3),
                  TextTable::num(relocations, 0),
                  TextTable::num(retired, 0),
                  TextTable::num(p50 * 1e3, 3),
                  TextTable::num(p99 * 1e3, 3),
                  TextTable::num(cov, 4),
                  std::to_string(degraded)});
        report.beginRow()
            .col("ageCycles", static_cast<double>(age_cycles))
            .col("writeAmplification", amp)
            .col("relocations", relocations)
            .col("retiredBlocks", retired)
            .col("p50LatencySeconds", p50)
            .col("p99LatencySeconds", p99)
            .col("meanCoverageFraction", cov)
            .col("degradedQueries", static_cast<double>(degraded));
    }

    t.print(std::cout);

    // The life story must actually unfold: an aged drive that never
    // relocates or retires anything means the lifecycle machinery is
    // disconnected from the datapath.
    if (stat(ds, "ftl.relocations") < 1.0)
        fatal("aged drive triggered no relocations");
    if (stat(ds, "ftl.retiredSuperblocks") < 1.0)
        fatal("aged drive retired no blocks");

    report.write();
    return 0;
}
