/**
 * @file
 * Self-healing cost sweep: foreground query latency (p50/p99) and
 * time-to-full-replication as a function of the repair-bandwidth cap
 * and the injected fault rate (DESIGN.md §12).
 *
 * Every cell replays the same closed-loop workload on a 4-node R=2
 * array, kills node 1 at the start of the query phase, and lets the
 * background scrub + repair engines run concurrently with the
 * foreground scan. Repair traffic crosses the shared host fabric
 * behind the configured cap, so the sweep exposes the classic
 * durability trade-off: a generous cap restores replication fast but
 * steals fabric bandwidth from query scatter/merge legs; a stingy cap
 * keeps foreground p99 flat while stretching the re-replication
 * window (the interval a second death would lose data).
 *
 * The no-kill, no-fault baseline anchors the regression gates CI
 * applies to the emitted JSON (JsonReport -> BENCH_scrub_repair.json):
 * time-to-repair must be finite in every kill cell, and foreground
 * p99 at the default cap must stay within 2x the baseline.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

constexpr std::int64_t kDim = 64;
constexpr std::uint64_t kFeatures = 8'000;
constexpr std::uint64_t kQueriesPerCell = 48;
constexpr std::uint64_t kFaultSeed = 20'260'808;
constexpr double kDefaultCap = 1.6e9; // RepairConfig default

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("bench-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

struct CellResult
{
    std::vector<double> latencies; // seconds, one per query
    double coverage_sum = 0.0;
    double timeToRepairSeconds = 0.0; // 0 in the baseline cell
    std::uint64_t repairPages = 0;
    std::uint64_t scrubScanned = 0;
    std::uint64_t scrubFound = 0;
    std::uint64_t scrubRepaired = 0;
};

/** One closed-loop cell; cap <= 0 means "healthy baseline" (no kill,
 *  no scrub/repair). fault_rate is the latent per-sector corruption
 *  probability the scrub pass is expected to surface. */
CellResult
runCell(double repair_cap, double fault_rate)
{
    const bool heal = repair_cap > 0.0;
    core::DeepStoreConfig cfg;
    cfg.defaultLevel = core::Level::ChannelLevel;
    for (std::uint64_t i = 0; i < 4; ++i) {
        ssd::FlashParams node;
        // Distinct per-node seeds: latent damage must be independent
        // across replicas, as it is on real hardware.
        node.faults.seed = kFaultSeed + i;
        node.faults.partialPageCorruptionProbability = fault_rate;
        node.faults.sectorsPerPage = fault_rate > 0.0 ? 8 : 0;
        cfg.array.nodes.push_back(node);
    }
    cfg.array.replication = 2;
    if (heal) {
        cfg.array.repair.enabled = true;
        cfg.array.repair.bandwidthBytesPerSecond = repair_cap;
        cfg.array.scrub.enabled = true;
        cfg.array.scrub.pagesPerSecond = 20'000.0;
        // After ingest settles, so the single pass walks real shards.
        cfg.array.scrub.startDelaySeconds = 50e-3;
    }
    core::DeepStore ds(cfg);
    workloads::FeatureGenerator gen(kDim, 32, 7);
    std::uint64_t db = ds.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen,
                                                       kFeatures));
    std::uint64_t model = ds.loadModel(dotModel(kDim));

    Tick kill_tick = 0;
    if (heal) {
        kill_tick = ds.events().now();
        if (ds.killNode(1) != core::KillNodeResult::Killed)
            fatal("node 1 must be alive at the kill point");
    }

    CellResult out;
    std::uint64_t submitted = 0;
    std::function<void()> submitOne = [&] {
        std::vector<float> qfv = gen.featureAt(submitted % kFeatures);
        std::uint64_t qid = ds.query(qfv, 5, model, db, 0, 0);
        ++submitted;
        ds.onComplete(qid, [&](const core::QueryResult &res) {
            out.latencies.push_back(res.latencySeconds);
            out.coverage_sum += res.coverageFraction;
            if (submitted < kQueriesPerCell)
                submitOne();
        });
    };
    for (int i = 0; i < 4 && submitted < kQueriesPerCell; ++i)
        submitOne();
    ds.drain();
    // Let the background engines finish (repair queue + scrub pass).
    while (ds.step()) {
    }

    const auto &array = ds.array();
    if (heal) {
        if (!array.repairIdle() ||
            array.lastRepairCompleteTick() == 0)
            fatal("repair never reached full replication");
        out.timeToRepairSeconds = ticksToSeconds(
            array.lastRepairCompleteTick() - kill_tick);
        out.repairPages = array.repairPagesCopied();
        out.scrubScanned = array.scrubPagesScanned();
        out.scrubFound = array.scrubUncorrectableFound();
        out.scrubRepaired = array.scrubLatentRepaired();
    }
    return out;
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double idx = p * static_cast<double>(v.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

} // namespace

int
main()
{
    bench::banner(
        "scrub/repair cost sweep",
        "foreground p50/p99 and time-to-full-replication vs the\n"
        "repair-bandwidth cap and injected fault rate (4 nodes, R=2,\n"
        "node 1 killed at query start; seed " +
            std::to_string(kFaultSeed) + ", " +
            std::to_string(kQueriesPerCell) + " queries/cell)");

    CellResult base = runCell(0.0, 0.0);
    const double base_p99 = percentile(base.latencies, 0.99);

    bench::JsonReport report("scrub_repair");
    report.meta("dim", static_cast<double>(kDim))
        .meta("features", static_cast<double>(kFeatures))
        .meta("queriesPerCell", static_cast<double>(kQueriesPerCell))
        .meta("faultSeed", static_cast<double>(kFaultSeed))
        .meta("defaultCapBytesPerSecond", kDefaultCap)
        .meta("baselineP50Seconds",
              percentile(base.latencies, 0.50))
        .meta("baselineP99Seconds", base_p99);

    TextTable t({"cap (GB/s)", "fault rate", "p50 (ms)", "p99 (ms)",
                 "p99/base", "repair (ms)", "pages", "scrub found"});
    for (double cap : {0.4e9, kDefaultCap, 6.4e9}) {
        for (double rate : {0.0, 0.005}) {
            CellResult cell = runCell(cap, rate);
            double p50 = percentile(cell.latencies, 0.50);
            double p99 = percentile(cell.latencies, 0.99);
            double mean_cov =
                cell.coverage_sum /
                static_cast<double>(cell.latencies.size());
            t.addRow({TextTable::num(cap / 1e9, 2),
                      TextTable::num(rate, 4),
                      TextTable::num(p50 * 1e3, 3),
                      TextTable::num(p99 * 1e3, 3),
                      TextTable::num(p99 / base_p99, 3),
                      TextTable::num(cell.timeToRepairSeconds * 1e3,
                                     3),
                      std::to_string(cell.repairPages),
                      std::to_string(cell.scrubFound)});
            report.beginRow()
                .col("repairCapBytesPerSecond", cap)
                .col("faultRate", rate)
                .col("p50LatencySeconds", p50)
                .col("p99LatencySeconds", p99)
                .col("meanCoverageFraction", mean_cov)
                .col("timeToFullReplicationSeconds",
                     cell.timeToRepairSeconds)
                .col("repairPagesCopied",
                     static_cast<double>(cell.repairPages))
                .col("scrubPagesScanned",
                     static_cast<double>(cell.scrubScanned))
                .col("scrubUncorrectableFound",
                     static_cast<double>(cell.scrubFound))
                .col("scrubLatentRepaired",
                     static_cast<double>(cell.scrubRepaired));
            // R=2 over a single death: with no latent damage the
            // surviving replica must keep coverage at 1.0.
            if (rate == 0.0 &&
                cell.coverage_sum <
                    static_cast<double>(cell.latencies.size()))
                fatal("replicated array lost coverage on one death");
        }
    }
    t.print(std::cout);
    report.write();
    return 0;
}
