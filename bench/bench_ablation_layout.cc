/**
 * @file
 * Ablation: feature-vector flash layout (§4.4). DeepStore packs
 * features so none straddles a page (small features share pages;
 * large features take ceil(size/page) pages). The alternative —
 * page-aligning every feature — wastes capacity and, for small
 * features, flash read work. This bench quantifies both against the
 * paper's five feature sizes.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "ssd/throughput.h"
#include "workloads/apps.h"

using namespace deepstore;

namespace {

/** Channel feature rate when every feature is page-aligned. */
double
alignedFeatureRate(const ssd::FlashParams &p,
                   std::uint64_t feature_bytes)
{
    std::uint64_t pages =
        (feature_bytes + p.pageBytes - 1) / p.pageBytes;
    // Each feature reads `pages` pages but transfers only its bytes.
    double plane_rate =
        static_cast<double>(p.planesPerChip) * p.chipsPerChannel /
        p.readLatency / static_cast<double>(pages);
    double bus_rate =
        p.channelBandwidth / static_cast<double>(feature_bytes);
    return std::min(plane_rate, bus_rate);
}

} // namespace

int
main()
{
    bench::banner("Ablation: feature layout",
                  "Packed (paper §4.4) vs page-aligned feature "
                  "placement: capacity and channel throughput");

    ssd::FlashParams p;
    const std::uint64_t db_features = 10'000'000;

    TextTable t({"App", "Feature", "Packed pages/10M", "Aligned",
                 "CapacityWaste", "PackedRate(f/s/ch)", "AlignedRate",
                 "Slowdown"});
    for (const auto &app : workloads::allApps()) {
        ssd::FeatureLayout layout{app.featureBytes(), p.pageBytes};
        std::uint64_t packed_pages =
            layout.pagesForFeatures(db_features);
        std::uint64_t aligned_pages =
            db_features *
            ((app.featureBytes() + p.pageBytes - 1) / p.pageBytes);
        double packed_rate =
            ssd::channelFeatureRate(p, app.featureBytes());
        double aligned_rate = alignedFeatureRate(p, app.featureBytes());
        t.addRow(
            {app.name,
             TextTable::num(
                 static_cast<double>(app.featureBytes()) / 1024, 1) +
                 "KB",
             std::to_string(packed_pages / 1000) + "K",
             std::to_string(aligned_pages / 1000) + "K",
             TextTable::num((static_cast<double>(aligned_pages) /
                                 static_cast<double>(packed_pages) -
                             1.0) *
                                100,
                            0) +
                 "%",
             TextTable::num(packed_rate / 1000, 0) + "K",
             TextTable::num(aligned_rate / 1000, 0) + "K",
             TextTable::num(packed_rate / aligned_rate, 1) + "x"});
    }
    t.print(std::cout);

    bench::JsonReport report("ablation_layout");
    report.table(t);
    report.write();

    std::printf("\nPage-aligning TextQA's 0.8 KB features would waste "
                "~19x capacity and drop the\nper-channel rate 1.7x "
                "(plane-read amplification); 2 KB features waste 7x "
                "capacity\nbut stay bus-bound; page-multiple features "
                "(ESTP, ReId) are unaffected. Packing\nis strictly "
                "better, which is why §4.4 adopts it.\n");
    return 0;
}
