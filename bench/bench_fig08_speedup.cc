/**
 * @file
 * Regenerates Fig. 8 (and Table 4's speedup column): per-application
 * speedup of wimpy in-SSD cores and of the three DeepStore
 * accelerator levels over the GPU+SSD baseline (Volta), at the §6.2
 * batch sizes.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "host/baseline.h"

using namespace deepstore;

int
main()
{
    bench::banner("Figure 8 / Table 4 (speedups)",
                  "Speedup over the GPU+SSD (Titan V) baseline");

    ssd::FlashParams flash;
    core::DeepStoreModel ds(flash);
    host::GpuSsdSystem gpu(host::voltaSpec());
    host::WimpySystem wimpy;

    struct PaperRow
    {
        double wimpy, ssd, channel, chip;
    };
    // Fig. 8 bars / Table 4.
    const PaperRow paper[] = {
        {0.00, 0.1, 3.92, -1.0}, // ReId (chip-level cannot run)
        {0.02, 0.3, 8.26, 1.01},
        {0.04, 0.6, 13.16, 1.90},
        {0.03, 0.4, 10.68, 1.47},
        {0.09, 0.4, 17.74, 4.62},
    };

    TextTable t({"App", "BaselinePerFeature(us)", "Wimpy", "SSD",
                 "Channel", "Chip", "Paper(W/S/C/P)"});
    auto apps = workloads::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &app = apps[i];
        double base = gpu.perFeatureSeconds(app);
        auto speedup = [&](core::Level lvl) -> std::string {
            auto p = ds.evaluate(lvl, app);
            if (!p.supported)
                return "n/a";
            return TextTable::num(base / p.aggregateSeconds, 2) + "x";
        };
        char paper_buf[64];
        std::snprintf(paper_buf, sizeof(paper_buf),
                      "%.2f/%.1f/%.2f/%s", paper[i].wimpy,
                      paper[i].ssd, paper[i].channel,
                      paper[i].chip < 0
                          ? "n/a"
                          : TextTable::num(paper[i].chip, 2).c_str());
        t.addRow({app.name, TextTable::num(base * 1e6, 3),
                  TextTable::num(
                      base / wimpy.perFeatureSeconds(app), 3) +
                      "x",
                  speedup(core::Level::SsdLevel),
                  speedup(core::Level::ChannelLevel),
                  speedup(core::Level::ChipLevel), paper_buf});
    }
    t.print(std::cout);

    bench::section("Per-accelerator bottleneck legs (channel level)");
    TextTable legs({"App", "Compute(us)", "Flash(us)",
                    "WeightStream(us)", "Bottleneck"});
    for (const auto &app : apps) {
        auto p = ds.evaluate(core::Level::ChannelLevel, app);
        double legs_max =
            std::max({p.computeSeconds, p.flashSeconds,
                      p.weightStreamSeconds});
        std::string bound =
            legs_max == p.computeSeconds ? "compute"
            : legs_max == p.flashSeconds ? "flash"
                                         : "weights";
        legs.addRow({app.name, TextTable::num(p.computeSeconds * 1e6, 2),
                     TextTable::num(p.flashSeconds * 1e6, 2),
                     TextTable::num(p.weightStreamSeconds * 1e6, 2),
                     bound});
    }
    legs.print(std::cout);

    bench::JsonReport report("fig08_speedup");
    report.table(t, "speedups");
    report.table(legs, "channel_legs");
    report.write();

    std::printf("\nPaper conclusions reproduced: wimpy cores are "
                "4.5-22.8x slower than GPU+SSD;\nthe channel level is "
                "the fastest design at every application.\n");
    return 0;
}
