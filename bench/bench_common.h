/**
 * @file
 * Shared helpers for the benchmark harnesses. Every bench binary
 * regenerates one table or figure from the paper's evaluation and
 * prints the same rows/series the paper reports, with the published
 * values alongside for comparison where available.
 */

#ifndef DEEPSTORE_BENCH_BENCH_COMMON_H
#define DEEPSTORE_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <iostream>
#include <string>

namespace deepstore::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &description)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("DeepStore reproduction — %s\n", experiment.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("==================================================="
                "===========\n\n");
}

/** Print a section sub-header. */
inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

} // namespace deepstore::bench

#endif // DEEPSTORE_BENCH_BENCH_COMMON_H
