/**
 * @file
 * Shared helpers for the benchmark harnesses. Every bench binary
 * regenerates one table or figure from the paper's evaluation and
 * prints the same rows/series the paper reports, with the published
 * values alongside for comparison where available.
 */

#ifndef DEEPSTORE_BENCH_BENCH_COMMON_H
#define DEEPSTORE_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/table.h"

namespace deepstore::bench {

/** Print the standard bench banner. */
inline void
banner(const std::string &experiment, const std::string &description)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("DeepStore reproduction — %s\n", experiment.c_str());
    std::printf("%s\n", description.c_str());
    std::printf("==================================================="
                "===========\n\n");
}

/** Print a section sub-header. */
inline void
section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/**
 * Machine-readable bench output: collects named scalars plus a list
 * of uniform rows and writes them as `BENCH_<name>.json` in the
 * working directory, so CI and plotting scripts can consume bench
 * results without scraping the text tables.
 *
 *     JsonReport report("async_throughput");
 *     report.meta("features", 20000.0);
 *     report.beginRow().col("depth", 4.0).col("qps", qps);
 *     report.write();
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name) : name_(std::move(name)) {}

    /** Top-level scalar (numeric). */
    JsonReport &
    meta(const std::string &key, double value)
    {
        meta_.push_back(quote(key) + ": " + num(value));
        return *this;
    }

    /** Top-level scalar (string). */
    JsonReport &
    meta(const std::string &key, const std::string &value)
    {
        meta_.push_back(quote(key) + ": " + quote(value));
        return *this;
    }

    /** Start a new entry in the "rows" array. */
    JsonReport &
    beginRow()
    {
        rows_.emplace_back();
        return *this;
    }

    /** Numeric column of the current row. */
    JsonReport &
    col(const std::string &key, double value)
    {
        DS_ASSERT(!rows_.empty());
        rows_.back().push_back(quote(key) + ": " + num(value));
        return *this;
    }

    /** String column of the current row. */
    JsonReport &
    col(const std::string &key, const std::string &value)
    {
        DS_ASSERT(!rows_.empty());
        rows_.back().push_back(quote(key) + ": " + quote(value));
        return *this;
    }

    /**
     * Re-emit a printed TextTable as JSON rows (one row per table
     * row, keyed by the column headers; cells stay strings). A
     * non-empty @p tag adds a "table" discriminator column so one
     * report can carry several tables.
     */
    JsonReport &
    table(const TextTable &t, const std::string &tag = "")
    {
        for (const auto &cells : t.data()) {
            beginRow();
            if (!tag.empty())
                col("table", tag);
            for (std::size_t j = 0;
                 j < t.headers().size() && j < cells.size(); ++j)
                col(t.headers()[j], cells[j]);
        }
        return *this;
    }

    /** Output path: BENCH_<name>.json in the working directory. */
    std::string path() const { return "BENCH_" + name_ + ".json"; }

    /** Serialize and write the report; fatal() on I/O failure. */
    void
    write() const
    {
        std::FILE *f = std::fopen(path().c_str(), "w");
        if (!f)
            fatal("cannot write %s", path().c_str());
        std::string out = "{\n  " + quote("bench") + ": " +
                          quote(name_);
        for (const auto &m : meta_)
            out += ",\n  " + m;
        out += ",\n  " + quote("rows") + ": [";
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            out += i ? ",\n    {" : "\n    {";
            for (std::size_t j = 0; j < rows_[i].size(); ++j)
                out += (j ? ", " : "") + rows_[i][j];
            out += "}";
        }
        out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
        if (std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
            std::fclose(f);
            fatal("short write to %s", path().c_str());
        }
        std::fclose(f);
        std::printf("\nwrote %s\n", path().c_str());
    }

  private:
    static std::string
    num(double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.12g", v);
        return buf;
    }

    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof esc, "\\u%04x", c);
                out += esc;
                continue;
            }
            out += c;
        }
        return out + "\"";
    }

    std::string name_;
    std::vector<std::string> meta_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace deepstore::bench

#endif // DEEPSTORE_BENCH_BENCH_COMMON_H
