/**
 * @file
 * Per-layer timing report (the SCALE-Sim per-layer view, §5): every
 * Table 1 application's SCN broken down layer by layer on the
 * channel-level accelerator — where each layer's cycles go, its PE
 * utilization, and its memory traffic.
 */

#include <iostream>

#include "bench_common.h"
#include "core/placement.h"
#include "systolic/report.h"
#include "workloads/apps.h"

using namespace deepstore;

int
main()
{
    bench::banner("Per-layer report",
                  "SCALE-Sim-style per-layer breakdown of every SCN "
                  "on the channel-level accelerator");

    auto placement = core::makePlacement(core::Level::ChannelLevel,
                                         ssd::FlashParams{});
    systolic::SystolicSim sim(placement.array);
    bench::JsonReport report("layer_report");
    for (const auto &app : workloads::allApps()) {
        bench::section(app.name);
        auto rows = systolic::layerReport(
            sim, app.scn, systolic::WeightSource::SharedL2);
        systolic::printLayerReport(std::cout, rows, placement.array);
        for (const auto &r : rows) {
            report.beginRow()
                .col("app", app.name)
                .col("layer", r.name)
                .col("kind", r.kind)
                .col("computeCycles",
                     static_cast<double>(r.run.computeCycles))
                .col("memoryStallCycles",
                     static_cast<double>(r.run.memoryStallCycles))
                .col("totalCycles",
                     static_cast<double>(r.run.totalCycles))
                .col("utilization", r.run.utilization)
                .col("macs", static_cast<double>(r.run.macs))
                .col("dramReadBytes",
                     static_cast<double>(r.run.dramReadBytes));
        }
    }
    report.write();

    std::printf("\nReading the report: batch-1 GEMV folds keep FC "
                "utilization low (one array row\nactive), which is "
                "why the DSE pushes toward wide arrays; conv layers "
                "use the\nfull grid. K-heavy layers (ESTP fc1) "
                "dominate their app's cycle count.\n");
    return 0;
}
