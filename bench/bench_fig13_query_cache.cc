/**
 * @file
 * Regenerates Fig. 13: Query Cache speedup and miss rate vs the
 * comparison error threshold (0-20%), for uniform and Zipf(0.7)
 * query popularity, on TIR against a 100M-image feature database
 * with a 1K-entry cache (§6.5).
 *
 * Series (all speedups relative to the traditional GPU+SSD system
 * without a cache):
 *   - Traditional + QCache
 *   - DeepStore (channel level) without QCache
 *   - DeepStore + QCache
 * plus the cache miss rate.
 *
 * The QCN score uses the closed-form latent-topic model, which the
 * test suite shows is order-equivalent to running the functional QCN
 * (tests/workloads/test_query_universe.cc).
 */

#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_cache.h"
#include "core/query_model.h"
#include "host/baseline.h"
#include "workloads/query_universe.h"

using namespace deepstore;

namespace {

struct CacheCosts
{
    double tradScan;     ///< traditional full-database scan
    double tradLookup;   ///< QCN over the cache on the GPU
    double dsScan;       ///< DeepStore channel-level scan
    double dsLookup;     ///< QCN over the cache on channel accels
    double dsHitExtra;   ///< SCN on the cached top-K entries
};

CacheCosts
computeCosts(const workloads::AppInfo &app, std::uint64_t features,
             std::size_t entries, std::size_t top_k)
{
    CacheCosts c{};
    host::GpuSsdSystem gpu(host::voltaSpec());
    core::DeepStoreModel ds{ssd::FlashParams{}};
    c.tradScan = gpu.scanSeconds(app, features);
    c.dsScan =
        ds.scanSeconds(core::Level::ChannelLevel, app, features);
    auto qcn = ds.evaluateModel(
        core::Level::ChannelLevel, app.qcn,
        static_cast<std::uint64_t>(app.qcn.featureDim()) * 4);
    c.dsLookup = qcn.computeSeconds * static_cast<double>(entries) /
                 qcn.placement.numAccelerators;
    c.tradLookup = static_cast<double>(app.qcn.totalFlops()) *
                   static_cast<double>(entries) /
                   host::voltaSpec().effectiveFlops;
    auto scn = ds.evaluate(core::Level::ChannelLevel, app);
    c.dsHitExtra =
        scn.computeSeconds * static_cast<double>(top_k);
    return c;
}

double
runMissRate(const workloads::QueryUniverse &universe,
            workloads::Popularity pop, double alpha, double threshold,
            std::size_t entries, std::uint64_t warm,
            std::uint64_t measured)
{
    core::QueryCacheConfig cfg;
    cfg.capacity = entries;
    cfg.threshold = threshold;
    cfg.qcnAccuracy = 0.97;
    core::QueryCache qc(
        cfg, [&universe](std::uint64_t a, std::uint64_t b) {
            return universe.qcnScore(a, b);
        });
    auto trace = universe.trace(warm + measured, pop, alpha, 9001);
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        if (i == warm)
            qc.resetStats();
        auto out = qc.lookup(trace[i]);
        if (!out.hit)
            qc.insert(trace[i], {});
    }
    return qc.missRate();
}

} // namespace

int
main()
{
    bench::banner("Figure 13",
                  "Query Cache speedup and miss rate vs error "
                  "threshold (TIR, 100M features, 1K entries)");

    const std::uint64_t features = 100'000'000;
    const std::size_t entries = 1000;
    const std::size_t top_k = 10;
    std::uint64_t warm = 5000, measured = 20000;
    if (const char *env = std::getenv("DS_FIG13_QUERIES"))
        measured = std::strtoull(env, nullptr, 10);

    auto app = workloads::makeApp(workloads::AppId::TIR);
    CacheCosts costs = computeCosts(app, features, entries, top_k);
    std::printf("Scan costs: traditional %.1f s, DeepStore %.2f s; "
                "cache lookup: %.0f us (DeepStore)\n",
                costs.tradScan, costs.dsScan, costs.dsLookup * 1e6);
    std::printf("Query trace: %llu warm-up + %llu measured "
                "(DS_FIG13_QUERIES overrides)\n",
                static_cast<unsigned long long>(warm),
                static_cast<unsigned long long>(measured));

    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 100'000;
    ucfg.numTopics = 3'000;
    workloads::QueryUniverse universe(ucfg);

    const double thresholds[] = {0.0,  0.02, 0.05, 0.08, 0.10,
                                 0.12, 0.15, 0.18, 0.20};

    struct Dist
    {
        const char *name;
        workloads::Popularity pop;
        double alpha;
    };
    bench::JsonReport report("fig13_query_cache");

    for (const Dist &d :
         {Dist{"Uniform", workloads::Popularity::Uniform, 0.0},
          Dist{"Zipf(0.7)", workloads::Popularity::Zipf, 0.7}}) {
        bench::section(d.name);
        TextTable t({"Threshold", "MissRate%", "Trad+QC", "DeepStore",
                     "DeepStore+QC"});
        for (double thr : thresholds) {
            double miss = runMissRate(universe, d.pop, d.alpha, thr,
                                      entries, warm, measured);
            double hit = 1.0 - miss;
            double t_trad = costs.tradScan;
            double t_trad_qc = costs.tradLookup +
                               miss * costs.tradScan +
                               hit * costs.dsHitExtra;
            double t_ds = costs.dsScan;
            double t_ds_qc = costs.dsLookup + miss * costs.dsScan +
                             hit * costs.dsHitExtra;
            t.addRow({TextTable::num(thr * 100, 0) + "%",
                      TextTable::num(miss * 100, 1),
                      TextTable::num(t_trad / t_trad_qc, 2) + "x",
                      TextTable::num(t_trad / t_ds, 2) + "x",
                      TextTable::num(t_trad / t_ds_qc, 2) + "x"});
        }
        t.print(std::cout);
        report.table(t, d.name);
    }

    bench::section("Headlines (paper §6.5)");
    std::printf(
        "Paper: QCache adds up to 2.8x (traditional) and up to 25.9x "
        "(DeepStore) at a 20%%\nthreshold with Zipf queries; "
        "DeepStore benefits ~10x more because its miss penalty\nis "
        "far smaller. Relaxing the threshold 0%%->20%% buys up to "
        "1.7x as misses drop.\n");
    report.write();
    return 0;
}
