/**
 * @file
 * Async multi-query throughput: simulated queries/second at the
 * channel level as a function of the number of queries kept in flight
 * (closed loop, depths 1/4/16/64). With one query in flight the
 * engine behaves exactly like the blocking pre-refactor path; deeper
 * pipelines interleave scans on the accelerator complex, sharing the
 * per-database flash stream, so a flash-bound workload gains nearly
 * the residency limit in throughput.
 *
 * Also cross-checks the zero-interleaving invariant: the depth-1
 * latency must match the analytic steady-state model.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

constexpr std::int64_t kDim = 128;
constexpr std::uint64_t kFeatures = 20'000;
constexpr std::uint64_t kQueriesPerDepth = 256;

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("bench-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

/** Closed-loop run: keep `depth` queries in flight until `total`
 *  have completed. @return simulated queries/second. */
double
runDepth(int depth, std::uint64_t total, double *mean_latency)
{
    core::DeepStoreConfig cfg;
    cfg.defaultLevel = core::Level::ChannelLevel;
    core::DeepStore ds(cfg);
    workloads::FeatureGenerator gen(kDim, 32, 7);
    std::uint64_t db = ds.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen,
                                                       kFeatures));
    std::uint64_t model = ds.loadModel(dotModel(kDim));

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    double latency_sum = 0.0;

    // Each completion immediately submits the next query — the
    // classic closed-loop load generator, in simulated time.
    std::function<void()> submitOne = [&] {
        std::vector<float> qfv =
            gen.featureAt(submitted % kFeatures);
        std::uint64_t qid = ds.query(qfv, 5, model, db, 0, 0);
        ++submitted;
        ds.onComplete(qid, [&](const core::QueryResult &res) {
            latency_sum += res.latencySeconds;
            ++completed;
            if (submitted < total)
                submitOne();
        });
    };

    double t0 = ds.simulatedSeconds();
    for (int i = 0; i < depth && submitted < total; ++i)
        submitOne();
    ds.drain();
    double span = ds.simulatedSeconds() - t0;
    if (mean_latency)
        *mean_latency =
            latency_sum / static_cast<double>(completed);
    return static_cast<double>(completed) / span;
}

} // namespace

int
main()
{
    bench::banner(
        "async query throughput",
        "closed-loop simulated QPS vs in-flight depth, channel "
        "level,\ndot-product SCN over a " +
            std::to_string(kFeatures) + "-feature db (dim " +
            std::to_string(kDim) + ")");

    // Analytic single-query latency for the invariant check.
    core::DeepStoreModel model{ssd::FlashParams{}};
    auto bundle = dotModel(kDim);
    core::LevelPerf perf = model.evaluateModel(
        core::Level::ChannelLevel, bundle.model,
        static_cast<std::uint64_t>(kDim) * kBytesPerFloat);
    double analytic =
        perf.aggregateSeconds * static_cast<double>(kFeatures);

    bench::JsonReport report("async_throughput");
    report.meta("dim", static_cast<double>(kDim))
        .meta("features", static_cast<double>(kFeatures))
        .meta("queriesPerDepth",
              static_cast<double>(kQueriesPerDepth))
        .meta("analyticDepth1LatencySeconds", analytic);

    TextTable t({"in-flight", "sim QPS", "mean lat (ms)",
                 "speedup vs 1"});
    double base_qps = 0.0;
    for (int depth : {1, 4, 16, 64}) {
        double mean_latency = 0.0;
        double qps =
            runDepth(depth, kQueriesPerDepth, &mean_latency);
        if (depth == 1) {
            base_qps = qps;
            double err =
                (mean_latency - analytic) / analytic * 100.0;
            std::printf("depth-1 latency %.6f ms vs analytic "
                        "%.6f ms (%+.4f%%)\n",
                        mean_latency * 1e3, analytic * 1e3, err);
        }
        t.addRow({std::to_string(depth), TextTable::num(qps, 0),
                  TextTable::num(mean_latency * 1e3, 3),
                  TextTable::num(qps / base_qps, 2) + "x"});
        report.beginRow()
            .col("depth", static_cast<double>(depth))
            .col("simQps", qps)
            .col("meanLatencySeconds", mean_latency)
            .col("speedupVsDepth1", qps / base_qps);
    }
    t.print(std::cout);
    report.write();
    return 0;
}
