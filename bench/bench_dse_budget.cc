/**
 * @file
 * Ablation: the §4.5 budget-constrained design-space exploration.
 * Reruns the paper's methodology — sweep array shapes and scratchpad
 * sizes per level, eliminate over-budget designs, rank the rest by
 * workload-mean performance — and compares the resulting frontier
 * with the published Table 3 configurations.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/dse_select.h"

using namespace deepstore;

namespace {

std::string
describe(const core::DseCandidate &c)
{
    return std::to_string(c.config.rows) + "x" +
           std::to_string(c.config.cols) + " / " +
           std::to_string(c.config.scratchpadBytes / 1024) + " KiB";
}

} // namespace

int
main()
{
    bench::banner("DSE ablation (§4.5)",
                  "Budget-constrained design-space exploration per "
                  "placement level");

    bench::JsonReport report("dse_budget");

    ssd::FlashParams flash;
    for (auto level : {core::Level::SsdLevel,
                       core::Level::ChannelLevel,
                       core::Level::ChipLevel}) {
        auto result = core::exploreLevel(level, flash);
        bench::section(std::string(core::toString(level)) + " level");

        std::size_t within_budget = 0;
        for (const auto &c : result.candidates)
            within_budget += c.feasible();
        std::printf("%zu candidates explored, %zu within the power "
                    "and area budgets\n\n",
                    result.candidates.size(), within_budget);

        TextTable t({"Rank", "Shape/Spad", "MeanPerFeature(us)",
                     "PeakPower(W)", "Area(mm^2)", "InBudget"});
        for (std::size_t i = 0; i < 5 && i < result.candidates.size();
             ++i) {
            const auto &c = result.candidates[i];
            t.addRow({std::to_string(i + 1), describe(c),
                      TextTable::num(c.meanPerFeatureSeconds * 1e6, 2),
                      TextTable::num(c.peakPowerW, 2),
                      TextTable::num(c.areaMm2, 1),
                      c.feasible() ? "yes" : "NO"});
        }
        t.addRow({"T3", describe(result.table3),
                  TextTable::num(
                      result.table3.meanPerFeatureSeconds * 1e6, 2),
                  TextTable::num(result.table3.peakPowerW, 2),
                  TextTable::num(result.table3.areaMm2, 1),
                  result.table3.feasible() ? "yes" : "NO"});
        t.print(std::cout);
        report.table(t, core::toString(level));

        double gap = result.table3.meanPerFeatureSeconds /
                     result.best().meanPerFeatureSeconds;
        std::printf("\nTable 3 vs frontier best: %+.0f%% mean "
                    "per-feature time.\n",
                    (gap - 1.0) * 100.0);
    }
    report.write();
    return 0;
}
