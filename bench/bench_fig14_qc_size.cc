/**
 * @file
 * Regenerates Fig. 14: Query Cache miss rate as a function of the
 * number of cache entries (100 -> 1000) for uniform, Zipf(0.7), and
 * Zipf(0.8) query popularity at a 10% comparison threshold. Paper
 * finding: larger caches reduce the miss rate, but for distributions
 * with locality (Zipf) the benefit flattens — a small (~22 MB for
 * TIR) in-DRAM cache suffices.
 */

#include <cstdlib>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_cache.h"
#include "workloads/query_universe.h"

using namespace deepstore;

namespace {

double
runMissRate(const workloads::QueryUniverse &universe,
            workloads::Popularity pop, double alpha,
            std::size_t entries, std::uint64_t warm,
            std::uint64_t measured)
{
    core::QueryCacheConfig cfg;
    cfg.capacity = entries;
    cfg.threshold = 0.10;
    cfg.qcnAccuracy = 0.97;
    core::QueryCache qc(
        cfg, [&universe](std::uint64_t a, std::uint64_t b) {
            return universe.qcnScore(a, b);
        });
    auto trace = universe.trace(warm + measured, pop, alpha, 4242);
    for (std::uint64_t i = 0; i < trace.size(); ++i) {
        if (i == warm)
            qc.resetStats();
        auto out = qc.lookup(trace[i]);
        if (!out.hit)
            qc.insert(trace[i], {});
    }
    return qc.missRate();
}

} // namespace

int
main()
{
    bench::banner("Figure 14",
                  "Query Cache miss rate vs cache size (threshold "
                  "10%)");

    std::uint64_t warm = 4000, measured = 12000;
    if (const char *env = std::getenv("DS_FIG14_QUERIES"))
        measured = std::strtoull(env, nullptr, 10);

    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 100'000;
    ucfg.numTopics = 3'000;
    workloads::QueryUniverse universe(ucfg);

    TextTable t({"Entries", "Uniform%", "Zipf(0.7)%", "Zipf(0.8)%"});
    double first_z7 = 0, last_z7 = 0, first_u = 0, last_u = 0;
    for (std::size_t entries = 100; entries <= 1000; entries += 100) {
        double u = runMissRate(universe, workloads::Popularity::Uniform,
                               0.0, entries, warm, measured);
        double z7 = runMissRate(universe, workloads::Popularity::Zipf,
                                0.7, entries, warm, measured);
        double z8 = runMissRate(universe, workloads::Popularity::Zipf,
                                0.8, entries, warm, measured);
        if (entries == 100) {
            first_u = u;
            first_z7 = z7;
        }
        if (entries == 1000) {
            last_u = u;
            last_z7 = z7;
        }
        t.addRow({std::to_string(entries), TextTable::num(u * 100, 1),
                  TextTable::num(z7 * 100, 1),
                  TextTable::num(z8 * 100, 1)});
    }
    t.print(std::cout);

    bench::JsonReport report("fig14_qc_size");
    report.table(t);
    report.write();

    bench::section("Headlines (paper §6.5)");
    std::printf("Uniform miss rate drop 100->1000 entries: %.1f -> "
                "%.1f points\n",
                first_u * 100, last_u * 100);
    std::printf("Zipf(0.7) miss rate drop 100->1000 entries: %.1f -> "
                "%.1f points\n",
                first_z7 * 100, last_z7 * 100);
    std::printf("A 1K-entry TIR cache (top-K=10) occupies ~%.0f MB "
                "of SSD DRAM (paper: ~22 MB).\n",
                1000 * (2048.0 * (1 + 10) + 8 * 10) / 1e6);
    return 0;
}
