/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: these
 * guard the wall-clock cost of the building blocks the paper-figure
 * harnesses lean on (event kernel, systolic evaluation, flash
 * streaming, top-K, cache lookups).
 *
 * Besides the usual console table, the harness writes
 * BENCH_simulator_perf.json with every run's items/second and a
 * top-level eventsPerSecond scalar (the event kernel's sustained
 * rate — the baseline number the parallel-DES work is measured
 * against).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

#include "core/query_cache.h"
#include "core/query_model.h"
#include "core/topk.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"
#include "workloads/apps.h"
#include "workloads/query_universe.h"

using namespace deepstore;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto n = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            q.schedule((i * 7919) % 100000, [&sum] { ++sum; });
        q.run();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                            state.iterations());
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_LevelPerfEvaluation(benchmark::State &state)
{
    core::DeepStoreModel ds{ssd::FlashParams{}};
    auto app = workloads::makeApp(workloads::AppId::ReId);
    for (auto _ : state) {
        auto p = ds.evaluate(core::Level::ChannelLevel, app);
        benchmark::DoNotOptimize(p.aggregateSeconds);
    }
}
BENCHMARK(BM_LevelPerfEvaluation);

void
BM_FlashStreamEventSim(benchmark::State &state)
{
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue events;
        StatGroup stats("bench");
        ssd::FlashParams p;
        p.channels = 1;
        ssd::FlashController ctrl(events, p, 0, stats);
        ssd::Geometry g(p);
        for (std::uint64_t i = 0; i < pages; ++i) {
            ssd::FlashCommand cmd;
            cmd.op = ssd::FlashOp::Read;
            cmd.addr = g.decode(i);
            cmd.transferBytes = p.pageBytes;
            ctrl.issue(std::move(cmd));
        }
        events.run();
        benchmark::DoNotOptimize(events.now());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(pages) *
                            state.iterations());
}
BENCHMARK(BM_FlashStreamEventSim)->Arg(10000);

void
BM_TopKInsert(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    Rng rng(5);
    std::vector<float> scores(100000);
    for (auto &s : scores)
        s = static_cast<float>(rng.uniform());
    for (auto _ : state) {
        core::TopK topk(k);
        for (std::size_t i = 0; i < scores.size(); ++i)
            topk.insert({i, i, scores[i]});
        benchmark::DoNotOptimize(topk.kthScore());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(scores.size()) *
        state.iterations());
}
BENCHMARK(BM_TopKInsert)->Arg(10)->Arg(100);

void
BM_QueryCacheLookup(benchmark::State &state)
{
    workloads::QueryUniverseConfig cfg;
    cfg.numQueries = 100000;
    workloads::QueryUniverse u(cfg);
    core::QueryCacheConfig qcfg;
    qcfg.capacity = static_cast<std::size_t>(state.range(0));
    qcfg.threshold = 0.10;
    qcfg.qcnAccuracy = 0.97;
    core::QueryCache qc(qcfg,
                        [&u](std::uint64_t a, std::uint64_t b) {
                            return u.qcnScore(a, b);
                        });
    for (std::uint64_t q = 0; q < qcfg.capacity; ++q)
        qc.insert(q, {});
    std::uint64_t next = 0;
    for (auto _ : state) {
        auto out = qc.lookup(next++ % 100000);
        benchmark::DoNotOptimize(out.bestScore);
    }
}
BENCHMARK(BM_QueryCacheLookup)->Arg(100)->Arg(1000);

/**
 * Console output plus a machine-readable summary: every run's
 * items/second lands in BENCH_simulator_perf.json, and the event
 * kernel's sustained events/second is promoted to a top-level
 * scalar so CI can assert on it without parsing run names.
 */
class EventsPerSecondReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred)
                continue;
            auto it = run.counters.find("items_per_second");
            if (it == run.counters.end())
                continue;
            rates_.emplace_back(run.benchmark_name(),
                                static_cast<double>(it->second));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    void
    writeJson() const
    {
        bench::JsonReport report("simulator_perf");
        double events_per_second = 0;
        for (const auto &[name, rate] : rates_)
            if (name.rfind("BM_EventQueueScheduleRun", 0) == 0)
                events_per_second =
                    std::max(events_per_second, rate);
        report.meta("eventsPerSecond", events_per_second);
        for (const auto &[name, rate] : rates_)
            report.beginRow()
                .col("name", name)
                .col("itemsPerSecond", rate);
        report.write();
    }

  private:
    std::vector<std::pair<std::string, double>> rates_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    EventsPerSecondReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    reporter.writeJson();
    return 0;
}
