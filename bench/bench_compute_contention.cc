/**
 * @file
 * Contention regimes of the event-native accelerator datapath. Three
 * channel-level workloads pin the three bottlenecks the unified
 * resource model can produce, and the new QueryResult counters must
 * tell them apart:
 *
 *  - flash-bound:   a dot-product scan over full-page features. The
 *    array reads dominate, the bounded station FIFO never fills, and
 *    a lone query sees zero shared-bus (NoC) arbitration wait.
 *  - compute-bound: a 3-layer square MLP whose weights stay resident
 *    in L2. Compute falls behind the stream, the DFV queues sit
 *    fully delivered, and backpressure accrues.
 *  - NoC-bound:     the flash-bound scan with a closed-loop appendDB
 *    ingest stream on the same SSD. Programs and scans arbitrate for
 *    the same channel buses, so NoC wait becomes nonzero.
 *
 * Single-query rows also carry the analytic model's per-leg
 * prediction so the bottleneck attribution can be cross-checked.
 * Results go to BENCH_compute_contention.json; CI asserts the
 * flash-bound row has zero NoC wait and the contended rows have
 * nonzero counters.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/deepstore.h"
#include "core/query_model.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("bench-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

nn::ModelBundle
mlpModel(std::int64_t dim, int layers)
{
    nn::Model m("bench-mlp", dim, false);
    m.addLayer(nn::Layer::elementWise("fuse", nn::EwOp::Multiply,
                                      dim));
    for (int i = 0; i < layers; ++i)
        m.addLayer(nn::Layer::fc("fc" + std::to_string(i), dim,
                                 dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

struct RegimeResult
{
    double latencySeconds = 0.0;
    double computeStallSeconds = 0.0;
    double backpressureSeconds = 0.0;
    double nocWaitSeconds = 0.0;
    // Analytic legs for the single-query regimes (0 when the regime
    // has concurrent ingest and the closed form does not apply).
    double computeLeg = 0.0, flashLeg = 0.0, weightLeg = 0.0;
};

/** One query over `features` fresh features; when `ingest` is set, a
 *  closed-loop appendDB stream runs until the query completes. */
RegimeResult
runRegime(const nn::ModelBundle &bundle, std::int64_t dim,
          std::uint64_t features, bool ingest)
{
    core::DeepStoreConfig cfg;
    cfg.defaultLevel = core::Level::ChannelLevel;
    core::DeepStore ds(cfg);
    workloads::FeatureGenerator gen(dim, 32, 7);
    std::uint64_t db = ds.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen,
                                                       features));
    std::uint64_t model = ds.loadModel(bundle);

    RegimeResult r;
    if (!ingest) {
        core::LevelPerf perf = ds.model().evaluateModel(
            core::Level::ChannelLevel, bundle.model,
            ds.databaseInfo(db).featureBytes);
        if (perf.supported) {
            r.computeLeg = perf.computeSeconds;
            r.flashLeg = perf.flashSeconds;
            r.weightLeg = perf.weightStreamSeconds;
        }
    }

    bool done = false;
    std::uint64_t qid = ds.query(gen.featureAt(1), 5, model, db, 0,
                                 features);
    ds.onComplete(qid, [&](const core::QueryResult &res) {
        r.latencySeconds = res.latencySeconds;
        r.computeStallSeconds = res.computeStallSeconds;
        r.backpressureSeconds = res.backpressureSeconds;
        r.nocWaitSeconds = res.nocWaitSeconds;
        done = true;
    });
    while (!done) {
        if (ingest)
            ds.appendDB(db,
                        std::make_shared<core::GeneratedFeatureSource>(
                            gen, 1024));
        else
            ds.drain();
    }
    return r;
}

} // namespace

int
main()
{
    bench::banner(
        "compute contention sweep",
        "flash-, compute-, and NoC-bound regimes on the event-native "
        "datapath;\ncontention counters must attribute each "
        "bottleneck correctly");

    struct Regime
    {
        const char *name;
        nn::ModelBundle bundle;
        std::int64_t dim;
        std::uint64_t features;
        bool ingest;
    };
    // Geometries mirror the parity suite: dim 4096 is one feature
    // per page (array-read bound); the dim-512 MLP keeps its 3 MiB
    // of weights L2-resident while compute dominates, and 9216
    // features (288 per channel unit) overrun the 256-feature
    // station FIFO so backpressure engages.
    std::vector<Regime> regimes;
    regimes.push_back(
        {"flash-bound", dotModel(4096), 4096, 8192, false});
    regimes.push_back(
        {"compute-bound", mlpModel(512, 3), 512, 9216, false});
    regimes.push_back(
        {"noc-bound", dotModel(4096), 4096, 8192, true});

    bench::JsonReport report("compute_contention");
    TextTable t({"regime", "latency (ms)", "stall (ms)",
                 "backpr (ms)", "NoC wait (ms)", "compute leg (us)",
                 "flash leg (us)", "weight leg (us)"});
    for (const auto &rg : regimes) {
        RegimeResult r =
            runRegime(rg.bundle, rg.dim, rg.features, rg.ingest);
        t.addRow({rg.name, TextTable::num(r.latencySeconds * 1e3, 3),
                  TextTable::num(r.computeStallSeconds * 1e3, 3),
                  TextTable::num(r.backpressureSeconds * 1e3, 3),
                  TextTable::num(r.nocWaitSeconds * 1e3, 3),
                  TextTable::num(r.computeLeg * 1e6, 3),
                  TextTable::num(r.flashLeg * 1e6, 3),
                  TextTable::num(r.weightLeg * 1e6, 3)});
        report.beginRow()
            .col("regime", std::string(rg.name))
            .col("ingest", rg.ingest ? 1.0 : 0.0)
            .col("latencySeconds", r.latencySeconds)
            .col("computeStallSeconds", r.computeStallSeconds)
            .col("backpressureSeconds", r.backpressureSeconds)
            .col("nocWaitSeconds", r.nocWaitSeconds)
            .col("computeLegSeconds", r.computeLeg)
            .col("flashLegSeconds", r.flashLeg)
            .col("weightLegSeconds", r.weightLeg);
    }
    t.print(std::cout);
    report.write();

    std::printf("\nA lone flash-bound scan must see zero NoC wait; "
                "the contended regimes\nmust light up their "
                "counters (checked by the CI smoke step).\n");
    return 0;
}
