/**
 * @file
 * Mixed ingest/query workload: simulated query latency and QPS while
 * appendDB writes stream into the same SSD, at in-flight depths
 * 1/4/16. With the unified flash datapath the programs and the scan
 * streams execute on the *same* per-channel FlashControllers, so the
 * degradation measured here is physical plane/bus contention, not a
 * modeled penalty: host programs occupy planes for programLatency
 * while scan reads queue behind them.
 *
 * Each depth runs twice — queries alone, then queries with a
 * closed-loop ingest stream — and reports the latency/QPS ratio.
 * Results are also written to BENCH_mixed_ingest_query.json.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

constexpr std::int64_t kDim = 128;        // 512 B features
constexpr std::uint64_t kFeatures = 20'000;
constexpr std::uint64_t kQueries = 64;
constexpr std::uint64_t kIngestBatch = 1'024; // 32 pages per append

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("bench-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

struct RunResult
{
    double qps = 0.0;
    double meanLatency = 0.0;
    double maxLatency = 0.0;
    double ingestFeaturesPerSec = 0.0;
    // Contention counters summed over completed queries: compute
    // stalls (flash/weight starvation), DFV backpressure, and shared
    // channel-bus (NoC) arbitration waits. Under ingest the NoC term
    // is the physical signal of programs contending with scans.
    double computeStallSum = 0.0;
    double backpressureSum = 0.0;
    double nocWaitSum = 0.0;
};

/**
 * Closed-loop queries at `depth` in flight until kQueries complete;
 * when `ingest` is set, appendDB batches stream into the queried
 * database for the whole span (each append advances simulated time,
 * so query completions interleave with the program traffic).
 */
RunResult
runMixed(int depth, bool ingest)
{
    core::DeepStoreConfig cfg;
    cfg.defaultLevel = core::Level::ChannelLevel;
    core::DeepStore ds(cfg);
    workloads::FeatureGenerator gen(kDim, 32, 21);
    std::uint64_t db = ds.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen,
                                                       kFeatures));
    std::uint64_t model = ds.loadModel(dotModel(kDim));

    std::uint64_t submitted = 0;
    RunResult r;
    std::uint64_t completed = 0;
    double latency_sum = 0.0;
    double t_last = 0.0;

    std::function<void()> submitOne = [&] {
        std::vector<float> qfv = gen.featureAt(submitted % kFeatures);
        // Query the original range only, so the scan work stays
        // constant while the database grows underneath it.
        std::uint64_t qid =
            ds.query(qfv, 5, model, db, 0, kFeatures);
        ++submitted;
        ds.onComplete(qid, [&](const core::QueryResult &res) {
            latency_sum += res.latencySeconds;
            r.maxLatency = std::max(r.maxLatency,
                                    res.latencySeconds);
            r.computeStallSum += res.computeStallSeconds;
            r.backpressureSum += res.backpressureSeconds;
            r.nocWaitSum += res.nocWaitSeconds;
            ++completed;
            t_last = ds.simulatedSeconds();
            if (submitted < kQueries)
                submitOne();
        });
    };

    const double t0 = ds.simulatedSeconds();
    for (int i = 0; i < depth &&
                    submitted < kQueries;
         ++i)
        submitOne();

    std::uint64_t appended = 0;
    while (completed < kQueries) {
        if (ingest) {
            // One ingest batch: 32 full-page programs through the
            // host path, contending with every in-flight scan.
            ds.appendDB(db,
                        std::make_shared<core::GeneratedFeatureSource>(
                            gen, kIngestBatch));
            appended += kIngestBatch;
        } else {
            ds.drain();
        }
    }

    const double span = t_last - t0;
    r.qps = static_cast<double>(completed) / span;
    r.meanLatency = latency_sum / static_cast<double>(completed);
    r.ingestFeaturesPerSec =
        ingest ? static_cast<double>(appended) / span : 0.0;
    return r;
}

} // namespace

int
main()
{
    bench::banner(
        "mixed ingest + query",
        "closed-loop channel-level queries vs concurrent appendDB "
        "ingest\n(unified datapath: programs and scans share the "
        "flash controllers)");

    bench::JsonReport report("mixed_ingest_query");
    report.meta("dim", static_cast<double>(kDim))
        .meta("features", static_cast<double>(kFeatures))
        .meta("queries", static_cast<double>(kQueries))
        .meta("ingestBatchFeatures",
              static_cast<double>(kIngestBatch));

    TextTable t({"in-flight", "ingest", "sim QPS", "mean lat (ms)",
                 "max lat (ms)", "lat vs idle", "ingest MF/s",
                 "stall (ms)", "backpr (ms)", "NoC wait (ms)"});
    for (int depth : {1, 4, 16}) {
        RunResult idle = runMixed(depth, false);
        RunResult mixed = runMixed(depth, true);
        const double slowdown = mixed.meanLatency / idle.meanLatency;
        for (const auto *p : {&idle, &mixed}) {
            const bool ingest = p == &mixed;
            t.addRow({std::to_string(depth), ingest ? "yes" : "no",
                      TextTable::num(p->qps, 0),
                      TextTable::num(p->meanLatency * 1e3, 3),
                      TextTable::num(p->maxLatency * 1e3, 3),
                      ingest ? TextTable::num(slowdown, 2) + "x"
                             : "1.00x",
                      TextTable::num(
                          p->ingestFeaturesPerSec / 1e6, 2),
                      TextTable::num(p->computeStallSum * 1e3, 3),
                      TextTable::num(p->backpressureSum * 1e3, 3),
                      TextTable::num(p->nocWaitSum * 1e3, 3)});
            report.beginRow()
                .col("depth", static_cast<double>(depth))
                .col("ingest", ingest ? 1.0 : 0.0)
                .col("simQps", p->qps)
                .col("meanLatencySeconds", p->meanLatency)
                .col("maxLatencySeconds", p->maxLatency)
                .col("latencyVsIdle", ingest ? slowdown : 1.0)
                .col("ingestFeaturesPerSecond",
                     p->ingestFeaturesPerSec)
                .col("computeStallSeconds", p->computeStallSum)
                .col("backpressureSeconds", p->backpressureSum)
                .col("nocWaitSeconds", p->nocWaitSum);
        }
    }
    t.print(std::cout);
    report.write();
    return 0;
}
