/**
 * @file
 * Regenerates Fig. 6: speedup of a systolic array with a growing PE
 * budget (128 -> 32K, best aspect ratio at each point, infinite
 * memory bandwidth) for the largest ConvD and FC layers among the
 * studied applications. The paper's finding: no gain beyond 512 PEs
 * (FC) and 1024 PEs (Conv), because one feature vector needs fewer
 * than 1024 MACs/cycle.
 */

#include <iostream>

#include "bench_common.h"
#include "common/logging.h"
#include "common/table.h"
#include "systolic/dse.h"
#include "workloads/apps.h"

using namespace deepstore;

namespace {

/** Largest layer of the given kind across the five applications. */
nn::Layer
largestLayer(nn::LayerKind kind)
{
    const nn::Layer *best = nullptr;
    static std::vector<workloads::AppInfo> apps = workloads::allApps();
    for (const auto &app : apps) {
        for (const auto &l : app.scn.layers()) {
            if (l.kind != kind)
                continue;
            if (!best || l.macs() > best->macs())
                best = &l;
        }
    }
    if (!best)
        fatal("no layer of the requested kind");
    return *best;
}

} // namespace

int
main()
{
    bench::banner("Figure 6",
                  "Systolic-array speedup vs PE count (best aspect "
                  "ratio, infinite memory bandwidth)");

    nn::Layer conv = largestLayer(nn::LayerKind::Conv2D);
    nn::Layer fc = largestLayer(nn::LayerKind::FullyConnected);
    std::printf("Largest ConvD layer: %s (%lld MACs)\n",
                conv.name.c_str(),
                static_cast<long long>(conv.macs()));
    std::printf("Largest FC layer:    %s (%lld MACs)\n\n",
                fc.name.c_str(), static_cast<long long>(fc.macs()));

    std::vector<std::int64_t> pes{128, 256, 512, 1024, 2048,
                                  4096, 8192, 16384, 32768};
    auto conv_sweep = systolic::sweepPeCounts(
        conv, pes, systolic::Dataflow::OutputStationary);
    auto fc_sweep = systolic::sweepPeCounts(
        fc, pes, systolic::Dataflow::OutputStationary);

    TextTable t({"PEs", "Conv speedup", "Conv shape", "FC speedup",
                 "FC shape"});
    for (std::size_t i = 0; i < pes.size(); ++i) {
        t.addRow({std::to_string(pes[i]),
                  TextTable::num(conv_sweep[i].speedup, 2),
                  std::to_string(conv_sweep[i].rows) + "x" +
                      std::to_string(conv_sweep[i].cols),
                  TextTable::num(fc_sweep[i].speedup, 2),
                  std::to_string(fc_sweep[i].rows) + "x" +
                      std::to_string(fc_sweep[i].cols)});
    }
    t.print(std::cout);

    bench::JsonReport report("fig06_dse_pes");
    report.table(t);
    report.write();

    bench::section("Saturation points");
    auto saturation = [](const std::vector<systolic::DsePoint> &sweep) {
        for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
            if (sweep[i + 1].speedup / sweep[i].speedup < 1.02)
                return sweep[i].peCount;
        }
        return sweep.back().peCount;
    };
    std::printf("FC saturates at %lld PEs (paper: 512)\n",
                static_cast<long long>(saturation(fc_sweep)));
    std::printf("Conv saturates at %lld PEs (paper: 1024)\n",
                static_cast<long long>(saturation(conv_sweep)));
    return 0;
}
