/**
 * @file
 * Regenerates Fig. 9: sensitivity of each system to the flash array
 * read latency, swept from 53/8 us (Z-NAND class) to 4x53 = 212 us
 * (commodity class), normalized to the 53 us design point. The
 * paper's finding: DeepStore stays within ~10% (channel) / ~4%
 * (chip) even on 4x slower flash, because the accelerators are
 * compute/bus bound.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "host/baseline.h"

using namespace deepstore;

namespace {

const double kRatios[] = {1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0, 2.0, 4.0};
const char *kRatioNames[] = {"1:8", "1:4", "1:2", "1:1", "2:1", "4:1"};

} // namespace

int
main()
{
    bench::banner("Figure 9",
                  "Performance vs flash read latency (normalized to "
                  "the 53us baseline)");

    bench::JsonReport report("fig09_flash_latency");

    auto apps = workloads::allApps();

    for (auto lvl : {core::Level::SsdLevel, core::Level::ChannelLevel,
                     core::Level::ChipLevel}) {
        bench::section(std::string("DeepStore - ") +
                       core::toString(lvl) + " level");
        TextTable t({"LatencyRatio", "ReId", "MIR", "ESTP", "TIR",
                     "TextQA"});
        for (std::size_t r = 0; r < std::size(kRatios); ++r) {
            std::vector<std::string> row{kRatioNames[r]};
            for (const auto &app : apps) {
                ssd::FlashParams base;
                ssd::FlashParams varied;
                varied.readLatency = base.readLatency * kRatios[r];
                core::DeepStoreModel m_base(base), m_var(varied);
                auto pb = m_base.evaluate(lvl, app);
                auto pv = m_var.evaluate(lvl, app);
                if (!pb.supported) {
                    row.push_back("n/a");
                    continue;
                }
                row.push_back(TextTable::num(
                    pb.aggregateSeconds / pv.aggregateSeconds, 3));
            }
            t.addRow(row);
        }
        t.print(std::cout);
        report.table(t, core::toString(lvl));
    }

    bench::section("Traditional GPU+SSD system");
    std::printf("External-bandwidth bound: the flash array latency is "
                "hidden behind the\nPCIe interface, so speedup is "
                "1.000 at every ratio (paper Fig. 9a).\n");

    bench::section("Headline (paper §6.3)");
    for (auto lvl :
         {core::Level::ChannelLevel, core::Level::ChipLevel}) {
        double worst = 1.0;
        for (const auto &app : apps) {
            ssd::FlashParams slow;
            slow.readLatency = 212e-6;
            core::DeepStoreModel m_base{ssd::FlashParams{}},
                m_slow{slow};
            auto pb = m_base.evaluate(lvl, app);
            auto ps = m_slow.evaluate(lvl, app);
            if (!pb.supported)
                continue;
            worst = std::min(worst, pb.aggregateSeconds /
                                        ps.aggregateSeconds);
        }
        std::printf("%s level at 212us flash: %.1f%% of 53us "
                    "performance (paper: %s)\n",
                    core::toString(lvl), worst * 100.0,
                    lvl == core::Level::ChannelLevel ? "89.9%"
                                                     : "96.1%");
    }
    report.write();
    return 0;
}
