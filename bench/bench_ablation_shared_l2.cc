/**
 * @file
 * Ablation: the shared second-level scratchpad (§4.5). Channel-level
 * accelerators reuse the SSD-level 8 MB scratchpad as a weight L2,
 * which (a) keeps most weights resident (32x reuse) and (b) turns
 * DRAM weight traffic into SRAM traffic. This bench removes the L2 to
 * quantify both effects.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "host/baseline.h"

using namespace deepstore;

int
main()
{
    bench::banner("Ablation: shared weight L2 at channel level",
                  "With vs without the 8 MB shared scratchpad (§4.5)");

    ssd::FlashParams flash;
    core::DeepStoreModel ds(flash);
    host::GpuSsdSystem gpu(host::voltaSpec());

    TextTable t({"App", "With L2 (us/feat)", "Without (us/feat)",
                 "Slowdown", "SpeedupWith", "SpeedupWithout"});
    for (const auto &app : workloads::allApps()) {
        auto with = ds.evaluate(core::Level::ChannelLevel, app);

        auto stripped = core::makePlacement(core::Level::ChannelLevel,
                                            flash);
        stripped.array.sharedL2Bytes = 0;
        // Without the L2, only the 512 KB private scratchpad holds
        // weights; the rest streams from DRAM every feature, and the
        // 32x broadcast reuse is gone (each accelerator pulls its own
        // copy, dividing the DRAM bandwidth).
        stripped.residentWeightBytes =
            stripped.array.scratchpadBytes;
        stripped.array.dramBandwidth =
            flash.dramBandwidth / flash.channels;
        auto without = ds.evaluatePlacement(stripped, app.scn,
                                            app.featureBytes());

        double base = gpu.perFeatureSeconds(app);
        t.addRow({app.name,
                  TextTable::num(with.aggregateSeconds * 1e6, 3),
                  TextTable::num(without.aggregateSeconds * 1e6, 3),
                  TextTable::num(without.aggregateSeconds /
                                     with.aggregateSeconds,
                                 2) +
                      "x",
                  TextTable::num(base / with.aggregateSeconds, 1) +
                      "x",
                  TextTable::num(base / without.aggregateSeconds, 1) +
                      "x"});
    }
    t.print(std::cout);

    bench::JsonReport report("ablation_shared_l2");
    report.table(t);
    report.write();

    std::printf("\nThe shared L2 is what keeps the weight-heavy apps "
                "(ReId, ESTP) ahead of the GPU\nbaseline at channel "
                "level; small-model apps are unaffected.\n");
    return 0;
}
