/**
 * @file
 * Ablation: FLASH_DFV prefetch-queue depth (§4.4, Fig. 5), using the
 * event-driven accelerator pipeline over the real flash controller —
 * with and without read-retry failure injection. A depth-1 queue
 * serializes flash and compute on every burst; a modest queue hides
 * both the steady latency and injected retry outliers.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/accel_pipeline.h"
#include "core/query_model.h"
#include "workloads/apps.h"

using namespace deepstore;

namespace {

double
runDepth(const workloads::AppInfo &app, std::uint32_t depth,
         double retry_probability)
{
    ssd::FlashParams params;
    params.readRetryProbability = retry_probability;
    sim::EventQueue events;
    StatGroup stats("ablation");
    ssd::FlashController channel(events, params, 0, stats);

    core::DeepStoreModel model{ssd::FlashParams{}};
    auto perf = model.evaluate(core::Level::ChannelLevel, app);

    core::PipelineRunConfig cfg;
    cfg.features = 3000;
    cfg.featureBytes = app.featureBytes();
    cfg.computeCyclesPerFeature = perf.modelRun.totalCycles();
    cfg.frequencyHz = perf.placement.array.frequencyHz;
    cfg.queueDepthPages = depth;
    auto run = core::runAcceleratorPipeline(events, channel, params,
                                            cfg);
    return run.perFeatureSeconds();
}

} // namespace

int
main()
{
    bench::banner("Ablation: FLASH_DFV queue depth",
                  "Event-driven channel-accelerator pipeline, per-"
                  "feature time vs queue depth\n(clean flash and 5% "
                  "read-retry injection at 4x latency)");

    bench::JsonReport report("ablation_queue_depth");

    for (auto id : {workloads::AppId::ESTP, workloads::AppId::MIR}) {
        auto app = workloads::makeApp(id);
        bench::section(app.name);
        TextTable t({"DepthPages", "Clean(us/feat)",
                     "Retries(us/feat)", "RetryOverhead"});
        double clean_deep = 0;
        for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
            double clean = runDepth(app, depth, 0.0);
            double faulty = runDepth(app, depth, 0.05);
            if (depth == 64)
                clean_deep = clean;
            t.addRow({std::to_string(depth),
                      TextTable::num(clean * 1e6, 3),
                      TextTable::num(faulty * 1e6, 3),
                      TextTable::num((faulty / clean - 1) * 100, 1) +
                          "%"});
        }
        t.print(std::cout);
        report.table(t, app.name);
        double shallow = runDepth(app, 1, 0.0);
        std::printf("\ndepth 1 -> 64 improves per-feature time "
                    "%.2fx; the Table 3 design uses 32 pages.\n",
                    shallow / clean_deep);
    }
    report.write();
    return 0;
}
