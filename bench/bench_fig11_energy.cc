/**
 * @file
 * Regenerates Fig. 11 (and Table 4's energy column): performance per
 * watt of each DeepStore level, normalized to the Volta GPU of the
 * traditional system.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "host/baseline.h"

using namespace deepstore;

int
main()
{
    bench::banner("Figure 11 / Table 4 (energy efficiency)",
                  "Perf/Watt normalized to the Volta GPU baseline");

    ssd::FlashParams flash;
    core::DeepStoreModel ds(flash);
    host::GpuSsdSystem gpu(host::voltaSpec());

    struct PaperRow
    {
        double ssd, channel, chip;
    };
    const PaperRow paper[] = {
        {0.7, 17.1, -1.0}, {1.6, 28.0, 2.6}, {2.8, 38.6, 3.2},
        {2.1, 35.6, 3.7},  {2.2, 78.6, 13.7},
    };

    TextTable t({"App", "SSD", "Channel", "Chip",
                 "Paper(S/C/P)", "ChannelPower(W)"});
    auto apps = workloads::allApps();
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const auto &app = apps[i];
        double t_gpu = gpu.perFeatureSeconds(app);
        double channel_power = 0.0;
        auto eff = [&](core::Level lvl) -> std::string {
            auto p = ds.evaluate(lvl, app);
            if (!p.supported)
                return "n/a";
            double speedup = t_gpu / p.aggregateSeconds;
            double e = speedup * gpu.powerW() / p.activePowerW;
            if (lvl == core::Level::ChannelLevel)
                channel_power = p.activePowerW;
            return TextTable::num(e, 1) + "x";
        };
        std::string s = eff(core::Level::SsdLevel);
        std::string c = eff(core::Level::ChannelLevel);
        std::string p = eff(core::Level::ChipLevel);
        char paper_buf[48];
        std::snprintf(
            paper_buf, sizeof(paper_buf), "%.1f/%.1f/%s",
            paper[i].ssd, paper[i].channel,
            paper[i].chip < 0
                ? "n/a"
                : TextTable::num(paper[i].chip, 1).c_str());
        t.addRow({app.name, s, c, p, paper_buf,
                  TextTable::num(channel_power, 1)});
    }
    t.print(std::cout);

    bench::JsonReport report("fig11_energy");
    report.table(t);
    report.write();

    bench::section("Headlines (paper §6.4)");
    std::printf("Channel level is the most energy-efficient design "
                "for every application.\n");
    {
        auto textqa = workloads::makeApp(workloads::AppId::TextQA);
        auto ch = ds.evaluate(core::Level::ChannelLevel, textqa);
        auto chip = ds.evaluate(core::Level::ChipLevel, textqa);
        double t_gpu = gpu.perFeatureSeconds(textqa);
        double eff_ch = t_gpu / ch.aggregateSeconds * gpu.powerW() /
                        ch.activePowerW;
        double eff_chip = t_gpu / chip.aggregateSeconds *
                          gpu.powerW() / chip.activePowerW;
        std::printf("TextQA channel-level perf/W: %.1fx the GPU "
                    "(paper: up to 78.6x)\n",
                    eff_ch);
        std::printf("Chip level reaches %.0f%% of channel-level "
                    "efficiency on TextQA (paper: 8.2-17.5%%)\n",
                    eff_chip / eff_ch * 100.0);
    }
    return 0;
}
