/**
 * @file
 * Regenerates Fig. 10: MIR performance while sweeping (a) the SSD's
 * internal bandwidth via the channel count (4 -> 64) and (b) the
 * external I/O bandwidth via the SSD count (1 -> 8). All values are
 * normalized to the traditional system with one 32-channel SSD.
 *
 * Paper findings: the traditional system stops scaling beyond 8
 * channels (PCIe-bound) and scales sub-linearly with SSD count
 * (compute-bound); channel/chip-level DeepStore scales linearly with
 * both.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "host/baseline.h"

using namespace deepstore;

namespace {

/** Traditional per-feature time limited by internal vs external BW. */
double
traditionalPerFeature(const workloads::AppInfo &app,
                      const ssd::FlashParams &flash, int num_ssds)
{
    host::GpuSsdSystem gpu(host::voltaSpec(), num_ssds);
    double t = gpu.perFeatureSeconds(app);
    // The host can never read faster than the SSD's internal
    // bandwidth allows (matters below 8 channels).
    double internal_limit =
        static_cast<double>(app.featureBytes()) /
        (flash.internalBandwidth() * num_ssds);
    return std::max(t, internal_limit);
}

} // namespace

int
main()
{
    bench::banner("Figure 10",
                  "MIR speedup vs internal (channel count) and "
                  "external (SSD count) bandwidth");

    auto app = workloads::makeApp(workloads::AppId::MIR);
    ssd::FlashParams base_flash;
    double baseline =
        traditionalPerFeature(app, base_flash, 1); // 1 SSD, 32 ch

    bench::section("(a) internal bandwidth: channels 4 -> 64, 1 SSD");
    TextTable ta({"Channels", "Traditional", "SSD-level",
                  "Channel-level", "Chip-level"});
    for (std::uint32_t ch : {4u, 8u, 16u, 32u, 64u}) {
        ssd::FlashParams flash;
        flash.channels = ch;
        core::DeepStoreModel ds(flash);
        std::vector<std::string> row{std::to_string(ch)};
        row.push_back(TextTable::num(
            baseline / traditionalPerFeature(app, flash, 1), 2));
        for (auto lvl : {core::Level::SsdLevel,
                         core::Level::ChannelLevel,
                         core::Level::ChipLevel}) {
            auto p = ds.evaluate(lvl, app);
            row.push_back(TextTable::num(
                baseline / p.aggregateSeconds, 2));
        }
        ta.addRow(row);
    }
    ta.print(std::cout);

    bench::section("(b) external bandwidth: SSDs 1 -> 8, 32 channels");
    TextTable tb({"SSDs", "Traditional", "SSD-level", "Channel-level",
                  "Chip-level"});
    for (int n : {1, 2, 4, 8}) {
        core::DeepStoreModel ds(base_flash);
        std::vector<std::string> row{std::to_string(n)};
        row.push_back(TextTable::num(
            baseline / traditionalPerFeature(app, base_flash, n), 2));
        for (auto lvl : {core::Level::SsdLevel,
                         core::Level::ChannelLevel,
                         core::Level::ChipLevel}) {
            auto p = ds.evaluate(lvl, app);
            // DeepStore compute scales linearly with the number of
            // SSDs (each device scans its own shard, §6.3).
            row.push_back(TextTable::num(
                baseline * n / p.aggregateSeconds, 2));
        }
        tb.addRow(row);
    }
    tb.print(std::cout);

    bench::JsonReport report("fig10_bandwidth");
    report.table(ta, "channels");
    report.table(tb, "ssds");
    report.write();

    bench::section("Scaling headlines (paper §6.3)");
    {
        ssd::FlashParams f8;
        f8.channels = 8;
        ssd::FlashParams f64;
        f64.channels = 64;
        core::DeepStoreModel m8(f8), m64(f64);
        double ch_scale =
            m8.evaluate(core::Level::ChannelLevel, app)
                .aggregateSeconds /
            m64.evaluate(core::Level::ChannelLevel, app)
                .aggregateSeconds;
        std::printf("Channel-level 8->64 channels: %.1fx (linear "
                    "would be 8.0x)\n",
                    ch_scale);
        double trad_scale =
            traditionalPerFeature(app, f8, 1) /
            traditionalPerFeature(app, f64, 1);
        std::printf("Traditional 8->64 channels: %.2fx (PCIe-bound; "
                    "paper: flat beyond 8 channels)\n",
                    trad_scale);
        host::GpuSsdSystem one(host::voltaSpec(), 1),
            eight(host::voltaSpec(), 8);
        std::printf("Traditional 1->8 SSDs: %.1fx (sub-linear; "
                    "compute does not scale)\n",
                    one.perFeatureSeconds(app) /
                        eight.perFeatureSeconds(app));
    }
    return 0;
}
