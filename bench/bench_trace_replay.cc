/**
 * @file
 * Trace replay under load (§5's trace-driven evaluation, extended to
 * response-time distributions): a Poisson query stream served by
 * DeepStore's channel level, with and without the Query Cache.
 *
 * Default backend: the **live engine** (replayTrace) — arrivals are
 * event-queue events, queries overlap on the accelerator complex,
 * and response times come from real completion ticks.
 *
 * `--closed-form` switches to the validator-only single-server FIFO
 * model (replayTraceClosedForm) at the paper-scale 1M-feature TIR
 * workload, which also covers the GPU+SSD baseline (a system with no
 * event-driven engine). Its numbers are analytic cross-checks, not
 * engine timing.
 */

#include <cstring>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "core/trace_replay.h"
#include "host/baseline.h"

using namespace deepstore;

namespace {

core::ReplayService
makeService(bool deepstore, const workloads::AppInfo &app,
            std::uint64_t features, std::size_t entries)
{
    core::ReplayService s;
    core::DeepStoreModel ds{ssd::FlashParams{}};
    host::GpuSsdSystem gpu(host::voltaSpec());
    if (deepstore) {
        s.scanSeconds =
            ds.scanSeconds(core::Level::ChannelLevel, app, features);
        auto qcn = ds.evaluateModel(
            core::Level::ChannelLevel, app.qcn,
            static_cast<std::uint64_t>(app.qcn.featureDim()) * 4);
        s.lookupSeconds = qcn.computeSeconds *
                          static_cast<double>(entries) /
                          qcn.placement.numAccelerators;
        s.hitExtraSeconds =
            ds.evaluate(core::Level::ChannelLevel, app)
                .computeSeconds *
            10;
    } else {
        s.scanSeconds = gpu.scanSeconds(app, features);
        s.lookupSeconds =
            static_cast<double>(app.qcn.totalFlops()) *
            static_cast<double>(entries) /
            host::voltaSpec().effectiveFlops;
        s.hitExtraSeconds =
            static_cast<double>(app.scn.totalFlops()) * 10 /
            host::voltaSpec().effectiveFlops;
    }
    return s;
}

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("dot-scn", dim, false);
    m.addLayer(
        nn::Layer::elementWise("dot", nn::EwOp::DotProduct, dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

void
addStatsRow(TextTable &t, const char *name,
            const core::ReplayStats &stats)
{
    t.addRow({name, TextTable::num(stats.missRate * 100, 0),
              TextTable::num(stats.utilization * 100, 0),
              TextTable::num(stats.p50Seconds * 1e3, 1),
              TextTable::num(stats.p95Seconds * 1e3, 1),
              TextTable::num(stats.p99Seconds * 1e3, 1)});
}

/** Validator-only: the pre-event-native closed-form comparison at
 *  paper scale, including the GPU+SSD baseline. */
void
runClosedForm(bench::JsonReport &report)
{
    auto app = workloads::makeApp(workloads::AppId::TIR);
    const std::uint64_t features = 1'000'000;
    const std::size_t entries = 1000;

    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 50'000;
    ucfg.numTopics = 2'000;
    workloads::QueryUniverse universe(ucfg);

    struct System
    {
        const char *name;
        bool deepstore;
        bool cached;
    };
    const System systems[] = {
        {"GPU+SSD", false, false},
        {"GPU+SSD + QCache", false, true},
        {"DeepStore (channel)", true, false},
        {"DeepStore + QCache", true, true},
    };

    for (double rate : {0.2, 1.0, 3.0}) {
        bench::section("arrival rate " + TextTable::num(rate, 1) +
                       " queries/s (closed form)");
        auto trace = workloads::QueryTrace::generate(
            universe, 1500, rate, workloads::Popularity::Zipf, 0.7,
            77);
        TextTable t({"System", "Miss%", "Util%", "p50(ms)",
                     "p95(ms)", "p99(ms)"});
        for (const auto &sys : systems) {
            auto service =
                makeService(sys.deepstore, app, features, entries);
            std::unique_ptr<core::QueryCache> cache;
            if (sys.cached) {
                core::QueryCacheConfig cfg;
                cfg.capacity = entries;
                cfg.threshold = 0.12;
                cfg.qcnAccuracy = 0.97;
                cache = std::make_unique<core::QueryCache>(
                    cfg,
                    [&universe](std::uint64_t a, std::uint64_t b) {
                        return universe.qcnScore(a, b);
                    });
            }
            auto stats = core::replayTraceClosedForm(trace, service,
                                                     cache.get());
            addStatsRow(t, sys.name, stats);
        }
        t.print(std::cout);
        report.table(t, TextTable::num(rate, 1) +
                            " q/s closed-form");
    }

    std::printf(
        "\nClosed-form validator view (single-server FIFO): the GPU "
        "baseline saturates\nfirst; DeepStore sustains an order of "
        "magnitude higher arrival rate at bounded\nlatency, and the "
        "Query Cache extends that further.\n");
}

/** Default: replay on a live engine — real flash reads, slot-
 *  scheduled compute, overlapping queries. */
void
runOnEngine(bench::JsonReport &report)
{
    constexpr std::int64_t kDim = 64;
    constexpr std::uint64_t kFeatures = 8'000;

    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 4'000;
    ucfg.numTopics = 200;
    workloads::QueryUniverse universe(ucfg);

    for (double rate : {10.0, 50.0}) {
        bench::section("arrival rate " + TextTable::num(rate, 1) +
                       " queries/s (live engine)");
        auto trace = workloads::QueryTrace::generate(
            universe, 200, rate, workloads::Popularity::Zipf, 0.7,
            77);
        TextTable t({"System", "Miss%", "Util%", "p50(ms)",
                     "p95(ms)", "p99(ms)"});
        for (bool cached : {false, true}) {
            core::DeepStore ds{core::DeepStoreConfig{}};
            workloads::FeatureGenerator gen(kDim, 32, 11);
            std::uint64_t db = ds.writeDB(
                std::make_shared<core::GeneratedFeatureSource>(
                    gen, kFeatures));
            std::uint64_t scn = ds.loadModel(dotModel(kDim));
            if (cached) {
                std::uint64_t qcn = ds.loadModel(dotModel(kDim));
                ds.setQC(qcn, 0.25, 0.97, 256);
            }
            core::EngineReplayConfig cfg;
            cfg.k = 5;
            cfg.modelId = scn;
            cfg.dbId = db;
            cfg.featureDim = kDim;
            cfg.universe = &universe;
            auto stats = core::replayTrace(ds, trace, cfg);
            addStatsRow(t,
                        cached ? "DeepStore + QCache"
                               : "DeepStore (channel)",
                        stats);
        }
        t.print(std::cout);
        report.table(t, TextTable::num(rate, 1) + " q/s engine");
    }

    std::printf(
        "\nLive-engine replay: every response time is a completion "
        "tick of the\nevent-native datapath (flash reads, slot-"
        "scheduled compute, shared DRAM).\nRun with --closed-form "
        "for the validator-only analytic comparison\n(including the "
        "GPU+SSD baseline).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool closed_form = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--closed-form") == 0) {
            closed_form = true;
        } else {
            std::fprintf(stderr,
                         "unknown argument '%s'\nusage: %s "
                         "[--closed-form]\n",
                         argv[i], argv[0]);
            return 2;
        }
    }

    bench::banner("Trace replay (§5)",
                  closed_form
                      ? "Poisson query stream, closed-form validator "
                        "backend (single-server FIFO)"
                      : "Poisson query stream on the live engine: "
                        "throughput and tail latency");

    bench::JsonReport report("trace_replay");
    report.meta("backend", closed_form ? "closed-form" : "engine");
    if (closed_form)
        runClosedForm(report);
    else
        runOnEngine(report);
    report.write();
    return 0;
}
