/**
 * @file
 * Trace replay under load (§5's trace-driven evaluation, extended to
 * response-time distributions): a Poisson query stream against a
 * 10M-feature TIR database, served by the GPU+SSD baseline and by
 * DeepStore's channel level, each with and without the Query Cache.
 * Reports sustainable throughput and tail latency — the serving-
 * system view of the paper's speedups.
 */

#include <iostream>
#include <memory>

#include "bench_common.h"
#include "common/table.h"
#include "core/query_model.h"
#include "core/trace_replay.h"
#include "host/baseline.h"

using namespace deepstore;

namespace {

core::ReplayService
makeService(bool deepstore, const workloads::AppInfo &app,
            std::uint64_t features, std::size_t entries)
{
    core::ReplayService s;
    core::DeepStoreModel ds{ssd::FlashParams{}};
    host::GpuSsdSystem gpu(host::voltaSpec());
    if (deepstore) {
        s.scanSeconds =
            ds.scanSeconds(core::Level::ChannelLevel, app, features);
        auto qcn = ds.evaluateModel(
            core::Level::ChannelLevel, app.qcn,
            static_cast<std::uint64_t>(app.qcn.featureDim()) * 4);
        s.lookupSeconds = qcn.computeSeconds *
                          static_cast<double>(entries) /
                          qcn.placement.numAccelerators;
        s.hitExtraSeconds =
            ds.evaluate(core::Level::ChannelLevel, app)
                .computeSeconds *
            10;
    } else {
        s.scanSeconds = gpu.scanSeconds(app, features);
        s.lookupSeconds =
            static_cast<double>(app.qcn.totalFlops()) *
            static_cast<double>(entries) /
            host::voltaSpec().effectiveFlops;
        s.hitExtraSeconds =
            static_cast<double>(app.scn.totalFlops()) * 10 /
            host::voltaSpec().effectiveFlops;
    }
    return s;
}

} // namespace

int
main()
{
    bench::banner("Trace replay (§5)",
                  "Poisson query stream vs a 1M-feature TIR "
                  "database: throughput and tail latency");

    auto app = workloads::makeApp(workloads::AppId::TIR);
    const std::uint64_t features = 1'000'000;
    const std::size_t entries = 1000;

    workloads::QueryUniverseConfig ucfg;
    ucfg.numQueries = 50'000;
    ucfg.numTopics = 2'000;
    workloads::QueryUniverse universe(ucfg);

    struct System
    {
        const char *name;
        bool deepstore;
        bool cached;
    };
    const System systems[] = {
        {"GPU+SSD", false, false},
        {"GPU+SSD + QCache", false, true},
        {"DeepStore (channel)", true, false},
        {"DeepStore + QCache", true, true},
    };

    bench::JsonReport report("trace_replay");

    for (double rate : {0.2, 1.0, 3.0}) {
        bench::section("arrival rate " + TextTable::num(rate, 1) +
                       " queries/s");
        auto trace = workloads::QueryTrace::generate(
            universe, 1500, rate, workloads::Popularity::Zipf, 0.7,
            77);
        TextTable t({"System", "Miss%", "Util%", "p50(ms)",
                     "p95(ms)", "p99(ms)"});
        for (const auto &sys : systems) {
            auto service =
                makeService(sys.deepstore, app, features, entries);
            std::unique_ptr<core::QueryCache> cache;
            if (sys.cached) {
                core::QueryCacheConfig cfg;
                cfg.capacity = entries;
                cfg.threshold = 0.12;
                cfg.qcnAccuracy = 0.97;
                cache = std::make_unique<core::QueryCache>(
                    cfg,
                    [&universe](std::uint64_t a, std::uint64_t b) {
                        return universe.qcnScore(a, b);
                    });
            }
            auto stats =
                core::replayTrace(trace, service, cache.get());
            t.addRow({sys.name,
                      TextTable::num(stats.missRate * 100, 0),
                      TextTable::num(stats.utilization * 100, 0),
                      TextTable::num(stats.p50Seconds * 1e3, 1),
                      TextTable::num(stats.p95Seconds * 1e3, 1),
                      TextTable::num(stats.p99Seconds * 1e3, 1)});
        }
        t.print(std::cout);
        report.table(t, TextTable::num(rate, 1) + " q/s");
    }

    std::printf(
        "\nThe GPU baseline saturates first (utilization -> 100%%, "
        "unbounded tails);\nDeepStore sustains an order of magnitude "
        "higher arrival rate at bounded latency,\nand the Query Cache "
        "extends that further — the serving-system consequence of\n"
        "Table 4's per-query speedups.\n");
    report.write();
    return 0;
}
