/**
 * @file
 * Scale-out throughput of the sharded multi-SSD array: closed-loop
 * simulated QPS for node counts 1/2/4/8 at in-flight depths 1 and
 * 16. Every node holds 1/N of the feature database, so an N-node
 * array runs N concurrent 1/N-size scans per query plus the host
 * fabric's scatter/merge legs; a flash-bound workload should scale
 * near-linearly until the fabric or the merge serialization bites.
 *
 * Reported per cell: simulated QPS, p50/p99 query latency, the mean
 * merge-leg seconds, and total inter-node fabric bytes — the honest
 * cost of the scatter/merge plumbing, not just the speedup. CI's
 * smoke gate asserts the 4-node depth-16 cell clears 3x the 1-node
 * depth-16 throughput.
 */

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/deepstore.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

constexpr std::int64_t kDim = 128;
constexpr std::uint64_t kFeatures = 16'384;
constexpr std::uint64_t kQueriesPerCell = 96;

/** Per-node drive geometry: an 8-channel slice keeps the event count
 *  per cell small while leaving every node flash-bound. */
ssd::FlashParams
nodeFlash()
{
    ssd::FlashParams p;
    p.channels = 8;
    return p;
}

nn::ModelBundle
dotModel(std::int64_t dim)
{
    nn::Model m("bench-scn", dim, false);
    m.addLayer(nn::Layer::elementWise("dot", nn::EwOp::DotProduct,
                                      dim));
    auto w = nn::ModelWeights::random(m, 1);
    return nn::ModelBundle{std::move(m), std::move(w)};
}

struct CellResult
{
    double qps = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
    double meanMergeSeconds = 0.0;
    double interNodeBytes = 0.0;
};

/** Closed-loop run: keep `depth` queries in flight on an
 *  `nodes`-node array until kQueriesPerCell have completed. */
CellResult
runCell(std::size_t nodes, int depth)
{
    core::DeepStoreConfig cfg;
    cfg.defaultLevel = core::Level::ChannelLevel;
    cfg.flash = nodeFlash();
    cfg.array.nodes.assign(nodes, nodeFlash());
    core::DeepStore ds(cfg);
    workloads::FeatureGenerator gen(kDim, 32, 7);
    std::uint64_t db = ds.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(gen,
                                                       kFeatures));
    std::uint64_t model = ds.loadModel(dotModel(kDim));

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::vector<double> latencies;
    double merge_sum = 0.0;
    double bytes_sum = 0.0;

    std::function<void()> submitOne = [&] {
        std::vector<float> qfv =
            gen.featureAt(submitted % kFeatures);
        std::uint64_t qid = ds.query(qfv, 5, model, db, 0, 0);
        ++submitted;
        ds.onComplete(qid, [&](const core::QueryResult &res) {
            latencies.push_back(res.latencySeconds);
            merge_sum += res.mergeSeconds;
            bytes_sum += static_cast<double>(res.interNodeBytes);
            ++completed;
            if (submitted < kQueriesPerCell)
                submitOne();
        });
    };

    double t0 = ds.simulatedSeconds();
    for (int i = 0; i < depth &&
                    submitted < kQueriesPerCell;
         ++i)
        submitOne();
    ds.drain();
    double span = ds.simulatedSeconds() - t0;

    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
        if (latencies.empty())
            return 0.0;
        auto idx = static_cast<std::size_t>(
            p * static_cast<double>(latencies.size() - 1));
        return latencies[idx];
    };
    CellResult r;
    r.qps = static_cast<double>(completed) / span;
    r.p50 = pct(0.50);
    r.p99 = pct(0.99);
    r.meanMergeSeconds =
        merge_sum / static_cast<double>(completed);
    r.interNodeBytes = bytes_sum;
    return r;
}

} // namespace

int
main()
{
    bench::banner(
        "array scale-out throughput",
        "closed-loop simulated QPS vs node count x in-flight "
        "depth,\nchannel level, dot-product SCN over a " +
            std::to_string(kFeatures) +
            "-feature db striped across the array");

    bench::JsonReport report("array_scaleout");
    report.meta("dim", static_cast<double>(kDim))
        .meta("features", static_cast<double>(kFeatures))
        .meta("queriesPerCell",
              static_cast<double>(kQueriesPerCell))
        .meta("nodeChannels",
              static_cast<double>(nodeFlash().channels));

    TextTable t({"nodes", "depth", "sim QPS", "p50 (ms)", "p99 (ms)",
                 "merge (us)", "fabric MiB", "speedup vs 1-node"});
    for (int depth : {1, 16}) {
        double base_qps = 0.0;
        for (std::size_t nodes : {1u, 2u, 4u, 8u}) {
            CellResult r = runCell(nodes, depth);
            if (nodes == 1)
                base_qps = r.qps;
            t.addRow({std::to_string(nodes), std::to_string(depth),
                      TextTable::num(r.qps, 0),
                      TextTable::num(r.p50 * 1e3, 3),
                      TextTable::num(r.p99 * 1e3, 3),
                      TextTable::num(r.meanMergeSeconds * 1e6, 3),
                      TextTable::num(r.interNodeBytes / (1 << 20),
                                     2),
                      TextTable::num(r.qps / base_qps, 2) + "x"});
            report.beginRow()
                .col("nodes", static_cast<double>(nodes))
                .col("depth", static_cast<double>(depth))
                .col("simQps", r.qps)
                .col("p50LatencySeconds", r.p50)
                .col("p99LatencySeconds", r.p99)
                .col("meanMergeSeconds", r.meanMergeSeconds)
                .col("interNodeBytes", r.interNodeBytes)
                .col("speedupVsOneNode", r.qps / base_qps);
        }
    }
    t.print(std::cout);
    report.write();
    return 0;
}
