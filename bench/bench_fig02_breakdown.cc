/**
 * @file
 * Regenerates Fig. 2: per-batch time breakdown (GPU compute /
 * cudaMemcpy / SSD read) of the GPU+SSD baseline, across batch sizes
 * and both GPU generations. The paper's headline: 56-90% of the
 * execution time is spent reading the feature dataset from the SSD,
 * and upgrading Pascal -> Volta barely moves the total.
 */

#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "host/baseline.h"

using namespace deepstore;

int
main()
{
    bench::banner("Figure 2",
                  "GPU+SSD baseline breakdown: compute vs cudaMemcpy "
                  "vs SSD read (Pascal & Volta)");

    bench::JsonReport report("fig02_breakdown");

    for (const auto &app : workloads::allApps()) {
        bench::section(app.name);
        TextTable t({"Batch", "GPU", "Compute(ms)", "Memcpy(ms)",
                     "SSDRead(ms)", "Total(ms)", "IO%"});
        for (auto batch : app.fig2BatchSizes) {
            for (const auto &spec :
                 {host::pascalSpec(), host::voltaSpec()}) {
                host::GpuSsdSystem sys(spec);
                auto b = sys.batchTime(app, batch);
                t.addRow({std::to_string(batch),
                          spec.name.substr(0, 8),
                          TextTable::num(b.computeSeconds * 1e3, 2),
                          TextTable::num(b.memcpySeconds * 1e3, 2),
                          TextTable::num(b.ssdReadSeconds * 1e3, 2),
                          TextTable::num(b.total() * 1e3, 2),
                          TextTable::num(b.ioFraction() * 100.0, 1)});
            }
        }
        t.print(std::cout);
        report.table(t, app.name);
    }

    bench::section("Observations (paper §3)");
    double min_io = 1.0, max_io = 0.0;
    for (const auto &app : workloads::allApps()) {
        for (const auto &spec : {host::pascalSpec(), host::voltaSpec()}) {
            host::GpuSsdSystem sys(spec);
            double f =
                sys.batchTime(app, app.evalBatchSize).ioFraction();
            min_io = std::min(min_io, f);
            max_io = std::max(max_io, f);
        }
    }
    std::printf("Storage I/O fraction across apps/GPUs: %.0f%%-%.0f%% "
                "(paper: 56%%-90%%)\n",
                min_io * 100, max_io * 100);
    for (const auto &app : workloads::allApps()) {
        host::GpuSsdSystem pascal(host::pascalSpec()),
            volta(host::voltaSpec());
        auto p = pascal.batchTime(app, app.evalBatchSize);
        auto v = volta.batchTime(app, app.evalBatchSize);
        std::printf("%-7s Volta SCN compute speedup %.0f%% (paper: "
                    "33%%), total speedup only %.1f%%\n",
                    app.name.c_str(),
                    (p.computeSeconds / v.computeSeconds - 1.0) * 100,
                    (p.total() / v.total() - 1.0) * 100);
    }
    report.write();
    return 0;
}
