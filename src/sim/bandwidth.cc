#include "sim/bandwidth.h"

#include <utility>

#include "common/logging.h"

namespace deepstore::sim {

BandwidthLink::BandwidthLink(std::string name, double bytes_per_second)
    : name_(std::move(name)), bytesPerSecond_(bytes_per_second)
{
    DS_ASSERT(bytesPerSecond_ >= 0.0);
}

Tick
BandwidthLink::acquire(Tick ready, std::uint64_t bytes)
{
    DS_ASSERT(bytesPerSecond_ > 0.0);
    bytes_ += bytes;
    return acquireTicks(
        ready, secondsToTicks(static_cast<double>(bytes) / bytesPerSecond_));
}

Tick
BandwidthLink::acquireTicks(Tick ready, Tick duration)
{
    const Tick start = freeAt_ > ready ? freeAt_ : ready;
    wait_ += start - ready;
    busy_ += duration;
    ++grants_;
    freeAt_ = start + duration;
    return freeAt_;
}

} // namespace deepstore::sim
