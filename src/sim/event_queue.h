/**
 * @file
 * Discrete-event simulation kernel for the SSD simulator.
 *
 * A single EventQueue orders callbacks by (tick, insertion sequence) so
 * simultaneous events fire deterministically in schedule order, which
 * keeps runs reproducible regardless of container internals.
 */

#ifndef DEEPSTORE_SIM_EVENT_QUEUE_H
#define DEEPSTORE_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace deepstore::sim {

/** Handle to a scheduled event; usable to cancel it before it fires. */
using EventId = std::uint64_t;

/**
 * Tick-ordered event queue. Not thread-safe; the whole simulator is
 * single-threaded by design (as SSD-Sim and SCALE-Sim are).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     * @pre when >= now().
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule a callback `delay` ticks from now. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * One stage of a chained schedule: fire `fn` `delay` ticks after
     * the previous stage completed (or after scheduleChain() for the
     * first stage).
     */
    struct ChainStage
    {
        Tick delay = 0;
        Callback fn;
    };

    /**
     * Schedule a sequence of dependent stages: stage i+1 is scheduled
     * only when stage i fires, so a later stage's absolute tick tracks
     * any clock advancement performed by earlier stages. Used by the
     * query scheduler to drive per-query state machines
     * (CacheProbe -> Striped -> ... ) without hand-rolled rescheduling.
     * @return the EventId of the *first* stage (cancelling it stops
     * the whole chain before it starts; later stages cannot be
     * cancelled through this id).
     */
    EventId scheduleChain(std::vector<ChainStage> stages);

    /**
     * Schedule `fn` at now+first and then every `period` ticks for as
     * long as it returns true (a false return retires the series).
     * Useful for open-loop arrival injection (trace replay, benches).
     * @pre period > 0.
     * @return the EventId of the first occurrence only.
     */
    EventId schedulePeriodic(Tick first, Tick period,
                             std::function<bool()> fn);

    /**
     * Cancel a pending event. Returns false when the event already
     * fired, was already cancelled, or never existed.
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return liveEvents_; }

    /**
     * Run a single event (the earliest pending one).
     * @return false when the queue was empty.
     */
    bool step();

    /** Run until the queue drains. @return the final tick. */
    Tick run();

    /**
     * Run until the queue drains or simulated time would pass `limit`.
     * Events scheduled exactly at `limit` still fire.
     */
    Tick runUntil(Tick limit);

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventId id;
        // Ordered min-first by (when, seq).
        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::vector<Callback> callbacks_;
    std::vector<bool> cancelled_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t liveEvents_ = 0;
};

} // namespace deepstore::sim

#endif // DEEPSTORE_SIM_EVENT_QUEUE_H
