/**
 * @file
 * Clock-domain helper converting between cycles on a fixed-frequency
 * clock and simulator ticks (picoseconds).
 */

#ifndef DEEPSTORE_SIM_CLOCK_H
#define DEEPSTORE_SIM_CLOCK_H

#include <cmath>

#include "common/logging.h"
#include "common/units.h"

namespace deepstore::sim {

/** A fixed-frequency clock domain (e.g., the 800 MHz accelerator clock). */
class Clock
{
  public:
    /** @param frequency_hz clock frequency; must be positive. */
    explicit Clock(double frequency_hz)
        : frequencyHz_(frequency_hz)
    {
        if (frequency_hz <= 0.0)
            fatal("clock frequency must be positive (got %g)",
                  frequency_hz);
        period_ = static_cast<double>(kTicksPerSecond) / frequency_hz;
    }

    double frequencyHz() const { return frequencyHz_; }

    /** Tick duration of one cycle (may round when printed; internal
     *  conversions use the exact double period). */
    double periodTicks() const { return period_; }

    /** Convert a cycle count to ticks, rounding up to whole ticks. */
    Tick
    cyclesToTicks(Cycles cycles) const
    {
        return static_cast<Tick>(
            std::ceil(static_cast<double>(cycles) * period_));
    }

    /** Convert a cycle count to seconds. */
    double
    cyclesToSeconds(Cycles cycles) const
    {
        return static_cast<double>(cycles) / frequencyHz_;
    }

    /** Convert a duration in seconds to (rounded-up) cycles. */
    Cycles
    secondsToCycles(double seconds) const
    {
        return static_cast<Cycles>(std::ceil(seconds * frequencyHz_));
    }

  private:
    double frequencyHz_;
    double period_;
};

} // namespace deepstore::sim

#endif // DEEPSTORE_SIM_CLOCK_H
