#include "sim/event_queue.h"

#include <memory>

#include "common/logging.h"

namespace deepstore::sim {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past (when=%llu, now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    EventId id = callbacks_.size();
    callbacks_.push_back(std::move(cb));
    cancelled_.push_back(false);
    queue_.push(Entry{when, nextSeq_++, id});
    ++liveEvents_;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

EventId
EventQueue::scheduleChain(std::vector<ChainStage> stages)
{
    if (stages.empty())
        panic("scheduleChain needs at least one stage");
    // Each fired stage schedules its successor, so clock movement
    // between stages is respected automatically. The recursive
    // closure holds only a *weak* self-reference — the strong
    // references live in the scheduled events — so the last stage's
    // completion releases everything (no shared_ptr cycle).
    auto run_from = std::make_shared<std::function<void(std::size_t)>>();
    std::weak_ptr<std::function<void(std::size_t)>> weak = run_from;
    auto shared = std::make_shared<std::vector<ChainStage>>(
        std::move(stages));
    *run_from = [this, shared, weak](std::size_t i) {
        if ((*shared)[i].fn)
            (*shared)[i].fn();
        std::size_t next = i + 1;
        if (next < shared->size())
            scheduleAfter((*shared)[next].delay,
                          [self = weak.lock(), next] {
                              (*self)(next);
                          });
    };
    return scheduleAfter((*shared)[0].delay,
                         [run_from] { (*run_from)(0); });
}

EventId
EventQueue::schedulePeriodic(Tick first, Tick period,
                             std::function<bool()> fn)
{
    if (period == 0)
        panic("schedulePeriodic needs a positive period");
    if (!fn)
        panic("schedulePeriodic needs a callable");
    // Same weak-self pattern as scheduleChain: the strong references
    // live only in scheduled events, so once the body returns false
    // (or the pending event is cancelled) everything is released.
    auto tick = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak = tick;
    auto body = std::make_shared<std::function<bool()>>(std::move(fn));
    *tick = [this, body, weak, period] {
        if ((*body)())
            scheduleAfter(period, [self = weak.lock()] { (*self)(); });
    };
    return scheduleAfter(first, [tick] { (*tick)(); });
}

bool
EventQueue::cancel(EventId id)
{
    if (id >= callbacks_.size() || cancelled_[id] || !callbacks_[id])
        return false;
    cancelled_[id] = true;
    callbacks_[id] = nullptr;
    --liveEvents_;
    return true;
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        if (cancelled_[e.id])
            continue;
        now_ = e.when;
        Callback cb = std::move(callbacks_[e.id]);
        callbacks_[e.id] = nullptr;
        cancelled_[e.id] = true; // consumed
        --liveEvents_;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!queue_.empty()) {
        // Peek past cancelled entries without executing.
        Entry e = queue_.top();
        if (cancelled_[e.id]) {
            queue_.pop();
            continue;
        }
        if (e.when > limit)
            break;
        step();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace deepstore::sim
