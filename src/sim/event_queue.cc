#include "sim/event_queue.h"

#include "common/logging.h"

namespace deepstore::sim {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_)
        panic("scheduling event in the past (when=%llu, now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    EventId id = callbacks_.size();
    callbacks_.push_back(std::move(cb));
    cancelled_.push_back(false);
    queue_.push(Entry{when, nextSeq_++, id});
    ++liveEvents_;
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    if (id >= callbacks_.size() || cancelled_[id] || !callbacks_[id])
        return false;
    cancelled_[id] = true;
    callbacks_[id] = nullptr;
    --liveEvents_;
    return true;
}

bool
EventQueue::step()
{
    while (!queue_.empty()) {
        Entry e = queue_.top();
        queue_.pop();
        if (cancelled_[e.id])
            continue;
        now_ = e.when;
        Callback cb = std::move(callbacks_[e.id]);
        callbacks_[e.id] = nullptr;
        cancelled_[e.id] = true; // consumed
        --liveEvents_;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!queue_.empty()) {
        // Peek past cancelled entries without executing.
        Entry e = queue_.top();
        if (cancelled_[e.id]) {
            queue_.pop();
            continue;
        }
        if (e.when > limit)
            break;
        step();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

} // namespace deepstore::sim
