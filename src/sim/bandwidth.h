/**
 * @file
 * Shared-bandwidth resources with deterministic arbitration.
 *
 * A BandwidthLink models one serializing interconnect — the SSD's
 * DRAM channel, a flash channel bus (the NoC link of the accelerator
 * complex) — as a busy-until horizon that every consumer reserves
 * time on in *event order*: first acquire() call wins the earliest
 * slot, later calls queue behind it (FIFO). Because the event queue
 * itself is deterministic (tick, then insertion order), arbitration
 * is a pure function of the simulated workload — no randomness, no
 * wall-clock, replay-identical.
 *
 * This is the resource that FlashController bus transfers, DfvStream
 * bursts, accelerator weight fetches, QC-probe reads, top-K reduce
 * traffic, and FTL relocation staging all draw from, so contention
 * between any two of them is physical rather than analytic.
 *
 * waitTicks() accumulates the arbitration delay every grant suffered
 * (start - ready); busyTicks() accumulates granted occupancy. Both
 * feed the contention counters on the stats surface.
 */

#ifndef DEEPSTORE_SIM_BANDWIDTH_H
#define DEEPSTORE_SIM_BANDWIDTH_H

#include <cstdint>
#include <string>

#include "common/units.h"

namespace deepstore::sim {

/** One serializing bandwidth resource (see file comment). */
class BandwidthLink
{
  public:
    /**
     * @param name diagnostic label (stats / traces)
     * @param bytes_per_second link bandwidth for byte-sized grants
     */
    BandwidthLink(std::string name, double bytes_per_second);

    /**
     * Reserve the link for a transfer of `bytes`, ready to start at
     * `ready`. Returns the completion tick; the link is busy until
     * then.
     */
    Tick acquire(Tick ready, std::uint64_t bytes);

    /**
     * Reserve the link for an explicit duration (callers that price
     * their own transfer time, e.g. the flash channel's ONFI timing).
     */
    Tick acquireTicks(Tick ready, Tick duration);

    /** Tick at which the link frees up (<= now means idle). */
    Tick freeAt() const { return freeAt_; }

    /** Total arbitration wait suffered by all grants so far. */
    Tick waitTicks() const { return wait_; }

    /** Total granted occupancy so far. */
    Tick busyTicks() const { return busy_; }

    /** Grants issued so far. */
    std::uint64_t grants() const { return grants_; }

    /** Bytes moved by byte-sized grants (acquire() only). */
    std::uint64_t bytesCarried() const { return bytes_; }

    double bytesPerSecond() const { return bytesPerSecond_; }
    const std::string &name() const { return name_; }

    /** Power loss: in-flight reservations die with the capacitors.
     *  Counters survive (they describe the pre-loss epoch). */
    void reset(Tick now) { freeAt_ = now; }

  private:
    std::string name_;
    double bytesPerSecond_;
    Tick freeAt_ = 0;
    Tick wait_ = 0;
    Tick busy_ = 0;
    std::uint64_t grants_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace deepstore::sim

#endif // DEEPSTORE_SIM_BANDWIDTH_H
