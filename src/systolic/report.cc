#include "systolic/report.h"

#include "common/table.h"

namespace deepstore::systolic {

std::vector<LayerReportRow>
layerReport(const SystolicSim &sim, const nn::Model &model,
            WeightSource source, std::int64_t ws_group)
{
    model.validate();
    std::vector<LayerReportRow> rows;
    ModelRun run = sim.runModelWithSource(model, source, ws_group);
    const auto &layers = model.layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        LayerReportRow row;
        row.name = layers[i].name;
        row.kind = toString(layers[i].kind);
        row.run = run.layers[i];
        rows.push_back(std::move(row));
    }
    return rows;
}

void
printLayerReport(std::ostream &os,
                 const std::vector<LayerReportRow> &rows,
                 const ArrayConfig &config)
{
    os << "array " << config.rows << "x" << config.cols << " ("
       << toString(config.dataflow) << ") @ "
       << config.frequencyHz / 1e6 << " MHz\n";
    TextTable t({"Layer", "Kind", "Cycles", "Util%", "SpadRd",
                 "SpadWr", "L2Rd", "DramRd(B)", "Time(us)"});
    LayerRun total;
    for (const auto &row : rows) {
        const LayerRun &r = row.run;
        t.addRow({row.name, row.kind, std::to_string(r.totalCycles),
                  TextTable::num(r.utilization * 100.0, 1),
                  std::to_string(r.spadReads),
                  std::to_string(r.spadWrites),
                  std::to_string(r.l2Reads),
                  std::to_string(r.dramReadBytes),
                  TextTable::num(static_cast<double>(r.totalCycles) /
                                     config.frequencyHz * 1e6,
                                 3)});
        total.add(r);
    }
    t.addRow({"TOTAL", "-", std::to_string(total.totalCycles), "-",
              std::to_string(total.spadReads),
              std::to_string(total.spadWrites),
              std::to_string(total.l2Reads),
              std::to_string(total.dramReadBytes),
              TextTable::num(static_cast<double>(total.totalCycles) /
                                 config.frequencyHz * 1e6,
                             3)});
    t.print(os);
}

} // namespace deepstore::systolic
