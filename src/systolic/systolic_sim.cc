#include "systolic/systolic_sim.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepstore::systolic {

namespace {

std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

} // namespace

const char *
toString(Dataflow df)
{
    switch (df) {
      case Dataflow::OutputStationary: return "OS";
      case Dataflow::WeightStationary: return "WS";
      case Dataflow::InputStationary: return "IS";
    }
    return "?";
}

void
ArrayConfig::validate() const
{
    if (rows <= 0 || cols <= 0)
        fatal("array '%s': non-positive dimensions %lldx%lld",
              name.c_str(), static_cast<long long>(rows),
              static_cast<long long>(cols));
    if (frequencyHz <= 0.0)
        fatal("array '%s': non-positive frequency", name.c_str());
    if (dramBandwidth <= 0.0)
        fatal("array '%s': non-positive DRAM bandwidth", name.c_str());
    if (scratchpadBytes == 0)
        fatal("array '%s': zero scratchpad", name.c_str());
}

void
LayerRun::add(const LayerRun &o)
{
    computeCycles += o.computeCycles;
    memoryStallCycles += o.memoryStallCycles;
    totalCycles += o.totalCycles;
    macs += o.macs;
    spadReads += o.spadReads;
    spadWrites += o.spadWrites;
    l2Reads += o.l2Reads;
    dramReadBytes += o.dramReadBytes;
    dramWriteBytes += o.dramWriteBytes;
    // Utilization of the concatenation is recomputed by callers that
    // care; keep the max as a hint.
    utilization = std::max(utilization, o.utilization);
}

SystolicSim::SystolicSim(ArrayConfig config) : config_(std::move(config))
{
    config_.validate();
}

SystolicSim::Gemm
SystolicSim::lowerToGemm(const nn::Layer &layer)
{
    using nn::LayerKind;
    switch (layer.kind) {
      case LayerKind::FullyConnected:
        // One feature vector at a time (paper §4.5): GEMV.
        return Gemm{1, layer.fcOut, layer.fcIn};
      case LayerKind::Conv2D:
        // im2col: every output pixel is a row.
        return Gemm{layer.outH() * layer.outW(), layer.outC,
                    layer.kH * layer.kW * layer.inC};
      case LayerKind::ElementWise:
        panic("element-wise layers are not GEMMs");
    }
    return Gemm{0, 0, 0};
}

LayerRun
SystolicSim::runLayer(const nn::Layer &layer, WeightSource weight_source,
                      std::int64_t batch) const
{
    DS_ASSERT(batch >= 1);
    if (layer.kind == nn::LayerKind::ElementWise)
        return runElementWise(layer, batch);
    return runGemm(lowerToGemm(layer), layer, weight_source, batch);
}

LayerRun
SystolicSim::runGemm(const Gemm &g, const nn::Layer &layer,
                     WeightSource weight_source,
                     std::int64_t batch) const
{
    const std::int64_t R = config_.rows;
    const std::int64_t C = config_.cols;
    LayerRun run;
    run.macs = static_cast<std::uint64_t>(layer.macs()) *
               static_cast<std::uint64_t>(batch);

    // How many times the full weight matrix is streamed from its
    // backing store (scratchpad / L2 / DRAM) for the whole batch.
    double weight_fetch_passes = 0.0;
    // Input and output element traffic.
    std::uint64_t input_reads = 0;
    std::uint64_t output_writes = 0;

    switch (config_.dataflow) {
      case Dataflow::OutputStationary: {
        // Output tiles of Sr x Sc; reduction depth K streams through.
        std::int64_t m = g.m * batch;
        std::int64_t folds_r = ceilDiv(m, R);
        std::int64_t folds_c = ceilDiv(g.n, C);
        Cycles cycles = 0;
        for (std::int64_t fr = 0; fr < folds_r; ++fr) {
            std::int64_t sr = std::min(R, m - fr * R);
            for (std::int64_t fc = 0; fc < folds_c; ++fc) {
                std::int64_t sc = std::min(C, g.n - fc * C);
                cycles += static_cast<Cycles>(2 * sr + sc + g.k - 2);
            }
        }
        run.computeCycles = cycles;
        // Every column-fold re-reads the input rows; every row-fold
        // re-reads the weights.
        input_reads = static_cast<std::uint64_t>(m) *
                      static_cast<std::uint64_t>(g.k) *
                      static_cast<std::uint64_t>(folds_c);
        // The weight matrix streams once per row-fold; batching fuses
        // the independent GEMMs into m rows, so folds_r already
        // accounts for it.
        weight_fetch_passes = static_cast<double>(folds_r);
        output_writes = static_cast<std::uint64_t>(m) *
                        static_cast<std::uint64_t>(g.n);
        break;
      }
      case Dataflow::WeightStationary: {
        // Weight tiles of Sr x Sc pinned; all batch inputs stream
        // through each tile before the next preload.
        std::int64_t folds_r = ceilDiv(g.k, R);
        std::int64_t folds_c = ceilDiv(g.n, C);
        std::int64_t m_total = g.m * batch;
        Cycles cycles = 0;
        for (std::int64_t fr = 0; fr < folds_r; ++fr) {
            std::int64_t sr = std::min(R, g.k - fr * R);
            for (std::int64_t fc = 0; fc < folds_c; ++fc) {
                std::int64_t sc = std::min(C, g.n - fc * C);
                cycles += static_cast<Cycles>(sr) // preload
                          + static_cast<Cycles>(m_total) // stream
                          + static_cast<Cycles>(sc - 1); // drain
            }
        }
        run.computeCycles = cycles;
        // Inputs re-streamed once per weight tile column... each input
        // row visits every (fr, fc) tile.
        input_reads = static_cast<std::uint64_t>(m_total) *
                      static_cast<std::uint64_t>(g.k) *
                      static_cast<std::uint64_t>(folds_c);
        weight_fetch_passes = 1.0; // pinned across the batch
        output_writes = static_cast<std::uint64_t>(m_total) *
                        static_cast<std::uint64_t>(g.n) *
                        static_cast<std::uint64_t>(folds_r);
        break;
      }
      case Dataflow::InputStationary: {
        // Input tiles pinned; weights stream. Symmetric to WS.
        std::int64_t m_total = g.m * batch;
        std::int64_t folds_r = ceilDiv(g.k, R);
        std::int64_t folds_c = ceilDiv(m_total, C);
        Cycles cycles = 0;
        for (std::int64_t fr = 0; fr < folds_r; ++fr) {
            std::int64_t sr = std::min(R, g.k - fr * R);
            for (std::int64_t fc = 0; fc < folds_c; ++fc) {
                std::int64_t sc = std::min(C, m_total - fc * C);
                cycles += static_cast<Cycles>(sr) +
                          static_cast<Cycles>(g.n) +
                          static_cast<Cycles>(sc - 1);
            }
        }
        run.computeCycles = cycles;
        input_reads = static_cast<std::uint64_t>(m_total) *
                      static_cast<std::uint64_t>(g.k);
        weight_fetch_passes = static_cast<double>(folds_c);
        output_writes = static_cast<std::uint64_t>(m_total) *
                        static_cast<std::uint64_t>(g.n) *
                        static_cast<std::uint64_t>(folds_r);
        break;
      }
    }

    const auto weight_words =
        static_cast<std::uint64_t>(layer.weightCount());
    const auto weight_stream_words = static_cast<std::uint64_t>(
        weight_fetch_passes * static_cast<double>(weight_words));

    // Scratchpad sees all streamed operands.
    run.spadReads = input_reads;
    run.spadWrites = output_writes;

    switch (weight_source) {
      case WeightSource::Scratchpad:
        run.spadReads += weight_stream_words;
        break;
      case WeightSource::SharedL2:
        run.l2Reads += weight_stream_words;
        break;
      case WeightSource::Dram:
        run.spadReads += weight_stream_words; // staged through spad
        run.dramReadBytes +=
            weight_stream_words * config_.wordBytes;
        break;
    }

    applyBandwidth(run);
    return run;
}

LayerRun
SystolicSim::runElementWise(const nn::Layer &layer,
                            std::int64_t batch) const
{
    LayerRun run;
    const std::int64_t R = config_.rows;
    std::int64_t n = layer.ewSize;
    // R lanes, one element per lane per cycle, plus a drain through the
    // first column; the dot product adds a reduction pass along the
    // column (R cycles).
    Cycles per = static_cast<Cycles>(ceilDiv(n, R)) +
                 static_cast<Cycles>(
                     layer.ewOp == nn::EwOp::DotProduct ? R : 1);
    run.computeCycles = per * static_cast<Cycles>(batch);
    run.macs = static_cast<std::uint64_t>(layer.macs()) *
               static_cast<std::uint64_t>(batch);
    run.spadReads = static_cast<std::uint64_t>(2 * n * batch);
    run.spadWrites =
        static_cast<std::uint64_t>(layer.outputCount() * batch);
    applyBandwidth(run);
    return run;
}

void
SystolicSim::applyBandwidth(LayerRun &run) const
{
    double bytes = static_cast<double>(run.dramReadBytes) +
                   static_cast<double>(run.dramWriteBytes);
    auto supply_cycles = static_cast<Cycles>(
        std::ceil(bytes / config_.dramBytesPerCycle()));
    run.totalCycles = std::max(run.computeCycles, supply_cycles);
    run.memoryStallCycles = run.totalCycles - run.computeCycles;
    double pe_cycles = static_cast<double>(run.totalCycles) *
                       static_cast<double>(config_.peCount());
    run.utilization =
        pe_cycles > 0.0 ? static_cast<double>(run.macs) / pe_cycles : 0.0;
}

ModelRun
SystolicSim::runModel(const nn::Model &model, bool weights_fit_on_chip,
                      std::int64_t ws_group_size) const
{
    WeightSource src;
    if (weights_fit_on_chip) {
        src = WeightSource::Scratchpad;
    } else if (config_.sharedL2Bytes > 0 &&
               model.totalWeightBytes() <= config_.sharedL2Bytes) {
        src = WeightSource::SharedL2;
    } else {
        src = WeightSource::Dram;
    }
    return runModelWithSource(model, src, ws_group_size);
}

ModelRun
SystolicSim::runModelWithSource(const nn::Model &model,
                                WeightSource src,
                                std::int64_t ws_group_size) const
{
    DS_ASSERT(ws_group_size >= 1);
    ModelRun result;
    const bool is_ws = config_.dataflow == Dataflow::WeightStationary;
    for (const auto &layer : model.layers()) {
        LayerRun lr;
        if (is_ws && layer.kind != nn::LayerKind::ElementWise) {
            // Weights pinned across ws_group_size features: simulate
            // the group and scale back to per-feature cost.
            lr = runLayer(layer, src, ws_group_size);
            lr.computeCycles /= static_cast<Cycles>(ws_group_size);
            lr.totalCycles /= static_cast<Cycles>(ws_group_size);
            lr.memoryStallCycles /= static_cast<Cycles>(ws_group_size);
            lr.macs /= static_cast<std::uint64_t>(ws_group_size);
            lr.spadReads /= static_cast<std::uint64_t>(ws_group_size);
            lr.spadWrites /= static_cast<std::uint64_t>(ws_group_size);
            lr.l2Reads /= static_cast<std::uint64_t>(ws_group_size);
            lr.dramReadBytes /=
                static_cast<std::uint64_t>(ws_group_size);
            lr.dramWriteBytes /=
                static_cast<std::uint64_t>(ws_group_size);
        } else {
            lr = runLayer(layer, src, 1);
        }
        result.total.add(lr);
        result.layers.push_back(lr);
    }
    // Recompute aggregate utilization over the whole inference.
    double pe_cycles = static_cast<double>(result.total.totalCycles) *
                       static_cast<double>(config_.peCount());
    result.total.utilization =
        pe_cycles > 0.0
            ? static_cast<double>(result.total.macs) / pe_cycles
            : 0.0;
    return result;
}

Cycles
SystolicSim::idealComputeCycles(const nn::Layer &layer) const
{
    if (layer.kind == nn::LayerKind::ElementWise)
        return runElementWise(layer, 1).computeCycles;
    Gemm g = lowerToGemm(layer);
    LayerRun r;
    // Reuse runGemm but ignore the memory model by reading
    // computeCycles only.
    r = runGemm(g, layer, WeightSource::Scratchpad, 1);
    return r.computeCycles;
}

bool
SystolicSim::weightsFit(const nn::Model &model) const
{
    return model.totalWeightBytes() <= config_.scratchpadBytes;
}

} // namespace deepstore::systolic
