#include "systolic/slot_schedule.h"

#include "common/logging.h"

namespace deepstore::systolic {

Cycles
SlotSchedule::computeCyclesPerFeature() const
{
    Cycles total = 0;
    for (const auto &b : bursts)
        total += b.computeCycles;
    return total;
}

std::uint64_t
SlotSchedule::dramBytesPerFeature() const
{
    std::uint64_t total = 0;
    for (const auto &b : bursts)
        total += b.dramReadBytes;
    return total;
}

SlotSchedule
slotSchedule(const ModelRun &run, std::int64_t features_per_slot)
{
    DS_ASSERT(features_per_slot >= 1);
    SlotSchedule sched;
    sched.featuresPerSlot = features_per_slot;
    sched.bursts.reserve(run.layers.size());
    for (const auto &layer : run.layers) {
        SlotBurst b;
        b.computeCycles = layer.totalCycles;
        b.dramReadBytes = layer.dramReadBytes;
        sched.bursts.push_back(b);
    }
    return sched;
}

} // namespace deepstore::systolic
