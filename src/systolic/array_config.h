/**
 * @file
 * Systolic-array configuration (the SCALE-Sim "config" block).
 *
 * A DeepStore accelerator is a rectangular array of processing engines
 * (PEs) fed by a scratchpad, optionally backed by a shared second-level
 * scratchpad (the SSD-level 8 MB SRAM that channel-level accelerators
 * use as an L2 for weights, paper §4.5), and by SSD DRAM.
 */

#ifndef DEEPSTORE_SYSTOLIC_ARRAY_CONFIG_H
#define DEEPSTORE_SYSTOLIC_ARRAY_CONFIG_H

#include <cstdint>
#include <string>

#include "common/units.h"

namespace deepstore::systolic {

/** Mapping strategy for the systolic array (paper Table 3). */
enum class Dataflow
{
    OutputStationary, ///< outputs accumulate in PEs (SSD/channel level)
    WeightStationary, ///< weights pinned in PEs (chip level)
    InputStationary,  ///< inputs pinned in PEs (for DSE comparisons)
};

const char *toString(Dataflow df);

/** Where a layer's weights are resident during SCN execution. */
enum class WeightSource
{
    Scratchpad, ///< fit in the accelerator's private scratchpad
    SharedL2,   ///< fetched from the shared SSD-level scratchpad
    Dram,       ///< streamed from SSD DRAM every inference
};

/** Static configuration of one accelerator's systolic array. */
struct ArrayConfig
{
    std::string name = "accel";
    std::int64_t rows = 32;
    std::int64_t cols = 64;
    Dataflow dataflow = Dataflow::OutputStationary;
    double frequencyHz = 800 * MHz;

    /** Private scratchpad capacity in bytes. */
    std::uint64_t scratchpadBytes = 8 * MiB;

    /** Shared second-level scratchpad (0 = none). */
    std::uint64_t sharedL2Bytes = 0;

    /** DRAM bandwidth available to this accelerator (bytes/s). */
    double dramBandwidth = 20.0 * GB;

    /** Operand width in bytes (32-bit FP per paper §5). */
    std::uint64_t wordBytes = kBytesPerFloat;

    std::int64_t peCount() const { return rows * cols; }

    /** DRAM bytes deliverable per accelerator clock cycle. */
    double
    dramBytesPerCycle() const
    {
        return dramBandwidth / frequencyHz;
    }

    /** Validate the configuration; fatal() when malformed. */
    void validate() const;
};

} // namespace deepstore::systolic

#endif // DEEPSTORE_SYSTOLIC_ARRAY_CONFIG_H
