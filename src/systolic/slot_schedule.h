/**
 * @file
 * Per-lockstep-slot schedule exported by the systolic timing model.
 *
 * The event-driven scan datapath does not consume a scalar
 * cycles-per-feature quotient: it replays the model layer by layer,
 * each layer a compute burst on the accelerator's array plus the DRAM
 * traffic (weights/ifmaps) that SCALE-Sim-style dataflow accounting
 * attributes to it. A SlotSchedule is that lowering — one SlotBurst
 * per layer, already amortized over the lockstep slot (the
 * weight-stationary group of features that share one weight
 * residency window).
 *
 * The analytic model (query_model.cc) keeps using the scalar
 * quotients; the live scheduler and AccelPipeline consume this
 * schedule, and the parity tests pin the two against each other.
 */

#ifndef DEEPSTORE_SYSTOLIC_SLOT_SCHEDULE_H
#define DEEPSTORE_SYSTOLIC_SLOT_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "systolic/layer_run.h"

namespace deepstore::systolic {

/** One layer's share of a lockstep slot: an array-busy burst and the
 *  off-chip traffic that feeds it. */
struct SlotBurst
{
    Cycles computeCycles = 0;        ///< array occupancy, per feature
    std::uint64_t dramReadBytes = 0; ///< DRAM reads, per feature
};

/** The full per-slot schedule of one model on one placement. */
struct SlotSchedule
{
    /** Features sharing one weight residency window (wsGroupSize for
     *  weight-stationary placements, 1 otherwise). */
    std::int64_t featuresPerSlot = 1;

    /** One burst per layer, in execution order. */
    std::vector<SlotBurst> bursts;

    /** Scalar fold-backs (cross-checks against the analytic model). */
    Cycles computeCyclesPerFeature() const;
    std::uint64_t dramBytesPerFeature() const;
};

/**
 * Lower a ModelRun into a SlotSchedule. The ModelRun's per-layer
 * records are already amortized per feature (runModelWithSource
 * divides by the WS group size), so this is a straight projection of
 * (totalCycles, dramReadBytes) per layer.
 */
SlotSchedule slotSchedule(const ModelRun &run,
                          std::int64_t features_per_slot);

} // namespace deepstore::systolic

#endif // DEEPSTORE_SYSTOLIC_SLOT_SCHEDULE_H
