#include "systolic/dse.h"

#include "common/logging.h"

namespace deepstore::systolic {

std::vector<std::pair<std::int64_t, std::int64_t>>
aspectRatios(std::int64_t pe_count)
{
    if (pe_count <= 0 || (pe_count & (pe_count - 1)) != 0)
        fatal("PE count %lld must be a positive power of two",
              static_cast<long long>(pe_count));
    std::vector<std::pair<std::int64_t, std::int64_t>> out;
    for (std::int64_t r = 1; r <= pe_count; r *= 2)
        out.emplace_back(r, pe_count / r);
    return out;
}

DsePoint
bestShapeFor(const nn::Layer &layer, std::int64_t pe_count,
             Dataflow dataflow)
{
    DsePoint best;
    best.peCount = pe_count;
    for (auto [r, c] : aspectRatios(pe_count)) {
        ArrayConfig cfg;
        cfg.name = "dse";
        cfg.rows = r;
        cfg.cols = c;
        cfg.dataflow = dataflow;
        // Infinite memory bandwidth: make DRAM supply a non-factor.
        cfg.dramBandwidth = 1e18;
        cfg.scratchpadBytes = 1 * GiB;
        SystolicSim sim(cfg);
        Cycles cycles = sim.idealComputeCycles(layer);
        if (best.cycles == 0 || cycles < best.cycles) {
            best.rows = r;
            best.cols = c;
            best.cycles = cycles;
        }
    }
    return best;
}

std::vector<DsePoint>
sweepPeCounts(const nn::Layer &layer, const std::vector<std::int64_t> &pes,
              Dataflow dataflow)
{
    std::vector<DsePoint> out;
    out.reserve(pes.size());
    for (auto pe : pes)
        out.push_back(bestShapeFor(layer, pe, dataflow));
    if (!out.empty()) {
        double base = static_cast<double>(out.front().cycles);
        for (auto &p : out)
            p.speedup = base / static_cast<double>(p.cycles);
    }
    return out;
}

} // namespace deepstore::systolic
