/**
 * @file
 * SCALE-Sim-style per-layer report: for one model on one array
 * configuration, the cycles, utilization, and memory traffic of every
 * layer (the real SCALE-Sim emits this as per-layer CSV; we print an
 * aligned table and expose the rows programmatically).
 */

#ifndef DEEPSTORE_SYSTOLIC_REPORT_H
#define DEEPSTORE_SYSTOLIC_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "systolic/systolic_sim.h"

namespace deepstore::systolic {

/** One row of the per-layer report. */
struct LayerReportRow
{
    std::string name;
    std::string kind;
    LayerRun run;
};

/** Per-layer rows for one inference (weights on-chip). */
std::vector<LayerReportRow> layerReport(const SystolicSim &sim,
                                        const nn::Model &model,
                                        WeightSource source,
                                        std::int64_t ws_group = 1);

/** Print the rows as an aligned table with a totals line. */
void printLayerReport(std::ostream &os,
                      const std::vector<LayerReportRow> &rows,
                      const ArrayConfig &config);

} // namespace deepstore::systolic

#endif // DEEPSTORE_SYSTOLIC_REPORT_H
