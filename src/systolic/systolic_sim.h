/**
 * @file
 * Analytical systolic-array timing model (our SCALE-Sim equivalent).
 *
 * Layers are lowered to GEMMs (conv via im2col) and mapped onto the
 * R x C PE array using SCALE-Sim's analytical fold model:
 *
 *   - output-stationary: the M x N output is tiled into R x C folds;
 *     each fold streams the K-deep reduction through the array and
 *     costs (2*Sr + Sc + K - 2) cycles for Sr used rows / Sc used
 *     columns;
 *   - weight-stationary: the K x N weight matrix is tiled into R x C
 *     folds; each fold preloads weights (Sr cycles) and then streams
 *     the M input rows, costing (Sr + M + Sc - 1) cycles. Weights stay
 *     pinned across a group of feature vectors, which is what lets the
 *     chip-level accelerator amortize weight loads (paper §4.5);
 *   - input-stationary: symmetric to WS with inputs pinned.
 *
 * Element-wise layers use the paper's modification (§4.3): an extra
 * input line per row of the first column turns the array into an
 * R-lane vector unit, so an n-element op takes ceil(n / R) cycles plus
 * a pipeline drain.
 *
 * Memory traffic is tallied per fold (the SCALE-Sim counting scheme)
 * and converted into stall cycles against the configured DRAM
 * bandwidth; flash-supply stalls are handled one level up by the
 * accelerator model, which owns the FLASH_DFV queue.
 */

#ifndef DEEPSTORE_SYSTOLIC_SYSTOLIC_SIM_H
#define DEEPSTORE_SYSTOLIC_SYSTOLIC_SIM_H

#include "nn/model.h"
#include "systolic/array_config.h"
#include "systolic/layer_run.h"

namespace deepstore::systolic {

/** Analytical timing model for one systolic-array accelerator. */
class SystolicSim
{
  public:
    explicit SystolicSim(ArrayConfig config);

    const ArrayConfig &config() const { return config_; }

    /**
     * Simulate one layer processing `batch` independent inputs
     * back-to-back (batch > 1 is only used by weight-stationary
     * mappings that pin weights across feature vectors).
     *
     * @param weight_source where weights are fetched from
     * @return cycles and traffic for the whole batch
     */
    LayerRun runLayer(const nn::Layer &layer, WeightSource weight_source,
                      std::int64_t batch = 1) const;

    /**
     * Simulate a full SCN inference for one (QFV, DFV) pair.
     *
     * @param weights_fit_on_chip when false, weights stream from DRAM
     *        (or the shared L2 when the config has one) on every
     *        inference; when true they are scratchpad-resident and
     *        their DRAM cost is amortized away.
     * @param ws_group_size for weight-stationary arrays, how many
     *        feature vectors share one weight pinning (>= 1).
     */
    ModelRun runModel(const nn::Model &model, bool weights_fit_on_chip,
                      std::int64_t ws_group_size = 1) const;

    /**
     * As runModel, but with every layer's weights served from the
     * given source regardless of capacity checks. Callers that model
     * weight residency themselves (the DeepStore query model splits
     * resident and streamed weight portions) use this to avoid
     * double-counting DRAM traffic.
     */
    ModelRun runModelWithSource(const nn::Model &model,
                                WeightSource source,
                                std::int64_t ws_group_size = 1) const;

    /**
     * Pure compute-cycle count for one layer, assuming infinite memory
     * bandwidth — the quantity swept in the paper's Fig. 6 DSE.
     */
    Cycles idealComputeCycles(const nn::Layer &layer) const;

    /** True when the model's largest layer fits the weight scratchpad. */
    bool weightsFit(const nn::Model &model) const;

  private:
    struct Gemm
    {
        std::int64_t m; ///< independent output rows
        std::int64_t n; ///< output columns
        std::int64_t k; ///< reduction depth
    };

    static Gemm lowerToGemm(const nn::Layer &layer);

    LayerRun runGemm(const Gemm &g, const nn::Layer &layer,
                     WeightSource weight_source,
                     std::int64_t batch) const;

    LayerRun runElementWise(const nn::Layer &layer,
                            std::int64_t batch) const;

    void applyBandwidth(LayerRun &run) const;

    ArrayConfig config_;
};

} // namespace deepstore::systolic

#endif // DEEPSTORE_SYSTOLIC_SYSTOLIC_SIM_H
