/**
 * @file
 * Result records produced by the systolic timing model: cycle counts,
 * utilization, and memory-traffic tallies consumed by the energy model
 * and by the accelerator-level pipeline simulation.
 */

#ifndef DEEPSTORE_SYSTOLIC_LAYER_RUN_H
#define DEEPSTORE_SYSTOLIC_LAYER_RUN_H

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace deepstore::systolic {

/** Timing and traffic for one layer of one inference. */
struct LayerRun
{
    Cycles computeCycles = 0;     ///< busy cycles of the array
    Cycles memoryStallCycles = 0; ///< extra cycles waiting on DRAM
    Cycles totalCycles = 0;       ///< max(compute, memory supply)

    double utilization = 0.0; ///< MACs / (totalCycles * PEs)

    std::uint64_t macs = 0;

    // On-chip traffic (words, not bytes).
    std::uint64_t spadReads = 0;
    std::uint64_t spadWrites = 0;
    std::uint64_t l2Reads = 0; ///< shared second-level scratchpad

    // Off-chip traffic (bytes).
    std::uint64_t dramReadBytes = 0;
    std::uint64_t dramWriteBytes = 0;

    /** Accumulate another record into this one. */
    void add(const LayerRun &o);
};

/** Timing and traffic for a full SCN inference on one feature pair. */
struct ModelRun
{
    LayerRun total;                ///< sums across layers
    std::vector<LayerRun> layers;  ///< per-layer breakdown

    Cycles totalCycles() const { return total.totalCycles; }
};

} // namespace deepstore::systolic

#endif // DEEPSTORE_SYSTOLIC_LAYER_RUN_H
