/**
 * @file
 * Design-space exploration over systolic-array shapes (paper §4.5,
 * Fig. 6): sweep PE counts and aspect ratios under an
 * infinite-memory-bandwidth assumption and report the best-performing
 * shape per PE budget.
 */

#ifndef DEEPSTORE_SYSTOLIC_DSE_H
#define DEEPSTORE_SYSTOLIC_DSE_H

#include <cstdint>
#include <vector>

#include "nn/layer.h"
#include "systolic/array_config.h"
#include "systolic/systolic_sim.h"

namespace deepstore::systolic {

/** Best shape found for one PE budget. */
struct DsePoint
{
    std::int64_t peCount = 0;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    Cycles cycles = 0;
    double speedup = 0.0; ///< vs the smallest PE budget in the sweep
};

/**
 * Enumerate power-of-two (rows, cols) splits of `pe_count`.
 * @pre pe_count is a positive power of two.
 */
std::vector<std::pair<std::int64_t, std::int64_t>>
aspectRatios(std::int64_t pe_count);

/**
 * Find the fastest aspect ratio for a layer at a fixed PE budget,
 * assuming infinite memory bandwidth (paper Fig. 6 methodology).
 */
DsePoint bestShapeFor(const nn::Layer &layer, std::int64_t pe_count,
                      Dataflow dataflow);

/**
 * Sweep PE budgets (each a power of two) and report the best shape and
 * the speedup relative to the first budget in the list.
 */
std::vector<DsePoint> sweepPeCounts(const nn::Layer &layer,
                                    const std::vector<std::int64_t> &pes,
                                    Dataflow dataflow);

} // namespace deepstore::systolic

#endif // DEEPSTORE_SYSTOLIC_DSE_H
