#include "core/array_superblock.h"

#include <cstring>

namespace deepstore::core {

namespace {

constexpr std::uint64_t kSuperblockMagic = 0x4B4C425253445344ULL;
constexpr std::size_t kHeaderBytes = 40;

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const auto *b = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), b, b + sizeof(v));
}

std::uint64_t
readU64(const std::vector<std::uint8_t> &in, std::size_t pos)
{
    std::uint64_t v;
    std::memcpy(&v, in.data() + pos, sizeof(v));
    return v;
}

/** FNV-1a over a word, chained. */
std::uint64_t
fnvWord(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xFF;
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::uint64_t
fnvBytes(std::uint64_t h, const std::vector<std::uint8_t> &bytes)
{
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::uint64_t
imageChecksum(const SuperblockImage &image)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    h = fnvWord(h, image.epoch);
    h = fnvWord(h, image.metadataBlob.size());
    h = fnvWord(h, image.shardMapBlob.size());
    h = fnvBytes(h, image.metadataBlob);
    h = fnvBytes(h, image.shardMapBlob);
    return h;
}

} // namespace

std::vector<std::uint8_t>
encodeSuperblock(const SuperblockImage &image)
{
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + image.metadataBlob.size() +
                image.shardMapBlob.size());
    putU64(out, kSuperblockMagic);
    putU64(out, image.epoch);
    putU64(out, image.metadataBlob.size());
    putU64(out, image.shardMapBlob.size());
    putU64(out, imageChecksum(image));
    out.insert(out.end(), image.metadataBlob.begin(),
               image.metadataBlob.end());
    out.insert(out.end(), image.shardMapBlob.begin(),
               image.shardMapBlob.end());
    return out;
}

std::optional<SuperblockImage>
decodeSuperblock(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < kHeaderBytes)
        return std::nullopt;
    if (readU64(bytes, 0) != kSuperblockMagic)
        return std::nullopt;
    SuperblockImage image;
    image.epoch = readU64(bytes, 8);
    std::uint64_t meta_len = readU64(bytes, 16);
    std::uint64_t shard_len = readU64(bytes, 24);
    std::uint64_t checksum = readU64(bytes, 32);
    if (bytes.size() < kHeaderBytes + meta_len + shard_len)
        return std::nullopt;
    auto meta_begin = bytes.begin() + kHeaderBytes;
    image.metadataBlob.assign(meta_begin, meta_begin + meta_len);
    image.shardMapBlob.assign(meta_begin + meta_len,
                              meta_begin + meta_len + shard_len);
    if (imageChecksum(image) != checksum)
        return std::nullopt;
    return image;
}

std::optional<std::uint64_t>
superblockImageBytes(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < kHeaderBytes)
        return std::nullopt;
    if (readU64(bytes, 0) != kSuperblockMagic)
        return std::nullopt;
    const std::uint64_t meta_len = readU64(bytes, 16);
    const std::uint64_t shard_len = readU64(bytes, 24);
    // A torn first page can carry garbage lengths; anything that
    // would overflow is certainly not a real image.
    constexpr std::uint64_t kSane = 1ULL << 56;
    if (meta_len >= kSane || shard_len >= kSane)
        return std::nullopt;
    return kHeaderBytes + meta_len + shard_len;
}

} // namespace deepstore::core
