/**
 * @file
 * The array coordinator: one query plane over N SsdNodes.
 *
 * DeepStore's paper evaluates a single SSD; the coordinator scales
 * the same map-reduce idea one level up (ROADMAP scale-out item).
 * It owns the member nodes, stripes every feature database across
 * them at ingest (contiguous feature chunks, one shard per node,
 * with an optional replication factor R), and runs the scatter/merge
 * half of each query:
 *
 *     host/NoC fabric (BandwidthLink)
 *   ┌────────────┬────────────┬────────────┐
 *   │  node 0    │  node 1    │  node N-1  │
 *   │  shard 0   │  shard 1   │  shard N-1 │   scatter: sub-query
 *   │  (+replica)│  (+replica)│  (+replica)│   per shard, qfv bytes
 *   └────────────┴────────────┴────────────┘   over the fabric
 *          └─ per-node top-K ─┘                merge: k results per
 *                merge at the home node        remote node
 *
 * Every sub-query is a normal QuerySubmission on the owning node's
 * QueryScheduler; the coordinator's own work — remote dispatch and
 * candidate-set return — is billed on the shared host-fabric
 * BandwidthLink with the same deterministic FCFS accounting as every
 * other link in the simulator.
 *
 * Whole-drive failure generalizes the PR 3/PR 5 shard-recovery
 * machine: a killed node fails its in-flight sub-queries (honest
 * partial coverage), and the coordinator re-stripes each remainder
 * onto the shard's first alive replica with a fresh sub-query id.
 * Shards with no surviving replica are lost and the query completes
 * Degraded with a deterministic coverageFraction.
 *
 * Single-node arrays take a zero-overhead path by construction: one
 * shard, one sub-query whose id equals the engine's query id,
 * submitted synchronously with no fabric events — tick-identical to
 * the pre-array engine (pinned by tests/core/test_array.cc).
 */

#ifndef DEEPSTORE_CORE_ARRAY_COORDINATOR_H
#define DEEPSTORE_CORE_ARRAY_COORDINATOR_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

#include "core/ssd_node.h"
#include "sim/bandwidth.h"

namespace deepstore::core {

/** Scheduled whole-drive failure (deterministic, like every fault). */
struct ArrayNodeDeath
{
    std::uint32_t node = 0;
    Tick atTick = 0;
};

/**
 * Background scrub: a deterministic, rate-limited scanner that walks
 * every bound shard placement page by page with verifying flash reads
 * (real FlashCommands on the per-channel buses, contending with
 * foreground scans), surfacing latent uncorrectable pages before a
 * query hits them. Disabled by default: a default config schedules
 * zero events and leaves every run tick-identical.
 */
struct ScrubConfig
{
    bool enabled = false;
    /** Rate cap: verifying reads issued per simulated second. */
    double pagesPerSecond = 2000.0;
    /** Pages read per scrub wakeup (bounds burstiness). */
    std::uint32_t batchPages = 8;
    /** Delay before the first batch. */
    double startDelaySeconds = 1e-3;
    /** Full passes over the bound placements (0 = scrub forever).
     *  Bounded by default so simulations terminate. */
    std::uint32_t passes = 1;
};

/**
 * Repair engine: re-replicates under-replicated shards onto alive
 * nodes when a drive dies, and rewrites scrub-found bad pages from a
 * surviving replica. Repair traffic crosses the shared host fabric
 * behind a configurable bandwidth cap, so it contends honestly with
 * query scatter/merge legs. Disabled by default.
 */
struct RepairConfig
{
    bool enabled = false;
    /** Pacing cap on repair traffic entering the fabric, bytes/s. */
    double bandwidthBytesPerSecond = 1.6e9;
    /** Pages copied per repair wakeup. */
    std::uint32_t batchPages = 8;
};

/** Typed result of a kill request (no UB on bad indices). */
enum class KillNodeResult
{
    Killed,      ///< the node was alive and is now dead
    AlreadyDead, ///< idempotent no-op
    InvalidNode, ///< index out of range; nothing happened
};

const char *toString(KillNodeResult r);

/** Array topology configuration. */
struct ArrayConfig
{
    /** Per-node flash geometries (heterogeneous allowed; each node's
     *  FlashParams carries its own fault schedule). Empty = a
     *  single node using the engine's top-level flash config — the
     *  pre-array behavior. */
    std::vector<ssd::FlashParams> nodes;

    /** Copies of every shard (1 = no replication). Effective factor
     *  is capped at the node count; replicas land on distinct
     *  nodes. */
    std::uint32_t replication = 1;

    /** Host/NoC fabric bandwidth between the coordinator and the
     *  nodes (scatter descriptors + merged candidate sets). */
    double hostFabricBandwidth = 12.8e9;

    /** Scheduled whole-drive failures. */
    std::vector<ArrayNodeDeath> nodeDeaths;

    /** Re-dispatch budget per shard across node deaths. */
    std::uint32_t maxNodeRetries = 2;

    /** Background media scrub (off by default). */
    ScrubConfig scrub;

    /** Self-healing re-replication (off by default). */
    RepairConfig repair;
};

/** One page run an ingest must write (per shard placement). */
struct IngestPart
{
    std::uint32_t shard = 0;
    std::uint32_t node = 0;
    std::uint64_t lpnStart = 0;
    std::uint64_t pages = 0;
    bool primary = true;
};

/** One page run a readDB must fetch. */
struct ReadSegment
{
    std::uint32_t node = 0;
    std::uint64_t lpnStart = 0;
    std::uint64_t pages = 0;
};

/** One per-node sub-query the scatter stage creates. */
struct SubTarget
{
    std::uint32_t shard = 0;
    std::uint32_t node = 0;
    /** Node-local view of the shard (startLpn/startPpn local to the
     *  placement; numFeatures = shard features). */
    DbMetadata localMd;
    /** Sub-range within the shard, in shard-local feature coords. */
    std::uint64_t localStart = 0;
    std::uint64_t localEnd = 0;
    /** True for the first sub-query (runs the QC probe, pays no
     *  fabric scatter). */
    bool home = false;
};

/** Aggregated execution metrics of one array query, handed to the
 *  engine's finalize. */
struct ArrayQueryStats
{
    QueryOutcome outcome = QueryOutcome::Success;
    double coverageFraction = 1.0;
    Tick submitTick = 0;
    Tick completeTick = 0;
    /** Summed over sub-queries. */
    QueryRunStats run;
    /** Channel-bus wait accrued on participating nodes while the
     *  query was in flight. */
    Tick nocWaitTicks = 0;
    /** Host-fabric wait + transfer of the merge legs. */
    Tick mergeTicks = 0;
    /** Bytes this query moved over the host fabric (scatter +
     *  merge + re-dispatch). */
    std::uint64_t interNodeBytes = 0;
    std::uint32_t nodesParticipating = 1;
    std::uint32_t redispatches = 0;
};

/** The scatter/merge query plane over N nodes (see file comment). */
class ArrayCoordinator
{
  public:
    /** Builds a QuerySubmission for one sub-target (no finalize —
     *  the coordinator owns completion). */
    using SubBuilder = std::function<QuerySubmission(
        const SubTarget &, std::uint64_t sub_id)>;
    using DoneFn = std::function<void(const ArrayQueryStats &)>;

    /** `base` supplies the shared recovery knobs; `base.flash` is
     *  the node geometry when `array.nodes` is empty. */
    ArrayCoordinator(sim::EventQueue &events, ArrayConfig array,
                     SsdNodeConfig base);

    ArrayCoordinator(const ArrayCoordinator &) = delete;
    ArrayCoordinator &operator=(const ArrayCoordinator &) = delete;

    // ---- topology ------------------------------------------------

    std::uint32_t nodeCount() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }

    std::uint32_t aliveCount() const;
    std::uint32_t replication() const { return config_.replication; }

    SsdNode &node(std::uint32_t i) { return *nodes_.at(i); }
    const SsdNode &node(std::uint32_t i) const
    {
        return *nodes_.at(i);
    }

    sim::BandwidthLink &fabric() { return fabric_; }

    // ---- ingest (striping + replication) -------------------------

    /** Allocate page runs for a new database: one contiguous feature
     *  chunk per alive node, each chunk placed on its primary plus
     *  R-1 replica nodes. */
    std::vector<IngestPart> stripeDb(std::uint64_t feature_bytes,
                                     std::uint64_t count);

    /** Register the shard map once the parts have been written
     *  (capturing each placement's write-time start PPN, like the
     *  single-SSD engine did). */
    void bindDb(std::uint64_t db_id, std::uint64_t feature_bytes,
                std::uint64_t count,
                const std::vector<IngestPart> &parts);

    /** Grow the database's last shard by `extra` features; returns
     *  the whole new pages to program (may be empty). fatal() when
     *  a placement is not at the top of its node's LPN space (same
     *  buffered-append contract as the single-SSD engine). */
    std::vector<IngestPart> growDb(std::uint64_t db_id,
                                   std::uint64_t extra);

    /** Page runs covering features [start, start+num), read from
     *  each shard's first alive placement. */
    std::vector<ReadSegment> readSegments(std::uint64_t db_id,
                                          std::uint64_t start,
                                          std::uint64_t num) const;

    std::uint32_t shardCount(std::uint64_t db_id) const;

    /** Node that runs the query's probe/merge work: first alive
     *  placement of the shard holding `db_start` (first alive node
     *  when that shard has no survivors). */
    std::uint32_t homeNodeFor(std::uint64_t db_id,
                              std::uint64_t db_start) const;

    /** The sub-target scatter() would make home for this range: the
     *  first overlapping shard with an alive placement (nullopt when
     *  every overlapping shard is lost). The cache-hit path uses it
     *  to build its one submission without scattering. */
    std::optional<SubTarget> homeTarget(std::uint64_t db_id,
                                        std::uint64_t db_start,
                                        std::uint64_t db_end) const;

    // ---- query plane ---------------------------------------------

    /**
     * Scatter a query over [db_start, db_end): one sub-query per
     * participating shard, built by `builder`. The home sub-query
     * submits synchronously; remote sub-queries pay `scatter_bytes`
     * on the fabric first, and their results pay `merge_bytes` back.
     * `done` runs exactly once, at the aggregate completion tick.
     */
    void scatter(std::uint64_t query_id, std::uint64_t db_id,
                 std::uint64_t db_start, std::uint64_t db_end,
                 std::uint64_t scatter_bytes,
                 std::uint64_t merge_bytes, const SubBuilder &builder,
                 DoneFn done);

    /** Single-node fast path (cache hits): submit `sub` on `node_i`
     *  with sub-id == query id and aggregate it alone. */
    void submitSingle(std::uint64_t query_id, std::uint32_t node_i,
                      QuerySubmission sub, DoneFn done);

    /** Cancel an in-flight array query (false for unknown or
     *  already-terminal ids). */
    bool cancel(std::uint64_t query_id);

    /** Aggregate state: the home sub-query's state while scanning,
     *  Reduce while merges are in flight, terminal after. */
    std::optional<QueryState> state(std::uint64_t query_id) const;

    std::size_t inFlight() const { return inFlight_; }

    // ---- durable shard map ---------------------------------------

    /**
     * Serialize the shard map (every db's shards, placements, and
     * each node's allocator high-water mark) for the replicated
     * superblock image. Round-trips exactly through
     * restoreShardMap().
     */
    std::vector<std::uint8_t> serializeShardMap() const;

    /**
     * Replace the shard map with a serialized image (power-loss
     * recovery). Node allocator marks restore monotonically
     * (max(current, stored)) so an older epoch never un-allocates
     * pages the device already handed out. fatal() on a malformed
     * blob — callers validate the superblock checksum first.
     */
    void restoreShardMap(const std::vector<std::uint8_t> &blob);

    // ---- scrub / repair ------------------------------------------

    std::uint64_t scrubPagesScanned() const
    {
        return scrubPagesScanned_;
    }
    std::uint64_t scrubUncorrectableFound() const
    {
        return scrubUncorrectableFound_;
    }
    std::uint64_t scrubLatentRepaired() const
    {
        return scrubLatentRepaired_;
    }
    std::uint64_t scrubPassesCompleted() const
    {
        return scrubPassesCompleted_;
    }
    std::uint64_t repairShardsRepaired() const
    {
        return repairShardsRepaired_;
    }
    std::uint64_t repairPagesCopied() const
    {
        return repairPagesCopied_;
    }
    std::uint64_t repairBytesOverFabric() const
    {
        return repairBytesOverFabric_;
    }
    /** True when no repair task is queued or copying. */
    bool repairIdle() const
    {
        return !repairActive_ && repairQueue_.empty();
    }
    /** Tick the array last returned to full replication (0 when
     *  repair never ran to completion). */
    Tick lastRepairCompleteTick() const
    {
        return lastRepairCompleteTick_;
    }
    /** Per-node ArrayInfo rows. */
    std::uint64_t scrubPagesScannedOn(std::uint32_t node_i) const
    {
        return scrubScannedPerNode_.at(node_i);
    }
    std::uint64_t repairPagesCopiedTo(std::uint32_t node_i) const
    {
        return repairPagesPerNode_.at(node_i);
    }

    /** Torn/corrupt superblock replicas seen during recovery. */
    std::uint64_t tornSuperblocks() const { return tornSuperblocks_; }
    void noteTornSuperblock();

    /** Scan for under-replicated shards and queue repair copies (a
     *  no-op unless the repair engine is enabled). Runs
     *  automatically on node death; recovery calls it again after a
     *  power loss interrupted active repairs. */
    void scheduleRepairScan();

    // ---- lifecycle -----------------------------------------------

    /** Whole-drive failure at the current tick. Idempotent
     *  (AlreadyDead) and range-checked (InvalidNode). */
    KillNodeResult killNode(std::uint32_t node_i);

    /** Whole-array power loss: fail every in-flight sub-query and
     *  pending merge at the current tick (aggregates finalize with
     *  outcome PowerLoss), then drop every node's volatile device
     *  state and reset the fabric. */
    void powerLoss();

    /** Array counters + fabric stats + per-node stat groups (node 0
     *  unprefixed for continuity with the single-SSD dump; node i>0
     *  prefixed `node<i>.`). */
    void dumpStats(std::ostream &os);

  private:
    /** One placement (copy) of a shard. */
    struct ShardPlacement
    {
        std::uint32_t node = 0;
        std::uint64_t lpnStart = 0;
        std::uint64_t startPpn = 0; ///< captured at write time
    };

    /** One contiguous feature chunk of a database. */
    struct DbShard
    {
        std::uint64_t startFeature = 0;
        std::uint64_t numFeatures = 0;
        std::vector<ShardPlacement> placements; ///< [0] = primary
    };

    struct DbInfo
    {
        std::uint64_t featureBytes = 0;
        std::vector<DbShard> shards;
    };

    /** Coordinator-side state of one sub-query. */
    struct SubState
    {
        std::uint32_t shard = 0;
        std::uint32_t node = 0;
        std::uint64_t subId = 0;
        std::uint64_t localStart = 0;
        std::uint64_t localEnd = 0;
        bool submitted = false;
        bool terminal = false;
        std::uint32_t retries = 0;
        std::vector<std::uint32_t> triedNodes;
    };

    /** One in-flight (or terminal) array query. */
    struct AggQuery
    {
        std::uint64_t queryId = 0;
        std::uint64_t dbId = 0;
        Tick submitTick = 0;
        Tick completeTick = 0;
        std::uint64_t totalFeatures = 0;
        std::uint64_t coveredFeatures = 0;
        std::uint64_t lostFeatures = 0;
        std::uint64_t scatterBytes = 0;
        std::uint64_t mergeBytes = 0;
        std::uint32_t homeNode = 0;
        SubBuilder builder;
        DoneFn done;
        std::vector<SubState> subs;
        std::size_t outstanding = 0;
        std::uint64_t nextSubSeq = 1;
        /** Bumped on power loss to invalidate pending fabric
         *  events. */
        std::uint64_t gen = 0;
        QueryRunStats run;
        Tick mergeTicks = 0;
        std::uint64_t interNodeBytes = 0;
        std::uint32_t redispatches = 0;
        /** Per participating node: nocWaitTicks at first use. */
        std::vector<std::pair<std::uint32_t, Tick>> nocBase;
        int worstRank = 0;
        bool finished = false;
        QueryOutcome terminalOutcome = QueryOutcome::Success;
    };

    /** One contiguous page run the scrub pass must verify. */
    struct ScrubRun
    {
        std::uint64_t dbId = 0;
        std::uint32_t shard = 0;
        std::uint32_t node = 0;
        std::uint64_t lpnStart = 0;
        std::uint64_t pages = 0;
    };

    /** One queued shard re-replication. */
    struct RepairTask
    {
        std::uint64_t dbId = 0;
        std::uint32_t shard = 0;
        std::uint32_t srcNode = 0;
        std::uint64_t srcLpnStart = 0;
        std::uint64_t srcPages = 0;
        std::uint32_t destNode = 0;
        std::uint64_t destLpnStart = 0;
        std::uint64_t destPages = 0;
        /** Next destination page to copy. */
        std::uint64_t next = 0;
    };

    // ---- scrub engine --------------------------------------------
    void startScrub();
    void scrubBatch();
    void buildScrubRuns();
    /** Scrub found an uncorrectable page: rewrite it from an alive
     *  replica when one exists. */
    void repairPage(const ScrubRun &run, std::uint64_t lpn);

    // ---- repair engine -------------------------------------------
    void repairScan();
    void repairBatch();
    void finishRepairTask();
    /** Pace `bytes` of repair traffic through the cap, then the
     *  shared fabric; returns the arrival tick. */
    Tick repairTransfer(Tick ready, std::uint64_t bytes);

    std::uint64_t composeSubId(std::uint64_t query_id,
                               std::uint64_t seq) const;
    void trackNode(AggQuery &agg, std::uint32_t node_i);
    void submitSub(AggQuery &agg, std::size_t idx,
                   QuerySubmission sub);
    void onSubTerminal(std::uint64_t query_id, std::size_t idx);
    /** Dead-node failover: true when a replacement sub-query was
     *  dispatched for subs[idx]'s remainder. */
    bool tryRedispatch(AggQuery &agg, std::size_t idx,
                       std::uint64_t covered);
    void subArrived(AggQuery &agg);
    void finalizeAgg(AggQuery &agg);

    const DbInfo &dbInfo(std::uint64_t db_id) const;
    /** First alive placement index of `shard`, excluding `tried`;
     *  -1 when none survives. */
    int alivePlacement(const DbShard &shard,
                       const std::vector<std::uint32_t> &tried) const;
    DbMetadata localMetadata(std::uint64_t db_id, const DbInfo &info,
                             const DbShard &shard,
                             const ShardPlacement &pl) const;

    sim::EventQueue &events_;
    ArrayConfig config_;
    std::vector<std::unique_ptr<SsdNode>> nodes_;
    sim::BandwidthLink fabric_;
    StatGroup arrayStats_;
    std::map<std::uint64_t, DbInfo> dbs_;
    std::map<std::uint64_t, AggQuery> aggs_;
    std::size_t inFlight_ = 0;
    bool inPowerLoss_ = false;

    // ---- scrub state ---------------------------------------------
    std::vector<ScrubRun> scrubRuns_;
    std::size_t scrubRunIdx_ = 0;
    std::uint64_t scrubPageIdx_ = 0;
    /** Bumped on power loss: stale scrub wakeups become no-ops and
     *  the restarted pass reschedules under the new generation. */
    std::uint64_t scrubGen_ = 0;
    std::uint64_t scrubPagesScanned_ = 0;
    std::uint64_t scrubUncorrectableFound_ = 0;
    std::uint64_t scrubLatentRepaired_ = 0;
    std::uint64_t scrubPassesCompleted_ = 0;
    std::vector<std::uint64_t> scrubScannedPerNode_;

    // ---- repair state --------------------------------------------
    std::vector<RepairTask> repairQueue_;
    /** (dbId, shard) pairs with a queued or active copy. */
    std::vector<std::pair<std::uint64_t, std::uint32_t>>
        repairPending_;
    bool repairActive_ = false;
    std::uint64_t repairGen_ = 0;
    Tick repairCapFreeAt_ = 0;
    std::uint64_t repairShardsRepaired_ = 0;
    std::uint64_t repairPagesCopied_ = 0;
    std::uint64_t repairBytesOverFabric_ = 0;
    Tick lastRepairCompleteTick_ = 0;
    std::vector<std::uint64_t> repairPagesPerNode_;

    std::uint64_t tornSuperblocks_ = 0;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_ARRAY_COORDINATOR_H
