#include "core/query_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/clock.h"
#include "ssd/throughput.h"
#include "systolic/systolic_sim.h"

namespace deepstore::core {

DeepStoreModel::DeepStoreModel(ssd::FlashParams flash,
                               energy::EnergyParams eparams)
    : flash_(flash), eparams_(eparams)
{
    flash_.validate();
}

LevelPerf
DeepStoreModel::evaluate(Level level,
                         const workloads::AppInfo &app) const
{
    return evaluateModel(level, app.scn, app.featureBytes());
}

LevelPerf
DeepStoreModel::evaluateModel(Level level, const nn::Model &model,
                              std::uint64_t feature_bytes) const
{
    return evaluatePlacement(makePlacement(level, flash_), model,
                             feature_bytes);
}

LevelPerf
DeepStoreModel::evaluatePlacement(Placement placement,
                                  const nn::Model &model,
                                  std::uint64_t feature_bytes) const
{
    Level level = placement.level;
    LevelPerf perf;
    perf.placement = std::move(placement);
    const Placement &pl = perf.placement;

    // The chip-level accelerator cannot buffer im2col working sets
    // for convolutional models within its 512 KB scratchpad (§6.2:
    // it "can not execute ReId due to limited compute and on-chip
    // memory resources").
    if (level == Level::ChipLevel &&
        model.countLayers(nn::LayerKind::Conv2D) > 0) {
        perf.supported = false;
        return perf;
    }

    const std::uint64_t weight_bytes = model.totalWeightBytes();
    const bool weights_resident =
        weight_bytes <= pl.residentWeightBytes;
    const std::uint64_t excess_bytes =
        weights_resident ? 0 : weight_bytes - pl.residentWeightBytes;

    // Chip-level lockstep scheduling: when the weights stay pinned in
    // the chip scratchpad the controller double-buffers features
    // (group of 2); when weight tiles must stream through, every
    // feature walks the full fold sequence individually (§4.5).
    if (level == Level::ChipLevel && !weights_resident)
        perf.placement.wsGroupSize = 1;

    // ---- compute leg --------------------------------------------
    // Traffic/cycles of one inference. Weight streaming is accounted
    // separately below (the resident portion reads from scratchpad or
    // the shared L2), so the systolic model runs with on-chip
    // weights; the L2-vs-private split only affects energy, which the
    // channel configuration's sharedL2Bytes routes correctly.
    systolic::SystolicSim sim(pl.array);
    // Channel-level accelerators read weights through the shared
    // SSD-level scratchpad (their L2); the other levels stream from
    // their private scratchpads. The non-resident remainder's DRAM
    // traffic and supply time are added explicitly below.
    systolic::WeightSource source =
        level == Level::ChannelLevel
            ? systolic::WeightSource::SharedL2
            : systolic::WeightSource::Scratchpad;
    perf.modelRun =
        sim.runModelWithSource(model, source, pl.wsGroupSize);
    perf.computeSeconds =
        static_cast<double>(perf.modelRun.totalCycles()) /
        pl.array.frequencyHz;
    // Event-native exports: the per-slot schedule the live datapath
    // replays, plus the weight-stream shape (how much re-streams per
    // lockstep slot and whether one DRAM stream is broadcast).
    perf.slots = systolic::slotSchedule(
        perf.modelRun, perf.placement.wsGroupSize);
    perf.excessWeightBytesPerSlot = excess_bytes;
    switch (level) {
      case Level::SsdLevel:
        perf.weightBroadcast = true; // single consumer
        break;
      case Level::ChannelLevel:
        perf.weightBroadcast = pl.array.sharedL2Bytes > 0;
        break;
      case Level::ChipLevel:
        perf.weightBroadcast =
            pl.array.dataflow ==
            systolic::Dataflow::WeightStationary;
        break;
    }

    // ---- flash + weight legs ------------------------------------
    ssd::FeatureLayout layout{feature_bytes, flash_.pageBytes};
    switch (level) {
      case Level::SsdLevel: {
        // One consumer fed by the full internal flash bandwidth.
        perf.flashSeconds =
            1.0 / ssd::ssdInternalFeatureRate(flash_, feature_bytes);
        // Non-resident weights stream from DRAM once per feature
        // (fully pipelined with compute, §4.5).
        perf.weightStreamSeconds =
            static_cast<double>(excess_bytes) / flash_.dramBandwidth;
        break;
      }
      case Level::ChannelLevel: {
        perf.flashSeconds =
            1.0 / ssd::channelFeatureRate(flash_, feature_bytes);
        if (pl.array.sharedL2Bytes > 0) {
            // Non-resident weights broadcast from DRAM into the
            // shared L2; one stream serves every channel accelerator
            // in the same feature wave (32x reuse, §4.5).
            perf.weightStreamSeconds =
                static_cast<double>(excess_bytes) /
                flash_.dramBandwidth;
        } else {
            // No shared scratchpad: each accelerator pulls its own
            // weight copy through its DRAM bandwidth share.
            perf.weightStreamSeconds =
                static_cast<double>(excess_bytes) /
                (flash_.dramBandwidth /
                 static_cast<double>(pl.numAccelerators));
        }
        break;
      }
      case Level::ChipLevel: {
        // Each chip streams its own features, but the channel bus is
        // shared by the channel's chips *and* the lockstep weight
        // broadcast (the chip accelerator cannot master the bus,
        // §4.5).
        // The chip-level accelerator sits at the flash chip (Fig. 3)
        // and consumes pages straight from the chip's page buffers.
        // Its minimal controller re-reads a page per lockstep slot
        // (wsGroupSize features) rather than caching pages across
        // slots — which is why the paper's Fig. 12 shows chip-level
        // energy dominated by flash accesses.
        //
        // A lockstep slot of wsGroupSize features spans
        // ceil(wsGroupSize / featuresPerPage) pages, and every page
        // a slot touches costs one array read: when a page holds the
        // whole group the slot shares a single page-buffer read
        // (1/group per feature), but when featuresPerPage <
        // wsGroupSize the group straddles pages and the physical
        // floor is one plane read per page — the same charge the
        // live event-driven path makes (the old 1/group closed form
        // undercounted exactly this case; the parity test now pins
        // the chip level to the same 2% band as SSD/channel).
        double group = static_cast<double>(pl.wsGroupSize);
        double plane_rate = static_cast<double>(flash_.planesPerChip) /
                            flash_.readLatency;
        double dfv_pages_per_feature =
            feature_bytes <= flash_.pageBytes
                ? std::ceil(group / static_cast<double>(
                                        layout.featuresPerPage())) /
                      group
                : static_cast<double>(layout.pagesPerFeature());
        perf.flashSeconds = dfv_pages_per_feature / plane_rate;
        // Non-resident weights broadcast from SSD DRAM, scheduled in
        // lockstep by the channel-side controller (§4.5): one stream
        // serves every chip accelerator working on the same weight
        // tile, so a group of numAccelerators x wsGroupSize features
        // shares one pass over the excess weights. The lockstep
        // broadcast is a weight-stationary property — with any other
        // dataflow each chip must pull its own weight stream through
        // its share of the DRAM bandwidth (the dataflow ablation
        // exercises this).
        if (pl.array.dataflow ==
            systolic::Dataflow::WeightStationary) {
            perf.weightStreamSeconds =
                static_cast<double>(excess_bytes) /
                flash_.dramBandwidth / group;
        } else {
            perf.weightStreamSeconds =
                static_cast<double>(excess_bytes) /
                (flash_.dramBandwidth /
                 static_cast<double>(pl.numAccelerators));
        }
        break;
      }
    }

    // FLASH_DFV queue refill exposure (§4.4): the bounded prefetch
    // queue refills in bursts; each burst of `depth` pages exposes
    // one flash array-read latency that overlap cannot hide. This is
    // what makes Fig. 9's slow-flash points cost a few percent.
    //
    // The live DfvStream staggers a burst's page issues at the
    // steady-state page interval of its datapath (resolveScanPlan),
    // so the burst's last page completes at
    //   readLatency + transferTime + (k-1)*interval
    // while consuming the burst at steady cadence takes k*interval:
    // the exposed stall is readLatency + transferTime - interval.
    // For the bus-limited SSD/channel paths transferTime equals the
    // interval and the whole array read is exposed (the old full
    // readLatency charge was exact for them); the chip path consumes
    // straight from the page buffers (no bus transfer), so the
    // stagger hides one plane interval. Charging the chip level the
    // full readLatency is what held its parity band at 30% — the
    // exposure term is half of the chip's per-feature time.
    double pages_per_feature_supply =
        feature_bytes <= flash_.pageBytes
            ? 1.0 / static_cast<double>(layout.featuresPerPage())
            : static_cast<double>(layout.pagesPerFeature());
    double page_interval;
    double transfer_seconds;
    if (level == Level::ChipLevel) {
        page_interval = flash_.readLatency /
                        static_cast<double>(flash_.planesPerChip);
        transfer_seconds = 0.0;
    } else {
        page_interval = 1.0 / ssd::channelPageRate(
                                  flash_, layout.transferBytesPerPage());
        transfer_seconds =
            static_cast<double>(layout.transferBytesPerPage()) /
            flash_.channelBandwidth;
    }
    double exposed_per_burst = std::max(
        0.0, flash_.readLatency + transfer_seconds - page_interval);
    // The exposure is a property of the *flash* leg: it charges only
    // when flash supply is the bottleneck. When compute or the
    // weight stream dominates, the live datapath's bounded feature
    // FIFO keeps the FLASH_DFV a full burst ahead of the array, so
    // refills hide behind the slower leg and the burst cadence never
    // surfaces — hence flash-plus-exposure competes inside the max
    // rather than being added after it.
    double flash_with_refill =
        perf.flashSeconds +
        exposed_per_burst * pages_per_feature_supply /
            static_cast<double>(pl.dfvQueueDepthPages);
    perf.perAccelSeconds =
        std::max({perf.computeSeconds, flash_with_refill,
                  perf.weightStreamSeconds});

    perf.aggregateSeconds =
        perf.perAccelSeconds /
        static_cast<double>(pl.numAccelerators);

    // ---- energy --------------------------------------------------
    energy::AcceleratorEnergyModel emodel(eparams_, pl.array,
                                          pl.sramModel);
    // Flash array reads per feature (fractional for packed layouts).
    double pages_per_feature =
        feature_bytes <= flash_.pageBytes
            ? 1.0 / static_cast<double>(layout.featuresPerPage())
            : static_cast<double>(layout.pagesPerFeature());
    if (level == Level::ChipLevel &&
        feature_bytes <= flash_.pageBytes) {
        // Per-slot page re-reads (no page caching, see above): a
        // slot of wsGroupSize features re-reads every page it spans.
        double group = static_cast<double>(pl.wsGroupSize);
        pages_per_feature =
            std::ceil(group / static_cast<double>(
                                  layout.featuresPerPage())) /
            group;
    }
    systolic::LayerRun traffic = perf.modelRun.total;
    // Per-feature share of the non-resident weight DRAM stream.
    double excess_share = 0.0;
    switch (level) {
      case Level::SsdLevel:
        excess_share = static_cast<double>(excess_bytes);
        break;
      case Level::ChannelLevel:
        excess_share =
            pl.array.sharedL2Bytes > 0
                ? static_cast<double>(excess_bytes) /
                      static_cast<double>(pl.numAccelerators)
                : static_cast<double>(excess_bytes);
        break;
      case Level::ChipLevel:
        // One DRAM broadcast serves every chip's lockstep group.
        excess_share = static_cast<double>(excess_bytes) /
                       static_cast<double>(pl.numAccelerators *
                                           pl.wsGroupSize);
        break;
    }
    traffic.dramReadBytes +=
        static_cast<std::uint64_t>(excess_share);
    perf.energyPerFeature = emodel.energyOf(
        traffic, 0);
    perf.energyPerFeature.flashJ =
        pages_per_feature * eparams_.flashPageReadEnergy;

    // Active power: every accelerator finishes one feature each
    // perAccelSeconds; add leakage for all instances.
    double features_per_second =
        1.0 / perf.aggregateSeconds;
    perf.activePowerW =
        perf.energyPerFeature.total() * features_per_second +
        emodel.staticPower() *
            static_cast<double>(pl.numAccelerators) +
        kSsdBasePowerW;
    return perf;
}

std::vector<Tick>
layerBurstTicks(const LevelPerf &perf)
{
    sim::Clock clock(perf.placement.array.frequencyHz);
    std::vector<Tick> out;
    out.reserve(perf.slots.bursts.size());
    for (const auto &b : perf.slots.bursts)
        out.push_back(clock.cyclesToTicks(b.computeCycles));
    return out;
}

double
DeepStoreModel::scanSeconds(Level level, const workloads::AppInfo &app,
                            std::uint64_t features) const
{
    LevelPerf perf = evaluate(level, app);
    if (!perf.supported)
        fatal("level %s cannot execute %s", toString(level),
              app.name.c_str());
    return perf.aggregateSeconds * static_cast<double>(features);
}

double
DeepStoreModel::scanEnergyPerFeature(
    Level level, const workloads::AppInfo &app) const
{
    LevelPerf perf = evaluate(level, app);
    if (!perf.supported)
        fatal("level %s cannot execute %s", toString(level),
              app.name.c_str());
    return perf.energyPerFeature.total();
}

double
arrayQuerySeconds(const std::vector<double> &node_scan_seconds,
                  std::uint64_t scatter_bytes,
                  std::uint64_t merge_bytes,
                  double fabric_bandwidth)
{
    DS_ASSERT(!node_scan_seconds.empty());
    DS_ASSERT(fabric_bandwidth > 0.0);
    const double sb =
        static_cast<double>(scatter_bytes) / fabric_bandwidth;
    const double mb =
        static_cast<double>(merge_bytes) / fabric_bandwidth;
    double total = node_scan_seconds.front(); // home: no fabric legs
    for (std::size_t i = 1; i < node_scan_seconds.size(); ++i) {
        const double start = static_cast<double>(i) * sb;
        total = std::max(total, start + node_scan_seconds[i]);
    }
    const double n_remote =
        static_cast<double>(node_scan_seconds.size() - 1);
    return total + n_remote * mb;
}

} // namespace deepstore::core
