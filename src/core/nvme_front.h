/**
 * @file
 * NVMe-style front end for the DeepStore API.
 *
 * The paper's programming APIs "internally use new NVMe commands to
 * interact with the query engine" (§4.7.2). This module models that
 * wire level: vendor-specific opcodes alongside the standard I/O set,
 * a bounded submission queue, completion entries with NVMe-like
 * status codes (host errors surface as failed completions, not
 * exceptions), and a PRP-style handle registry standing in for host
 * memory buffers.
 *
 * Query commands are **asynchronous at the wire level**: process()
 * validates and submits them to the engine, but their completion
 * entries post to the completion queue only when the in-storage
 * scheduler finishes the scan — out of order across queries, in
 * simulated-latency order. Hosts drive the device clock with pump()
 * (the doorbell/interrupt loop) and may poll partial progress with
 * GetResults, which returns the retryable InProgress status while
 * the scan is still running.
 */

#ifndef DEEPSTORE_CORE_NVME_FRONT_H
#define DEEPSTORE_CORE_NVME_FRONT_H

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "core/deepstore.h"

namespace deepstore::core {

/** Command opcodes: the standard NVMe I/O set plus DeepStore's
 *  vendor-specific extensions (Table 2). */
enum class NvmeOpcode : std::uint8_t
{
    Write = 0x01,
    Read = 0x02,
    Dsm = 0x09, ///< dataset management (trim)

    // Vendor-specific (0xC0+): the DeepStore command set.
    WriteDB = 0xC0,
    ReadDB = 0xC1,
    AppendDB = 0xC2,
    LoadModel = 0xC3,
    Query = 0xC4,
    GetResults = 0xC5,
    SetQC = 0xC6,
    AbortQuery = 0xC7,
    ArrayInfo = 0xC8,
};

/** NVMe-like status codes returned in completions. */
enum class NvmeStatus : std::uint16_t
{
    Success = 0x0,
    InvalidField = 0x2,
    InternalError = 0x6,
    CommandAborted = 0x7,
    /** Vendor-specific, retryable: the referenced query is still
     *  executing in-storage; poll again after pump(). */
    InProgress = 0x1C0,
    /** Vendor-specific: the query terminated Degraded — partial
     *  results are available (coverageFraction < 1). */
    DegradedSuccess = 0x1C1,
    /** Vendor-specific: the query's deadline fired before the scan
     *  finished; partial results are available. */
    DeadlineExceeded = 0x1C2,
    /** Vendor-specific: the query was aborted via AbortQuery (or
     *  engine-side cancel); partial results are available. */
    Aborted = 0x1C3,
};

/** A 64-byte-SQE-shaped command. */
struct NvmeCommand
{
    NvmeOpcode opcode = NvmeOpcode::Read;
    std::uint16_t cid = 0; ///< command identifier (host-chosen)
    std::uint64_t prp = 0; ///< host buffer handle (see buffers below)
    /** Command dwords; meaning depends on the opcode:
     *  WriteDB:   cdw0 = feature dim (floats)
     *  AppendDB:  cdw0 = db_id
     *  ReadDB:    cdw0 = db_id, cdw1 = start, cdw2 = count
     *  Query:     cdw0 = k, cdw1 = model_id, cdw2 = db_id,
     *             cdw3 = db_start, cdw4 = db_end,
     *             cdw5 low 32 bits = level+1 (0 = engine default),
     *             cdw5 high 32 bits = deadline in microseconds
     *             (0 = no deadline)
     *  GetResults:cdw0 = query_id
     *  AbortQuery:cdw0 = query_id
     *  SetQC:     cdw0 = qcn model_id, cdw1 = threshold * 1e4,
     *             cdw2 = accuracy * 1e4, cdw3 = capacity
     *  ArrayInfo: prp buffer receives, per node: [index, alive,
     *             channels, chipsPerChannel, nocWaitTicks,
     *             scrubPagesScanned, repairPagesCopied]; the
     *             completion's result = node count, with the
     *             replication factor in the top 16 bits */
    std::uint64_t cdw[6] = {0, 0, 0, 0, 0, 0};
};

/** Completion-queue entry. */
struct NvmeCompletion
{
    std::uint16_t cid = 0;
    NvmeStatus status = NvmeStatus::Success;
    /** Opcode-specific result (db_id / model_id / query_id / count). */
    std::uint64_t result = 0;
};

/** Host-memory stand-in: float buffers addressed by PRP handles. */
class HostBufferRegistry
{
  public:
    /** Register a buffer; returns its PRP handle. */
    std::uint64_t add(std::vector<float> data);

    const std::vector<float> *find(std::uint64_t prp) const;
    std::vector<float> *findMutable(std::uint64_t prp);
    void release(std::uint64_t prp);

  private:
    std::map<std::uint64_t, std::vector<float>> buffers_;
    std::uint64_t next_ = 0x1000;
};

/** Bounded submission queue + completion queue over a DeepStore. */
class NvmeFrontEnd
{
  public:
    explicit NvmeFrontEnd(DeepStore &store,
                          std::size_t sq_depth = 256);

    HostBufferRegistry &buffers() { return buffers_; }

    /** Ring the doorbell with one command.
     *  @return false when the submission queue is full. */
    bool submit(const NvmeCommand &cmd);

    /**
     * Process every queued command in order (the engine runs on the
     * embedded cores between doorbell writes). Synchronous commands
     * post their completions immediately; Query commands post theirs
     * when the scan completes in simulated time (see pump()).
     */
    void process();

    /**
     * Advance the device clock until at least one completion entry is
     * available (the host-side interrupt wait). @return true when a
     * completion is ready, false when the device is fully idle with
     * an empty completion queue.
     */
    bool pump();

    /** Pop the oldest completion, if any. Does not advance time. */
    std::optional<NvmeCompletion> pollCompletion();

    /** The engine query_id behind a previously submitted Query
     *  command (nullopt for unknown cids or failed submissions). */
    std::optional<std::uint64_t> queryIdForCid(std::uint16_t cid) const;

    std::size_t submissionDepth() const { return sqDepth_; }
    std::size_t pending() const { return sq_.size(); }

  private:
    /** Execute one command. Returns the completion for synchronous
     *  commands; nullopt when the completion was deferred (Query
     *  accepted by the engine — it posts to cq_ on its own). */
    std::optional<NvmeCompletion> execute(const NvmeCommand &cmd);

    DeepStore &store_;
    std::size_t sqDepth_;
    std::deque<NvmeCommand> sq_;
    std::deque<NvmeCompletion> cq_;
    HostBufferRegistry buffers_;
    /** cid -> engine query_id for accepted Query commands. */
    std::map<std::uint16_t, std::uint64_t> queryCids_;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_NVME_FRONT_H
