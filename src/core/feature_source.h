/**
 * @file
 * Feature providers backing a DeepStore database.
 *
 * writeDB() conceptually copies feature vectors from host memory into
 * flash; for simulation we keep a provider per database so the
 * functional query path can fetch any feature on demand without
 * materializing multi-terabyte datasets: either an explicit in-memory
 * list (examples, tests) or the deterministic latent-topic generator
 * (large benchmark databases).
 */

#ifndef DEEPSTORE_CORE_FEATURE_SOURCE_H
#define DEEPSTORE_CORE_FEATURE_SOURCE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "workloads/feature_gen.h"

namespace deepstore::core {

/** Read-only source of feature vectors for one database. */
class FeatureSource
{
  public:
    virtual ~FeatureSource() = default;

    /** Number of features available. */
    virtual std::uint64_t count() const = 0;

    /** Feature vector length in floats. */
    virtual std::int64_t dim() const = 0;

    /** The index-th feature vector. @pre index < count(). */
    virtual std::vector<float> featureAt(std::uint64_t index) const = 0;
};

/** Explicit in-memory feature list. */
class VectorFeatureSource : public FeatureSource
{
  public:
    VectorFeatureSource(std::vector<std::vector<float>> features,
                        std::int64_t dim)
        : features_(std::move(features)), dim_(dim)
    {
        for (const auto &f : features_) {
            if (static_cast<std::int64_t>(f.size()) != dim_)
                fatal("feature size %zu != dim %lld", f.size(),
                      static_cast<long long>(dim_));
        }
    }

    std::uint64_t count() const override { return features_.size(); }
    std::int64_t dim() const override { return dim_; }

    std::vector<float>
    featureAt(std::uint64_t index) const override
    {
        DS_ASSERT(index < features_.size());
        return features_[index];
    }

  private:
    std::vector<std::vector<float>> features_;
    std::int64_t dim_;
};

/** Deterministic synthetic database (latent-topic generator). */
class GeneratedFeatureSource : public FeatureSource
{
  public:
    GeneratedFeatureSource(workloads::FeatureGenerator generator,
                           std::uint64_t count)
        : generator_(std::move(generator)), count_(count)
    {
    }

    std::uint64_t count() const override { return count_; }
    std::int64_t dim() const override { return generator_.dim(); }

    std::vector<float>
    featureAt(std::uint64_t index) const override
    {
        DS_ASSERT(index < count_);
        return generator_.featureAt(index);
    }

    const workloads::FeatureGenerator &generator() const
    {
        return generator_;
    }

  private:
    workloads::FeatureGenerator generator_;
    std::uint64_t count_;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_FEATURE_SOURCE_H
