/**
 * @file
 * Shared scan-execution core: the lockstep consumer that turns a
 * DFV page stream into computed features.
 *
 * One GroupScan models the read-once-broadcast scan group of §4.4:
 * every co-resident same-database scan on one accelerator subscribes
 * to the same DfvStream; the accelerator computes the SCN over each
 * delivered feature once per member (compute and weight streaming are
 * paid per member, the flash stream once per group). The group's
 * stream position advances in *runs* bounded by what the stream has
 * delivered and by the nearest member retirement point, so member
 * completions land on exact ticks without floating-point progress
 * accounting.
 *
 * Inside a run the group executes slot by slot (a lockstep slot is
 * the weight-stationary group of features sharing one weight
 * residency window): each slot first waits for its weight tiles to
 * stream over the shared DRAM link (WeightStream — the first
 * requester pays the transfer, broadcast co-subscribers ride it),
 * then replays each member's per-layer compute bursts on the
 * ComputeArbiter. Nothing is a closed-form quotient: compute is the
 * systolic slot schedule, weights are DRAM-link reservations, and the
 * flash leg is the physical DfvStream.
 *
 * The compute station drains the FLASH_DFV through a *bounded
 * feature FIFO* sized to one queue's worth of features: a delivered
 * feature latches into the FIFO (freeing its FLASH_DFV page slots)
 * as soon as the FIFO has room, and the latch of feature i waits for
 * the compute completion of feature i - depth otherwise. When flash
 * is the bottleneck the FIFO never fills, entries free at delivery,
 * and the burst cadence stays equal to the analytic
 * `readLatency + depth / page_rate` — which keeps the live path
 * inside the parity tolerance of the closed-form DeepStoreModel.
 * When compute (or the weight stream) is the bottleneck the FIFO
 * fills, the latch — and with it consumedThrough() — trails compute,
 * the burst barrier holds, and the DfvStream records real
 * backpressure on flash delivery.
 *
 * Both the live query scheduler (one GroupScan per co-resident
 * same-database scan group per accelerator unit) and the standalone
 * AccelPipeline (a single-member group) are built on this type, so
 * the two paths agree tick-for-tick by construction — the
 * cross-validation the test suite asserts.
 */

#ifndef DEEPSTORE_CORE_SCAN_CORE_H
#define DEEPSTORE_CORE_SCAN_CORE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/bandwidth.h"
#include "sim/event_queue.h"
#include "ssd/dfv_stream.h"

namespace deepstore::core {

/**
 * The accelerator's systolic array as a serially reusable resource:
 * compute bursts from every scan group resident on one accelerator
 * acquire it in arrival order. Distinct groups' *flash* streams
 * proceed in parallel (separate DfvStreams on the shared
 * controllers); only the compute serializes.
 */
class ComputeArbiter
{
  public:
    /** Tick at which the array frees up (<= now means idle). */
    Tick busyUntil() const { return freeAt_; }

    /**
     * Reserve the array for `cost` ticks starting no earlier than
     * `now`; returns the completion tick.
     */
    Tick
    acquire(Tick now, Tick cost)
    {
        Tick start = freeAt_ > now ? freeAt_ : now;
        freeAt_ = start + cost;
        return freeAt_;
    }

  private:
    Tick freeAt_ = 0;
};

/**
 * The per-slot weight feed of one scan member: non-resident weight
 * tiles re-stream over the shared DRAM link once per lockstep slot.
 * The first member to request a slot's tiles reserves the link and
 * pays the transfer; co-subscribers sharing the stream (broadcast via
 * the channel level's shared L2, or WS-lockstep chips) get the
 * memoized completion tick for free. A null link or zero bytes means
 * the model is fully resident and every fetch completes instantly.
 *
 * Completion ticks are memoized per slot for the stream's lifetime
 * (the tile stays cached for drifted co-subscribers); a scan of F
 * features holds F/groupSize entries, which is fine at simulation
 * scale.
 */
class WeightStream
{
  public:
    WeightStream(sim::BandwidthLink *dram, std::uint64_t bytes_per_slot)
        : dram_(dram), bytesPerSlot_(bytes_per_slot)
    {
    }

    /**
     * Tick at which slot `slot`'s tiles are fully resident,
     * requesting the DRAM transfer at `ready` if nobody has yet.
     */
    Tick fetch(std::uint64_t slot, Tick ready);

    std::uint64_t bytesPerSlot() const { return bytesPerSlot_; }

  private:
    sim::BandwidthLink *dram_;
    std::uint64_t bytesPerSlot_;
    std::map<std::uint64_t, Tick> done_;
};

/** How delivered pages map to computable features for one scan plan
 *  (uniform steps; range-boundary partial pages round optimistically
 *  by at most one step). */
struct ScanStepShape
{
    /** Plan pages consumed per step. */
    std::uint64_t pageReadsPerStep = 1;
    /** Features made ready per step. */
    std::uint64_t featuresPerStep = 1;
};

/** One subscriber of a scan group. */
struct ScanMember
{
    /** Caller-chosen id reported back through onMemberDone. */
    std::uint64_t id = 0;
    /** Stream positions (features) this member consumes. */
    std::uint64_t features = 0;
    /** Per-feature compute bursts on the array, one per model layer
     *  (the systolic slot schedule lowered onto the unit's clock).
     *  The flash and weight legs are *not* analytic here — they are
     *  the physical stream and the WeightStream. */
    std::vector<Tick> layerBurstTicks;
    /** Weight feed for non-resident models (nullptr = resident). */
    std::shared_ptr<WeightStream> weights;
};

/** Contention counters of a group at a member retirement point. */
struct ScanGroupSnapshot
{
    /** Ticks the group waited on flash with the array willing. */
    Tick starvedTicks = 0;
    /** Ticks compute waited on the slot weight feed. */
    Tick weightStallTicks = 0;
    /** Ticks the group's stream sat blocked on compute (see
     *  DfvStream::backpressureTicks). */
    Tick backpressureTicks = 0;
};

/** One read-once-broadcast scan group (see file comment). */
class GroupScan
{
  public:
    /**
     * @param stream the group's DFV page stream, or nullptr for a
     *   degenerate plan with no pages (everything immediately ready).
     *   The caller owns the stream and closes it after onGroupDone.
     * @param features_per_slot lockstep slot width in features
     *   (wsGroupSize on weight-stationary placements, 1 otherwise).
     */
    GroupScan(sim::EventQueue &events, ComputeArbiter &arbiter,
              ssd::DfvStream *stream, ScanStepShape shape,
              std::uint64_t features_per_slot = 1);

    GroupScan(const GroupScan &) = delete;
    GroupScan &operator=(const GroupScan &) = delete;

    /** Fired (from a run-completion event) when a member's last
     *  feature completes, carrying the member id, the features
     *  actually computed from good pages (== the member's feature
     *  count minus features lost to uncorrectable pages), and a
     *  snapshot of the group's contention counters. */
    void onMemberDone(
        std::function<void(std::uint64_t, std::uint64_t,
                           const ScanGroupSnapshot &)>
            cb)
    {
        onMemberDone_ = std::move(cb);
    }

    /** Fired after the last member retires. The stream may still be
     *  open; the caller closes it. Destroying this GroupScan from
     *  inside the callback is not allowed (defer via a 0-tick
     *  event). */
    void onGroupDone(std::function<void()> cb)
    {
        onGroupDone_ = std::move(cb);
    }

    /**
     * Add a subscriber. Only legal while the group is still at
     * stream position 0 with no run latched (canAdmit()): a later
     * joiner would have missed broadcast pages.
     */
    void addMember(ScanMember member);

    /** Begin consuming: hooks the stream's delivery callback and
     *  latches the first run once data is ready. */
    void start();

    bool canAdmit() const { return position_ == 0 && !runActive_; }

    /** Features fully computed (group stream position). */
    std::uint64_t position() const { return position_; }

    bool done() const { return membersLeft_ == 0 && started_; }

    std::size_t members() const { return members_.size(); }

    /** Largest member feature count (the group's stream length in
     *  features). */
    std::uint64_t featuresTotal() const { return maxFeatures_; }

    /** Live subscribers (recovery introspection). */
    const std::vector<ScanMember> &memberList() const
    {
        return members_;
    }

    /** Features of member `id` computed from good pages so far
     *  (min(position, member features) minus the failed-page loss).
     *  fatal() for unknown ids. */
    std::uint64_t completedFeatures(std::uint64_t id) const;

    /** Plan pages fully consumed once `pos` features are latched
     *  (public: the recovery path slices remnant plans with it). */
    std::uint64_t pagesForPosition(std::uint64_t pos) const;

    /**
     * Remove a live member without retiring it (cancellation /
     * watchdog snatch / unit death). Returns the member's completed
     * good features. When the last member is removed the pending
     * run events (if any) are cancelled and no further callbacks
     * fire — the caller then treats the group as finished and closes
     * its stream.
     */
    std::uint64_t removeMember(std::uint64_t id);

    /**
     * Hard-stop the group: cancel the pending run events and drop
     * both callbacks. Safe to call at any time; idempotent. The
     * caller still owns/closes the stream.
     */
    void abort();

    // ---- run statistics ------------------------------------------

    /** Ticks the group waited on flash with the array willing. */
    Tick starvedTicks() const { return starvedTicks_; }

    /** Ticks compute waited on the slot weight feed. */
    Tick weightStallTicks() const { return weightStallTicks_; }

    /** Ticks of array time this group's runs reserved. */
    Tick computeBusyTicks() const { return computeBusyTicks_; }

    /** Current contention counters (also handed to onMemberDone). */
    ScanGroupSnapshot snapshot() const;

  private:
    /** Latch the next run if data is ready and no run is out. */
    void pump();

    /** Station feature-FIFO capacity in lockstep slots (one DFV
     *  queue's worth of features). */
    std::uint64_t stationSlots() const;

    /** Features currently computable from the stream. */
    std::uint64_t readyFeatures() const;

    /** Features lost to failed pages within the first `f` features
     *  of the plan (approximate step rounding, capped at f). */
    std::uint64_t lostFeatures(std::uint64_t f) const;

    void runComplete(std::uint64_t new_position);

    sim::EventQueue &events_;
    ComputeArbiter &arbiter_;
    ssd::DfvStream *stream_;
    ScanStepShape shape_;
    std::uint64_t featuresPerSlot_;

    std::vector<ScanMember> members_;
    std::function<void(std::uint64_t, std::uint64_t,
                       const ScanGroupSnapshot &)>
        onMemberDone_;
    std::function<void()> onGroupDone_;

    std::uint64_t maxFeatures_ = 0;
    std::uint64_t position_ = 0;
    std::size_t membersLeft_ = 0;
    bool runActive_ = false;
    bool started_ = false;
    bool aborted_ = false;
    /** Consume-marks + completion of the latched run. */
    std::vector<sim::EventId> runEvents_;
    /** Compute-completion ticks of the slots currently staged in the
     *  bounded feature FIFO (see file comment): the latch of a new
     *  slot waits for front() once the FIFO is full. */
    std::deque<Tick> stationDone_;

    Tick idleSince_ = 0;
    Tick starvedTicks_ = 0;
    Tick weightStallTicks_ = 0;
    Tick computeBusyTicks_ = 0;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_SCAN_CORE_H
