/**
 * @file
 * Shared scan-execution core: the lockstep consumer that turns a
 * DFV page stream into computed features.
 *
 * One GroupScan models the read-once-broadcast scan group of §4.4:
 * every co-resident same-database scan on one accelerator subscribes
 * to the same DfvStream; the accelerator computes the SCN over each
 * delivered feature once per member (compute and weight streaming are
 * paid per member, the flash stream once per group). The group's
 * stream position advances in *batches* bounded by what the stream
 * has delivered and by the nearest member retirement point, so member
 * completions land on exact ticks without floating-point progress
 * accounting.
 *
 * Consumption is reported at batch *start*: once a batch's features
 * are latched into the array, their FLASH_DFV slots are free and the
 * stream may refill (the next burst overlaps the compute tail). This
 * is what keeps a flash-bound scan's burst period equal to the
 * analytic `readLatency + depth / page_rate`, i.e. within tolerance
 * of the closed-form DeepStoreModel.
 *
 * Both the live query scheduler (one GroupScan per co-resident
 * same-database scan group per accelerator unit) and the standalone
 * AccelPipeline (a single-member group) are built on this type, so
 * the two paths agree tick-for-tick by construction — the
 * cross-validation the test suite asserts.
 */

#ifndef DEEPSTORE_CORE_SCAN_CORE_H
#define DEEPSTORE_CORE_SCAN_CORE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "ssd/dfv_stream.h"

namespace deepstore::core {

/**
 * The accelerator's systolic array as a serially reusable resource:
 * batches from every scan group resident on one accelerator acquire
 * it in arrival order. Distinct groups' *flash* streams proceed in
 * parallel (separate DfvStreams on the shared controllers); only the
 * compute serializes.
 */
class ComputeArbiter
{
  public:
    /** Tick at which the array frees up (<= now means idle). */
    Tick busyUntil() const { return freeAt_; }

    /**
     * Reserve the array for `cost` ticks starting no earlier than
     * `now`; returns the completion tick.
     */
    Tick
    acquire(Tick now, Tick cost)
    {
        Tick start = freeAt_ > now ? freeAt_ : now;
        freeAt_ = start + cost;
        return freeAt_;
    }

  private:
    Tick freeAt_ = 0;
};

/** How delivered pages map to computable features for one scan plan
 *  (uniform steps; range-boundary partial pages round optimistically
 *  by at most one step). */
struct ScanStepShape
{
    /** Plan pages consumed per step. */
    std::uint64_t pageReadsPerStep = 1;
    /** Features made ready per step. */
    std::uint64_t featuresPerStep = 1;
};

/** One subscriber of a scan group. */
struct ScanMember
{
    /** Caller-chosen id reported back through onMemberDone. */
    std::uint64_t id = 0;
    /** Stream positions (features) this member consumes. */
    std::uint64_t features = 0;
    /** Analytic per-feature service time of this member on the
     *  array: max(compute leg, weight-streaming leg). The flash leg
     *  is *not* analytic here — it is the physical stream. */
    Tick serviceTicksPerFeature = 0;
};

/** One read-once-broadcast scan group (see file comment). */
class GroupScan
{
  public:
    /**
     * @param stream the group's DFV page stream, or nullptr for a
     *   degenerate plan with no pages (everything immediately ready).
     *   The caller owns the stream and closes it after onGroupDone.
     */
    GroupScan(sim::EventQueue &events, ComputeArbiter &arbiter,
              ssd::DfvStream *stream, ScanStepShape shape);

    GroupScan(const GroupScan &) = delete;
    GroupScan &operator=(const GroupScan &) = delete;

    /** Fired (from a batch-completion event) when a member's last
     *  feature completes, carrying the member id and the features
     *  actually computed from good pages (== the member's feature
     *  count minus features lost to uncorrectable pages). */
    void onMemberDone(
        std::function<void(std::uint64_t, std::uint64_t)> cb)
    {
        onMemberDone_ = std::move(cb);
    }

    /** Fired after the last member retires. The stream may still be
     *  open; the caller closes it. Destroying this GroupScan from
     *  inside the callback is not allowed (defer via a 0-tick
     *  event). */
    void onGroupDone(std::function<void()> cb)
    {
        onGroupDone_ = std::move(cb);
    }

    /**
     * Add a subscriber. Only legal while the group is still at
     * stream position 0 with no batch latched (canAdmit()): a later
     * joiner would have missed broadcast pages.
     */
    void addMember(ScanMember member);

    /** Begin consuming: hooks the stream's delivery callback and
     *  latches the first batch once data is ready. */
    void start();

    bool canAdmit() const { return position_ == 0 && !batchActive_; }

    /** Features fully computed (group stream position). */
    std::uint64_t position() const { return position_; }

    bool done() const { return membersLeft_ == 0 && started_; }

    std::size_t members() const { return members_.size(); }

    /** Largest member feature count (the group's stream length in
     *  features). */
    std::uint64_t featuresTotal() const { return maxFeatures_; }

    /** Live subscribers (recovery introspection). */
    const std::vector<ScanMember> &memberList() const
    {
        return members_;
    }

    /** Features of member `id` computed from good pages so far
     *  (min(position, member features) minus the failed-page loss).
     *  fatal() for unknown ids. */
    std::uint64_t completedFeatures(std::uint64_t id) const;

    /** Plan pages fully consumed once `pos` features are latched
     *  (public: the recovery path slices remnant plans with it). */
    std::uint64_t pagesForPosition(std::uint64_t pos) const;

    /**
     * Remove a live member without retiring it (cancellation /
     * watchdog snatch / unit death). Returns the member's completed
     * good features. When the last member is removed the pending
     * batch event (if any) is cancelled and no further callbacks
     * fire — the caller then treats the group as finished and closes
     * its stream.
     */
    std::uint64_t removeMember(std::uint64_t id);

    /**
     * Hard-stop the group: cancel the pending batch event and drop
     * both callbacks. Safe to call at any time; idempotent. The
     * caller still owns/closes the stream.
     */
    void abort();

    // ---- run statistics ------------------------------------------

    /** Ticks the group waited on flash with the array willing. */
    Tick starvedTicks() const { return starvedTicks_; }

    /** Ticks of array time this group's batches reserved. */
    Tick computeBusyTicks() const { return computeBusyTicks_; }

  private:
    /** Latch the next batch if data is ready and no batch is out. */
    void pump();

    /** Features currently computable from the stream. */
    std::uint64_t readyFeatures() const;

    /** Features lost to failed pages within the first `f` features
     *  of the plan (approximate step rounding, capped at f). */
    std::uint64_t lostFeatures(std::uint64_t f) const;

    void batchComplete(std::uint64_t new_position);

    sim::EventQueue &events_;
    ComputeArbiter &arbiter_;
    ssd::DfvStream *stream_;
    ScanStepShape shape_;

    std::vector<ScanMember> members_;
    std::function<void(std::uint64_t, std::uint64_t)> onMemberDone_;
    std::function<void()> onGroupDone_;

    std::uint64_t maxFeatures_ = 0;
    std::uint64_t position_ = 0;
    std::size_t membersLeft_ = 0;
    bool batchActive_ = false;
    bool started_ = false;
    bool aborted_ = false;
    sim::EventId batchEvent_ = 0;

    Tick idleSince_ = 0;
    Tick starvedTicks_ = 0;
    Tick computeBusyTicks_ = 0;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_SCAN_CORE_H
