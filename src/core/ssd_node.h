/**
 * @file
 * One member drive of a DeepStore array: the simulated SSD bundled
 * with its fault domain, its DfvStreamService (scan streams over the
 * node's own per-channel FlashControllers), its QueryScheduler (the
 * node's accelerator complex), its analytic DeepStoreModel, and a
 * per-node append-only LPN allocator.
 *
 * The node is the *only* layer of `src/core` allowed to touch `Ssd`
 * or `Ftl` members directly (lint rule D7 enforces this): everything
 * above — the engine, the array coordinator, the NVMe front end —
 * goes through the passthroughs below, so a node with a different
 * flash geometry, its own fault schedule, or a dead device is
 * indistinguishable from the outside. Nodes share the engine's one
 * sim::EventQueue; per-node time is the same global tick.
 */

#ifndef DEEPSTORE_CORE_SSD_NODE_H
#define DEEPSTORE_CORE_SSD_NODE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/metadata.h"
#include "core/placement.h"
#include "core/query_model.h"
#include "core/query_scheduler.h"
#include "ssd/dfv_stream.h"
#include "ssd/ssd.h"

namespace deepstore::core {

/** Per-node construction knobs (the recovery tuning is shared across
 *  the array; the flash geometry + fault schedule are per-node). */
struct SsdNodeConfig
{
    ssd::FlashParams flash;
    std::uint32_t maxResidentScans = 8;
    double shardWatchdogSeconds = 0.0;
    std::uint32_t maxShardRetries = 2;
    double shardRetryBackoffSeconds = 100e-6;
};

/** One array member: SSD + FTL + fault domain + scan station. */
class SsdNode
{
  public:
    SsdNode(sim::EventQueue &events, SsdNodeConfig config,
            std::uint32_t index);

    SsdNode(const SsdNode &) = delete;
    SsdNode &operator=(const SsdNode &) = delete;

    // ---- identity ------------------------------------------------

    std::uint32_t index() const { return index_; }

    /** False once the drive has been killed (whole-node failure);
     *  a dead node rejects new scan work and its in-flight
     *  sub-queries have already been failed over. */
    bool alive() const { return alive_; }

    const ssd::FlashParams &flash() const { return config_.flash; }

    /** Analytic model over *this node's* geometry (heterogeneous
     *  arrays evaluate placements per node). */
    const DeepStoreModel &model() const { return model_; }

    QueryScheduler &scheduler() { return *scheduler_; }
    const QueryScheduler &scheduler() const { return *scheduler_; }

    /** Raw device escape hatch for tests/benches and the node layer
     *  itself; direct member access from the rest of `src/core` is a
     *  lint D7 finding. */
    ssd::Ssd &device() { return *ssd_; }
    const ssd::Ssd &device() const { return *ssd_; }

    StatGroup &stats();

    // ---- LPN allocation ------------------------------------------

    /** Append-only page allocator for this node's database region.
     *  @return the run's starting LPN. */
    std::uint64_t allocatePages(std::uint64_t pages);

    std::uint64_t nextFreeLpn() const { return nextFreeLpn_; }

    /** Recovery-only: raise the allocator mark to a persisted value.
     *  Monotonic — an older superblock epoch never un-allocates
     *  pages the device already handed out. */
    void restoreNextFreeLpn(std::uint64_t mark)
    {
        if (mark > nextFreeLpn_)
            nextFreeLpn_ = mark;
    }

    // ---- host I/O passthroughs -----------------------------------

    void hostWrite(std::uint64_t lpn_start, std::uint64_t count,
                   ssd::Completion on_complete);
    void hostRead(std::uint64_t lpn_start, std::uint64_t count,
                  ssd::Completion on_complete);
    void hostTrim(std::uint64_t lpn_start, std::uint64_t count,
                  ssd::Completion on_complete);

    /** Verifying read of one logical page for the background
     *  scrubber: a real flash read on this node's channel buses that
     *  reports the ECC verdict. */
    void scrubRead(std::uint64_t lpn,
                   ssd::Ssd::StatusCompletion on_complete);

    // ---- FTL facade ----------------------------------------------

    std::uint64_t translate(std::uint64_t lpn);

    /** Register a host write in the mapping without simulating the
     *  program (the closed-form bulk-ingest fast path). */
    void registerWrite(std::uint64_t lpn);

    void trimPages(std::uint64_t lpn_start, std::uint64_t pages);

    std::uint64_t mappingEpoch() const;

    /** First LPN of the reserved metadata block at the top of this
     *  node's LPN space (§4.4). */
    std::uint64_t reservedMetadataLpn() const;

    // ---- page payloads (functional contents) ---------------------

    void storePayload(std::uint64_t lpn,
                      std::vector<std::uint8_t> bytes);
    const std::vector<std::uint8_t> *payload(std::uint64_t lpn) const;

    // ---- scan planning -------------------------------------------

    /** Resolve a node-local feature range of `local_md` to per-unit
     *  physical page runs via this node's FTL/striping tables. */
    ScanPlan resolvePlan(const Placement &placement,
                         const DbMetadata &local_md,
                         std::uint64_t local_start,
                         std::uint64_t local_end);

    // ---- telemetry -----------------------------------------------

    /** Cumulative channel-bus arbitration wait on this node. */
    Tick nocWaitTicks() const;

    void syncLinkStats();

    // ---- lifecycle -----------------------------------------------

    /** Kill every in-flight sub-query on this node's scheduler with
     *  the given outcome (honest partial coverage; finalizes run
     *  synchronously). */
    void failAllInFlight(QueryOutcome outcome);

    /** Drop the device's volatile state (relocations abort
     *  crash-consistently, plane/bus reservations reset). */
    void devicePowerLoss();

    /** Whole-node death: mark the drive dead, fail its in-flight
     *  sub-queries (outcome Degraded — the coordinator re-stripes
     *  onto replicas), and drop volatile device state. Idempotent. */
    void kill();

  private:
    SsdNodeConfig config_;
    std::uint32_t index_ = 0;
    bool alive_ = true;
    std::unique_ptr<ssd::Ssd> ssd_;
    DeepStoreModel model_;
    /** Declared before the scheduler, which references it. */
    std::unique_ptr<ssd::DfvStreamService> dfv_;
    std::unique_ptr<QueryScheduler> scheduler_;
    std::uint64_t nextFreeLpn_ = 0;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_SSD_NODE_H
