#include "core/nvme_front.h"

#include <cstring>

#include "common/logging.h"

namespace deepstore::core {

namespace {

/** Map a terminal query outcome onto its NVMe completion status. */
NvmeStatus
statusForOutcome(QueryOutcome outcome)
{
    switch (outcome) {
    case QueryOutcome::Success:
        return NvmeStatus::Success;
    case QueryOutcome::DeadlineExceeded:
        return NvmeStatus::DeadlineExceeded;
    case QueryOutcome::Aborted:
        return NvmeStatus::Aborted;
    case QueryOutcome::Degraded:
    case QueryOutcome::PowerLoss:
    default:
        // Power loss surfaces like degradation: the host gets the
        // honest partial result and may resubmit after recovery.
        return NvmeStatus::DegradedSuccess;
    }
}

} // namespace

std::uint64_t
HostBufferRegistry::add(std::vector<float> data)
{
    std::uint64_t prp = next_;
    next_ += 0x1000;
    buffers_[prp] = std::move(data);
    return prp;
}

const std::vector<float> *
HostBufferRegistry::find(std::uint64_t prp) const
{
    auto it = buffers_.find(prp);
    return it == buffers_.end() ? nullptr : &it->second;
}

std::vector<float> *
HostBufferRegistry::findMutable(std::uint64_t prp)
{
    auto it = buffers_.find(prp);
    return it == buffers_.end() ? nullptr : &it->second;
}

void
HostBufferRegistry::release(std::uint64_t prp)
{
    buffers_.erase(prp);
}

NvmeFrontEnd::NvmeFrontEnd(DeepStore &store, std::size_t sq_depth)
    : store_(store), sqDepth_(sq_depth)
{
    if (sq_depth == 0)
        fatal("submission queue depth must be positive");
}

bool
NvmeFrontEnd::submit(const NvmeCommand &cmd)
{
    if (sq_.size() >= sqDepth_)
        return false; // queue full: host must back off
    sq_.push_back(cmd);
    return true;
}

void
NvmeFrontEnd::process()
{
    while (!sq_.empty()) {
        NvmeCommand cmd = sq_.front();
        sq_.pop_front();
        if (auto done = execute(cmd))
            cq_.push_back(*done);
        // else: Query accepted; its completion posts asynchronously.
    }
}

bool
NvmeFrontEnd::pump()
{
    while (cq_.empty() && store_.step()) {
    }
    return !cq_.empty();
}

std::optional<NvmeCompletion>
NvmeFrontEnd::pollCompletion()
{
    if (cq_.empty())
        return std::nullopt;
    NvmeCompletion c = cq_.front();
    cq_.pop_front();
    return c;
}

std::optional<std::uint64_t>
NvmeFrontEnd::queryIdForCid(std::uint16_t cid) const
{
    auto it = queryCids_.find(cid);
    if (it == queryCids_.end())
        return std::nullopt;
    return it->second;
}

std::optional<NvmeCompletion>
NvmeFrontEnd::execute(const NvmeCommand &cmd)
{
    NvmeCompletion done;
    done.cid = cmd.cid;
    try {
        switch (cmd.opcode) {
          case NvmeOpcode::WriteDB: {
            const auto *buf = buffers_.find(cmd.prp);
            auto dim = static_cast<std::int64_t>(cmd.cdw[0]);
            if (!buf || dim <= 0 ||
                buf->size() % static_cast<std::size_t>(dim) != 0) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            std::vector<std::vector<float>> features;
            for (std::size_t off = 0; off < buf->size();
                 off += static_cast<std::size_t>(dim)) {
                features.emplace_back(
                    buf->begin() + static_cast<long>(off),
                    buf->begin() + static_cast<long>(off) + dim);
            }
            done.result = store_.writeDB(
                std::make_shared<VectorFeatureSource>(
                    std::move(features), dim));
            break;
          }
          case NvmeOpcode::AppendDB: {
            const auto *buf = buffers_.find(cmd.prp);
            if (!buf) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            auto dim = static_cast<std::int64_t>(
                store_.databaseInfo(cmd.cdw[0]).featureBytes /
                kBytesPerFloat);
            if (buf->size() % static_cast<std::size_t>(dim) != 0) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            std::vector<std::vector<float>> features;
            for (std::size_t off = 0; off < buf->size();
                 off += static_cast<std::size_t>(dim)) {
                features.emplace_back(
                    buf->begin() + static_cast<long>(off),
                    buf->begin() + static_cast<long>(off) + dim);
            }
            store_.appendDB(cmd.cdw[0],
                            std::make_shared<VectorFeatureSource>(
                                std::move(features), dim));
            done.result = cmd.cdw[0];
            break;
          }
          case NvmeOpcode::ReadDB: {
            auto *out = buffers_.findMutable(cmd.prp);
            if (!out) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            auto features =
                store_.readDB(cmd.cdw[0], cmd.cdw[1], cmd.cdw[2]);
            out->clear();
            for (const auto &f : features)
                out->insert(out->end(), f.begin(), f.end());
            done.result = features.size();
            break;
          }
          case NvmeOpcode::LoadModel: {
            // prp references a serialized model blob packed into the
            // float buffer (4 bytes per element).
            const auto *buf = buffers_.find(cmd.prp);
            if (!buf) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            std::vector<std::uint8_t> blob(buf->size() * 4);
            std::memcpy(blob.data(), buf->data(), blob.size());
            blob.resize(static_cast<std::size_t>(cmd.cdw[0]));
            done.result = store_.loadModel(blob);
            break;
          }
          case NvmeOpcode::Query: {
            const auto *qfv = buffers_.find(cmd.prp);
            if (!qfv) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            std::optional<Level> level;
            const std::uint64_t level_field =
                cmd.cdw[5] & 0xFFFFFFFFULL;
            if (level_field != 0)
                level = static_cast<Level>(level_field - 1);
            // cdw5 high 32 bits: optional deadline in microseconds.
            const double deadline_seconds =
                static_cast<double>(cmd.cdw[5] >> 32) * 1e-6;
            std::uint64_t qid = store_.query(
                *qfv, static_cast<std::size_t>(cmd.cdw[0]),
                cmd.cdw[1], cmd.cdw[2], cmd.cdw[3], cmd.cdw[4],
                level, deadline_seconds);
            queryCids_[cmd.cid] = qid;
            // Defer the completion entry until the in-storage
            // scheduler finishes the query; entries post in
            // simulated-latency order, not submission order. A
            // degraded/aborted/overdue query completes with the
            // matching vendor status, not an error — partial results
            // stay retrievable through GetResults.
            std::uint16_t cid = cmd.cid;
            store_.onComplete(
                qid, [this, cid, qid](const QueryResult &res) {
                    cq_.push_back(NvmeCompletion{
                        cid, statusForOutcome(res.outcome), qid});
                });
            return std::nullopt;
          }
          case NvmeOpcode::GetResults: {
            auto *out = buffers_.findMutable(cmd.prp);
            if (!out) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            FetchResult fr = store_.tryGetResults(cmd.cdw[0]);
            if (fr.status == FetchStatus::Unknown) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            if (fr.status == FetchStatus::InFlight) {
                // Retryable: the host should pump() and resubmit.
                done.status = NvmeStatus::InProgress;
                done.result = cmd.cdw[0];
                break;
            }
            const QueryResult &res = *fr.result;
            out->clear();
            for (const auto &r : res.topK) {
                out->push_back(static_cast<float>(r.featureId));
                out->push_back(r.score);
            }
            done.status = statusForOutcome(res.outcome);
            done.result = res.topK.size();
            break;
          }
          case NvmeOpcode::AbortQuery: {
            if (!store_.poll(cmd.cdw[0])) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            // Idempotent at the wire level: aborting an
            // already-terminal query succeeds without effect (its
            // results keep their original status).
            store_.cancel(cmd.cdw[0]);
            done.result = cmd.cdw[0];
            break;
          }
          case NvmeOpcode::ArrayInfo: {
            // Array topology + per-node health for host-side
            // placement decisions (mirrors `nvme list`-style admin
            // introspection, vendor-shaped).
            auto *out = buffers_.findMutable(cmd.prp);
            if (!out) {
                done.status = NvmeStatus::InvalidField;
                break;
            }
            const auto &array = store_.array();
            out->clear();
            for (std::uint32_t i = 0; i < array.nodeCount(); ++i) {
                const auto &node = array.node(i);
                out->push_back(static_cast<float>(i));
                out->push_back(node.alive() ? 1.0f : 0.0f);
                out->push_back(
                    static_cast<float>(node.flash().channels));
                out->push_back(static_cast<float>(
                    node.flash().chipsPerChannel));
                out->push_back(
                    static_cast<float>(node.nocWaitTicks()));
                out->push_back(static_cast<float>(
                    array.scrubPagesScannedOn(i)));
                out->push_back(static_cast<float>(
                    array.repairPagesCopiedTo(i)));
            }
            done.result =
                static_cast<std::uint64_t>(array.nodeCount()) |
                (static_cast<std::uint64_t>(array.replication())
                 << 16);
            break;
          }
          case NvmeOpcode::SetQC:
            store_.setQC(cmd.cdw[0],
                         static_cast<double>(cmd.cdw[1]) / 1e4,
                         static_cast<double>(cmd.cdw[2]) / 1e4,
                         static_cast<std::size_t>(cmd.cdw[3]));
            break;
          case NvmeOpcode::Read:
          case NvmeOpcode::Write:
          case NvmeOpcode::Dsm: {
            // Standard I/O path: cdw0 = LPN, cdw1 = page count.
            // Step the shared clock until this request's completion
            // callback fires; in-flight queries keep progressing.
            bool ok = false;
            auto cb = [&ok](Tick) { ok = true; };
            if (cmd.opcode == NvmeOpcode::Read)
                store_.hostRead(cmd.cdw[0], cmd.cdw[1], cb);
            else if (cmd.opcode == NvmeOpcode::Write)
                store_.hostWrite(cmd.cdw[0], cmd.cdw[1], cb);
            else
                store_.hostTrim(cmd.cdw[0], cmd.cdw[1], cb);
            while (!ok && store_.step()) {
            }
            done.status = ok ? NvmeStatus::Success
                             : NvmeStatus::InternalError;
            break;
          }
          default:
            done.status = NvmeStatus::InvalidField;
        }
    } catch (const FatalError &) {
        done.status = NvmeStatus::InvalidField;
    } catch (const PanicError &) {
        done.status = NvmeStatus::InternalError;
    }
    return done;
}

} // namespace deepstore::core
