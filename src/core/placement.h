/**
 * @file
 * Accelerator placement levels and the Table 3 configurations.
 *
 * DeepStore places accelerators at three levels of SSD parallelism
 * (Fig. 3): one SSD-level accelerator behind the internal bus, one
 * accelerator per flash channel, or one per flash chip. The design
 * parameters (array shape, dataflow, frequency, scratchpad, power
 * budget) come from the paper's design-space exploration (§4.5,
 * Table 3).
 */

#ifndef DEEPSTORE_CORE_PLACEMENT_H
#define DEEPSTORE_CORE_PLACEMENT_H

#include <cstdint>
#include <string>

#include "energy/energy_model.h"
#include "ssd/flash_params.h"
#include "systolic/array_config.h"

namespace deepstore::core {

/** Placement level of the in-storage accelerators. */
enum class Level
{
    SsdLevel,
    ChannelLevel,
    ChipLevel,
};

const char *toString(Level level);

/** Full static description of one placement choice. */
struct Placement
{
    Level level = Level::ChannelLevel;
    systolic::ArrayConfig array;
    energy::SramModel sramModel = energy::SramModel::ItrsHp;

    /** Number of accelerator instances in the SSD. */
    std::uint32_t numAccelerators = 0;

    /** Power budget per accelerator instance (W), from the 55 W SSD
     *  budget (§4.5). */
    double powerBudgetW = 0.0;

    /** Weight-stationary feature group: how many features each
     *  chip-level accelerator double-buffers per lockstep weight
     *  pass (1 for the OS levels, which stream weights instead). */
    std::int64_t wsGroupSize = 1;

    /** Capacity (bytes) of weight storage that is resident across
     *  features: the private scratchpad at SSD level, the shared
     *  SSD-level scratchpad (used as an L2) at channel level, and the
     *  private scratchpad at chip level. */
    std::uint64_t residentWeightBytes = 0;

    /** FLASH_DFV prefetch-queue depth in flash pages (§4.4). The
     *  queue refills in bursts of this many pages; each burst exposes
     *  one array-read latency (Fig. 9's residual sensitivity). */
    std::uint32_t dfvQueueDepthPages = 32;
};

/**
 * Build the Table 3 configuration for a level, sized for an SSD with
 * the given geometry (the accelerator count follows the channel/chip
 * counts; Fig. 10a scales channels).
 */
Placement makePlacement(Level level, const ssd::FlashParams &flash);

/** Total power budget available to in-storage accelerators (§4.5):
 *  75 W PCIe limit minus ~20 W for the existing SSD hardware. */
constexpr double kAcceleratorPowerBudgetW = 55.0;

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_PLACEMENT_H
