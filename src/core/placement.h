/**
 * @file
 * Accelerator placement levels and the Table 3 configurations.
 *
 * DeepStore places accelerators at three levels of SSD parallelism
 * (Fig. 3): one SSD-level accelerator behind the internal bus, one
 * accelerator per flash channel, or one per flash chip. The design
 * parameters (array shape, dataflow, frequency, scratchpad, power
 * budget) come from the paper's design-space exploration (§4.5,
 * Table 3).
 */

#ifndef DEEPSTORE_CORE_PLACEMENT_H
#define DEEPSTORE_CORE_PLACEMENT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/metadata.h"
#include "energy/energy_model.h"
#include "ssd/dfv_stream.h"
#include "ssd/flash_params.h"
#include "systolic/array_config.h"

namespace deepstore::core {

/** Placement level of the in-storage accelerators. */
enum class Level
{
    SsdLevel,
    ChannelLevel,
    ChipLevel,
};

const char *toString(Level level);

/** Full static description of one placement choice. */
struct Placement
{
    Level level = Level::ChannelLevel;
    systolic::ArrayConfig array;
    energy::SramModel sramModel = energy::SramModel::ItrsHp;

    /** Number of accelerator instances in the SSD. */
    std::uint32_t numAccelerators = 0;

    /** Power budget per accelerator instance (W), from the 55 W SSD
     *  budget (§4.5). */
    double powerBudgetW = 0.0;

    /** Weight-stationary feature group: how many features each
     *  chip-level accelerator double-buffers per lockstep weight
     *  pass (1 for the OS levels, which stream weights instead). */
    std::int64_t wsGroupSize = 1;

    /** Capacity (bytes) of weight storage that is resident across
     *  features: the private scratchpad at SSD level, the shared
     *  SSD-level scratchpad (used as an L2) at channel level, and the
     *  private scratchpad at chip level. */
    std::uint64_t residentWeightBytes = 0;

    /** FLASH_DFV prefetch-queue depth in flash pages (§4.4). The
     *  queue refills in bursts of this many pages; each burst exposes
     *  one array-read latency (Fig. 9's residual sensitivity). */
    std::uint32_t dfvQueueDepthPages = 32;
};

/**
 * Build the Table 3 configuration for a level, sized for an SSD with
 * the given geometry (the accelerator count follows the channel/chip
 * counts; Fig. 10a scales channels).
 */
Placement makePlacement(Level level, const ssd::FlashParams &flash);

/** Total power budget available to in-storage accelerators (§4.5):
 *  75 W PCIe limit minus ~20 W for the existing SSD hardware. */
constexpr double kAcceleratorPowerBudgetW = 55.0;

// ---- physical scan-plan resolution (§4.4) ------------------------

/** One accelerator unit's slice of a query's scan. */
struct UnitScan
{
    /** Unit index within the placement's accelerator pool (channel
     *  id at channel level, channel*chipsPerChannel+chip at chip
     *  level, 0 at SSD level). */
    std::uint32_t unitIndex = 0;

    /** Features physically resident on this unit's flash slice
     *  within the query range. */
    std::uint64_t features = 0;

    /** Addressed page reads feeding this unit's FLASH_DFV queue. */
    ssd::DfvPlan plan;
};

/**
 * A query range resolved to per-unit physical page runs. Units with
 * zero features in the range are omitted.
 */
struct ScanPlan
{
    std::vector<UnitScan> units;

    /** Delivered-pages -> ready-features mapping (uniform steps;
     *  shared by every unit of the plan). */
    std::uint64_t pageReadsPerStep = 1;
    std::uint64_t featuresPerStep = 1;

    /** Identity of the plan's page layout: two submissions with equal
     *  signatures (same db, range, level, feature size) produce
     *  identical per-unit plans, the precondition for joining an
     *  in-flight group's read-once-broadcast stream. */
    std::uint64_t signature = 0;
};

/** LPN -> PPN translation hook (the FTL's translate()). */
using LpnTranslator = std::function<std::uint64_t(std::uint64_t)>;

/**
 * Resolve the feature range [db_start, db_end) of a database to the
 * physical page reads each accelerator of `placement` must issue,
 * walking the FTL per covering page (appends may cross superblocks,
 * so the PPN run is not assumed contiguous) and the channel-major
 * striping tables of Geometry.
 *
 * Small features (<= page) pack per page: each unit scans the
 * features of the pages on its flash slice. Large features span
 * ceil(size/page) pages striped across channels; they are dealt
 * round-robin to units and each unit reads its features' real
 * (cross-channel) page addresses.
 *
 * Chip-level plans consume straight from the plane page buffers
 * (transferBytesPerPage 0, Fig. 3); the other levels move the useful
 * payload over the channel bus.
 *
 * `mapping_epoch` (the FTL's remap counter) is mixed into the plan
 * signature: a plan resolved before a migration/relocation/trim must
 * never share a read-once-broadcast group with one resolved after,
 * since the physical pages behind identical logical ranges moved.
 */
ScanPlan resolveScanPlan(const Placement &placement,
                         const ssd::FlashParams &flash,
                         const DbMetadata &db, std::uint64_t db_start,
                         std::uint64_t db_end,
                         const LpnTranslator &translate,
                         std::uint64_t mapping_epoch = 0);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_PLACEMENT_H
