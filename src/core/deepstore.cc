#include "core/deepstore.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "core/array_superblock.h"
#include "sim/clock.h"
#include "ssd/throughput.h"

namespace deepstore::core {

DeepStore::DeepStore(DeepStoreConfig config)
    : config_(std::move(config)), ledger_(events_),
      model_(config_.flash)
{
    // The array owns the member drives; each SsdNode bundles its SSD,
    // FTL, fault domain, DfvStreamService, and QueryScheduler exactly
    // the way the pre-array engine wired its single device (scan
    // streams share the controllers that serve host I/O, so query and
    // host traffic observably contend for planes and channel buses).
    SsdNodeConfig base;
    base.flash = config_.flash;
    base.maxResidentScans = config_.maxResidentScansPerAccelerator;
    base.shardWatchdogSeconds = config_.shardWatchdogSeconds;
    base.maxShardRetries = config_.maxShardRetries;
    base.shardRetryBackoffSeconds = config_.shardRetryBackoffSeconds;
    array_ = std::make_unique<ArrayCoordinator>(events_, config_.array,
                                                std::move(base));
    // Scheduled whole-array power loss (fault schedule): collect the
    // distinct ticks from the base flash config and every explicit
    // node geometry; each fires once, killing in-flight work on every
    // node and replaying recovery.
    std::vector<Tick> loss_ticks;
    if (config_.flash.faults.powerLossAtTick > 0)
        loss_ticks.push_back(config_.flash.faults.powerLossAtTick);
    for (const auto &nf : config_.array.nodes)
        if (nf.faults.powerLossAtTick > 0)
            loss_ticks.push_back(nf.faults.powerLossAtTick);
    std::sort(loss_ticks.begin(), loss_ticks.end());
    loss_ticks.erase(
        std::unique(loss_ticks.begin(), loss_ticks.end()),
        loss_ticks.end());
    for (Tick t : loss_ticks)
        events_.schedule(t, [this] { powerLoss(); });
}

void
DeepStore::stepUntil(const bool &done)
{
    while (!done) {
        if (!events_.step())
            panic("event queue drained while an I/O completion was "
                  "still outstanding");
    }
}

void
DeepStore::writePagesTimedOn(SsdNode &node, std::uint64_t lpn_start,
                             std::uint64_t pages,
                             TimeComponent component)
{
    DS_ASSERT(pages > 0);
    if (pages <= config_.eventSimPageLimit) {
        Tick start = events_.now();
        bool done = false;
        node.hostWrite(lpn_start, pages,
                       [&done](Tick) { done = true; });
        // Step (not run): in-flight queries keep making progress
        // inside the window, and the clock stops exactly at the
        // write's completion tick.
        stepUntil(done);
        ledger_.attribute(ticksToSeconds(events_.now() - start),
                          component);
        return;
    }
    // Closed form: programs overlap across every plane; the channel
    // buses carry one full page each. Still register the mapping.
    for (std::uint64_t i = 0; i < pages; ++i)
        node.registerWrite(lpn_start + i);
    const auto &p = node.flash();
    double planes =
        static_cast<double>(p.channels) * p.chipsPerChannel *
        p.planesPerChip;
    double program_rate = planes / p.programLatency; // pages/s
    double bus_rate = p.internalBandwidth() /
                      static_cast<double>(p.pageBytes);
    // lint:allow(D6: host bulk-ingest fast path, not the scan datapath)
    ledger_.advance(static_cast<double>(pages) /
                        std::min(program_rate, bus_rate),
                    component);
}

std::uint64_t
DeepStore::writeDB(std::shared_ptr<FeatureSource> source)
{
    if (!source || source->count() == 0)
        fatal("writeDB needs a non-empty feature source");
    std::uint64_t feature_bytes =
        static_cast<std::uint64_t>(source->dim()) * kBytesPerFloat;
    // Stripe across the array: one contiguous feature chunk per
    // alive node (plus replicas), each chunk programmed through its
    // own node's channels. A single-node array degenerates to one
    // part at the node's next free LPN — the pre-array layout.
    auto parts = array_->stripeDb(feature_bytes, source->count());
    for (const auto &part : parts)
        writePagesTimedOn(array_->node(part.node), part.lpnStart,
                          part.pages, TimeComponent::HostWrite);

    DbMetadata md;
    md.featureBytes = feature_bytes;
    md.numFeatures = source->count();
    // The global record keys on shard 0's primary placement; the
    // coordinator's shard map is authoritative for scan planning.
    md.startLpn = parts.front().lpnStart;
    md.startPpn = array_->node(parts.front().node)
                      .translate(parts.front().lpnStart);

    std::uint64_t db_id = metadata_.add(md);
    array_->bindDb(db_id, feature_bytes, source->count(), parts);
    sources_[db_id] = std::move(source);
    return db_id;
}

void
DeepStore::appendDB(std::uint64_t db_id,
                    std::shared_ptr<FeatureSource> source)
{
    if (!source || source->count() == 0)
        fatal("appendDB needs a non-empty feature source");
    DbMetadata md = metadata_.lookup(db_id);
    auto &existing = sources_.at(db_id);
    if (source->dim() != existing->dim())
        fatal("appendDB feature dim %lld != database dim %lld",
              static_cast<long long>(source->dim()),
              static_cast<long long>(existing->dim()));

    // Buffered append (§4.7.2): the coordinator grows the last shard
    // on every placement, returning only the whole new pages each
    // node must program.
    auto parts = array_->growDb(db_id, source->count());
    for (const auto &part : parts)
        writePagesTimedOn(array_->node(part.node), part.lpnStart,
                          part.pages, TimeComponent::HostWrite);
    md.numFeatures += source->count();
    metadata_.update(md);
    existing = std::make_shared<CompositeFeatureSource>(
        existing, std::move(source));
    // Cached results may now be stale relative to the larger DB.
    if (queryCache_)
        queryCache_->invalidateAll();
}

std::vector<std::vector<float>>
DeepStore::readDB(std::uint64_t db_id, std::uint64_t start,
                  std::uint64_t num)
{
    const DbMetadata &md = metadata_.lookup(db_id);
    if (start + num > md.numFeatures)
        fatal("readDB range [%llu, %llu) exceeds %llu features",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(start + num),
              static_cast<unsigned long long>(md.numFeatures));
    // Timing: read the covering pages of every overlapped shard over
    // the host interface (nodes serve their segments concurrently).
    auto segs = array_->readSegments(db_id, start, num);
    std::uint64_t pages = 0;
    for (const auto &seg : segs)
        pages += seg.pages;
    if (pages > 0 && pages <= config_.eventSimPageLimit) {
        Tick t0 = events_.now();
        bool done = false;
        std::size_t remaining = segs.size();
        for (const auto &seg : segs)
            array_->node(seg.node).hostRead(
                seg.lpnStart, seg.pages,
                [&done, &remaining](Tick) {
                    if (--remaining == 0)
                        done = true;
                });
        stepUntil(done);
        ledger_.attribute(ticksToSeconds(events_.now() - t0),
                          TimeComponent::HostRead);
    } else if (pages > 0) {
        std::uint64_t bytes = 0;
        for (const auto &seg : segs)
            bytes += seg.pages *
                     array_->node(seg.node).flash().pageBytes;
        // lint:allow(D6: host bulk-read fast path, not the scan datapath)
        ledger_.advance(static_cast<double>(bytes) /
                            config_.flash.externalBandwidth,
                        TimeComponent::HostRead);
    }

    const auto &src = sources_.at(db_id);
    std::vector<std::vector<float>> out;
    out.reserve(num);
    for (std::uint64_t i = 0; i < num; ++i)
        out.push_back(src->featureAt(start + i));
    return out;
}

std::uint64_t
DeepStore::loadModel(const std::vector<std::uint8_t> &blob)
{
    return loadModel(nn::deserializeModel(blob));
}

std::uint64_t
DeepStore::loadModel(nn::ModelBundle bundle)
{
    bundle.model.validate();
    std::uint64_t id = nextModelId_++;
    // Emplace first: the executor holds references into the stored
    // bundle, and map nodes are address-stable.
    LoadedModel &lm = models_[id];
    lm.bundle = std::move(bundle);
    lm.executor = std::make_unique<nn::Executor>(lm.bundle.model,
                                                 lm.bundle.weights);
    // Model upload: weights travel over the host interface into SSD
    // DRAM (§4.2).
    // lint:allow(D6: host-interface model upload, not the scan datapath)
    ledger_.advance(
        static_cast<double>(lm.bundle.model.totalWeightBytes()) /
            config_.flash.externalBandwidth,
        TimeComponent::ModelUpload);
    return id;
}

const DeepStore::LoadedModel &
DeepStore::lookupModel(std::uint64_t model_id) const
{
    auto it = models_.find(model_id);
    if (it == models_.end())
        fatal("unknown model_id %llu",
              static_cast<unsigned long long>(model_id));
    return it->second;
}

void
DeepStore::setQC(std::uint64_t qcn_model_id, double threshold,
                 double qcn_accuracy, std::size_t capacity)
{
    const LoadedModel &qcn = lookupModel(qcn_model_id);
    qcnModelId_ = qcn_model_id;
    QueryCacheConfig cfg;
    cfg.capacity = capacity;
    cfg.threshold = threshold;
    cfg.qcnAccuracy = qcn_accuracy;
    // Score via the functional QCN over remembered query features.
    queryCache_ = std::make_unique<QueryCache>(
        cfg, [this, &qcn](std::uint64_t a, std::uint64_t b) {
            DS_ASSERT(a < seenQueries_.size());
            DS_ASSERT(b < seenQueries_.size());
            return static_cast<double>(
                qcn.executor->score(seenQueries_[a],
                                    seenQueries_[b]));
        });
}

std::uint64_t
DeepStore::query(const std::vector<float> &qfv, std::size_t k,
                 std::uint64_t model_id, std::uint64_t db_id,
                 std::uint64_t db_start, std::uint64_t db_end,
                 std::optional<Level> level_opt,
                 double deadline_seconds)
{
    const LoadedModel &m = lookupModel(model_id);
    const DbMetadata &db = metadata_.lookup(db_id);
    if (db_end == 0)
        db_end = db.numFeatures;
    if (db_start >= db_end || db_end > db.numFeatures)
        fatal("query range [%llu, %llu) invalid for %llu features",
              static_cast<unsigned long long>(db_start),
              static_cast<unsigned long long>(db_end),
              static_cast<unsigned long long>(db.numFeatures));
    if (static_cast<std::int64_t>(qfv.size()) !=
        m.bundle.model.featureDim())
        fatal("query feature size %zu != model dim %lld", qfv.size(),
              static_cast<long long>(m.bundle.model.featureDim()));
    if (qfv.size() * kBytesPerFloat != db.featureBytes)
        fatal("query feature size %zu B != database feature size "
              "%llu B",
              qfv.size() * kBytesPerFloat,
              static_cast<unsigned long long>(db.featureBytes));
    Level level = level_opt.value_or(config_.defaultLevel);

    LevelPerf perf =
        model_.evaluateModel(level, m.bundle.model, db.featureBytes);
    if (!perf.supported)
        fatal("accelerator level %s cannot execute model '%s'",
              toString(level), m.bundle.model.name().c_str());

    auto source = sources_.at(db_id);
    std::uint64_t this_query = seenQueries_.size();
    seenQueries_.push_back(qfv);
    std::uint64_t qid = nextQueryId_++;

    // Probe sizing is shared by the hit and miss paths; the probe
    // itself runs once, on the home sub-query. QCN lookups fan out
    // across the channel-level accelerators (§4.6): each unit pulls
    // its share of the cached QFVs over the node's DRAM link and
    // scores it on its array, behind whatever scan work already holds
    // those resources.
    std::uint32_t probe_units = 0;
    Tick probe_ticks = 0;
    std::uint64_t probe_bytes = 0;
    CacheLookup hit;
    if (queryCache_) {
        const LoadedModel &qcn = lookupModel(qcnModelId_);
        // The probe is decided functionally at submit time against
        // the cache state of *completed* queries; in-flight queries
        // insert only when they complete.
        hit = queryCache_->lookup(this_query);
        LevelPerf qcn_perf = model_.evaluateModel(
            Level::ChannelLevel, qcn.bundle.model,
            static_cast<std::uint64_t>(
                qcn.bundle.model.featureDim()) *
                kBytesPerFloat);
        probe_units = qcn_perf.placement.numAccelerators;
        if (hit.entriesScanned > 0 && probe_units > 0) {
            const std::uint64_t per_unit =
                (hit.entriesScanned + probe_units - 1) / probe_units;
            probe_ticks =
                sim::Clock(qcn_perf.placement.array.frequencyHz)
                    .cyclesToTicks(qcn_perf.modelRun.totalCycles() *
                                   per_unit);
            probe_bytes =
                per_unit *
                static_cast<std::uint64_t>(
                    qcn.bundle.model.featureDim()) *
                kBytesPerFloat;
        }
    }

    const LoadedModel *mp = &m;
    // Builds one shard's sub-query submission. Captures by value
    // only: the coordinator keeps this builder and re-invokes it at
    // later ticks when a node death re-stripes the shard onto a
    // replica. The scan lowering (plan, layer bursts, weight leg)
    // comes from the *target node's* model, so heterogeneous
    // geometries place correctly; the flash term is real FlashCommand
    // reads resolved through that node's FTL.
    auto builder = [this, level, mp, k, deadline_seconds, db_id,
                    probe_units, probe_ticks, probe_bytes](
                       const SubTarget &t, std::uint64_t sub_id) {
        SsdNode &nd = array_->node(t.node);
        LevelPerf nperf = nd.model().evaluateModel(
            level, mp->bundle.model, t.localMd.featureBytes);
        if (!nperf.supported)
            fatal("accelerator level %s cannot execute model '%s' "
                  "on array node %u",
                  toString(level), mp->bundle.model.name().c_str(),
                  t.node);
        QuerySubmission s;
        s.queryId = sub_id;
        s.level = level;
        s.numAccelerators = nperf.placement.numAccelerators;
        ScanPlan plan = nd.resolvePlan(nperf.placement, t.localMd,
                                       t.localStart, t.localEnd);
        s.shards = std::move(plan.units);
        // Page-retry knobs ride on each shard's DFV plan (the stream
        // layer owns the bounded reissue + backoff machinery).
        for (auto &shard : s.shards) {
            shard.plan.maxPageRetries = config_.maxPageRetries;
            shard.plan.pageRetryBackoffSeconds =
                config_.pageRetryBackoffSeconds;
        }
        s.pageReadsPerStep = plan.pageReadsPerStep;
        s.featuresPerStep = plan.featuresPerStep;
        s.planSignature = plan.signature;
        s.deadlineSeconds = deadline_seconds;
        s.layerBurstTicksPerFeature = layerBurstTicks(nperf);
        s.featuresPerSlot = std::max<std::uint64_t>(
            1,
            static_cast<std::uint64_t>(nperf.placement.wsGroupSize));
        s.weightBytesPerSlot = nperf.excessWeightBytesPerSlot;
        s.weightBroadcast = nperf.weightBroadcast;
        // The reduce gathers each shard's partial top-K over the
        // node's DRAM link before the merge on the embedded cores.
        s.reduceBytesPerShard =
            std::max<std::uint64_t>(k, 1) * sizeof(ScoredResult);
        s.dbKey = db_id;
        if (t.home) {
            s.probeUnits = probe_units;
            s.probeComputeTicksPerUnit = probe_ticks;
            s.probeDramBytesPerUnit = probe_bytes;
        }
        return s;
    };

    if (queryCache_ && hit.hit) {
        // Cached features already sit in SSD DRAM, so the hit path
        // rescores them on one channel-level accelerator of the home
        // node: a DRAM pull of the cached vectors plus the SCN burst
        // (§4.2). No scatter — the array submits a single sub-query.
        LevelPerf compute_perf = model_.evaluateModel(
            Level::ChannelLevel, m.bundle.model, db.featureBytes);
        auto target = array_->homeTarget(db_id, db_start, db_end);
        std::uint32_t node_i;
        QuerySubmission sub;
        if (target) {
            node_i = target->node;
            sub = builder(*target, qid);
        } else {
            // Every overlapping shard lost its last replica: the hit
            // still rescores from DRAM on a surviving node, with no
            // flash leg.
            node_i = array_->homeNodeFor(db_id, db_start);
            sub.queryId = qid;
            sub.level = level;
            sub.numAccelerators = perf.placement.numAccelerators;
            sub.dbKey = db_id;
            sub.probeUnits = probe_units;
            sub.probeComputeTicksPerUnit = probe_ticks;
            sub.probeDramBytesPerUnit = probe_bytes;
        }
        sub.cacheHit = true;
        sub.hitComputeTicks =
            sim::Clock(compute_perf.placement.array.frequencyHz)
                .cyclesToTicks(compute_perf.modelRun.totalCycles() *
                               hit.cachedResults.size());
        sub.hitDramBytes = hit.cachedResults.size() * db.featureBytes;
        auto cached = std::move(hit.cachedResults);
        std::vector<float> q = qfv;
        auto done = [this, qid, k, mp, source, cached,
                     q = std::move(q)](const ArrayQueryStats &ast) {
            QueryResult res;
            res.queryId = qid;
            res.cacheHit = true;
            res.outcome = ast.outcome;
            res.coverageFraction = ast.coverageFraction;
            if (res.outcome == QueryOutcome::Success) {
                res.featuresScanned = cached.size();
                // Re-run the SCN on only the cached top-K features.
                TopK topk(std::max<std::size_t>(k, 1));
                for (const auto &c : cached) {
                    auto dfv = source->featureAt(c.featureId);
                    float s = mp->executor->score(q, dfv);
                    topk.insert(
                        ScoredResult{c.featureId, c.objectId, s});
                }
                res.topK = topk.results();
            }
            res.latencySeconds =
                ticksToSeconds(ast.completeTick - ast.submitTick);
            const double probe_s = ticksToSeconds(ast.run.probeTicks);
            res.qcProbeSeconds = probe_s;
            res.computeStallSeconds =
                ticksToSeconds(ast.run.computeStallTicks);
            res.backpressureSeconds =
                ticksToSeconds(ast.run.backpressureTicks);
            res.nocWaitSeconds = ticksToSeconds(ast.nocWaitTicks);
            res.mergeSeconds = ticksToSeconds(ast.mergeTicks);
            res.interNodeBytes = ast.interNodeBytes;
            res.nodesParticipating = ast.nodesParticipating;
            res.redispatches = ast.redispatches;
            ledger_.attribute(probe_s, TimeComponent::QcLookup);
            ledger_.attribute(
                std::max(0.0, res.latencySeconds - probe_s),
                TimeComponent::CacheHit);
            finishQuery(qid, std::move(res));
        };
        array_->submitSingle(qid, node_i, std::move(sub),
                             std::move(done));
        return qid;
    }

    // Miss path: scatter one sub-query per overlapped shard. The
    // scatter leg ships the QFV + descriptor to each remote node;
    // the merge leg ships each remote node's candidate top-K back.
    const std::uint64_t scatter_bytes = db.featureBytes + 64;
    const std::uint64_t merge_bytes =
        std::max<std::uint64_t>(k, 1) * sizeof(ScoredResult);
    DbMetadata dbmd = db;
    std::vector<float> q = qfv;
    auto done = [this, qid, this_query, k, mp, dbmd, db_start, db_end,
                 n_accel = perf.placement.numAccelerators, source,
                 q = std::move(q)](const ArrayQueryStats &ast) {
        QueryResult res;
        res.queryId = qid;
        res.cacheHit = false;
        res.outcome = ast.outcome;
        res.coverageFraction = ast.coverageFraction;
        // Degraded queries report the top-K over the prefix of the
        // range that was actually scanned; partial results never
        // seed the Query Cache.
        const std::uint64_t range = db_end - db_start;
        res.featuresScanned = static_cast<std::uint64_t>(
            res.coverageFraction * static_cast<double>(range));
        res.featuresScanned = std::min(res.featuresScanned, range);
        if (res.featuresScanned > 0)
            res.topK =
                scanTopK(q, k, *mp, dbmd, db_start,
                         db_start + res.featuresScanned, n_accel,
                         source);
        if (queryCache_ && res.outcome == QueryOutcome::Success)
            queryCache_->insert(this_query, res.topK);
        res.latencySeconds =
            ticksToSeconds(ast.completeTick - ast.submitTick);
        const double probe_s = ticksToSeconds(ast.run.probeTicks);
        res.qcProbeSeconds = probe_s;
        res.computeStallSeconds =
            ticksToSeconds(ast.run.computeStallTicks);
        res.backpressureSeconds =
            ticksToSeconds(ast.run.backpressureTicks);
        res.nocWaitSeconds = ticksToSeconds(ast.nocWaitTicks);
        res.mergeSeconds = ticksToSeconds(ast.mergeTicks);
        res.interNodeBytes = ast.interNodeBytes;
        res.nodesParticipating = ast.nodesParticipating;
        res.redispatches = ast.redispatches;
        ledger_.attribute(probe_s, TimeComponent::QcLookup);
        ledger_.attribute(
            std::max(0.0, res.latencySeconds - probe_s),
            TimeComponent::Scan);
        finishQuery(qid, std::move(res));
    };
    array_->scatter(qid, db_id, db_start, db_end, scatter_bytes,
                    merge_bytes, builder, std::move(done));
    return qid;
}

std::uint64_t
DeepStore::querySync(const std::vector<float> &qfv, std::size_t k,
                     std::uint64_t model_id, std::uint64_t db_id,
                     std::uint64_t db_start, std::uint64_t db_end,
                     std::optional<Level> level_opt)
{
    std::uint64_t qid =
        query(qfv, k, model_id, db_id, db_start, db_end, level_opt);
    waitFor(qid);
    return qid;
}

std::optional<QueryState>
DeepStore::poll(std::uint64_t query_id) const
{
    return array_->state(query_id);
}

bool
DeepStore::cancel(std::uint64_t query_id)
{
    return array_->cancel(query_id);
}

bool
DeepStore::step()
{
    return events_.step();
}

void
DeepStore::drain()
{
    while (array_->inFlight() > 0) {
        if (!events_.step())
            panic("scheduler stalled: %zu queries in flight with an "
                  "empty event queue",
                  array_->inFlight());
    }
}

void
DeepStore::waitFor(std::uint64_t query_id)
{
    auto st = array_->state(query_id);
    if (!st)
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    while (!isTerminal(*array_->state(query_id))) {
        if (!events_.step())
            panic("scheduler stalled waiting for query %llu",
                  static_cast<unsigned long long>(query_id));
    }
}

void
DeepStore::onComplete(std::uint64_t query_id,
                      std::function<void(const QueryResult &)> cb)
{
    DS_ASSERT(cb);
    auto it = results_.find(query_id);
    if (it != results_.end()) {
        cb(it->second);
        return;
    }
    if (!array_->state(query_id))
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    completionCallbacks_[query_id].push_back(std::move(cb));
}

void
DeepStore::finishQuery(std::uint64_t query_id, QueryResult res)
{
    auto [it, inserted] = results_.emplace(query_id, std::move(res));
    DS_ASSERT(inserted);
    auto cb_it = completionCallbacks_.find(query_id);
    if (cb_it == completionCallbacks_.end())
        return;
    auto callbacks = std::move(cb_it->second);
    completionCallbacks_.erase(cb_it);
    for (auto &cb : callbacks)
        cb(it->second);
}

std::vector<ScoredResult>
DeepStore::scanTopK(const std::vector<float> &qfv, std::size_t k,
                    const LoadedModel &m, const DbMetadata &db,
                    std::uint64_t db_start, std::uint64_t db_end,
                    std::uint32_t n_accel,
                    const std::shared_ptr<FeatureSource> &source)
    const
{
    // Map-reduce across accelerators (§4.7.1): each accelerator
    // scans its stripe with a private top-K, merged by the engine.
    std::vector<TopK> partials;
    partials.reserve(n_accel);
    for (std::uint32_t a = 0; a < n_accel; ++a)
        partials.emplace_back(std::max<std::size_t>(k, 1));

    for (std::uint64_t i = db_start; i < db_end; ++i) {
        auto dfv = source->featureAt(i);
        float s = m.executor->score(qfv, dfv);
        std::uint64_t ppn =
            db.featurePpn(i, config_.flash.pageBytes);
        partials[i % n_accel].insert(ScoredResult{i, ppn, s});
    }
    TopK merged(std::max<std::size_t>(k, 1));
    for (const auto &p : partials)
        merged.merge(p);
    return merged.results();
}

void
DeepStore::hostRead(std::uint64_t lpn_start, std::uint64_t count,
                    ssd::Completion on_complete)
{
    array_->node(0).hostRead(lpn_start, count,
                             std::move(on_complete));
}

void
DeepStore::hostWrite(std::uint64_t lpn_start, std::uint64_t count,
                     ssd::Completion on_complete)
{
    array_->node(0).hostWrite(lpn_start, count,
                              std::move(on_complete));
}

void
DeepStore::hostTrim(std::uint64_t lpn_start, std::uint64_t count,
                    ssd::Completion on_complete)
{
    array_->node(0).hostTrim(lpn_start, count,
                             std::move(on_complete));
}

std::uint64_t
DeepStore::persistMetadata()
{
    // §4.4 metadata persistence, generalized to the array (DESIGN.md
    // §12): the metadata table and the coordinator's shard map are
    // bundled into one epoch-stamped, checksummed superblock image
    // and written to the reserved block of *every* alive node, so
    // recovery survives any minority of torn or dead replicas —
    // including node 0's.
    SuperblockImage image;
    image.epoch = ++metadataEpoch_;
    image.metadataBlob = metadata_.serialize();
    image.shardMapBlob = array_->serializeShardMap();
    const std::vector<std::uint8_t> encoded =
        encodeSuperblock(image);

    const std::uint64_t gen = metadataFlushGen_;
    Tick t0 = events_.now();
    std::size_t remaining = 0;
    std::uint64_t node0_pages = 0;
    for (std::uint32_t n = 0; n < array_->nodeCount(); ++n) {
        SsdNode &nd = array_->node(n);
        if (!nd.alive())
            continue;
        const std::uint64_t page_bytes = nd.flash().pageBytes;
        const std::uint64_t pages =
            (encoded.size() + page_bytes - 1) / page_bytes;
        if (n == 0)
            node0_pages = pages;
        const std::uint64_t reserved = nd.reservedMetadataLpn();
        // Rewritten in place on every persist; trim first so the
        // block-level FTL does not charge a migration.
        nd.trimPages(reserved, pages);
        remaining += pages;
        for (std::uint64_t i = 0; i < pages; ++i) {
            const std::size_t off =
                static_cast<std::size_t>(i * page_bytes);
            const std::size_t len = std::min<std::size_t>(
                page_bytes, encoded.size() - off);
            std::vector<std::uint8_t> slice(
                encoded.begin() + static_cast<long>(off),
                encoded.begin() + static_cast<long>(off + len));
            // One program per page, its payload committed at that
            // program's completion tick: the capacitor-backed flush
            // that loses power mid-way leaves this replica torn —
            // some pages new, the rest stale — which recovery
            // detects by checksum.
            nd.hostWrite(
                reserved + i, 1,
                [this, gen, n, lpn = reserved + i,
                 slice = std::move(slice),
                 &remaining](Tick) mutable {
                    if (gen != metadataFlushGen_)
                        return;
                    array_->node(n).storePayload(lpn,
                                                 std::move(slice));
                    --remaining;
                });
        }
    }
    // Interruptible wait: a power loss mid-flush bumps the flush
    // generation and the uncommitted pages are abandoned.
    while (remaining > 0 && gen == metadataFlushGen_) {
        if (!events_.step())
            panic("event queue drained while a metadata flush was "
                  "still outstanding");
    }
    ledger_.attribute(ticksToSeconds(events_.now() - t0),
                      TimeComponent::Metadata);
    return node0_pages;
}

void
DeepStore::reloadMetadata()
{
    if (metadataEpoch_ == 0)
        fatal("no metadata has been persisted to the reserved block");
    // Read every alive node's superblock replica through the normal
    // host-read path (header page first, then the remainder the
    // header promises), discard torn or corrupt copies by checksum,
    // and adopt the highest surviving epoch (ties: lowest node).
    Tick t0 = events_.now();
    std::optional<SuperblockImage> best;
    for (std::uint32_t n = 0; n < array_->nodeCount(); ++n) {
        SsdNode &nd = array_->node(n);
        if (!nd.alive())
            continue;
        const std::uint64_t page_bytes = nd.flash().pageBytes;
        const std::uint64_t reserved = nd.reservedMetadataLpn();
        const std::uint64_t region_pages =
            nd.flash().totalPages() - reserved;
        bool done = false;
        nd.hostRead(reserved, 1, [&done](Tick) { done = true; });
        stepUntil(done);
        const auto *first = nd.payload(reserved);
        if (!first)
            continue; // this replica never saw a persist
        std::vector<std::uint8_t> blob = *first;
        std::uint64_t total_pages = 1;
        const auto promised = superblockImageBytes(blob);
        if (promised &&
            *promised / page_bytes < region_pages)
            total_pages =
                (*promised + page_bytes - 1) / page_bytes;
        if (total_pages > 1) {
            bool rest = false;
            nd.hostRead(reserved + 1, total_pages - 1,
                        [&rest](Tick) { rest = true; });
            stepUntil(rest);
            for (std::uint64_t i = 1; i < total_pages; ++i) {
                const auto *page = nd.payload(reserved + i);
                if (!page) {
                    blob.clear(); // short replica: torn
                    break;
                }
                blob.insert(blob.end(), page->begin(), page->end());
            }
        }
        auto image = decodeSuperblock(blob);
        if (!image) {
            array_->noteTornSuperblock();
            continue;
        }
        if (!best || image->epoch > best->epoch)
            best = std::move(image);
    }
    ledger_.attribute(ticksToSeconds(events_.now() - t0),
                      TimeComponent::Metadata);
    if (!best)
        fatal("metadata recovery: no intact superblock replica "
              "survived on any alive node");
    metadata_.clear();
    metadata_.deserialize(best->metadataBlob);
    array_->restoreShardMap(best->shardMapBlob);
    metadataEpoch_ = best->epoch;
}

void
DeepStore::powerLoss()
{
    // In-flight metadata-flush commits die with the capacitors:
    // pages not yet completed at this tick never reach their
    // replicas (torn-image modeling).
    ++metadataFlushGen_;
    // Order matters: each node's scheduler computes its killed
    // sub-queries' remnant coverage through their still-open scan
    // groups/streams, so the coordinator fails all in-flight work
    // (finalizing every aggregate) before any volatile device state
    // is dropped.
    array_->powerLoss();
    // Volatile metadata cache is gone; recover from the replicated
    // superblocks when a persist exists (replayed through the normal
    // host-read path, charged to the Metadata ledger component). The
    // coordinator's striping rebuilds from any surviving majority.
    if (metadataEpoch_ > 0) {
        reloadMetadata();
    } else {
        metadata_.clear();
    }
}

void
DeepStore::dumpStats(std::ostream &os) const
{
    os << "engine.databases = " << metadata_.size() << "\n";
    os << "engine.models = " << models_.size() << "\n";
    os << "engine.queries = " << results_.size() << "\n";
    os << "engine.inFlight = " << array_->inFlight() << "\n";
    std::size_t completed = 0;
    for (std::uint32_t i = 0; i < array_->nodeCount(); ++i)
        completed += array_->node(i).scheduler().completedCount();
    os << "engine.completed = " << completed << "\n";
    os << "engine.simulatedSeconds = " << ledger_.seconds() << "\n";
    ledger_.dump(os);
    if (queryCache_) {
        os << "engine.qc.hits = " << queryCache_->hits() << "\n";
        os << "engine.qc.misses = " << queryCache_->misses() << "\n";
        os << "engine.qc.entries = " << queryCache_->size() << "\n";
    }
    array_->dumpStats(os);
}

FetchResult
DeepStore::tryGetResults(std::uint64_t query_id) const
{
    auto it = results_.find(query_id);
    if (it != results_.end())
        return FetchResult{FetchStatus::Ready, &it->second};
    auto st = array_->state(query_id);
    if (st && !isTerminal(*st))
        return FetchResult{FetchStatus::InFlight, nullptr};
    return FetchResult{FetchStatus::Unknown, nullptr};
}

const QueryResult &
DeepStore::getResults(std::uint64_t query_id) const
{
    FetchResult fr = tryGetResults(query_id);
    switch (fr.status) {
    case FetchStatus::Ready:
        return *fr.result;
    case FetchStatus::InFlight:
        fatal("query %llu is still in flight (state %s); use "
              "tryGetResults() for a retryable probe, or poll()/"
              "drain() before getResults()",
              static_cast<unsigned long long>(query_id),
              toString(*array_->state(query_id)));
    case FetchStatus::Unknown:
    default:
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    }
}

CompositeFeatureSource::CompositeFeatureSource(
    std::shared_ptr<FeatureSource> first,
    std::shared_ptr<FeatureSource> second)
    : first_(std::move(first)), second_(std::move(second))
{
    DS_ASSERT(first_ && second_);
    DS_ASSERT(first_->dim() == second_->dim());
}

std::uint64_t
CompositeFeatureSource::count() const
{
    return first_->count() + second_->count();
}

std::vector<float>
CompositeFeatureSource::featureAt(std::uint64_t index) const
{
    if (index < first_->count())
        return first_->featureAt(index);
    return second_->featureAt(index - first_->count());
}

} // namespace deepstore::core
