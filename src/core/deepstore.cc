#include "core/deepstore.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/clock.h"
#include "ssd/throughput.h"

namespace deepstore::core {

DeepStore::DeepStore(DeepStoreConfig config)
    : config_(config), ledger_(events_),
      ssd_(std::make_unique<ssd::Ssd>(events_, config.flash)),
      model_(config.flash)
{
    // Scan streams issue real flash reads through the *same*
    // per-channel controllers that serve hostRead/hostWrite and
    // metadata persistence, so query and host traffic observably
    // contend for planes and channel buses. (The pre-refactor global
    // accelerator window — deferring all host I/O past the scan
    // horizon — is gone; contention is physical now.)
    dfv_ = std::make_unique<ssd::DfvStreamService>(
        events_,
        [this](std::uint32_t channel) -> ssd::FlashController & {
            return ssd_->controller(channel);
        },
        ssd_->stats());
    QuerySchedulerConfig scfg;
    scfg.maxResidentScans = config_.maxResidentScansPerAccelerator;
    // The scheduler's accelerator-unit fault domain shares the flash
    // fault schedule's seed and unit-failure list.
    scfg.faults = config_.flash.faults;
    scfg.shardWatchdogSeconds = config_.shardWatchdogSeconds;
    scfg.maxShardRetries = config_.maxShardRetries;
    scfg.shardRetryBackoffSeconds = config_.shardRetryBackoffSeconds;
    scfg.unitsAtLevel[static_cast<std::size_t>(Level::SsdLevel)] = 1;
    scfg.unitsAtLevel[static_cast<std::size_t>(Level::ChannelLevel)] =
        config_.flash.channels;
    scfg.unitsAtLevel[static_cast<std::size_t>(Level::ChipLevel)] =
        config_.flash.channels * config_.flash.chipsPerChannel;
    // Weight streams, QC probes, hit rescores, and top-K reduces all
    // arbitrate on the SSD's one DRAM link — the same link FTL
    // relocation copies stage through.
    scfg.dram = &ssd_->dramLink();
    scheduler_ = std::make_unique<QueryScheduler>(
        events_, scfg, *dfv_, &ssd_->stats());
    // Scheduled whole-device power loss (fault schedule): the event
    // fires once, killing in-flight work and replaying recovery.
    if (config_.flash.faults.powerLossAtTick > 0) {
        events_.schedule(config_.flash.faults.powerLossAtTick,
                         [this] { powerLoss(); });
    }
}

void
DeepStore::stepUntil(const bool &done)
{
    while (!done) {
        if (!events_.step())
            panic("event queue drained while an I/O completion was "
                  "still outstanding");
    }
}

void
DeepStore::writePagesTimed(std::uint64_t lpn_start,
                           std::uint64_t pages,
                           TimeComponent component)
{
    DS_ASSERT(pages > 0);
    if (pages <= config_.eventSimPageLimit) {
        Tick start = events_.now();
        bool done = false;
        ssd_->hostWrite(lpn_start, pages,
                        [&done](Tick) { done = true; });
        // Step (not run): in-flight queries keep making progress
        // inside the window, and the clock stops exactly at the
        // write's completion tick.
        stepUntil(done);
        ledger_.attribute(ticksToSeconds(events_.now() - start),
                          component);
        return;
    }
    // Closed form: programs overlap across every plane; the channel
    // buses carry one full page each. Still register the mapping.
    for (std::uint64_t i = 0; i < pages; ++i)
        ssd_->ftl().write(lpn_start + i);
    const auto &p = config_.flash;
    double planes =
        static_cast<double>(p.channels) * p.chipsPerChannel *
        p.planesPerChip;
    double program_rate = planes / p.programLatency; // pages/s
    double bus_rate = p.internalBandwidth() /
                      static_cast<double>(p.pageBytes);
    // lint:allow(D6: host bulk-ingest fast path, not the scan datapath)
    ledger_.advance(static_cast<double>(pages) /
                        std::min(program_rate, bus_rate),
                    component);
}

std::uint64_t
DeepStore::writeDB(std::shared_ptr<FeatureSource> source)
{
    if (!source || source->count() == 0)
        fatal("writeDB needs a non-empty feature source");
    std::uint64_t feature_bytes =
        static_cast<std::uint64_t>(source->dim()) * kBytesPerFloat;
    DbMetadata md;
    md.featureBytes = feature_bytes;
    md.numFeatures = source->count();
    md.startLpn = nextFreeLpn_;
    std::uint64_t pages = md.pageCount(config_.flash.pageBytes);
    nextFreeLpn_ += pages;

    writePagesTimed(md.startLpn, pages, TimeComponent::HostWrite);
    md.startPpn = ssd_->ftl().translate(md.startLpn);

    std::uint64_t db_id = metadata_.add(md);
    sources_[db_id] = std::move(source);
    return db_id;
}

void
DeepStore::appendDB(std::uint64_t db_id,
                    std::shared_ptr<FeatureSource> source)
{
    if (!source || source->count() == 0)
        fatal("appendDB needs a non-empty feature source");
    DbMetadata md = metadata_.lookup(db_id);
    auto &existing = sources_.at(db_id);
    if (source->dim() != existing->dim())
        fatal("appendDB feature dim %lld != database dim %lld",
              static_cast<long long>(source->dim()),
              static_cast<long long>(existing->dim()));

    std::uint64_t old_pages = md.pageCount(config_.flash.pageBytes);
    md.numFeatures += source->count();
    std::uint64_t new_pages = md.pageCount(config_.flash.pageBytes);
    // Buffered append (§4.7.2): only whole new pages are programmed.
    if (new_pages > old_pages) {
        std::uint64_t grow = new_pages - old_pages;
        // The append must land directly after the database; DeepStore
        // reserves the LPN range when that is possible.
        if (md.startLpn + old_pages != nextFreeLpn_)
            fatal("appendDB: database %llu is not the most recently "
                  "written database; append would break striping",
                  static_cast<unsigned long long>(db_id));
        writePagesTimed(md.startLpn + old_pages, grow,
                        TimeComponent::HostWrite);
        nextFreeLpn_ += grow;
    }
    metadata_.update(md);
    existing = std::make_shared<CompositeFeatureSource>(
        existing, std::move(source));
    // Cached results may now be stale relative to the larger DB.
    if (queryCache_)
        queryCache_->invalidateAll();
}

std::vector<std::vector<float>>
DeepStore::readDB(std::uint64_t db_id, std::uint64_t start,
                  std::uint64_t num)
{
    const DbMetadata &md = metadata_.lookup(db_id);
    if (start + num > md.numFeatures)
        fatal("readDB range [%llu, %llu) exceeds %llu features",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(start + num),
              static_cast<unsigned long long>(md.numFeatures));
    // Timing: read the covering pages over the host interface.
    ssd::FeatureLayout layout{md.featureBytes, config_.flash.pageBytes};
    std::uint64_t first_page, last_page;
    if (md.featureBytes <= config_.flash.pageBytes) {
        first_page = start / layout.featuresPerPage();
        last_page = (start + num - 1) / layout.featuresPerPage();
    } else {
        first_page = start * layout.pagesPerFeature();
        last_page =
            (start + num) * layout.pagesPerFeature() - 1;
    }
    std::uint64_t pages = last_page - first_page + 1;
    if (pages <= config_.eventSimPageLimit) {
        Tick t0 = events_.now();
        bool done = false;
        ssd_->hostRead(md.startLpn + first_page, pages,
                       [&done](Tick) { done = true; });
        stepUntil(done);
        ledger_.attribute(ticksToSeconds(events_.now() - t0),
                          TimeComponent::HostRead);
    } else {
        // lint:allow(D6: host bulk-read fast path, not the scan datapath)
        ledger_.advance(
            static_cast<double>(pages * config_.flash.pageBytes) /
                config_.flash.externalBandwidth,
            TimeComponent::HostRead);
    }

    const auto &src = sources_.at(db_id);
    std::vector<std::vector<float>> out;
    out.reserve(num);
    for (std::uint64_t i = 0; i < num; ++i)
        out.push_back(src->featureAt(start + i));
    return out;
}

std::uint64_t
DeepStore::loadModel(const std::vector<std::uint8_t> &blob)
{
    return loadModel(nn::deserializeModel(blob));
}

std::uint64_t
DeepStore::loadModel(nn::ModelBundle bundle)
{
    bundle.model.validate();
    std::uint64_t id = nextModelId_++;
    // Emplace first: the executor holds references into the stored
    // bundle, and map nodes are address-stable.
    LoadedModel &lm = models_[id];
    lm.bundle = std::move(bundle);
    lm.executor = std::make_unique<nn::Executor>(lm.bundle.model,
                                                 lm.bundle.weights);
    // Model upload: weights travel over the host interface into SSD
    // DRAM (§4.2).
    // lint:allow(D6: host-interface model upload, not the scan datapath)
    ledger_.advance(
        static_cast<double>(lm.bundle.model.totalWeightBytes()) /
            config_.flash.externalBandwidth,
        TimeComponent::ModelUpload);
    return id;
}

const DeepStore::LoadedModel &
DeepStore::lookupModel(std::uint64_t model_id) const
{
    auto it = models_.find(model_id);
    if (it == models_.end())
        fatal("unknown model_id %llu",
              static_cast<unsigned long long>(model_id));
    return it->second;
}

void
DeepStore::setQC(std::uint64_t qcn_model_id, double threshold,
                 double qcn_accuracy, std::size_t capacity)
{
    const LoadedModel &qcn = lookupModel(qcn_model_id);
    qcnModelId_ = qcn_model_id;
    QueryCacheConfig cfg;
    cfg.capacity = capacity;
    cfg.threshold = threshold;
    cfg.qcnAccuracy = qcn_accuracy;
    // Score via the functional QCN over remembered query features.
    queryCache_ = std::make_unique<QueryCache>(
        cfg, [this, &qcn](std::uint64_t a, std::uint64_t b) {
            DS_ASSERT(a < seenQueries_.size());
            DS_ASSERT(b < seenQueries_.size());
            return static_cast<double>(
                qcn.executor->score(seenQueries_[a],
                                    seenQueries_[b]));
        });
}

std::uint64_t
DeepStore::query(const std::vector<float> &qfv, std::size_t k,
                 std::uint64_t model_id, std::uint64_t db_id,
                 std::uint64_t db_start, std::uint64_t db_end,
                 std::optional<Level> level_opt,
                 double deadline_seconds)
{
    const LoadedModel &m = lookupModel(model_id);
    const DbMetadata &db = metadata_.lookup(db_id);
    if (db_end == 0)
        db_end = db.numFeatures;
    if (db_start >= db_end || db_end > db.numFeatures)
        fatal("query range [%llu, %llu) invalid for %llu features",
              static_cast<unsigned long long>(db_start),
              static_cast<unsigned long long>(db_end),
              static_cast<unsigned long long>(db.numFeatures));
    if (static_cast<std::int64_t>(qfv.size()) !=
        m.bundle.model.featureDim())
        fatal("query feature size %zu != model dim %lld", qfv.size(),
              static_cast<long long>(m.bundle.model.featureDim()));
    if (qfv.size() * kBytesPerFloat != db.featureBytes)
        fatal("query feature size %zu B != database feature size "
              "%llu B",
              qfv.size() * kBytesPerFloat,
              static_cast<unsigned long long>(db.featureBytes));
    Level level = level_opt.value_or(config_.defaultLevel);

    LevelPerf perf =
        model_.evaluateModel(level, m.bundle.model, db.featureBytes);
    if (!perf.supported)
        fatal("accelerator level %s cannot execute model '%s'",
              toString(level), m.bundle.model.name().c_str());

    auto source = sources_.at(db_id);
    std::uint64_t this_query = seenQueries_.size();
    seenQueries_.push_back(qfv);
    std::uint64_t qid = nextQueryId_++;

    QuerySubmission sub;
    sub.queryId = qid;
    sub.level = level;
    sub.numAccelerators = perf.placement.numAccelerators;
    // Resolve the query range to per-unit physical page runs via the
    // FTL/striping tables: the Scanning stage's flash term comes from
    // real FlashCommand reads, not analytic bandwidth. Compute is the
    // systolic slot schedule (per-layer bursts per feature) and the
    // weight leg is per-slot traffic on the shared DRAM link — the
    // same lowering the standalone AccelPipeline consumes, so the two
    // paths agree tick-for-tick.
    ScanPlan plan = resolveScanPlan(
        perf.placement, config_.flash, db, db_start, db_end,
        [this](std::uint64_t lpn) {
            return ssd_->ftl().translate(lpn);
        },
        ssd_->ftl().mappingEpoch());
    sub.shards = std::move(plan.units);
    // Page-retry knobs ride on each shard's DFV plan (the stream
    // layer owns the bounded reissue + backoff machinery).
    for (auto &shard : sub.shards) {
        shard.plan.maxPageRetries = config_.maxPageRetries;
        shard.plan.pageRetryBackoffSeconds =
            config_.pageRetryBackoffSeconds;
    }
    sub.pageReadsPerStep = plan.pageReadsPerStep;
    sub.featuresPerStep = plan.featuresPerStep;
    sub.planSignature = plan.signature;
    sub.deadlineSeconds = deadline_seconds;
    sub.layerBurstTicksPerFeature = layerBurstTicks(perf);
    sub.featuresPerSlot = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(perf.placement.wsGroupSize));
    sub.weightBytesPerSlot = perf.excessWeightBytesPerSlot;
    sub.weightBroadcast = perf.weightBroadcast;
    // The reduce gathers each shard's partial top-K over the DRAM
    // link before the merge on the embedded cores.
    sub.reduceBytesPerShard =
        std::max<std::uint64_t>(k, 1) * sizeof(ScoredResult);
    sub.dbKey = db_id;
    // Device-wide channel-bus wait at submission; the finalize delta
    // is the NoC contention accrued while this query was in flight.
    const Tick noc_wait0 = ssd_->nocWaitTicks();

    if (queryCache_) {
        const LoadedModel &qcn = lookupModel(qcnModelId_);
        // The probe is decided functionally at submit time against
        // the cache state of *completed* queries; in-flight queries
        // insert only when they complete.
        CacheLookup hit = queryCache_->lookup(this_query);
        // QCN lookups fan out across the channel-level accelerators
        // (§4.6): each unit pulls its share of the cached QFVs over
        // the SSD DRAM link and scores it on its array, behind
        // whatever scan work already holds those resources.
        LevelPerf qcn_perf = model_.evaluateModel(
            Level::ChannelLevel, qcn.bundle.model,
            static_cast<std::uint64_t>(
                qcn.bundle.model.featureDim()) *
                kBytesPerFloat);
        const std::uint32_t qcn_units =
            qcn_perf.placement.numAccelerators;
        sub.probeUnits = qcn_units;
        if (hit.entriesScanned > 0 && qcn_units > 0) {
            const std::uint64_t per_unit =
                (hit.entriesScanned + qcn_units - 1) / qcn_units;
            sub.probeComputeTicksPerUnit =
                sim::Clock(qcn_perf.placement.array.frequencyHz)
                    .cyclesToTicks(qcn_perf.modelRun.totalCycles() *
                                   per_unit);
            sub.probeDramBytesPerUnit =
                per_unit *
                static_cast<std::uint64_t>(
                    qcn.bundle.model.featureDim()) *
                kBytesPerFloat;
        }
        if (hit.hit) {
            // Cached features already sit in SSD DRAM, so the hit
            // path rescores them on one channel-level accelerator:
            // a DRAM pull of the cached vectors plus the SCN burst
            // (§4.2).
            LevelPerf compute_perf = model_.evaluateModel(
                Level::ChannelLevel, m.bundle.model, db.featureBytes);
            sub.cacheHit = true;
            sub.hitComputeTicks =
                sim::Clock(
                    compute_perf.placement.array.frequencyHz)
                    .cyclesToTicks(
                        compute_perf.modelRun.totalCycles() *
                        hit.cachedResults.size());
            sub.hitDramBytes =
                hit.cachedResults.size() * db.featureBytes;
            const LoadedModel *mp = &m;
            auto cached = std::move(hit.cachedResults);
            std::vector<float> q = qfv;
            sub.finalize = [this, qid, k, mp, source, cached,
                            q = std::move(q), noc_wait0] {
                QueryResult res;
                res.queryId = qid;
                res.cacheHit = true;
                res.outcome = scheduler_->outcome(qid);
                res.coverageFraction =
                    scheduler_->coverageFraction(qid);
                if (res.outcome == QueryOutcome::Success) {
                    res.featuresScanned = cached.size();
                    // Re-run the SCN on only the cached top-K
                    // features.
                    TopK topk(std::max<std::size_t>(k, 1));
                    for (const auto &c : cached) {
                        auto dfv = source->featureAt(c.featureId);
                        float s = mp->executor->score(q, dfv);
                        topk.insert(
                            ScoredResult{c.featureId, c.objectId, s});
                    }
                    res.topK = topk.results();
                }
                res.latencySeconds = ticksToSeconds(
                    scheduler_->completeTick(qid) -
                    scheduler_->submitTick(qid));
                const QueryRunStats rs = scheduler_->runStats(qid);
                const double probe_s =
                    ticksToSeconds(rs.probeTicks);
                res.qcProbeSeconds = probe_s;
                res.computeStallSeconds =
                    ticksToSeconds(rs.computeStallTicks);
                res.backpressureSeconds =
                    ticksToSeconds(rs.backpressureTicks);
                res.nocWaitSeconds = ticksToSeconds(
                    ssd_->nocWaitTicks() - noc_wait0);
                ledger_.attribute(probe_s, TimeComponent::QcLookup);
                ledger_.attribute(
                    std::max(0.0, res.latencySeconds - probe_s),
                    TimeComponent::CacheHit);
                finishQuery(qid, std::move(res));
            };
            scheduler_->submit(std::move(sub));
            return qid;
        }
    }

    const LoadedModel *mp = &m;
    DbMetadata dbmd = db;
    std::vector<float> q = qfv;
    sub.finalize = [this, qid, this_query, k, mp, dbmd, db_start,
                    db_end, n_accel = perf.placement.numAccelerators,
                    source, q = std::move(q), noc_wait0] {
        QueryResult res;
        res.queryId = qid;
        res.cacheHit = false;
        res.outcome = scheduler_->outcome(qid);
        res.coverageFraction = scheduler_->coverageFraction(qid);
        // Degraded queries report the top-K over the prefix of the
        // range that was actually scanned; partial results never
        // seed the Query Cache.
        const std::uint64_t range = db_end - db_start;
        res.featuresScanned = static_cast<std::uint64_t>(
            res.coverageFraction * static_cast<double>(range));
        res.featuresScanned = std::min(res.featuresScanned, range);
        if (res.featuresScanned > 0)
            res.topK =
                scanTopK(q, k, *mp, dbmd, db_start,
                         db_start + res.featuresScanned, n_accel,
                         source);
        if (queryCache_ && res.outcome == QueryOutcome::Success)
            queryCache_->insert(this_query, res.topK);
        res.latencySeconds =
            ticksToSeconds(scheduler_->completeTick(qid) -
                           scheduler_->submitTick(qid));
        const QueryRunStats rs = scheduler_->runStats(qid);
        const double probe_s = ticksToSeconds(rs.probeTicks);
        res.qcProbeSeconds = probe_s;
        res.computeStallSeconds =
            ticksToSeconds(rs.computeStallTicks);
        res.backpressureSeconds =
            ticksToSeconds(rs.backpressureTicks);
        res.nocWaitSeconds =
            ticksToSeconds(ssd_->nocWaitTicks() - noc_wait0);
        ledger_.attribute(probe_s, TimeComponent::QcLookup);
        ledger_.attribute(
            std::max(0.0, res.latencySeconds - probe_s),
            TimeComponent::Scan);
        finishQuery(qid, std::move(res));
    };
    scheduler_->submit(std::move(sub));
    return qid;
}

std::uint64_t
DeepStore::querySync(const std::vector<float> &qfv, std::size_t k,
                     std::uint64_t model_id, std::uint64_t db_id,
                     std::uint64_t db_start, std::uint64_t db_end,
                     std::optional<Level> level_opt)
{
    std::uint64_t qid =
        query(qfv, k, model_id, db_id, db_start, db_end, level_opt);
    waitFor(qid);
    return qid;
}

std::optional<QueryState>
DeepStore::poll(std::uint64_t query_id) const
{
    return scheduler_->state(query_id);
}

bool
DeepStore::cancel(std::uint64_t query_id)
{
    return scheduler_->cancel(query_id);
}

bool
DeepStore::step()
{
    return events_.step();
}

void
DeepStore::drain()
{
    while (scheduler_->inFlight() > 0) {
        if (!events_.step())
            panic("scheduler stalled: %zu queries in flight with an "
                  "empty event queue",
                  scheduler_->inFlight());
    }
}

void
DeepStore::waitFor(std::uint64_t query_id)
{
    auto st = scheduler_->state(query_id);
    if (!st)
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    while (!isTerminal(*scheduler_->state(query_id))) {
        if (!events_.step())
            panic("scheduler stalled waiting for query %llu",
                  static_cast<unsigned long long>(query_id));
    }
}

void
DeepStore::onComplete(std::uint64_t query_id,
                      std::function<void(const QueryResult &)> cb)
{
    DS_ASSERT(cb);
    auto it = results_.find(query_id);
    if (it != results_.end()) {
        cb(it->second);
        return;
    }
    if (!scheduler_->state(query_id))
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    completionCallbacks_[query_id].push_back(std::move(cb));
}

void
DeepStore::finishQuery(std::uint64_t query_id, QueryResult res)
{
    auto [it, inserted] = results_.emplace(query_id, std::move(res));
    DS_ASSERT(inserted);
    auto cb_it = completionCallbacks_.find(query_id);
    if (cb_it == completionCallbacks_.end())
        return;
    auto callbacks = std::move(cb_it->second);
    completionCallbacks_.erase(cb_it);
    for (auto &cb : callbacks)
        cb(it->second);
}

std::vector<ScoredResult>
DeepStore::scanTopK(const std::vector<float> &qfv, std::size_t k,
                    const LoadedModel &m, const DbMetadata &db,
                    std::uint64_t db_start, std::uint64_t db_end,
                    std::uint32_t n_accel,
                    const std::shared_ptr<FeatureSource> &source)
    const
{
    // Map-reduce across accelerators (§4.7.1): each accelerator
    // scans its stripe with a private top-K, merged by the engine.
    std::vector<TopK> partials;
    partials.reserve(n_accel);
    for (std::uint32_t a = 0; a < n_accel; ++a)
        partials.emplace_back(std::max<std::size_t>(k, 1));

    for (std::uint64_t i = db_start; i < db_end; ++i) {
        auto dfv = source->featureAt(i);
        float s = m.executor->score(qfv, dfv);
        std::uint64_t ppn =
            db.featurePpn(i, config_.flash.pageBytes);
        partials[i % n_accel].insert(ScoredResult{i, ppn, s});
    }
    TopK merged(std::max<std::size_t>(k, 1));
    for (const auto &p : partials)
        merged.merge(p);
    return merged.results();
}

std::uint64_t
DeepStore::persistMetadata()
{
    auto blob = metadata_.serialize();
    const std::uint64_t page_bytes = config_.flash.pageBytes;
    std::uint64_t pages =
        (blob.size() + page_bytes - 1) / page_bytes;
    // Reserved block at the very top of the LPN space, away from the
    // append-allocated database region.
    std::uint64_t reserved_lpn =
        config_.flash.totalPages() -
        ssd_->ftl().superblockPages();
    // The table is rewritten in place on every persist; trim first so
    // the block-level FTL does not charge a migration.
    ssd_->ftl().trim(reserved_lpn, pages);
    Tick t0 = events_.now();
    bool done = false;
    ssd_->hostWrite(reserved_lpn, pages,
                    [&done](Tick) { done = true; });
    stepUntil(done);
    ledger_.attribute(ticksToSeconds(events_.now() - t0),
                      TimeComponent::Metadata);
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::size_t off = static_cast<std::size_t>(i * page_bytes);
        std::size_t len =
            std::min<std::size_t>(page_bytes, blob.size() - off);
        ssd_->storePayload(reserved_lpn + i,
                           {blob.begin() + static_cast<long>(off),
                            blob.begin() + static_cast<long>(off) +
                                static_cast<long>(len)});
    }
    persistedMetadataPages_ = pages;
    return pages;
}

void
DeepStore::reloadMetadata()
{
    if (persistedMetadataPages_ == 0)
        fatal("no metadata has been persisted to the reserved block");
    std::uint64_t reserved_lpn =
        config_.flash.totalPages() -
        ssd_->ftl().superblockPages();
    Tick t0 = events_.now();
    bool done = false;
    ssd_->hostRead(reserved_lpn, persistedMetadataPages_,
                   [&done](Tick) { done = true; });
    stepUntil(done);
    ledger_.attribute(ticksToSeconds(events_.now() - t0),
                      TimeComponent::Metadata);
    std::vector<std::uint8_t> blob;
    for (std::uint64_t i = 0; i < persistedMetadataPages_; ++i) {
        const auto *page = ssd_->payload(reserved_lpn + i);
        if (!page)
            panic("reserved metadata page %llu has no payload",
                  static_cast<unsigned long long>(i));
        blob.insert(blob.end(), page->begin(), page->end());
    }
    metadata_.clear();
    metadata_.deserialize(blob);
}

void
DeepStore::powerLoss()
{
    // Order matters: the scheduler computes each killed query's
    // remnant coverage through its still-open scan groups/streams,
    // so it must run before any volatile SSD state is dropped.
    scheduler_->powerLoss();
    ssd_->powerLoss();
    // Volatile metadata cache is gone; recover from the reserved
    // flash block when a persist exists (replayed through the normal
    // host-read path, charged to the Metadata ledger component).
    if (persistedMetadataPages_ > 0) {
        reloadMetadata();
    } else {
        metadata_.clear();
    }
}

void
DeepStore::dumpStats(std::ostream &os) const
{
    os << "engine.databases = " << metadata_.size() << "\n";
    os << "engine.models = " << models_.size() << "\n";
    os << "engine.queries = " << results_.size() << "\n";
    os << "engine.inFlight = " << scheduler_->inFlight() << "\n";
    os << "engine.completed = " << scheduler_->completedCount()
       << "\n";
    os << "engine.simulatedSeconds = " << ledger_.seconds() << "\n";
    ledger_.dump(os);
    if (queryCache_) {
        os << "engine.qc.hits = " << queryCache_->hits() << "\n";
        os << "engine.qc.misses = " << queryCache_->misses() << "\n";
        os << "engine.qc.entries = " << queryCache_->size() << "\n";
    }
    ssd_->syncLinkStats();
    ssd_->stats().dump(os);
}

FetchResult
DeepStore::tryGetResults(std::uint64_t query_id) const
{
    auto it = results_.find(query_id);
    if (it != results_.end())
        return FetchResult{FetchStatus::Ready, &it->second};
    auto st = scheduler_->state(query_id);
    if (st && !isTerminal(*st))
        return FetchResult{FetchStatus::InFlight, nullptr};
    return FetchResult{FetchStatus::Unknown, nullptr};
}

const QueryResult &
DeepStore::getResults(std::uint64_t query_id) const
{
    FetchResult fr = tryGetResults(query_id);
    switch (fr.status) {
    case FetchStatus::Ready:
        return *fr.result;
    case FetchStatus::InFlight:
        fatal("query %llu is still in flight (state %s); use "
              "tryGetResults() for a retryable probe, or poll()/"
              "drain() before getResults()",
              static_cast<unsigned long long>(query_id),
              toString(*scheduler_->state(query_id)));
    case FetchStatus::Unknown:
    default:
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    }
}

CompositeFeatureSource::CompositeFeatureSource(
    std::shared_ptr<FeatureSource> first,
    std::shared_ptr<FeatureSource> second)
    : first_(std::move(first)), second_(std::move(second))
{
    DS_ASSERT(first_ && second_);
    DS_ASSERT(first_->dim() == second_->dim());
}

std::uint64_t
CompositeFeatureSource::count() const
{
    return first_->count() + second_->count();
}

std::vector<float>
CompositeFeatureSource::featureAt(std::uint64_t index) const
{
    if (index < first_->count())
        return first_->featureAt(index);
    return second_->featureAt(index - first_->count());
}

} // namespace deepstore::core
