#include "core/deepstore.h"

#include <algorithm>

#include "common/logging.h"
#include "ssd/throughput.h"

namespace deepstore::core {

DeepStore::DeepStore(DeepStoreConfig config)
    : config_(config),
      ssd_(std::make_unique<ssd::Ssd>(events_, config.flash)),
      model_(config.flash)
{
}

double
DeepStore::writePagesSimulated(std::uint64_t lpn_start,
                               std::uint64_t pages)
{
    DS_ASSERT(pages > 0);
    if (pages <= config_.eventSimPageLimit) {
        Tick start = events_.now();
        ssd_->hostWrite(lpn_start, pages, nullptr);
        events_.run();
        return ticksToSeconds(events_.now() - start);
    }
    // Closed form: programs overlap across every plane; the channel
    // buses carry one full page each. Still register the mapping.
    for (std::uint64_t i = 0; i < pages; ++i)
        ssd_->ftl().write(lpn_start + i);
    const auto &p = config_.flash;
    double planes =
        static_cast<double>(p.channels) * p.chipsPerChannel *
        p.planesPerChip;
    double program_rate = planes / p.programLatency; // pages/s
    double bus_rate = p.internalBandwidth() /
                      static_cast<double>(p.pageBytes);
    return static_cast<double>(pages) /
           std::min(program_rate, bus_rate);
}

std::uint64_t
DeepStore::writeDB(std::shared_ptr<FeatureSource> source)
{
    if (!source || source->count() == 0)
        fatal("writeDB needs a non-empty feature source");
    std::uint64_t feature_bytes =
        static_cast<std::uint64_t>(source->dim()) * kBytesPerFloat;
    DbMetadata md;
    md.featureBytes = feature_bytes;
    md.numFeatures = source->count();
    md.startLpn = nextFreeLpn_;
    std::uint64_t pages = md.pageCount(config_.flash.pageBytes);
    nextFreeLpn_ += pages;

    simSeconds_ += writePagesSimulated(md.startLpn, pages);
    md.startPpn = ssd_->ftl().translate(md.startLpn);

    std::uint64_t db_id = metadata_.add(md);
    sources_[db_id] = std::move(source);
    return db_id;
}

void
DeepStore::appendDB(std::uint64_t db_id,
                    std::shared_ptr<FeatureSource> source)
{
    if (!source || source->count() == 0)
        fatal("appendDB needs a non-empty feature source");
    DbMetadata md = metadata_.lookup(db_id);
    auto &existing = sources_.at(db_id);
    if (source->dim() != existing->dim())
        fatal("appendDB feature dim %lld != database dim %lld",
              static_cast<long long>(source->dim()),
              static_cast<long long>(existing->dim()));

    std::uint64_t old_pages = md.pageCount(config_.flash.pageBytes);
    md.numFeatures += source->count();
    std::uint64_t new_pages = md.pageCount(config_.flash.pageBytes);
    // Buffered append (§4.7.2): only whole new pages are programmed.
    if (new_pages > old_pages) {
        std::uint64_t grow = new_pages - old_pages;
        // The append must land directly after the database; DeepStore
        // reserves the LPN range when that is possible.
        if (md.startLpn + old_pages != nextFreeLpn_)
            fatal("appendDB: database %llu is not the most recently "
                  "written database; append would break striping",
                  static_cast<unsigned long long>(db_id));
        simSeconds_ +=
            writePagesSimulated(md.startLpn + old_pages, grow);
        nextFreeLpn_ += grow;
    }
    metadata_.update(md);
    existing = std::make_shared<CompositeFeatureSource>(
        existing, std::move(source));
    // Cached results may now be stale relative to the larger DB.
    if (queryCache_)
        queryCache_->invalidateAll();
}

std::vector<std::vector<float>>
DeepStore::readDB(std::uint64_t db_id, std::uint64_t start,
                  std::uint64_t num)
{
    const DbMetadata &md = metadata_.lookup(db_id);
    if (start + num > md.numFeatures)
        fatal("readDB range [%llu, %llu) exceeds %llu features",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(start + num),
              static_cast<unsigned long long>(md.numFeatures));
    // Timing: read the covering pages over the host interface.
    ssd::FeatureLayout layout{md.featureBytes, config_.flash.pageBytes};
    std::uint64_t first_page, last_page;
    if (md.featureBytes <= config_.flash.pageBytes) {
        first_page = start / layout.featuresPerPage();
        last_page = (start + num - 1) / layout.featuresPerPage();
    } else {
        first_page = start * layout.pagesPerFeature();
        last_page =
            (start + num) * layout.pagesPerFeature() - 1;
    }
    std::uint64_t pages = last_page - first_page + 1;
    if (pages <= config_.eventSimPageLimit) {
        Tick t0 = events_.now();
        ssd_->hostRead(md.startLpn + first_page, pages, nullptr);
        events_.run();
        simSeconds_ += ticksToSeconds(events_.now() - t0);
    } else {
        simSeconds_ +=
            static_cast<double>(pages * config_.flash.pageBytes) /
            config_.flash.externalBandwidth;
    }

    const auto &src = sources_.at(db_id);
    std::vector<std::vector<float>> out;
    out.reserve(num);
    for (std::uint64_t i = 0; i < num; ++i)
        out.push_back(src->featureAt(start + i));
    return out;
}

std::uint64_t
DeepStore::loadModel(const std::vector<std::uint8_t> &blob)
{
    return loadModel(nn::deserializeModel(blob));
}

std::uint64_t
DeepStore::loadModel(nn::ModelBundle bundle)
{
    bundle.model.validate();
    std::uint64_t id = nextModelId_++;
    // Emplace first: the executor holds references into the stored
    // bundle, and map nodes are address-stable.
    LoadedModel &lm = models_[id];
    lm.bundle = std::move(bundle);
    lm.executor = std::make_unique<nn::Executor>(lm.bundle.model,
                                                 lm.bundle.weights);
    // Model upload: weights travel over the host interface into SSD
    // DRAM (§4.2).
    simSeconds_ +=
        static_cast<double>(lm.bundle.model.totalWeightBytes()) /
        config_.flash.externalBandwidth;
    return id;
}

const DeepStore::LoadedModel &
DeepStore::lookupModel(std::uint64_t model_id) const
{
    auto it = models_.find(model_id);
    if (it == models_.end())
        fatal("unknown model_id %llu",
              static_cast<unsigned long long>(model_id));
    return it->second;
}

void
DeepStore::setQC(std::uint64_t qcn_model_id, double threshold,
                 double qcn_accuracy, std::size_t capacity)
{
    const LoadedModel &qcn = lookupModel(qcn_model_id);
    qcnModelId_ = qcn_model_id;
    QueryCacheConfig cfg;
    cfg.capacity = capacity;
    cfg.threshold = threshold;
    cfg.qcnAccuracy = qcn_accuracy;
    // Score via the functional QCN over remembered query features.
    queryCache_ = std::make_unique<QueryCache>(
        cfg, [this, &qcn](std::uint64_t a, std::uint64_t b) {
            DS_ASSERT(a < seenQueries_.size());
            DS_ASSERT(b < seenQueries_.size());
            return static_cast<double>(
                qcn.executor->score(seenQueries_[a],
                                    seenQueries_[b]));
        });
}

std::uint64_t
DeepStore::query(const std::vector<float> &qfv, std::size_t k,
                 std::uint64_t model_id, std::uint64_t db_id,
                 std::uint64_t db_start, std::uint64_t db_end,
                 std::optional<Level> level_opt)
{
    const LoadedModel &m = lookupModel(model_id);
    const DbMetadata &db = metadata_.lookup(db_id);
    if (db_end == 0)
        db_end = db.numFeatures;
    if (db_start >= db_end || db_end > db.numFeatures)
        fatal("query range [%llu, %llu) invalid for %llu features",
              static_cast<unsigned long long>(db_start),
              static_cast<unsigned long long>(db_end),
              static_cast<unsigned long long>(db.numFeatures));
    if (static_cast<std::int64_t>(qfv.size()) !=
        m.bundle.model.featureDim())
        fatal("query feature size %zu != model dim %lld", qfv.size(),
              static_cast<long long>(m.bundle.model.featureDim()));
    Level level = level_opt.value_or(config_.defaultLevel);

    auto source = sources_.at(db_id);
    std::uint64_t this_query = seenQueries_.size();
    seenQueries_.push_back(qfv);

    QueryResult res;
    res.queryId = nextQueryId_++;

    if (queryCache_) {
        const LoadedModel &qcn = lookupModel(qcnModelId_);
        CacheLookup hit = queryCache_->lookup(this_query);
        // QCN lookups execute on the channel-level accelerators
        // (§4.6); charge their aggregate throughput.
        LevelPerf qcn_perf = model_.evaluateModel(
            Level::ChannelLevel, qcn.bundle.model,
            static_cast<std::uint64_t>(
                qcn.bundle.model.featureDim()) *
                kBytesPerFloat);
        res.latencySeconds +=
            qcn_perf.computeSeconds *
            static_cast<double>(hit.entriesScanned) /
            static_cast<double>(qcn_perf.placement.numAccelerators);
        if (hit.hit) {
            // Re-run the SCN on only the cached top-K features.
            TopK topk(std::max<std::size_t>(k, 1));
            for (const auto &cached : hit.cachedResults) {
                auto dfv = source->featureAt(cached.featureId);
                float s = m.executor->score(qfv, dfv);
                topk.insert(
                    ScoredResult{cached.featureId, cached.objectId, s});
            }
            // Cached features already sit in SSD DRAM, so the SCN on
            // the cached entries is compute-only on a channel-level
            // accelerator (§4.2).
            LevelPerf compute_perf = model_.evaluateModel(
                Level::ChannelLevel, m.bundle.model, db.featureBytes);
            res.latencySeconds +=
                compute_perf.computeSeconds *
                static_cast<double>(hit.cachedResults.size());
            res.topK = topk.results();
            res.cacheHit = true;
            res.featuresScanned = hit.cachedResults.size();
            simSeconds_ += res.latencySeconds;
            // The accelerators own the read path for the duration
            // (§4.5); advance the device clock alongside.
            Tick end = events_.now() +
                       secondsToTicks(res.latencySeconds);
            ssd_->setAcceleratorWindow(end);
            events_.runUntil(end);
            std::uint64_t id = res.queryId;
            results_[id] = std::move(res);
            return id;
        }
    }

    QueryResult scan = executeScan(qfv, k, m, db, db_start, db_end,
                                   level, source);
    scan.queryId = res.queryId;
    scan.latencySeconds += res.latencySeconds; // QC lookup cost
    if (queryCache_)
        queryCache_->insert(this_query, scan.topK);
    simSeconds_ += scan.latencySeconds;
    // Regular I/O sees a busy signal while the scan runs (§4.5).
    Tick end = events_.now() + secondsToTicks(scan.latencySeconds);
    ssd_->setAcceleratorWindow(end);
    events_.runUntil(end);
    results_[scan.queryId] = std::move(scan);
    return res.queryId;
}

QueryResult
DeepStore::executeScan(const std::vector<float> &qfv, std::size_t k,
                       const LoadedModel &m, const DbMetadata &db,
                       std::uint64_t db_start, std::uint64_t db_end,
                       Level level,
                       std::shared_ptr<FeatureSource> source)
{
    QueryResult res;
    // Map-reduce across accelerators (§4.7.1): each accelerator
    // scans its stripe with a private top-K, merged by the engine.
    LevelPerf perf =
        model_.evaluateModel(level, m.bundle.model, db.featureBytes);
    if (!perf.supported)
        fatal("accelerator level %s cannot execute model '%s'",
              toString(level), m.bundle.model.name().c_str());

    std::uint32_t n_accel = perf.placement.numAccelerators;
    std::vector<TopK> partials;
    partials.reserve(n_accel);
    for (std::uint32_t a = 0; a < n_accel; ++a)
        partials.emplace_back(std::max<std::size_t>(k, 1));

    for (std::uint64_t i = db_start; i < db_end; ++i) {
        auto dfv = source->featureAt(i);
        float s = m.executor->score(qfv, dfv);
        std::uint64_t ppn =
            db.featurePpn(i, config_.flash.pageBytes);
        partials[i % n_accel].insert(ScoredResult{i, ppn, s});
    }
    TopK merged(std::max<std::size_t>(k, 1));
    for (const auto &p : partials)
        merged.merge(p);
    res.topK = merged.results();
    res.featuresScanned = db_end - db_start;
    res.latencySeconds = perf.aggregateSeconds *
                         static_cast<double>(res.featuresScanned);
    return res;
}

std::uint64_t
DeepStore::persistMetadata()
{
    auto blob = metadata_.serialize();
    const std::uint64_t page_bytes = config_.flash.pageBytes;
    std::uint64_t pages =
        (blob.size() + page_bytes - 1) / page_bytes;
    // Reserved block at the very top of the LPN space, away from the
    // append-allocated database region.
    std::uint64_t reserved_lpn =
        config_.flash.totalPages() -
        ssd_->ftl().superblockPages();
    // The table is rewritten in place on every persist; trim first so
    // the block-level FTL does not charge a migration.
    ssd_->ftl().trim(reserved_lpn, pages);
    Tick t0 = events_.now();
    ssd_->hostWrite(reserved_lpn, pages, nullptr);
    events_.run();
    simSeconds_ += ticksToSeconds(events_.now() - t0);
    for (std::uint64_t i = 0; i < pages; ++i) {
        std::size_t off = static_cast<std::size_t>(i * page_bytes);
        std::size_t len =
            std::min<std::size_t>(page_bytes, blob.size() - off);
        ssd_->storePayload(reserved_lpn + i,
                           {blob.begin() + static_cast<long>(off),
                            blob.begin() + static_cast<long>(off) +
                                static_cast<long>(len)});
    }
    persistedMetadataPages_ = pages;
    return pages;
}

void
DeepStore::reloadMetadata()
{
    if (persistedMetadataPages_ == 0)
        fatal("no metadata has been persisted to the reserved block");
    std::uint64_t reserved_lpn =
        config_.flash.totalPages() -
        ssd_->ftl().superblockPages();
    Tick t0 = events_.now();
    ssd_->hostRead(reserved_lpn, persistedMetadataPages_, nullptr);
    events_.run();
    simSeconds_ += ticksToSeconds(events_.now() - t0);
    std::vector<std::uint8_t> blob;
    for (std::uint64_t i = 0; i < persistedMetadataPages_; ++i) {
        const auto *page = ssd_->payload(reserved_lpn + i);
        if (!page)
            panic("reserved metadata page %llu has no payload",
                  static_cast<unsigned long long>(i));
        blob.insert(blob.end(), page->begin(), page->end());
    }
    metadata_.clear();
    metadata_.deserialize(blob);
}

void
DeepStore::dumpStats(std::ostream &os) const
{
    os << "engine.databases = " << metadata_.size() << "\n";
    os << "engine.models = " << models_.size() << "\n";
    os << "engine.queries = " << results_.size() << "\n";
    os << "engine.simulatedSeconds = " << simSeconds_ << "\n";
    if (queryCache_) {
        os << "engine.qc.hits = " << queryCache_->hits() << "\n";
        os << "engine.qc.misses = " << queryCache_->misses() << "\n";
        os << "engine.qc.entries = " << queryCache_->size() << "\n";
    }
    ssd_->stats().dump(os);
}

const QueryResult &
DeepStore::getResults(std::uint64_t query_id) const
{
    auto it = results_.find(query_id);
    if (it == results_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    return it->second;
}

CompositeFeatureSource::CompositeFeatureSource(
    std::shared_ptr<FeatureSource> first,
    std::shared_ptr<FeatureSource> second)
    : first_(std::move(first)), second_(std::move(second))
{
    DS_ASSERT(first_ && second_);
    DS_ASSERT(first_->dim() == second_->dim());
}

std::uint64_t
CompositeFeatureSource::count() const
{
    return first_->count() + second_->count();
}

std::vector<float>
CompositeFeatureSource::featureAt(std::uint64_t index) const
{
    if (index < first_->count())
        return first_->featureAt(index);
    return second_->featureAt(index - first_->count());
}

} // namespace deepstore::core
