/**
 * @file
 * Hardware-style top-K priority queue (paper §4.3).
 *
 * The accelerator controller keeps the running top-K results in a
 * priority queue implemented as a sorted tag array plus a mapping
 * table: on a new similarity score it binary-searches the tag array,
 * shifts lower-priority entries down by one, drops the last, and
 * re-points the freed tag at the new entry. We model exactly that
 * structure (including the shift work, which the timing model can
 * charge) and verify it against a sort-based oracle in the tests.
 */

#ifndef DEEPSTORE_CORE_TOPK_H
#define DEEPSTORE_CORE_TOPK_H

#include <cstdint>
#include <vector>

namespace deepstore::core {

/** One retrieved result: database feature id + similarity score. */
struct ScoredResult
{
    std::uint64_t featureId = 0;
    /** Physical address of the feature (the ObjectID of §4.2). */
    std::uint64_t objectId = 0;
    float score = 0.0f;

    bool
    operator==(const ScoredResult &o) const
    {
        return featureId == o.featureId && objectId == o.objectId &&
               score == o.score;
    }
};

/** Fixed-capacity top-K tracker with tag-array semantics. */
class TopK
{
  public:
    explicit TopK(std::size_t k);

    /** Offer a result; kept only if it beats the current K-th best.
     *  Ties are broken toward the earlier-inserted entry (stable). */
    void insert(const ScoredResult &result);

    /** Number of entries currently held (<= k). */
    std::size_t size() const { return used_; }
    std::size_t capacity() const { return k_; }

    /** Results ordered best-first. */
    std::vector<ScoredResult> results() const;

    /** Lowest retained score (the eviction threshold). */
    float kthScore() const;

    /** Total tag-array entry shifts performed (timing proxy). */
    std::uint64_t shiftCount() const { return shifts_; }

    /** Merge another tracker's entries into this one (map-reduce
     *  reduction step, §4.7.1). */
    void merge(const TopK &other);

    void clear();

  private:
    std::size_t k_;
    std::size_t used_ = 0;
    std::uint64_t shifts_ = 0;
    /** tag array: sorted best-first; tags_[i] indexes table_. */
    std::vector<std::uint32_t> tags_;
    std::vector<ScoredResult> table_;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_TOPK_H
