#include "core/prefetch_queue.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace deepstore::core {

PipelineResult
simulatePrefetchPipeline(std::uint64_t items, std::uint64_t queue_depth,
                         const std::function<double(std::uint64_t)>
                             &produce_time,
                         const std::function<double(std::uint64_t)>
                             &consume_time)
{
    if (queue_depth == 0)
        fatal("prefetch queue depth must be at least 1");
    PipelineResult res;
    res.items = items;
    if (items == 0)
        return res;

    // Rolling window of consumer start times for slot reclamation.
    std::vector<double> consume_start(items, 0.0);
    double producer_free = 0.0; // when the producer can begin the next
    double consumer_free = 0.0; // when the consumer finishes its item

    for (std::uint64_t i = 0; i < items; ++i) {
        // The producer needs a free queue slot: item i may only be
        // deposited after item (i - depth) has left the queue.
        double space_ready =
            i >= queue_depth ? consume_start[i - queue_depth] : 0.0;
        double start = std::max(producer_free, space_ready);
        // lint:allow(D3: stall accounting in a result struct)
        res.producerStallSeconds += start - producer_free;
        double pt = produce_time(i);
        DS_ASSERT(pt >= 0.0);
        double produced = start + pt;
        producer_free = produced;

        // The consumer takes items in order.
        double cstart = std::max(produced, consumer_free);
        // lint:allow(D3: stall accounting in a result struct)
        res.consumerStallSeconds += cstart - consumer_free;
        consume_start[i] = cstart;
        double ct = consume_time(i);
        DS_ASSERT(ct >= 0.0);
        consumer_free = cstart + ct;
    }
    res.totalSeconds = consumer_free;
    return res;
}

} // namespace deepstore::core
