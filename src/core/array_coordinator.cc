#include "core/array_coordinator.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "common/units.h"
#include "ssd/throughput.h"

namespace deepstore::core {

namespace {

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const auto *b = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), b, b + sizeof(v));
}

/** Aggregate-outcome precedence: the worst sub-query outcome wins,
 *  and a Success with missing coverage degrades. */
int
outcomeRank(QueryOutcome o)
{
    switch (o) {
      case QueryOutcome::Success: return 0;
      case QueryOutcome::Degraded: return 1;
      case QueryOutcome::DeadlineExceeded: return 2;
      case QueryOutcome::Aborted: return 3;
      case QueryOutcome::PowerLoss: return 4;
    }
    return 0;
}

QueryOutcome
outcomeOfRank(int rank)
{
    switch (rank) {
      case 0: return QueryOutcome::Success;
      case 1: return QueryOutcome::Degraded;
      case 2: return QueryOutcome::DeadlineExceeded;
      case 3: return QueryOutcome::Aborted;
      default: return QueryOutcome::PowerLoss;
    }
}

} // namespace

const char *
toString(KillNodeResult r)
{
    switch (r) {
      case KillNodeResult::Killed: return "Killed";
      case KillNodeResult::AlreadyDead: return "AlreadyDead";
      case KillNodeResult::InvalidNode: return "InvalidNode";
    }
    return "UnknownKillNodeResult";
}

ArrayCoordinator::ArrayCoordinator(sim::EventQueue &events,
                                   ArrayConfig array,
                                   SsdNodeConfig base)
    : events_(events), config_(std::move(array)),
      fabric_("array.fabric", config_.hostFabricBandwidth),
      arrayStats_("array")
{
    if (config_.nodes.empty())
        config_.nodes.push_back(base.flash);
    if (config_.replication == 0)
        config_.replication = 1;
    nodes_.reserve(config_.nodes.size());
    for (std::uint32_t i = 0; i < config_.nodes.size(); ++i) {
        SsdNodeConfig ncfg = base;
        ncfg.flash = config_.nodes[i];
        nodes_.push_back(
            std::make_unique<SsdNode>(events_, std::move(ncfg), i));
    }
    for (const auto &death : config_.nodeDeaths) {
        if (death.node >= nodes_.size())
            fatal("scheduled death of unknown node %u", death.node);
        if (death.atTick == 0)
            continue;
        events_.schedule(death.atTick, [this, idx = death.node] {
            killNode(idx);
        });
    }
    scrubScannedPerNode_.assign(nodes_.size(), 0);
    repairPagesPerNode_.assign(nodes_.size(), 0);
    // Disabled scrub schedules nothing: default configs stay
    // event-identical to the pre-scrub coordinator.
    startScrub();
}

std::uint32_t
ArrayCoordinator::aliveCount() const
{
    std::uint32_t n = 0;
    for (const auto &node : nodes_)
        if (node->alive())
            ++n;
    return n;
}

// ---- ingest ------------------------------------------------------

std::vector<IngestPart>
ArrayCoordinator::stripeDb(std::uint64_t feature_bytes,
                           std::uint64_t count)
{
    DS_ASSERT(count > 0);
    std::vector<std::uint32_t> alive;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i]->alive())
            alive.push_back(i);
    if (alive.empty())
        fatal("writeDB: every array node is dead");
    const std::uint32_t n =
        static_cast<std::uint32_t>(alive.size());
    const std::uint32_t copies =
        std::min<std::uint32_t>(std::max(config_.replication, 1u), n);

    // Contiguous feature chunks, one per alive node; shard i's
    // primary is alive[i], replicas on the next copies-1 alive
    // nodes. Every placement gets its own page run (each shard lays
    // its features out from a fresh page boundary, so heterogeneous
    // page sizes never split a feature across nodes).
    std::vector<IngestPart> parts;
    const std::uint64_t base = count / n;
    const std::uint64_t rem = count % n;
    std::uint64_t offset = 0;
    for (std::uint32_t i = 0; i < n && offset < count; ++i) {
        const std::uint64_t chunk = base + (i < rem ? 1 : 0);
        if (chunk == 0)
            continue;
        for (std::uint32_t c = 0; c < copies; ++c) {
            const std::uint32_t node_i = alive[(i + c) % n];
            DbMetadata shape;
            shape.featureBytes = feature_bytes;
            shape.numFeatures = chunk;
            const std::uint64_t pages = shape.pageCount(
                nodes_[node_i]->flash().pageBytes);
            IngestPart part;
            part.shard = i;
            part.node = node_i;
            part.lpnStart = nodes_[node_i]->allocatePages(pages);
            part.pages = pages;
            part.primary = c == 0;
            parts.push_back(part);
        }
        offset += chunk;
    }
    return parts;
}

void
ArrayCoordinator::bindDb(std::uint64_t db_id,
                         std::uint64_t feature_bytes,
                         std::uint64_t count,
                         const std::vector<IngestPart> &parts)
{
    DbInfo info;
    info.featureBytes = feature_bytes;
    std::uint64_t offset = 0;
    for (const IngestPart &part : parts) {
        if (part.primary) {
            DbShard shard;
            shard.startFeature = offset;
            info.shards.push_back(shard);
        }
        DbShard &shard = info.shards.back();
        ShardPlacement pl;
        pl.node = part.node;
        pl.lpnStart = part.lpnStart;
        // Write-time physical start, exactly like the single-SSD
        // engine recorded md.startPpn right after the ingest.
        pl.startPpn = nodes_[part.node]->translate(part.lpnStart);
        shard.placements.push_back(pl);
        if (part.primary) {
            // Shard size back-derived from the primary's page run is
            // ambiguous; recompute from the stripe math instead.
            shard.numFeatures = 0;
        }
    }
    // Re-derive chunk sizes with the same math stripeDb used.
    const std::uint32_t n =
        static_cast<std::uint32_t>(info.shards.size());
    DS_ASSERT(n > 0);
    const std::uint64_t base = count / n;
    const std::uint64_t rem = count % n;
    offset = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        info.shards[i].startFeature = offset;
        info.shards[i].numFeatures = base + (i < rem ? 1 : 0);
        offset += info.shards[i].numFeatures;
    }
    DS_ASSERT(offset == count);
    auto [it, inserted] = dbs_.emplace(db_id, std::move(info));
    if (!inserted)
        fatal("db %llu already bound to the array",
              static_cast<unsigned long long>(db_id));
}

std::vector<IngestPart>
ArrayCoordinator::growDb(std::uint64_t db_id, std::uint64_t extra)
{
    DS_ASSERT(extra > 0);
    auto it = dbs_.find(db_id);
    if (it == dbs_.end())
        fatal("unknown db %llu",
              static_cast<unsigned long long>(db_id));
    DbInfo &info = it->second;
    DbShard &last = info.shards.back();
    std::vector<IngestPart> parts;
    for (const ShardPlacement &pl : last.placements) {
        SsdNode &nd = *nodes_[pl.node];
        DbMetadata shape;
        shape.featureBytes = info.featureBytes;
        shape.numFeatures = last.numFeatures;
        const std::uint64_t old_pages =
            shape.pageCount(nd.flash().pageBytes);
        shape.numFeatures = last.numFeatures + extra;
        const std::uint64_t new_pages =
            shape.pageCount(nd.flash().pageBytes);
        if (new_pages == old_pages)
            continue;
        // The append must land directly after the shard; DeepStore
        // reserves the LPN range when that is possible.
        if (pl.lpnStart + old_pages != nd.nextFreeLpn())
            fatal("appendDB: database %llu is not the most recently "
                  "written database; append would break striping",
                  static_cast<unsigned long long>(db_id));
        IngestPart part;
        part.shard =
            static_cast<std::uint32_t>(info.shards.size() - 1);
        part.node = pl.node;
        part.lpnStart = nd.allocatePages(new_pages - old_pages);
        part.pages = new_pages - old_pages;
        part.primary = &pl == &last.placements.front();
        DS_ASSERT(part.lpnStart == pl.lpnStart + old_pages);
        parts.push_back(part);
    }
    last.numFeatures += extra;
    return parts;
}

std::vector<ReadSegment>
ArrayCoordinator::readSegments(std::uint64_t db_id,
                               std::uint64_t start,
                               std::uint64_t num) const
{
    const DbInfo &info = dbInfo(db_id);
    std::vector<ReadSegment> segs;
    for (const DbShard &shard : info.shards) {
        const std::uint64_t s_end =
            shard.startFeature + shard.numFeatures;
        const std::uint64_t lo = std::max(start, shard.startFeature);
        const std::uint64_t hi = std::min(start + num, s_end);
        if (lo >= hi)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi < 0)
            continue; // shard lost; functional contents still served
        const ShardPlacement &pl =
            shard.placements[static_cast<std::size_t>(pi)];
        const SsdNode &nd = *nodes_[pl.node];
        const std::uint64_t ls = lo - shard.startFeature;
        const std::uint64_t le = hi - shard.startFeature;
        ssd::FeatureLayout layout{info.featureBytes,
                                  nd.flash().pageBytes};
        std::uint64_t first_page, last_page;
        if (info.featureBytes <= nd.flash().pageBytes) {
            first_page = ls / layout.featuresPerPage();
            last_page = (le - 1) / layout.featuresPerPage();
        } else {
            first_page = ls * layout.pagesPerFeature();
            last_page = le * layout.pagesPerFeature() - 1;
        }
        segs.push_back(ReadSegment{pl.node,
                                   pl.lpnStart + first_page,
                                   last_page - first_page + 1});
    }
    return segs;
}

std::uint32_t
ArrayCoordinator::shardCount(std::uint64_t db_id) const
{
    return static_cast<std::uint32_t>(dbInfo(db_id).shards.size());
}

std::uint32_t
ArrayCoordinator::homeNodeFor(std::uint64_t db_id,
                              std::uint64_t db_start) const
{
    const DbInfo &info = dbInfo(db_id);
    for (const DbShard &shard : info.shards) {
        if (db_start >= shard.startFeature + shard.numFeatures)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi >= 0)
            return shard.placements[static_cast<std::size_t>(pi)]
                .node;
        break;
    }
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i]->alive())
            return i;
    return 0;
}

std::optional<SubTarget>
ArrayCoordinator::homeTarget(std::uint64_t db_id,
                             std::uint64_t db_start,
                             std::uint64_t db_end) const
{
    const DbInfo &info = dbInfo(db_id);
    for (std::uint32_t si = 0; si < info.shards.size(); ++si) {
        const DbShard &shard = info.shards[si];
        const std::uint64_t s_end =
            shard.startFeature + shard.numFeatures;
        const std::uint64_t lo = std::max(db_start,
                                          shard.startFeature);
        const std::uint64_t hi = std::min(db_end, s_end);
        if (lo >= hi)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi < 0)
            continue;
        const ShardPlacement &pl =
            shard.placements[static_cast<std::size_t>(pi)];
        SubTarget t;
        t.shard = si;
        t.node = pl.node;
        t.localMd = localMetadata(db_id, info, shard, pl);
        t.localStart = lo - shard.startFeature;
        t.localEnd = hi - shard.startFeature;
        t.home = true;
        return t;
    }
    return std::nullopt;
}

const ArrayCoordinator::DbInfo &
ArrayCoordinator::dbInfo(std::uint64_t db_id) const
{
    auto it = dbs_.find(db_id);
    if (it == dbs_.end())
        fatal("unknown db %llu",
              static_cast<unsigned long long>(db_id));
    return it->second;
}

int
ArrayCoordinator::alivePlacement(
    const DbShard &shard,
    const std::vector<std::uint32_t> &tried) const
{
    for (std::size_t i = 0; i < shard.placements.size(); ++i) {
        const std::uint32_t node_i = shard.placements[i].node;
        if (!nodes_[node_i]->alive())
            continue;
        if (std::find(tried.begin(), tried.end(), node_i) !=
            tried.end())
            continue;
        return static_cast<int>(i);
    }
    return -1;
}

DbMetadata
ArrayCoordinator::localMetadata(std::uint64_t db_id,
                                const DbInfo &info,
                                const DbShard &shard,
                                const ShardPlacement &pl) const
{
    DbMetadata md;
    md.dbId = db_id;
    md.featureBytes = info.featureBytes;
    md.numFeatures = shard.numFeatures;
    md.startLpn = pl.lpnStart;
    md.startPpn = pl.startPpn;
    return md;
}

// ---- query plane -------------------------------------------------

std::uint64_t
ArrayCoordinator::composeSubId(std::uint64_t query_id,
                               std::uint64_t seq) const
{
    // seq 0 (the home sub-query) keeps the engine's query id, so a
    // single-node array is id-identical to the pre-array scheduler.
    // Later sub-queries tag the high bits; each node's scheduler has
    // its own id space, so cross-node reuse of the base id is fine.
    if (seq == 0)
        return query_id;
    DS_ASSERT(query_id < (1ULL << 44));
    return query_id | (seq << 44);
}

void
ArrayCoordinator::trackNode(AggQuery &agg, std::uint32_t node_i)
{
    for (const auto &[n, base] : agg.nocBase)
        if (n == node_i)
            return;
    agg.nocBase.emplace_back(node_i,
                             nodes_[node_i]->nocWaitTicks());
}

void
ArrayCoordinator::scatter(std::uint64_t query_id,
                          std::uint64_t db_id,
                          std::uint64_t db_start,
                          std::uint64_t db_end,
                          std::uint64_t scatter_bytes,
                          std::uint64_t merge_bytes,
                          const SubBuilder &builder, DoneFn done)
{
    const DbInfo &info = dbInfo(db_id);
    auto [it, inserted] = aggs_.emplace(query_id, AggQuery{});
    if (!inserted)
        fatal("duplicate array query id %llu",
              static_cast<unsigned long long>(query_id));
    AggQuery &agg = it->second;
    agg.queryId = query_id;
    agg.dbId = db_id;
    agg.submitTick = events_.now();
    agg.totalFeatures = db_end - db_start;
    agg.scatterBytes = scatter_bytes;
    agg.mergeBytes = merge_bytes;
    agg.builder = builder;
    agg.done = std::move(done);
    ++inFlight_;
    arrayStats_.get("array.queriesScattered") += 1;

    // One sub-target per shard overlapping the range, from each
    // shard's first alive placement; shards with no survivor are
    // lost up front (deterministic Degraded coverage).
    struct Pending
    {
        SubTarget target;
        std::uint64_t subId = 0;
        std::size_t idx = 0;
    };
    std::vector<Pending> pending;
    for (std::uint32_t si = 0; si < info.shards.size(); ++si) {
        const DbShard &shard = info.shards[si];
        const std::uint64_t s_end =
            shard.startFeature + shard.numFeatures;
        const std::uint64_t lo = std::max(db_start,
                                          shard.startFeature);
        const std::uint64_t hi = std::min(db_end, s_end);
        if (lo >= hi)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi < 0) {
            agg.lostFeatures += hi - lo;
            arrayStats_.get("array.shardsLostNoReplica") += 1;
            continue;
        }
        const ShardPlacement &pl =
            shard.placements[static_cast<std::size_t>(pi)];
        Pending p;
        p.target.shard = si;
        p.target.node = pl.node;
        p.target.localMd = localMetadata(db_id, info, shard, pl);
        p.target.localStart = lo - shard.startFeature;
        p.target.localEnd = hi - shard.startFeature;
        p.target.home = pending.empty();
        p.subId = composeSubId(query_id,
                               pending.empty() ? 0
                                               : agg.nextSubSeq++);
        p.idx = agg.subs.size();
        SubState ss;
        ss.shard = si;
        ss.node = pl.node;
        ss.subId = p.subId;
        ss.localStart = p.target.localStart;
        ss.localEnd = p.target.localEnd;
        ss.triedNodes.push_back(pl.node);
        agg.subs.push_back(ss);
        ++agg.outstanding;
        pending.push_back(std::move(p));
    }

    if (pending.empty()) {
        // Every shard in range is gone: terminal immediately, zero
        // coverage, no fabric traffic.
        agg.worstRank = outcomeRank(QueryOutcome::Degraded);
        finalizeAgg(agg);
        return;
    }
    agg.homeNode = pending.front().target.node;
    const Tick now = events_.now();
    for (auto &p : pending) {
        trackNode(agg, p.target.node);
        QuerySubmission sub = agg.builder(p.target, p.subId);
        DS_ASSERT(sub.queryId == p.subId);
        if (p.target.home) {
            // The home sub-query submits synchronously — a
            // single-node array runs zero coordinator events.
            submitSub(agg, p.idx, std::move(sub));
            continue;
        }
        // Remote dispatch: the sub-query descriptor + qfv travel
        // over the host fabric before the node can start.
        const Tick grant = scatter_bytes > 0
                               ? fabric_.acquire(now, scatter_bytes)
                               : now;
        agg.interNodeBytes += scatter_bytes;
        arrayStats_.get("array.subQueriesRemote") += 1;
        const std::uint64_t gen = agg.gen;
        events_.schedule(
            grant, [this, query_id, idx = p.idx, gen,
                    sub = std::move(sub)]() mutable {
                auto ait = aggs_.find(query_id);
                if (ait == aggs_.end())
                    return;
                AggQuery &a = ait->second;
                if (a.finished || a.gen != gen ||
                    a.subs[idx].terminal)
                    return;
                if (!nodes_[a.subs[idx].node]->alive()) {
                    // Node died while the dispatch was in flight:
                    // fail over immediately (zero coverage).
                    if (!tryRedispatch(a, idx, 0)) {
                        a.subs[idx].terminal = true;
                        arrayStats_.get("array.subQueriesLost") += 1;
                        subArrived(a);
                    }
                    return;
                }
                submitSub(a, idx, std::move(sub));
            });
    }
}

void
ArrayCoordinator::submitSingle(std::uint64_t query_id,
                               std::uint32_t node_i,
                               QuerySubmission sub, DoneFn done)
{
    auto [it, inserted] = aggs_.emplace(query_id, AggQuery{});
    if (!inserted)
        fatal("duplicate array query id %llu",
              static_cast<unsigned long long>(query_id));
    AggQuery &agg = it->second;
    agg.queryId = query_id;
    agg.submitTick = events_.now();
    agg.homeNode = node_i;
    agg.done = std::move(done);
    ++inFlight_;
    SubState ss;
    ss.node = node_i;
    ss.subId = sub.queryId;
    DS_ASSERT(sub.queryId == query_id);
    agg.subs.push_back(ss);
    ++agg.outstanding;
    trackNode(agg, node_i);
    submitSub(agg, 0, std::move(sub));
}

void
ArrayCoordinator::submitSub(AggQuery &agg, std::size_t idx,
                            QuerySubmission sub)
{
    SubState &ss = agg.subs[idx];
    const std::uint64_t qid = agg.queryId;
    sub.finalize = [this, qid, idx] { onSubTerminal(qid, idx); };
    ss.submitted = true;
    nodes_[ss.node]->scheduler().submit(std::move(sub));
}

void
ArrayCoordinator::onSubTerminal(std::uint64_t query_id,
                                std::size_t idx)
{
    AggQuery &agg = aggs_.at(query_id);
    SubState &ss = agg.subs[idx];
    DS_ASSERT(!ss.terminal);
    SsdNode &nd = *nodes_[ss.node];
    QueryScheduler &sched = nd.scheduler();
    const QueryOutcome oc = sched.outcome(ss.subId);
    const std::uint64_t covered = sched.coveredFeatures(ss.subId);
    ss.terminal = true;
    const QueryRunStats rs = sched.runStats(ss.subId);
    agg.run.computeStallTicks += rs.computeStallTicks;
    agg.run.backpressureTicks += rs.backpressureTicks;
    agg.run.probeTicks += rs.probeTicks;
    agg.run.reduceTicks += rs.reduceTicks;

    // Whole-drive failure: the node died under this sub-query.
    // Credit what it scanned and re-stripe the remainder onto a
    // replica; only when no replica survives (or the retry budget is
    // gone) does the loss reach the aggregate outcome.
    if (!nd.alive() && oc != QueryOutcome::Success) {
        agg.coveredFeatures += covered;
        if (tryRedispatch(agg, idx, covered))
            return;
        agg.lostFeatures += (ss.localEnd - ss.localStart) - covered;
        arrayStats_.get("array.subQueriesLost") += 1;
        subArrived(agg);
        return;
    }

    agg.coveredFeatures += covered;
    agg.worstRank = std::max(agg.worstRank, outcomeRank(oc));
    // Merge leg: a remote node ships its candidate set (partial
    // top-K) back to the home node over the fabric. Aborted
    // sub-queries ship nothing; power loss kills the fabric.
    const bool ships = ss.node != agg.homeNode &&
                       agg.mergeBytes > 0 && !inPowerLoss_ &&
                       oc != QueryOutcome::Aborted;
    if (!ships) {
        subArrived(agg);
        return;
    }
    const Tick now = events_.now();
    const Tick grant = fabric_.acquire(now, agg.mergeBytes);
    agg.interNodeBytes += agg.mergeBytes;
    agg.mergeTicks += grant - now;
    const std::uint64_t gen = agg.gen;
    events_.schedule(grant, [this, query_id, gen] {
        auto it = aggs_.find(query_id);
        if (it == aggs_.end())
            return;
        AggQuery &a = it->second;
        if (a.finished || a.gen != gen)
            return;
        subArrived(a);
    });
}

bool
ArrayCoordinator::tryRedispatch(AggQuery &agg, std::size_t idx,
                                std::uint64_t covered)
{
    // Copy what we need before push_back invalidates references.
    const SubState failed = agg.subs[idx];
    if (failed.retries >= config_.maxNodeRetries)
        return false;
    const std::uint64_t rest_start = failed.localStart + covered;
    if (rest_start >= failed.localEnd) {
        // Everything was scanned before the drive died; the shard
        // needs no failover, just the normal arrival accounting.
        agg.worstRank = std::max(
            agg.worstRank, outcomeRank(QueryOutcome::Success));
        subArrived(agg);
        return true;
    }
    const DbInfo &info = dbInfo(agg.dbId);
    const DbShard &shard = info.shards[failed.shard];
    const int pi = alivePlacement(shard, failed.triedNodes);
    if (pi < 0)
        return false;
    const ShardPlacement &pl =
        shard.placements[static_cast<std::size_t>(pi)];

    SubState repl;
    repl.shard = failed.shard;
    repl.node = pl.node;
    repl.subId = composeSubId(agg.queryId, agg.nextSubSeq++);
    repl.localStart = rest_start;
    repl.localEnd = failed.localEnd;
    repl.retries = failed.retries + 1;
    repl.triedNodes = failed.triedNodes;
    repl.triedNodes.push_back(pl.node);
    const std::size_t new_idx = agg.subs.size();
    agg.subs.push_back(repl);
    ++agg.redispatches;
    arrayStats_.get("array.redispatches") += 1;
    trackNode(agg, pl.node);

    SubTarget target;
    target.shard = failed.shard;
    target.node = pl.node;
    target.localMd = localMetadata(agg.dbId, info, shard, pl);
    target.localStart = repl.localStart;
    target.localEnd = repl.localEnd;
    target.home = false;
    QuerySubmission sub = agg.builder(target, repl.subId);
    DS_ASSERT(sub.queryId == repl.subId);

    // The replacement descriptor re-crosses the fabric.
    const Tick now = events_.now();
    const Tick grant =
        agg.scatterBytes > 0
            ? fabric_.acquire(now, agg.scatterBytes)
            : now;
    agg.interNodeBytes += agg.scatterBytes;
    const std::uint64_t gen = agg.gen;
    const std::uint64_t qid = agg.queryId;
    events_.schedule(grant, [this, qid, new_idx, gen,
                             sub = std::move(sub)]() mutable {
        auto it = aggs_.find(qid);
        if (it == aggs_.end())
            return;
        AggQuery &a = it->second;
        if (a.finished || a.gen != gen ||
            a.subs[new_idx].terminal)
            return;
        if (!nodes_[a.subs[new_idx].node]->alive()) {
            if (!tryRedispatch(a, new_idx, 0)) {
                a.subs[new_idx].terminal = true;
                arrayStats_.get("array.subQueriesLost") += 1;
                subArrived(a);
            }
            return;
        }
        submitSub(a, new_idx, std::move(sub));
    });
    return true;
}

void
ArrayCoordinator::subArrived(AggQuery &agg)
{
    DS_ASSERT(agg.outstanding > 0);
    if (--agg.outstanding == 0)
        finalizeAgg(agg);
}

void
ArrayCoordinator::finalizeAgg(AggQuery &agg)
{
    DS_ASSERT(!agg.finished);
    agg.finished = true;
    agg.completeTick = events_.now();
    DS_ASSERT(inFlight_ > 0);
    --inFlight_;

    ArrayQueryStats st;
    st.submitTick = agg.submitTick;
    st.completeTick = agg.completeTick;
    st.run = agg.run;
    st.mergeTicks = agg.mergeTicks;
    st.interNodeBytes = agg.interNodeBytes;
    st.redispatches = agg.redispatches;
    st.nodesParticipating =
        static_cast<std::uint32_t>(agg.nocBase.size());
    for (const auto &[node_i, base] : agg.nocBase)
        st.nocWaitTicks += nodes_[node_i]->nocWaitTicks() - base;

    // Single-sub aggregates (every 1-node array query, and every
    // cache hit) pass the node scheduler's outcome and coverage
    // through bit-identically — the determinism pin depends on the
    // float division happening exactly once.
    const bool passthrough = agg.subs.size() == 1 &&
                             agg.subs[0].submitted &&
                             agg.lostFeatures == 0 &&
                             agg.redispatches == 0;
    if (passthrough) {
        const SubState &ss = agg.subs[0];
        QueryScheduler &sched = nodes_[ss.node]->scheduler();
        st.outcome = sched.outcome(ss.subId);
        st.coverageFraction = sched.coverageFraction(ss.subId);
    } else {
        const std::uint64_t total = agg.totalFeatures;
        const std::uint64_t covered =
            std::min(agg.coveredFeatures, total);
        QueryOutcome oc = outcomeOfRank(agg.worstRank);
        if (oc == QueryOutcome::Success && covered < total)
            oc = QueryOutcome::Degraded;
        st.outcome = oc;
        if (total == 0)
            st.coverageFraction =
                oc == QueryOutcome::Success ? 1.0 : 0.0;
        else
            st.coverageFraction = static_cast<double>(covered) /
                                  static_cast<double>(total);
    }
    agg.terminalOutcome = st.outcome;
    if (agg.done)
        agg.done(st);
}

bool
ArrayCoordinator::cancel(std::uint64_t query_id)
{
    auto it = aggs_.find(query_id);
    if (it == aggs_.end() || it->second.finished)
        return false;
    AggQuery &agg = it->second;
    // Snapshot: the cascade below finalizes subs (and possibly the
    // aggregate) synchronously.
    const std::size_t n_subs = agg.subs.size();
    for (std::size_t i = 0; i < n_subs && !agg.finished; ++i) {
        SubState &ss = agg.subs[i];
        if (ss.terminal)
            continue;
        if (ss.submitted) {
            nodes_[ss.node]->scheduler().cancel(ss.subId);
        } else {
            // Still in fabric transit: never reaches a scheduler.
            ss.terminal = true;
            agg.worstRank = std::max(
                agg.worstRank, outcomeRank(QueryOutcome::Aborted));
            subArrived(agg);
        }
    }
    return true;
}

std::optional<QueryState>
ArrayCoordinator::state(std::uint64_t query_id) const
{
    auto it = aggs_.find(query_id);
    if (it == aggs_.end())
        return std::nullopt;
    const AggQuery &agg = it->second;
    if (agg.finished)
        return agg.terminalOutcome == QueryOutcome::Success
                   ? QueryState::Complete
                   : QueryState::Degraded;
    if (!agg.subs.empty()) {
        const SubState &home = agg.subs.front();
        if (home.submitted) {
            auto st = nodes_[home.node]->scheduler().state(
                home.subId);
            if (st && !isTerminal(*st))
                return *st;
        }
    }
    // Sub-queries done or in transit; merges pending on the fabric.
    return QueryState::Reduce;
}

// ---- durable shard map -------------------------------------------

std::vector<std::uint8_t>
ArrayCoordinator::serializeShardMap() const
{
    std::vector<std::uint8_t> out;
    putU64(out, dbs_.size());
    for (const auto &[db_id, info] : dbs_) {
        putU64(out, db_id);
        putU64(out, info.featureBytes);
        putU64(out, info.shards.size());
        for (const DbShard &shard : info.shards) {
            putU64(out, shard.startFeature);
            putU64(out, shard.numFeatures);
            putU64(out, shard.placements.size());
            for (const ShardPlacement &pl : shard.placements) {
                putU64(out, pl.node);
                putU64(out, pl.lpnStart);
                putU64(out, pl.startPpn);
            }
        }
    }
    putU64(out, nodes_.size());
    for (const auto &nd : nodes_)
        putU64(out, nd->nextFreeLpn());
    return out;
}

void
ArrayCoordinator::restoreShardMap(
    const std::vector<std::uint8_t> &blob)
{
    std::size_t pos = 0;
    auto next = [&blob, &pos]() -> std::uint64_t {
        if (pos + sizeof(std::uint64_t) > blob.size())
            fatal("shard-map blob truncated at byte %zu", pos);
        std::uint64_t v;
        std::memcpy(&v, blob.data() + pos, sizeof(v));
        pos += sizeof(v);
        return v;
    };
    std::map<std::uint64_t, DbInfo> restored;
    const std::uint64_t n_dbs = next();
    for (std::uint64_t d = 0; d < n_dbs; ++d) {
        const std::uint64_t db_id = next();
        DbInfo info;
        info.featureBytes = next();
        const std::uint64_t n_shards = next();
        for (std::uint64_t s = 0; s < n_shards; ++s) {
            DbShard shard;
            shard.startFeature = next();
            shard.numFeatures = next();
            const std::uint64_t n_pl = next();
            for (std::uint64_t p = 0; p < n_pl; ++p) {
                ShardPlacement pl;
                const std::uint64_t node = next();
                pl.lpnStart = next();
                pl.startPpn = next();
                if (node >= nodes_.size())
                    fatal("shard-map blob names unknown node %llu",
                          static_cast<unsigned long long>(node));
                pl.node = static_cast<std::uint32_t>(node);
                shard.placements.push_back(pl);
            }
            info.shards.push_back(std::move(shard));
        }
        restored.emplace(db_id, std::move(info));
    }
    const std::uint64_t n_nodes = next();
    if (n_nodes != nodes_.size())
        fatal("shard-map blob describes a %llu-node array; this "
              "array has %llu nodes",
              static_cast<unsigned long long>(n_nodes),
              static_cast<unsigned long long>(nodes_.size()));
    for (std::uint64_t i = 0; i < n_nodes; ++i)
        nodes_[i]->restoreNextFreeLpn(next());
    if (pos != blob.size())
        fatal("shard-map blob carries %zu trailing bytes",
              blob.size() - pos);
    dbs_ = std::move(restored);
}

void
ArrayCoordinator::noteTornSuperblock()
{
    ++tornSuperblocks_;
}

// ---- scrub engine ------------------------------------------------

void
ArrayCoordinator::startScrub()
{
    if (!config_.scrub.enabled)
        return;
    if (config_.scrub.pagesPerSecond <= 0.0)
        fatal("ScrubConfig::pagesPerSecond must be positive");
    if (config_.scrub.batchPages == 0)
        fatal("ScrubConfig::batchPages must be positive");
    if (config_.scrub.passes != 0 &&
        scrubPassesCompleted_ >= config_.scrub.passes)
        return; // the pass budget was spent before the restart
    const std::uint64_t gen = scrubGen_;
    events_.scheduleAfter(
        secondsToTicks(config_.scrub.startDelaySeconds),
        [this, gen] {
            if (gen != scrubGen_)
                return;
            buildScrubRuns();
            scrubBatch();
        });
}

void
ArrayCoordinator::buildScrubRuns()
{
    // Deterministic order: dbs_ is an ordered map, placements are in
    // bind/repair order. The snapshot covers every placement bound
    // when the pass starts; databases written later join the next
    // pass.
    scrubRuns_.clear();
    scrubRunIdx_ = 0;
    scrubPageIdx_ = 0;
    for (const auto &[db_id, info] : dbs_) {
        for (std::uint32_t si = 0; si < info.shards.size(); ++si) {
            const DbShard &shard = info.shards[si];
            for (const ShardPlacement &pl : shard.placements) {
                DbMetadata shape;
                shape.featureBytes = info.featureBytes;
                shape.numFeatures = shard.numFeatures;
                const std::uint64_t pages = shape.pageCount(
                    nodes_[pl.node]->flash().pageBytes);
                if (pages == 0)
                    continue;
                scrubRuns_.push_back(ScrubRun{db_id, si, pl.node,
                                              pl.lpnStart, pages});
            }
        }
    }
}

void
ArrayCoordinator::scrubBatch()
{
    const ScrubConfig &sc = config_.scrub;
    // Gather the next batch of pages, skipping dead nodes' runs.
    std::vector<std::pair<ScrubRun, std::uint64_t>> batch;
    while (batch.size() < sc.batchPages &&
           scrubRunIdx_ < scrubRuns_.size()) {
        const ScrubRun &run = scrubRuns_[scrubRunIdx_];
        if (!nodes_[run.node]->alive() ||
            scrubPageIdx_ >= run.pages) {
            ++scrubRunIdx_;
            scrubPageIdx_ = 0;
            continue;
        }
        batch.emplace_back(run, run.lpnStart + scrubPageIdx_);
        ++scrubPageIdx_;
    }
    const bool pass_done = scrubRunIdx_ >= scrubRuns_.size();
    const Tick issue = events_.now();
    // Rate cap: the next wakeup never comes sooner than the batch's
    // page budget allows (and never before its reads complete, so a
    // congested device self-throttles the scrubber further).
    const double budget_pages = static_cast<double>(
        batch.empty() ? sc.batchPages : batch.size());
    const Tick rate_next =
        issue + secondsToTicks(budget_pages / sc.pagesPerSecond);
    const std::uint64_t gen = scrubGen_;

    auto next_wakeup = [this, gen, pass_done](Tick at) {
        events_.schedule(at, [this, gen, pass_done] {
            if (gen != scrubGen_)
                return;
            if (pass_done) {
                ++scrubPassesCompleted_;
                if (config_.scrub.passes != 0 &&
                    scrubPassesCompleted_ >= config_.scrub.passes)
                    return; // budget spent; the queue may drain
                buildScrubRuns();
            }
            scrubBatch();
        });
    };

    if (batch.empty()) {
        // Nothing scannable this pass (no databases bound, or every
        // holder is dead). passes == 0 keeps polling — note this
        // keeps the event queue non-empty forever by design.
        next_wakeup(rate_next);
        return;
    }

    auto remaining = std::make_shared<std::size_t>(batch.size());
    auto last = std::make_shared<Tick>(issue);
    for (const auto &[run, lpn] : batch) {
        nodes_[run.node]->scrubRead(
            lpn,
            [this, gen, run = run, lpn = lpn, remaining, last,
             rate_next, next_wakeup](Tick t, ssd::FlashStatus st) {
                if (gen != scrubGen_)
                    return;
                ++scrubPagesScanned_;
                ++scrubScannedPerNode_[run.node];
                if (st == ssd::FlashStatus::Uncorrectable) {
                    ++scrubUncorrectableFound_;
                    repairPage(run, lpn);
                }
                *last = std::max(*last, t);
                if (--*remaining == 0)
                    next_wakeup(std::max(*last, rate_next));
            });
    }
}

void
ArrayCoordinator::repairPage(const ScrubRun &run, std::uint64_t lpn)
{
    if (!config_.repair.enabled)
        return;
    auto it = dbs_.find(run.dbId);
    if (it == dbs_.end() || run.shard >= it->second.shards.size())
        return; // the map moved on since the pass snapshot
    const DbInfo &info = it->second;
    const DbShard &shard = info.shards[run.shard];
    if (!nodes_[run.node]->alive())
        return; // node death repair handles the whole shard
    // Rewrite the page from an alive replica on another node.
    const ShardPlacement *src = nullptr;
    for (const ShardPlacement &pl : shard.placements) {
        if (pl.node != run.node && nodes_[pl.node]->alive()) {
            src = &pl;
            break;
        }
    }
    if (src == nullptr)
        return; // detected but unrepairable: no surviving replica
    DbMetadata shape;
    shape.featureBytes = info.featureBytes;
    shape.numFeatures = shard.numFeatures;
    const std::uint64_t src_pages =
        shape.pageCount(nodes_[src->node]->flash().pageBytes);
    if (src_pages == 0)
        return;
    // Same-geometry arrays map page i <-> page i; heterogeneous page
    // sizes rescale the offset (the rewrite only needs a source page
    // carrying the affected features).
    std::uint64_t src_off = (lpn - run.lpnStart) * src_pages /
                            run.pages;
    src_off = std::min(src_off, src_pages - 1);
    const std::uint32_t dest_node = run.node;
    const std::uint64_t page_bytes =
        nodes_[dest_node]->flash().pageBytes;
    const std::uint64_t gen = repairGen_;
    nodes_[src->node]->scrubRead(
        src->lpnStart + src_off,
        [this, gen, dest_node, lpn, page_bytes](Tick t,
                                                ssd::FlashStatus) {
            if (gen != repairGen_)
                return;
            const Tick arrive = repairTransfer(t, page_bytes);
            events_.schedule(arrive, [this, gen, dest_node, lpn] {
                if (gen != repairGen_ ||
                    !nodes_[dest_node]->alive())
                    return;
                // The in-place overwrite migrates the page to a new
                // physical location, so the corruption draw re-rolls
                // on fresh cells.
                nodes_[dest_node]->hostWrite(
                    lpn, 1, [this, gen](Tick) {
                        if (gen != repairGen_)
                            return;
                        ++scrubLatentRepaired_;
                    });
            });
        });
}

// ---- repair engine -----------------------------------------------

void
ArrayCoordinator::scheduleRepairScan()
{
    if (!config_.repair.enabled)
        return;
    const std::uint64_t gen = repairGen_;
    events_.scheduleAfter(0, [this, gen] {
        if (gen == repairGen_)
            repairScan();
    });
}

void
ArrayCoordinator::repairScan()
{
    for (auto &[db_id, info] : dbs_) {
        for (std::uint32_t si = 0; si < info.shards.size(); ++si) {
            DbShard &shard = info.shards[si];
            std::vector<std::uint32_t> holders;
            const ShardPlacement *src = nullptr;
            for (const ShardPlacement &pl : shard.placements) {
                if (!nodes_[pl.node]->alive())
                    continue;
                if (std::find(holders.begin(), holders.end(),
                              pl.node) == holders.end())
                    holders.push_back(pl.node);
                if (src == nullptr)
                    src = &pl;
            }
            const std::uint32_t desired = std::min<std::uint32_t>(
                std::max(config_.replication, 1u), aliveCount());
            if (src == nullptr || holders.size() >= desired)
                continue; // lost outright, or replicated enough
            const auto key = std::make_pair(db_id, si);
            if (std::find(repairPending_.begin(),
                          repairPending_.end(),
                          key) != repairPending_.end())
                continue;
            // Destination: lowest-index alive node without a copy.
            SsdNode *dest = nullptr;
            std::uint32_t dest_i = 0;
            for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
                if (!nodes_[n]->alive())
                    continue;
                if (std::find(holders.begin(), holders.end(), n) !=
                    holders.end())
                    continue;
                dest = nodes_[n].get();
                dest_i = n;
                break;
            }
            if (dest == nullptr)
                continue;
            DbMetadata shape;
            shape.featureBytes = info.featureBytes;
            shape.numFeatures = shard.numFeatures;
            const std::uint64_t dest_pages =
                shape.pageCount(dest->flash().pageBytes);
            if (dest_pages == 0)
                continue;
            RepairTask task;
            task.dbId = db_id;
            task.shard = si;
            task.srcNode = src->node;
            task.srcLpnStart = src->lpnStart;
            task.srcPages = shape.pageCount(
                nodes_[src->node]->flash().pageBytes);
            task.destNode = dest_i;
            task.destLpnStart = dest->allocatePages(dest_pages);
            task.destPages = dest_pages;
            repairQueue_.push_back(task);
            repairPending_.push_back(key);
        }
    }
    if (!repairActive_ && !repairQueue_.empty()) {
        repairActive_ = true;
        repairBatch();
    }
}

void
ArrayCoordinator::repairBatch()
{
    DS_ASSERT(repairActive_);
    while (!repairQueue_.empty()) {
        const RepairTask &front = repairQueue_.front();
        if (nodes_[front.srcNode]->alive() &&
            nodes_[front.destNode]->alive())
            break;
        // A participant died mid-copy: drop the task and rescan (a
        // different source or destination may still work; the
        // abandoned destination pages stay allocated — the
        // append-only allocator never reuses them).
        const auto key = std::make_pair(front.dbId, front.shard);
        auto pit = std::find(repairPending_.begin(),
                             repairPending_.end(), key);
        if (pit != repairPending_.end())
            repairPending_.erase(pit);
        repairQueue_.erase(repairQueue_.begin());
        scheduleRepairScan();
    }
    if (repairQueue_.empty()) {
        repairActive_ = false;
        return;
    }
    // Copy the front task by value: completions below run after
    // repairScan may have grown (reallocated) the queue.
    const RepairTask task = repairQueue_.front();
    const std::uint64_t n = std::min<std::uint64_t>(
        std::max(config_.repair.batchPages, 1u),
        task.destPages - task.next);
    DS_ASSERT(n > 0);
    const std::uint64_t gen = repairGen_;
    const std::uint64_t page_bytes =
        nodes_[task.destNode]->flash().pageBytes;
    auto left = std::make_shared<std::uint64_t>(n);
    auto batch_done = [this, gen, n] {
        if (gen != repairGen_)
            return;
        DS_ASSERT(!repairQueue_.empty());
        RepairTask &t = repairQueue_.front();
        t.next += n;
        if (t.next >= t.destPages)
            finishRepairTask();
        else
            repairBatch();
    };
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t di = task.next + i;
        std::uint64_t si = di * task.srcPages / task.destPages;
        si = std::min(si, task.srcPages - 1);
        // The source read is a verifying flash read on the donor's
        // channel buses; like GC relocation, repair takes the page as
        // the media returns it (no extra ECC heroics on this path).
        nodes_[task.srcNode]->scrubRead(
            task.srcLpnStart + si,
            [this, gen, task, di, left, page_bytes, batch_done](
                Tick t, ssd::FlashStatus) {
                if (gen != repairGen_)
                    return;
                const Tick arrive = repairTransfer(t, page_bytes);
                events_.schedule(arrive, [this, gen, task, di, left,
                                          batch_done] {
                    if (gen != repairGen_)
                        return;
                    if (!nodes_[task.destNode]->alive()) {
                        // Destination died under the copy; the next
                        // batch_done aborts the task.
                        if (--*left == 0)
                            batch_done();
                        return;
                    }
                    nodes_[task.destNode]->hostWrite(
                        task.destLpnStart + di, 1,
                        [this, gen, task, left, batch_done](Tick) {
                            if (gen != repairGen_)
                                return;
                            ++repairPagesCopied_;
                            ++repairPagesPerNode_[task.destNode];
                            if (--*left == 0)
                                batch_done();
                        });
                });
            });
    }
}

void
ArrayCoordinator::finishRepairTask()
{
    DS_ASSERT(!repairQueue_.empty());
    const RepairTask task = repairQueue_.front();
    repairQueue_.erase(repairQueue_.begin());
    const auto key = std::make_pair(task.dbId, task.shard);
    auto pit = std::find(repairPending_.begin(),
                         repairPending_.end(), key);
    if (pit != repairPending_.end())
        repairPending_.erase(pit);
    auto it = dbs_.find(task.dbId);
    if (it != dbs_.end() &&
        task.shard < it->second.shards.size() &&
        nodes_[task.destNode]->alive()) {
        // The new copy goes live: queries, failover, and the next
        // scrub pass all see it through the normal placement list.
        ShardPlacement pl;
        pl.node = task.destNode;
        pl.lpnStart = task.destLpnStart;
        pl.startPpn =
            nodes_[task.destNode]->translate(task.destLpnStart);
        it->second.shards[task.shard].placements.push_back(pl);
        ++repairShardsRepaired_;
    }
    // Deaths during the copy may have exposed more shards.
    repairScan();
    if (repairQueue_.empty()) {
        repairActive_ = false;
        lastRepairCompleteTick_ = events_.now();
    } else {
        repairBatch();
    }
}

Tick
ArrayCoordinator::repairTransfer(Tick ready, std::uint64_t bytes)
{
    // Token-bucket pacing against the configured cap, then the real
    // fabric: repair throughput is min(cap, fabric share), and
    // queries' scatter/merge legs queue behind repair grants on the
    // same link.
    Tick start = std::max(ready, repairCapFreeAt_);
    if (config_.repair.bandwidthBytesPerSecond > 0.0)
        repairCapFreeAt_ =
            start + secondsToTicks(
                        static_cast<double>(bytes) /
                        config_.repair.bandwidthBytesPerSecond);
    else
        repairCapFreeAt_ = start;
    repairBytesOverFabric_ += bytes;
    return fabric_.acquire(repairCapFreeAt_, bytes);
}

// ---- lifecycle ---------------------------------------------------

KillNodeResult
ArrayCoordinator::killNode(std::uint32_t node_i)
{
    if (node_i >= nodes_.size())
        return KillNodeResult::InvalidNode;
    SsdNode &nd = *nodes_[node_i];
    if (!nd.alive())
        return KillNodeResult::AlreadyDead;
    arrayStats_.get("array.nodeDeaths") += 1;
    // kill() marks the drive dead first, then fails its in-flight
    // sub-queries; their finalizes land in onSubTerminal, which sees
    // the dead node and re-stripes onto replicas.
    nd.kill();
    // Self-healing: re-replicate the dead node's shards onto
    // survivors (deferred one event so the failover cascade above
    // settles first).
    scheduleRepairScan();
    return KillNodeResult::Killed;
}

void
ArrayCoordinator::powerLoss()
{
    arrayStats_.get("array.powerLosses") += 1;
    // Kill every node's in-flight sub-queries at the loss tick;
    // merge legs are suppressed (inPowerLoss_) so arrivals are
    // synchronous and aggregates finalize *now*, before volatile
    // device state drops.
    inPowerLoss_ = true;
    for (auto &nd : nodes_)
        nd->scheduler().powerLoss();
    // Aggregates still pending (merges or dispatches that were on
    // the fabric when the lights went out) finalize with outcome
    // PowerLoss; their scheduled fabric events are invalidated.
    for (auto &[qid, agg] : aggs_) {
        if (agg.finished)
            continue;
        ++agg.gen;
        for (SubState &ss : agg.subs)
            ss.terminal = true;
        agg.worstRank = outcomeRank(QueryOutcome::PowerLoss);
        finalizeAgg(agg);
    }
    fabric_.reset(events_.now());
    for (auto &nd : nodes_)
        nd->devicePowerLoss();
    inPowerLoss_ = false;
    // Scrub wakeups and in-flight repair copies died with the
    // capacitors: bump both generations so their stale events are
    // no-ops, forget queued tasks (half-copied destination pages
    // stay allocated; the append-only allocator never reuses them),
    // then restart both engines under the new generations. Disabled
    // engines schedule nothing, keeping default runs event-identical.
    ++scrubGen_;
    ++repairGen_;
    repairQueue_.clear();
    repairPending_.clear();
    repairActive_ = false;
    repairCapFreeAt_ = 0;
    startScrub();
    scheduleRepairScan();
}

void
ArrayCoordinator::dumpStats(std::ostream &os)
{
    os << "array.nodes = " << nodes_.size() << "\n";
    os << "array.aliveNodes = " << aliveCount() << "\n";
    os << "array.replication = " << config_.replication << "\n";
    // Scrub/repair rows appear only when the engines are in play, so
    // default-config stat dumps stay byte-identical to the pre-scrub
    // coordinator (the determinism sweeps compare dump strings).
    if (config_.scrub.enabled || scrubPagesScanned_ > 0) {
        os << "array.scrub.pagesScanned = " << scrubPagesScanned_
           << "\n";
        os << "array.scrub.uncorrectableFound = "
           << scrubUncorrectableFound_ << "\n";
        os << "array.scrub.latentRepaired = " << scrubLatentRepaired_
           << "\n";
        os << "array.scrub.passes = " << scrubPassesCompleted_
           << "\n";
    }
    if (config_.repair.enabled || repairPagesCopied_ > 0) {
        os << "array.repair.shardsRepaired = "
           << repairShardsRepaired_ << "\n";
        os << "array.repair.pagesCopied = " << repairPagesCopied_
           << "\n";
        os << "array.repair.bytesOverFabric = "
           << repairBytesOverFabric_ << "\n";
        os << "array.repair.lastCompleteTick = "
           << lastRepairCompleteTick_ << "\n";
    }
    if (tornSuperblocks_ > 0)
        os << "array.superblock.tornReplicas = " << tornSuperblocks_
           << "\n";
    arrayStats_.get("array.fabric.grants")
        .set(static_cast<double>(fabric_.grants()));
    arrayStats_.get("array.fabric.bytes")
        .set(static_cast<double>(fabric_.bytesCarried()));
    arrayStats_.get("array.fabric.waitTicks")
        .set(static_cast<double>(fabric_.waitTicks()));
    arrayStats_.get("array.fabric.busyTicks")
        .set(static_cast<double>(fabric_.busyTicks()));
    arrayStats_.dump(os);
    // Node 0 dumps unprefixed for continuity with the single-SSD
    // stats surface; other nodes prefix every line.
    nodes_[0]->syncLinkStats();
    nodes_[0]->stats().dump(os);
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        nodes_[i]->syncLinkStats();
        std::ostringstream ss;
        nodes_[i]->stats().dump(ss);
        std::string line;
        std::istringstream in(ss.str());
        while (std::getline(in, line))
            os << "node" << i << "." << line << "\n";
    }
}

} // namespace deepstore::core
