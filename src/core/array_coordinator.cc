#include "core/array_coordinator.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "ssd/throughput.h"

namespace deepstore::core {

namespace {

/** Aggregate-outcome precedence: the worst sub-query outcome wins,
 *  and a Success with missing coverage degrades. */
int
outcomeRank(QueryOutcome o)
{
    switch (o) {
      case QueryOutcome::Success: return 0;
      case QueryOutcome::Degraded: return 1;
      case QueryOutcome::DeadlineExceeded: return 2;
      case QueryOutcome::Aborted: return 3;
      case QueryOutcome::PowerLoss: return 4;
    }
    return 0;
}

QueryOutcome
outcomeOfRank(int rank)
{
    switch (rank) {
      case 0: return QueryOutcome::Success;
      case 1: return QueryOutcome::Degraded;
      case 2: return QueryOutcome::DeadlineExceeded;
      case 3: return QueryOutcome::Aborted;
      default: return QueryOutcome::PowerLoss;
    }
}

} // namespace

ArrayCoordinator::ArrayCoordinator(sim::EventQueue &events,
                                   ArrayConfig array,
                                   SsdNodeConfig base)
    : events_(events), config_(std::move(array)),
      fabric_("array.fabric", config_.hostFabricBandwidth),
      arrayStats_("array")
{
    if (config_.nodes.empty())
        config_.nodes.push_back(base.flash);
    if (config_.replication == 0)
        config_.replication = 1;
    nodes_.reserve(config_.nodes.size());
    for (std::uint32_t i = 0; i < config_.nodes.size(); ++i) {
        SsdNodeConfig ncfg = base;
        ncfg.flash = config_.nodes[i];
        nodes_.push_back(
            std::make_unique<SsdNode>(events_, std::move(ncfg), i));
    }
    for (const auto &death : config_.nodeDeaths) {
        if (death.node >= nodes_.size())
            fatal("scheduled death of unknown node %u", death.node);
        if (death.atTick == 0)
            continue;
        events_.schedule(death.atTick, [this, idx = death.node] {
            killNode(idx);
        });
    }
}

std::uint32_t
ArrayCoordinator::aliveCount() const
{
    std::uint32_t n = 0;
    for (const auto &node : nodes_)
        if (node->alive())
            ++n;
    return n;
}

// ---- ingest ------------------------------------------------------

std::vector<IngestPart>
ArrayCoordinator::stripeDb(std::uint64_t feature_bytes,
                           std::uint64_t count)
{
    DS_ASSERT(count > 0);
    std::vector<std::uint32_t> alive;
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i]->alive())
            alive.push_back(i);
    if (alive.empty())
        fatal("writeDB: every array node is dead");
    const std::uint32_t n =
        static_cast<std::uint32_t>(alive.size());
    const std::uint32_t copies =
        std::min<std::uint32_t>(std::max(config_.replication, 1u), n);

    // Contiguous feature chunks, one per alive node; shard i's
    // primary is alive[i], replicas on the next copies-1 alive
    // nodes. Every placement gets its own page run (each shard lays
    // its features out from a fresh page boundary, so heterogeneous
    // page sizes never split a feature across nodes).
    std::vector<IngestPart> parts;
    const std::uint64_t base = count / n;
    const std::uint64_t rem = count % n;
    std::uint64_t offset = 0;
    for (std::uint32_t i = 0; i < n && offset < count; ++i) {
        const std::uint64_t chunk = base + (i < rem ? 1 : 0);
        if (chunk == 0)
            continue;
        for (std::uint32_t c = 0; c < copies; ++c) {
            const std::uint32_t node_i = alive[(i + c) % n];
            DbMetadata shape;
            shape.featureBytes = feature_bytes;
            shape.numFeatures = chunk;
            const std::uint64_t pages = shape.pageCount(
                nodes_[node_i]->flash().pageBytes);
            IngestPart part;
            part.shard = i;
            part.node = node_i;
            part.lpnStart = nodes_[node_i]->allocatePages(pages);
            part.pages = pages;
            part.primary = c == 0;
            parts.push_back(part);
        }
        offset += chunk;
    }
    return parts;
}

void
ArrayCoordinator::bindDb(std::uint64_t db_id,
                         std::uint64_t feature_bytes,
                         std::uint64_t count,
                         const std::vector<IngestPart> &parts)
{
    DbInfo info;
    info.featureBytes = feature_bytes;
    std::uint64_t offset = 0;
    for (const IngestPart &part : parts) {
        if (part.primary) {
            DbShard shard;
            shard.startFeature = offset;
            info.shards.push_back(shard);
        }
        DbShard &shard = info.shards.back();
        ShardPlacement pl;
        pl.node = part.node;
        pl.lpnStart = part.lpnStart;
        // Write-time physical start, exactly like the single-SSD
        // engine recorded md.startPpn right after the ingest.
        pl.startPpn = nodes_[part.node]->translate(part.lpnStart);
        shard.placements.push_back(pl);
        if (part.primary) {
            // Shard size back-derived from the primary's page run is
            // ambiguous; recompute from the stripe math instead.
            shard.numFeatures = 0;
        }
    }
    // Re-derive chunk sizes with the same math stripeDb used.
    const std::uint32_t n =
        static_cast<std::uint32_t>(info.shards.size());
    DS_ASSERT(n > 0);
    const std::uint64_t base = count / n;
    const std::uint64_t rem = count % n;
    offset = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        info.shards[i].startFeature = offset;
        info.shards[i].numFeatures = base + (i < rem ? 1 : 0);
        offset += info.shards[i].numFeatures;
    }
    DS_ASSERT(offset == count);
    auto [it, inserted] = dbs_.emplace(db_id, std::move(info));
    if (!inserted)
        fatal("db %llu already bound to the array",
              static_cast<unsigned long long>(db_id));
}

std::vector<IngestPart>
ArrayCoordinator::growDb(std::uint64_t db_id, std::uint64_t extra)
{
    DS_ASSERT(extra > 0);
    auto it = dbs_.find(db_id);
    if (it == dbs_.end())
        fatal("unknown db %llu",
              static_cast<unsigned long long>(db_id));
    DbInfo &info = it->second;
    DbShard &last = info.shards.back();
    std::vector<IngestPart> parts;
    for (const ShardPlacement &pl : last.placements) {
        SsdNode &nd = *nodes_[pl.node];
        DbMetadata shape;
        shape.featureBytes = info.featureBytes;
        shape.numFeatures = last.numFeatures;
        const std::uint64_t old_pages =
            shape.pageCount(nd.flash().pageBytes);
        shape.numFeatures = last.numFeatures + extra;
        const std::uint64_t new_pages =
            shape.pageCount(nd.flash().pageBytes);
        if (new_pages == old_pages)
            continue;
        // The append must land directly after the shard; DeepStore
        // reserves the LPN range when that is possible.
        if (pl.lpnStart + old_pages != nd.nextFreeLpn())
            fatal("appendDB: database %llu is not the most recently "
                  "written database; append would break striping",
                  static_cast<unsigned long long>(db_id));
        IngestPart part;
        part.shard =
            static_cast<std::uint32_t>(info.shards.size() - 1);
        part.node = pl.node;
        part.lpnStart = nd.allocatePages(new_pages - old_pages);
        part.pages = new_pages - old_pages;
        part.primary = &pl == &last.placements.front();
        DS_ASSERT(part.lpnStart == pl.lpnStart + old_pages);
        parts.push_back(part);
    }
    last.numFeatures += extra;
    return parts;
}

std::vector<ReadSegment>
ArrayCoordinator::readSegments(std::uint64_t db_id,
                               std::uint64_t start,
                               std::uint64_t num) const
{
    const DbInfo &info = dbInfo(db_id);
    std::vector<ReadSegment> segs;
    for (const DbShard &shard : info.shards) {
        const std::uint64_t s_end =
            shard.startFeature + shard.numFeatures;
        const std::uint64_t lo = std::max(start, shard.startFeature);
        const std::uint64_t hi = std::min(start + num, s_end);
        if (lo >= hi)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi < 0)
            continue; // shard lost; functional contents still served
        const ShardPlacement &pl =
            shard.placements[static_cast<std::size_t>(pi)];
        const SsdNode &nd = *nodes_[pl.node];
        const std::uint64_t ls = lo - shard.startFeature;
        const std::uint64_t le = hi - shard.startFeature;
        ssd::FeatureLayout layout{info.featureBytes,
                                  nd.flash().pageBytes};
        std::uint64_t first_page, last_page;
        if (info.featureBytes <= nd.flash().pageBytes) {
            first_page = ls / layout.featuresPerPage();
            last_page = (le - 1) / layout.featuresPerPage();
        } else {
            first_page = ls * layout.pagesPerFeature();
            last_page = le * layout.pagesPerFeature() - 1;
        }
        segs.push_back(ReadSegment{pl.node,
                                   pl.lpnStart + first_page,
                                   last_page - first_page + 1});
    }
    return segs;
}

std::uint32_t
ArrayCoordinator::shardCount(std::uint64_t db_id) const
{
    return static_cast<std::uint32_t>(dbInfo(db_id).shards.size());
}

std::uint32_t
ArrayCoordinator::homeNodeFor(std::uint64_t db_id,
                              std::uint64_t db_start) const
{
    const DbInfo &info = dbInfo(db_id);
    for (const DbShard &shard : info.shards) {
        if (db_start >= shard.startFeature + shard.numFeatures)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi >= 0)
            return shard.placements[static_cast<std::size_t>(pi)]
                .node;
        break;
    }
    for (std::uint32_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i]->alive())
            return i;
    return 0;
}

std::optional<SubTarget>
ArrayCoordinator::homeTarget(std::uint64_t db_id,
                             std::uint64_t db_start,
                             std::uint64_t db_end) const
{
    const DbInfo &info = dbInfo(db_id);
    for (std::uint32_t si = 0; si < info.shards.size(); ++si) {
        const DbShard &shard = info.shards[si];
        const std::uint64_t s_end =
            shard.startFeature + shard.numFeatures;
        const std::uint64_t lo = std::max(db_start,
                                          shard.startFeature);
        const std::uint64_t hi = std::min(db_end, s_end);
        if (lo >= hi)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi < 0)
            continue;
        const ShardPlacement &pl =
            shard.placements[static_cast<std::size_t>(pi)];
        SubTarget t;
        t.shard = si;
        t.node = pl.node;
        t.localMd = localMetadata(db_id, info, shard, pl);
        t.localStart = lo - shard.startFeature;
        t.localEnd = hi - shard.startFeature;
        t.home = true;
        return t;
    }
    return std::nullopt;
}

const ArrayCoordinator::DbInfo &
ArrayCoordinator::dbInfo(std::uint64_t db_id) const
{
    auto it = dbs_.find(db_id);
    if (it == dbs_.end())
        fatal("unknown db %llu",
              static_cast<unsigned long long>(db_id));
    return it->second;
}

int
ArrayCoordinator::alivePlacement(
    const DbShard &shard,
    const std::vector<std::uint32_t> &tried) const
{
    for (std::size_t i = 0; i < shard.placements.size(); ++i) {
        const std::uint32_t node_i = shard.placements[i].node;
        if (!nodes_[node_i]->alive())
            continue;
        if (std::find(tried.begin(), tried.end(), node_i) !=
            tried.end())
            continue;
        return static_cast<int>(i);
    }
    return -1;
}

DbMetadata
ArrayCoordinator::localMetadata(std::uint64_t db_id,
                                const DbInfo &info,
                                const DbShard &shard,
                                const ShardPlacement &pl) const
{
    DbMetadata md;
    md.dbId = db_id;
    md.featureBytes = info.featureBytes;
    md.numFeatures = shard.numFeatures;
    md.startLpn = pl.lpnStart;
    md.startPpn = pl.startPpn;
    return md;
}

// ---- query plane -------------------------------------------------

std::uint64_t
ArrayCoordinator::composeSubId(std::uint64_t query_id,
                               std::uint64_t seq) const
{
    // seq 0 (the home sub-query) keeps the engine's query id, so a
    // single-node array is id-identical to the pre-array scheduler.
    // Later sub-queries tag the high bits; each node's scheduler has
    // its own id space, so cross-node reuse of the base id is fine.
    if (seq == 0)
        return query_id;
    DS_ASSERT(query_id < (1ULL << 44));
    return query_id | (seq << 44);
}

void
ArrayCoordinator::trackNode(AggQuery &agg, std::uint32_t node_i)
{
    for (const auto &[n, base] : agg.nocBase)
        if (n == node_i)
            return;
    agg.nocBase.emplace_back(node_i,
                             nodes_[node_i]->nocWaitTicks());
}

void
ArrayCoordinator::scatter(std::uint64_t query_id,
                          std::uint64_t db_id,
                          std::uint64_t db_start,
                          std::uint64_t db_end,
                          std::uint64_t scatter_bytes,
                          std::uint64_t merge_bytes,
                          const SubBuilder &builder, DoneFn done)
{
    const DbInfo &info = dbInfo(db_id);
    auto [it, inserted] = aggs_.emplace(query_id, AggQuery{});
    if (!inserted)
        fatal("duplicate array query id %llu",
              static_cast<unsigned long long>(query_id));
    AggQuery &agg = it->second;
    agg.queryId = query_id;
    agg.dbId = db_id;
    agg.submitTick = events_.now();
    agg.totalFeatures = db_end - db_start;
    agg.scatterBytes = scatter_bytes;
    agg.mergeBytes = merge_bytes;
    agg.builder = builder;
    agg.done = std::move(done);
    ++inFlight_;
    arrayStats_.get("array.queriesScattered") += 1;

    // One sub-target per shard overlapping the range, from each
    // shard's first alive placement; shards with no survivor are
    // lost up front (deterministic Degraded coverage).
    struct Pending
    {
        SubTarget target;
        std::uint64_t subId = 0;
        std::size_t idx = 0;
    };
    std::vector<Pending> pending;
    for (std::uint32_t si = 0; si < info.shards.size(); ++si) {
        const DbShard &shard = info.shards[si];
        const std::uint64_t s_end =
            shard.startFeature + shard.numFeatures;
        const std::uint64_t lo = std::max(db_start,
                                          shard.startFeature);
        const std::uint64_t hi = std::min(db_end, s_end);
        if (lo >= hi)
            continue;
        const int pi = alivePlacement(shard, {});
        if (pi < 0) {
            agg.lostFeatures += hi - lo;
            arrayStats_.get("array.shardsLostNoReplica") += 1;
            continue;
        }
        const ShardPlacement &pl =
            shard.placements[static_cast<std::size_t>(pi)];
        Pending p;
        p.target.shard = si;
        p.target.node = pl.node;
        p.target.localMd = localMetadata(db_id, info, shard, pl);
        p.target.localStart = lo - shard.startFeature;
        p.target.localEnd = hi - shard.startFeature;
        p.target.home = pending.empty();
        p.subId = composeSubId(query_id,
                               pending.empty() ? 0
                                               : agg.nextSubSeq++);
        p.idx = agg.subs.size();
        SubState ss;
        ss.shard = si;
        ss.node = pl.node;
        ss.subId = p.subId;
        ss.localStart = p.target.localStart;
        ss.localEnd = p.target.localEnd;
        ss.triedNodes.push_back(pl.node);
        agg.subs.push_back(ss);
        ++agg.outstanding;
        pending.push_back(std::move(p));
    }

    if (pending.empty()) {
        // Every shard in range is gone: terminal immediately, zero
        // coverage, no fabric traffic.
        agg.worstRank = outcomeRank(QueryOutcome::Degraded);
        finalizeAgg(agg);
        return;
    }
    agg.homeNode = pending.front().target.node;
    const Tick now = events_.now();
    for (auto &p : pending) {
        trackNode(agg, p.target.node);
        QuerySubmission sub = agg.builder(p.target, p.subId);
        DS_ASSERT(sub.queryId == p.subId);
        if (p.target.home) {
            // The home sub-query submits synchronously — a
            // single-node array runs zero coordinator events.
            submitSub(agg, p.idx, std::move(sub));
            continue;
        }
        // Remote dispatch: the sub-query descriptor + qfv travel
        // over the host fabric before the node can start.
        const Tick grant = scatter_bytes > 0
                               ? fabric_.acquire(now, scatter_bytes)
                               : now;
        agg.interNodeBytes += scatter_bytes;
        arrayStats_.get("array.subQueriesRemote") += 1;
        const std::uint64_t gen = agg.gen;
        events_.schedule(
            grant, [this, query_id, idx = p.idx, gen,
                    sub = std::move(sub)]() mutable {
                auto ait = aggs_.find(query_id);
                if (ait == aggs_.end())
                    return;
                AggQuery &a = ait->second;
                if (a.finished || a.gen != gen ||
                    a.subs[idx].terminal)
                    return;
                if (!nodes_[a.subs[idx].node]->alive()) {
                    // Node died while the dispatch was in flight:
                    // fail over immediately (zero coverage).
                    if (!tryRedispatch(a, idx, 0)) {
                        a.subs[idx].terminal = true;
                        arrayStats_.get("array.subQueriesLost") += 1;
                        subArrived(a);
                    }
                    return;
                }
                submitSub(a, idx, std::move(sub));
            });
    }
}

void
ArrayCoordinator::submitSingle(std::uint64_t query_id,
                               std::uint32_t node_i,
                               QuerySubmission sub, DoneFn done)
{
    auto [it, inserted] = aggs_.emplace(query_id, AggQuery{});
    if (!inserted)
        fatal("duplicate array query id %llu",
              static_cast<unsigned long long>(query_id));
    AggQuery &agg = it->second;
    agg.queryId = query_id;
    agg.submitTick = events_.now();
    agg.homeNode = node_i;
    agg.done = std::move(done);
    ++inFlight_;
    SubState ss;
    ss.node = node_i;
    ss.subId = sub.queryId;
    DS_ASSERT(sub.queryId == query_id);
    agg.subs.push_back(ss);
    ++agg.outstanding;
    trackNode(agg, node_i);
    submitSub(agg, 0, std::move(sub));
}

void
ArrayCoordinator::submitSub(AggQuery &agg, std::size_t idx,
                            QuerySubmission sub)
{
    SubState &ss = agg.subs[idx];
    const std::uint64_t qid = agg.queryId;
    sub.finalize = [this, qid, idx] { onSubTerminal(qid, idx); };
    ss.submitted = true;
    nodes_[ss.node]->scheduler().submit(std::move(sub));
}

void
ArrayCoordinator::onSubTerminal(std::uint64_t query_id,
                                std::size_t idx)
{
    AggQuery &agg = aggs_.at(query_id);
    SubState &ss = agg.subs[idx];
    DS_ASSERT(!ss.terminal);
    SsdNode &nd = *nodes_[ss.node];
    QueryScheduler &sched = nd.scheduler();
    const QueryOutcome oc = sched.outcome(ss.subId);
    const std::uint64_t covered = sched.coveredFeatures(ss.subId);
    ss.terminal = true;
    const QueryRunStats rs = sched.runStats(ss.subId);
    agg.run.computeStallTicks += rs.computeStallTicks;
    agg.run.backpressureTicks += rs.backpressureTicks;
    agg.run.probeTicks += rs.probeTicks;
    agg.run.reduceTicks += rs.reduceTicks;

    // Whole-drive failure: the node died under this sub-query.
    // Credit what it scanned and re-stripe the remainder onto a
    // replica; only when no replica survives (or the retry budget is
    // gone) does the loss reach the aggregate outcome.
    if (!nd.alive() && oc != QueryOutcome::Success) {
        agg.coveredFeatures += covered;
        if (tryRedispatch(agg, idx, covered))
            return;
        agg.lostFeatures += (ss.localEnd - ss.localStart) - covered;
        arrayStats_.get("array.subQueriesLost") += 1;
        subArrived(agg);
        return;
    }

    agg.coveredFeatures += covered;
    agg.worstRank = std::max(agg.worstRank, outcomeRank(oc));
    // Merge leg: a remote node ships its candidate set (partial
    // top-K) back to the home node over the fabric. Aborted
    // sub-queries ship nothing; power loss kills the fabric.
    const bool ships = ss.node != agg.homeNode &&
                       agg.mergeBytes > 0 && !inPowerLoss_ &&
                       oc != QueryOutcome::Aborted;
    if (!ships) {
        subArrived(agg);
        return;
    }
    const Tick now = events_.now();
    const Tick grant = fabric_.acquire(now, agg.mergeBytes);
    agg.interNodeBytes += agg.mergeBytes;
    agg.mergeTicks += grant - now;
    const std::uint64_t gen = agg.gen;
    events_.schedule(grant, [this, query_id, gen] {
        auto it = aggs_.find(query_id);
        if (it == aggs_.end())
            return;
        AggQuery &a = it->second;
        if (a.finished || a.gen != gen)
            return;
        subArrived(a);
    });
}

bool
ArrayCoordinator::tryRedispatch(AggQuery &agg, std::size_t idx,
                                std::uint64_t covered)
{
    // Copy what we need before push_back invalidates references.
    const SubState failed = agg.subs[idx];
    if (failed.retries >= config_.maxNodeRetries)
        return false;
    const std::uint64_t rest_start = failed.localStart + covered;
    if (rest_start >= failed.localEnd) {
        // Everything was scanned before the drive died; the shard
        // needs no failover, just the normal arrival accounting.
        agg.worstRank = std::max(
            agg.worstRank, outcomeRank(QueryOutcome::Success));
        subArrived(agg);
        return true;
    }
    const DbInfo &info = dbInfo(agg.dbId);
    const DbShard &shard = info.shards[failed.shard];
    const int pi = alivePlacement(shard, failed.triedNodes);
    if (pi < 0)
        return false;
    const ShardPlacement &pl =
        shard.placements[static_cast<std::size_t>(pi)];

    SubState repl;
    repl.shard = failed.shard;
    repl.node = pl.node;
    repl.subId = composeSubId(agg.queryId, agg.nextSubSeq++);
    repl.localStart = rest_start;
    repl.localEnd = failed.localEnd;
    repl.retries = failed.retries + 1;
    repl.triedNodes = failed.triedNodes;
    repl.triedNodes.push_back(pl.node);
    const std::size_t new_idx = agg.subs.size();
    agg.subs.push_back(repl);
    ++agg.redispatches;
    arrayStats_.get("array.redispatches") += 1;
    trackNode(agg, pl.node);

    SubTarget target;
    target.shard = failed.shard;
    target.node = pl.node;
    target.localMd = localMetadata(agg.dbId, info, shard, pl);
    target.localStart = repl.localStart;
    target.localEnd = repl.localEnd;
    target.home = false;
    QuerySubmission sub = agg.builder(target, repl.subId);
    DS_ASSERT(sub.queryId == repl.subId);

    // The replacement descriptor re-crosses the fabric.
    const Tick now = events_.now();
    const Tick grant =
        agg.scatterBytes > 0
            ? fabric_.acquire(now, agg.scatterBytes)
            : now;
    agg.interNodeBytes += agg.scatterBytes;
    const std::uint64_t gen = agg.gen;
    const std::uint64_t qid = agg.queryId;
    events_.schedule(grant, [this, qid, new_idx, gen,
                             sub = std::move(sub)]() mutable {
        auto it = aggs_.find(qid);
        if (it == aggs_.end())
            return;
        AggQuery &a = it->second;
        if (a.finished || a.gen != gen ||
            a.subs[new_idx].terminal)
            return;
        if (!nodes_[a.subs[new_idx].node]->alive()) {
            if (!tryRedispatch(a, new_idx, 0)) {
                a.subs[new_idx].terminal = true;
                arrayStats_.get("array.subQueriesLost") += 1;
                subArrived(a);
            }
            return;
        }
        submitSub(a, new_idx, std::move(sub));
    });
    return true;
}

void
ArrayCoordinator::subArrived(AggQuery &agg)
{
    DS_ASSERT(agg.outstanding > 0);
    if (--agg.outstanding == 0)
        finalizeAgg(agg);
}

void
ArrayCoordinator::finalizeAgg(AggQuery &agg)
{
    DS_ASSERT(!agg.finished);
    agg.finished = true;
    agg.completeTick = events_.now();
    DS_ASSERT(inFlight_ > 0);
    --inFlight_;

    ArrayQueryStats st;
    st.submitTick = agg.submitTick;
    st.completeTick = agg.completeTick;
    st.run = agg.run;
    st.mergeTicks = agg.mergeTicks;
    st.interNodeBytes = agg.interNodeBytes;
    st.redispatches = agg.redispatches;
    st.nodesParticipating =
        static_cast<std::uint32_t>(agg.nocBase.size());
    for (const auto &[node_i, base] : agg.nocBase)
        st.nocWaitTicks += nodes_[node_i]->nocWaitTicks() - base;

    // Single-sub aggregates (every 1-node array query, and every
    // cache hit) pass the node scheduler's outcome and coverage
    // through bit-identically — the determinism pin depends on the
    // float division happening exactly once.
    const bool passthrough = agg.subs.size() == 1 &&
                             agg.subs[0].submitted &&
                             agg.lostFeatures == 0 &&
                             agg.redispatches == 0;
    if (passthrough) {
        const SubState &ss = agg.subs[0];
        QueryScheduler &sched = nodes_[ss.node]->scheduler();
        st.outcome = sched.outcome(ss.subId);
        st.coverageFraction = sched.coverageFraction(ss.subId);
    } else {
        const std::uint64_t total = agg.totalFeatures;
        const std::uint64_t covered =
            std::min(agg.coveredFeatures, total);
        QueryOutcome oc = outcomeOfRank(agg.worstRank);
        if (oc == QueryOutcome::Success && covered < total)
            oc = QueryOutcome::Degraded;
        st.outcome = oc;
        if (total == 0)
            st.coverageFraction =
                oc == QueryOutcome::Success ? 1.0 : 0.0;
        else
            st.coverageFraction = static_cast<double>(covered) /
                                  static_cast<double>(total);
    }
    agg.terminalOutcome = st.outcome;
    if (agg.done)
        agg.done(st);
}

bool
ArrayCoordinator::cancel(std::uint64_t query_id)
{
    auto it = aggs_.find(query_id);
    if (it == aggs_.end() || it->second.finished)
        return false;
    AggQuery &agg = it->second;
    // Snapshot: the cascade below finalizes subs (and possibly the
    // aggregate) synchronously.
    const std::size_t n_subs = agg.subs.size();
    for (std::size_t i = 0; i < n_subs && !agg.finished; ++i) {
        SubState &ss = agg.subs[i];
        if (ss.terminal)
            continue;
        if (ss.submitted) {
            nodes_[ss.node]->scheduler().cancel(ss.subId);
        } else {
            // Still in fabric transit: never reaches a scheduler.
            ss.terminal = true;
            agg.worstRank = std::max(
                agg.worstRank, outcomeRank(QueryOutcome::Aborted));
            subArrived(agg);
        }
    }
    return true;
}

std::optional<QueryState>
ArrayCoordinator::state(std::uint64_t query_id) const
{
    auto it = aggs_.find(query_id);
    if (it == aggs_.end())
        return std::nullopt;
    const AggQuery &agg = it->second;
    if (agg.finished)
        return agg.terminalOutcome == QueryOutcome::Success
                   ? QueryState::Complete
                   : QueryState::Degraded;
    if (!agg.subs.empty()) {
        const SubState &home = agg.subs.front();
        if (home.submitted) {
            auto st = nodes_[home.node]->scheduler().state(
                home.subId);
            if (st && !isTerminal(*st))
                return *st;
        }
    }
    // Sub-queries done or in transit; merges pending on the fabric.
    return QueryState::Reduce;
}

void
ArrayCoordinator::killNode(std::uint32_t node_i)
{
    SsdNode &nd = *nodes_.at(node_i);
    if (!nd.alive())
        return;
    arrayStats_.get("array.nodeDeaths") += 1;
    // kill() marks the drive dead first, then fails its in-flight
    // sub-queries; their finalizes land in onSubTerminal, which sees
    // the dead node and re-stripes onto replicas.
    nd.kill();
}

void
ArrayCoordinator::powerLoss()
{
    arrayStats_.get("array.powerLosses") += 1;
    // Kill every node's in-flight sub-queries at the loss tick;
    // merge legs are suppressed (inPowerLoss_) so arrivals are
    // synchronous and aggregates finalize *now*, before volatile
    // device state drops.
    inPowerLoss_ = true;
    for (auto &nd : nodes_)
        nd->scheduler().powerLoss();
    // Aggregates still pending (merges or dispatches that were on
    // the fabric when the lights went out) finalize with outcome
    // PowerLoss; their scheduled fabric events are invalidated.
    for (auto &[qid, agg] : aggs_) {
        if (agg.finished)
            continue;
        ++agg.gen;
        for (SubState &ss : agg.subs)
            ss.terminal = true;
        agg.worstRank = outcomeRank(QueryOutcome::PowerLoss);
        finalizeAgg(agg);
    }
    fabric_.reset(events_.now());
    for (auto &nd : nodes_)
        nd->devicePowerLoss();
    inPowerLoss_ = false;
}

void
ArrayCoordinator::dumpStats(std::ostream &os)
{
    os << "array.nodes = " << nodes_.size() << "\n";
    os << "array.aliveNodes = " << aliveCount() << "\n";
    os << "array.replication = " << config_.replication << "\n";
    arrayStats_.get("array.fabric.grants")
        .set(static_cast<double>(fabric_.grants()));
    arrayStats_.get("array.fabric.bytes")
        .set(static_cast<double>(fabric_.bytesCarried()));
    arrayStats_.get("array.fabric.waitTicks")
        .set(static_cast<double>(fabric_.waitTicks()));
    arrayStats_.get("array.fabric.busyTicks")
        .set(static_cast<double>(fabric_.busyTicks()));
    arrayStats_.dump(os);
    // Node 0 dumps unprefixed for continuity with the single-SSD
    // stats surface; other nodes prefix every line.
    nodes_[0]->syncLinkStats();
    nodes_[0]->stats().dump(os);
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        nodes_[i]->syncLinkStats();
        std::ostringstream ss;
        nodes_[i]->stats().dump(ss);
        std::string line;
        std::istringstream in(ss.str());
        while (std::getline(in, line))
            os << "node" << i << "." << line << "\n";
    }
}

} // namespace deepstore::core
