/**
 * @file
 * Event-driven model of one in-storage accelerator's scan pipeline
 * (paper Fig. 5): the accelerator controller prefetches database
 * feature vectors from its slice of flash into the bounded FLASH_DFV
 * queue while the systolic array computes the SCN on earlier
 * features.
 *
 * Unlike the closed-form DeepStoreModel (which assumes steady state),
 * this model drives the *actual* event-driven flash controller —
 * plane contention, bus serialization, retry injection and all — so
 * it captures warm-up, queue-depth effects, and latency jitter. The
 * test suite cross-validates the two models; the queue-depth ablation
 * bench sweeps it.
 */

#ifndef DEEPSTORE_CORE_ACCEL_PIPELINE_H
#define DEEPSTORE_CORE_ACCEL_PIPELINE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "ssd/flash_controller.h"
#include "ssd/throughput.h"

namespace deepstore::core {

/** Static configuration of a pipeline run. */
struct PipelineRunConfig
{
    /** Features this accelerator scans (its stripe of the DB). */
    std::uint64_t features = 0;
    /** Bytes per feature vector. */
    std::uint64_t featureBytes = 0;
    /** SCN cycles per feature on this accelerator's array. */
    Cycles computeCyclesPerFeature = 0;
    /** Per-feature compute bursts, one per model layer (the systolic
     *  slot schedule). When non-empty it supersedes the scalar
     *  computeCyclesPerFeature. */
    std::vector<Cycles> layerCycles;
    /** Array clock. */
    double frequencyHz = 800e6;
    /** FLASH_DFV queue capacity in flash pages. */
    std::uint32_t queueDepthPages = 32;
    /** Lockstep slot width in features (wsGroupSize on
     *  weight-stationary placements). */
    std::uint64_t featuresPerSlot = 1;
    /** Non-resident weight bytes re-streamed per lockstep slot
     *  (0 = fully resident model, no weight traffic). */
    std::uint64_t weightBytesPerSlot = 0;
    /** DRAM bandwidth feeding the weight stream (bytes/s); required
     *  when weightBytesPerSlot > 0. */
    double dramBandwidth = 0.0;
};

/** Outcome of a pipeline run. */
struct PipelineRunStats
{
    double totalSeconds = 0.0;
    double computeBusySeconds = 0.0;
    /** Time the array sat idle waiting for the FLASH_DFV queue. */
    double starvedSeconds = 0.0;
    /** Time compute waited on the slot weight stream. */
    double weightStallSeconds = 0.0;
    /** Time the stream sat fully delivered, blocked on compute. */
    double backpressureSeconds = 0.0;
    /** Channel-bus arbitration wait accrued during the run. */
    double nocWaitSeconds = 0.0;
    std::uint64_t pageReads = 0;
    std::uint64_t featuresProcessed = 0;

    double
    perFeatureSeconds() const
    {
        return featuresProcessed
                   ? totalSeconds /
                         static_cast<double>(featuresProcessed)
                   : 0.0;
    }
};

/**
 * Run one accelerator's scan to completion on the given event queue
 * and channel controller. Pages are striped round-robin across the
 * channel's chips and planes (the §4.4 layout restricted to one
 * channel). Blocks until the event queue drains.
 */
PipelineRunStats runAcceleratorPipeline(sim::EventQueue &events,
                                        ssd::FlashController &channel,
                                        const ssd::FlashParams &params,
                                        const PipelineRunConfig &config);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_ACCEL_PIPELINE_H
