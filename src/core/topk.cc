#include "core/topk.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::core {

TopK::TopK(std::size_t k) : k_(k)
{
    if (k == 0)
        fatal("top-K capacity must be positive");
    tags_.resize(k);
    table_.resize(k);
    for (std::size_t i = 0; i < k; ++i)
        tags_[i] = static_cast<std::uint32_t>(i);
}

void
TopK::insert(const ScoredResult &result)
{
    if (used_ == k_ && result.score <= table_[tags_[used_ - 1]].score)
        return; // does not beat the current K-th best

    // Binary search for the insertion position among the used
    // entries: first position whose score is strictly below the new
    // one (stable for ties).
    std::size_t lo = 0, hi = used_;
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (table_[tags_[mid]].score >= result.score)
            lo = mid + 1;
        else
            hi = mid;
    }
    std::size_t pos = lo;

    // Shift lower-priority tags down by one; the last tag (either a
    // free slot or the dropped entry) is recycled for the new result.
    std::size_t last = used_ < k_ ? used_ : k_ - 1;
    std::uint32_t freed = tags_[last];
    for (std::size_t i = last; i > pos; --i) {
        tags_[i] = tags_[i - 1];
        ++shifts_;
    }
    tags_[pos] = freed;
    table_[freed] = result;
    if (used_ < k_)
        ++used_;
}

std::vector<ScoredResult>
TopK::results() const
{
    std::vector<ScoredResult> out;
    out.reserve(used_);
    for (std::size_t i = 0; i < used_; ++i)
        out.push_back(table_[tags_[i]]);
    return out;
}

float
TopK::kthScore() const
{
    if (used_ == 0)
        return -1.0f;
    return table_[tags_[used_ - 1]].score;
}

void
TopK::merge(const TopK &other)
{
    for (const auto &r : other.results())
        insert(r);
}

void
TopK::clear()
{
    used_ = 0;
    shifts_ = 0;
    for (std::size_t i = 0; i < k_; ++i)
        tags_[i] = static_cast<std::uint32_t>(i);
}

} // namespace deepstore::core
