#include "core/ssd_node.h"

#include "common/logging.h"

namespace deepstore::core {

SsdNode::SsdNode(sim::EventQueue &events, SsdNodeConfig config,
                 std::uint32_t index)
    : config_(std::move(config)), index_(index),
      ssd_(std::make_unique<ssd::Ssd>(events, config_.flash)),
      model_(config_.flash)
{
    // Scan streams issue real flash reads through the *same*
    // per-channel controllers that serve this node's hostRead/
    // hostWrite and metadata persistence, so query and host traffic
    // observably contend for planes and channel buses.
    dfv_ = std::make_unique<ssd::DfvStreamService>(
        events,
        [this](std::uint32_t channel) -> ssd::FlashController & {
            return ssd_->controller(channel);
        },
        ssd_->stats());
    QuerySchedulerConfig scfg;
    scfg.maxResidentScans = config_.maxResidentScans;
    // The node's accelerator-unit fault domain shares its flash
    // fault schedule's seed and unit-failure list.
    scfg.faults = config_.flash.faults;
    scfg.shardWatchdogSeconds = config_.shardWatchdogSeconds;
    scfg.maxShardRetries = config_.maxShardRetries;
    scfg.shardRetryBackoffSeconds = config_.shardRetryBackoffSeconds;
    scfg.unitsAtLevel[static_cast<std::size_t>(Level::SsdLevel)] = 1;
    scfg.unitsAtLevel[static_cast<std::size_t>(Level::ChannelLevel)] =
        config_.flash.channels;
    scfg.unitsAtLevel[static_cast<std::size_t>(Level::ChipLevel)] =
        config_.flash.channels * config_.flash.chipsPerChannel;
    // Weight streams, QC probes, hit rescores, and top-K reduces all
    // arbitrate on this node's one DRAM link — the same link its FTL
    // relocation copies stage through.
    scfg.dram = &ssd_->dramLink();
    scheduler_ = std::make_unique<QueryScheduler>(events, scfg, *dfv_,
                                                  &ssd_->stats());
}

StatGroup &
SsdNode::stats()
{
    return ssd_->stats();
}

std::uint64_t
SsdNode::allocatePages(std::uint64_t pages)
{
    DS_ASSERT(pages > 0);
    const std::uint64_t start = nextFreeLpn_;
    nextFreeLpn_ += pages;
    if (nextFreeLpn_ > reservedMetadataLpn())
        fatal("node %u out of LPN space: %llu pages requested past "
              "the reserved metadata block",
              index_, static_cast<unsigned long long>(pages));
    return start;
}

void
SsdNode::hostWrite(std::uint64_t lpn_start, std::uint64_t count,
                   ssd::Completion on_complete)
{
    ssd_->hostWrite(lpn_start, count, std::move(on_complete));
}

void
SsdNode::hostRead(std::uint64_t lpn_start, std::uint64_t count,
                  ssd::Completion on_complete)
{
    ssd_->hostRead(lpn_start, count, std::move(on_complete));
}

void
SsdNode::hostTrim(std::uint64_t lpn_start, std::uint64_t count,
                  ssd::Completion on_complete)
{
    ssd_->hostTrim(lpn_start, count, std::move(on_complete));
}

void
SsdNode::scrubRead(std::uint64_t lpn,
                   ssd::Ssd::StatusCompletion on_complete)
{
    ssd_->scrubRead(ssd_->ftl().translate(lpn),
                    std::move(on_complete));
}

std::uint64_t
SsdNode::translate(std::uint64_t lpn)
{
    return ssd_->ftl().translate(lpn);
}

void
SsdNode::registerWrite(std::uint64_t lpn)
{
    ssd_->ftl().write(lpn);
}

void
SsdNode::trimPages(std::uint64_t lpn_start, std::uint64_t pages)
{
    ssd_->ftl().trim(lpn_start, pages);
}

std::uint64_t
SsdNode::mappingEpoch() const
{
    return ssd_->ftl().mappingEpoch();
}

std::uint64_t
SsdNode::reservedMetadataLpn() const
{
    return config_.flash.totalPages() - ssd_->ftl().superblockPages();
}

void
SsdNode::storePayload(std::uint64_t lpn,
                      std::vector<std::uint8_t> bytes)
{
    ssd_->storePayload(lpn, std::move(bytes));
}

const std::vector<std::uint8_t> *
SsdNode::payload(std::uint64_t lpn) const
{
    return ssd_->payload(lpn);
}

ScanPlan
SsdNode::resolvePlan(const Placement &placement,
                     const DbMetadata &local_md,
                     std::uint64_t local_start,
                     std::uint64_t local_end)
{
    return resolveScanPlan(
        placement, config_.flash, local_md, local_start, local_end,
        [this](std::uint64_t lpn) {
            return ssd_->ftl().translate(lpn);
        },
        ssd_->ftl().mappingEpoch());
}

Tick
SsdNode::nocWaitTicks() const
{
    return ssd_->nocWaitTicks();
}

void
SsdNode::syncLinkStats()
{
    ssd_->syncLinkStats();
}

void
SsdNode::failAllInFlight(QueryOutcome outcome)
{
    scheduler_->failAllInFlight(outcome);
}

void
SsdNode::devicePowerLoss()
{
    ssd_->powerLoss();
}

void
SsdNode::kill()
{
    if (!alive_)
        return;
    // Mark dead *first*: the failed sub-queries' finalizes run
    // synchronously and the coordinator keys its re-striping decision
    // off alive().
    alive_ = false;
    scheduler_->failAllInFlight(QueryOutcome::Degraded);
    ssd_->powerLoss();
}

} // namespace deepstore::core
