/**
 * @file
 * Budget-constrained design-space exploration (paper §4.5).
 *
 * The paper sizes each placement level's accelerator by sweeping the
 * systolic-array shape and scratchpad size, eliminating designs that
 * exceed the level's power budget, and picking the best performer
 * across the five workloads. This module reproduces that methodology
 * end-to-end: the ablation bench shows the chosen points and the test
 * suite checks that the paper's Table 3 configurations sit on the
 * resulting performance/power frontier.
 */

#ifndef DEEPSTORE_CORE_DSE_SELECT_H
#define DEEPSTORE_CORE_DSE_SELECT_H

#include <vector>

#include "core/placement.h"
#include "workloads/apps.h"

namespace deepstore::core {

/** One evaluated candidate configuration. */
struct DseCandidate
{
    systolic::ArrayConfig config;
    /** Geometric-mean per-feature scan time across the workloads. */
    double meanPerFeatureSeconds = 0.0;
    /** Worst-case (across apps) average power of one accelerator. */
    double peakPowerW = 0.0;
    double areaMm2 = 0.0;
    bool meetsPowerBudget = false;
    bool meetsAreaBudget = false;

    bool feasible() const
    {
        return meetsPowerBudget && meetsAreaBudget;
    }

    /** Candidates that fail a budget sort last; among those that
     *  pass, faster is better. Exact performance ties happen at the
     *  channel level, where the private scratchpad does not gate
     *  timing (weights are resident in the shared L2): break them
     *  toward the larger scratchpad (layer-size headroom at equal
     *  speed — the paper's Table 3 choice), then toward lower power
     *  so the order is total and deterministic. */
    bool
    betterThan(const DseCandidate &o) const
    {
        if (feasible() != o.feasible())
            return feasible();
        if (meanPerFeatureSeconds != o.meanPerFeatureSeconds)
            return meanPerFeatureSeconds < o.meanPerFeatureSeconds;
        if (config.scratchpadBytes != o.config.scratchpadBytes)
            return config.scratchpadBytes > o.config.scratchpadBytes;
        return peakPowerW < o.peakPowerW;
    }
};

/** Result of exploring one placement level. */
struct DseResult
{
    Level level;
    std::vector<DseCandidate> candidates; ///< sorted best-first
    DseCandidate table3;                  ///< the paper's choice

    const DseCandidate &best() const { return candidates.front(); }
};

/**
 * Explore the design space for one placement level over the given
 * SSD geometry and the five Table 1 workloads: PE budgets (powers of
 * two up to `max_pes`), power-of-two aspect ratios, and scratchpad
 * sizes, under the level's §4.5 power budget.
 */
DseResult exploreLevel(Level level, const ssd::FlashParams &flash,
                       std::int64_t max_pes = 4096);

/**
 * Evaluate one explicit candidate configuration at a level (exposed
 * for the dataflow/L2 ablation benches).
 */
DseCandidate evaluateCandidate(Level level,
                               const ssd::FlashParams &flash,
                               const systolic::ArrayConfig &config);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_DSE_SELECT_H
