/**
 * @file
 * FLASH_DFV prefetch-queue pipeline model (paper §4.4, Fig. 5).
 *
 * The accelerator controller prefetches database feature vectors from
 * flash into a bounded queue while the systolic array computes on a
 * different set of features; the queue decouples (and overlaps) the
 * two. This model simulates a producer (flash supply) and consumer
 * (SCN compute) through a queue of configurable depth, supporting
 * per-item time variation so the depth's smoothing effect on latency
 * jitter is measurable (the queue-depth ablation bench uses this).
 */

#ifndef DEEPSTORE_CORE_PREFETCH_QUEUE_H
#define DEEPSTORE_CORE_PREFETCH_QUEUE_H

#include <cstdint>
#include <functional>

namespace deepstore::core {

/** Result of simulating a bounded producer/consumer pipeline. */
struct PipelineResult
{
    double totalSeconds = 0.0;
    double producerStallSeconds = 0.0; ///< waiting for queue space
    double consumerStallSeconds = 0.0; ///< waiting for data
    std::uint64_t items = 0;

    double
    perItemSeconds() const
    {
        return items ? totalSeconds / static_cast<double>(items) : 0.0;
    }
};

/**
 * Simulate `items` elements flowing through a queue of depth
 * `queue_depth`. `produce_time(i)` / `consume_time(i)` give the
 * per-item service times in seconds (allowing jittered flash reads).
 * The producer may work ahead while at most `queue_depth` finished
 * items are buffered; the consumer handles items in order.
 */
PipelineResult
simulatePrefetchPipeline(std::uint64_t items, std::uint64_t queue_depth,
                         const std::function<double(std::uint64_t)>
                             &produce_time,
                         const std::function<double(std::uint64_t)>
                             &consume_time);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_PREFETCH_QUEUE_H
