/**
 * @file
 * TimeLedger: the single owner of simulated-time accounting for the
 * DeepStore engine.
 *
 * Before the async-scheduler refactor the engine kept a private
 * `simSeconds_` accumulator that was bumped at eight scattered call
 * sites, *in addition to* advancing the discrete-event clock — a
 * double-accounting hazard (a cache hit added its latency to the
 * accumulator and then ran the event queue over the same window).
 *
 * The ledger fixes this by construction: **simulated time IS the
 * event-queue tick**. `seconds()` is a pure view of the queue's
 * clock, so it can never drift from the device simulation. Code that
 * previously added closed-form durations now either
 *
 *   - `attribute(s, c)`  — label an interval that already elapsed on
 *     the event queue (e.g. an event-driven host write), or
 *   - `advance(s, c)`    — move the shared clock forward by a
 *     closed-form duration (e.g. a model upload over the host
 *     interface), running any device/scheduler events that fall
 *     inside the window, then label it.
 *
 * Per-component totals are *occupancy* seconds: with multiple queries
 * in flight they may legitimately sum to more than the wall-clock
 * total (two overlapping scans each attribute their full latency).
 */

#ifndef DEEPSTORE_CORE_TIME_LEDGER_H
#define DEEPSTORE_CORE_TIME_LEDGER_H

#include <array>
#include <cstddef>
#include <iosfwd>

#include "sim/event_queue.h"

namespace deepstore::core {

/** Where a span of simulated time was spent. */
enum class TimeComponent : std::size_t
{
    HostWrite,   ///< database writes / appends over the host path
    HostRead,    ///< readDB transfers over the host path
    ModelUpload, ///< SCN/QCN weight upload into SSD DRAM
    QcLookup,    ///< QCN scoring of the Query Cache
    CacheHit,    ///< SCN rescore of cached top-K entries
    Scan,        ///< full accelerator scans (queueing included)
    Metadata,    ///< metadata persist/reload on the reserved block
    Count
};

const char *toString(TimeComponent c);

/** Owner of simulated-time accounting (see file comment). */
class TimeLedger
{
  public:
    explicit TimeLedger(sim::EventQueue &events) : events_(events) {}

    TimeLedger(const TimeLedger &) = delete;
    TimeLedger &operator=(const TimeLedger &) = delete;

    /** The simulated clock, in ticks. */
    Tick nowTick() const { return events_.now(); }

    /** The simulated clock, in seconds. Always equals
     *  ticksToSeconds(nowTick()). */
    double seconds() const { return ticksToSeconds(events_.now()); }

    /**
     * Label `s` seconds that have *already elapsed* on the event
     * queue (the caller measured a tick delta). Does not move the
     * clock.
     */
    void attribute(double s, TimeComponent c);

    /**
     * Advance the shared clock by a closed-form duration and label
     * it. Device/scheduler events falling inside the window execute
     * (the device keeps running while the host-side operation is in
     * progress).
     */
    void advance(double s, TimeComponent c);

    /** Occupancy seconds attributed to one component. */
    double componentSeconds(TimeComponent c) const;

    /** Sum of all attributed occupancy seconds. */
    double attributedSeconds() const;

    /** Dump `engine.time.<component>` lines (deterministic order). */
    void dump(std::ostream &os) const;

  private:
    sim::EventQueue &events_;
    std::array<double,
               static_cast<std::size_t>(TimeComponent::Count)>
        perComponent_{};
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_TIME_LEDGER_H
