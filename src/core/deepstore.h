/**
 * @file
 * The DeepStore runtime system: the query engine that runs on the
 * SSD's embedded cores (§4.7.1) plus the host-facing programming API
 * (§4.7.2, Table 2).
 *
 * The engine owns the simulated SSD, the database metadata table, the
 * loaded SCN/QCN models, and the Query Cache. Queries execute
 * functionally (real similarity scores, real top-K) against the
 * database's feature source, while latency comes from the analytic
 * steady-state model (DeepStoreModel) — mirroring the paper's
 * SSD-Sim + SCALE-Sim split. Database writes and reads run through
 * the event-driven SSD for small transfers and switch to the
 * closed-form throughput model beyond a page-count threshold.
 */

#ifndef DEEPSTORE_CORE_DEEPSTORE_H
#define DEEPSTORE_CORE_DEEPSTORE_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/feature_source.h"
#include "core/metadata.h"
#include "core/placement.h"
#include "core/query_cache.h"
#include "core/query_model.h"
#include "core/topk.h"
#include "nn/executor.h"
#include "nn/serialize.h"
#include "sim/event_queue.h"
#include "ssd/ssd.h"

namespace deepstore::core {

/** Construction-time configuration. */
struct DeepStoreConfig
{
    ssd::FlashParams flash;
    /** Default accelerator level for queries (channel level is the
     *  paper's recommended design). */
    Level defaultLevel = Level::ChannelLevel;
    /** Page-count threshold above which database writes/reads use the
     *  closed-form timing instead of per-page events. */
    std::uint64_t eventSimPageLimit = 65536;
};

/** Completed query: results plus simulated execution metrics. */
struct QueryResult
{
    std::uint64_t queryId = 0;
    std::vector<ScoredResult> topK;
    double latencySeconds = 0.0;
    bool cacheHit = false;
    std::uint64_t featuresScanned = 0;
};

/** The DeepStore system (engine + API facade). */
class DeepStore
{
  public:
    explicit DeepStore(DeepStoreConfig config);

    // ---- Table 2 API ---------------------------------------------

    /**
     * writeDB: create a feature database from the given source
     * (stands in for "read num features from host memory at addr").
     * @return the new database's db_id.
     */
    std::uint64_t writeDB(std::shared_ptr<FeatureSource> source);

    /** appendDB: append the source's features to an existing db. */
    void appendDB(std::uint64_t db_id,
                  std::shared_ptr<FeatureSource> source);

    /** readDB: fetch `num` features starting at `start`. */
    std::vector<std::vector<float>> readDB(std::uint64_t db_id,
                                           std::uint64_t start,
                                           std::uint64_t num);

    /** loadModel: register a serialized model (ONNX-lite blob).
     *  @return the model_id. */
    std::uint64_t loadModel(const std::vector<std::uint8_t> &blob);

    /** loadModel overload for an already-parsed bundle. */
    std::uint64_t loadModel(nn::ModelBundle bundle);

    /**
     * setQC: configure the Query Cache with a loaded QCN model, an
     * error threshold, the QCN's published accuracy, and a capacity.
     */
    void setQC(std::uint64_t qcn_model_id, double threshold,
               double qcn_accuracy, std::size_t capacity);

    /**
     * query: submit a query feature vector against a database
     * sub-range [db_start, db_end) with the given SCN model and
     * accelerator level.
     * @return a query_id for getResults().
     */
    std::uint64_t query(const std::vector<float> &qfv, std::size_t k,
                        std::uint64_t model_id, std::uint64_t db_id,
                        std::uint64_t db_start, std::uint64_t db_end,
                        std::optional<Level> level = std::nullopt);

    /** getResults: retrieve (and keep) a completed query's results. */
    const QueryResult &getResults(std::uint64_t query_id) const;

    // ---- introspection -------------------------------------------

    const DbMetadata &databaseInfo(std::uint64_t db_id) const
    {
        return metadata_.lookup(db_id);
    }

    const DeepStoreModel &model() const { return model_; }
    ssd::Ssd &ssd() { return *ssd_; }
    QueryCache *queryCache() { return queryCache_.get(); }

    /** Total simulated time consumed so far (I/O + queries). */
    double simulatedSeconds() const { return simSeconds_; }

    /** Dump engine counters and the SSD's statistics as text. */
    void dumpStats(std::ostream &os) const;

    /**
     * Persist the database metadata table into the reserved flash
     * block at the top of the LPN space (§4.4: "This metadata is
     * persisted in a reserved flash block, but will be cached in SSD
     * DRAM"). @return pages written.
     */
    std::uint64_t persistMetadata();

    /**
     * Drop the DRAM-cached metadata table and reload it from the
     * reserved flash block (the power-loss recovery path). Feature
     * sources survive (they model the flash contents themselves).
     * fatal() if persistMetadata() was never called.
     */
    void reloadMetadata();

  private:
    struct LoadedModel
    {
        nn::ModelBundle bundle;
        std::unique_ptr<nn::Executor> executor;
    };

    const LoadedModel &lookupModel(std::uint64_t model_id) const;
    double writePagesSimulated(std::uint64_t lpn_start,
                               std::uint64_t pages);
    QueryResult executeScan(const std::vector<float> &qfv,
                            std::size_t k, const LoadedModel &m,
                            const DbMetadata &db,
                            std::uint64_t db_start,
                            std::uint64_t db_end, Level level,
                            std::shared_ptr<FeatureSource> source);

    DeepStoreConfig config_;
    sim::EventQueue events_;
    std::unique_ptr<ssd::Ssd> ssd_;
    DeepStoreModel model_;
    MetadataStore metadata_;

    std::map<std::uint64_t, std::shared_ptr<FeatureSource>> sources_;
    std::map<std::uint64_t, LoadedModel> models_;
    std::map<std::uint64_t, QueryResult> results_;

    std::unique_ptr<QueryCache> queryCache_;
    std::uint64_t qcnModelId_ = 0;
    /** QFVs of previously seen queries (QC scoring inputs). */
    std::vector<std::vector<float>> seenQueries_;

    std::uint64_t nextFreeLpn_ = 0;
    std::uint64_t persistedMetadataPages_ = 0;
    std::uint64_t nextModelId_ = 1;
    std::uint64_t nextQueryId_ = 1;
    double simSeconds_ = 0.0;
};

/** Concatenation of two feature sources (appendDB support). */
class CompositeFeatureSource : public FeatureSource
{
  public:
    CompositeFeatureSource(std::shared_ptr<FeatureSource> first,
                           std::shared_ptr<FeatureSource> second);

    std::uint64_t count() const override;
    std::int64_t dim() const override { return first_->dim(); }
    std::vector<float> featureAt(std::uint64_t index) const override;

  private:
    std::shared_ptr<FeatureSource> first_;
    std::shared_ptr<FeatureSource> second_;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_DEEPSTORE_H
