/**
 * @file
 * The DeepStore runtime system: the query engine that runs on the
 * SSD's embedded cores (§4.7.1) plus the host-facing programming API
 * (§4.7.2, Table 2).
 *
 * The engine owns the simulated SSD array (one or more SsdNodes
 * behind an ArrayCoordinator), the database metadata table, the
 * loaded SCN/QCN models, and the Query Cache. Queries execute
 * functionally (real similarity scores, real top-K) against the
 * database's feature source, while latency comes from the
 * event-native datapath: flash pages stream through real FlashCommand
 * reads, compute replays the systolic slot schedule on per-unit
 * arbiters, weights/probes/reduces arbitrate on each node's DRAM
 * link, and multi-node scatter/merge legs on the shared host fabric.
 * The analytic steady-state model (DeepStoreModel) survives as the
 * cross-validator the parity tests hold the live path to.
 *
 * The query path is **asynchronous**: query() validates, probes the
 * Query Cache, hands the scheduler a timed submission, and returns a
 * query id immediately. Multiple queries stay in flight, time-sharing
 * the accelerator complex; completions surface through poll()/
 * onComplete()/drain(). querySync() is the blocking shim for callers
 * that want the old one-shot semantics. All simulated-time accounting
 * is owned by the TimeLedger (simulated time == event-queue tick).
 */

#ifndef DEEPSTORE_CORE_DEEPSTORE_H
#define DEEPSTORE_CORE_DEEPSTORE_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/array_coordinator.h"
#include "core/feature_source.h"
#include "core/metadata.h"
#include "core/placement.h"
#include "core/query_cache.h"
#include "core/query_model.h"
#include "core/query_scheduler.h"
#include "core/time_ledger.h"
#include "core/topk.h"
#include "nn/executor.h"
#include "nn/serialize.h"
#include "sim/event_queue.h"

namespace deepstore::core {

/** Construction-time configuration. */
struct DeepStoreConfig
{
    ssd::FlashParams flash;
    /** Default accelerator level for queries (channel level is the
     *  paper's recommended design). */
    Level defaultLevel = Level::ChannelLevel;
    /** Page-count threshold above which database writes/reads use the
     *  closed-form timing instead of per-page events. */
    std::uint64_t eventSimPageLimit = 65536;
    /** Max concurrent scan shards per accelerator unit (the
     *  interleaving degree of the async scheduler). */
    std::uint32_t maxResidentScansPerAccelerator = 8;

    // ---- fault tolerance -----------------------------------------
    // The flash fault schedule itself lives in flash.faults (every
    // fault decision is a pure function of its seed); these knobs
    // tune the recovery machinery layered on top.

    /** Per-shard watchdog: a shard that has not finished within this
     *  many simulated seconds of placement is snatched and
     *  re-striped. 0 disables. */
    double shardWatchdogSeconds = 0.0;
    /** Re-striping budget per shard before the query degrades. */
    std::uint32_t maxShardRetries = 2;
    /** Backoff before the first shard re-dispatch; doubles per
     *  retry. */
    double shardRetryBackoffSeconds = 100e-6;
    /** Bounded reissue budget for an uncorrectable page read. */
    std::uint32_t maxPageRetries = 2;
    /** Backoff before the first page reissue; doubles per attempt. */
    double pageRetryBackoffSeconds = 20e-6;

    // ---- array topology ------------------------------------------

    /** Multi-SSD array layout. The default (array.nodes empty) is a
     *  single node built from `flash` — behaviorally and
     *  tick-identical to the pre-array engine. Populating
     *  array.nodes stripes every database across the member drives
     *  and scatters every query into per-node sub-queries. */
    ArrayConfig array;
};

/** Completed query: results plus simulated execution metrics. */
struct QueryResult
{
    std::uint64_t queryId = 0;
    std::vector<ScoredResult> topK;
    /** Completion tick - submit tick (queueing included). */
    double latencySeconds = 0.0;
    bool cacheHit = false;
    std::uint64_t featuresScanned = 0;
    /** Scheduled Query Cache probe duration (0 without a cache). */
    double qcProbeSeconds = 0.0;
    /** Time this query's scan groups stalled compute (flash
     *  starvation + weight-stream waits). */
    double computeStallSeconds = 0.0;
    /** Time this query's DFV streams sat fully delivered, blocked
     *  on compute (bounded-queue backpressure). */
    double backpressureSeconds = 0.0;
    /** Channel-bus arbitration wait accrued device-wide while this
     *  query was in flight (shared NoC contention signal; overlaps
     *  with concurrent queries' waits). */
    double nocWaitSeconds = 0.0;
    /** Why the query terminated (Success on the happy path). */
    QueryOutcome outcome = QueryOutcome::Success;
    /** Features actually scanned / features requested, in [0, 1];
     *  1.0 for full-coverage completions. */
    double coverageFraction = 1.0;
    /** Host-fabric wait + transfer of the per-node top-K merge legs
     *  (0 on a single-node array). */
    double mergeSeconds = 0.0;
    /** Bytes this query moved over the array's host fabric (scatter
     *  descriptors + merge candidate sets + failover re-dispatch). */
    std::uint64_t interNodeBytes = 0;
    /** Array nodes that ran sub-queries for this query. */
    std::uint32_t nodesParticipating = 1;
    /** Whole-node failover re-dispatches this query absorbed. */
    std::uint32_t redispatches = 0;
};

/** Non-fatal getResults outcome (see DeepStore::tryGetResults). */
enum class FetchStatus
{
    Ready,    ///< terminal; `result` points at the QueryResult
    InFlight, ///< known but not yet terminal — retry later
    Unknown,  ///< no such query id
};

/** tryGetResults return value: a typed, retryable outcome mirroring
 *  the NVMe front end's InProgress semantics. */
struct FetchResult
{
    FetchStatus status = FetchStatus::Unknown;
    /** Valid only when status == Ready; owned by the engine. */
    const QueryResult *result = nullptr;
};

/** The DeepStore system (engine + API facade). */
class DeepStore
{
  public:
    explicit DeepStore(DeepStoreConfig config);

    // ---- Table 2 API ---------------------------------------------

    /**
     * writeDB: create a feature database from the given source
     * (stands in for "read num features from host memory at addr").
     * @return the new database's db_id.
     */
    std::uint64_t writeDB(std::shared_ptr<FeatureSource> source);

    /** appendDB: append the source's features to an existing db. */
    void appendDB(std::uint64_t db_id,
                  std::shared_ptr<FeatureSource> source);

    /** readDB: fetch `num` features starting at `start`. */
    std::vector<std::vector<float>> readDB(std::uint64_t db_id,
                                           std::uint64_t start,
                                           std::uint64_t num);

    /** loadModel: register a serialized model (ONNX-lite blob).
     *  @return the model_id. */
    std::uint64_t loadModel(const std::vector<std::uint8_t> &blob);

    /** loadModel overload for an already-parsed bundle. */
    std::uint64_t loadModel(nn::ModelBundle bundle);

    /**
     * setQC: configure the Query Cache with a loaded QCN model, an
     * error threshold, the QCN's published accuracy, and a capacity.
     */
    void setQC(std::uint64_t qcn_model_id, double threshold,
               double qcn_accuracy, std::size_t capacity);

    /**
     * query: **asynchronously submit** a query feature vector against
     * a database sub-range [db_start, db_end) with the given SCN
     * model and accelerator level. Validates and returns immediately;
     * the query executes in event-time, interleaved with other
     * in-flight queries.
     * @return a query_id for poll()/getResults().
     */
    std::uint64_t query(const std::vector<float> &qfv, std::size_t k,
                        std::uint64_t model_id, std::uint64_t db_id,
                        std::uint64_t db_start, std::uint64_t db_end,
                        std::optional<Level> level = std::nullopt,
                        double deadline_seconds = 0.0);

    /**
     * querySync: submit and block (in simulated time) until this
     * query completes — the pre-refactor one-query-at-a-time
     * behavior. @return the query_id (already Complete).
     */
    std::uint64_t
    querySync(const std::vector<float> &qfv, std::size_t k,
              std::uint64_t model_id, std::uint64_t db_id,
              std::uint64_t db_start, std::uint64_t db_end,
              std::optional<Level> level = std::nullopt);

    /** Current state of a query (nullopt for unknown ids). Does not
     *  advance simulated time. */
    std::optional<QueryState> poll(std::uint64_t query_id) const;

    /**
     * Cancel an in-flight query: it terminates immediately in the
     * Degraded state with outcome Aborted and partial coverage.
     * @return false for unknown or already-terminal queries.
     */
    bool cancel(std::uint64_t query_id);

    /** Run one simulator event. @return false when idle. */
    bool step();

    /** Advance simulated time until every in-flight query completes. */
    void drain();

    /** Advance simulated time until `query_id` completes. */
    void waitFor(std::uint64_t query_id);

    /** Queries submitted but not yet complete. */
    std::size_t inFlight() const { return array_->inFlight(); }

    /**
     * Register a completion callback for a query. Fires exactly once,
     * at the query's completion tick (immediately when it already
     * completed). Multiple callbacks per query are allowed and fire
     * in registration order.
     */
    void onComplete(std::uint64_t query_id,
                    std::function<void(const QueryResult &)> cb);

    /**
     * tryGetResults: non-blocking, non-fatal fetch. Returns Ready
     * with a pointer to the results once the query is terminal
     * (Complete *or* Degraded), InFlight while it is still running
     * (retry after advancing simulated time), and Unknown for ids
     * never submitted — consistent with the NVMe front end's
     * retryable InProgress status.
     */
    FetchResult tryGetResults(std::uint64_t query_id) const;

    /** getResults: retrieve (and keep) a terminal query's results.
     *  fatal() for unknown ids *and* for queries still in flight —
     *  use tryGetResults() for a non-fatal, retryable probe. */
    const QueryResult &getResults(std::uint64_t query_id) const;

    // ---- introspection -------------------------------------------

    const DbMetadata &databaseInfo(std::uint64_t db_id) const
    {
        return metadata_.lookup(db_id);
    }

    const DeepStoreModel &model() const { return model_; }
    /** Node 0's raw device (single-node compatibility shim for
     *  tests/benches; engine code goes through the array). */
    ssd::Ssd &ssd() { return array_->node(0).device(); }
    sim::EventQueue &events() { return events_; }
    QueryCache *queryCache() { return queryCache_.get(); }
    /** Node 0's scheduler (single-node compatibility shim; on a
     *  1-node array every query id is a node-0 sub-query id). */
    const QueryScheduler &scheduler() const
    {
        return array_->node(0).scheduler();
    }

    /** The sharded multi-SSD array behind this engine (a 1-node
     *  array by default). */
    ArrayCoordinator &array() { return *array_; }
    const ArrayCoordinator &array() const { return *array_; }

    /** Whole-drive failure of array node `i` at the current tick:
     *  its in-flight sub-queries fail over onto replicas and, with
     *  the repair engine enabled, its shards re-replicate onto
     *  survivors (see ArrayCoordinator::killNode). Idempotent
     *  (AlreadyDead) and range-checked (InvalidNode) — never UB. */
    KillNodeResult killNode(std::uint32_t node_i)
    {
        return array_->killNode(node_i);
    }

    // ---- host I/O passthroughs (NVMe front end) ------------------
    // Raw LPN reads/writes/trims against node 0, the array's
    // host-visible admin drive.

    void hostRead(std::uint64_t lpn_start, std::uint64_t count,
                  ssd::Completion on_complete);
    void hostWrite(std::uint64_t lpn_start, std::uint64_t count,
                   ssd::Completion on_complete);
    void hostTrim(std::uint64_t lpn_start, std::uint64_t count,
                  ssd::Completion on_complete);

    /** The simulated-time ledger (owner of all time accounting). */
    const TimeLedger &ledger() const { return ledger_; }

    /** Total simulated time so far — always the event-queue clock. */
    double simulatedSeconds() const { return ledger_.seconds(); }

    /** Dump engine counters and the SSD's statistics as text. */
    void dumpStats(std::ostream &os) const;

    /**
     * Persist the database metadata table into the reserved flash
     * block at the top of the LPN space (§4.4: "This metadata is
     * persisted in a reserved flash block, but will be cached in SSD
     * DRAM"). Since DESIGN.md §12 the persisted unit is a versioned,
     * checksummed superblock image — metadata table + the
     * coordinator's shard map under one epoch — replicated onto
     * *every* alive node through real per-page flash programs. A
     * power loss mid-flush leaves torn replicas (detected by
     * checksum on recovery) rather than a committed half-state.
     * @return pages written on node 0.
     */
    std::uint64_t persistMetadata();

    /**
     * Drop the DRAM-cached metadata table and reload it from the
     * reserved flash blocks (the power-loss recovery path): every
     * alive node's superblock replica is read back, torn or corrupt
     * copies are discarded by checksum, and the highest surviving
     * epoch wins — so recovery works from any surviving replica,
     * including after node-0 death. Restores both the metadata table
     * and the coordinator's shard map. Feature sources survive (they
     * model the flash contents themselves). fatal() if
     * persistMetadata() was never called, or when no intact replica
     * survives.
     */
    void reloadMetadata();

    /** Monotonic superblock epoch of the last persist (0 = never
     *  persisted). Recovery adopts the highest surviving epoch. */
    std::uint64_t metadataEpoch() const { return metadataEpoch_; }

    /**
     * Whole-device power loss at the current tick (also reachable by
     * schedule via `FaultConfig::powerLossAtTick`). In order:
     *
     *  1. every in-flight query terminates with outcome PowerLoss,
     *     its finalize running synchronously with honest partial
     *     coverage (the host's completion was never acknowledged, so
     *     partial results + DegradedSuccess on the wire are the
     *     truthful story);
     *  2. the SSD drops volatile state — background relocations
     *     abort crash-consistently, plane/bus reservations reset;
     *  3. the DRAM-cached metadata table is dropped and, when a
     *     persist exists, replayed from the reserved flash block
     *     (the first fault-path use of metadata persistence). With
     *     no persist the table is simply gone — exactly what the
     *     paper's reserved-block design exists to prevent.
     *
     * After recovery the engine accepts new work immediately.
     */
    void powerLoss();

  private:
    struct LoadedModel
    {
        nn::ModelBundle bundle;
        std::unique_ptr<nn::Executor> executor;
    };

    const LoadedModel &lookupModel(std::uint64_t model_id) const;

    /** Simulate writing `pages` pages on one array node and account
     *  the time on the ledger (event-driven below the page limit,
     *  closed-form above). */
    void writePagesTimedOn(SsdNode &node, std::uint64_t lpn_start,
                           std::uint64_t pages,
                           TimeComponent component);

    /** Run the event queue until `done` flips (a completion callback
     *  armed it); panic on a stalled simulation. */
    void stepUntil(const bool &done);

    /** Functional map-reduce scan: real scores, striped partial
     *  top-Ks, merged (§4.7.1). */
    std::vector<ScoredResult>
    scanTopK(const std::vector<float> &qfv, std::size_t k,
             const LoadedModel &m, const DbMetadata &db,
             std::uint64_t db_start, std::uint64_t db_end,
             std::uint32_t n_accel,
             const std::shared_ptr<FeatureSource> &source) const;

    void finishQuery(std::uint64_t query_id, QueryResult res);

    DeepStoreConfig config_;
    sim::EventQueue events_;
    TimeLedger ledger_;
    /** Analytic model over the base flash geometry (validation + QC
     *  probe sizing); per-node scan lowering uses each node's own
     *  model. */
    DeepStoreModel model_;
    MetadataStore metadata_;
    /** The member drives + the scatter/merge query plane. Owns every
     *  SsdNode (SSD, FTL, DFV streams, scheduler) and the shard
     *  map. */
    std::unique_ptr<ArrayCoordinator> array_;

    std::map<std::uint64_t, std::shared_ptr<FeatureSource>> sources_;
    std::map<std::uint64_t, LoadedModel> models_;
    std::map<std::uint64_t, QueryResult> results_;
    std::map<std::uint64_t,
             std::vector<std::function<void(const QueryResult &)>>>
        completionCallbacks_;

    std::unique_ptr<QueryCache> queryCache_;
    std::uint64_t qcnModelId_ = 0;
    /** QFVs of previously seen queries (QC scoring inputs). */
    std::vector<std::vector<float>> seenQueries_;

    /** Epoch stamped into the last persisted superblock image. */
    std::uint64_t metadataEpoch_ = 0;
    /** Bumped by powerLoss(): metadata-flush page commits from the
     *  pre-loss epoch are abandoned, leaving torn replicas. */
    std::uint64_t metadataFlushGen_ = 0;
    std::uint64_t nextModelId_ = 1;
    std::uint64_t nextQueryId_ = 1;
};

/** Concatenation of two feature sources (appendDB support). */
class CompositeFeatureSource : public FeatureSource
{
  public:
    CompositeFeatureSource(std::shared_ptr<FeatureSource> first,
                           std::shared_ptr<FeatureSource> second);

    std::uint64_t count() const override;
    std::int64_t dim() const override { return first_->dim(); }
    std::vector<float> featureAt(std::uint64_t index) const override;

  private:
    std::shared_ptr<FeatureSource> first_;
    std::shared_ptr<FeatureSource> second_;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_DEEPSTORE_H
