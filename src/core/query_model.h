/**
 * @file
 * Steady-state performance and energy model of a DeepStore query scan
 * at each accelerator placement level.
 *
 * A query that misses the Query Cache scans the whole feature
 * database: every accelerator streams its stripe of feature vectors
 * out of flash (through the FLASH_DFV queue) and runs the SCN per
 * feature. In steady state the per-feature cost at one accelerator is
 * the maximum of three supply rates:
 *
 *   compute      - SCN execution on the systolic array (SCALE-Sim
 *                  model, batch-1 per §4.5);
 *   flash        - DFV delivery through the accelerator's slice of
 *                  the flash hierarchy (plane rate vs bus rate);
 *   weight flow  - re-streaming the portion of the model weights
 *                  that does not stay resident: from SSD DRAM for the
 *                  SSD-level accelerator, from DRAM broadcast through
 *                  the shared L2 for channel-level accelerators
 *                  (32x reuse, §4.5), and over the channel bus in
 *                  lockstep for chip-level accelerators.
 *
 * The whole-SSD throughput divides by the accelerator count. The test
 * suite cross-checks the flash leg against the event-driven SSD
 * simulator.
 */

#ifndef DEEPSTORE_CORE_QUERY_MODEL_H
#define DEEPSTORE_CORE_QUERY_MODEL_H

#include <vector>

#include "core/placement.h"
#include "energy/energy_model.h"
#include "ssd/flash_params.h"
#include "systolic/layer_run.h"
#include "systolic/slot_schedule.h"
#include "workloads/apps.h"

namespace deepstore::core {

/** Performance/energy of one (level, application) pair. */
struct LevelPerf
{
    Placement placement;

    /** False when the level cannot execute the model (the chip-level
     *  accelerator lacks the on-chip memory for conv/im2col models
     *  such as ReId, §6.2). */
    bool supported = true;

    // Per-accelerator, per-feature service times (seconds).
    double computeSeconds = 0.0;
    double flashSeconds = 0.0;
    double weightStreamSeconds = 0.0;
    double perAccelSeconds = 0.0; ///< max of the three

    /** Whole-SSD per-feature time (perAccel / accelerator count). */
    double aggregateSeconds = 0.0;

    /** Per-feature energy across the system. */
    energy::EnergyBreakdown energyPerFeature;

    /** Power of the full accelerator complex while scanning. */
    double activePowerW = 0.0;

    /** Per-feature systolic traffic of one accelerator. */
    systolic::ModelRun modelRun;

    /** Per-lockstep-slot schedule of the model on this placement:
     *  per-layer compute bursts + DRAM traffic, the form the
     *  event-driven datapath consumes. */
    systolic::SlotSchedule slots;

    /** Non-resident weight bytes re-streamed from SSD DRAM per
     *  lockstep slot (0 = fully resident). */
    std::uint64_t excessWeightBytesPerSlot = 0;

    /** True when one DRAM weight stream is broadcast to every
     *  accelerator at this level (SSD single unit, channel shared
     *  L2, chip WS lockstep); false when each accelerator pulls a
     *  private copy. */
    bool weightBroadcast = false;
};

/**
 * Per-feature compute bursts (one per model layer) of `perf`'s model
 * run lowered onto the placement's array clock. Both the live
 * scheduler and the standalone AccelPipeline consume this exact
 * lowering, so the two paths agree tick-for-tick by construction.
 */
std::vector<Tick> layerBurstTicks(const LevelPerf &perf);

/** Power drawn by the existing SSD hardware (controller, DRAM, flash
 *  standby) while a scan runs: ~20 W at peak operation (§4.5). It is
 *  charged to every in-storage configuration's active power. */
constexpr double kSsdBasePowerW = 20.0;

/** Analytic DeepStore model over a given SSD geometry. */
class DeepStoreModel
{
  public:
    explicit DeepStoreModel(ssd::FlashParams flash,
                            energy::EnergyParams eparams = {});

    const ssd::FlashParams &flash() const { return flash_; }

    /** Evaluate a placement level on an application's SCN. */
    LevelPerf evaluate(Level level,
                       const workloads::AppInfo &app) const;

    /** Same, for an explicitly provided model (QCN evaluation). */
    LevelPerf evaluateModel(Level level, const nn::Model &model,
                            std::uint64_t feature_bytes) const;

    /**
     * Evaluate an explicit placement (possibly a non-Table-3
     * candidate — the DSE and ablation paths use this).
     */
    LevelPerf evaluatePlacement(Placement placement,
                                const nn::Model &model,
                                std::uint64_t feature_bytes) const;

    /** Wall time for a full scan of `features` database entries. */
    double scanSeconds(Level level, const workloads::AppInfo &app,
                       std::uint64_t features) const;

    /** Per-feature energy (J) for a scan. */
    double scanEnergyPerFeature(Level level,
                                const workloads::AppInfo &app) const;

  private:
    ssd::FlashParams flash_;
    energy::EnergyParams eparams_;
};

/**
 * Analytic steady-state latency of one query scattered across an
 * array (the closed-form mirror of ArrayCoordinator's event path,
 * used by the array parity tests).
 *
 * Sub-query 0 is the home node (no scatter leg, no merge leg); each
 * later sub-query's descriptor queues FCFS on the host fabric before
 * its node can start, and every remote node ships `merge_bytes` of
 * candidates back after its scan:
 *
 *   start_i = i * scatter_bytes / fabric_bw        (i = remote rank)
 *   total   = max_i(start_i + scan_i)
 *           + n_remote * merge_bytes / fabric_bw
 *
 * `node_scan_seconds[i]` is node i's analytic scan time over its own
 * shard (scanSeconds on that node's geometry); heterogeneous arrays
 * pass per-node values.
 */
double arrayQuerySeconds(const std::vector<double> &node_scan_seconds,
                         std::uint64_t scatter_bytes,
                         std::uint64_t merge_bytes,
                         double fabric_bandwidth);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_QUERY_MODEL_H
