#include "core/scan_core.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::core {

GroupScan::GroupScan(sim::EventQueue &events, ComputeArbiter &arbiter,
                     ssd::DfvStream *stream, ScanStepShape shape)
    : events_(events), arbiter_(arbiter), stream_(stream),
      shape_(shape)
{
    if (shape_.pageReadsPerStep == 0 || shape_.featuresPerStep == 0)
        fatal("scan step shape needs non-zero steps");
}

void
GroupScan::addMember(ScanMember member)
{
    if (member.features == 0)
        fatal("a scan member needs at least one feature");
    if (!canAdmit())
        panic("scan group admission after the stream advanced "
              "(position %llu)",
              static_cast<unsigned long long>(position_));
    maxFeatures_ = std::max(maxFeatures_, member.features);
    members_.push_back(member);
    ++membersLeft_;
    if (started_)
        pump();
}

void
GroupScan::start()
{
    DS_ASSERT(!started_);
    if (members_.empty())
        fatal("scan group started with no members");
    started_ = true;
    idleSince_ = events_.now();
    if (stream_) {
        stream_->onDelivered([this] { pump(); });
    }
    pump();
}

std::uint64_t
GroupScan::readyFeatures() const
{
    if (!stream_)
        return maxFeatures_;
    std::uint64_t steps =
        stream_->pagesDelivered() / shape_.pageReadsPerStep;
    std::uint64_t ready = steps * shape_.featuresPerStep;
    return std::min(ready, maxFeatures_);
}

std::uint64_t
GroupScan::pagesForPosition(std::uint64_t pos) const
{
    if (!stream_)
        return 0;
    if (pos >= maxFeatures_)
        return stream_->pagesTotal();
    return (pos / shape_.featuresPerStep) * shape_.pageReadsPerStep;
}

void
GroupScan::pump()
{
    if (!started_ || batchActive_ || position_ >= maxFeatures_)
        return;
    const std::uint64_t ready = readyFeatures();
    if (ready <= position_)
        return; // starving; a delivery callback re-pumps
    const Tick now = events_.now();
    starvedTicks_ += now - idleSince_;

    // Batch bounds: constant membership inside a batch, so member
    // retirements land on exact batch-completion ticks.
    std::uint64_t limit = maxFeatures_;
    Tick service_sum = 0;
    for (const auto &m : members_) {
        if (m.features <= position_)
            continue;
        service_sum += m.serviceTicksPerFeature;
        limit = std::min(limit, m.features);
    }
    DS_ASSERT(limit > position_);
    const std::uint64_t n = std::min(ready, limit) - position_;
    const std::uint64_t new_position = position_ + n;

    // Consumption at batch start: the batch's features are latched
    // into the array, so their FLASH_DFV slots free up and the next
    // burst can overlap this batch's compute.
    if (stream_)
        stream_->consumedThrough(pagesForPosition(new_position));

    const Tick cost = static_cast<Tick>(n) * service_sum;
    computeBusyTicks_ += cost;
    batchActive_ = true;
    const Tick completion = arbiter_.acquire(now, cost);
    events_.schedule(completion, [this, new_position] {
        batchComplete(new_position);
    });
}

void
GroupScan::batchComplete(std::uint64_t new_position)
{
    DS_ASSERT(batchActive_);
    batchActive_ = false;
    const std::uint64_t old_position = position_;
    position_ = new_position;
    idleSince_ = events_.now();

    // Retire members whose last feature just completed.
    for (const auto &m : members_) {
        if (m.features > old_position && m.features <= new_position) {
            DS_ASSERT(membersLeft_ > 0);
            --membersLeft_;
            if (onMemberDone_)
                onMemberDone_(m.id);
        }
    }
    if (membersLeft_ == 0) {
        if (onGroupDone_)
            onGroupDone_();
        return;
    }
    pump();
}

} // namespace deepstore::core
