#include "core/scan_core.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::core {

Tick
WeightStream::fetch(std::uint64_t slot, Tick ready)
{
    if (!dram_ || bytesPerSlot_ == 0)
        return ready;
    auto it = done_.find(slot);
    if (it != done_.end())
        return it->second;
    const Tick done = dram_->acquire(ready, bytesPerSlot_);
    done_.emplace(slot, done);
    return done;
}

GroupScan::GroupScan(sim::EventQueue &events, ComputeArbiter &arbiter,
                     ssd::DfvStream *stream, ScanStepShape shape,
                     std::uint64_t features_per_slot)
    : events_(events), arbiter_(arbiter), stream_(stream),
      shape_(shape), featuresPerSlot_(features_per_slot)
{
    if (shape_.pageReadsPerStep == 0 || shape_.featuresPerStep == 0)
        fatal("scan step shape needs non-zero steps");
    if (featuresPerSlot_ == 0)
        fatal("a lockstep slot needs at least one feature");
}

void
GroupScan::addMember(ScanMember member)
{
    if (member.features == 0)
        fatal("a scan member needs at least one feature");
    if (!canAdmit())
        panic("scan group admission after the stream advanced "
              "(position %llu)",
              static_cast<unsigned long long>(position_));
    maxFeatures_ = std::max(maxFeatures_, member.features);
    members_.push_back(std::move(member));
    ++membersLeft_;
    if (started_)
        pump();
}

void
GroupScan::start()
{
    DS_ASSERT(!started_);
    if (members_.empty())
        fatal("scan group started with no members");
    started_ = true;
    idleSince_ = events_.now();
    if (stream_) {
        stream_->onDelivered([this] { pump(); });
    }
    pump();
}

std::uint64_t
GroupScan::readyFeatures() const
{
    if (!stream_)
        return maxFeatures_;
    std::uint64_t steps =
        stream_->pagesDelivered() / shape_.pageReadsPerStep;
    std::uint64_t ready = steps * shape_.featuresPerStep;
    return std::min(ready, maxFeatures_);
}

std::uint64_t
GroupScan::pagesForPosition(std::uint64_t pos) const
{
    if (!stream_)
        return 0;
    if (pos >= maxFeatures_)
        return stream_->pagesTotal();
    return (pos / shape_.featuresPerStep) * shape_.pageReadsPerStep;
}

std::uint64_t
GroupScan::lostFeatures(std::uint64_t f) const
{
    if (!stream_ || stream_->pagesFailed() == 0)
        return 0;
    const std::uint64_t failed =
        stream_->failedThrough(pagesForPosition(f));
    if (failed == 0)
        return 0;
    // Approximate, conservative mapping of failed pages to features:
    // packed features lose a whole page's worth; multi-page features
    // lose at least one feature per failed page.
    const std::uint64_t lost =
        (failed * shape_.featuresPerStep + shape_.pageReadsPerStep -
         1) /
        shape_.pageReadsPerStep;
    return std::min(lost, f);
}

std::uint64_t
GroupScan::completedFeatures(std::uint64_t id) const
{
    for (const auto &m : members_) {
        if (m.id != id)
            continue;
        const std::uint64_t done = std::min(position_, m.features);
        return done - lostFeatures(done);
    }
    fatal("completedFeatures: unknown member id %llu",
          static_cast<unsigned long long>(id));
}

std::uint64_t
GroupScan::removeMember(std::uint64_t id)
{
    const std::uint64_t done = completedFeatures(id);
    members_.erase(std::remove_if(members_.begin(), members_.end(),
                                  [id](const ScanMember &m) {
                                      return m.id == id;
                                  }),
                   members_.end());
    DS_ASSERT(membersLeft_ > 0);
    --membersLeft_;
    maxFeatures_ = position_;
    for (const auto &m : members_)
        maxFeatures_ = std::max(maxFeatures_, m.features);
    if (membersLeft_ == 0)
        abort();
    return done;
}

void
GroupScan::abort()
{
    if (aborted_)
        return;
    aborted_ = true;
    for (sim::EventId ev : runEvents_)
        events_.cancel(ev);
    runEvents_.clear();
    runActive_ = false;
    onMemberDone_ = nullptr;
    onGroupDone_ = nullptr;
}

std::uint64_t
GroupScan::stationSlots() const
{
    if (!stream_)
        return 1;
    const std::uint64_t capacity_features =
        static_cast<std::uint64_t>(stream_->queueDepthPages()) /
        shape_.pageReadsPerStep * shape_.featuresPerStep;
    return std::max<std::uint64_t>(1,
                                   capacity_features /
                                       featuresPerSlot_);
}

ScanGroupSnapshot
GroupScan::snapshot() const
{
    ScanGroupSnapshot s;
    s.starvedTicks = starvedTicks_;
    s.weightStallTicks = weightStallTicks_;
    s.backpressureTicks = stream_ ? stream_->backpressureTicks() : 0;
    return s;
}

void
GroupScan::pump()
{
    if (!started_ || aborted_ || runActive_ ||
        position_ >= maxFeatures_)
        return;
    const std::uint64_t ready = readyFeatures();
    if (ready <= position_)
        return; // starving; a delivery callback re-pumps
    const Tick now = events_.now();
    starvedTicks_ += now - idleSince_;

    // Run bounds: constant membership inside a run, so member
    // retirements land on exact run-completion ticks.
    std::uint64_t limit = maxFeatures_;
    for (const auto &m : members_) {
        if (m.features <= position_)
            continue;
        limit = std::min(limit, m.features);
    }
    DS_ASSERT(limit > position_);
    const std::uint64_t end = std::min(ready, limit);

    runActive_ = true;
    runEvents_.clear();

    // Slot-by-slot execution: weight tiles stream in (shared DRAM
    // link), then each member replays its per-layer compute bursts on
    // the array. A slot's FLASH_DFV entries free when the slot
    // *latches* into the station's bounded feature FIFO: immediately
    // on delivery while the FIFO has room, or — once one DFV queue's
    // worth of features is staged ahead of the array — only when the
    // oldest staged slot finishes computing. Flash-bound scans thus
    // keep the analytic burst cadence (entries free at delivery),
    // while compute- or weight-bound scans throttle the latch to
    // compute speed, hold the burst barrier, and exert real
    // backpressure on flash delivery.
    Tick cursor = now;
    std::uint64_t pos = position_;
    std::uint64_t marked_pages = pagesForPosition(position_);
    const std::uint64_t station_slots = stationSlots();
    while (pos < end) {
        const std::uint64_t slot = pos / featuresPerSlot_;
        const std::uint64_t take =
            std::min<std::uint64_t>(end,
                                    (slot + 1) * featuresPerSlot_) -
            pos;
        Tick admit = now;
        while (stationDone_.size() >= station_slots) {
            admit = std::max(admit, stationDone_.front());
            stationDone_.pop_front();
        }
        Tick ready_at = cursor;
        for (auto &m : members_) {
            if (m.features <= pos || !m.weights)
                continue;
            ready_at = std::max(ready_at,
                                m.weights->fetch(slot, cursor));
            // Double-buffer: start streaming the next slot's tiles
            // while this slot computes.
            if ((slot + 1) * featuresPerSlot_ < m.features)
                m.weights->fetch(slot + 1, cursor);
        }
        weightStallTicks_ += ready_at - cursor;
        Tick slot_done = ready_at;
        for (const auto &m : members_) {
            if (m.features <= pos)
                continue;
            Tick burst_done = ready_at;
            for (Tick lt : m.layerBurstTicks) {
                const Tick cost = lt * static_cast<Tick>(take);
                burst_done = arbiter_.acquire(burst_done, cost);
                computeBusyTicks_ += cost;
            }
            slot_done = std::max(slot_done, burst_done);
        }
        stationDone_.push_back(slot_done);
        pos += take;
        const std::uint64_t pages = pagesForPosition(pos);
        if (stream_ && pages > marked_pages) {
            marked_pages = pages;
            runEvents_.push_back(
                events_.schedule(admit, [this, pages] {
                    if (stream_)
                        stream_->consumedThrough(pages);
                }));
        }
        cursor = slot_done;
    }
    runEvents_.push_back(events_.schedule(cursor, [this, end] {
        runComplete(end);
    }));
}

void
GroupScan::runComplete(std::uint64_t new_position)
{
    DS_ASSERT(runActive_);
    runActive_ = false;
    runEvents_.clear();
    const std::uint64_t old_position = position_;
    position_ = new_position;
    idleSince_ = events_.now();

    // Retire members whose last feature just completed, reporting
    // how many features each actually computed from good pages.
    for (const auto &m : members_) {
        if (m.features > old_position && m.features <= new_position) {
            DS_ASSERT(membersLeft_ > 0);
            --membersLeft_;
            if (onMemberDone_)
                onMemberDone_(m.id,
                              m.features - lostFeatures(m.features),
                              snapshot());
        }
    }
    if (membersLeft_ == 0) {
        if (onGroupDone_)
            onGroupDone_();
        return;
    }
    pump();
}

} // namespace deepstore::core
