#include "core/scan_core.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::core {

GroupScan::GroupScan(sim::EventQueue &events, ComputeArbiter &arbiter,
                     ssd::DfvStream *stream, ScanStepShape shape)
    : events_(events), arbiter_(arbiter), stream_(stream),
      shape_(shape)
{
    if (shape_.pageReadsPerStep == 0 || shape_.featuresPerStep == 0)
        fatal("scan step shape needs non-zero steps");
}

void
GroupScan::addMember(ScanMember member)
{
    if (member.features == 0)
        fatal("a scan member needs at least one feature");
    if (!canAdmit())
        panic("scan group admission after the stream advanced "
              "(position %llu)",
              static_cast<unsigned long long>(position_));
    maxFeatures_ = std::max(maxFeatures_, member.features);
    members_.push_back(member);
    ++membersLeft_;
    if (started_)
        pump();
}

void
GroupScan::start()
{
    DS_ASSERT(!started_);
    if (members_.empty())
        fatal("scan group started with no members");
    started_ = true;
    idleSince_ = events_.now();
    if (stream_) {
        stream_->onDelivered([this] { pump(); });
    }
    pump();
}

std::uint64_t
GroupScan::readyFeatures() const
{
    if (!stream_)
        return maxFeatures_;
    std::uint64_t steps =
        stream_->pagesDelivered() / shape_.pageReadsPerStep;
    std::uint64_t ready = steps * shape_.featuresPerStep;
    return std::min(ready, maxFeatures_);
}

std::uint64_t
GroupScan::pagesForPosition(std::uint64_t pos) const
{
    if (!stream_)
        return 0;
    if (pos >= maxFeatures_)
        return stream_->pagesTotal();
    return (pos / shape_.featuresPerStep) * shape_.pageReadsPerStep;
}

std::uint64_t
GroupScan::lostFeatures(std::uint64_t f) const
{
    if (!stream_ || stream_->pagesFailed() == 0)
        return 0;
    const std::uint64_t failed =
        stream_->failedThrough(pagesForPosition(f));
    if (failed == 0)
        return 0;
    // Approximate, conservative mapping of failed pages to features:
    // packed features lose a whole page's worth; multi-page features
    // lose at least one feature per failed page.
    const std::uint64_t lost =
        (failed * shape_.featuresPerStep + shape_.pageReadsPerStep -
         1) /
        shape_.pageReadsPerStep;
    return std::min(lost, f);
}

std::uint64_t
GroupScan::completedFeatures(std::uint64_t id) const
{
    for (const auto &m : members_) {
        if (m.id != id)
            continue;
        const std::uint64_t done = std::min(position_, m.features);
        return done - lostFeatures(done);
    }
    fatal("completedFeatures: unknown member id %llu",
          static_cast<unsigned long long>(id));
}

std::uint64_t
GroupScan::removeMember(std::uint64_t id)
{
    const std::uint64_t done = completedFeatures(id);
    members_.erase(std::remove_if(members_.begin(), members_.end(),
                                  [id](const ScanMember &m) {
                                      return m.id == id;
                                  }),
                   members_.end());
    DS_ASSERT(membersLeft_ > 0);
    --membersLeft_;
    maxFeatures_ = position_;
    for (const auto &m : members_)
        maxFeatures_ = std::max(maxFeatures_, m.features);
    if (membersLeft_ == 0)
        abort();
    return done;
}

void
GroupScan::abort()
{
    if (aborted_)
        return;
    aborted_ = true;
    if (batchActive_) {
        events_.cancel(batchEvent_);
        batchActive_ = false;
    }
    onMemberDone_ = nullptr;
    onGroupDone_ = nullptr;
}

void
GroupScan::pump()
{
    if (!started_ || aborted_ || batchActive_ ||
        position_ >= maxFeatures_)
        return;
    const std::uint64_t ready = readyFeatures();
    if (ready <= position_)
        return; // starving; a delivery callback re-pumps
    const Tick now = events_.now();
    starvedTicks_ += now - idleSince_;

    // Batch bounds: constant membership inside a batch, so member
    // retirements land on exact batch-completion ticks.
    std::uint64_t limit = maxFeatures_;
    Tick service_sum = 0;
    for (const auto &m : members_) {
        if (m.features <= position_)
            continue;
        service_sum += m.serviceTicksPerFeature;
        limit = std::min(limit, m.features);
    }
    DS_ASSERT(limit > position_);
    const std::uint64_t n = std::min(ready, limit) - position_;
    const std::uint64_t new_position = position_ + n;

    // Consumption at batch start: the batch's features are latched
    // into the array, so their FLASH_DFV slots free up and the next
    // burst can overlap this batch's compute.
    if (stream_)
        stream_->consumedThrough(pagesForPosition(new_position));

    const Tick cost = static_cast<Tick>(n) * service_sum;
    computeBusyTicks_ += cost;
    batchActive_ = true;
    const Tick completion = arbiter_.acquire(now, cost);
    batchEvent_ = events_.schedule(completion, [this, new_position] {
        batchComplete(new_position);
    });
}

void
GroupScan::batchComplete(std::uint64_t new_position)
{
    DS_ASSERT(batchActive_);
    batchActive_ = false;
    const std::uint64_t old_position = position_;
    position_ = new_position;
    idleSince_ = events_.now();

    // Retire members whose last feature just completed, reporting
    // how many features each actually computed from good pages.
    for (const auto &m : members_) {
        if (m.features > old_position && m.features <= new_position) {
            DS_ASSERT(membersLeft_ > 0);
            --membersLeft_;
            if (onMemberDone_)
                onMemberDone_(m.id,
                              m.features - lostFeatures(m.features));
        }
    }
    if (membersLeft_ == 0) {
        if (onGroupDone_)
            onGroupDone_();
        return;
    }
    pump();
}

} // namespace deepstore::core
