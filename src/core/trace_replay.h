/**
 * @file
 * Trace replay: feed a timestamped query trace (paper §5) through a
 * query system and report throughput and the response-time
 * distribution. Two backends:
 *
 * - replayTrace (the default): drive a live DeepStore through its
 *   asynchronous submit path. Arrivals become event-queue events at
 *   their trace timestamps, queries overlap on the accelerator
 *   complex under the scheduler's sharing model, and per-query
 *   response times come from real completion ticks.
 *
 * - replayTraceClosedForm (validator-only): a closed-form
 *   single-server FIFO queueing model (the GPU+SSD baseline or a
 *   DeepStore level, with or without the Query Cache). One scan owns
 *   the accelerators at a time, so a query's response time is its
 *   queueing delay plus its own service time. It exists to sanity-
 *   check the live backend's light-load behavior and to model
 *   systems (the GPU baseline) that have no event-driven engine —
 *   it is NOT a timing source for DeepStore results; reach for it
 *   only behind an explicit flag.
 */

#ifndef DEEPSTORE_CORE_TRACE_REPLAY_H
#define DEEPSTORE_CORE_TRACE_REPLAY_H

#include <functional>
#include <optional>

#include "core/deepstore.h"
#include "core/query_cache.h"
#include "workloads/trace.h"

namespace deepstore::core {

/** Service-time model for one query system. */
struct ReplayService
{
    /** Full database scan (cache miss, or no cache). */
    double scanSeconds = 0.0;
    /** Cache lookup over all entries (0 when no cache). */
    double lookupSeconds = 0.0;
    /** SCN over the cached top-K on a hit. */
    double hitExtraSeconds = 0.0;
};

/** Response-time statistics from a replay. */
struct ReplayStats
{
    std::uint64_t queries = 0;
    double missRate = 0.0;   ///< 1.0 when no cache is configured
    double meanSeconds = 0.0;
    double p50Seconds = 0.0;
    double p95Seconds = 0.0;
    double p99Seconds = 0.0;
    double maxSeconds = 0.0;
    /** Server busy fraction over the trace span. */
    double utilization = 0.0;
    /** Completed-work rate (queries/second of wall time). */
    double throughput = 0.0;
};

/**
 * **Validator-only** closed-form replay: a single-server FIFO
 * queueing model over the analytic service times. When `cache` is
 * non-null it is consulted (and updated) per query using Algorithm 1;
 * pass nullptr for a cache-less system. Use replayTrace (the live
 * engine backend) for DeepStore timing; this model exists to
 * cross-check it and to cover systems with no event-driven engine.
 */
ReplayStats replayTraceClosedForm(const workloads::QueryTrace &trace,
                                  const ReplayService &service,
                                  QueryCache *cache);

/** How replayTrace turns trace records into queries. */
struct EngineReplayConfig
{
    std::size_t k = 5;
    std::uint64_t modelId = 0;
    std::uint64_t dbId = 0;
    std::uint64_t dbStart = 0;
    /** 0 = scan to the end of the database. */
    std::uint64_t dbEnd = 0;
    std::optional<Level> level;
    /** QFVs come from universe->featureOf(queryId, featureDim). */
    std::int64_t featureDim = 0;
    const workloads::QueryUniverse *universe = nullptr;
};

/**
 * Replay the trace on a live engine (the default backend): each
 * record's query is submitted asynchronously at its arrival tick,
 * queries interleave on the accelerator complex, and response times
 * are completion - arrival in simulated time. The engine's own Query
 * Cache (setQC) decides hits/misses. Note `utilization` here reports
 * accelerator-time occupancy over the span — it can exceed 1 when
 * scans overlap.
 */
ReplayStats replayTrace(DeepStore &store,
                        const workloads::QueryTrace &trace,
                        const EngineReplayConfig &config);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_TRACE_REPLAY_H
