/**
 * @file
 * Trace replay: feed a timestamped query trace (paper §5) through a
 * single-server queueing model of a query system — the GPU+SSD
 * baseline or a DeepStore level, with or without the Query Cache —
 * and report throughput and the response-time distribution.
 *
 * Queries are served FIFO: one scan owns the accelerators (or the
 * GPU) at a time, so a query's response time is its queueing delay
 * plus its own service time (cache lookup + hit/miss work).
 */

#ifndef DEEPSTORE_CORE_TRACE_REPLAY_H
#define DEEPSTORE_CORE_TRACE_REPLAY_H

#include <functional>

#include "core/query_cache.h"
#include "workloads/trace.h"

namespace deepstore::core {

/** Service-time model for one query system. */
struct ReplayService
{
    /** Full database scan (cache miss, or no cache). */
    double scanSeconds = 0.0;
    /** Cache lookup over all entries (0 when no cache). */
    double lookupSeconds = 0.0;
    /** SCN over the cached top-K on a hit. */
    double hitExtraSeconds = 0.0;
};

/** Response-time statistics from a replay. */
struct ReplayStats
{
    std::uint64_t queries = 0;
    double missRate = 0.0;   ///< 1.0 when no cache is configured
    double meanSeconds = 0.0;
    double p50Seconds = 0.0;
    double p95Seconds = 0.0;
    double p99Seconds = 0.0;
    double maxSeconds = 0.0;
    /** Server busy fraction over the trace span. */
    double utilization = 0.0;
    /** Completed-work rate (queries/second of wall time). */
    double throughput = 0.0;
};

/**
 * Replay a trace against the service model. When `cache` is non-null
 * it is consulted (and updated) per query using Algorithm 1; pass
 * nullptr for a cache-less system.
 */
ReplayStats replayTrace(const workloads::QueryTrace &trace,
                        const ReplayService &service,
                        QueryCache *cache);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_TRACE_REPLAY_H
