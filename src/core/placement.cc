#include "core/placement.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "ssd/geometry.h"
#include "ssd/throughput.h"

namespace deepstore::core {

const char *
toString(Level level)
{
    switch (level) {
      case Level::SsdLevel: return "SSD";
      case Level::ChannelLevel: return "Channel";
      case Level::ChipLevel: return "Chip";
    }
    return "?";
}

Placement
makePlacement(Level level, const ssd::FlashParams &flash)
{
    Placement p;
    p.level = level;
    systolic::ArrayConfig &a = p.array;
    a.wordBytes = kBytesPerFloat;

    switch (level) {
      case Level::SsdLevel:
        // Table 3: 32x64 OS systolic array @ 800 MHz, 8 MB scratchpad.
        a.name = "ssd-accel";
        a.rows = 32;
        a.cols = 64;
        a.dataflow = systolic::Dataflow::OutputStationary;
        a.frequencyHz = 800 * MHz;
        a.scratchpadBytes = 8 * MiB;
        a.sharedL2Bytes = 0;
        a.dramBandwidth = flash.dramBandwidth; // full DRAM bandwidth
        p.sramModel = energy::SramModel::ItrsHp;
        p.numAccelerators = 1;
        p.powerBudgetW = kAcceleratorPowerBudgetW;
        p.wsGroupSize = 1;
        p.residentWeightBytes = a.scratchpadBytes;
        break;

      case Level::ChannelLevel:
        // Table 3: 16x64 OS @ 800 MHz, 512 KB private scratchpad,
        // sharing the SSD-level 8 MB scratchpad as a weight L2.
        a.name = "channel-accel";
        a.rows = 16;
        a.cols = 64;
        a.dataflow = systolic::Dataflow::OutputStationary;
        a.frequencyHz = 800 * MHz;
        a.scratchpadBytes = 512 * KiB;
        a.sharedL2Bytes = 8 * MiB;
        a.dramBandwidth = flash.dramBandwidth /
                          static_cast<double>(flash.channels);
        p.sramModel = energy::SramModel::ItrsHp;
        p.numAccelerators = flash.channels;
        p.powerBudgetW = kAcceleratorPowerBudgetW /
                         static_cast<double>(flash.channels);
        p.wsGroupSize = 1;
        // The engine reserves the top 384 KiB of the shared
        // scratchpad for its staging buffers (QFV broadcast, result
        // collection), so slightly less than the full 8 MiB holds
        // resident weights.
        p.residentWeightBytes = a.sharedL2Bytes - 384 * KiB;
        break;

      case Level::ChipLevel:
        // Table 3: 4x32 WS @ 400 MHz, 512 KB scratchpad, itrs-low
        // SRAMs; weights stream in lockstep over the channel bus.
        a.name = "chip-accel";
        a.rows = 4;
        a.cols = 32;
        a.dataflow = systolic::Dataflow::WeightStationary;
        a.frequencyHz = 400 * MHz;
        a.scratchpadBytes = 512 * KiB;
        a.sharedL2Bytes = 0;
        a.dramBandwidth =
            flash.dramBandwidth /
            static_cast<double>(flash.totalChips());
        p.sramModel = energy::SramModel::ItrsLow;
        p.numAccelerators = flash.totalChips();
        p.powerBudgetW = kAcceleratorPowerBudgetW /
                         static_cast<double>(flash.totalChips());
        p.wsGroupSize = 2; // lockstep double buffering (§4.5)
        p.residentWeightBytes = a.scratchpadBytes;
        p.dfvQueueDepthPages = 8; // small in-chip staging buffer
        break;
    }
    a.validate();
    if (p.numAccelerators == 0)
        panic("placement produced zero accelerators");
    return p;
}

namespace {

/** Accelerator-pool index owning a physical page at this level. */
std::uint32_t
unitIndexFor(Level level, const ssd::PageAddress &addr,
             const ssd::FlashParams &flash)
{
    switch (level) {
      case Level::SsdLevel: return 0;
      case Level::ChannelLevel: return addr.channel;
      case Level::ChipLevel:
        return addr.channel * flash.chipsPerChannel + addr.chip;
    }
    return 0;
}

/** splitmix64 step (deterministic plan signatures). */
std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return h ^ (h >> 27);
}

} // namespace

ScanPlan
resolveScanPlan(const Placement &placement,
                const ssd::FlashParams &flash, const DbMetadata &db,
                std::uint64_t db_start, std::uint64_t db_end,
                const LpnTranslator &translate,
                std::uint64_t mapping_epoch)
{
    DS_ASSERT(db_start < db_end);
    DS_ASSERT(db_end <= db.numFeatures);
    DS_ASSERT(translate);
    const Level level = placement.level;
    ssd::Geometry geom(flash);
    ssd::FeatureLayout layout{db.featureBytes, flash.pageBytes};

    // Per-page bus traffic and the steady-state same-controller
    // issue stagger of this datapath.
    const std::uint64_t transfer_bytes =
        level == Level::ChipLevel ? 0
                                  : layout.transferBytesPerPage();
    Tick interval;
    if (level == Level::ChipLevel) {
        // A chip-level stream spans only its own chip's planes.
        interval = secondsToTicks(
            flash.readLatency /
            static_cast<double>(flash.planesPerChip));
    } else {
        interval = secondsToTicks(
            1.0 / ssd::channelPageRate(flash, transfer_bytes));
    }

    // Accumulate per-unit page runs in unit order.
    std::map<std::uint32_t, UnitScan> units;
    auto unitFor = [&](std::uint32_t index) -> UnitScan & {
        UnitScan &u = units[index];
        u.unitIndex = index;
        return u;
    };

    ScanPlan plan;
    if (db.featureBytes <= flash.pageBytes) {
        // Packed small features: a page's features belong to the
        // accelerator of the page's flash slice.
        const std::uint64_t fpp = layout.featuresPerPage();
        const std::uint64_t first_page = db_start / fpp;
        const std::uint64_t last_page = (db_end - 1) / fpp;
        for (std::uint64_t p = first_page; p <= last_page; ++p) {
            const std::uint64_t ppn = translate(db.startLpn + p);
            const ssd::PageAddress addr = geom.decode(ppn);
            UnitScan &u =
                unitFor(unitIndexFor(level, addr, flash));
            u.plan.pages.push_back(addr);
            const std::uint64_t lo =
                std::max(p * fpp, db_start);
            const std::uint64_t hi =
                std::min((p + 1) * fpp, db_end);
            u.features += hi - lo;
        }
        plan.pageReadsPerStep = 1;
        plan.featuresPerStep = fpp;
    } else {
        // Large features span pages striped across channels: deal
        // features round-robin to units; each unit reads its
        // features' real (cross-channel) addresses.
        const std::uint64_t ppf = layout.pagesPerFeature();
        const std::uint32_t n_units = placement.numAccelerators;
        for (std::uint64_t f = db_start; f < db_end; ++f) {
            UnitScan &u = unitFor(
                static_cast<std::uint32_t>(f % n_units));
            for (std::uint64_t k = 0; k < ppf; ++k) {
                const std::uint64_t ppn =
                    translate(db.startLpn + f * ppf + k);
                u.plan.pages.push_back(geom.decode(ppn));
            }
            u.features += 1;
        }
        plan.pageReadsPerStep = ppf;
        plan.featuresPerStep = 1;
    }

    // Round the FLASH_DFV queue depth down to a whole number of
    // steps: a burst must always free its pages (a fractional
    // feature's pages can never latch into the array, so a burst
    // that ends mid-feature would stall the refill barrier).
    const std::uint32_t prs =
        static_cast<std::uint32_t>(plan.pageReadsPerStep);
    std::uint32_t depth = placement.dfvQueueDepthPages;
    depth = std::max(prs, depth - depth % prs);

    plan.units.reserve(units.size());
    for (auto &[index, u] : units) {
        DS_ASSERT(u.features > 0 && !u.plan.pages.empty());
        u.plan.transferBytesPerPage = transfer_bytes;
        u.plan.queueDepthPages = depth;
        u.plan.perChannelIssueInterval = interval;
        plan.units.push_back(std::move(u));
    }

    std::uint64_t sig = mix(0x5ca9da7aULL, db.dbId);
    sig = mix(sig, db.startLpn);
    sig = mix(sig, db.featureBytes);
    sig = mix(sig, db_start);
    sig = mix(sig, db_end);
    sig = mix(sig, static_cast<std::uint64_t>(level));
    sig = mix(sig, placement.dfvQueueDepthPages);
    // Stale-mapping guard: any committed FTL remap bumps the epoch,
    // so plans resolved across it land in different broadcast groups
    // (mixed unconditionally — a constant while the map is stable,
    // so fault-free schedules are unchanged).
    sig = mix(sig, mapping_epoch);
    plan.signature = sig;
    return plan;
}

} // namespace deepstore::core
