#include "core/placement.h"

#include "common/logging.h"

namespace deepstore::core {

const char *
toString(Level level)
{
    switch (level) {
      case Level::SsdLevel: return "SSD";
      case Level::ChannelLevel: return "Channel";
      case Level::ChipLevel: return "Chip";
    }
    return "?";
}

Placement
makePlacement(Level level, const ssd::FlashParams &flash)
{
    Placement p;
    p.level = level;
    systolic::ArrayConfig &a = p.array;
    a.wordBytes = kBytesPerFloat;

    switch (level) {
      case Level::SsdLevel:
        // Table 3: 32x64 OS systolic array @ 800 MHz, 8 MB scratchpad.
        a.name = "ssd-accel";
        a.rows = 32;
        a.cols = 64;
        a.dataflow = systolic::Dataflow::OutputStationary;
        a.frequencyHz = 800 * MHz;
        a.scratchpadBytes = 8 * MiB;
        a.sharedL2Bytes = 0;
        a.dramBandwidth = flash.dramBandwidth; // full DRAM bandwidth
        p.sramModel = energy::SramModel::ItrsHp;
        p.numAccelerators = 1;
        p.powerBudgetW = kAcceleratorPowerBudgetW;
        p.wsGroupSize = 1;
        p.residentWeightBytes = a.scratchpadBytes;
        break;

      case Level::ChannelLevel:
        // Table 3: 16x64 OS @ 800 MHz, 512 KB private scratchpad,
        // sharing the SSD-level 8 MB scratchpad as a weight L2.
        a.name = "channel-accel";
        a.rows = 16;
        a.cols = 64;
        a.dataflow = systolic::Dataflow::OutputStationary;
        a.frequencyHz = 800 * MHz;
        a.scratchpadBytes = 512 * KiB;
        a.sharedL2Bytes = 8 * MiB;
        a.dramBandwidth = flash.dramBandwidth /
                          static_cast<double>(flash.channels);
        p.sramModel = energy::SramModel::ItrsHp;
        p.numAccelerators = flash.channels;
        p.powerBudgetW = kAcceleratorPowerBudgetW /
                         static_cast<double>(flash.channels);
        p.wsGroupSize = 1;
        // The engine reserves the top 384 KiB of the shared
        // scratchpad for its staging buffers (QFV broadcast, result
        // collection), so slightly less than the full 8 MiB holds
        // resident weights.
        p.residentWeightBytes = a.sharedL2Bytes - 384 * KiB;
        break;

      case Level::ChipLevel:
        // Table 3: 4x32 WS @ 400 MHz, 512 KB scratchpad, itrs-low
        // SRAMs; weights stream in lockstep over the channel bus.
        a.name = "chip-accel";
        a.rows = 4;
        a.cols = 32;
        a.dataflow = systolic::Dataflow::WeightStationary;
        a.frequencyHz = 400 * MHz;
        a.scratchpadBytes = 512 * KiB;
        a.sharedL2Bytes = 0;
        a.dramBandwidth =
            flash.dramBandwidth /
            static_cast<double>(flash.totalChips());
        p.sramModel = energy::SramModel::ItrsLow;
        p.numAccelerators = flash.totalChips();
        p.powerBudgetW = kAcceleratorPowerBudgetW /
                         static_cast<double>(flash.totalChips());
        p.wsGroupSize = 2; // lockstep double buffering (§4.5)
        p.residentWeightBytes = a.scratchpadBytes;
        p.dfvQueueDepthPages = 8; // small in-chip staging buffer
        break;
    }
    a.validate();
    if (p.numAccelerators == 0)
        panic("placement produced zero accelerators");
    return p;
}

} // namespace deepstore::core
