#include "core/query_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "core/scan_core.h"

namespace deepstore::core {

const char *
toString(QueryState s)
{
    switch (s) {
      case QueryState::Parsed: return "Parsed";
      case QueryState::CacheProbe: return "CacheProbe";
      case QueryState::Striped: return "Striped";
      case QueryState::Scanning: return "Scanning";
      case QueryState::Reduce: return "Reduce";
      case QueryState::Complete: return "Complete";
      case QueryState::Degraded: return "Degraded";
    }
    return "unknown";
}

bool
isTerminal(QueryState s)
{
    return s == QueryState::Complete || s == QueryState::Degraded;
}

const char *
toString(QueryOutcome o)
{
    switch (o) {
      case QueryOutcome::Success: return "Success";
      case QueryOutcome::Degraded: return "Degraded";
      case QueryOutcome::DeadlineExceeded: return "DeadlineExceeded";
      case QueryOutcome::Aborted: return "Aborted";
      case QueryOutcome::PowerLoss: return "PowerLoss";
    }
    return "unknown";
}

namespace {

/** Parent placement level for re-striping fallback. */
std::optional<Level>
parentLevel(Level l)
{
    switch (l) {
      case Level::ChipLevel:
        return Level::ChannelLevel;
      case Level::ChannelLevel:
        return Level::SsdLevel;
      case Level::SsdLevel:
        return std::nullopt;
    }
    return std::nullopt;
}

/** Unique per-incarnation stream signature: a re-striped remnant's
 *  page list differs from any original per-unit plan, so it must
 *  never join an in-flight broadcast group. */
std::uint64_t
remnantSignature(std::uint64_t base, std::uint64_t seq,
                 std::uint32_t retries)
{
    std::uint64_t x =
        base ^ (seq * 0x9E3779B97F4A7C15ULL) ^
        (static_cast<std::uint64_t>(retries) + 1);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return x ^ (x >> 31);
}

} // namespace

/** Per-query bookkeeping. */
struct QueryScheduler::QueryInfo
{
    QuerySubmission sub;
    QueryState state = QueryState::Parsed;
    QueryOutcome outcome = QueryOutcome::Success;
    Tick submitTick = 0;
    Tick completeTick = 0;
    std::uint32_t outstandingShards = 0;
    /** Features in the query's full range (sum over shards). */
    std::uint64_t totalFeatures = 0;
    /** Features scanned from good pages across all shard
     *  incarnations. */
    std::uint64_t coveredFeatures = 0;
    /** Shard seqs ever created for this query (filter against the
     *  scheduler's live shard map). */
    std::vector<std::uint64_t> shardSeqs;
    /** Contention decomposition accumulated as shards retire. */
    QueryRunStats run;
    sim::EventId deadlineEvent = 0;
    bool deadlineArmed = false;
};

/** What survives of a shard when its unit dies, its watchdog fires,
 *  or its query is torn down: credited progress plus the remnant
 *  plan that re-striping dispatches elsewhere. */
struct QueryScheduler::ShardRemnant
{
    std::uint64_t seq = 0;
    std::uint64_t featuresDone = 0;
    std::uint64_t featuresLeft = 0;
    ssd::DfvPlan plan; ///< pages still to scan (may be empty)
    std::vector<Tick> layerTicks;
    std::uint64_t featuresPerSlot = 1;
    std::shared_ptr<WeightStream> weights;
    std::uint64_t dbKey = 0;
    std::uint64_t signature = 0; ///< base (query-level) signature
    ScanStepShape shape;
};

/**
 * One countable accelerator instance. Holds up to `maxResident`
 * concurrently scanning shards plus a FIFO queue of waiting shards.
 * Shards are grouped by (dbKey, plan signature) into GroupScans; each
 * group owns one DfvStream of real flash reads (read-once-broadcast)
 * and the groups of one unit serialize their compute batches on the
 * unit's ComputeArbiter. All progress happens through stream-delivery
 * and batch-completion events.
 *
 * The unit is also the failure boundary: fail() (scheduled by the
 * fault schedule) snatches every shard — waiting or mid-scan — into
 * ShardRemnants and hands them back to the scheduler for
 * re-striping; detachShard() does the same for a single shard
 * (watchdog fires, deadlines, cancellation).
 */
class QueryScheduler::AcceleratorUnit
{
  public:
    /** A shard placement request. */
    struct ShardReq
    {
        std::uint64_t seq = 0;
        std::uint64_t features = 0;
        /** Per-feature compute bursts (systolic slot schedule). */
        std::vector<Tick> layerTicks;
        std::uint64_t featuresPerSlot = 1;
        /** Weight feed (shared for broadcast placements). */
        std::shared_ptr<WeightStream> weights;
        std::uint64_t dbKey = 0;
        /** Base (query-level) plan signature, reported in
         *  remnants. */
        std::uint64_t baseSignature = 0;
        /** Stream-sharing signature (== baseSignature for original
         *  shards; unique for re-striped remnants). */
        std::uint64_t signature = 0;
        ScanStepShape shape;
        ssd::DfvPlan plan;
    };

    AcceleratorUnit(sim::EventQueue &events, QueryScheduler &sched,
                    ssd::DfvStreamService &dfv,
                    std::uint32_t max_resident, Tick watchdog_ticks,
                    StatGroup &stats)
        : events_(events), sched_(sched), dfv_(dfv),
          maxResident_(max_resident),
          watchdogTicks_(watchdog_ticks), stats_(stats)
    {
        DS_ASSERT(maxResident_ > 0);
    }

    ~AcceleratorUnit()
    {
        // Streams of still-open groups belong to the service; close
        // them so active() stays truthful on teardown.
        for (auto &g : groups_)
            if (g->stream)
                dfv_.close(*g->stream);
    }

    void
    join(ShardReq req)
    {
        DS_ASSERT(req.features > 0);
        if (dead_) {
            // Lost a race with this unit's death; bounce the shard
            // straight back for re-striping.
            sched_.shardFailed(remnantOf(req));
            return;
        }
        armWatchdog(req.seq);
        if (residents_ < maxResident_)
            admit(std::move(req));
        else
            waiting_.push_back(std::move(req));
    }

    /**
     * Scheduled unit death: every shard (waiting or scanning) is
     * snatched into a remnant and handed back to the scheduler; the
     * unit refuses all future work. In-flight flash completions
     * drain harmlessly (their streams are closed, callbacks
     * guarded). Idempotent.
     */
    void
    fail()
    {
        if (dead_)
            return;
        dead_ = true;
        stats_.get("sched.unitFailures") += 1;
        std::vector<ShardRemnant> remnants;
        for (auto &g : groups_) {
            if (g->finished)
                continue;
            const std::uint64_t pos = g->scan->position();
            for (const auto &m : g->scan->memberList()) {
                if (m.features <= pos)
                    continue; // already retired
                remnants.push_back(remnantOfMember(*g, m));
            }
            g->scan->abort();
            if (g->stream) {
                dfv_.close(*g->stream);
                g->stream = nullptr;
            }
            g->finished = true;
        }
        for (auto &req : waiting_)
            remnants.push_back(remnantOf(req));
        waiting_.clear();
        residents_ = 0;
        for (auto &[seq, ev] : watchdogs_)
            events_.cancel(ev);
        watchdogs_.clear();
        scheduleCleanup();
        for (auto &r : remnants)
            sched_.shardFailed(std::move(r));
    }

    bool alive() const { return !dead_; }

    /**
     * Remove one shard without retiring it (watchdog / deadline /
     * cancellation). Returns the remnant, or nullopt when the shard
     * is not on this unit (already finished or in re-dispatch
     * transit).
     */
    std::optional<ShardRemnant>
    detachShard(std::uint64_t seq)
    {
        disarmWatchdog(seq);
        for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
            if (it->seq != seq)
                continue;
            ShardRemnant r = remnantOf(*it);
            waiting_.erase(it);
            return r;
        }
        for (auto &g : groups_) {
            if (g->finished)
                continue;
            const auto &members = g->scan->memberList();
            auto mit = std::find_if(members.begin(), members.end(),
                                    [seq](const ScanMember &m) {
                                        return m.id == seq;
                                    });
            if (mit == members.end() ||
                mit->features <= g->scan->position())
                continue;
            ShardRemnant r = remnantOfMember(*g, *mit);
            g->scan->removeMember(seq);
            DS_ASSERT(residents_ > 0);
            --residents_;
            if (g->scan->done()) {
                if (g->stream) {
                    dfv_.close(*g->stream);
                    g->stream = nullptr;
                }
                g->finished = true;
            }
            scheduleCleanup();
            return r;
        }
        return std::nullopt;
    }

    std::size_t residents() const { return residents_; }
    std::size_t waiting() const { return waiting_.size(); }

    /**
     * Estimated tick at which this unit goes idle: the array's
     * reserved horizon plus the next flash delivery each live group
     * is waiting for (FlashController::estimateReadCompletion via
     * DfvStream::nextDeliveryEstimate — the physical load signal).
     * A lower bound while shards are waiting or streams unfinished.
     */
    Tick
    busyUntilEstimate() const
    {
        if (dead_)
            return 0;
        Tick t = residents_ > 0 ? arbiter_.busyUntil() : 0;
        for (const auto &g : groups_) {
            if (g->finished || !g->stream)
                continue;
            t = std::max(t, g->stream->nextDeliveryEstimate());
        }
        return t;
    }

    /**
     * Schedule an auxiliary work item (QC probe share, cache-hit
     * rescore) on this unit: pull `dram_bytes` over the shared DRAM
     * link, then run `compute_ticks` on the array behind whatever
     * scan bursts already hold it. Returns the completion tick (now
     * for a dead unit — the caller treats that unit's share as
     * lost).
     */
    Tick
    auxWork(Tick compute_ticks, std::uint64_t dram_bytes,
            sim::BandwidthLink *dram)
    {
        const Tick now = events_.now();
        if (dead_)
            return now;
        const Tick ready = dram && dram_bytes > 0
                               ? dram->acquire(now, dram_bytes)
                               : now;
        return arbiter_.acquire(ready, compute_ticks);
    }

  private:
    struct Group
    {
        std::uint64_t dbKey = 0;
        std::uint64_t signature = 0;
        std::uint64_t baseSignature = 0;
        ScanStepShape shape;
        std::uint64_t featuresPerSlot = 1;
        ssd::DfvStream *stream = nullptr;
        std::unique_ptr<GroupScan> scan;
        bool finished = false;
    };

    ShardRemnant
    remnantOf(const ShardReq &req) const
    {
        ShardRemnant r;
        r.seq = req.seq;
        r.featuresDone = 0;
        r.featuresLeft = req.features;
        r.plan = req.plan;
        r.layerTicks = req.layerTicks;
        r.featuresPerSlot = req.featuresPerSlot;
        r.weights = req.weights;
        r.dbKey = req.dbKey;
        r.signature = req.baseSignature;
        r.shape = req.shape;
        return r;
    }

    ShardRemnant
    remnantOfMember(const Group &g, const ScanMember &m) const
    {
        const std::uint64_t pos =
            std::min(g.scan->position(), m.features);
        ShardRemnant r;
        r.seq = m.id;
        r.featuresDone = g.scan->completedFeatures(m.id);
        r.featuresLeft = m.features - pos;
        if (g.stream && r.featuresLeft > 0) {
            const std::uint64_t from = g.scan->pagesForPosition(pos);
            // Round the member's end up to a whole step so a partial
            // last page is re-read rather than dropped.
            const std::uint64_t end_steps =
                (m.features + g.shape.featuresPerStep - 1) /
                g.shape.featuresPerStep;
            const std::uint64_t to =
                std::min(g.stream->pagesTotal(),
                         end_steps * g.shape.pageReadsPerStep);
            if (to > from)
                r.plan = g.stream->subplan(from, to);
        }
        r.layerTicks = m.layerBurstTicks;
        r.featuresPerSlot = g.featuresPerSlot;
        r.weights = m.weights;
        r.dbKey = g.dbKey;
        r.signature = g.baseSignature;
        r.shape = g.shape;
        return r;
    }

    void
    armWatchdog(std::uint64_t seq)
    {
        if (watchdogTicks_ == 0)
            return;
        watchdogs_[seq] =
            events_.scheduleAfter(watchdogTicks_, [this, seq] {
                watchdogs_.erase(seq);
                auto r = detachShard(seq);
                if (!r)
                    return;
                stats_.get("sched.watchdogFires") += 1;
                sched_.shardFailed(std::move(*r));
            });
    }

    void
    disarmWatchdog(std::uint64_t seq)
    {
        auto it = watchdogs_.find(seq);
        if (it == watchdogs_.end())
            return;
        events_.cancel(it->second);
        watchdogs_.erase(it);
    }

    void
    admit(ShardReq &&req)
    {
        ++residents_;
        ScanMember member;
        member.id = req.seq;
        member.features = req.features;
        member.layerBurstTicks = req.layerTicks;
        member.weights = req.weights;
        // Read-once-broadcast: join an in-flight group with the same
        // database and plan, provided its stream has not advanced
        // (a later joiner would have missed broadcast pages).
        for (auto &g : groups_) {
            if (g->finished || g->dbKey != req.dbKey ||
                g->signature != req.signature ||
                !g->scan->canAdmit())
                continue;
            g->scan->addMember(std::move(member));
            return;
        }
        auto g = std::make_unique<Group>();
        Group *gp = g.get();
        gp->dbKey = req.dbKey;
        gp->signature = req.signature;
        gp->baseSignature = req.baseSignature;
        gp->shape = req.shape;
        gp->featuresPerSlot =
            req.featuresPerSlot > 0 ? req.featuresPerSlot : 1;
        if (!req.plan.pages.empty())
            gp->stream = &dfv_.open(std::move(req.plan));
        gp->scan = std::make_unique<GroupScan>(
            events_, arbiter_, gp->stream, req.shape,
            gp->featuresPerSlot);
        gp->scan->onMemberDone(
            [this](std::uint64_t seq, std::uint64_t features_ok,
                   const ScanGroupSnapshot &snap) {
                memberDone(seq, features_ok, snap);
            });
        gp->scan->onGroupDone([this, gp] {
            gp->finished = true;
            if (gp->stream) {
                dfv_.close(*gp->stream);
                gp->stream = nullptr;
            }
            scheduleCleanup();
        });
        groups_.push_back(std::move(g));
        gp->scan->addMember(std::move(member));
        gp->scan->start();
    }

    void
    memberDone(std::uint64_t seq, std::uint64_t features_ok,
               const ScanGroupSnapshot &snap)
    {
        DS_ASSERT(residents_ > 0);
        --residents_;
        disarmWatchdog(seq);
        sched_.shardDone(seq, features_ok, snap);
        scheduleCleanup();
    }

    /** Defer group destruction and waiting-shard admission out of
     *  the GroupScan callback context (same tick, later event). */
    void
    scheduleCleanup()
    {
        if (cleanupPending_)
            return;
        cleanupPending_ = true;
        events_.scheduleAfter(0, [this] {
            cleanupPending_ = false;
            groups_.erase(
                std::remove_if(groups_.begin(), groups_.end(),
                               [](const std::unique_ptr<Group> &g) {
                                   return g->finished;
                               }),
                groups_.end());
            while (!dead_ && !waiting_.empty() &&
                   residents_ < maxResident_) {
                ShardReq req = std::move(waiting_.front());
                waiting_.pop_front();
                admit(std::move(req));
            }
            sched_.updateBusyHorizon();
        });
    }

    sim::EventQueue &events_;
    QueryScheduler &sched_;
    ssd::DfvStreamService &dfv_;
    ComputeArbiter arbiter_;
    std::uint32_t maxResident_;
    Tick watchdogTicks_;
    StatGroup &stats_;
    std::vector<std::unique_ptr<Group>> groups_;
    std::deque<ShardReq> waiting_;
    std::map<std::uint64_t, sim::EventId> watchdogs_;
    std::size_t residents_ = 0;
    bool cleanupPending_ = false;
    bool dead_ = false;
};

QueryScheduler::QueryScheduler(sim::EventQueue &events,
                               QuerySchedulerConfig config,
                               ssd::DfvStreamService &dfv,
                               StatGroup *stats)
    : events_(events), config_(config), dfv_(dfv),
      injector_(config.faults),
      stats_(stats ? *stats : ownStats_)
{
    if (config_.maxResidentScans == 0)
        fatal("maxResidentScans must be at least 1");
    if (config_.shardWatchdogSeconds < 0.0 ||
        config_.shardRetryBackoffSeconds < 0.0)
        fatal("scheduler fault knobs must be non-negative");
}

QueryScheduler::~QueryScheduler() = default;

std::vector<std::unique_ptr<QueryScheduler::AcceleratorUnit>> &
QueryScheduler::pool(Level level, std::uint32_t count)
{
    auto &units = pools_[level];
    if (units.empty()) {
        const Tick watchdog =
            config_.shardWatchdogSeconds > 0.0
                ? secondsToTicks(config_.shardWatchdogSeconds)
                : 0;
        units.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            units.push_back(std::make_unique<AcceleratorUnit>(
                events_, *this, dfv_, config_.maxResidentScans,
                watchdog, stats_));
            // Scheduled unit deaths from the fault schedule.
            if (auto at = injector_.unitFailureTick(
                    static_cast<std::uint32_t>(level), i)) {
                AcceleratorUnit *u = units.back().get();
                events_.schedule(std::max(*at, events_.now()),
                                 [u] { u->fail(); });
            }
        }
    }
    if (units.size() != count)
        panic("accelerator count changed for level %s: %zu vs %u",
              core::toString(level), units.size(), count);
    return units;
}

void
QueryScheduler::submit(QuerySubmission submission)
{
    DS_ASSERT(submission.queryId != 0);
    DS_ASSERT(submission.finalize);
    if (!submission.cacheHit) {
        DS_ASSERT(submission.numAccelerators > 0);
        DS_ASSERT(!submission.shards.empty());
        DS_ASSERT(submission.pageReadsPerStep > 0);
        DS_ASSERT(submission.featuresPerStep > 0);
        DS_ASSERT(!submission.layerBurstTicksPerFeature.empty());
        DS_ASSERT(submission.featuresPerSlot > 0);
    }
    auto [it, inserted] =
        queries_.emplace(submission.queryId, QueryInfo{});
    if (!inserted)
        fatal("duplicate query id %llu",
              static_cast<unsigned long long>(submission.queryId));
    QueryInfo &q = it->second;
    q.sub = std::move(submission);
    q.submitTick = events_.now();
    q.state = QueryState::Parsed;
    ++inFlight_;

    const std::uint64_t id = q.sub.queryId;
    if (q.sub.deadlineSeconds > 0.0) {
        q.deadlineArmed = true;
        q.deadlineEvent = events_.scheduleAfter(
            secondsToTicks(q.sub.deadlineSeconds), [this, id] {
                auto qit = queries_.find(id);
                if (qit == queries_.end() ||
                    isTerminal(qit->second.state))
                    return;
                qit->second.deadlineArmed = false;
                stats_.get("sched.deadlineExceeded") += 1;
                degradeQuery(qit->second,
                             QueryOutcome::DeadlineExceeded);
            });
    }
    // QC probe: each channel-level accelerator pulls its share of
    // the cached entries over the shared DRAM link and scores it on
    // its array, behind whatever scan bursts already hold those
    // resources; the probe completes when the slowest unit finishes.
    Tick probe_done = events_.now();
    if (q.sub.probeUnits > 0) {
        auto &probe_pool =
            pool(Level::ChannelLevel, q.sub.probeUnits);
        for (auto &unit : probe_pool)
            probe_done = std::max(
                probe_done,
                unit->auxWork(q.sub.probeComputeTicksPerUnit,
                              q.sub.probeDramBytesPerUnit,
                              config_.dram));
    }
    q.run.probeTicks = probe_done - events_.now();
    q.state = QueryState::CacheProbe;
    if (q.sub.cacheHit) {
        // CacheProbe -> Reduce (rescore cached top-K on a channel
        // accelerator) -> Complete. Every stage re-checks that the
        // query is still live (deadlines/cancel may have fired).
        events_.schedule(probe_done, [this, id] {
            auto qit = queries_.find(id);
            if (qit == queries_.end() ||
                isTerminal(qit->second.state))
                return;
            QueryInfo &qq = qit->second;
            qq.state = QueryState::Reduce;
            // Rescore the cached top-K on one channel accelerator:
            // pull the cached feature vectors over the DRAM link,
            // then run the SCN burst on that unit's array.
            Tick done;
            auto pit = pools_.find(Level::ChannelLevel);
            if (pit != pools_.end() && !pit->second.empty()) {
                auto &units = pit->second;
                done = units[id % units.size()]->auxWork(
                    qq.sub.hitComputeTicks, qq.sub.hitDramBytes,
                    config_.dram);
            } else {
                // Cache configured without probe units: rescore on
                // the DRAM link alone.
                const Tick now = events_.now();
                const Tick ready =
                    config_.dram && qq.sub.hitDramBytes > 0
                        ? config_.dram->acquire(
                              now, qq.sub.hitDramBytes)
                        : now;
                done = ready + qq.sub.hitComputeTicks;
            }
            events_.schedule(done, [this, id] {
                auto qit2 = queries_.find(id);
                if (qit2 == queries_.end() ||
                    isTerminal(qit2->second.state))
                    return;
                completeQuery(qit2->second, QueryOutcome::Success);
            });
        });
    } else {
        events_.schedule(probe_done, [this, id] {
            auto qit = queries_.find(id);
            if (qit == queries_.end() ||
                isTerminal(qit->second.state))
                return;
            enterStriped(qit->second);
        });
    }
}

void
QueryScheduler::enterStriped(QueryInfo &q)
{
    q.state = QueryState::Striped;
    auto &units = pool(q.sub.level, q.sub.numAccelerators);
    q.outstandingShards =
        static_cast<std::uint32_t>(q.sub.shards.size());
    // Broadcast placements stream each slot's weight tiles over the
    // DRAM link once for the whole stripe (shared L2 / WS lockstep);
    // otherwise every shard pulls a private copy.
    std::shared_ptr<WeightStream> broadcast_weights;
    if (q.sub.weightBytesPerSlot > 0 && q.sub.weightBroadcast)
        broadcast_weights = std::make_shared<WeightStream>(
            config_.dram, q.sub.weightBytesPerSlot);
    for (auto &shard : q.sub.shards) {
        DS_ASSERT(shard.unitIndex < units.size());
        const std::uint64_t seq = nextShardSeq_++;
        ShardState st;
        st.queryId = q.sub.queryId;
        st.features = shard.features;
        st.level = q.sub.level;
        st.unitIndex = shard.unitIndex;
        shards_.emplace(seq, st);
        q.shardSeqs.push_back(seq);
        q.totalFeatures += shard.features;

        AcceleratorUnit::ShardReq req;
        req.seq = seq;
        req.features = shard.features;
        req.layerTicks = q.sub.layerBurstTicksPerFeature;
        req.featuresPerSlot = q.sub.featuresPerSlot;
        if (q.sub.weightBytesPerSlot > 0)
            req.weights =
                broadcast_weights
                    ? broadcast_weights
                    : std::make_shared<WeightStream>(
                          config_.dram, q.sub.weightBytesPerSlot);
        req.dbKey = q.sub.dbKey;
        req.baseSignature = q.sub.planSignature;
        req.signature = q.sub.planSignature;
        req.shape = ScanStepShape{q.sub.pageReadsPerStep,
                                  q.sub.featuresPerStep};
        req.plan = std::move(shard.plan);
        units[shard.unitIndex]->join(std::move(req));
    }
    q.state = QueryState::Scanning;
    updateBusyHorizon();
}

void
QueryScheduler::shardDone(std::uint64_t seq,
                          std::uint64_t features_ok,
                          const ScanGroupSnapshot &snap)
{
    auto it = shards_.find(seq);
    if (it == shards_.end())
        return; // stale (query already degraded/cancelled)
    QueryInfo &q = queries_.at(it->second.queryId);
    if (isTerminal(q.state)) {
        shards_.erase(it);
        return;
    }
    q.coveredFeatures += features_ok;
    // Group counters at the retirement point: flash starvation and
    // weight stalls both held the array idle; backpressure is the
    // stream blocked on compute. A shared group's counters are
    // attributed to each retiring member (they all experienced the
    // contention).
    q.run.computeStallTicks +=
        snap.starvedTicks + snap.weightStallTicks;
    q.run.backpressureTicks += snap.backpressureTicks;
    finishShard(q, seq);
}

void
QueryScheduler::shardFailed(ShardRemnant r)
{
    auto it = shards_.find(r.seq);
    if (it == shards_.end())
        return; // stale
    ShardState &s = it->second;
    QueryInfo &q = queries_.at(s.queryId);
    if (isTerminal(q.state)) {
        shards_.erase(it);
        return;
    }
    q.coveredFeatures += r.featuresDone;
    stats_.get("sched.shardFailures") += 1;
    if (r.featuresLeft == 0) {
        finishShard(q, r.seq);
        return;
    }
    if (s.retries >= config_.maxShardRetries) {
        // Retry budget exhausted: abandon the remainder; the query
        // will finish Degraded with partial coverage.
        stats_.get("sched.shardsLost") += 1;
        finishShard(q, r.seq);
        return;
    }
    auto target = chooseUnit(s.level, s.unitIndex);
    if (!target) {
        stats_.get("sched.shardsLost") += 1;
        finishShard(q, r.seq);
        return;
    }
    s.retries += 1;
    s.features = r.featuresLeft;
    s.level = target->first;
    s.unitIndex = target->second;
    stats_.get("sched.shardReassignments") += 1;
    // Exponential backoff in simulated time before the re-dispatch.
    const Tick backoff = secondsToTicks(
        config_.shardRetryBackoffSeconds *
        static_cast<double>(1ULL << (s.retries - 1)));
    const std::uint64_t seq = r.seq;
    events_.scheduleAfter(
        backoff, [this, seq, r = std::move(r)]() mutable {
            auto sit = shards_.find(seq);
            if (sit == shards_.end())
                return; // finished/cancelled while in transit
            ShardState &st = sit->second;
            auto qit = queries_.find(st.queryId);
            if (qit == queries_.end() ||
                isTerminal(qit->second.state))
                return;
            AcceleratorUnit::ShardReq req;
            req.seq = seq;
            req.features = st.features;
            req.layerTicks = std::move(r.layerTicks);
            req.featuresPerSlot = r.featuresPerSlot;
            req.weights = std::move(r.weights);
            req.dbKey = r.dbKey;
            req.baseSignature = r.signature;
            req.signature =
                remnantSignature(r.signature, seq, st.retries);
            req.shape = r.shape;
            req.plan = std::move(r.plan);
            pools_.at(st.level)[st.unitIndex]->join(std::move(req));
        });
}

void
QueryScheduler::finishShard(QueryInfo &q, std::uint64_t seq)
{
    shards_.erase(seq);
    DS_ASSERT(q.outstandingShards > 0);
    if (--q.outstandingShards > 0)
        return;
    // All shards merged map-reduce style on the embedded cores: the
    // reduce gathers every shard's partial top-K over the shared
    // DRAM link (contending with weight streams and relocation
    // copies) before the query completes.
    q.state = QueryState::Reduce;
    const Tick now = events_.now();
    const std::uint64_t gather_bytes =
        q.sub.reduceBytesPerShard *
        static_cast<std::uint64_t>(q.shardSeqs.size());
    const Tick done = config_.dram && gather_bytes > 0
                          ? config_.dram->acquire(now, gather_bytes)
                          : now;
    q.run.reduceTicks += done - now;
    const std::uint64_t id = q.sub.queryId;
    events_.schedule(done, [this, id] {
        auto it = queries_.find(id);
        if (it == queries_.end() || isTerminal(it->second.state))
            return;
        QueryInfo &qq = it->second;
        completeQuery(qq,
                      qq.coveredFeatures >= qq.totalFeatures
                          ? QueryOutcome::Success
                          : QueryOutcome::Degraded);
    });
}

bool
QueryScheduler::cancel(std::uint64_t query_id)
{
    auto it = queries_.find(query_id);
    if (it == queries_.end() || isTerminal(it->second.state))
        return false;
    stats_.get("sched.queriesCancelled") += 1;
    degradeQuery(it->second, QueryOutcome::Aborted);
    return true;
}

void
QueryScheduler::powerLoss()
{
    failAllInFlight(QueryOutcome::PowerLoss);
}

void
QueryScheduler::failAllInFlight(QueryOutcome outcome)
{
    // Collect first: degradeQuery mutates queries_ state and runs
    // finalize callbacks which may inspect the scheduler. queries_
    // is an ordered map, so the kill order is deterministic.
    std::vector<std::uint64_t> live;
    for (const auto &[id, q] : queries_) {
        if (!isTerminal(q.state))
            live.push_back(id);
    }
    const char *counter = outcome == QueryOutcome::PowerLoss
                              ? "sched.powerLossKills"
                              : "sched.nodeDeathKills";
    for (std::uint64_t id : live) {
        auto it = queries_.find(id);
        if (it == queries_.end() || isTerminal(it->second.state))
            continue;
        stats_.get(counter) += 1;
        degradeQuery(it->second, outcome);
    }
}

void
QueryScheduler::degradeQuery(QueryInfo &q, QueryOutcome outcome)
{
    DS_ASSERT(!isTerminal(q.state));
    // Snatch every still-live shard off its unit, crediting whatever
    // it scanned. In-flight flash completions drain harmlessly in
    // the background (streams closed, callbacks guarded).
    for (std::uint64_t seq : q.shardSeqs) {
        auto sit = shards_.find(seq);
        if (sit == shards_.end())
            continue;
        const ShardState &s = sit->second;
        auto pit = pools_.find(s.level);
        if (pit != pools_.end() &&
            s.unitIndex < pit->second.size()) {
            if (auto r =
                    pit->second[s.unitIndex]->detachShard(seq))
                q.coveredFeatures += r->featuresDone;
        }
        shards_.erase(sit);
    }
    q.outstandingShards = 0;
    completeQuery(q, outcome);
}

void
QueryScheduler::completeQuery(QueryInfo &q, QueryOutcome outcome)
{
    if (q.deadlineArmed) {
        events_.cancel(q.deadlineEvent);
        q.deadlineArmed = false;
    }
    q.outcome = outcome;
    q.state = outcome == QueryOutcome::Success
                  ? QueryState::Complete
                  : QueryState::Degraded;
    q.completeTick = events_.now();
    if (outcome != QueryOutcome::Success)
        stats_.get("sched.queriesDegraded") += 1;
    DS_ASSERT(inFlight_ > 0);
    --inFlight_;
    ++completed_;
    if (q.sub.finalize)
        q.sub.finalize();
}

std::optional<std::pair<Level, std::uint32_t>>
QueryScheduler::chooseUnit(Level level, std::uint32_t exclude)
{
    auto pit = pools_.find(level);
    if (pit != pools_.end() && !pit->second.empty()) {
        auto &units = pit->second;
        const std::uint32_t n =
            static_cast<std::uint32_t>(units.size());
        // Prefer a sibling other than the failed/slow unit; fall
        // back to the excluded unit itself when it is the only
        // survivor (the watchdog case: slow but alive).
        for (std::uint32_t k = 1; k <= n; ++k) {
            const std::uint32_t idx = (exclude + k) % n;
            if (idx == exclude)
                continue;
            if (units[idx]->alive())
                return std::make_pair(level, idx);
        }
        if (exclude < n && units[exclude]->alive())
            return std::make_pair(level, exclude);
    }
    // No alive sibling: walk up to the parent level.
    for (auto up = parentLevel(level); up; up = parentLevel(*up)) {
        const auto lid = static_cast<std::size_t>(*up);
        std::uint32_t count = config_.unitsAtLevel[lid];
        auto existing = pools_.find(*up);
        if (existing != pools_.end() && !existing->second.empty())
            count = static_cast<std::uint32_t>(
                existing->second.size());
        if (count == 0)
            continue; // pool size unknown and not yet built
        auto &units = pool(*up, count);
        for (std::uint32_t i = 0; i < count; ++i)
            if (units[i]->alive())
                return std::make_pair(*up, i);
    }
    return std::nullopt;
}

void
QueryScheduler::updateBusyHorizon()
{
    if (!busyHook_)
        return;
    Tick horizon = events_.now();
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            horizon = std::max(horizon, unit->busyUntilEstimate());
    busyHook_(horizon);
}

std::optional<QueryState>
QueryScheduler::state(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        return std::nullopt;
    return it->second.state;
}

QueryOutcome
QueryScheduler::outcome(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    return it->second.outcome;
}

double
QueryScheduler::coverageFraction(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    const QueryInfo &q = it->second;
    if (q.totalFeatures == 0)
        return q.outcome == QueryOutcome::Success ? 1.0 : 0.0;
    double f = static_cast<double>(q.coveredFeatures) /
               static_cast<double>(q.totalFeatures);
    return f > 1.0 ? 1.0 : f;
}

std::uint64_t
QueryScheduler::coveredFeatures(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    const QueryInfo &q = it->second;
    return std::min(q.coveredFeatures, q.totalFeatures);
}

std::uint64_t
QueryScheduler::totalFeatures(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    return it->second.totalFeatures;
}

Tick
QueryScheduler::submitTick(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    return it->second.submitTick;
}

Tick
QueryScheduler::completeTick(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    if (!isTerminal(it->second.state))
        fatal("query %llu has not completed",
              static_cast<unsigned long long>(query_id));
    return it->second.completeTick;
}

QueryRunStats
QueryScheduler::runStats(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    return it->second.run;
}

std::size_t
QueryScheduler::residentShards() const
{
    std::size_t n = 0;
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            n += unit->residents();
    return n;
}

std::size_t
QueryScheduler::waitingShards() const
{
    std::size_t n = 0;
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            n += unit->waiting();
    return n;
}

} // namespace deepstore::core
