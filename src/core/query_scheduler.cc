#include "core/query_scheduler.h"

#include <algorithm>

#include "common/logging.h"
#include "core/scan_core.h"

namespace deepstore::core {

const char *
toString(QueryState s)
{
    switch (s) {
      case QueryState::Parsed: return "Parsed";
      case QueryState::CacheProbe: return "CacheProbe";
      case QueryState::Striped: return "Striped";
      case QueryState::Scanning: return "Scanning";
      case QueryState::Reduce: return "Reduce";
      case QueryState::Complete: return "Complete";
    }
    return "unknown";
}

/** Per-query bookkeeping. */
struct QueryScheduler::QueryInfo
{
    QuerySubmission sub;
    QueryState state = QueryState::Parsed;
    Tick submitTick = 0;
    Tick completeTick = 0;
    std::uint32_t outstandingShards = 0;
};

/**
 * One countable accelerator instance. Holds up to `maxResident`
 * concurrently scanning shards plus a FIFO queue of waiting shards.
 * Shards are grouped by (dbKey, plan signature) into GroupScans; each
 * group owns one DfvStream of real flash reads (read-once-broadcast)
 * and the groups of one unit serialize their compute batches on the
 * unit's ComputeArbiter. All progress happens through stream-delivery
 * and batch-completion events.
 */
class QueryScheduler::AcceleratorUnit
{
  public:
    /** A shard placement request. */
    struct ShardReq
    {
        std::uint64_t queryId = 0;
        std::uint64_t features = 0;
        Tick serviceTicks = 0;
        std::uint64_t dbKey = 0;
        std::uint64_t signature = 0;
        ScanStepShape shape;
        ssd::DfvPlan plan;
    };

    AcceleratorUnit(sim::EventQueue &events, QueryScheduler &sched,
                    ssd::DfvStreamService &dfv,
                    std::uint32_t max_resident)
        : events_(events), sched_(sched), dfv_(dfv),
          maxResident_(max_resident)
    {
        DS_ASSERT(maxResident_ > 0);
    }

    ~AcceleratorUnit()
    {
        // Streams of still-open groups belong to the service; close
        // them so active() stays truthful on teardown.
        for (auto &g : groups_)
            if (g->stream)
                dfv_.close(*g->stream);
    }

    void
    join(ShardReq req)
    {
        DS_ASSERT(req.features > 0);
        if (residents_ < maxResident_)
            admit(std::move(req));
        else
            waiting_.push_back(std::move(req));
    }

    std::size_t residents() const { return residents_; }
    std::size_t waiting() const { return waiting_.size(); }

    /**
     * Estimated tick at which this unit goes idle: the array's
     * reserved horizon plus the next flash delivery each live group
     * is waiting for (FlashController::estimateReadCompletion via
     * DfvStream::nextDeliveryEstimate — the physical load signal).
     * A lower bound while shards are waiting or streams unfinished.
     */
    Tick
    busyUntilEstimate() const
    {
        Tick t = residents_ > 0 ? arbiter_.busyUntil() : 0;
        for (const auto &g : groups_) {
            if (g->finished || !g->stream)
                continue;
            t = std::max(t, g->stream->nextDeliveryEstimate());
        }
        return t;
    }

  private:
    struct Group
    {
        std::uint64_t dbKey = 0;
        std::uint64_t signature = 0;
        ssd::DfvStream *stream = nullptr;
        std::unique_ptr<GroupScan> scan;
        bool finished = false;
    };

    void
    admit(ShardReq &&req)
    {
        ++residents_;
        ScanMember member{req.queryId, req.features,
                          req.serviceTicks};
        // Read-once-broadcast: join an in-flight group with the same
        // database and plan, provided its stream has not advanced
        // (a later joiner would have missed broadcast pages).
        for (auto &g : groups_) {
            if (g->finished || g->dbKey != req.dbKey ||
                g->signature != req.signature ||
                !g->scan->canAdmit())
                continue;
            g->scan->addMember(member);
            return;
        }
        auto g = std::make_unique<Group>();
        Group *gp = g.get();
        gp->dbKey = req.dbKey;
        gp->signature = req.signature;
        if (!req.plan.pages.empty())
            gp->stream = &dfv_.open(std::move(req.plan));
        gp->scan = std::make_unique<GroupScan>(
            events_, arbiter_, gp->stream, req.shape);
        gp->scan->onMemberDone(
            [this](std::uint64_t query_id) { memberDone(query_id); });
        gp->scan->onGroupDone([this, gp] {
            gp->finished = true;
            if (gp->stream) {
                dfv_.close(*gp->stream);
                gp->stream = nullptr;
            }
            scheduleCleanup();
        });
        groups_.push_back(std::move(g));
        gp->scan->addMember(member);
        gp->scan->start();
    }

    void
    memberDone(std::uint64_t query_id)
    {
        DS_ASSERT(residents_ > 0);
        --residents_;
        sched_.shardDone(query_id);
        scheduleCleanup();
    }

    /** Defer group destruction and waiting-shard admission out of
     *  the GroupScan callback context (same tick, later event). */
    void
    scheduleCleanup()
    {
        if (cleanupPending_)
            return;
        cleanupPending_ = true;
        events_.scheduleAfter(0, [this] {
            cleanupPending_ = false;
            groups_.erase(
                std::remove_if(groups_.begin(), groups_.end(),
                               [](const std::unique_ptr<Group> &g) {
                                   return g->finished;
                               }),
                groups_.end());
            while (!waiting_.empty() && residents_ < maxResident_) {
                ShardReq req = std::move(waiting_.front());
                waiting_.pop_front();
                admit(std::move(req));
            }
            sched_.updateBusyHorizon();
        });
    }

    sim::EventQueue &events_;
    QueryScheduler &sched_;
    ssd::DfvStreamService &dfv_;
    ComputeArbiter arbiter_;
    std::uint32_t maxResident_;
    std::vector<std::unique_ptr<Group>> groups_;
    std::deque<ShardReq> waiting_;
    std::size_t residents_ = 0;
    bool cleanupPending_ = false;
};

QueryScheduler::QueryScheduler(sim::EventQueue &events,
                               QuerySchedulerConfig config,
                               ssd::DfvStreamService &dfv)
    : events_(events), config_(config), dfv_(dfv)
{
    if (config_.maxResidentScans == 0)
        fatal("maxResidentScans must be at least 1");
}

QueryScheduler::~QueryScheduler() = default;

std::vector<std::unique_ptr<QueryScheduler::AcceleratorUnit>> &
QueryScheduler::pool(Level level, std::uint32_t count)
{
    auto &units = pools_[level];
    if (units.empty()) {
        units.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i)
            units.push_back(std::make_unique<AcceleratorUnit>(
                events_, *this, dfv_, config_.maxResidentScans));
    }
    if (units.size() != count)
        panic("accelerator count changed for level %s: %zu vs %u",
              core::toString(level), units.size(), count);
    return units;
}

void
QueryScheduler::submit(QuerySubmission submission)
{
    DS_ASSERT(submission.queryId != 0);
    DS_ASSERT(submission.finalize);
    if (!submission.cacheHit) {
        DS_ASSERT(submission.numAccelerators > 0);
        DS_ASSERT(!submission.shards.empty());
        DS_ASSERT(submission.pageReadsPerStep > 0);
        DS_ASSERT(submission.featuresPerStep > 0);
    }
    auto [it, inserted] =
        queries_.emplace(submission.queryId, QueryInfo{});
    if (!inserted)
        fatal("duplicate query id %llu",
              static_cast<unsigned long long>(submission.queryId));
    QueryInfo &q = it->second;
    q.sub = std::move(submission);
    q.submitTick = events_.now();
    q.state = QueryState::Parsed;
    ++inFlight_;

    const std::uint64_t id = q.sub.queryId;
    Tick probe_ticks = secondsToTicks(q.sub.probeSeconds);
    q.state = QueryState::CacheProbe;
    if (q.sub.cacheHit) {
        // CacheProbe -> Reduce (rescore cached top-K on a channel
        // accelerator) -> Complete.
        Tick rescore_ticks =
            secondsToTicks(q.sub.hitComputeSeconds);
        events_.scheduleChain({
            {probe_ticks,
             [this, id] {
                 queries_.at(id).state = QueryState::Reduce;
             }},
            {rescore_ticks,
             [this, id] { completeQuery(queries_.at(id)); }},
        });
    } else {
        events_.scheduleChain({{probe_ticks, [this, id] {
                                    enterStriped(queries_.at(id));
                                }}});
    }
}

void
QueryScheduler::enterStriped(QueryInfo &q)
{
    q.state = QueryState::Striped;
    auto &units = pool(q.sub.level, q.sub.numAccelerators);
    q.outstandingShards =
        static_cast<std::uint32_t>(q.sub.shards.size());
    for (auto &shard : q.sub.shards) {
        DS_ASSERT(shard.unitIndex < units.size());
        AcceleratorUnit::ShardReq req;
        req.queryId = q.sub.queryId;
        req.features = shard.features;
        req.serviceTicks = q.sub.serviceTicksPerFeature;
        req.dbKey = q.sub.dbKey;
        req.signature = q.sub.planSignature;
        req.shape = ScanStepShape{q.sub.pageReadsPerStep,
                                  q.sub.featuresPerStep};
        req.plan = std::move(shard.plan);
        units[shard.unitIndex]->join(std::move(req));
    }
    q.state = QueryState::Scanning;
    updateBusyHorizon();
}

void
QueryScheduler::shardDone(std::uint64_t query_id)
{
    QueryInfo &q = queries_.at(query_id);
    DS_ASSERT(q.outstandingShards > 0);
    if (--q.outstandingShards > 0)
        return;
    // All shards merged map-reduce style on the embedded cores; the
    // reduce itself is modeled as instantaneous (the K·accelerators
    // merge is negligible next to the scan) but is a distinct state.
    q.state = QueryState::Reduce;
    const std::uint64_t id = query_id;
    events_.scheduleAfter(
        0, [this, id] { completeQuery(queries_.at(id)); });
}

void
QueryScheduler::completeQuery(QueryInfo &q)
{
    q.state = QueryState::Complete;
    q.completeTick = events_.now();
    DS_ASSERT(inFlight_ > 0);
    --inFlight_;
    ++completed_;
    if (q.sub.finalize)
        q.sub.finalize();
}

void
QueryScheduler::updateBusyHorizon()
{
    if (!busyHook_)
        return;
    Tick horizon = events_.now();
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            horizon = std::max(horizon, unit->busyUntilEstimate());
    busyHook_(horizon);
}

std::optional<QueryState>
QueryScheduler::state(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        return std::nullopt;
    return it->second.state;
}

Tick
QueryScheduler::submitTick(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    return it->second.submitTick;
}

Tick
QueryScheduler::completeTick(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    if (it->second.state != QueryState::Complete)
        fatal("query %llu has not completed",
              static_cast<unsigned long long>(query_id));
    return it->second.completeTick;
}

std::size_t
QueryScheduler::residentShards() const
{
    std::size_t n = 0;
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            n += unit->residents();
    return n;
}

std::size_t
QueryScheduler::waitingShards() const
{
    std::size_t n = 0;
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            n += unit->waiting();
    return n;
}

} // namespace deepstore::core
