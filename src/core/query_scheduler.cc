#include "core/query_scheduler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepstore::core {

namespace {
/** Residual feature count below which a shard counts as finished
 *  (absorbs tick-quantization rounding). */
constexpr double kShardEpsilon = 1e-7;
} // namespace

const char *
toString(QueryState s)
{
    switch (s) {
      case QueryState::Parsed: return "Parsed";
      case QueryState::CacheProbe: return "CacheProbe";
      case QueryState::Striped: return "Striped";
      case QueryState::Scanning: return "Scanning";
      case QueryState::Reduce: return "Reduce";
      case QueryState::Complete: return "Complete";
    }
    return "unknown";
}

/** Per-query bookkeeping. */
struct QueryScheduler::QueryInfo
{
    QuerySubmission sub;
    QueryState state = QueryState::Parsed;
    Tick submitTick = 0;
    Tick completeTick = 0;
    std::uint32_t outstandingShards = 0;
};

/**
 * One countable accelerator instance. Holds up to `maxResident`
 * concurrently scanning shards (generalized processor sharing with
 * flash-stream batching, see header) plus a FIFO queue of waiting
 * shards. All progress happens through its own completion events.
 */
class QueryScheduler::AcceleratorUnit
{
  public:
    struct Shard
    {
        std::uint64_t queryId = 0;
        double remainingFeatures = 0.0;
        double computeSec = 0.0; ///< per feature
        double flashSec = 0.0;   ///< per feature
        double weightSec = 0.0;  ///< per feature
        double exposedSec = 0.0; ///< per feature, additive
        std::uint64_t dbKey = 0;
    };

    AcceleratorUnit(sim::EventQueue &events, QueryScheduler &sched,
                    std::uint32_t max_resident)
        : events_(events), sched_(sched), maxResident_(max_resident)
    {
        DS_ASSERT(maxResident_ > 0);
    }

    void
    join(Shard shard)
    {
        DS_ASSERT(shard.remainingFeatures > 0.0);
        syncProgress();
        if (residents_.size() < maxResident_)
            residents_.push_back(shard);
        else
            waiting_.push_back(shard);
        replan();
    }

    std::size_t residents() const { return residents_.size(); }
    std::size_t waiting() const { return waiting_.size(); }

    /** Estimated tick at which this unit goes idle (0 when idle
     *  already; waiting shards make the estimate a lower bound). */
    Tick
    busyUntilEstimate() const
    {
        if (residents_.empty())
            return 0;
        double max_rem = 0.0;
        for (const auto &r : residents_)
            max_rem = std::max(max_rem, r.remainingFeatures);
        return lastUpdate_ +
               static_cast<Tick>(
                   std::ceil(max_rem * rateTicksPerFeature_));
    }

  private:
    /**
     * Wall seconds one feature position costs every resident under
     * the current membership: the flash stream (and its exposed
     * refill latency) is paid once per distinct database (page read
     * once, broadcast to co-scanning queries), compute and weight
     * streaming once per resident. With a single resident this is
     * exactly LevelPerf::perAccelSeconds, so lone queries match the
     * analytic steady-state model.
     */
    double
    perFeatureSeconds() const
    {
        double compute = 0.0;
        double weight = 0.0;
        double flash = 0.0;
        double exposed = 0.0;
        for (std::size_t i = 0; i < residents_.size(); ++i) {
            const auto &r = residents_[i];
            compute += r.computeSec;
            weight += r.weightSec;
            // Charge the stream for the first resident of each dbKey
            // only, at the largest per-feature cost in the group
            // (conservative for mixed feature sizes).
            bool first = true;
            double group_flash = r.flashSec;
            double group_exposed = r.exposedSec;
            for (std::size_t j = 0; j < residents_.size(); ++j) {
                if (residents_[j].dbKey != r.dbKey)
                    continue;
                if (j < i)
                    first = false;
                group_flash =
                    std::max(group_flash, residents_[j].flashSec);
                group_exposed =
                    std::max(group_exposed, residents_[j].exposedSec);
            }
            if (first) {
                flash += group_flash;
                exposed += group_exposed;
            }
        }
        return std::max(flash, std::max(compute, weight)) + exposed;
    }

    /** Advance every resident by the progress made since
     *  lastUpdate_ under the previously planned rate. */
    void
    syncProgress()
    {
        Tick now = events_.now();
        if (rateTicksPerFeature_ > 0.0 && now > lastUpdate_ &&
            !residents_.empty()) {
            double df = static_cast<double>(now - lastUpdate_) /
                        rateTicksPerFeature_;
            for (auto &r : residents_)
                r.remainingFeatures -= df;
        }
        lastUpdate_ = now;
    }

    /** Recompute the sharing rate and (re)schedule the next shard
     *  completion. @pre syncProgress() ran at the current tick. */
    void
    replan()
    {
        if (pending_) {
            events_.cancel(*pending_);
            pending_.reset();
        }
        if (residents_.empty()) {
            rateTicksPerFeature_ = 0.0;
            return;
        }
        double pf = perFeatureSeconds();
        if (pf <= 0.0)
            panic("accelerator unit has a zero per-feature cost");
        rateTicksPerFeature_ =
            pf * static_cast<double>(kTicksPerSecond);
        double min_rem = residents_.front().remainingFeatures;
        for (const auto &r : residents_)
            min_rem = std::min(min_rem, r.remainingFeatures);
        min_rem = std::max(min_rem, 0.0);
        Tick delay = static_cast<Tick>(
            std::ceil(min_rem * rateTicksPerFeature_));
        pending_ =
            events_.scheduleAfter(delay, [this] { onEvent(); });
    }

    /** A shard-completion event fired. */
    void
    onEvent()
    {
        pending_.reset(); // consumed by the queue
        syncProgress();
        std::vector<std::uint64_t> done;
        auto finished = [](const Shard &s) {
            return s.remainingFeatures <= kShardEpsilon;
        };
        for (const auto &r : residents_)
            if (finished(r))
                done.push_back(r.queryId);
        if (done.empty() && !residents_.empty()) {
            // Defensive against FP drift: retire the closest shard.
            auto it = std::min_element(
                residents_.begin(), residents_.end(),
                [](const Shard &a, const Shard &b) {
                    return a.remainingFeatures < b.remainingFeatures;
                });
            done.push_back(it->queryId);
            it->remainingFeatures = 0.0;
        }
        residents_.erase(
            std::remove_if(residents_.begin(), residents_.end(),
                           finished),
            residents_.end());
        while (!waiting_.empty() &&
               residents_.size() < maxResident_) {
            residents_.push_back(waiting_.front());
            waiting_.pop_front();
        }
        replan();
        for (std::uint64_t id : done)
            sched_.shardDone(id);
        sched_.updateBusyHorizon();
    }

    sim::EventQueue &events_;
    QueryScheduler &sched_;
    std::uint32_t maxResident_;
    std::vector<Shard> residents_;
    std::deque<Shard> waiting_;
    Tick lastUpdate_ = 0;
    double rateTicksPerFeature_ = 0.0;
    std::optional<sim::EventId> pending_;
};

QueryScheduler::QueryScheduler(sim::EventQueue &events,
                               QuerySchedulerConfig config)
    : events_(events), config_(config)
{
    if (config_.maxResidentScans == 0)
        fatal("maxResidentScans must be at least 1");
}

QueryScheduler::~QueryScheduler() = default;

std::vector<std::unique_ptr<QueryScheduler::AcceleratorUnit>> &
QueryScheduler::pool(Level level, std::uint32_t count)
{
    auto &units = pools_[level];
    if (units.empty()) {
        units.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i)
            units.push_back(std::make_unique<AcceleratorUnit>(
                events_, *this, config_.maxResidentScans));
    }
    if (units.size() != count)
        panic("accelerator count changed for level %s: %zu vs %u",
              core::toString(level), units.size(), count);
    return units;
}

void
QueryScheduler::submit(QuerySubmission submission)
{
    DS_ASSERT(submission.queryId != 0);
    DS_ASSERT(submission.finalize);
    if (!submission.cacheHit) {
        DS_ASSERT(submission.numAccelerators > 0);
        DS_ASSERT(submission.shardFeatures > 0.0);
    }
    auto [it, inserted] =
        queries_.emplace(submission.queryId, QueryInfo{});
    if (!inserted)
        fatal("duplicate query id %llu",
              static_cast<unsigned long long>(submission.queryId));
    QueryInfo &q = it->second;
    q.sub = std::move(submission);
    q.submitTick = events_.now();
    q.state = QueryState::Parsed;
    ++inFlight_;

    const std::uint64_t id = q.sub.queryId;
    Tick probe_ticks = secondsToTicks(q.sub.probeSeconds);
    q.state = QueryState::CacheProbe;
    if (q.sub.cacheHit) {
        // CacheProbe -> Reduce (rescore cached top-K on a channel
        // accelerator) -> Complete.
        Tick rescore_ticks =
            secondsToTicks(q.sub.hitComputeSeconds);
        events_.scheduleChain({
            {probe_ticks,
             [this, id] {
                 queries_.at(id).state = QueryState::Reduce;
             }},
            {rescore_ticks,
             [this, id] { completeQuery(queries_.at(id)); }},
        });
    } else {
        events_.scheduleChain({{probe_ticks, [this, id] {
                                    enterStriped(queries_.at(id));
                                }}});
    }
}

void
QueryScheduler::enterStriped(QueryInfo &q)
{
    q.state = QueryState::Striped;
    auto &units = pool(q.sub.level, q.sub.numAccelerators);
    q.outstandingShards = q.sub.numAccelerators;
    AcceleratorUnit::Shard shard;
    shard.queryId = q.sub.queryId;
    shard.remainingFeatures = q.sub.shardFeatures;
    shard.computeSec = q.sub.computeSecondsPerFeature;
    shard.flashSec = q.sub.flashSecondsPerFeature;
    shard.weightSec = q.sub.weightSecondsPerFeature;
    shard.exposedSec = q.sub.exposedSecondsPerFeature;
    shard.dbKey = q.sub.dbKey;
    for (auto &unit : units)
        unit->join(shard);
    q.state = QueryState::Scanning;
    updateBusyHorizon();
}

void
QueryScheduler::shardDone(std::uint64_t query_id)
{
    QueryInfo &q = queries_.at(query_id);
    DS_ASSERT(q.outstandingShards > 0);
    if (--q.outstandingShards > 0)
        return;
    // All shards merged map-reduce style on the embedded cores; the
    // reduce itself is modeled as instantaneous (the K·accelerators
    // merge is negligible next to the scan) but is a distinct state.
    q.state = QueryState::Reduce;
    const std::uint64_t id = query_id;
    events_.scheduleAfter(
        0, [this, id] { completeQuery(queries_.at(id)); });
}

void
QueryScheduler::completeQuery(QueryInfo &q)
{
    q.state = QueryState::Complete;
    q.completeTick = events_.now();
    DS_ASSERT(inFlight_ > 0);
    --inFlight_;
    ++completed_;
    if (q.sub.finalize)
        q.sub.finalize();
}

void
QueryScheduler::updateBusyHorizon()
{
    if (!busyHook_)
        return;
    Tick horizon = events_.now();
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            horizon = std::max(horizon, unit->busyUntilEstimate());
    busyHook_(horizon);
}

std::optional<QueryState>
QueryScheduler::state(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        return std::nullopt;
    return it->second.state;
}

Tick
QueryScheduler::submitTick(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    return it->second.submitTick;
}

Tick
QueryScheduler::completeTick(std::uint64_t query_id) const
{
    auto it = queries_.find(query_id);
    if (it == queries_.end())
        fatal("unknown query_id %llu",
              static_cast<unsigned long long>(query_id));
    if (it->second.state != QueryState::Complete)
        fatal("query %llu has not completed",
              static_cast<unsigned long long>(query_id));
    return it->second.completeTick;
}

std::size_t
QueryScheduler::residentShards() const
{
    std::size_t n = 0;
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            n += unit->residents();
    return n;
}

std::size_t
QueryScheduler::waitingShards() const
{
    std::size_t n = 0;
    for (const auto &[level, units] : pools_)
        for (const auto &unit : units)
            n += unit->waiting();
    return n;
}

} // namespace deepstore::core
