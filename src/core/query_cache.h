/**
 * @file
 * Similarity-based in-storage Query Cache (paper §4.6, Algorithm 1).
 *
 * Unlike an exact-match cache, a lookup scores the incoming query
 * against *every* cached query with the Query Comparison Network
 * (QCN) and accepts the best match when
 *
 *     (1 - qcn_score * QCN_Acc) <= threshold
 *
 * exploiting the error tolerance inherent to intelligent queries. On
 * a hit the engine re-runs the SCN against only the cached entry's
 * top-K features; on a miss the whole database is scanned and the
 * query is inserted with LRU replacement.
 *
 * The QCN scoring function is injected: the runtime path uses the
 * functional QCN executor over real feature vectors, while the large
 * cache sweeps (Figs. 13-14) use the closed-form latent-topic score,
 * which the test suite shows is order-equivalent.
 */

#ifndef DEEPSTORE_CORE_QUERY_CACHE_H
#define DEEPSTORE_CORE_QUERY_CACHE_H

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/topk.h"

namespace deepstore::core {

/** Static query-cache configuration (setQC, Table 2). */
struct QueryCacheConfig
{
    /** Number of cached queries (1 K entries in §6.5). */
    std::size_t capacity = 1000;

    /** Published accuracy of the QCN model (QCN_Acc). */
    double qcnAccuracy = 0.97;

    /** Error threshold: a hit needs (1 - score) <= threshold. */
    double threshold = 0.10;
};

/** Result of a cache lookup. */
struct CacheLookup
{
    bool hit = false;
    std::uint64_t matchedQuery = 0; ///< valid when hit
    double bestScore = 0.0;         ///< qcn_score x QCN_Acc of best
    std::size_t entriesScanned = 0; ///< QCN evaluations performed
    /** Cached top-K of the matched entry (hit only). */
    std::vector<ScoredResult> cachedResults;
};

/** LRU query cache with QCN-similarity lookup. */
class QueryCache
{
  public:
    /** Pairwise QCN similarity in [0, 1] for two query ids. */
    using ScoreFn =
        std::function<double(std::uint64_t, std::uint64_t)>;

    QueryCache(QueryCacheConfig config, ScoreFn score);

    /** Algorithm 1 lookup; promotes the matched entry on a hit. */
    CacheLookup lookup(std::uint64_t query_id);

    /** Insert a query and its scan results (Algorithm 1 line 16),
     *  evicting the LRU entry when full. Re-inserting an existing
     *  query refreshes its results and promotes it. */
    void insert(std::uint64_t query_id,
                std::vector<ScoredResult> results);

    /** Invalidate every entry (e.g., after a database update). */
    void invalidateAll();

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return config_.capacity; }

    void setThreshold(double threshold);
    const QueryCacheConfig &config() const { return config_; }

    // Statistics.
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    missRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(misses_) /
                           static_cast<double>(total)
                     : 0.0;
    }
    void resetStats();

  private:
    struct Entry
    {
        std::uint64_t queryId;
        std::vector<ScoredResult> results;
    };

    QueryCacheConfig config_;
    ScoreFn score_;
    /** MRU-first list; LRU eviction pops the back. */
    std::list<Entry> entries_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
        index_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_QUERY_CACHE_H
