#include "core/time_ledger.h"

#include <ostream>

#include "common/logging.h"

namespace deepstore::core {

const char *
toString(TimeComponent c)
{
    switch (c) {
      case TimeComponent::HostWrite: return "hostWrite";
      case TimeComponent::HostRead: return "hostRead";
      case TimeComponent::ModelUpload: return "modelUpload";
      case TimeComponent::QcLookup: return "qcLookup";
      case TimeComponent::CacheHit: return "cacheHit";
      case TimeComponent::Scan: return "scan";
      case TimeComponent::Metadata: return "metadata";
      case TimeComponent::Count: break;
    }
    return "unknown";
}

void
TimeLedger::attribute(double s, TimeComponent c)
{
    if (s < 0.0)
        panic("attributing a negative duration (%f s)", s);
    perComponent_[static_cast<std::size_t>(c)] += s;
}

void
TimeLedger::advance(double s, TimeComponent c)
{
    if (s < 0.0)
        panic("advancing the clock by a negative duration (%f s)", s);
    events_.runUntil(events_.now() + secondsToTicks(s));
    attribute(s, c);
}

double
TimeLedger::componentSeconds(TimeComponent c) const
{
    return perComponent_[static_cast<std::size_t>(c)];
}

double
TimeLedger::attributedSeconds() const
{
    double sum = 0.0;
    for (double v : perComponent_)
        sum += v;
    return sum;
}

void
TimeLedger::dump(std::ostream &os) const
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(TimeComponent::Count); ++i) {
        os << "engine.time." << toString(static_cast<TimeComponent>(i))
           << " = " << perComponent_[i] << "\n";
    }
}

} // namespace deepstore::core
